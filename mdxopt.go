// Package mdxopt is a ROLAP engine with simultaneous multi-query
// optimization, reproducing Zhao, Deshpande, Naughton & Shukla,
// "Simultaneous Optimization and Evaluation of Multiple Dimensional
// Queries" (SIGMOD 1998).
//
// An mdxopt database is a star schema stored in paged heap files:
// dimension tables with hierarchies, a base fact table, materialized
// group-by views, and bitmap join indexes. A single MDX expression may
// denote several related group-by queries; the engine optimizes them *as
// a set* — choosing which materialized group-by each query reads and
// merging queries that share a base table into one shared-scan or
// shared-probe pass (the paper's §3 operators) — using the paper's TPLO,
// ETPLG and GG algorithms or an exhaustive optimum.
//
// Quick start:
//
//	db, err := mdxopt.CreateSample(dir, 0.01) // paper's test database at 1% scale
//	...
//	ans, err := db.Query(`{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS
//	    {C''.C1} on PAGES CONTEXT ABCD FILTER (D'.DD1)`)
//	for _, qr := range ans.Queries {
//	    fmt.Println(qr.GroupBy, len(qr.Rows), "groups")
//	}
package mdxopt

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mdxopt/internal/core"
	"mdxopt/internal/cost"
	"mdxopt/internal/dag"
	"mdxopt/internal/datagen"
	"mdxopt/internal/exec"
	"mdxopt/internal/mdx"
	"mdxopt/internal/mem"
	"mdxopt/internal/plan"
	"mdxopt/internal/query"
	"mdxopt/internal/rescache"
	"mdxopt/internal/sched"
	"mdxopt/internal/star"
	"mdxopt/internal/storage"
)

// Algorithm selects the multi-query optimization strategy.
type Algorithm string

// The available algorithms. See the package documentation of
// internal/core for their semantics.
const (
	TPLO    Algorithm = "TPLO"    // per-query local optima, merge coincidences
	ETPLG   Algorithm = "ETPLG"   // greedy base-table sharing
	GG      Algorithm = "GG"      // greedy with class re-basing (recommended)
	GGI     Algorithm = "GGI"     // GG + hill climbing from both greedy starts
	Optimal Algorithm = "Optimal" // exhaustive (≤ 10 queries)
)

// LevelSpec describes one hierarchy level of a dimension, finest first.
type LevelSpec struct {
	Name    string
	Members []string
	// Parent[i] is the parent code (index into the next coarser level's
	// Members) of member i. Must be nil for the top level.
	Parent []int32
}

// DimensionSpec describes a dimension: levels ordered base to top.
type DimensionSpec struct {
	Name   string
	Levels []LevelSpec
}

// SchemaSpec describes a star schema.
type SchemaSpec struct {
	Dims    []DimensionSpec
	Measure string
}

// DB is an open mdxopt database.
//
// Queries (Query, QueryWith, QueryContext, Explain) may be issued
// concurrently from multiple goroutines. Mutations — Materialize,
// MaterializeMulti, BuildBitmapIndex, Refresh, Compact, and a Loader's
// Close — are serialized internally against each other and against
// in-flight queries: a mutation waits for running queries to finish and
// blocks new ones until it completes. The only remaining caller
// obligation is the Loader itself: its Add/AddCodes calls must not run
// concurrently with queries or other mutations (Close marks the safe
// point).
type DB struct {
	db *star.Database

	// mem is the process-wide memory broker governing operator state
	// (OpenOptions.MemoryBudget). Always non-nil; with no budget it
	// tracks usage without enforcing one.
	mem *mem.Broker
	// spillDir is where budget-exceeded aggregation state spills
	// (OpenOptions.SpillDir; empty = the system temp directory).
	spillDir string
	// execWorkers is the default unified pool width for plans this
	// database executes (OpenOptions.Workers, with OpenOptions.ExecWorkers
	// as its accepted alias; 1 = serial).
	execWorkers int

	// rescache is the semantic result cache
	// (OpenOptions.ResultCacheBudget); nil when disabled — every
	// rescache method is nil-safe.
	rescache *rescache.Cache

	// stateMu serializes database mutations (writers) against queries
	// (readers).
	stateMu sync.RWMutex

	// Plan cache: optimized global plans keyed by (MDX text, options),
	// invalidated whenever the database mutates (loads, refreshes,
	// materializations, index changes) and whenever the result cache's
	// contents change (plans may embed cache entries, and a plan built
	// against an emptier cache must be redone once results are cached).
	// Guarded by mu. batchCache is the cross-request analogue, keyed by
	// batch composition.
	mu         sync.Mutex
	gen        uint64
	planCache  map[string]*cachedPlan
	batchCache map[string]*cachedBatch
	planHits   int64
	batchHits  int64
	cacheTick  uint64

	// Admission scheduler for batched serving (Options.Batching /
	// EnableBatching). Guarded by schedMu.
	schedMu  sync.Mutex
	batcher  *sched.Scheduler
	batchCfg BatchConfig
}

type cachedPlan struct {
	gen     uint64
	epoch   uint64 // result-cache epoch the plan was built against
	lastUse uint64 // cacheTick of the last hit, for LRU eviction
	queries []*query.Query
	global  *plan.Global
}

type cachedBatch struct {
	gen     uint64
	epoch   uint64
	lastUse uint64
	// perPos holds the query set of each submission in the key's sorted
	// order; the global plan references exactly these objects.
	perPos [][]*query.Query
	global *plan.Global
}

func (c *cachedPlan) lastUsed() uint64  { return c.lastUse }
func (c *cachedBatch) lastUsed() uint64 { return c.lastUse }

// maxCachedPlans bounds the plan and batch caches; at capacity the
// least-recently-used entry is evicted to admit the new one, so a hot
// working set of expressions survives an occasional one-off query.
const maxCachedPlans = 256

// evictOldest removes the least-recently-used entry of a plan cache.
func evictOldest[V interface{ lastUsed() uint64 }](m map[string]V) {
	var victim string
	var min uint64
	first := true
	for k, v := range m {
		if first || v.lastUsed() < min {
			victim, min, first = k, v.lastUsed(), false
		}
	}
	if !first {
		delete(m, victim)
	}
}

// invalidate discards cached plans and cached results after a database
// mutation.
func (d *DB) invalidate() {
	d.mu.Lock()
	d.gen++
	d.planCache = nil
	d.batchCache = nil
	d.mu.Unlock()
	d.rescache.Invalidate()
}

// curGen reads the current database generation.
func (d *DB) curGen() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gen
}

// PlanCacheHits reports how many requests were answered with a cached
// plan (the parse/optimize phase skipped) — unbatched plan-cache hits
// plus batch-composition cache hits.
func (d *DB) PlanCacheHits() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.planHits + d.batchHits
}

// BatchPlanCacheHits reports the batch-composition cache's share of
// PlanCacheHits: batches whose exact member mix had been optimized
// before and reused the stored global plan.
func (d *DB) BatchPlanCacheHits() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.batchHits
}

// Options configures query planning and execution.
type Options struct {
	// Algorithm defaults to GG.
	Algorithm Algorithm
	// PaperPlanSpace confines the optimizer to the paper's plan space
	// (no §3.3 filter conversion as a first-class choice). Off by
	// default: the full model finds strictly better plans.
	PaperPlanSpace bool
	// ColdCache flushes the buffer pool and index caches before
	// executing, as the paper does between measurements.
	ColdCache bool
	// Workers is the unified worker-pool width for this request: one
	// bound on every executor goroutine at once — concurrently running
	// plan passes (class scans, cache rollups, shared lookup builds) AND
	// the page-aligned scan morsels a running pass fans out, all drawing
	// slots from one pool. 0 falls back to the legacy aliases below (or
	// the database default, OpenOptions.Workers); 1 runs fully serially.
	// Results and deterministic work counters are identical at every
	// width. Widths beyond the GOMAXPROCS-derived cap are clamped;
	// Stats.EffectiveWorkers reports the width actually used.
	Workers int
	// Parallelism is a documented alias from the pre-pool API, when scan
	// fan-out was a separate knob from plan-node concurrency. When
	// Workers is 0 the two aliases compose into one width —
	// max(1,ExecWorkers) × max(1,Parallelism), clamped — instead of
	// multiplying into unbounded goroutines. Prefer Workers.
	Parallelism int
	// Batching routes the query through the admission scheduler: it is
	// held for a short window, merged with other concurrent submissions
	// into one cross-request query set, optimized and executed as a
	// single global plan, and demultiplexed back. The batched path uses
	// the scheduler's BatchConfig for algorithm and execution settings
	// (EnableBatching; defaults apply otherwise), so the other fields of
	// this struct are ignored when Batching is set.
	Batching bool
	// MemoryBudget caps this request's operator state below the
	// database-wide budget (OpenOptions.MemoryBudget): the request runs
	// under a child of the process broker limited to this many bytes,
	// spilling aggregation state that exceeds it. 0 imposes no
	// per-request cap. Ignored with Batching (batches are governed
	// collectively by the admission scheduler).
	MemoryBudget int64
	// ExecWorkers is the other pre-pool alias (task-graph node
	// concurrency); see Parallelism for how the aliases compose when
	// Workers is 0. Each pass's start is gated on the memory broker with
	// the optimizer's footprint estimate — priced per worker, since scan
	// fan-out multiplies resident aggregation state — so at tight
	// budgets execution degrades toward serial instead of
	// overcommitting. Ignored with Batching (use BatchConfig.Workers).
	ExecWorkers int
}

// Create makes a new database directory with the given schema. Facts are
// loaded with Loader; call Close when done to persist metadata.
func Create(dir string, spec SchemaSpec) (*DB, error) {
	dims := make([]*star.Dimension, len(spec.Dims))
	for i, ds := range spec.Dims {
		levels := make([]star.LevelSpec, len(ds.Levels))
		for l, ls := range ds.Levels {
			levels[l] = star.LevelSpec{Name: ls.Name, Members: ls.Members, Parent: ls.Parent}
		}
		d, err := star.NewDimension(ds.Name, levels)
		if err != nil {
			return nil, err
		}
		dims[i] = d
	}
	schema, err := star.NewSchema(dims, spec.Measure)
	if err != nil {
		return nil, err
	}
	db, err := star.Create(dir, schema, 2048)
	if err != nil {
		return nil, err
	}
	return &DB{db: db, mem: mem.New(0)}, nil
}

// CreateSample builds the paper's synthetic test database (4 dimensions
// with 3-level hierarchies, materialized group-bys, bitmap join indexes
// on A'B'C'D) at the given scale; scale 1.0 is the paper's 2 M-row
// configuration.
func CreateSample(dir string, scale float64) (*DB, error) {
	db, err := datagen.Build(dir, datagen.PaperSpec(scale))
	if err != nil {
		return nil, err
	}
	return &DB{db: db, mem: mem.New(0)}, nil
}

// Open opens an existing database directory.
func Open(dir string) (*DB, error) {
	return OpenWith(dir, OpenOptions{})
}

// OpenOptions configures Open.
type OpenOptions struct {
	// PoolFrames sizes the buffer pool (frames of 8 KiB; default 2048).
	// Small pools model datasets much larger than memory: repeated scans
	// pay physical page reads instead of hitting the pool, which is the
	// regime where sharing one pass across requests matters most.
	PoolFrames int

	// PoolShards splits the buffer pool's frame directory into this
	// many lock shards (rounded down to a power of two) so concurrent
	// fetches of different pages don't contend on one mutex. Default 8;
	// set to 1 for a single global-mutex pool. Eviction still behaves
	// globally: the pool only reports "full" when every frame of every
	// shard is pinned.
	PoolShards int

	// Readahead is the sequential prefetch window in pages. When > 0,
	// a detected sequential scan asynchronously reads the next
	// Readahead pages so I/O overlaps with per-tuple CPU. Default 0
	// (off), which keeps page-read accounting exactly deterministic;
	// prefetched pages are counted in the Prefetched/PrefetchHits
	// stats when enabled.
	Readahead int

	// MemoryBudget bounds the bytes of operator state — dimension
	// lookup tables, result bitmaps, aggregation hash tables — live
	// across all concurrently executing queries. When a query's
	// aggregation state would exceed the budget it degrades to a
	// partitioned disk spill with identical results; the batching
	// scheduler additionally defers whole batches while the broker is
	// saturated. 0 (default) tracks usage without enforcing a budget.
	MemoryBudget int64

	// SpillDir is the directory for aggregation spill temp files
	// (removed when their pass finishes). Empty means the system temp
	// directory.
	SpillDir string

	// Workers is the database-default unified worker-pool width for
	// executed plans: one bound covering concurrently running plan
	// passes and the scan morsels they fan out. Default 1 (serial, the
	// legacy order); Options.Workers overrides per request. Widths
	// beyond the GOMAXPROCS-derived cap are clamped.
	Workers int

	// ExecWorkers is the pre-pool alias of Workers, kept accepted; it is
	// used only when Workers is 0.
	ExecWorkers int

	// ResultCacheBudget bounds the semantic result cache in bytes:
	// finished aggregation results are kept and later queries answerable
	// from a cached result (same or finer group-by, subsuming
	// predicates) compile to a zero-IO rollup instead of a star join.
	// The cache's memory is reserved from MemoryBudget's broker and
	// entries are evicted by cost-weighted LRU under pressure; any
	// mutation invalidates all entries. 0 (default) disables the cache.
	ResultCacheBudget int64
}

// OpenWith opens an existing database directory with explicit options.
func OpenWith(dir string, opts OpenOptions) (*DB, error) {
	frames := opts.PoolFrames
	if frames <= 0 {
		frames = 2048
	}
	shards := opts.PoolShards
	if shards <= 0 {
		shards = 8
	}
	db, err := star.OpenWith(dir, storage.PoolOpts{
		Frames:    frames,
		Shards:    shards,
		Readahead: opts.Readahead,
	})
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers == 0 {
		workers = opts.ExecWorkers
	}
	d := &DB{db: db, mem: mem.New(opts.MemoryBudget), spillDir: opts.SpillDir, execWorkers: workers}
	if opts.ResultCacheBudget > 0 {
		d.rescache = rescache.New(opts.ResultCacheBudget, d.mem)
	}
	return d, nil
}

// Close stops the admission scheduler (if batching was enabled),
// persists metadata and closes all files.
func (d *DB) Close() error {
	d.DisableBatching()
	return d.db.Close()
}

// Dimensions returns the dimension names in schema order.
func (d *DB) Dimensions() []string {
	out := make([]string, d.db.Schema.NumDims())
	for i, dim := range d.db.Schema.Dims {
		out[i] = dim.Name
	}
	return out
}

// Measure returns the measure column's name.
func (d *DB) Measure() string { return d.db.Schema.Measure }

// Facts returns the number of rows in the base fact table.
func (d *DB) Facts() int64 { return d.db.Base().Rows() }

// Views lists the stored group-bys (the base table first) with their
// row counts.
func (d *DB) Views() []ViewInfo {
	out := make([]ViewInfo, len(d.db.Views))
	for i, v := range d.db.Views {
		levels := make([]string, len(v.Levels))
		for j, l := range v.Levels {
			levels[j] = d.db.Schema.Dims[j].LevelName(l)
		}
		out[i] = ViewInfo{Name: v.Name, Levels: levels, Rows: v.Rows(), Pages: v.Pages()}
	}
	return out
}

// ViewInfo describes one stored group-by.
type ViewInfo struct {
	Name   string
	Levels []string // level name per dimension ("ALL" = aggregated out)
	Rows   int64
	Pages  int64
}

// levelVector converts per-dimension level names to a level vector.
func (d *DB) levelVector(levelNames []string) ([]int, error) {
	schema := d.db.Schema
	if len(levelNames) != schema.NumDims() {
		return nil, fmt.Errorf("mdxopt: %d level names for %d dimensions", len(levelNames), schema.NumDims())
	}
	levels := make([]int, len(levelNames))
	for i, name := range levelNames {
		l := schema.Dims[i].LevelIndex(name)
		if l < 0 {
			return nil, fmt.Errorf("mdxopt: dimension %s has no level %q", schema.Dims[i].Name, name)
		}
		levels[i] = l
	}
	return levels, nil
}

// Materialize computes and stores the group-by identified by one level
// name per dimension (use "ALL" to aggregate a dimension out). The view
// stores SUM per group (the paper's layout); MaterializeMulti also
// stores COUNT, MIN and MAX so every aggregate can be answered from it.
func (d *DB) Materialize(levelNames ...string) error {
	levels, err := d.levelVector(levelNames)
	if err != nil {
		return err
	}
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	if _, err := d.db.Materialize(levels); err != nil {
		return err
	}
	d.invalidate()
	return nil
}

// MaterializeMulti is Materialize with the multi-aggregate layout,
// enabling COUNT/MIN/MAX/AVG queries (the MDX AGGREGATE clause) to use
// the view instead of the base table.
func (d *DB) MaterializeMulti(levelNames ...string) error {
	levels, err := d.levelVector(levelNames)
	if err != nil {
		return err
	}
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	if _, err := d.db.MaterializeMulti(levels); err != nil {
		return err
	}
	d.invalidate()
	return nil
}

// BuildBitmapIndex builds a bitmap join index on the named dimension of
// the stored group-by identified by level names.
func (d *DB) BuildBitmapIndex(dim string, levelNames ...string) error {
	return d.buildIndex(dim, levelNames, false)
}

// BuildCompressedBitmapIndex is BuildBitmapIndex with EWAH-compressed
// storage — a fraction of the pages for sparse (high-cardinality)
// columns, at the price of a decompression pass per cold lookup.
func (d *DB) BuildCompressedBitmapIndex(dim string, levelNames ...string) error {
	return d.buildIndex(dim, levelNames, true)
}

func (d *DB) buildIndex(dim string, levelNames []string, compressed bool) error {
	levels, err := d.levelVector(levelNames)
	if err != nil {
		return err
	}
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	v := d.db.ViewByLevels(levels)
	if v == nil {
		return fmt.Errorf("mdxopt: group-by %v is not materialized", levelNames)
	}
	di := d.db.Schema.DimIndex(dim)
	if di < 0 {
		return fmt.Errorf("mdxopt: no dimension %q", dim)
	}
	if err := d.db.BuildIndexFormat(v, di, compressed); err != nil {
		return err
	}
	d.invalidate()
	return nil
}

// StaleViews returns the names of materialized group-bys that lag the
// base fact table (facts were loaded after they were computed). Stale
// views are ignored by the optimizer until Refresh.
func (d *DB) StaleViews() []string {
	var out []string
	for _, v := range d.db.StaleViews() {
		out = append(out, v.Name)
	}
	return out
}

// Refresh folds newly loaded facts into every materialized group-by and
// rebuilds affected bitmap join indexes. Refreshed views may hold
// several rows per group (results stay exact); Compact merges them.
func (d *DB) Refresh() error {
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	d.invalidate()
	return d.db.Refresh()
}

// Compact fully re-aggregates the group-by identified by level names,
// merging the duplicate group rows left behind by Refresh.
func (d *DB) Compact(levelNames ...string) error {
	levels, err := d.levelVector(levelNames)
	if err != nil {
		return err
	}
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	v := d.db.ViewByLevels(levels)
	if v == nil {
		return fmt.Errorf("mdxopt: group-by %v is not materialized", levelNames)
	}
	if err := d.db.Compact(v); err != nil {
		return err
	}
	d.invalidate()
	return nil
}

// Loader appends facts to the base table. Close it before querying.
type Loader struct {
	db  *DB
	app interface {
		Append(keys []int32, measures []float64) error
		Close() error
	}
	keys []int32
}

// Load returns a Loader for the base fact table.
func (d *DB) Load() *Loader {
	return &Loader{
		db:   d,
		app:  d.db.Base().Heap.NewAppender(),
		keys: make([]int32, d.db.Schema.NumDims()),
	}
}

// Add appends one fact given base-level member names in dimension order.
func (l *Loader) Add(members []string, measure float64) error {
	schema := l.db.db.Schema
	if len(members) != schema.NumDims() {
		return fmt.Errorf("mdxopt: %d members for %d dimensions", len(members), schema.NumDims())
	}
	for i, name := range members {
		code, ok := schema.Dims[i].MemberCode(0, name)
		if !ok {
			return fmt.Errorf("mdxopt: dimension %s has no base member %q", schema.Dims[i].Name, name)
		}
		l.keys[i] = code
	}
	return l.app.Append(l.keys, []float64{measure})
}

// AddCodes appends one fact given base-level member codes.
func (l *Loader) AddCodes(codes []int32, measure float64) error {
	return l.app.Append(codes, []float64{measure})
}

// Close flushes the loader and invalidates cached plans (materialized
// views are now stale and plan choices may change). It serializes with
// in-flight queries like the other mutations.
func (l *Loader) Close() error {
	l.db.stateMu.Lock()
	defer l.db.stateMu.Unlock()
	l.db.invalidate()
	return l.app.Close()
}

// ResultRow is one group of a query result, with member names at the
// query's group-by levels.
type ResultRow struct {
	Members []string
	Value   float64
}

// QueryResult is the evaluated output of one component query.
type QueryResult struct {
	Name      string   // q1, q2, ... in variant order
	GroupBy   string   // paper notation, e.g. A'B''C''D'
	Aggregate string   // SUM, COUNT, MIN, MAX or AVG
	Columns   []string // dimension names contributing members, in order
	Rows      []ResultRow
}

// Stats summarizes the work an Answer took.
type Stats struct {
	PageReads     int64
	TuplesScanned int64
	TuplesFetched int64
	// BitTests counts per-tuple bitmap membership tests on the index
	// star-join paths (probe routing and scan-side bitmap filters). The
	// count is the same whether the engine routed word-at-a-time or
	// tuple-at-a-time — it is the logical tests, not the instructions.
	BitTests         int64
	SimulatedSeconds float64 // on the paper's 1998 hardware model
	WallNanos        int64

	// PeakMemoryBytes is the tracked operator-state high-water mark of
	// this request's passes: the sum of each reservation's peak
	// (lookup tables, bitmaps, aggregation state), an upper bound on
	// the true simultaneous peak. Accounted even without a budget.
	PeakMemoryBytes int64
	// SpillBytes is how many bytes of aggregation state were written
	// to spill partitions because the memory budget denied growth; 0
	// means the request ran entirely in memory.
	SpillBytes int64
	// SpillPartitions counts spill partition files written.
	SpillPartitions int64

	// PackedFolds counts the aggregated tuples folded through the
	// packed-key vectorized kernel (a subset of the tuples aggregated);
	// 0 means every query in the request fell back to byte-key
	// aggregation (group-by key wider than 64 bits, or packing
	// disabled).
	PackedFolds int64

	// DAGNodes is how many task-graph nodes the plan compiled to (class
	// passes + cache rollups + shared lookup builds). WorkerPeak is the
	// unified worker pool's concurrency peak — nodes running plus the
	// scan-morsel workers they fanned out (1 under the serial executor);
	// DAGParallelPeak is its pre-pool alias and always carries the same
	// value. EffectiveWorkers is the pool width the request actually ran
	// at: the requested Workers (or composed legacy aliases) clamped to
	// the GOMAXPROCS-derived cap.
	DAGNodes         int
	WorkerPeak       int
	DAGParallelPeak  int
	EffectiveWorkers int

	// ResultCacheHits counts this request's queries served from the
	// semantic result cache by a zero-IO rollup; ResultCacheMisses the
	// ones that ran against stored views while the cache was enabled
	// (both zero with the cache off). ResultCacheEvictions counts cache
	// entries evicted to admit this request's results.
	ResultCacheHits      int64
	ResultCacheMisses    int64
	ResultCacheEvictions int64
}

// ClassStats is the work one plan class's shared pass performed.
type ClassStats struct {
	View             string   // base view of the class
	Regime           string   // "scan" or "probe"
	Queries          []string // component query names in the class
	PageReads        int64
	TuplesScanned    int64
	TuplesFetched    int64
	SimulatedSeconds float64
}

// Answer is the result of evaluating one MDX expression.
type Answer struct {
	Queries []QueryResult
	Plan    string // the global plan in the paper's notation
	Classes []ClassStats
	Stats   Stats

	// Batched reports that the query went through the admission
	// scheduler. Plan then describes the whole merged batch, Classes
	// holds only the passes this request participated in (batch mates'
	// queries appear origin-qualified, e.g. "s2.q1"), and Stats is this
	// request's attributed share of the work: its non-shared operators
	// exactly, plus an equal split of each shared pass.
	Batched bool
	// BatchSize is how many concurrent requests the merged batch held
	// (1 when the window closed with no company). Zero when not batched.
	BatchSize int
	// SharedWith counts the *other* requests whose queries shared at
	// least one pass with this one's; 0 means every pass was private.
	SharedWith int
}

// Query parses, optimizes (with GG over the full cost model) and
// executes an MDX expression. Use QueryWith for control.
func (d *DB) Query(src string) (*Answer, error) {
	return d.QueryWith(src, Options{})
}

// QueryWith is Query with explicit options.
func (d *DB) QueryWith(src string, opts Options) (*Answer, error) {
	return d.QueryContext(context.Background(), src, opts)
}

// QueryContext is QueryWith with cancellation: scans check ctx
// periodically and abort with its error when it is done. With
// opts.Batching the request is admitted to the scheduler instead, and
// cancellation detaches only this request's pipelines — a shared pass
// keeps running for the other requests in the batch.
func (d *DB) QueryContext(ctx context.Context, src string, opts Options) (*Answer, error) {
	if opts.Batching {
		return d.queryBatched(ctx, src)
	}
	d.stateMu.RLock()
	defer d.stateMu.RUnlock()
	queries, g, gen, err := d.plan(src, opts)
	if err != nil {
		return nil, err
	}
	return d.run(ctx, queries, g, opts, gen)
}

// plan parses and optimizes src, consulting the plan cache. It returns
// the database generation the plan is valid for (stable while the
// caller holds stateMu).
func (d *DB) plan(src string, opts Options) ([]*query.Query, *plan.Global, uint64, error) {
	key := fmt.Sprintf("%s|%s|%t", src, opts.Algorithm, opts.PaperPlanSpace)
	epoch := d.rescache.Epoch()
	d.mu.Lock()
	if c, ok := d.planCache[key]; ok {
		if c.gen == d.gen && c.epoch == epoch {
			d.planHits++
			d.cacheTick++
			c.lastUse = d.cacheTick
			gen := d.gen
			d.mu.Unlock()
			return c.queries, c.global, gen, nil
		}
		delete(d.planCache, key)
	}
	gen := d.gen
	d.mu.Unlock()

	queries, err := mdx.ParseAndTranslate(d.db.Schema, src)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(queries) == 0 {
		return nil, nil, 0, errors.New("mdxopt: expression denotes no queries")
	}
	g, _, err := d.optimize(queries, opts, gen)
	if err != nil {
		return nil, nil, 0, err
	}
	d.mu.Lock()
	if d.gen == gen {
		if d.planCache == nil {
			d.planCache = make(map[string]*cachedPlan)
		}
		if len(d.planCache) >= maxCachedPlans {
			evictOldest(d.planCache)
		}
		d.cacheTick++
		d.planCache[key] = &cachedPlan{gen: gen, epoch: epoch, lastUse: d.cacheTick, queries: queries, global: g}
	}
	d.mu.Unlock()
	return queries, g, gen, nil
}

// Explain parses and optimizes an MDX expression, returning the global
// plan without executing it.
func (d *DB) Explain(src string, opts Options) (string, error) {
	d.stateMu.RLock()
	defer d.stateMu.RUnlock()
	queries, err := mdx.ParseAndTranslate(d.db.Schema, src)
	if err != nil {
		return "", err
	}
	g, _, err := d.optimize(queries, opts, d.curGen())
	if err != nil {
		return "", err
	}
	return g.Describe(), nil
}

func (d *DB) optimize(queries []*query.Query, opts Options, gen uint64) (*plan.Global, *plan.Estimator, error) {
	var est *plan.Estimator
	if opts.PaperPlanSpace {
		est = plan.NewPaperEstimator(d.db)
	} else {
		est = plan.NewEstimator(d.db)
	}
	est.Cache = d.rescache
	est.Gen = gen
	alg := core.Algorithm(opts.Algorithm)
	if opts.Algorithm == "" {
		alg = core.GG
	}
	g, err := core.Optimize(est, queries, alg)
	if err != nil {
		return nil, nil, err
	}
	return g, est, nil
}

func (d *DB) run(ctx context.Context, queries []*query.Query, g *plan.Global, opts Options, gen uint64) (*Answer, error) {
	if opts.ColdCache {
		if err := d.db.ColdReset(); err != nil {
			return nil, err
		}
	}
	env := exec.NewEnv(d.db)
	env.Ctx = ctx
	env.Mem = d.mem
	if opts.MemoryBudget > 0 {
		env.Mem = d.mem.Child(opts.MemoryBudget)
	}
	env.SpillDir = d.spillDir
	var st exec.Stats
	workers := d.effectiveWorkers(opts.Workers, opts.ExecWorkers, opts.Parallelism)
	ex, err := core.Run(env, g, queries, &st, d.execOptions(workers, env.Mem))
	if err != nil {
		return nil, err
	}
	results := ex.Results
	d.noteCacheUse(g, len(queries))
	evicted := d.putResults(queries, results, ex.PerQuery, gen)
	ans := &Answer{Plan: g.Describe()}
	for _, cs := range ex.Classes {
		ans.Classes = append(ans.Classes, classStatsOut(cs))
	}
	for i, q := range queries {
		ans.Queries = append(ans.Queries, d.formatResult(q, results[i]))
	}
	ans.Stats = statsOut(st)
	ans.Stats.DAGNodes = ex.DAGNodes
	ans.Stats.WorkerPeak = ex.WorkerPeak
	ans.Stats.DAGParallelPeak = ex.DAGParallelPeak
	ans.Stats.EffectiveWorkers = ex.EffectiveWorkers
	d.cacheCounters(&ans.Stats, results, evicted)
	return ans, nil
}

// effectiveWorkers resolves one request's unified pool width: the
// Workers option when set, otherwise the legacy aliases composed —
// ExecWorkers (or the database default when that is 0 too) times
// Parallelism — so the pre-pool knob pair bounds one pool instead of
// multiplying goroutine layers. The result is clamped to
// [1, dag.WorkerCap()].
func (d *DB) effectiveWorkers(workers, execWorkers, parallelism int) int {
	if workers <= 0 && execWorkers == 0 {
		execWorkers = d.execWorkers
	}
	return composeWorkers(workers, execWorkers, parallelism)
}

// composeWorkers folds the unified Workers knob and its two legacy
// aliases into one clamped pool width (see Options.Workers).
func composeWorkers(workers, execWorkers, parallelism int) int {
	w := workers
	if w <= 0 {
		if execWorkers < 1 {
			execWorkers = 1
		}
		if parallelism < 1 {
			parallelism = 1
		}
		w = execWorkers * parallelism
	}
	if c := dag.WorkerCap(); w > c {
		w = c
	}
	if w < 1 {
		w = 1
	}
	return w
}

// execOptions shapes the task-graph executor's configuration for one
// request running at the given resolved pool width: when actually
// parallel, per-pass memory admission against broker with the
// optimizer's footprint estimates, priced per worker (scan fan-out
// multiplies resident aggregation tables).
func (d *DB) execOptions(workers int, broker *mem.Broker) core.ExecOptions {
	if workers <= 1 {
		return core.ExecOptions{}
	}
	est := plan.NewEstimator(d.db)
	est.Workers = workers
	return core.ExecOptions{
		Workers: workers,
		Est:     est,
		Gate: func(ctx context.Context, cost int64) (func(), error) {
			return broker.Admit(ctx, cost)
		},
	}
}

// noteCacheUse records one executed plan's cache outcome: each served
// entry's recency is refreshed and the hit/miss counters advance.
func (d *DB) noteCacheUse(g *plan.Global, totalQueries int) {
	if d.rescache == nil {
		return
	}
	for _, cp := range g.Cached {
		d.rescache.Touch(cp.Entry)
	}
	d.rescache.RecordHits(int64(len(g.Cached)))
	d.rescache.RecordMisses(int64(totalQueries - len(g.Cached)))
}

// putResults admits finished results into the result cache (including
// rollup-served ones — rolling a cached entry up seeds the coarser
// group-by as its own entry) and returns how many entries were evicted
// to make room. gen must be the database generation the results were
// computed at, or older: a stale-marked entry never answers a probe, so
// capturing gen before execution is always safe.
func (d *DB) putResults(queries []*query.Query, results []*exec.Result, perQ []exec.Stats, gen uint64) int64 {
	if d.rescache == nil {
		return 0
	}
	model := cost.Default()
	var evicted int64
	for i, r := range results {
		if r == nil || r.Err != nil {
			continue
		}
		rows := make([]rescache.Row, len(r.Groups))
		for j, grp := range r.Groups {
			rows[j] = rescache.Row{Keys: grp.Keys, Value: grp.Value}
		}
		evicted += d.rescache.Put(queries[i], gen, rows, perQ[i].SimulatedMicros(model))
	}
	return evicted
}

// cacheCounters fills an Answer's result-cache fields from its results.
func (d *DB) cacheCounters(st *Stats, results []*exec.Result, evicted int64) {
	st.ResultCacheEvictions = evicted
	if d.rescache == nil {
		return
	}
	for _, r := range results {
		if r.Cached {
			st.ResultCacheHits++
		} else {
			st.ResultCacheMisses++
		}
	}
}

// statsOut converts execution stats to the public shape.
func statsOut(st exec.Stats) Stats {
	return Stats{
		PageReads:        st.IO.Reads(),
		TuplesScanned:    st.TuplesScanned,
		TuplesFetched:    st.TuplesFetched,
		BitTests:         st.BitTests,
		SimulatedSeconds: st.SimulatedSeconds(cost.Default()),
		WallNanos:        int64(st.Wall),
		PeakMemoryBytes:  st.PeakMemory,
		SpillBytes:       st.SpillBytes,
		SpillPartitions:  st.SpillPartitions,
		PackedFolds:      st.PackedFolds,
	}
}

// classStatsOut converts one class's execution breakdown to the public
// shape.
func classStatsOut(cs core.ClassStat) ClassStats {
	return ClassStats{
		View:             cs.View,
		Regime:           cs.Regime,
		Queries:          cs.Queries,
		PageReads:        cs.Stats.IO.Reads(),
		TuplesScanned:    cs.Stats.TuplesScanned,
		TuplesFetched:    cs.Stats.TuplesFetched,
		SimulatedSeconds: cs.Stats.SimulatedSeconds(cost.Default()),
	}
}

func (d *DB) formatResult(q *query.Query, r *exec.Result) QueryResult {
	schema := d.db.Schema
	qr := QueryResult{Name: q.Name, GroupBy: q.GroupByName(), Aggregate: q.Agg.String()}
	var dims []int
	for i, l := range q.Levels {
		if l != schema.Dims[i].AllLevel() {
			dims = append(dims, i)
			qr.Columns = append(qr.Columns, schema.Dims[i].Name)
		}
	}
	for _, g := range r.Groups {
		row := ResultRow{Value: g.Value}
		for _, i := range dims {
			row.Members = append(row.Members, schema.Dims[i].MemberName(q.Levels[i], g.Keys[i]))
		}
		qr.Rows = append(qr.Rows, row)
	}
	return qr
}

// Batched serving.
//
// With batching enabled, concurrent requests are admitted to a
// scheduler that collects them for a short window and optimizes the
// whole cross-request query set as one — the paper's multi-query
// optimization applied across independent callers instead of within one
// MDX expression. Requests whose queries land in the same plan class
// share a single scan or probe pass; each caller gets its own results,
// an attributed share of the work, and Answer.SharedWith reporting how
// many other requests it shared a pass with.

// ErrBusy is returned by batched queries when the admission queue is
// full — backpressure; retry after a pause.
var ErrBusy = sched.ErrQueueFull

// BatchConfig configures the admission scheduler (EnableBatching).
type BatchConfig struct {
	// Window is how long the scheduler collects concurrent submissions
	// after the first arrives (default 3ms; 2–10ms is the useful range —
	// longer merges more work, shorter bounds added latency).
	Window time.Duration
	// MaxBatch caps submissions merged into one batch (default 16); a
	// full batch runs without waiting out the window.
	MaxBatch int
	// MaxQueue bounds the admission queue; submissions beyond it fail
	// with ErrBusy (default 64).
	MaxQueue int
	// Algorithm is the multi-query optimization algorithm for merged
	// batches (default GG).
	Algorithm Algorithm
	// PaperPlanSpace confines batch plans to the paper's plan space.
	PaperPlanSpace bool
	// Workers is the unified worker-pool width each batch executes at:
	// one bound on concurrently running plan passes plus the scan
	// morsels they fan out (default 1 = serial; clamped to the
	// GOMAXPROCS-derived cap). The batch's memory is governed
	// collectively by the admission claim — sized per worker, since scan
	// fan-out multiplies resident aggregation state — so passes are not
	// individually gated.
	Workers int
	// Parallelism and ExecWorkers are the pre-pool aliases; when Workers
	// is 0 they compose into one width, max(1,ExecWorkers) ×
	// max(1,Parallelism), clamped. Prefer Workers.
	Parallelism int
	// ColdCache flushes the buffer pool before every batch, as in the
	// paper's measurements.
	ColdCache bool
	// ExecWorkers is a pre-pool alias; see Parallelism.
	ExecWorkers int
}

// EnableBatching (re)starts the admission scheduler with the given
// configuration. Queries opt in per call with Options.Batching; a query
// with Batching set before EnableBatching starts a scheduler with
// default configuration.
func (d *DB) EnableBatching(cfg BatchConfig) {
	d.DisableBatching()
	d.schedMu.Lock()
	defer d.schedMu.Unlock()
	d.batchCfg = cfg
	d.batcher = sched.New(sched.Config{
		Window:   cfg.Window,
		MaxBatch: cfg.MaxBatch,
		MaxQueue: cfg.MaxQueue,
		Run:      d.runBatchSubs,
	})
}

// DisableBatching stops the admission scheduler; in-flight submissions
// fail with an error. Queries with Options.Batching lazily restart it.
func (d *DB) DisableBatching() {
	d.schedMu.Lock()
	s := d.batcher
	d.batcher = nil
	d.schedMu.Unlock()
	if s != nil {
		s.Stop()
	}
}

// BatchStats snapshots the admission scheduler's counters.
type BatchStats struct {
	Batches     int64 // batches executed
	Submissions int64 // requests admitted
	Coalesced   int64 // requests that ran in a batch with company
	Rejected    int64 // requests refused with ErrBusy
}

// BatchStats reports scheduler activity since batching was enabled.
func (d *DB) BatchStats() BatchStats {
	d.schedMu.Lock()
	s := d.batcher
	d.schedMu.Unlock()
	if s == nil {
		return BatchStats{}
	}
	m := s.Metrics()
	return BatchStats{Batches: m.Batches, Submissions: m.Submissions, Coalesced: m.Coalesced, Rejected: m.Rejected}
}

// MemoryStats snapshots the database-wide memory broker.
type MemoryStats struct {
	Limit       int64         // configured budget in bytes (0 = track only)
	Used        int64         // bytes currently reserved by operator state
	Peak        int64         // high-water mark of Used since Open
	Overdraft   int64         // bytes granted past the budget for required state
	Denied      int64         // refusable grants denied (each triggered a spill)
	Admitted    int64         // batches admitted by the scheduler's memory gate
	Deferred    int64         // batches that had to wait for memory
	DeferredFor time.Duration // total time batches spent waiting for memory
	Waiting     int           // batches currently queued for admission
}

// MemoryStats reports the memory broker's accounting since Open. Used
// returns to zero whenever no query is executing.
func (d *DB) MemoryStats() MemoryStats {
	s := d.mem.Stats()
	return MemoryStats{
		Limit:       s.Limit,
		Used:        s.Used,
		Peak:        s.Peak,
		Overdraft:   s.Overdraft,
		Denied:      s.Denied,
		Admitted:    s.Admitted,
		Deferred:    s.Deferred,
		DeferredFor: s.DeferredFor,
		Waiting:     s.Waiting,
	}
}

// ResultCacheStats snapshots the semantic result cache. All zeros when
// the cache is disabled (OpenOptions.ResultCacheBudget unset).
type ResultCacheStats struct {
	Budget    int64 // configured byte budget (0 = disabled)
	Bytes     int64 // bytes currently cached
	Entries   int   // results currently cached
	Hits      int64 // queries served by zero-IO rollup from a cached result
	Misses    int64 // queries that ran against stored views with the cache on
	Evictions int64 // entries evicted by cost-weighted LRU for space
	Inserts   int64 // results admitted
	Rejected  int64 // results refused (oversize, or eviction could not make room)
}

// ResultCacheStats reports the result cache's accounting since Open.
func (d *DB) ResultCacheStats() ResultCacheStats {
	s := d.rescache.Stats()
	return ResultCacheStats{
		Budget:    s.Budget,
		Bytes:     s.Bytes,
		Entries:   s.Entries,
		Hits:      s.Hits,
		Misses:    s.Misses,
		Evictions: s.Evictions,
		Inserts:   s.Inserts,
		Rejected:  s.Rejected,
	}
}

// ensureBatcher returns the scheduler, starting one with default
// configuration on first use.
func (d *DB) ensureBatcher() *sched.Scheduler {
	d.schedMu.Lock()
	defer d.schedMu.Unlock()
	if d.batcher == nil {
		d.batcher = sched.New(sched.Config{Run: d.runBatchSubs})
	}
	return d.batcher
}

// queryBatched parses the expression, submits it to the scheduler, and
// shapes the demultiplexed outcome into an Answer.
func (d *DB) queryBatched(ctx context.Context, src string) (*Answer, error) {
	queries, err := mdx.ParseAndTranslate(d.db.Schema, src)
	if err != nil {
		return nil, err
	}
	if len(queries) == 0 {
		return nil, errors.New("mdxopt: expression denotes no queries")
	}
	// Capture the generation before submitting: results are computed at
	// this generation or newer, and marking a cache entry with an older
	// generation is safe (it just never answers a probe).
	gen := d.curGen()
	out, err := d.ensureBatcher().Submit(ctx, src, queries)
	if err != nil {
		return nil, err
	}
	evicted := d.putResults(out.Queries, out.Results, out.PerQuery, gen)
	ans := &Answer{
		Plan:       out.Plan,
		Batched:    true,
		BatchSize:  out.BatchSize,
		SharedWith: out.SharedWith,
	}
	for _, cs := range out.Classes {
		ans.Classes = append(ans.Classes, classStatsOut(cs))
	}
	var st exec.Stats
	for _, qs := range out.PerQuery {
		st.Add(qs)
	}
	for i, q := range out.Queries {
		ans.Queries = append(ans.Queries, d.formatResult(q, out.Results[i]))
	}
	ans.Stats = statsOut(st)
	ans.Stats.DAGNodes = out.DAGNodes
	ans.Stats.WorkerPeak = out.WorkerPeak
	ans.Stats.DAGParallelPeak = out.DAGParallelPeak
	ans.Stats.EffectiveWorkers = out.EffectiveWorkers
	d.cacheCounters(&ans.Stats, out.Results, evicted)
	return ans, nil
}

// runBatchSubs evaluates one admitted batch: it holds the read lock (so
// mutations wait out the batch), prepares the execution environment,
// and hands the cross-request pipeline to sched.Exec. Admission is
// memory-aware: the planned batch's footprint is estimated with the
// optimizer's memory model and claimed from the broker before
// execution, deferring the batch (not erroring it) while concurrent
// work saturates the budget.
func (d *DB) runBatchSubs(subs []*sched.Submission) {
	d.schedMu.Lock()
	cfg := d.batchCfg
	d.schedMu.Unlock()
	d.stateMu.RLock()
	defer d.stateMu.RUnlock()
	if cfg.ColdCache {
		if err := d.db.ColdReset(); err != nil {
			for _, sub := range subs {
				sub.Finish(&sched.Outcome{Err: err})
			}
			return
		}
	}
	workers := composeWorkers(cfg.Workers, cfg.ExecWorkers, cfg.Parallelism)
	env := exec.NewEnv(d.db)
	env.Mem = d.mem
	env.SpillDir = d.spillDir
	planFn := func(subQ [][]*query.Query, keys []string) ([][]*query.Query, *plan.Global, error) {
		return d.planBatch(cfg, subQ, keys)
	}
	var est *plan.Estimator
	if cfg.PaperPlanSpace {
		est = plan.NewPaperEstimator(d.db)
	} else {
		est = plan.NewEstimator(d.db)
	}
	est.Workers = workers
	admit := func(ctx context.Context, g *plan.Global) (func(), error) {
		cl, err := d.mem.AdmitClaim(ctx, est.GlobalMemory(g))
		if err != nil {
			return nil, err
		}
		// Execute under the claim-linked broker: the batch's real
		// reservations draw the admission claim down as they
		// materialize, so its footprint is charged max(estimate,
		// reserved) rather than their sum.
		env.Mem = cl.Broker()
		return cl.Release, nil
	}
	// The whole batch already holds an admission claim sized by
	// GlobalMemory — the sum over its nodes, priced per worker — so
	// individual nodes run ungated.
	sched.Exec(env, planFn, admit, subs, core.ExecOptions{Workers: workers})
}

// planBatch optimizes a merged cross-request query set, consulting the
// batch plan cache. The cache is keyed by batch *composition* — the
// multiset of member MDX sources plus planning options — so a recurring
// mix of concurrent requests replans nothing, while any new mix
// optimizes fresh. On a hit the submissions' freshly parsed queries are
// replaced by the cached ones the stored plan references.
func (d *DB) planBatch(cfg BatchConfig, subQueries [][]*query.Query, keys []string) ([][]*query.Query, *plan.Global, error) {
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	sortedKeys := make([]string, len(order))
	for p, i := range order {
		sortedKeys[p] = keys[i]
	}
	ckey := fmt.Sprintf("batch|%s|%t|%s", cfg.Algorithm, cfg.PaperPlanSpace, strings.Join(sortedKeys, "\x1f"))

	total := 0
	for _, qs := range subQueries {
		total += len(qs)
	}

	epoch := d.rescache.Epoch()
	d.mu.Lock()
	if c, ok := d.batchCache[ckey]; ok {
		valid := c.gen == d.gen && c.epoch == epoch && len(c.perPos) == len(order)
		if valid {
			for p, i := range order {
				if len(c.perPos[p]) != len(subQueries[i]) {
					valid = false
					break
				}
			}
		}
		if valid {
			d.batchHits++
			d.cacheTick++
			c.lastUse = d.cacheTick
			out := make([][]*query.Query, len(subQueries))
			for p, i := range order {
				out[i] = c.perPos[p]
			}
			g := c.global
			d.mu.Unlock()
			d.noteCacheUse(g, total)
			return out, g, nil
		}
		if c.gen != d.gen || c.epoch != epoch {
			delete(d.batchCache, ckey)
		}
	}
	gen := d.gen
	d.mu.Unlock()

	// Optimize the merged set in composition order so equal batches
	// yield identical plans regardless of arrival order.
	var merged []*query.Query
	perPos := make([][]*query.Query, len(order))
	for p, i := range order {
		perPos[p] = subQueries[i]
		merged = append(merged, subQueries[i]...)
	}
	g, _, err := d.optimize(merged, Options{Algorithm: cfg.Algorithm, PaperPlanSpace: cfg.PaperPlanSpace}, gen)
	if err != nil {
		return nil, nil, err
	}
	d.mu.Lock()
	if d.gen == gen {
		if d.batchCache == nil {
			d.batchCache = make(map[string]*cachedBatch)
		}
		if len(d.batchCache) >= maxCachedPlans {
			evictOldest(d.batchCache)
		}
		d.cacheTick++
		d.batchCache[ckey] = &cachedBatch{gen: gen, epoch: epoch, lastUse: d.cacheTick, perPos: perPos, global: g}
	}
	d.mu.Unlock()
	d.noteCacheUse(g, total)
	return subQueries, g, nil
}

// Package mdxopt is a ROLAP engine with simultaneous multi-query
// optimization, reproducing Zhao, Deshpande, Naughton & Shukla,
// "Simultaneous Optimization and Evaluation of Multiple Dimensional
// Queries" (SIGMOD 1998).
//
// An mdxopt database is a star schema stored in paged heap files:
// dimension tables with hierarchies, a base fact table, materialized
// group-by views, and bitmap join indexes. A single MDX expression may
// denote several related group-by queries; the engine optimizes them *as
// a set* — choosing which materialized group-by each query reads and
// merging queries that share a base table into one shared-scan or
// shared-probe pass (the paper's §3 operators) — using the paper's TPLO,
// ETPLG and GG algorithms or an exhaustive optimum.
//
// Quick start:
//
//	db, err := mdxopt.CreateSample(dir, 0.01) // paper's test database at 1% scale
//	...
//	ans, err := db.Query(`{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS
//	    {C''.C1} on PAGES CONTEXT ABCD FILTER (D'.DD1)`)
//	for _, qr := range ans.Queries {
//	    fmt.Println(qr.GroupBy, len(qr.Rows), "groups")
//	}
package mdxopt

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mdxopt/internal/core"
	"mdxopt/internal/cost"
	"mdxopt/internal/dag"
	"mdxopt/internal/datagen"
	"mdxopt/internal/exec"
	"mdxopt/internal/mdx"
	"mdxopt/internal/mem"
	"mdxopt/internal/plan"
	"mdxopt/internal/query"
	"mdxopt/internal/rescache"
	"mdxopt/internal/sched"
	"mdxopt/internal/star"
	"mdxopt/internal/storage"
)

// Algorithm selects the multi-query optimization strategy.
type Algorithm string

// The available algorithms. See the package documentation of
// internal/core for their semantics.
const (
	TPLO    Algorithm = "TPLO"    // per-query local optima, merge coincidences
	ETPLG   Algorithm = "ETPLG"   // greedy base-table sharing
	GG      Algorithm = "GG"      // greedy with class re-basing (recommended)
	GGI     Algorithm = "GGI"     // GG + hill climbing from both greedy starts
	Optimal Algorithm = "Optimal" // exhaustive (≤ 10 queries)
)

// LevelSpec describes one hierarchy level of a dimension, finest first.
type LevelSpec struct {
	Name    string
	Members []string
	// Parent[i] is the parent code (index into the next coarser level's
	// Members) of member i. Must be nil for the top level.
	Parent []int32
}

// DimensionSpec describes a dimension: levels ordered base to top.
type DimensionSpec struct {
	Name   string
	Levels []LevelSpec
}

// SchemaSpec describes a star schema.
type SchemaSpec struct {
	Dims    []DimensionSpec
	Measure string
}

// DB is an open mdxopt database.
//
// Queries (Query, QueryWith, QueryContext, Explain) may be issued
// concurrently from multiple goroutines, and they never block on
// maintenance: each request pins the latest published catalog snapshot
// (an immutable epoch-numbered copy of the schema, view set, and index
// set) and evaluates entirely against it. Mutations — Materialize,
// MaterializeMulti, BuildBitmapIndex, Refresh, Compact, and a Loader's
// Close — are serialized against each other, build their replacement
// heap and index files off to the side, and atomically publish a
// successor snapshot when they are consistent; replaced files are
// retired and reclaimed only after the last request pinned to an older
// epoch drains (Close force-drains). Every answer reports the epoch it
// ran against in Stats.SnapshotEpoch, and results are byte-identical
// per pinned epoch. The remaining caller obligations: a Loader's
// Add/AddCodes calls must not run concurrently with mutations or other
// loaders (loaded facts become visible to queries atomically at Close),
// and Options.ColdCache queries must not race mutations (the pool flush
// they perform is incompatible with concurrent maintenance I/O).
// OpenOptions.SerializedMutations restores the legacy regime — mutations
// take an exclusive lock and stall queries — as an A/B baseline.
type DB struct {
	db *star.Database

	// serialized restores the legacy locked maintenance regime
	// (OpenOptions.SerializedMutations): queries take stateMu.RLock for
	// their whole run and mutations take stateMu.Lock, so maintenance
	// stalls the serving path. Off by default: the snapshot path above
	// never blocks queries on mutations.
	serialized bool

	// mem is the process-wide memory broker governing operator state
	// (OpenOptions.MemoryBudget). Always non-nil; with no budget it
	// tracks usage without enforcing one.
	mem *mem.Broker
	// spillDir is where budget-exceeded aggregation state spills
	// (OpenOptions.SpillDir; empty = the system temp directory).
	spillDir string
	// execWorkers is the default unified pool width for plans this
	// database executes (OpenOptions.Workers, with OpenOptions.ExecWorkers
	// as its accepted alias; 1 = serial).
	execWorkers int

	// rescache is the semantic result cache
	// (OpenOptions.ResultCacheBudget); nil when disabled — every
	// rescache method is nil-safe.
	rescache *rescache.Cache

	// stateMu is the legacy reader/writer lock, used only with
	// SerializedMutations. On the snapshot path neither queries nor
	// mutations take it: the publish pointer is guarded inside
	// star.Database's epoch table.
	stateMu sync.RWMutex

	// Plan cache: optimized global plans keyed by (MDX text, options).
	// An entry is valid only for the catalog snapshot epoch and
	// result-cache epoch it was built against — a plan may embed cache
	// entries and view choices that a mutation or cache insert
	// invalidates — so hits require both epochs to match the request's.
	// Guarded by mu. batchCache is the cross-request analogue, keyed by
	// batch composition.
	mu         sync.Mutex
	planCache  map[string]*cachedPlan
	batchCache map[string]*cachedBatch
	planHits   int64
	batchHits  int64
	cacheTick  uint64

	// Admission scheduler for batched serving (Options.Batching /
	// EnableBatching). Guarded by schedMu.
	schedMu  sync.Mutex
	batcher  *sched.Scheduler
	batchCfg BatchConfig
}

type cachedPlan struct {
	epoch   uint64 // catalog snapshot epoch the plan was built against
	rcEpoch uint64 // result-cache epoch the plan was built against
	lastUse uint64 // cacheTick of the last hit, for LRU eviction
	queries []*query.Query
	global  *plan.Global
}

type cachedBatch struct {
	epoch   uint64
	rcEpoch uint64
	lastUse uint64
	// perPos holds the query set of each submission in the key's sorted
	// order; the global plan references exactly these objects.
	perPos [][]*query.Query
	global *plan.Global
}

func (c *cachedPlan) lastUsed() uint64  { return c.lastUse }
func (c *cachedBatch) lastUsed() uint64 { return c.lastUse }

// maxCachedPlans bounds the plan and batch caches; at capacity the
// least-recently-used entry is evicted to admit the new one, so a hot
// working set of expressions survives an occasional one-off query.
const maxCachedPlans = 256

// evictOldest removes the least-recently-used entry of a plan cache.
func evictOldest[V interface{ lastUsed() uint64 }](m map[string]V) {
	var victim string
	var min uint64
	first := true
	for k, v := range m {
		if first || v.lastUsed() < min {
			victim, min, first = k, v.lastUsed(), false
		}
	}
	if !first {
		delete(m, victim)
	}
}

// invalidate discards cached plans and cached results after a database
// mutation. Epoch-keyed validity would age the entries out lazily; the
// eager drop just frees their memory at once.
func (d *DB) invalidate() {
	d.mu.Lock()
	d.planCache = nil
	d.batchCache = nil
	d.mu.Unlock()
	d.rescache.Invalidate()
}

// pin acquires the catalog snapshot one request runs against. On the
// snapshot path it pins the latest published epoch (release drops the
// pin, allowing retired-file reclamation); with SerializedMutations it
// takes the legacy read lock for the request's duration instead and
// freezes the live state.
func (d *DB) pin() (*star.Snapshot, func()) {
	if d.serialized {
		d.stateMu.RLock()
		return d.db.Snapshot(), d.stateMu.RUnlock
	}
	return d.db.Pin()
}

// mutLock brackets one mutation: a no-op on the snapshot path (the
// star layer serializes mutations and publishes atomically), the legacy
// exclusive lock with SerializedMutations.
func (d *DB) mutLock() func() {
	if d.serialized {
		d.stateMu.Lock()
		return d.stateMu.Unlock
	}
	return func() {}
}

// PlanCacheHits reports how many requests were answered with a cached
// plan (the parse/optimize phase skipped) — unbatched plan-cache hits
// plus batch-composition cache hits.
func (d *DB) PlanCacheHits() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.planHits + d.batchHits
}

// BatchPlanCacheHits reports the batch-composition cache's share of
// PlanCacheHits: batches whose exact member mix had been optimized
// before and reused the stored global plan.
func (d *DB) BatchPlanCacheHits() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.batchHits
}

// Options configures query planning and execution.
type Options struct {
	// Algorithm defaults to GG.
	Algorithm Algorithm
	// PaperPlanSpace confines the optimizer to the paper's plan space
	// (no §3.3 filter conversion as a first-class choice). Off by
	// default: the full model finds strictly better plans.
	PaperPlanSpace bool
	// ColdCache flushes the buffer pool and index caches before
	// executing, as the paper does between measurements.
	ColdCache bool
	// Workers is the unified worker-pool width for this request: one
	// bound on every executor goroutine at once — concurrently running
	// plan passes (class scans, cache rollups, shared lookup builds) AND
	// the page-aligned scan morsels a running pass fans out, all drawing
	// slots from one pool. 0 falls back to the legacy aliases below (or
	// the database default, OpenOptions.Workers); 1 runs fully serially.
	// Results and deterministic work counters are identical at every
	// width. Widths beyond the GOMAXPROCS-derived cap are clamped;
	// Stats.EffectiveWorkers reports the width actually used.
	Workers int
	// Parallelism is a documented alias from the pre-pool API, when scan
	// fan-out was a separate knob from plan-node concurrency. When
	// Workers is 0 the two aliases compose into one width —
	// max(1,ExecWorkers) × max(1,Parallelism), clamped — instead of
	// multiplying into unbounded goroutines. Prefer Workers.
	Parallelism int
	// Batching routes the query through the admission scheduler: it is
	// held for a short window, merged with other concurrent submissions
	// into one cross-request query set, optimized and executed as a
	// single global plan, and demultiplexed back. The batched path uses
	// the scheduler's BatchConfig for algorithm and execution settings
	// (EnableBatching; defaults apply otherwise), so the other fields of
	// this struct are ignored when Batching is set.
	Batching bool
	// MemoryBudget caps this request's operator state below the
	// database-wide budget (OpenOptions.MemoryBudget): the request runs
	// under a child of the process broker limited to this many bytes,
	// spilling aggregation state that exceeds it. 0 imposes no
	// per-request cap. Ignored with Batching (batches are governed
	// collectively by the admission scheduler).
	MemoryBudget int64
	// ExecWorkers is the other pre-pool alias (task-graph node
	// concurrency); see Parallelism for how the aliases compose when
	// Workers is 0. Each pass's start is gated on the memory broker with
	// the optimizer's footprint estimate — priced per worker, since scan
	// fan-out multiplies resident aggregation state — so at tight
	// budgets execution degrades toward serial instead of
	// overcommitting. Ignored with Batching (use BatchConfig.Workers).
	ExecWorkers int
}

// Create makes a new database directory with the given schema. Facts are
// loaded with Loader; call Close when done to persist metadata.
func Create(dir string, spec SchemaSpec) (*DB, error) {
	dims := make([]*star.Dimension, len(spec.Dims))
	for i, ds := range spec.Dims {
		levels := make([]star.LevelSpec, len(ds.Levels))
		for l, ls := range ds.Levels {
			levels[l] = star.LevelSpec{Name: ls.Name, Members: ls.Members, Parent: ls.Parent}
		}
		d, err := star.NewDimension(ds.Name, levels)
		if err != nil {
			return nil, err
		}
		dims[i] = d
	}
	schema, err := star.NewSchema(dims, spec.Measure)
	if err != nil {
		return nil, err
	}
	db, err := star.Create(dir, schema, 2048)
	if err != nil {
		return nil, err
	}
	return &DB{db: db, mem: mem.New(0)}, nil
}

// CreateSample builds the paper's synthetic test database (4 dimensions
// with 3-level hierarchies, materialized group-bys, bitmap join indexes
// on A'B'C'D) at the given scale; scale 1.0 is the paper's 2 M-row
// configuration.
func CreateSample(dir string, scale float64) (*DB, error) {
	db, err := datagen.Build(dir, datagen.PaperSpec(scale))
	if err != nil {
		return nil, err
	}
	return &DB{db: db, mem: mem.New(0)}, nil
}

// Open opens an existing database directory.
func Open(dir string) (*DB, error) {
	return OpenWith(dir, OpenOptions{})
}

// OpenOptions configures Open.
type OpenOptions struct {
	// PoolFrames sizes the buffer pool (frames of 8 KiB; default 2048).
	// Small pools model datasets much larger than memory: repeated scans
	// pay physical page reads instead of hitting the pool, which is the
	// regime where sharing one pass across requests matters most.
	PoolFrames int

	// PoolShards splits the buffer pool's frame directory into this
	// many lock shards (rounded down to a power of two) so concurrent
	// fetches of different pages don't contend on one mutex. Default 8;
	// set to 1 for a single global-mutex pool. Eviction still behaves
	// globally: the pool only reports "full" when every frame of every
	// shard is pinned.
	PoolShards int

	// Readahead is the sequential prefetch window in pages. When > 0,
	// a detected sequential scan asynchronously reads the next
	// Readahead pages so I/O overlaps with per-tuple CPU. Default 0
	// (off), which keeps page-read accounting exactly deterministic;
	// prefetched pages are counted in the Prefetched/PrefetchHits
	// stats when enabled.
	Readahead int

	// MemoryBudget bounds the bytes of operator state — dimension
	// lookup tables, result bitmaps, aggregation hash tables — live
	// across all concurrently executing queries. When a query's
	// aggregation state would exceed the budget it degrades to a
	// partitioned disk spill with identical results; the batching
	// scheduler additionally defers whole batches while the broker is
	// saturated. 0 (default) tracks usage without enforcing a budget.
	MemoryBudget int64

	// SpillDir is the directory for aggregation spill temp files
	// (removed when their pass finishes). Empty means the system temp
	// directory.
	SpillDir string

	// Workers is the database-default unified worker-pool width for
	// executed plans: one bound covering concurrently running plan
	// passes and the scan morsels they fan out. Default 1 (serial, the
	// legacy order); Options.Workers overrides per request. Widths
	// beyond the GOMAXPROCS-derived cap are clamped.
	Workers int

	// ExecWorkers is the pre-pool alias of Workers, kept accepted; it is
	// used only when Workers is 0.
	ExecWorkers int

	// ResultCacheBudget bounds the semantic result cache in bytes:
	// finished aggregation results are kept and later queries answerable
	// from a cached result (same or finer group-by, subsuming
	// predicates) compile to a zero-IO rollup instead of a star join.
	// The cache's memory is reserved from MemoryBudget's broker and
	// entries are evicted by cost-weighted LRU under pressure; any
	// mutation invalidates all entries. 0 (default) disables the cache.
	ResultCacheBudget int64

	// SerializedMutations restores the pre-snapshot concurrency regime:
	// queries hold a read lock for their whole run and mutations hold
	// the write lock, so maintenance blocks (and is blocked by) every
	// in-flight query. Kept as an A/B ablation baseline for measuring
	// what snapshot isolation buys; off (default) pins published
	// snapshots and never blocks queries on maintenance.
	SerializedMutations bool
}

// OpenWith opens an existing database directory with explicit options.
func OpenWith(dir string, opts OpenOptions) (*DB, error) {
	frames := opts.PoolFrames
	if frames <= 0 {
		frames = 2048
	}
	shards := opts.PoolShards
	if shards <= 0 {
		shards = 8
	}
	db, err := star.OpenWith(dir, storage.PoolOpts{
		Frames:    frames,
		Shards:    shards,
		Readahead: opts.Readahead,
	})
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers == 0 {
		workers = opts.ExecWorkers
	}
	d := &DB{db: db, mem: mem.New(opts.MemoryBudget), spillDir: opts.SpillDir, execWorkers: workers, serialized: opts.SerializedMutations}
	if opts.ResultCacheBudget > 0 {
		d.rescache = rescache.New(opts.ResultCacheBudget, d.mem)
	}
	return d, nil
}

// Close stops the admission scheduler (if batching was enabled),
// persists metadata and closes all files.
func (d *DB) Close() error {
	d.DisableBatching()
	return d.db.Close()
}

// Dimensions returns the dimension names in schema order.
func (d *DB) Dimensions() []string {
	out := make([]string, d.db.Schema.NumDims())
	for i, dim := range d.db.Schema.Dims {
		out[i] = dim.Name
	}
	return out
}

// Measure returns the measure column's name.
func (d *DB) Measure() string { return d.db.Schema.Measure }

// Facts returns the number of rows in the base fact table.
func (d *DB) Facts() int64 { return d.db.Base().Rows() }

// Views lists the stored group-bys (the base table first) with their
// row counts.
func (d *DB) Views() []ViewInfo {
	out := make([]ViewInfo, len(d.db.Views))
	for i, v := range d.db.Views {
		levels := make([]string, len(v.Levels))
		for j, l := range v.Levels {
			levels[j] = d.db.Schema.Dims[j].LevelName(l)
		}
		out[i] = ViewInfo{Name: v.Name, Levels: levels, Rows: v.Rows(), Pages: v.Pages()}
	}
	return out
}

// ViewInfo describes one stored group-by.
type ViewInfo struct {
	Name   string
	Levels []string // level name per dimension ("ALL" = aggregated out)
	Rows   int64
	Pages  int64
}

// levelVector converts per-dimension level names to a level vector.
func (d *DB) levelVector(levelNames []string) ([]int, error) {
	schema := d.db.Schema
	if len(levelNames) != schema.NumDims() {
		return nil, fmt.Errorf("mdxopt: %d level names for %d dimensions", len(levelNames), schema.NumDims())
	}
	levels := make([]int, len(levelNames))
	for i, name := range levelNames {
		l := schema.Dims[i].LevelIndex(name)
		if l < 0 {
			return nil, fmt.Errorf("mdxopt: dimension %s has no level %q", schema.Dims[i].Name, name)
		}
		levels[i] = l
	}
	return levels, nil
}

// Materialize computes and stores the group-by identified by one level
// name per dimension (use "ALL" to aggregate a dimension out). The view
// stores SUM per group (the paper's layout); MaterializeMulti also
// stores COUNT, MIN and MAX so every aggregate can be answered from it.
func (d *DB) Materialize(levelNames ...string) error {
	levels, err := d.levelVector(levelNames)
	if err != nil {
		return err
	}
	unlock := d.mutLock()
	defer unlock()
	if _, err := d.db.Materialize(levels); err != nil {
		return err
	}
	d.invalidate()
	return nil
}

// MaterializeMulti is Materialize with the multi-aggregate layout,
// enabling COUNT/MIN/MAX/AVG queries (the MDX AGGREGATE clause) to use
// the view instead of the base table.
func (d *DB) MaterializeMulti(levelNames ...string) error {
	levels, err := d.levelVector(levelNames)
	if err != nil {
		return err
	}
	unlock := d.mutLock()
	defer unlock()
	if _, err := d.db.MaterializeMulti(levels); err != nil {
		return err
	}
	d.invalidate()
	return nil
}

// BuildBitmapIndex builds a bitmap join index on the named dimension of
// the stored group-by identified by level names.
func (d *DB) BuildBitmapIndex(dim string, levelNames ...string) error {
	return d.buildIndex(dim, levelNames, false)
}

// BuildCompressedBitmapIndex is BuildBitmapIndex with EWAH-compressed
// storage — a fraction of the pages for sparse (high-cardinality)
// columns, at the price of a decompression pass per cold lookup.
func (d *DB) BuildCompressedBitmapIndex(dim string, levelNames ...string) error {
	return d.buildIndex(dim, levelNames, true)
}

func (d *DB) buildIndex(dim string, levelNames []string, compressed bool) error {
	levels, err := d.levelVector(levelNames)
	if err != nil {
		return err
	}
	unlock := d.mutLock()
	defer unlock()
	v := d.db.ViewByLevels(levels)
	if v == nil {
		return fmt.Errorf("mdxopt: group-by %v is not materialized", levelNames)
	}
	di := d.db.Schema.DimIndex(dim)
	if di < 0 {
		return fmt.Errorf("mdxopt: no dimension %q", dim)
	}
	if err := d.db.BuildIndexFormat(v, di, compressed); err != nil {
		return err
	}
	d.invalidate()
	return nil
}

// StaleViews returns the names of materialized group-bys that lag the
// base fact table (facts were loaded after they were computed). Stale
// views are ignored by the optimizer until Refresh.
func (d *DB) StaleViews() []string {
	var out []string
	for _, v := range d.db.StaleViews() {
		out = append(out, v.Name)
	}
	return out
}

// Refresh folds newly loaded facts into every materialized group-by and
// rebuilds affected bitmap join indexes. Refreshed views may hold
// several rows per group (results stay exact); Compact merges them.
func (d *DB) Refresh() error {
	unlock := d.mutLock()
	defer unlock()
	err := d.db.Refresh()
	d.invalidate()
	return err
}

// Compact fully re-aggregates the group-by identified by level names,
// merging the duplicate group rows left behind by Refresh.
func (d *DB) Compact(levelNames ...string) error {
	levels, err := d.levelVector(levelNames)
	if err != nil {
		return err
	}
	unlock := d.mutLock()
	defer unlock()
	v := d.db.ViewByLevels(levels)
	if v == nil {
		return fmt.Errorf("mdxopt: group-by %v is not materialized", levelNames)
	}
	if err := d.db.Compact(v); err != nil {
		return err
	}
	d.invalidate()
	return nil
}

// Loader appends facts to the base table. Close it before querying.
type Loader struct {
	db  *DB
	app interface {
		Append(keys []int32, measures []float64) error
		Close() error
	}
	keys []int32
}

// Load returns a Loader for the base fact table.
func (d *DB) Load() *Loader {
	return &Loader{
		db:   d,
		app:  d.db.Base().Heap.NewAppender(),
		keys: make([]int32, d.db.Schema.NumDims()),
	}
}

// Add appends one fact given base-level member names in dimension order.
func (l *Loader) Add(members []string, measure float64) error {
	schema := l.db.db.Schema
	if len(members) != schema.NumDims() {
		return fmt.Errorf("mdxopt: %d members for %d dimensions", len(members), schema.NumDims())
	}
	for i, name := range members {
		code, ok := schema.Dims[i].MemberCode(0, name)
		if !ok {
			return fmt.Errorf("mdxopt: dimension %s has no base member %q", schema.Dims[i].Name, name)
		}
		l.keys[i] = code
	}
	return l.app.Append(l.keys, []float64{measure})
}

// AddCodes appends one fact given base-level member codes.
func (l *Loader) AddCodes(codes []int32, measure float64) error {
	return l.app.Append(codes, []float64{measure})
}

// Close flushes the loader, publishes a snapshot with the enlarged base
// table and invalidates cached plans (materialized views are now stale
// and plan choices may change). Snapshots pinned before Close keep
// seeing the old row count.
func (l *Loader) Close() error {
	unlock := l.db.mutLock()
	defer unlock()
	err := l.app.Close()
	l.db.db.Publish()
	l.db.invalidate()
	return err
}

// ResultRow is one group of a query result, with member names at the
// query's group-by levels.
type ResultRow struct {
	Members []string
	Value   float64
}

// QueryResult is the evaluated output of one component query.
type QueryResult struct {
	Name      string   // q1, q2, ... in variant order
	GroupBy   string   // paper notation, e.g. A'B''C''D'
	Aggregate string   // SUM, COUNT, MIN, MAX or AVG
	Columns   []string // dimension names contributing members, in order
	Rows      []ResultRow
}

// Stats summarizes the work an Answer took.
type Stats struct {
	PageReads     int64
	TuplesScanned int64
	TuplesFetched int64
	// BitTests counts per-tuple bitmap membership tests on the index
	// star-join paths (probe routing and scan-side bitmap filters). The
	// count is the same whether the engine routed word-at-a-time or
	// tuple-at-a-time — it is the logical tests, not the instructions.
	BitTests         int64
	SimulatedSeconds float64 // on the paper's 1998 hardware model
	WallNanos        int64

	// PeakMemoryBytes is the tracked operator-state high-water mark of
	// this request's passes: the sum of each reservation's peak
	// (lookup tables, bitmaps, aggregation state), an upper bound on
	// the true simultaneous peak. Accounted even without a budget.
	PeakMemoryBytes int64
	// SpillBytes is how many bytes of aggregation state were written
	// to spill partitions because the memory budget denied growth; 0
	// means the request ran entirely in memory.
	SpillBytes int64
	// SpillPartitions counts spill partition files written.
	SpillPartitions int64

	// PackedFolds counts the aggregated tuples folded through the
	// packed-key vectorized kernel (a subset of the tuples aggregated);
	// 0 means every query in the request fell back to byte-key
	// aggregation (group-by key wider than 64 bits, or packing
	// disabled).
	PackedFolds int64

	// DAGNodes is how many task-graph nodes the plan compiled to (class
	// passes + cache rollups + shared lookup builds). WorkerPeak is the
	// unified worker pool's concurrency peak — nodes running plus the
	// scan-morsel workers they fanned out (1 under the serial executor);
	// DAGParallelPeak is its pre-pool alias and always carries the same
	// value. EffectiveWorkers is the pool width the request actually ran
	// at: the requested Workers (or composed legacy aliases) clamped to
	// the GOMAXPROCS-derived cap.
	DAGNodes         int
	WorkerPeak       int
	DAGParallelPeak  int
	EffectiveWorkers int

	// ResultCacheHits counts this request's queries served from the
	// semantic result cache by a zero-IO rollup; ResultCacheMisses the
	// ones that ran against stored views while the cache was enabled
	// (both zero with the cache off). ResultCacheEvictions counts cache
	// entries evicted to admit this request's results.
	ResultCacheHits      int64
	ResultCacheMisses    int64
	ResultCacheEvictions int64

	// SnapshotEpoch is the catalog snapshot epoch this request ran
	// against. Two answers with the same epoch saw byte-identical
	// catalog state; a larger epoch means at least one mutation
	// published in between. RetiredFiles is how many replaced heap and
	// index files were awaiting reclamation (still pinned by some
	// in-flight epoch) when the answer was assembled — a liveness gauge
	// for the epoch-based reclaimer, not an error indicator.
	SnapshotEpoch uint64
	RetiredFiles  int
}

// ClassStats is the work one plan class's shared pass performed.
type ClassStats struct {
	View             string   // base view of the class
	Regime           string   // "scan" or "probe"
	Queries          []string // component query names in the class
	PageReads        int64
	TuplesScanned    int64
	TuplesFetched    int64
	SimulatedSeconds float64
}

// Answer is the result of evaluating one MDX expression.
type Answer struct {
	Queries []QueryResult
	Plan    string // the global plan in the paper's notation
	Classes []ClassStats
	Stats   Stats

	// Batched reports that the query went through the admission
	// scheduler. Plan then describes the whole merged batch, Classes
	// holds only the passes this request participated in (batch mates'
	// queries appear origin-qualified, e.g. "s2.q1"), and Stats is this
	// request's attributed share of the work: its non-shared operators
	// exactly, plus an equal split of each shared pass.
	Batched bool
	// BatchSize is how many concurrent requests the merged batch held
	// (1 when the window closed with no company). Zero when not batched.
	BatchSize int
	// SharedWith counts the *other* requests whose queries shared at
	// least one pass with this one's; 0 means every pass was private.
	SharedWith int
}

// Query parses, optimizes (with GG over the full cost model) and
// executes an MDX expression. Use QueryWith for control.
func (d *DB) Query(src string) (*Answer, error) {
	return d.QueryWith(src, Options{})
}

// QueryWith is Query with explicit options.
func (d *DB) QueryWith(src string, opts Options) (*Answer, error) {
	return d.QueryContext(context.Background(), src, opts)
}

// QueryContext is QueryWith with cancellation: scans check ctx
// periodically and abort with its error when it is done. With
// opts.Batching the request is admitted to the scheduler instead, and
// cancellation detaches only this request's pipelines — a shared pass
// keeps running for the other requests in the batch.
func (d *DB) QueryContext(ctx context.Context, src string, opts Options) (*Answer, error) {
	if opts.Batching {
		return d.queryBatched(ctx, src)
	}
	snap, release := d.pin()
	defer release()
	queries, g, err := d.plan(snap, src, opts)
	if err != nil {
		return nil, err
	}
	return d.run(ctx, snap, queries, g, opts)
}

// plan parses and optimizes src against the pinned snapshot, consulting
// the plan cache. A cached entry is reused only when it was built
// against the same catalog snapshot epoch and result-cache epoch.
func (d *DB) plan(snap *star.Snapshot, src string, opts Options) ([]*query.Query, *plan.Global, error) {
	key := fmt.Sprintf("%s|%s|%t", src, opts.Algorithm, opts.PaperPlanSpace)
	rcEpoch := d.rescache.Epoch()
	d.mu.Lock()
	if c, ok := d.planCache[key]; ok {
		if c.epoch == snap.Epoch && c.rcEpoch == rcEpoch {
			d.planHits++
			d.cacheTick++
			c.lastUse = d.cacheTick
			d.mu.Unlock()
			return c.queries, c.global, nil
		}
		delete(d.planCache, key)
	}
	d.mu.Unlock()

	queries, err := mdx.ParseAndTranslate(snap.Schema, src)
	if err != nil {
		return nil, nil, err
	}
	if len(queries) == 0 {
		return nil, nil, errors.New("mdxopt: expression denotes no queries")
	}
	g, _, err := d.optimize(snap, queries, opts)
	if err != nil {
		return nil, nil, err
	}
	d.mu.Lock()
	if d.planCache == nil {
		d.planCache = make(map[string]*cachedPlan)
	}
	if len(d.planCache) >= maxCachedPlans {
		evictOldest(d.planCache)
	}
	d.cacheTick++
	d.planCache[key] = &cachedPlan{epoch: snap.Epoch, rcEpoch: rcEpoch, lastUse: d.cacheTick, queries: queries, global: g}
	d.mu.Unlock()
	return queries, g, nil
}

// Explain parses and optimizes an MDX expression, returning the global
// plan without executing it.
func (d *DB) Explain(src string, opts Options) (string, error) {
	snap, release := d.pin()
	defer release()
	queries, err := mdx.ParseAndTranslate(snap.Schema, src)
	if err != nil {
		return "", err
	}
	g, _, err := d.optimize(snap, queries, opts)
	if err != nil {
		return "", err
	}
	return g.Describe(), nil
}

func (d *DB) optimize(snap *star.Snapshot, queries []*query.Query, opts Options) (*plan.Global, *plan.Estimator, error) {
	var est *plan.Estimator
	if opts.PaperPlanSpace {
		est = plan.NewPaperEstimator(snap)
	} else {
		est = plan.NewEstimator(snap)
	}
	est.Cache = d.rescache
	est.Gen = snap.Epoch
	alg := core.Algorithm(opts.Algorithm)
	if opts.Algorithm == "" {
		alg = core.GG
	}
	g, err := core.Optimize(est, queries, alg)
	if err != nil {
		return nil, nil, err
	}
	return g, est, nil
}

func (d *DB) run(ctx context.Context, snap *star.Snapshot, queries []*query.Query, g *plan.Global, opts Options) (*Answer, error) {
	if opts.ColdCache {
		if err := snap.ColdReset(); err != nil {
			return nil, err
		}
	}
	env := exec.NewEnv(snap)
	env.Ctx = ctx
	env.Mem = d.mem
	if opts.MemoryBudget > 0 {
		env.Mem = d.mem.Child(opts.MemoryBudget)
	}
	env.SpillDir = d.spillDir
	var st exec.Stats
	workers := d.effectiveWorkers(opts.Workers, opts.ExecWorkers, opts.Parallelism)
	ex, err := core.Run(env, g, queries, &st, d.execOptions(snap, workers, env.Mem))
	if err != nil {
		return nil, err
	}
	results := ex.Results
	d.noteCacheUse(g, len(queries))
	evicted := d.putResults(queries, results, ex.PerQuery, snap.Epoch)
	ans := &Answer{Plan: g.Describe()}
	for _, cs := range ex.Classes {
		ans.Classes = append(ans.Classes, classStatsOut(cs))
	}
	for i, q := range queries {
		ans.Queries = append(ans.Queries, d.formatResult(q, results[i]))
	}
	ans.Stats = statsOut(st)
	ans.Stats.DAGNodes = ex.DAGNodes
	ans.Stats.WorkerPeak = ex.WorkerPeak
	ans.Stats.DAGParallelPeak = ex.DAGParallelPeak
	ans.Stats.EffectiveWorkers = ex.EffectiveWorkers
	ans.Stats.SnapshotEpoch = snap.Epoch
	ans.Stats.RetiredFiles = d.db.MaintainStats().RetiredFiles
	d.cacheCounters(&ans.Stats, results, evicted)
	return ans, nil
}

// effectiveWorkers resolves one request's unified pool width: the
// Workers option when set, otherwise the legacy aliases composed —
// ExecWorkers (or the database default when that is 0 too) times
// Parallelism — so the pre-pool knob pair bounds one pool instead of
// multiplying goroutine layers. The result is clamped to
// [1, dag.WorkerCap()].
func (d *DB) effectiveWorkers(workers, execWorkers, parallelism int) int {
	if workers <= 0 && execWorkers == 0 {
		execWorkers = d.execWorkers
	}
	return composeWorkers(workers, execWorkers, parallelism)
}

// composeWorkers folds the unified Workers knob and its two legacy
// aliases into one clamped pool width (see Options.Workers).
func composeWorkers(workers, execWorkers, parallelism int) int {
	w := workers
	if w <= 0 {
		if execWorkers < 1 {
			execWorkers = 1
		}
		if parallelism < 1 {
			parallelism = 1
		}
		w = execWorkers * parallelism
	}
	if c := dag.WorkerCap(); w > c {
		w = c
	}
	if w < 1 {
		w = 1
	}
	return w
}

// execOptions shapes the task-graph executor's configuration for one
// request running at the given resolved pool width: when actually
// parallel, per-pass memory admission against broker with the
// optimizer's footprint estimates, priced per worker (scan fan-out
// multiplies resident aggregation tables).
func (d *DB) execOptions(snap *star.Snapshot, workers int, broker *mem.Broker) core.ExecOptions {
	if workers <= 1 {
		return core.ExecOptions{}
	}
	est := plan.NewEstimator(snap)
	est.Workers = workers
	return core.ExecOptions{
		Workers: workers,
		Est:     est,
		Gate: func(ctx context.Context, cost int64) (func(), error) {
			return broker.Admit(ctx, cost)
		},
	}
}

// noteCacheUse records one executed plan's cache outcome: each served
// entry's recency is refreshed and the hit/miss counters advance.
func (d *DB) noteCacheUse(g *plan.Global, totalQueries int) {
	if d.rescache == nil {
		return
	}
	for _, cp := range g.Cached {
		d.rescache.Touch(cp.Entry)
	}
	d.rescache.RecordHits(int64(len(g.Cached)))
	d.rescache.RecordMisses(int64(totalQueries - len(g.Cached)))
}

// putResults admits finished results into the result cache (including
// rollup-served ones — rolling a cached entry up seeds the coarser
// group-by as its own entry) and returns how many entries were evicted
// to make room. epoch must be the snapshot epoch the results were
// computed at, or older: a stale-marked entry never answers a probe, so
// the epoch pinned before execution is always safe.
func (d *DB) putResults(queries []*query.Query, results []*exec.Result, perQ []exec.Stats, epoch uint64) int64 {
	if d.rescache == nil {
		return 0
	}
	model := cost.Default()
	var evicted int64
	for i, r := range results {
		if r == nil || r.Err != nil {
			continue
		}
		rows := make([]rescache.Row, len(r.Groups))
		for j, grp := range r.Groups {
			rows[j] = rescache.Row{Keys: grp.Keys, Value: grp.Value}
		}
		evicted += d.rescache.Put(queries[i], epoch, rows, perQ[i].SimulatedMicros(model))
	}
	return evicted
}

// cacheCounters fills an Answer's result-cache fields from its results.
func (d *DB) cacheCounters(st *Stats, results []*exec.Result, evicted int64) {
	st.ResultCacheEvictions = evicted
	if d.rescache == nil {
		return
	}
	for _, r := range results {
		if r.Cached {
			st.ResultCacheHits++
		} else {
			st.ResultCacheMisses++
		}
	}
}

// statsOut converts execution stats to the public shape.
func statsOut(st exec.Stats) Stats {
	return Stats{
		PageReads:        st.IO.Reads(),
		TuplesScanned:    st.TuplesScanned,
		TuplesFetched:    st.TuplesFetched,
		BitTests:         st.BitTests,
		SimulatedSeconds: st.SimulatedSeconds(cost.Default()),
		WallNanos:        int64(st.Wall),
		PeakMemoryBytes:  st.PeakMemory,
		SpillBytes:       st.SpillBytes,
		SpillPartitions:  st.SpillPartitions,
		PackedFolds:      st.PackedFolds,
	}
}

// classStatsOut converts one class's execution breakdown to the public
// shape.
func classStatsOut(cs core.ClassStat) ClassStats {
	return ClassStats{
		View:             cs.View,
		Regime:           cs.Regime,
		Queries:          cs.Queries,
		PageReads:        cs.Stats.IO.Reads(),
		TuplesScanned:    cs.Stats.TuplesScanned,
		TuplesFetched:    cs.Stats.TuplesFetched,
		SimulatedSeconds: cs.Stats.SimulatedSeconds(cost.Default()),
	}
}

func (d *DB) formatResult(q *query.Query, r *exec.Result) QueryResult {
	schema := d.db.Schema
	qr := QueryResult{Name: q.Name, GroupBy: q.GroupByName(), Aggregate: q.Agg.String()}
	var dims []int
	for i, l := range q.Levels {
		if l != schema.Dims[i].AllLevel() {
			dims = append(dims, i)
			qr.Columns = append(qr.Columns, schema.Dims[i].Name)
		}
	}
	for _, g := range r.Groups {
		row := ResultRow{Value: g.Value}
		for _, i := range dims {
			row.Members = append(row.Members, schema.Dims[i].MemberName(q.Levels[i], g.Keys[i]))
		}
		qr.Rows = append(qr.Rows, row)
	}
	return qr
}

// Batched serving.
//
// With batching enabled, concurrent requests are admitted to a
// scheduler that collects them for a short window and optimizes the
// whole cross-request query set as one — the paper's multi-query
// optimization applied across independent callers instead of within one
// MDX expression. Requests whose queries land in the same plan class
// share a single scan or probe pass; each caller gets its own results,
// an attributed share of the work, and Answer.SharedWith reporting how
// many other requests it shared a pass with.

// ErrBusy is returned by batched queries when the admission queue is
// full — backpressure; retry after a pause.
var ErrBusy = sched.ErrQueueFull

// BatchConfig configures the admission scheduler (EnableBatching).
type BatchConfig struct {
	// Window is how long the scheduler collects concurrent submissions
	// after the first arrives (default 3ms; 2–10ms is the useful range —
	// longer merges more work, shorter bounds added latency).
	Window time.Duration
	// MaxBatch caps submissions merged into one batch (default 16); a
	// full batch runs without waiting out the window.
	MaxBatch int
	// MaxQueue bounds the admission queue; submissions beyond it fail
	// with ErrBusy (default 64).
	MaxQueue int
	// Algorithm is the multi-query optimization algorithm for merged
	// batches (default GG).
	Algorithm Algorithm
	// PaperPlanSpace confines batch plans to the paper's plan space.
	PaperPlanSpace bool
	// Workers is the unified worker-pool width each batch executes at:
	// one bound on concurrently running plan passes plus the scan
	// morsels they fan out (default 1 = serial; clamped to the
	// GOMAXPROCS-derived cap). The batch's memory is governed
	// collectively by the admission claim — sized per worker, since scan
	// fan-out multiplies resident aggregation state — so passes are not
	// individually gated.
	Workers int
	// Parallelism and ExecWorkers are the pre-pool aliases; when Workers
	// is 0 they compose into one width, max(1,ExecWorkers) ×
	// max(1,Parallelism), clamped. Prefer Workers.
	Parallelism int
	// ColdCache flushes the buffer pool before every batch, as in the
	// paper's measurements.
	ColdCache bool
	// ExecWorkers is a pre-pool alias; see Parallelism.
	ExecWorkers int
}

// EnableBatching (re)starts the admission scheduler with the given
// configuration. Queries opt in per call with Options.Batching; a query
// with Batching set before EnableBatching starts a scheduler with
// default configuration.
func (d *DB) EnableBatching(cfg BatchConfig) {
	d.DisableBatching()
	d.schedMu.Lock()
	defer d.schedMu.Unlock()
	d.batchCfg = cfg
	d.batcher = sched.New(sched.Config{
		Window:   cfg.Window,
		MaxBatch: cfg.MaxBatch,
		MaxQueue: cfg.MaxQueue,
		Run:      d.runBatchSubs,
	})
}

// DisableBatching stops the admission scheduler; in-flight submissions
// fail with an error. Queries with Options.Batching lazily restart it.
func (d *DB) DisableBatching() {
	d.schedMu.Lock()
	s := d.batcher
	d.batcher = nil
	d.schedMu.Unlock()
	if s != nil {
		s.Stop()
	}
}

// BatchStats snapshots the admission scheduler's counters.
type BatchStats struct {
	Batches     int64 // batches executed
	Submissions int64 // requests admitted
	Coalesced   int64 // requests that ran in a batch with company
	Rejected    int64 // requests refused with ErrBusy
}

// BatchStats reports scheduler activity since batching was enabled.
func (d *DB) BatchStats() BatchStats {
	d.schedMu.Lock()
	s := d.batcher
	d.schedMu.Unlock()
	if s == nil {
		return BatchStats{}
	}
	m := s.Metrics()
	return BatchStats{Batches: m.Batches, Submissions: m.Submissions, Coalesced: m.Coalesced, Rejected: m.Rejected}
}

// MemoryStats snapshots the database-wide memory broker.
type MemoryStats struct {
	Limit       int64         // configured budget in bytes (0 = track only)
	Used        int64         // bytes currently reserved by operator state
	Peak        int64         // high-water mark of Used since Open
	Overdraft   int64         // bytes granted past the budget for required state
	Denied      int64         // refusable grants denied (each triggered a spill)
	Admitted    int64         // batches admitted by the scheduler's memory gate
	Deferred    int64         // batches that had to wait for memory
	DeferredFor time.Duration // total time batches spent waiting for memory
	Waiting     int           // batches currently queued for admission
}

// MemoryStats reports the memory broker's accounting since Open. Used
// returns to zero whenever no query is executing.
func (d *DB) MemoryStats() MemoryStats {
	s := d.mem.Stats()
	return MemoryStats{
		Limit:       s.Limit,
		Used:        s.Used,
		Peak:        s.Peak,
		Overdraft:   s.Overdraft,
		Denied:      s.Denied,
		Admitted:    s.Admitted,
		Deferred:    s.Deferred,
		DeferredFor: s.DeferredFor,
		Waiting:     s.Waiting,
	}
}

// ResultCacheStats snapshots the semantic result cache. All zeros when
// the cache is disabled (OpenOptions.ResultCacheBudget unset).
type ResultCacheStats struct {
	Budget    int64 // configured byte budget (0 = disabled)
	Bytes     int64 // bytes currently cached
	Entries   int   // results currently cached
	Hits      int64 // queries served by zero-IO rollup from a cached result
	Misses    int64 // queries that ran against stored views with the cache on
	Evictions int64 // entries evicted by cost-weighted LRU for space
	Inserts   int64 // results admitted
	Rejected  int64 // results refused (oversize, or eviction could not make room)
}

// MaintenanceStats snapshots the catalog's snapshot lifecycle: how many
// epochs have been published, what readers are pinning, and how the
// epoch-based file reclaimer is keeping up.
type MaintenanceStats struct {
	// SnapshotEpoch is the latest published epoch; queries starting now
	// run against it.
	SnapshotEpoch uint64
	// Publishes counts snapshots published since Open (every mutation
	// publishes exactly one successor).
	Publishes int64
	// LastPublishMicros is how long the most recent publish held the
	// catalog's internal lock — the window invisible to queries, since
	// readers pin before and after it, never during.
	LastPublishMicros int64
	// PinnedEpochs is how many distinct epochs in-flight requests are
	// currently pinning; Pins the outstanding pin count.
	PinnedEpochs int
	Pins         int
	// RetiredFiles is how many replaced heap/index files await
	// reclamation (protected by some pinned epoch); ReclaimedFiles how
	// many have been unlinked since Open.
	RetiredFiles   int
	ReclaimedFiles int64
}

// MaintenanceStats reports the snapshot lifecycle's counters since Open.
func (d *DB) MaintenanceStats() MaintenanceStats {
	s := d.db.MaintainStats()
	return MaintenanceStats{
		SnapshotEpoch:     s.Epoch,
		Publishes:         s.Publishes,
		LastPublishMicros: s.LastPublishNanos / 1000,
		PinnedEpochs:      s.PinnedEpochs,
		Pins:              s.Pins,
		RetiredFiles:      s.RetiredFiles,
		ReclaimedFiles:    s.ReclaimedFiles,
	}
}

// ResultCacheStats reports the result cache's accounting since Open.
func (d *DB) ResultCacheStats() ResultCacheStats {
	s := d.rescache.Stats()
	return ResultCacheStats{
		Budget:    s.Budget,
		Bytes:     s.Bytes,
		Entries:   s.Entries,
		Hits:      s.Hits,
		Misses:    s.Misses,
		Evictions: s.Evictions,
		Inserts:   s.Inserts,
		Rejected:  s.Rejected,
	}
}

// ensureBatcher returns the scheduler, starting one with default
// configuration on first use.
func (d *DB) ensureBatcher() *sched.Scheduler {
	d.schedMu.Lock()
	defer d.schedMu.Unlock()
	if d.batcher == nil {
		d.batcher = sched.New(sched.Config{Run: d.runBatchSubs})
	}
	return d.batcher
}

// queryBatched parses the expression, submits it to the scheduler, and
// shapes the demultiplexed outcome into an Answer.
func (d *DB) queryBatched(ctx context.Context, src string) (*Answer, error) {
	queries, err := mdx.ParseAndTranslate(d.db.Schema, src)
	if err != nil {
		return nil, err
	}
	if len(queries) == 0 {
		return nil, errors.New("mdxopt: expression denotes no queries")
	}
	out, err := d.ensureBatcher().Submit(ctx, src, queries)
	if err != nil {
		return nil, err
	}
	// Results were computed against the snapshot the batch pinned; the
	// outcome carries its epoch so cache entries are marked exactly.
	evicted := d.putResults(out.Queries, out.Results, out.PerQuery, out.SnapshotEpoch)
	ans := &Answer{
		Plan:       out.Plan,
		Batched:    true,
		BatchSize:  out.BatchSize,
		SharedWith: out.SharedWith,
	}
	for _, cs := range out.Classes {
		ans.Classes = append(ans.Classes, classStatsOut(cs))
	}
	var st exec.Stats
	for _, qs := range out.PerQuery {
		st.Add(qs)
	}
	for i, q := range out.Queries {
		ans.Queries = append(ans.Queries, d.formatResult(q, out.Results[i]))
	}
	ans.Stats = statsOut(st)
	ans.Stats.DAGNodes = out.DAGNodes
	ans.Stats.WorkerPeak = out.WorkerPeak
	ans.Stats.DAGParallelPeak = out.DAGParallelPeak
	ans.Stats.EffectiveWorkers = out.EffectiveWorkers
	ans.Stats.SnapshotEpoch = out.SnapshotEpoch
	ans.Stats.RetiredFiles = d.db.MaintainStats().RetiredFiles
	d.cacheCounters(&ans.Stats, out.Results, evicted)
	return ans, nil
}

// runBatchSubs evaluates one admitted batch: it pins the published
// snapshot (so mutations proceed concurrently and the whole batch sees
// one consistent catalog), prepares the execution environment, and
// hands the cross-request pipeline to sched.Exec. Admission is
// memory-aware: the planned batch's footprint is estimated with the
// optimizer's memory model and claimed from the broker before
// execution, deferring the batch (not erroring it) while concurrent
// work saturates the budget.
func (d *DB) runBatchSubs(subs []*sched.Submission) {
	d.schedMu.Lock()
	cfg := d.batchCfg
	d.schedMu.Unlock()
	snap, release := d.pin()
	defer release()
	if cfg.ColdCache {
		if err := snap.ColdReset(); err != nil {
			for _, sub := range subs {
				sub.Finish(&sched.Outcome{Err: err})
			}
			return
		}
	}
	workers := composeWorkers(cfg.Workers, cfg.ExecWorkers, cfg.Parallelism)
	env := exec.NewEnv(snap)
	env.Mem = d.mem
	env.SpillDir = d.spillDir
	planFn := func(subQ [][]*query.Query, keys []string) ([][]*query.Query, *plan.Global, error) {
		return d.planBatch(cfg, snap, subQ, keys)
	}
	var est *plan.Estimator
	if cfg.PaperPlanSpace {
		est = plan.NewPaperEstimator(snap)
	} else {
		est = plan.NewEstimator(snap)
	}
	est.Workers = workers
	admit := func(ctx context.Context, g *plan.Global) (func(), error) {
		cl, err := d.mem.AdmitClaim(ctx, est.GlobalMemory(g))
		if err != nil {
			return nil, err
		}
		// Execute under the claim-linked broker: the batch's real
		// reservations draw the admission claim down as they
		// materialize, so its footprint is charged max(estimate,
		// reserved) rather than their sum.
		env.Mem = cl.Broker()
		return cl.Release, nil
	}
	// The whole batch already holds an admission claim sized by
	// GlobalMemory — the sum over its nodes, priced per worker — so
	// individual nodes run ungated.
	sched.Exec(env, planFn, admit, subs, core.ExecOptions{Workers: workers})
}

// planBatch optimizes a merged cross-request query set, consulting the
// batch plan cache. The cache is keyed by batch *composition* — the
// multiset of member MDX sources plus planning options — so a recurring
// mix of concurrent requests replans nothing, while any new mix
// optimizes fresh. On a hit the submissions' freshly parsed queries are
// replaced by the cached ones the stored plan references.
func (d *DB) planBatch(cfg BatchConfig, snap *star.Snapshot, subQueries [][]*query.Query, keys []string) ([][]*query.Query, *plan.Global, error) {
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	sortedKeys := make([]string, len(order))
	for p, i := range order {
		sortedKeys[p] = keys[i]
	}
	ckey := fmt.Sprintf("batch|%s|%t|%s", cfg.Algorithm, cfg.PaperPlanSpace, strings.Join(sortedKeys, "\x1f"))

	total := 0
	for _, qs := range subQueries {
		total += len(qs)
	}

	rcEpoch := d.rescache.Epoch()
	d.mu.Lock()
	if c, ok := d.batchCache[ckey]; ok {
		valid := c.epoch == snap.Epoch && c.rcEpoch == rcEpoch && len(c.perPos) == len(order)
		if valid {
			for p, i := range order {
				if len(c.perPos[p]) != len(subQueries[i]) {
					valid = false
					break
				}
			}
		}
		if valid {
			d.batchHits++
			d.cacheTick++
			c.lastUse = d.cacheTick
			out := make([][]*query.Query, len(subQueries))
			for p, i := range order {
				out[i] = c.perPos[p]
			}
			g := c.global
			d.mu.Unlock()
			d.noteCacheUse(g, total)
			return out, g, nil
		}
		if c.epoch != snap.Epoch || c.rcEpoch != rcEpoch {
			delete(d.batchCache, ckey)
		}
	}
	d.mu.Unlock()

	// Optimize the merged set in composition order so equal batches
	// yield identical plans regardless of arrival order.
	var merged []*query.Query
	perPos := make([][]*query.Query, len(order))
	for p, i := range order {
		perPos[p] = subQueries[i]
		merged = append(merged, subQueries[i]...)
	}
	g, _, err := d.optimize(snap, merged, Options{Algorithm: cfg.Algorithm, PaperPlanSpace: cfg.PaperPlanSpace})
	if err != nil {
		return nil, nil, err
	}
	d.mu.Lock()
	if d.batchCache == nil {
		d.batchCache = make(map[string]*cachedBatch)
	}
	if len(d.batchCache) >= maxCachedPlans {
		evictOldest(d.batchCache)
	}
	d.cacheTick++
	d.batchCache[ckey] = &cachedBatch{epoch: snap.Epoch, rcEpoch: rcEpoch, lastUse: d.cacheTick, perPos: perPos, global: g}
	d.mu.Unlock()
	d.noteCacheUse(g, total)
	return subQueries, g, nil
}

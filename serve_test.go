package mdxopt

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"mdxopt/internal/workload"
)

// Serving-layer tests: the admission scheduler merging concurrent
// requests into shared passes, with per-request results, attribution,
// cancellation, and mutation serialization.

// TestBatchedEquivalence is the acceptance check that sharing a pass
// never changes answers: concurrent batched requests must return
// exactly the rows their non-batched runs return.
func TestBatchedEquivalence(t *testing.T) {
	db := sample(t)
	pool := workload.MDX()
	srcs := []string{pool["Q1"], pool["Q2"], pool["Q3"], pool["Q4"]}

	want := make([]*Answer, len(srcs))
	for i, src := range srcs {
		a, err := db.Query(src)
		if err != nil {
			t.Fatalf("reference query %d: %v", i, err)
		}
		want[i] = a
	}

	// A long window guarantees the burst lands in one batch regardless
	// of scheduling jitter.
	db.EnableBatching(BatchConfig{Window: 150 * time.Millisecond})
	defer db.DisableBatching()

	got := make([]*Answer, len(srcs))
	errs := make([]error, len(srcs))
	var wg sync.WaitGroup
	for i, src := range srcs {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			got[i], errs[i] = db.QueryContext(context.Background(), src, Options{Batching: true})
		}(i, src)
	}
	wg.Wait()

	sawSharing := false
	for i := range srcs {
		if errs[i] != nil {
			t.Fatalf("batched query %d: %v", i, errs[i])
		}
		if !got[i].Batched {
			t.Fatalf("batched query %d: Answer.Batched is false", i)
		}
		if got[i].BatchSize < 2 {
			t.Fatalf("batched query %d ran in a batch of %d; the burst should have merged", i, got[i].BatchSize)
		}
		if got[i].SharedWith > 0 {
			sawSharing = true
		}
		if !reflect.DeepEqual(got[i].Queries, want[i].Queries) {
			t.Fatalf("batched query %d: results differ from the standalone run\n got %+v\nwant %+v",
				i, got[i].Queries, want[i].Queries)
		}
	}
	if !sawSharing {
		t.Fatal("no request shared a pass: Q1–Q4 share base views, SharedWith should be > 0")
	}
	bs := db.BatchStats()
	if bs.Submissions < int64(len(srcs)) || bs.Coalesced == 0 {
		t.Fatalf("scheduler metrics %+v: expected %d admitted submissions with coalescing", bs, len(srcs))
	}
}

// TestBatchedSharedPassReadsFewerPages is the serving acceptance
// criterion: with a pool far smaller than the data, four concurrent
// requests that can only be answered from the base table must cost
// fewer physical page reads batched (one shared scan) than run
// back-to-back (four scans). COUNT queries force base-table plans: the
// sample's views store SUM only.
func TestBatchedSharedPassReadsFewerPages(t *testing.T) {
	dir, err := os.MkdirTemp("", "mdxopt-serve-test")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbDir := filepath.Join(dir, "db")
	if db, err := CreateSample(dbDir, 0.005); err != nil {
		t.Fatalf("CreateSample: %v", err)
	} else if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// 16 frames of 8 KiB against a ~10k-row base: every scan pays
	// physical reads, the regime where sharing a pass matters.
	db, err := OpenWith(dbDir, OpenOptions{PoolFrames: 16})
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	defer db.Close()

	srcs := []string{
		`{A''.A1.CHILDREN} on COLUMNS CONTEXT ABCD AGGREGATE COUNT FILTER (D'.DD1)`,
		`{B''.B2.CHILDREN} on COLUMNS CONTEXT ABCD AGGREGATE COUNT FILTER (D'.DD1)`,
		`{C''.C1.CHILDREN} on COLUMNS CONTEXT ABCD AGGREGATE COUNT FILTER (D'.DD1)`,
		`{A''.MEMBERS} on COLUMNS {B''.B1} on ROWS CONTEXT ABCD AGGREGATE COUNT FILTER (D'.DD1)`,
	}

	// Separate baseline: each request pays its own cold scan.
	var separate int64
	for i, src := range srcs {
		a, err := db.QueryWith(src, Options{ColdCache: true})
		if err != nil {
			t.Fatalf("separate query %d: %v", i, err)
		}
		if a.Stats.PageReads == 0 {
			t.Fatalf("separate query %d read no pages; the pool is too large for this test", i)
		}
		separate += a.Stats.PageReads
	}

	db.EnableBatching(BatchConfig{Window: 200 * time.Millisecond, ColdCache: true})
	defer db.DisableBatching()
	answers := make([]*Answer, len(srcs))
	errs := make([]error, len(srcs))
	var wg sync.WaitGroup
	for i, src := range srcs {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			answers[i], errs[i] = db.QueryContext(context.Background(), src, Options{Batching: true})
		}(i, src)
	}
	wg.Wait()

	// Attributed per-request reads sum back to what the shared passes
	// physically read, so the totals are directly comparable.
	var batched int64
	for i := range srcs {
		if errs[i] != nil {
			t.Fatalf("batched query %d: %v", i, errs[i])
		}
		if answers[i].SharedWith != len(srcs)-1 {
			t.Fatalf("batched query %d shared with %d requests, want %d (all COUNT queries class on the base table)",
				i, answers[i].SharedWith, len(srcs)-1)
		}
		batched += answers[i].Stats.PageReads
	}
	if batched >= separate {
		t.Fatalf("batched serving read %d pages, separate %d: sharing the base scan should cost less", batched, separate)
	}
	t.Logf("page reads: batched %d vs separate %d", batched, separate)
}

// TestBatchedCancellation checks per-caller detachment: canceling one
// request of a batch returns its context error while batch mates
// complete with correct answers.
func TestBatchedCancellation(t *testing.T) {
	db := sample(t)
	pool := workload.MDX()
	ref, err := db.Query(pool["Q2"])
	if err != nil {
		t.Fatal(err)
	}

	db.EnableBatching(BatchConfig{Window: 200 * time.Millisecond})
	defer db.DisableBatching()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var canceledAns, liveAns *Answer
	var canceledErr, liveErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		canceledAns, canceledErr = db.QueryContext(ctx, pool["Q1"], Options{Batching: true})
	}()
	go func() {
		defer wg.Done()
		liveAns, liveErr = db.QueryContext(context.Background(), pool["Q2"], Options{Batching: true})
	}()
	// Let both requests enter the window, then abandon the first.
	time.Sleep(30 * time.Millisecond)
	cancel()
	wg.Wait()

	if !errors.Is(canceledErr, context.Canceled) {
		t.Fatalf("canceled request returned (%v, %v), want context.Canceled", canceledAns, canceledErr)
	}
	if liveErr != nil {
		t.Fatalf("surviving request failed: %v", liveErr)
	}
	if !reflect.DeepEqual(liveAns.Queries, ref.Queries) {
		t.Fatal("surviving request's results differ from its standalone run")
	}
}

// TestQueryRacesMutationSerialized is the regression test for the
// documented concurrency contract: queries racing Materialize, Refresh
// and Compact are serialized internally — nothing fails, nothing
// crashes, and answers never change (the mutations add no facts). Run
// with -race to exercise the locking.
func TestQueryRacesMutationSerialized(t *testing.T) {
	dir, err := os.MkdirTemp("", "mdxopt-mutrace-test")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := CreateSample(filepath.Join(dir, "db"), 0.002)
	if err != nil {
		t.Fatalf("CreateSample: %v", err)
	}
	defer db.Close()

	pool := workload.MDX()
	srcs := []string{pool["Q1"], pool["Q3"], pool["Q5"], pool["Q7"]}
	want := make([]*Answer, len(srcs))
	for i, src := range srcs {
		if want[i], err = db.Query(src); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for w := range srcs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a, err := db.Query(srcs[w])
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
				if !reflect.DeepEqual(a.Queries, want[w].Queries) {
					errs <- fmt.Errorf("worker %d iter %d: answer changed under concurrent mutation", w, i)
					return
				}
			}
		}(w)
	}

	// Mutations on the writer side: a new materialization, a refresh,
	// a compaction — all value-preserving (no facts added).
	if err := db.Materialize("A''", "B''", "C''", "D'"); err != nil {
		errs <- fmt.Errorf("materialize: %w", err)
	}
	if err := db.Refresh(); err != nil {
		errs <- fmt.Errorf("refresh: %w", err)
	}
	if err := db.Compact("A''", "B''", "C''", "D'"); err != nil {
		errs <- fmt.Errorf("compact: %w", err)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

package workload

import (
	"math/rand"
	"sort"
	"time"
)

// Arrival is one request of a simulated multi-client serving workload:
// an MDX expression from the Q1–Q9 pool with an offset from the start
// of the run at which a client submits it.
type Arrival struct {
	Name string        // pool key, "Q1".."Q9"
	Src  string        // the MDX source
	At   time.Duration // offset from the start of the run
}

// Arrivals draws a Poisson arrival process of n requests at the given
// aggregate rate (requests per second): inter-arrival gaps are
// exponential with mean 1/rate, and each request picks uniformly from
// the Q1–Q9 pool. The sequence is deterministic for a given rng, making
// benchmark runs repeatable.
func Arrivals(rng *rand.Rand, n int, ratePerSec float64) []Arrival {
	pool := MDX()
	names := make([]string, 0, len(pool))
	for name := range pool {
		names = append(names, name)
	}
	sort.Strings(names)

	out := make([]Arrival, n)
	var at time.Duration
	for i := range out {
		if ratePerSec > 0 {
			gap := rng.ExpFloat64() / ratePerSec
			at += time.Duration(gap * float64(time.Second))
		}
		name := names[rng.Intn(len(names))]
		out[i] = Arrival{Name: name, Src: pool[name], At: at}
	}
	return out
}

// PerClient deals arrivals round-robin to clients goroutine-friendly:
// each client replays its own slice, pacing by the shared At offsets,
// which preserves the aggregate Poisson process.
func PerClient(arrivals []Arrival, clients int) [][]Arrival {
	if clients < 1 {
		clients = 1
	}
	out := make([][]Arrival, clients)
	for i, a := range arrivals {
		c := i % clients
		out[c] = append(out[c], a)
	}
	return out
}

package workload

import (
	"testing"

	"mdxopt/internal/datagen"
	"mdxopt/internal/star"
)

func paperSchema(t *testing.T) *star.Schema {
	t.Helper()
	s, err := datagen.BuildSchema(datagen.PaperSpec(0.01))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPaperQueriesBuild(t *testing.T) {
	qs, err := PaperQueries(paperSchema(t))
	if err != nil {
		t.Fatalf("PaperQueries: %v", err)
	}
	if len(qs) != 9 {
		t.Fatalf("got %d queries, want 9", len(qs))
	}
	for name, q := range qs {
		if q.Name != name {
			t.Fatalf("query %s has name %s", name, q.Name)
		}
		// Every query filters D to DD1 at level D'.
		if q.Levels[3] != 1 {
			t.Fatalf("%s: D level = %d, want 1", name, q.Levels[3])
		}
		if len(q.Preds[3].Members) != 1 || q.Preds[3].Members[0] != 0 {
			t.Fatalf("%s: D predicate = %v, want {DD1}", name, q.Preds[3].Members)
		}
	}
}

func TestPaperQueriesSelectivityClasses(t *testing.T) {
	qs, err := PaperQueries(paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	// Q5-Q8 (index-join class) must be far more selective than Q1-Q4 and
	// Q9 (hash-join class). The paper's experiments rely on this split.
	maxSelective := 0.0
	for _, name := range []string{"Q5", "Q6", "Q7", "Q8"} {
		if s := qs[name].Selectivity(); s > maxSelective {
			maxSelective = s
		}
	}
	minNonSelective := 1.0
	for _, name := range []string{"Q1", "Q2", "Q3", "Q4", "Q9"} {
		if s := qs[name].Selectivity(); s < minNonSelective {
			minNonSelective = s
		}
	}
	// The gap grows with the mid-level cardinality (20x at full scale);
	// at this test's 1% scale it is 4x.
	if maxSelective*3 > minNonSelective {
		t.Fatalf("selectivity classes overlap: selective max %v, non-selective min %v",
			maxSelective, minNonSelective)
	}
}

func TestPaperQueriesTargets(t *testing.T) {
	qs, err := PaperQueries(paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	wantLevels := map[string][4]int{
		"Q1": {1, 2, 2, 1},
		"Q2": {2, 1, 2, 1},
		"Q3": {2, 2, 2, 1},
		"Q4": {2, 2, 2, 1},
		"Q5": {1, 2, 2, 1},
		"Q6": {1, 1, 1, 1},
		"Q7": {1, 1, 1, 1},
		"Q8": {1, 1, 2, 1},
		"Q9": {1, 2, 1, 1},
	}
	for name, want := range wantLevels {
		got := qs[name].Levels
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s levels = %v, want %v", name, got, want)
			}
		}
	}
	// Q1's A predicate is the children of A1, i.e. one third of the A'
	// members.
	q1 := qs["Q1"]
	s := paperSchema(t)
	if len(q1.Preds[0].Members) != int(s.Dims[0].Card(1))/3 {
		t.Fatalf("Q1 A' predicate size = %d, want %d", len(q1.Preds[0].Members), s.Dims[0].Card(1)/3)
	}
}

func TestPaperQueriesRejectWrongSchema(t *testing.T) {
	a, _ := star.UniformDimension("A", []int{4, 2})
	b, _ := star.UniformDimension("B", []int{4, 2})
	s, _ := star.NewSchema([]*star.Dimension{a, b}, "m")
	if _, err := PaperQueries(s); err == nil {
		t.Fatal("PaperQueries accepted a 2-dim schema")
	}
}

func TestMDXStringsPresent(t *testing.T) {
	m := MDX()
	if len(m) != 9 {
		t.Fatalf("MDX() has %d entries", len(m))
	}
	for name, s := range m {
		if s == "" {
			t.Fatalf("%s MDX empty", name)
		}
	}
}

// Package workload defines the nine MDX test queries of the paper's §7.3
// against the datagen schema. The source text's member names are
// OCR-garbled, so the queries are restated from the paper's prose: their
// target group-bys and selectivity classes (which drive every experiment)
// are preserved exactly:
//
//	Q1–Q4: not very selective (top-level predicates)  -> hash star joins
//	Q5:    selective on A                             -> index star join
//	Q6,Q7: selective on A, B and C                    -> index star join
//	Q8:    selective on A and B                       -> index star join
//	Q9:    not very selective                         -> hash star join
//
// Every query carries the FILTER (D.DD1) predicate, so D appears in each
// group-by at the D' level restricted to DD1.
package workload

import (
	"fmt"

	"mdxopt/internal/query"
	"mdxopt/internal/star"
)

// MDX returns the paper's queries rendered in the MDX subset understood
// by internal/mdx, keyed "Q1".."Q9". These strings parse (via mdx.Translate)
// into exactly the queries returned by PaperQueries.
func MDX() map[string]string {
	return map[string]string{
		"Q1": `{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS {C''.C1} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
		"Q2": `{A''.A1, A''.A2, A''.A3} on COLUMNS {B''.B2.CHILDREN} on ROWS {C''.C2} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
		"Q3": `{A''.A2} on COLUMNS {B''.B2} on ROWS {C''.C1, C''.C3} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
		"Q4": `{A''.A3, A''.A2} on COLUMNS {B''.B3} on ROWS {C''.C1, C''.C2, C''.C3} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
		"Q5": `{A'.AA2} on COLUMNS {B''.B1} on ROWS {C''.C3} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
		"Q6": `{A'.AA5} on COLUMNS {B''.B1.CHILDREN} on ROWS {C'.CC2} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
		"Q7": `{A'.AA2} on COLUMNS {B'.BB3} on ROWS {C'.CC1} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
		"Q8": `{A'.AA2} on COLUMNS {B'.BB1} on ROWS {C''.C1} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
		"Q9": `{A''.A1.CHILDREN} on COLUMNS {B''.B2, B''.B3} on ROWS {C''.C1.CHILDREN} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
	}
}

// PaperQueries builds Q1..Q9 against a datagen schema (dimensions
// A, B, C with >= 3 levels and D with >= 2 levels).
func PaperQueries(schema *star.Schema) (map[string]*query.Query, error) {
	if schema.NumDims() != 4 {
		return nil, fmt.Errorf("workload: schema has %d dimensions, want 4", schema.NumDims())
	}
	for i, d := range schema.Dims {
		min := 3
		if i == 3 {
			min = 2
		}
		if d.NumLevels() < min {
			return nil, fmt.Errorf("workload: dimension %s has %d levels, want >= %d", d.Name, d.NumLevels(), min)
		}
	}
	a, b, c := schema.Dims[0], schema.Dims[1], schema.Dims[2]

	// Common D predicate: member DD1 at level D'.
	dd1, ok := schema.Dims[3].MemberCode(1, "DD1")
	if !ok {
		return nil, fmt.Errorf("workload: dimension D has no member DD1")
	}
	dPred := query.Predicate{Members: []int32{dd1}}

	// Member code shorthands; the generator names top members A1..A3 and
	// mid members AA1..AAn.
	mc := func(d *star.Dimension, level int, name string) (int32, error) {
		code, ok := d.MemberCode(level, name)
		if !ok {
			return 0, fmt.Errorf("workload: no member %s at level %s of %s", name, d.LevelName(level), d.Name)
		}
		return code, nil
	}
	var firstErr error
	m := func(d *star.Dimension, level int, name string) int32 {
		code, err := mc(d, level, name)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return code
	}
	children := func(d *star.Dimension, topName string) []int32 {
		top := m(d, 2, topName)
		return append([]int32(nil), d.Children(2, top)...)
	}

	specs := []struct {
		name   string
		levels []int
		preds  []query.Predicate
	}{
		{"Q1", []int{1, 2, 2, 1}, []query.Predicate{
			{Members: children(a, "A1")},
			{Members: []int32{m(b, 2, "B1")}},
			{Members: []int32{m(c, 2, "C1")}},
			dPred,
		}},
		{"Q2", []int{2, 1, 2, 1}, []query.Predicate{
			{Members: []int32{m(a, 2, "A1"), m(a, 2, "A2"), m(a, 2, "A3")}},
			{Members: children(b, "B2")},
			{Members: []int32{m(c, 2, "C2")}},
			dPred,
		}},
		{"Q3", []int{2, 2, 2, 1}, []query.Predicate{
			{Members: []int32{m(a, 2, "A2")}},
			{Members: []int32{m(b, 2, "B2")}},
			{Members: []int32{m(c, 2, "C1"), m(c, 2, "C3")}},
			dPred,
		}},
		{"Q4", []int{2, 2, 2, 1}, []query.Predicate{
			{Members: []int32{m(a, 2, "A3"), m(a, 2, "A2")}},
			{Members: []int32{m(b, 2, "B3")}},
			{Members: []int32{m(c, 2, "C1"), m(c, 2, "C2"), m(c, 2, "C3")}},
			dPred,
		}},
		{"Q5", []int{1, 2, 2, 1}, []query.Predicate{
			{Members: []int32{m(a, 1, "AA2")}},
			{Members: []int32{m(b, 2, "B1")}},
			{Members: []int32{m(c, 2, "C3")}},
			dPred,
		}},
		{"Q6", []int{1, 1, 1, 1}, []query.Predicate{
			{Members: []int32{m(a, 1, "AA5")}},
			{Members: children(b, "B1")},
			{Members: []int32{m(c, 1, "CC2")}},
			dPred,
		}},
		{"Q7", []int{1, 1, 1, 1}, []query.Predicate{
			{Members: []int32{m(a, 1, "AA2")}},
			{Members: []int32{m(b, 1, "BB3")}},
			{Members: []int32{m(c, 1, "CC1")}},
			dPred,
		}},
		{"Q8", []int{1, 1, 2, 1}, []query.Predicate{
			{Members: []int32{m(a, 1, "AA2")}},
			{Members: []int32{m(b, 1, "BB1")}},
			{Members: []int32{m(c, 2, "C1")}},
			dPred,
		}},
		{"Q9", []int{1, 2, 1, 1}, []query.Predicate{
			{Members: children(a, "A1")},
			{Members: []int32{m(b, 2, "B2"), m(b, 2, "B3")}},
			{Members: children(c, "C1")},
			dPred,
		}},
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out := make(map[string]*query.Query, len(specs))
	for _, s := range specs {
		// Predicates share the dPred members slice; query.New sorts a
		// copy, so give each its own.
		preds := make([]query.Predicate, len(s.preds))
		for i, p := range s.preds {
			preds[i] = query.Predicate{Members: append([]int32(nil), p.Members...)}
		}
		q, err := query.New(s.name, schema, s.levels, preds)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", s.name, err)
		}
		out[s.name] = q
	}
	return out, nil
}

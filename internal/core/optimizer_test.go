package core

import (
	"path/filepath"
	"testing"

	"mdxopt/internal/datagen"
	"mdxopt/internal/exec"
	"mdxopt/internal/plan"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/workload"
)

var sharedDB *star.Database
var sharedQs map[string]*query.Query

func testDB(t *testing.T) (*star.Database, map[string]*query.Query) {
	t.Helper()
	if sharedDB != nil {
		return sharedDB, sharedQs
	}
	spec := datagen.PaperSpec(0.1) // 200k rows; index joins pay off
	spec.PoolFrames = 1024
	db, err := datagen.Build(filepath.Join(t.TempDir(), "db"), spec)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := workload.PaperQueries(db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	sharedDB, sharedQs = db, qs
	return db, qs
}

func qset(qs map[string]*query.Query, names ...string) []*query.Query {
	out := make([]*query.Query, len(names))
	for i, n := range names {
		out[i] = qs[n]
	}
	return out
}

// planAndCost optimizes and returns the plan with its estimated cost.
func planAndCost(t *testing.T, est *plan.Estimator, queries []*query.Query, alg Algorithm) (*plan.Global, float64) {
	t.Helper()
	g, err := Optimize(est, queries, alg)
	if err != nil {
		t.Fatalf("Optimize(%s): %v", alg, err)
	}
	if g.NumQueries() != len(queries) {
		t.Fatalf("%s planned %d of %d queries", alg, g.NumQueries(), len(queries))
	}
	return g, est.GlobalCost(g)
}

func TestEveryAlgorithmEveryTestSetExecutesCorrectly(t *testing.T) {
	db, qs := testDB(t)
	env := exec.NewEnv(db)

	sets := map[string][]*query.Query{
		"test4": qset(qs, "Q1", "Q2", "Q3"),
		"test5": qset(qs, "Q2", "Q3", "Q5"),
		"test6": qset(qs, "Q6", "Q7", "Q8"),
		"test7": qset(qs, "Q1", "Q7", "Q9"),
	}
	estimators := map[string]*plan.Estimator{
		"full":  plan.NewEstimator(db),
		"paper": plan.NewPaperEstimator(db),
	}
	for setName, queries := range sets {
		// Oracle once per query.
		want := make([]*exec.Result, len(queries))
		for i, q := range queries {
			r, err := exec.Naive(env, q)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = r
		}
		for estName, est := range estimators {
			for _, alg := range Algorithms() {
				g, _ := planAndCost(t, est, queries, alg)
				var st exec.Stats
				got, err := Execute(env, g, queries, &st)
				if err != nil {
					t.Fatalf("%s/%s/%s Execute: %v", setName, estName, alg, err)
				}
				for i := range queries {
					if !got[i].Equal(want[i]) {
						t.Fatalf("%s/%s/%s: wrong result for %s", setName, estName, alg, queries[i].Name)
					}
				}
			}
		}
	}
}

func TestFullModelPlansMeasureNoWorseThanPaperMode(t *testing.T) {
	// The full-model plan space is a superset of the paper's, and its
	// cost model reflects this engine's sorted storage; its GG plans
	// must not measure (in simulated time on identical counted work)
	// meaningfully worse than paper-mode GG plans.
	db, qs := testDB(t)
	env := exec.NewEnv(db)
	model := plan.NewEstimator(db).Model

	sets := map[string][]*query.Query{
		"test4": qset(qs, "Q1", "Q2", "Q3"),
		"test7": qset(qs, "Q1", "Q7", "Q9"),
	}
	for setName, queries := range sets {
		measure := func(est *plan.Estimator) float64 {
			g, err := Optimize(est, queries, GG)
			if err != nil {
				t.Fatal(err)
			}
			if err := db.ColdReset(); err != nil {
				t.Fatal(err)
			}
			var st exec.Stats
			if _, err := Execute(env, g, queries, &st); err != nil {
				t.Fatal(err)
			}
			return st.SimulatedMicros(model)
		}
		paper := measure(plan.NewPaperEstimator(db))
		full := measure(plan.NewEstimator(db))
		if full > paper*1.02 {
			t.Fatalf("%s: full-model plan measured %.0f, paper-mode %.0f", setName, full, paper)
		}
	}
}

func TestAlgorithmCostOrdering(t *testing.T) {
	db, qs := testDB(t)
	est := plan.NewPaperEstimator(db)
	const slack = 1e-6
	sets := [][]*query.Query{
		qset(qs, "Q1", "Q2", "Q3"),
		qset(qs, "Q2", "Q3", "Q5"),
		qset(qs, "Q6", "Q7", "Q8"),
		qset(qs, "Q1", "Q7", "Q9"),
		qset(qs, "Q1", "Q2", "Q3", "Q4", "Q9"),
	}
	for i, queries := range sets {
		_, tplo := planAndCost(t, est, queries, TPLO)
		_, etplg := planAndCost(t, est, queries, ETPLG)
		_, gg := planAndCost(t, est, queries, GG)
		_, opt := planAndCost(t, est, queries, Optimal)

		// The paper's dominance: Optimal <= GG; GG searches a superset
		// of ETPLG's space per step. ETPLG is greedy so it is not
		// formally guaranteed below TPLO, but Optimal must bound all.
		if opt > gg+slack || opt > etplg+slack || opt > tplo+slack {
			t.Fatalf("set %d: Optimal %v above a heuristic (tplo %v etplg %v gg %v)",
				i, opt, tplo, etplg, gg)
		}
		if gg > etplg+slack {
			t.Fatalf("set %d: GG %v worse than ETPLG %v", i, gg, etplg)
		}
	}
}

func TestTest4Shape(t *testing.T) {
	// Test 4 (Q1,Q2,Q3): the greedy sharers must find a shared base and
	// beat TPLO, which picks three different exact views.
	db, qs := testDB(t)
	est := plan.NewPaperEstimator(db)
	queries := qset(qs, "Q1", "Q2", "Q3")

	tploPlan, tplo := planAndCost(t, est, queries, TPLO)
	_, gg := planAndCost(t, est, queries, GG)
	if len(tploPlan.Classes) != 3 {
		t.Fatalf("TPLO classes = %d, want 3 (no accidental sharing)", len(tploPlan.Classes))
	}
	if gg >= tplo {
		t.Fatalf("GG %v not below TPLO %v on Test 4", gg, tplo)
	}
	ggPlan, _ := planAndCost(t, est, queries, GG)
	if len(ggPlan.Classes) >= 3 {
		t.Fatalf("GG found no sharing: %d classes", len(ggPlan.Classes))
	}
	_ = db
}

func TestTest6Shape(t *testing.T) {
	// Test 6 (Q6,Q7,Q8): all selective; local optima are index joins on
	// the indexed view, so all algorithms land on the same logical plan
	// and perform about the same.
	db, qs := testDB(t)
	est := plan.NewPaperEstimator(db)
	queries := qset(qs, "Q6", "Q7", "Q8")

	indexed := db.ViewByLevels([]int{1, 1, 1, 0})
	for _, alg := range Algorithms() {
		g, _ := planAndCost(t, est, queries, alg)
		if len(g.Classes) != 1 {
			t.Fatalf("%s: %d classes, want 1", alg, len(g.Classes))
		}
		if g.Classes[0].View.Name != indexed.Name {
			t.Fatalf("%s picked %s, want %s", alg, g.Classes[0].View.Name, indexed.Name)
		}
		for _, p := range g.Classes[0].Plans {
			if p.Method != plan.IndexSJ {
				t.Fatalf("%s: %s uses %v, want IndexSJ", alg, p.Query.Name, p.Method)
			}
		}
	}
}

func TestTest7Shape(t *testing.T) {
	// Test 7 (Q1,Q7,Q9): TPLO picks a different view per query and
	// shares nothing; GG/ETPLG consolidate.
	db, qs := testDB(t)
	est := plan.NewPaperEstimator(db)
	queries := qset(qs, "Q1", "Q7", "Q9")

	tploPlan, tplo := planAndCost(t, est, queries, TPLO)
	ggPlan, gg := planAndCost(t, est, queries, GG)
	if len(ggPlan.Classes) >= len(tploPlan.Classes) {
		t.Fatalf("GG %d classes, TPLO %d: no consolidation", len(ggPlan.Classes), len(tploPlan.Classes))
	}
	if gg >= tplo {
		t.Fatalf("GG %v not below TPLO %v on Test 7", gg, tplo)
	}
	_ = db
}

func TestOptimizeDeterministic(t *testing.T) {
	_, qs := testDB(t)
	db := sharedDB
	est := plan.NewEstimator(db)
	queries := qset(qs, "Q1", "Q2", "Q3", "Q5", "Q7")
	for _, alg := range Algorithms() {
		g1, err := Optimize(est, queries, alg)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := Optimize(est, queries, alg)
		if err != nil {
			t.Fatal(err)
		}
		if g1.Describe() != g2.Describe() {
			t.Fatalf("%s non-deterministic:\n%s\nvs\n%s", alg, g1.Describe(), g2.Describe())
		}
	}
}

func TestOptimizeErrors(t *testing.T) {
	db, qs := testDB(t)
	est := plan.NewEstimator(db)
	if _, err := Optimize(est, nil, GG); err == nil {
		t.Fatal("empty query set accepted")
	}
	if _, err := Optimize(est, qset(qs, "Q1"), Algorithm("bogus")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	var many []*query.Query
	for i := 0; i < 11; i++ {
		many = append(many, qs["Q1"])
	}
	if _, err := Optimize(est, many, Optimal); err == nil {
		t.Fatal("Optimal accepted 11 queries")
	}
}

func TestGGMergesClassesOnSameBase(t *testing.T) {
	// With many queries, GG must never emit two classes with one base.
	db, qs := testDB(t)
	est := plan.NewEstimator(db)
	queries := qset(qs, "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9")
	g, err := Optimize(est, queries, GG)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*star.View]bool{}
	for _, c := range g.Classes {
		if seen[c.View] {
			t.Fatalf("two GG classes share base %s", c.View.Name)
		}
		seen[c.View] = true
	}
	_ = db
}

func TestExecuteSeparatelyMatchesOracle(t *testing.T) {
	db, qs := testDB(t)
	est := plan.NewEstimator(db)
	env := exec.NewEnv(db)
	queries := qset(qs, "Q3", "Q7")
	var st exec.Stats
	rs, err := ExecuteSeparately(env, est, queries, &st)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := exec.Naive(env, q)
		if err != nil {
			t.Fatal(err)
		}
		if !rs[i].Equal(want) {
			t.Fatalf("separate execution wrong for %s", q.Name)
		}
	}
	if st.IO.Reads() == 0 {
		t.Fatal("separate execution reported no I/O after cold resets")
	}
}

package core

import (
	"math/rand"
	"testing"

	"mdxopt/internal/exec"
	"mdxopt/internal/plan"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
)

// randomQuery builds a random valid query against the test schema.
func randomQuery(rng *rand.Rand, schema *star.Schema, name string) *query.Query {
	levels := make([]int, schema.NumDims())
	preds := make([]query.Predicate, schema.NumDims())
	for i, d := range schema.Dims {
		// Bias away from ALL so most dimensions participate.
		levels[i] = rng.Intn(d.NumLevels() + 1)
		if levels[i] == d.NumLevels() && rng.Intn(3) > 0 {
			levels[i] = rng.Intn(d.NumLevels())
		}
		if levels[i] == d.AllLevel() {
			continue
		}
		card := int(d.Card(levels[i]))
		if rng.Intn(2) == 0 {
			n := 1 + rng.Intn(minInt(card, 4))
			picked := rng.Perm(card)[:n]
			members := make([]int32, n)
			for j, p := range picked {
				members[j] = int32(p)
			}
			preds[i] = query.Predicate{Members: members}
		}
	}
	q, err := query.New(name, schema, levels, preds)
	if err != nil {
		panic(err)
	}
	// A quarter of the queries use a non-SUM aggregate; the paper
	// database has no multi-aggregate views, so the planner must route
	// them to the base table.
	if rng.Intn(4) == 0 {
		q.Agg = query.Agg(1 + rng.Intn(4))
	}
	return q
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// checkPlanInvariants asserts structural well-formedness of a global
// plan for the given query set.
func checkPlanInvariants(t *testing.T, db *star.Database, g *plan.Global, queries []*query.Query) {
	t.Helper()
	// Every query planned exactly once.
	seen := map[*query.Query]int{}
	for _, c := range g.Classes {
		if len(c.Plans) == 0 {
			t.Fatal("empty class")
		}
		for _, p := range c.Plans {
			seen[p.Query]++
			if p.View != c.View {
				t.Fatalf("plan view %s differs from class view %s", p.View.Name, c.View.Name)
			}
			if !p.Query.AnswerableFrom(c.View.Levels) {
				t.Fatalf("class view %s cannot answer %s", c.View.Name, p.Query)
			}
			if p.Method == plan.IndexSJ {
				hasIndex := false
				for _, dim := range p.Query.RestrictedDims() {
					if c.View.HasIndex(dim) {
						hasIndex = true
					}
				}
				if !hasIndex {
					t.Fatalf("index plan for %s on unindexed view %s", p.Query.Name, c.View.Name)
				}
			}
		}
		if c.Regime == plan.ProbeRegime && len(c.HashPlans()) > 0 {
			t.Fatal("probe-regime class contains hash plans")
		}
		if !db.Fresh(c.View) {
			t.Fatalf("plan uses stale view %s", c.View.Name)
		}
		for _, p := range c.Plans {
			if p.Query.Agg != query.Sum && !c.View.IsBase() && !c.View.MultiAgg() {
				t.Fatalf("%v query %s planned on sum-only view %s", p.Query.Agg, p.Query.Name, c.View.Name)
			}
		}
	}
	for _, q := range queries {
		if seen[q] != 1 {
			t.Fatalf("query %s planned %d times", q.Name, seen[q])
		}
	}
}

// TestOptimizerInvariantsOnRandomQuerySets fuzzes all four algorithms
// with random query sets and checks plan well-formedness, algorithm
// dominance, and execution correctness against the oracle.
func TestOptimizerInvariantsOnRandomQuerySets(t *testing.T) {
	db, _ := testDB(t)
	env := exec.NewEnv(db)
	rng := rand.New(rand.NewSource(20260706))

	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(4)
		queries := make([]*query.Query, n)
		for i := range queries {
			queries[i] = randomQuery(rng, db.Schema, "R"+string(rune('a'+i)))
		}

		for _, estName := range []string{"paper", "full"} {
			var est *plan.Estimator
			if estName == "paper" {
				est = plan.NewPaperEstimator(db)
			} else {
				est = plan.NewEstimator(db)
			}
			costs := map[Algorithm]float64{}
			for _, alg := range append(Algorithms(), GGI) {
				g, err := Optimize(est, queries, alg)
				if err != nil {
					t.Fatalf("trial %d %s/%s: %v", trial, estName, alg, err)
				}
				checkPlanInvariants(t, db, g, queries)
				costs[alg] = est.GlobalCost(g)

				// Execute GG, GGI and Optimal plans; verify against the
				// oracle.
				if alg != GG && alg != GGI && alg != Optimal {
					continue
				}
				var st exec.Stats
				results, err := Execute(env, g, queries, &st)
				if err != nil {
					t.Fatalf("trial %d %s/%s execute: %v", trial, estName, alg, err)
				}
				for i, q := range queries {
					want, err := exec.Naive(env, q)
					if err != nil {
						t.Fatal(err)
					}
					if !results[i].Equal(want) {
						t.Fatalf("trial %d %s/%s: wrong result for %s\n  query: %s",
							trial, estName, alg, q.Name, q)
					}
				}
			}
			const slack = 1e-6
			if costs[Optimal] > costs[TPLO]+slack || costs[Optimal] > costs[ETPLG]+slack ||
				costs[Optimal] > costs[GG]+slack {
				t.Fatalf("trial %d %s: Optimal %v above a heuristic %v",
					trial, estName, costs[Optimal], costs)
			}
			// GG considers a superset of ETPLG's choices at every step,
			// but greedy paths diverge, so strict dominance is not a
			// theorem (the paper observes it empirically on its own
			// workloads, which TestAlgorithmCostOrdering pins). Allow a
			// small margin on random sets.
			if costs[GG] > costs[ETPLG]*1.01 {
				t.Fatalf("trial %d %s: GG %v far above ETPLG %v", trial, estName, costs[GG], costs[ETPLG])
			}
			// GGI hill-climbs from both greedy starts, so it IS
			// guaranteed no worse than either, and bounded below by the
			// optimum.
			if costs[GGI] > costs[GG]+slack || costs[GGI] > costs[ETPLG]+slack {
				t.Fatalf("trial %d %s: GGI %v above a greedy start %v", trial, estName, costs[GGI], costs)
			}
			if costs[Optimal] > costs[GGI]+slack {
				t.Fatalf("trial %d %s: Optimal %v above GGI %v", trial, estName, costs[Optimal], costs[GGI])
			}
		}
	}
}

// Package core implements the paper's contribution: the three
// multiple-dimensional-query optimization algorithms — TPLO (Two Phase
// Local Optimal, §4), ETPLG (Extended Two Phase Local Greedy, §5) and GG
// (Global Greedy, §6) — plus the exhaustive Optimal baseline used in the
// paper's Table 2, and the executor that runs a global plan with the §3
// shared operators.
package core

import (
	"fmt"
	"math"
	"sort"

	"mdxopt/internal/plan"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
)

// Algorithm selects an optimization strategy.
type Algorithm string

const (
	// TPLO picks the best local plan per query independently, then
	// merges plans that happen to share a base table.
	TPLO Algorithm = "TPLO"
	// ETPLG greedily grows classes of queries sharing a base table; a
	// class never changes its base.
	ETPLG Algorithm = "ETPLG"
	// GG is ETPLG extended so a class may re-base onto a different
	// materialized group-by (and classes with equal bases merge).
	GG Algorithm = "GG"
	// Optimal exhaustively searches query partitions and base
	// assignments; exponential, only for small query sets.
	Optimal Algorithm = "Optimal"
)

// Algorithms lists all algorithms in presentation order.
func Algorithms() []Algorithm { return []Algorithm{TPLO, ETPLG, GG, Optimal} }

// Options tunes the greedy algorithms.
type Options struct {
	// CoarsestFirst reverses the paper's GroupbyLevel insertion order
	// (finest group-bys first). Exposed for the ablation study.
	CoarsestFirst bool
}

// Optimize produces a global plan for the query set with the chosen
// algorithm. The returned plan's local methods are assigned by the cost
// model. Queries must be non-empty.
func Optimize(est *plan.Estimator, queries []*query.Query, alg Algorithm) (*plan.Global, error) {
	return OptimizeWith(est, queries, alg, Options{})
}

// OptimizeWith is Optimize with explicit Options.
func OptimizeWith(est *plan.Estimator, queries []*query.Query, alg Algorithm, opts Options) (*plan.Global, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no queries to optimize")
	}
	switch alg {
	case TPLO:
		return optimizeTPLO(est, queries)
	case ETPLG:
		return optimizeGreedy(est, queries, false, opts)
	case GG:
		return optimizeGreedy(est, queries, true, opts)
	case GGI:
		return optimizeImproved(est, queries, opts)
	case Optimal:
		return optimizeExhaustive(est, queries)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", alg)
	}
}

// sortForGreedy orders queries by the paper's GroupbyLevel: finest
// group-bys first (they need the largest views and so anchor classes),
// name as the deterministic tie-break.
func sortForGreedy(queries []*query.Query, coarsestFirst bool) []*query.Query {
	out := append([]*query.Query(nil), queries...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TotalLevel() != out[j].TotalLevel() {
			if coarsestFirst {
				return out[i].TotalLevel() > out[j].TotalLevel()
			}
			return out[i].TotalLevel() < out[j].TotalLevel()
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// optimizeTPLO: phase one picks each query's locally optimal
// (view, method) — or the result cache, when a cached rollup beats every
// view; phase two merges plans with a common base table into classes so
// the shared operators apply.
func optimizeTPLO(est *plan.Estimator, queries []*query.Query) (*plan.Global, error) {
	byView := map[*star.View]*plan.Class{}
	var order []*star.View
	g := &plan.Global{}
	for _, q := range queries {
		ent, cacheCost, haveCache := est.CacheCandidate(q)
		local, localCost, err := est.BestLocal(q, est.DB.Views)
		if haveCache && (err != nil || cacheCost < localCost) {
			g.Cached = append(g.Cached, &plan.CachePlan{Query: q, Entry: ent})
			continue
		}
		if err != nil {
			return nil, err
		}
		c, ok := byView[local.View]
		if !ok {
			c = &plan.Class{View: local.View}
			byView[local.View] = c
			order = append(order, local.View)
		}
		c.Plans = append(c.Plans, local)
	}
	for _, v := range order {
		g.Classes = append(g.Classes, byView[v])
	}
	est.GlobalCost(g) // assign shared-execution methods
	return g, nil
}

// optimizeGreedy implements ETPLG (rebase=false, §5) and GG
// (rebase=true, §6). Both grow the global plan one query at a time:
//
//	ETPLG: join the class whose shared base is cheapest to use, unless
//	an unused materialized group-by is cheaper standalone; a class's
//	base never changes.
//
//	GG: additionally consider re-basing each class onto the view that
//	minimizes the cost of the whole class plus the new query; when a
//	class re-bases, its old base returns to the unused set, and if the
//	new base is already another class's base the two classes merge.
func optimizeGreedy(est *plan.Estimator, queries []*query.Query, rebase bool, opts Options) (*plan.Global, error) {
	ordered := sortForGreedy(queries, opts.CoarsestFirst)
	used := map[*star.View]bool{}
	var classes []*plan.Class
	var cached []*plan.CachePlan

	for _, q := range ordered {
		// Best unused materialized group-by (the paper's MSet).
		bestView, bestViewCost := bestUnused(est, q, used)

		// Best class to host q.
		var bestClass *plan.Class
		bestAddCost := math.Inf(1)
		var bestRebase *star.View
		for _, c := range classes {
			if rebase {
				newBase, addCost := bestRebaseFor(est, c, q, used)
				if addCost < bestAddCost {
					bestClass, bestAddCost, bestRebase = c, addCost, newBase
				}
			} else {
				addCost := est.CostOfAdd(c, q)
				if addCost < bestAddCost {
					bestClass, bestAddCost, bestRebase = c, addCost, c.View
				}
			}
		}

		// The result cache is a third candidate source: a cached rollup
		// serves q alone, so it competes with both opening a class and
		// joining one — and loses whenever a shared pass amortizes
		// better for the batch.
		if ent, cacheCost, ok := est.CacheCandidate(q); ok &&
			cacheCost < bestViewCost && cacheCost < bestAddCost {
			cached = append(cached, &plan.CachePlan{Query: q, Entry: ent})
			continue
		}

		switch {
		case bestClass == nil && bestView == nil:
			return nil, fmt.Errorf("core: no view can answer %s", q)
		case bestClass == nil || (bestView != nil && bestViewCost < bestAddCost):
			// Open a new class on the unused view.
			used[bestView] = true
			classes = append(classes, &plan.Class{
				View:  bestView,
				Plans: []*plan.Local{{Query: q, View: bestView}},
			})
		default:
			// Join (and possibly re-base) the best class.
			if bestRebase != bestClass.View {
				used[bestClass.View] = false
				used[bestRebase] = true
				setClassView(bestClass, bestRebase)
				classes = mergeClasses(classes, bestClass)
			}
			bestClass.Plans = append(bestClass.Plans, &plan.Local{Query: q, View: bestClass.View})
		}
	}

	g := &plan.Global{Classes: classes, Cached: cached}
	est.GlobalCost(g)
	return g, nil
}

// bestUnused finds the unused view with the cheapest standalone plan for
// q. Returns (nil, +Inf) when no unused view can answer q.
func bestUnused(est *plan.Estimator, q *query.Query, used map[*star.View]bool) (*star.View, float64) {
	var best *star.View
	bestCost := math.Inf(1)
	for _, v := range est.DB.Views {
		if used[v] {
			continue
		}
		_, c, ok := est.BestMethod(q, v)
		if !ok {
			continue
		}
		if c < bestCost {
			best, bestCost = v, c
		}
	}
	return best, bestCost
}

// bestRebaseFor finds, for class c and new query q, the base view S'
// minimizing Cost(c ∪ q | S') over views answering every member and q.
// Candidates are the class's current base plus any view not used by
// *another* class (GG may pick a locally sub-optimal unused view, or
// another class's base — which triggers a merge). Returns the chosen
// base and the marginal cost Cost(c ∪ q | S') - Cost(c | S).
func bestRebaseFor(est *plan.Estimator, c *plan.Class, q *query.Query, used map[*star.View]bool) (*star.View, float64) {
	current := est.ClassCost(c)
	var best *star.View
	bestAfter := math.Inf(1)
	for _, v := range est.DB.Views {
		if !q.AnswerableFrom(v.Levels) {
			continue
		}
		ok := true
		for _, p := range c.Plans {
			if !p.Query.AnswerableFrom(v.Levels) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		trial := &plan.Class{View: v}
		for _, p := range c.Plans {
			trial.Plans = append(trial.Plans, &plan.Local{Query: p.Query, View: v})
		}
		trial.Plans = append(trial.Plans, &plan.Local{Query: q, View: v})
		after := est.ClassCost(trial)
		if after < bestAfter {
			best, bestAfter = v, after
		}
	}
	return best, bestAfter - current
}

// setClassView re-bases every plan of c onto v.
func setClassView(c *plan.Class, v *star.View) {
	c.View = v
	for _, p := range c.Plans {
		p.View = v
	}
}

// mergeClasses folds any other class with the same base view into
// keep (the paper's MergeClass step) and returns the surviving classes.
func mergeClasses(classes []*plan.Class, keep *plan.Class) []*plan.Class {
	out := classes[:0]
	for _, c := range classes {
		if c != keep && c.View == keep.View {
			keep.Plans = append(keep.Plans, c.Plans...)
			continue
		}
		out = append(out, c)
	}
	return out
}

// optimizeExhaustive enumerates all partitions of the query set into
// classes and, for each class, every candidate base view, taking the
// cheapest global plan. Exponential in the number of queries; the
// experiment harness uses it as the paper's "optimal global plan".
func optimizeExhaustive(est *plan.Estimator, queries []*query.Query) (*plan.Global, error) {
	// Pre-pass: a query whose cached rollup beats its best standalone
	// plan leaves the partition search — a cache plan serves one query
	// in isolation, so it cannot improve any class it would have joined.
	var cached []*plan.CachePlan
	var rest []*query.Query
	for _, q := range queries {
		ent, cacheCost, ok := est.CacheCandidate(q)
		if ok {
			_, localCost, err := est.BestLocal(q, est.DB.Views)
			if err != nil || cacheCost < localCost {
				cached = append(cached, &plan.CachePlan{Query: q, Entry: ent})
				continue
			}
		}
		rest = append(rest, q)
	}
	if len(rest) == 0 {
		g := &plan.Global{Cached: cached}
		est.GlobalCost(g)
		return g, nil
	}
	queries = rest
	if len(queries) > 10 {
		return nil, fmt.Errorf("core: Optimal limited to 10 queries, got %d", len(queries))
	}
	var best *plan.Global
	bestCost := math.Inf(1)

	var groups [][]*query.Query
	var recurse func(i int)
	recurse = func(i int) {
		if i == len(queries) {
			g := &plan.Global{}
			total := 0.0
			for _, grp := range groups {
				c, cCost := bestClassFor(est, grp)
				if c == nil {
					return
				}
				g.Classes = append(g.Classes, c)
				total += cCost
				if total >= bestCost {
					return
				}
			}
			if total < bestCost {
				best, bestCost = g, total
			}
			return
		}
		q := queries[i]
		for gi := range groups {
			groups[gi] = append(groups[gi], q)
			recurse(i + 1)
			groups[gi] = groups[gi][:len(groups[gi])-1]
		}
		groups = append(groups, []*query.Query{q})
		recurse(i + 1)
		groups = groups[:len(groups)-1]
	}
	recurse(0)

	if best == nil {
		return nil, fmt.Errorf("core: no feasible global plan")
	}
	best.Cached = cached
	est.GlobalCost(best)
	return best, nil
}

// bestClassFor picks the cheapest base view for a fixed query group.
func bestClassFor(est *plan.Estimator, group []*query.Query) (*plan.Class, float64) {
	var best *plan.Class
	bestCost := math.Inf(1)
	for _, v := range est.DB.Views {
		ok := true
		for _, q := range group {
			if !q.AnswerableFrom(v.Levels) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		c := &plan.Class{View: v}
		for _, q := range group {
			c.Plans = append(c.Plans, &plan.Local{Query: q, View: v})
		}
		cc := est.ClassCost(c)
		if cc < bestCost {
			best, bestCost = c, cc
		}
	}
	return best, bestCost
}

package core

import (
	"context"
	"fmt"

	"mdxopt/internal/dag"
	"mdxopt/internal/exec"
	"mdxopt/internal/plan"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/storage"
)

// ClassStat records the work one class's shared pass performed — the
// per-class breakdown behind an EXPLAIN ANALYZE.
type ClassStat struct {
	View    string
	Regime  string
	Queries []string
	Stats   exec.Stats
}

// ExecOptions configures Run.
type ExecOptions struct {
	// Workers is the unified pool width: it bounds every executor
	// goroutine at once — concurrently running task-graph nodes (class
	// passes, cache rollups, shared lookup builds) AND the scan-morsel
	// workers a running class pass fans out, all drawing slots from one
	// dag.Pool. Values <= 1 run the graph serially in the legacy order
	// (builds, classes in plan order, cache rollups) with serial scans;
	// any width produces byte-identical results and identical
	// deterministic work counters. Widths beyond dag.WorkerCap() are
	// clamped.
	Workers int
	// Est prices each node's memory footprint for Gate and for the
	// graph's node costs. nil prices every node at zero (gating then
	// admits trivially).
	Est *plan.Estimator
	// Gate, when non-nil, admits each node's estimated footprint before
	// the node starts — typically mem.Broker.Admit — and its release runs
	// when the node finishes. Admission defers node starts while memory
	// is saturated, so at tight budgets inter-class parallelism degrades
	// toward the serial order instead of violating the budget.
	Gate func(ctx context.Context, cost int64) (release func(), err error)
}

// Execution is Run's full output.
type Execution struct {
	// Results are ordered to match the queries passed to Run.
	Results []*exec.Result
	// PerQuery is each query's attributed work: its non-shared work
	// exactly plus an equal share of its class's shared work (and of the
	// hoisted lookup builds its class consumed).
	PerQuery []exec.Stats
	// Classes covers the plan's classes in order, followed by one entry
	// per cache-served query (View "cache:<entry>", Regime "cache").
	Classes []ClassStat
	// DAGNodes is how many task-graph nodes the plan compiled to.
	DAGNodes int
	// WorkerPeak is the pool-wide concurrency peak: nodes running plus
	// the scan-morsel workers they fanned out, never exceeding the
	// effective width. DAGParallelPeak is its pre-pool alias and always
	// carries the same value.
	WorkerPeak      int
	DAGParallelPeak int
	// EffectiveWorkers is the width the run actually used: the requested
	// Workers clamped to [1, dag.WorkerCap()].
	EffectiveWorkers int
}

// Execute runs a global plan with the §3 shared operators — one shared
// pass per class — and returns results ordered to match queries. Work is
// accumulated into stats.
func Execute(env *exec.Env, g *plan.Global, queries []*query.Query, stats *exec.Stats) ([]*exec.Result, error) {
	ex, err := Run(env, g, queries, stats, ExecOptions{})
	if err != nil {
		return nil, err
	}
	return ex.Results, nil
}

// ExecuteDetailed is Execute returning the per-class work breakdown
// alongside the results.
func ExecuteDetailed(env *exec.Env, g *plan.Global, queries []*query.Query, stats *exec.Stats) ([]*exec.Result, []ClassStat, error) {
	ex, err := Run(env, g, queries, stats, ExecOptions{})
	if err != nil {
		return nil, nil, err
	}
	return ex.Results, ex.Classes, nil
}

// ExecuteAttributed is ExecuteDetailed additionally splitting each class
// pass's work across its queries (exec.Attribute). Queries whose
// per-submission context (Env.QueryCtx) was canceled mid-pass come back
// with Result.Err set rather than failing the whole batch.
func ExecuteAttributed(env *exec.Env, g *plan.Global, queries []*query.Query, stats *exec.Stats) ([]*exec.Result, []ClassStat, []exec.Stats, error) {
	ex, err := Run(env, g, queries, stats, ExecOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	return ex.Results, ex.Classes, ex.PerQuery, nil
}

// Run compiles a global plan into an operator task graph and executes it
// on a bounded worker pool (internal/dag):
//
//   - one node per shared dimension-lookup build, grouped per dimension
//     and hoisted out of the class passes — classes touching the same
//     dimension share one build instead of each rebuilding it;
//   - one node per class pass (shared scan/index/mixed), depending on
//     every build node;
//   - one independent node per cache rollup.
//
// Every node runs on a private Env clone and accumulates into a private
// Stats; totals, attribution and the caller's stats are merged on join,
// after the graph has fully drained, so no Stats.Add ever races
// (merge-on-join). With Workers > 1 each node additionally restricts its
// I/O accounting to the files it owns (exec.Env.IOFiles) — concurrent
// nodes touch disjoint files, so pool-global deltas would double-count.
//
// The first node error cancels the rest of the graph; in-flight nodes
// drain — releasing their reservations, pins and spill files through the
// operators' own cleanup paths — before Run returns the error.
func Run(env *exec.Env, g *plan.Global, queries []*query.Query, stats *exec.Stats, opts ExecOptions) (*Execution, error) {
	for _, c := range g.Classes {
		if c.Regime == plan.ProbeRegime && len(c.HashPlans()) > 0 {
			return nil, fmt.Errorf("core: class %s: probe regime with hash members", c.View.Name)
		}
	}
	ctx := env.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// One pool for the whole run: node starts and the scan morsels class
	// passes fan out draw on the same slots.
	pool := dag.NewPool(opts.Workers)
	parallel := pool.Width() > 1

	// Shared lookup builds, hoisted out of the class passes. The set is
	// closed only after the graph has drained, so an error path never
	// frees lookups a still-running pass is reading.
	var builds []plan.BuildTask
	var lookups *exec.LookupSet
	if env.ShareLookups {
		builds = plan.BuildTasks(g)
	}
	if len(builds) > 0 {
		lookups = exec.NewLookupSet(env.Mem)
		defer lookups.Close()
	}

	var graph dag.Graph
	buildStats := make([]exec.Stats, len(builds))
	buildNodes := make([]*dag.Node, len(builds))
	for bi, t := range builds {
		bi, t := bi, t
		nodeEnv := *env
		nodeEnv.Lookups = lookups
		if parallel {
			nodeEnv.IOFiles = []*storage.File{env.DB.DimTables[t.Dim].File()}
		}
		specs := make([]exec.LookupBuild, len(t.Specs))
		for i, s := range t.Specs {
			specs[i] = exec.LookupBuild{Query: s.Query, Dim: s.Dim, ViewLevel: s.ViewLevel}
		}
		buildNodes[bi] = graph.Add(&dag.Node{
			Label: "build " + env.DB.Schema.Dims[t.Dim].Name,
			Cost:  nodeCost(opts.Est, func(e *plan.Estimator) int64 { return e.BuildMemory(t) }),
			Run: func(nctx context.Context) error {
				e := nodeEnv
				e.Ctx = nctx
				return e.BuildLookups(lookups, specs, &buildStats[bi])
			},
		})
	}

	type classOut struct {
		qs []*query.Query
		rs []*exec.Result
		cs exec.Stats
	}
	classOuts := make([]classOut, len(g.Classes))
	for ci, c := range g.Classes {
		ci, c := ci, c
		hashQs := plansQueries(c.HashPlans())
		indexQs := plansQueries(c.IndexPlans())
		nodeEnv := *env
		nodeEnv.Lookups = lookups
		if parallel {
			nodeEnv.IOFiles = classFiles(env.DB, c)
			// The pass's scan morsels draw on the run's pool; its width
			// supersedes any standalone Env.Parallelism.
			nodeEnv.Pool = pool
		}
		graph.Add(&dag.Node{
			Label: "class " + c.View.Name,
			Cost:  nodeCost(opts.Est, func(e *plan.Estimator) int64 { return e.ClassPassMemory(c, lookups != nil) }),
			Run: func(nctx context.Context) error {
				e := nodeEnv
				e.Ctx = nctx
				out := &classOuts[ci]
				if c.Regime == plan.ProbeRegime {
					rs, err := exec.SharedIndex(&e, c.View, indexQs, &out.cs)
					if err != nil {
						return err
					}
					out.qs, out.rs = indexQs, rs
					return nil
				}
				hr, ir, err := exec.SharedMixed(&e, c.View, hashQs, indexQs, &out.cs)
				if err != nil {
					return err
				}
				out.qs = append(append([]*query.Query{}, hashQs...), indexQs...)
				out.rs = append(append([]*exec.Result{}, hr...), ir...)
				return nil
			},
		}, buildNodes...)
	}

	type cacheOut struct {
		r  *exec.Result
		cs exec.Stats
	}
	cacheOuts := make([]cacheOut, len(g.Cached))
	for i, cp := range g.Cached {
		i, cp := i, cp
		nodeEnv := *env
		if parallel {
			nodeEnv.IOFiles = []*storage.File{} // the rollup reads no pages
		}
		graph.Add(&dag.Node{
			Label: "cache rollup for " + cp.Query.QualifiedName(),
			Cost:  nodeCost(opts.Est, func(e *plan.Estimator) int64 { return e.CacheMemory(cp) }),
			Run: func(nctx context.Context) error {
				e := nodeEnv
				e.Ctx = nctx
				r, err := exec.RollupCached(&e, cp.Entry, cp.Query, &cacheOuts[i].cs)
				if err != nil {
					return err
				}
				cacheOuts[i].r = r
				return nil
			},
		})
	}

	dagStats, err := graph.Run(ctx, dag.Options{Pool: pool, Gate: opts.Gate})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Join: the graph has drained, so every node's private output is
	// stable. The hoisted builds are shared by every class; split their
	// work equally across the classes, then split each class — builds
	// included — across its queries. Totals are conserved: the class
	// stats sum to exactly the pass + build work performed.
	for bi := range buildStats {
		for ci, share := range exec.Attribute(buildStats[bi], make([]exec.Stats, len(g.Classes))) {
			classOuts[ci].cs.Add(share)
		}
	}

	ex := &Execution{
		DAGNodes:         dagStats.Nodes,
		WorkerPeak:       dagStats.WorkerPeak,
		DAGParallelPeak:  dagStats.WorkerPeak,
		EffectiveWorkers: pool.Width(),
	}
	byQuery := map[*query.Query]*exec.Result{}
	perQuery := map[*query.Query]exec.Stats{}
	for ci, c := range g.Classes {
		out := &classOuts[ci]
		owns := make([]exec.Stats, len(out.rs))
		for i, r := range out.rs {
			byQuery[out.qs[i]] = r
			owns[i] = r.Own
		}
		for i, s := range exec.Attribute(out.cs, owns) {
			perQuery[out.qs[i]] = s
		}
		stats.Add(out.cs)
		names := make([]string, 0, len(c.Plans))
		for _, p := range c.Plans {
			names = append(names, p.Query.QualifiedName())
		}
		ex.Classes = append(ex.Classes, ClassStat{
			View:    c.View.Name,
			Regime:  c.Regime.String(),
			Queries: names,
			Stats:   out.cs,
		})
	}
	for i, cp := range g.Cached {
		out := &cacheOuts[i]
		byQuery[cp.Query] = out.r
		perQuery[cp.Query] = out.cs
		stats.Add(out.cs)
		ex.Classes = append(ex.Classes, ClassStat{
			View:    "cache:" + cp.Entry.Name,
			Regime:  "cache",
			Queries: []string{cp.Query.QualifiedName()},
			Stats:   out.cs,
		})
	}
	ex.Results = make([]*exec.Result, len(queries))
	ex.PerQuery = make([]exec.Stats, len(queries))
	for i, q := range queries {
		r, ok := byQuery[q]
		if !ok {
			return nil, fmt.Errorf("core: plan has no result for %s", q)
		}
		ex.Results[i] = r
		ex.PerQuery[i] = perQuery[q]
	}
	return ex, nil
}

// nodeCost prices one node with est, or zero without an estimator.
func nodeCost(est *plan.Estimator, f func(*plan.Estimator) int64) int64 {
	if est == nil {
		return 0
	}
	return f(est)
}

// classFiles enumerates the files a class pass may touch: the view's
// heap, its bitmap join indexes, and the dimension tables (read only by
// the fallback path when a lookup was not hoisted — with lookup sharing
// off, concurrent classes re-reading one dimension table may attribute
// the same read to more than one class; totals remain upper bounds).
func classFiles(db *star.Snapshot, c *plan.Class) []*storage.File {
	files := []*storage.File{c.View.Heap.File()}
	for _, ix := range c.View.Indexes {
		if ix != nil {
			files = append(files, ix.File())
		}
	}
	for _, t := range db.DimTables {
		files = append(files, t.File())
	}
	return files
}

// ExecuteSeparately runs every query standalone with its locally chosen
// plan, cold-resetting the cache between queries — the paper's "queries
// running separately" baseline.
func ExecuteSeparately(env *exec.Env, est *plan.Estimator, queries []*query.Query, stats *exec.Stats) ([]*exec.Result, error) {
	out := make([]*exec.Result, len(queries))
	for i, q := range queries {
		if err := env.DB.ColdReset(); err != nil {
			return nil, err
		}
		local, _, err := est.BestLocal(q, est.DB.Views)
		if err != nil {
			return nil, err
		}
		var r *exec.Result
		switch local.Method {
		case plan.HashSJ:
			r, err = exec.HashJoinQuery(env, local.View, q, stats)
		case plan.IndexSJ:
			r, err = exec.IndexJoinQuery(env, local.View, q, stats)
		}
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func plansQueries(plans []*plan.Local) []*query.Query {
	out := make([]*query.Query, len(plans))
	for i, p := range plans {
		out[i] = p.Query
	}
	return out
}

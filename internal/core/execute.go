package core

import (
	"fmt"

	"mdxopt/internal/exec"
	"mdxopt/internal/plan"
	"mdxopt/internal/query"
)

// ClassStat records the work one class's shared pass performed — the
// per-class breakdown behind an EXPLAIN ANALYZE.
type ClassStat struct {
	View    string
	Regime  string
	Queries []string
	Stats   exec.Stats
}

// Execute runs a global plan with the §3 shared operators — one shared
// pass per class — and returns results ordered to match queries. Work is
// accumulated into stats.
func Execute(env *exec.Env, g *plan.Global, queries []*query.Query, stats *exec.Stats) ([]*exec.Result, error) {
	results, _, err := ExecuteDetailed(env, g, queries, stats)
	return results, err
}

// ExecuteDetailed is Execute returning the per-class work breakdown
// alongside the results.
func ExecuteDetailed(env *exec.Env, g *plan.Global, queries []*query.Query, stats *exec.Stats) ([]*exec.Result, []ClassStat, error) {
	results, classStats, _, err := ExecuteAttributed(env, g, queries, stats)
	return results, classStats, err
}

// ExecuteAttributed is ExecuteDetailed additionally splitting each
// class pass's work across its queries (exec.Attribute): perQuery[i] is
// query i's non-shared work exactly plus an equal share of its class's
// shared work (the scan, page I/O, lookup builds, wall time). The
// returned classStats cover g.Classes in order, followed by one entry
// per cache-served query (View "cache:<entry>", Regime "cache").
// Queries whose per-submission context (Env.QueryCtx) was canceled
// mid-pass come back with Result.Err set rather than failing the whole
// batch.
func ExecuteAttributed(env *exec.Env, g *plan.Global, queries []*query.Query, stats *exec.Stats) ([]*exec.Result, []ClassStat, []exec.Stats, error) {
	byQuery := map[*query.Query]*exec.Result{}
	perQuery := map[*query.Query]exec.Stats{}
	classStats := make([]ClassStat, 0, len(g.Classes))
	for _, c := range g.Classes {
		hashQs := plansQueries(c.HashPlans())
		indexQs := plansQueries(c.IndexPlans())
		var cs exec.Stats
		var classQs []*query.Query
		var classRs []*exec.Result
		if c.Regime == plan.ProbeRegime {
			if len(hashQs) > 0 {
				return nil, nil, nil, fmt.Errorf("core: class %s: probe regime with hash members", c.View.Name)
			}
			rs, err := exec.SharedIndex(env, c.View, indexQs, &cs)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("core: class %s: %w", c.View.Name, err)
			}
			classQs, classRs = indexQs, rs
		} else {
			hr, ir, err := exec.SharedMixed(env, c.View, hashQs, indexQs, &cs)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("core: class %s: %w", c.View.Name, err)
			}
			classQs = append(append([]*query.Query{}, hashQs...), indexQs...)
			classRs = append(append([]*exec.Result{}, hr...), ir...)
		}
		owns := make([]exec.Stats, len(classRs))
		for i, r := range classRs {
			byQuery[classQs[i]] = r
			owns[i] = r.Own
		}
		for i, s := range exec.Attribute(cs, owns) {
			perQuery[classQs[i]] = s
		}
		stats.Add(cs)
		names := make([]string, 0, len(c.Plans))
		for _, p := range c.Plans {
			names = append(names, p.Query.QualifiedName())
		}
		classStats = append(classStats, ClassStat{
			View:    c.View.Name,
			Regime:  c.Regime.String(),
			Queries: names,
			Stats:   cs,
		})
	}
	for _, cp := range g.Cached {
		var cs exec.Stats
		r, err := exec.RollupCached(env, cp.Entry, cp.Query, &cs)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: cache rollup for %s: %w", cp.Query, err)
		}
		byQuery[cp.Query] = r
		perQuery[cp.Query] = cs
		stats.Add(cs)
		classStats = append(classStats, ClassStat{
			View:    "cache:" + cp.Entry.Name,
			Regime:  "cache",
			Queries: []string{cp.Query.QualifiedName()},
			Stats:   cs,
		})
	}
	out := make([]*exec.Result, len(queries))
	perQ := make([]exec.Stats, len(queries))
	for i, q := range queries {
		r, ok := byQuery[q]
		if !ok {
			return nil, nil, nil, fmt.Errorf("core: plan has no result for %s", q)
		}
		out[i] = r
		perQ[i] = perQuery[q]
	}
	return out, classStats, perQ, nil
}

// ExecuteSeparately runs every query standalone with its locally chosen
// plan, cold-resetting the cache between queries — the paper's "queries
// running separately" baseline.
func ExecuteSeparately(env *exec.Env, est *plan.Estimator, queries []*query.Query, stats *exec.Stats) ([]*exec.Result, error) {
	out := make([]*exec.Result, len(queries))
	for i, q := range queries {
		if err := env.DB.ColdReset(); err != nil {
			return nil, err
		}
		local, _, err := est.BestLocal(q, est.DB.Views)
		if err != nil {
			return nil, err
		}
		var r *exec.Result
		switch local.Method {
		case plan.HashSJ:
			r, err = exec.HashJoinQuery(env, local.View, q, stats)
		case plan.IndexSJ:
			r, err = exec.IndexJoinQuery(env, local.View, q, stats)
		}
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func plansQueries(plans []*plan.Local) []*query.Query {
	out := make([]*query.Query, len(plans))
	for i, p := range plans {
		out[i] = p.Query
	}
	return out
}

package core

import (
	"math"

	"mdxopt/internal/plan"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
)

// GGI — Global Greedy with Iterative improvement — is this repository's
// answer to the paper's §8 closing question ("the study of this
// trade-off may lead to the discovery of new algorithms"): it
// hill-climbs from both greedy starting points (GG and ETPLG),
// repeatedly trying to move a single query to another class (re-basing
// the target if profitable) or to a fresh class on an unused view,
// accepting any move that lowers the global cost until a pass makes no
// progress, and returns the cheaper of the two climbs. It searches far
// fewer plans than the exhaustive optimum while recovering most of the
// gap the greedy algorithms leave.
const GGI Algorithm = "GGI"

// optimizeImproved hill-climbs from both greedy starts.
func optimizeImproved(est *plan.Estimator, queries []*query.Query, opts Options) (*plan.Global, error) {
	var best *plan.Global
	bestCost := 0.0
	for _, rebase := range []bool{true, false} {
		g, err := optimizeGreedy(est, queries, rebase, opts)
		if err != nil {
			return nil, err
		}
		const maxPasses = 8
		for pass := 0; pass < maxPasses; pass++ {
			if !improvePass(est, g) {
				break
			}
		}
		if c := est.GlobalCost(g); best == nil || c < bestCost {
			best, bestCost = g, c
		}
	}
	est.GlobalCost(best)
	return best, nil
}

// improvePass tries to relocate each planned query once; reports whether
// any move was accepted.
func improvePass(est *plan.Estimator, g *plan.Global) bool {
	improved := false
	for qi := 0; qi < numPlans(g); qi++ {
		if tryMove(est, g, qi) {
			improved = true
		}
	}
	return improved
}

func numPlans(g *plan.Global) int {
	n := 0
	for _, c := range g.Classes {
		n += len(c.Plans)
	}
	return n
}

// cloneGlobal deep-copies a plan's class and local structure (views and
// queries are shared references).
func cloneGlobal(g *plan.Global) *plan.Global {
	out := &plan.Global{
		Classes: make([]*plan.Class, len(g.Classes)),
		Cached:  append([]*plan.CachePlan(nil), g.Cached...),
	}
	for i, c := range g.Classes {
		nc := &plan.Class{View: c.View, Regime: c.Regime, Plans: make([]*plan.Local, len(c.Plans))}
		for j, p := range c.Plans {
			cp := *p
			nc.Plans[j] = &cp
		}
		out.Classes[i] = nc
	}
	return out
}

// tryMove attempts the best single relocation of the qi-th planned
// query, applying it to g only when the recomputed global cost strictly
// improves.
func tryMove(est *plan.Estimator, g *plan.Global, qi int) bool {
	current := est.GlobalCost(g)
	clone := cloneGlobal(g)

	// Locate the query in the clone.
	var from *plan.Class
	var q *query.Query
	i := qi
	for _, c := range clone.Classes {
		if i < len(c.Plans) {
			from = c
			q = c.Plans[i].Query
			break
		}
		i -= len(c.Plans)
	}
	if q == nil {
		return false
	}

	used := map[*star.View]bool{}
	for _, c := range clone.Classes {
		used[c.View] = true
	}

	// Remove q from its class in the clone.
	from.Plans = withoutQuery(from, q).Plans
	if len(from.Plans) == 0 {
		clone.Classes = removeClass(clone.Classes, from)
		used[from.View] = false
	}

	// Candidate 1: the best other class to join, with re-basing.
	var bestClass *plan.Class
	var bestView *star.View
	bestAdd := math.Inf(1)
	for _, c := range clone.Classes {
		if c == from {
			continue
		}
		newBase, addCost := bestRebaseFor(est, c, q, used)
		if newBase != nil && addCost < bestAdd {
			bestClass, bestView, bestAdd = c, newBase, addCost
		}
	}
	// Candidate 2: a fresh class on the best unused view.
	freshView, freshCost := bestUnused(est, q, used)

	switch {
	case bestClass != nil && bestAdd <= freshCost:
		if bestView != bestClass.View {
			used[bestClass.View] = false
			used[bestView] = true
			setClassView(bestClass, bestView)
			clone.Classes = mergeClasses(clone.Classes, bestClass)
		}
		bestClass.Plans = append(bestClass.Plans, &plan.Local{Query: q, View: bestClass.View})
	case freshView != nil:
		clone.Classes = append(clone.Classes, &plan.Class{
			View:  freshView,
			Plans: []*plan.Local{{Query: q, View: freshView}},
		})
	default:
		return false
	}

	if est.GlobalCost(clone) < current-1e-9 {
		*g = *clone
		return true
	}
	return false
}

func withoutQuery(c *plan.Class, q *query.Query) *plan.Class {
	out := &plan.Class{View: c.View}
	for _, p := range c.Plans {
		if p.Query != q {
			out.Plans = append(out.Plans, p)
		}
	}
	return out
}

func removeClass(classes []*plan.Class, victim *plan.Class) []*plan.Class {
	out := make([]*plan.Class, 0, len(classes))
	for _, c := range classes {
		if c != victim {
			out = append(out, c)
		}
	}
	return out
}

package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"mdxopt/internal/exec"
	"mdxopt/internal/mem"
	"mdxopt/internal/plan"
	"mdxopt/internal/query"
	"mdxopt/internal/storage"
)

// detCounters projects the deterministic work counters of a Stats — the
// fields whose values must be identical at every worker count. I/O and
// wall time legitimately vary with scheduling and pool state; everything
// else may not.
func detCounters(s exec.Stats) [8]int64 {
	return [8]int64{
		s.TuplesScanned, s.TupleProbes, s.TuplesAgg, s.TuplesFetched,
		s.HashBuildRows, s.BitmapWords, s.BitTests, s.CacheRows,
	}
}

// runDAG executes g at the given worker count on a fresh broker-governed
// Env, with per-node admission gating, and verifies the broker drains.
func runDAG(t *testing.T, env *exec.Env, g *plan.Global, queries []*query.Query, workers int) (*Execution, exec.Stats) {
	t.Helper()
	broker := mem.New(0)
	e := *env
	e.Mem = broker
	var st exec.Stats
	ex, err := Run(&e, g, queries, &st, ExecOptions{
		Workers: workers,
		Est:     plan.NewEstimator(env.DB),
		Gate: func(ctx context.Context, cost int64) (func(), error) {
			return broker.Admit(ctx, cost)
		},
	})
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	if used := broker.Stats().Used; used != 0 {
		t.Fatalf("Run(workers=%d) left %d bytes reserved", workers, used)
	}
	return ex, st
}

// TestDAGExecutionEquivalence fuzzes the task-graph executor: for random
// query sets, running the plan's graph at 2 and 4 workers must produce
// byte-identical results (same groups in the same order) and identical
// deterministic work counters — per attributed query and in total — as
// the serial order at 1 worker.
func TestDAGExecutionEquivalence(t *testing.T) {
	db, _ := testDB(t)
	env := exec.NewEnv(db)
	env.MorselPages = 2 // tiny morsels force heavy work-stealing
	est := plan.NewEstimator(db)
	rng := rand.New(rand.NewSource(20260808))

	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(5)
		queries := make([]*query.Query, n)
		for i := range queries {
			queries[i] = randomQuery(rng, db.Schema, "E"+string(rune('a'+i)))
		}
		g, err := Optimize(est, queries, GG)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		base, baseTotal := runDAG(t, env, g, queries, 1)
		if base.DAGParallelPeak > 1 {
			t.Fatalf("trial %d: serial run peaked at %d nodes", trial, base.DAGParallelPeak)
		}
		for _, workers := range []int{2, 4, 8} {
			got, gotTotal := runDAG(t, env, g, queries, workers)
			if got.DAGNodes != base.DAGNodes {
				t.Fatalf("trial %d workers=%d: %d nodes vs %d serial",
					trial, workers, got.DAGNodes, base.DAGNodes)
			}
			if detCounters(gotTotal) != detCounters(baseTotal) {
				t.Fatalf("trial %d workers=%d: total counters %v, serial %v",
					trial, workers, detCounters(gotTotal), detCounters(baseTotal))
			}
			for i, q := range queries {
				if got.Results[i].Err != nil || base.Results[i].Err != nil {
					t.Fatalf("trial %d workers=%d: unexpected result error for %s", trial, workers, q.Name)
				}
				if !got.Results[i].Equal(base.Results[i]) {
					t.Fatalf("trial %d workers=%d: result for %s differs from serial\n  query: %s",
						trial, workers, q.Name, q)
				}
				if detCounters(got.PerQuery[i]) != detCounters(base.PerQuery[i]) {
					t.Fatalf("trial %d workers=%d: attributed counters for %s %v, serial %v",
						trial, workers, q.Name, detCounters(got.PerQuery[i]), detCounters(base.PerQuery[i]))
				}
			}
		}
	}
}

// TestDAGEquivalenceUnderDetach pre-cancels one query's per-submission
// context: at every worker count the detached query must come back with
// its context error and partial results discarded, while the remaining
// queries stay byte-identical to the serial run.
func TestDAGEquivalenceUnderDetach(t *testing.T) {
	db, qs := testDB(t)
	queries := qset(qs, "Q1", "Q2", "Q3", "Q7")
	est := plan.NewEstimator(db)
	g, err := Optimize(est, queries, GG)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	env := exec.NewEnv(db)
	env.QueryCtx = func(q *query.Query) context.Context {
		if q == queries[0] {
			return canceled
		}
		return context.Background()
	}

	base, _ := runDAG(t, env, g, queries, 1)
	for _, workers := range []int{1, 4, 8} {
		got, _ := runDAG(t, env, g, queries, workers)
		if !errors.Is(got.Results[0].Err, context.Canceled) {
			t.Fatalf("workers=%d: detached query err = %v, want context.Canceled",
				workers, got.Results[0].Err)
		}
		for i := 1; i < len(queries); i++ {
			if got.Results[i].Err != nil {
				t.Fatalf("workers=%d: live query %s errored: %v", workers, queries[i].Name, got.Results[i].Err)
			}
			if !got.Results[i].Equal(base.Results[i]) {
				t.Fatalf("workers=%d: result for %s differs from serial", workers, queries[i].Name)
			}
			if detCounters(got.PerQuery[i]) != detCounters(base.PerQuery[i]) {
				t.Fatalf("workers=%d: attributed counters for %s differ from serial", workers, queries[i].Name)
			}
		}
	}
}

// TestDAGErrorReleasesResources injects disk faults so task-graph nodes
// fail while others are in flight, and checks the error paths leak
// nothing: the broker drains to zero, every buffer-pool page is
// unpinned (FlushAll refuses while pages are pinned), and the engine
// runs the same plan cleanly once the fault clears.
func TestDAGErrorReleasesResources(t *testing.T) {
	db, qs := testDB(t)
	queries := qset(qs, "Q1", "Q2", "Q3", "Q7", "Q8")
	est := plan.NewEstimator(db)
	g, err := Optimize(est, queries, GG)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected disk fault")
	faultOn := func(disk *storage.DiskManager) {
		disk.SetFault(func(op string, page uint32) error {
			if op == "read" {
				return boom
			}
			return nil
		})
	}

	// One faulted file per round: a dimension table (build nodes fail),
	// then each class's view heap (that class's pass fails mid-scan while
	// its siblings are in flight).
	victims := []*storage.File{db.DimTables[0].File()}
	for _, c := range g.Classes {
		victims = append(victims, c.View.Heap.File())
	}
	for vi, f := range victims {
		if err := db.ColdReset(); err != nil {
			t.Fatal(err)
		}
		faultOn(f.Disk())
		broker := mem.New(0)
		env := exec.NewEnv(db)
		env.Mem = broker
		var st exec.Stats
		_, err := Run(env, g, queries, &st, ExecOptions{Workers: 4, Est: est,
			Gate: func(ctx context.Context, cost int64) (func(), error) {
				return broker.Admit(ctx, cost)
			}})
		f.Disk().SetFault(nil)
		if !errors.Is(err, boom) {
			t.Fatalf("victim %d: Run err = %v, want injected fault", vi, err)
		}
		if used := broker.Stats().Used; used != 0 {
			t.Fatalf("victim %d: failed run left %d bytes reserved", vi, used)
		}
		if err := db.Pool.FlushAll(); err != nil {
			t.Fatalf("victim %d: pinned pages leaked across the failure: %v", vi, err)
		}
	}

	// Recovery: the same plan runs cleanly at full width.
	if err := db.ColdReset(); err != nil {
		t.Fatal(err)
	}
	env := exec.NewEnv(db)
	ex, _ := runDAG(t, env, g, queries, 4)
	for i, q := range queries {
		want, err := exec.Naive(env, q)
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Results[i].Equal(want) {
			t.Fatalf("after recovery: wrong result for %s", q.Name)
		}
	}
}

package storage

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
)

func newPoolFile(t *testing.T, frames int) (*Pool, *File) {
	t.Helper()
	p := NewPool(frames)
	f, err := p.OpenFile(filepath.Join(t.TempDir(), "pool.pages"))
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	t.Cleanup(func() { f.Disk().Close() })
	return p, f
}

func fillPages(t *testing.T, p *Pool, f *File, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		pg, err := p.NewPage(f)
		if err != nil {
			t.Fatalf("NewPage %d: %v", i, err)
		}
		pg.Data()[0] = byte(i)
		pg.MarkDirty()
		pg.Unpin()
	}
}

func TestPoolNewPageAndFetch(t *testing.T) {
	p, f := newPoolFile(t, 4)
	fillPages(t, p, f, 3)
	for i := 0; i < 3; i++ {
		pg, err := p.Fetch(f, uint32(i))
		if err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
		if pg.Data()[0] != byte(i) {
			t.Fatalf("page %d byte = %d, want %d", i, pg.Data()[0], i)
		}
		pg.Unpin()
	}
}

func TestPoolEvictionWritesBackDirtyPages(t *testing.T) {
	p, f := newPoolFile(t, 2)
	fillPages(t, p, f, 8) // forces continual eviction through 2 frames
	for i := 0; i < 8; i++ {
		pg, err := p.Fetch(f, uint32(i))
		if err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
		if pg.Data()[0] != byte(i) {
			t.Fatalf("page %d lost its write: byte=%d", i, pg.Data()[0])
		}
		pg.Unpin()
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("expected evictions with a 2-frame pool and 8 pages")
	}
}

func TestPoolPinnedPagesAreNotEvicted(t *testing.T) {
	p, f := newPoolFile(t, 2)
	fillPages(t, p, f, 2)
	a, err := p.Fetch(f, 0)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	b, err := p.Fetch(f, 1)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if _, err := p.NewPage(f); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("NewPage with all frames pinned = %v, want ErrPoolFull", err)
	}
	a.Unpin()
	if _, err := p.NewPage(f); err != nil {
		t.Fatalf("NewPage after unpin: %v", err)
	}
	b.Unpin()
}

func TestPoolHitAccounting(t *testing.T) {
	p, f := newPoolFile(t, 4)
	fillPages(t, p, f, 1)
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	p.ResetStats()
	pg, _ := p.Fetch(f, 0)
	pg.Unpin()
	pg, _ = p.Fetch(f, 0)
	pg.Unpin()
	st := p.Stats()
	if st.Reads() != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 read and 1 hit", st)
	}
}

func TestPoolSequentialVsRandomClassification(t *testing.T) {
	p, f := newPoolFile(t, 2) // small pool so re-reads are physical
	fillPages(t, p, f, 6)
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	p.ResetStats()

	// Sequential pass: 0,1,2,3,4,5 -> all sequential (first read counts
	// as sequential).
	for i := 0; i < 6; i++ {
		pg, err := p.Fetch(f, uint32(i))
		if err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
		pg.Unpin()
	}
	st := p.Stats()
	if st.SeqReads != 6 || st.RandReads != 0 {
		t.Fatalf("sequential pass: %+v, want seq=6 rand=0", st)
	}

	// Random pass. After the sequential pass the 2-frame pool caches
	// pages 4 and 5, so 0, 3, 1 are all physical and non-contiguous.
	p.ResetStats()
	for _, n := range []uint32{0, 3, 1} {
		pg, err := p.Fetch(f, n)
		if err != nil {
			t.Fatalf("Fetch %d: %v", n, err)
		}
		pg.Unpin()
	}
	st = p.Stats()
	if st.RandReads != 3 {
		t.Fatalf("random pass: %+v, want rand=3", st)
	}
}

func TestPoolFlushAllResetsSequentialTracking(t *testing.T) {
	p, f := newPoolFile(t, 2)
	fillPages(t, p, f, 4)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	pg, _ := p.Fetch(f, 3) // first read after reset counts sequential
	pg.Unpin()
	if st := p.Stats(); st.SeqReads != 1 || st.RandReads != 0 {
		t.Fatalf("stats = %+v, want first read after flush to be sequential", st)
	}
}

func TestPoolFlushAllRefusesPinned(t *testing.T) {
	p, f := newPoolFile(t, 2)
	fillPages(t, p, f, 1)
	pg, _ := p.Fetch(f, 0)
	if err := p.FlushAll(); err == nil {
		t.Fatal("FlushAll succeeded with a pinned page")
	}
	pg.Unpin()
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll after unpin: %v", err)
	}
}

func TestPoolFlushAllPersists(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "persist.pages")
	p := NewPool(2)
	f, err := p.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := p.NewPage(f)
	copy(pg.Data(), "durable")
	pg.MarkDirty()
	pg.Unpin()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	f.Disk().Close()

	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buf := make([]byte, PageSize)
	if err := d.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:7]) != "durable" {
		t.Fatalf("content = %q, want durable", buf[:7])
	}
}

func TestPoolMultipleFiles(t *testing.T) {
	p := NewPool(4)
	dir := t.TempDir()
	f1, err := p.OpenFile(filepath.Join(dir, "a.pages"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := p.OpenFile(filepath.Join(dir, "b.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Disk().Close()
	defer f2.Disk().Close()
	if f1.ID() == f2.ID() {
		t.Fatal("two files share a FileID")
	}
	pa, _ := p.NewPage(f1)
	pa.Data()[0] = 'a'
	pa.MarkDirty()
	pa.Unpin()
	pb, _ := p.NewPage(f2)
	pb.Data()[0] = 'b'
	pb.MarkDirty()
	pb.Unpin()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	ga, _ := p.Fetch(f1, 0)
	gb, _ := p.Fetch(f2, 0)
	if ga.Data()[0] != 'a' || gb.Data()[0] != 'b' {
		t.Fatalf("cross-file mixup: got %c and %c", ga.Data()[0], gb.Data()[0])
	}
	ga.Unpin()
	gb.Unpin()
}

func TestPoolReadFaultPropagates(t *testing.T) {
	p, f := newPoolFile(t, 2)
	fillPages(t, p, f, 1)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	f.Disk().SetFault(func(op string, page uint32) error {
		if op == "read" {
			return boom
		}
		return nil
	})
	if _, err := p.Fetch(f, 0); !errors.Is(err, boom) {
		t.Fatalf("Fetch err = %v, want injected fault", err)
	}
	f.Disk().SetFault(nil)
	pg, err := p.Fetch(f, 0)
	if err != nil {
		t.Fatalf("Fetch after clearing fault: %v", err)
	}
	pg.Unpin()
}

func TestPoolConcurrentFetch(t *testing.T) {
	p, f := newPoolFile(t, 8)
	fillPages(t, p, f, 16)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pg, err := p.Fetch(f, uint32(i%16))
				if err != nil {
					errs <- err
					return
				}
				if pg.Data()[0] != byte(i%16) {
					errs <- errors.New("wrong page content under concurrency")
					pg.Unpin()
					return
				}
				pg.Unpin()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStatsSubAndAdd(t *testing.T) {
	a := Stats{SeqReads: 10, RandReads: 4, Writes: 2, Hits: 7}
	b := Stats{SeqReads: 6, RandReads: 1, Writes: 2, Hits: 3}
	d := a.Sub(b)
	if d.SeqReads != 4 || d.RandReads != 3 || d.Writes != 0 || d.Hits != 4 {
		t.Fatalf("Sub = %+v", d)
	}
	var acc Stats
	acc.Add(a)
	acc.Add(b)
	if acc.SeqReads != 16 || acc.Reads() != 21 {
		t.Fatalf("Add = %+v", acc)
	}
}

func TestPoolCloseFile(t *testing.T) {
	p := NewPool(4)
	dir := t.TempDir()
	path := filepath.Join(dir, "cf.pages")
	f, err := p.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := p.NewPage(f)
	copy(pg.Data(), "swapme")
	pg.MarkDirty()
	pg.Unpin()

	// Pinned pages block CloseFile.
	pinned, _ := p.Fetch(f, 0)
	if err := p.CloseFile(f); err == nil {
		t.Fatal("CloseFile succeeded with a pinned page")
	}
	pinned.Unpin()

	if err := p.CloseFile(f); err != nil {
		t.Fatalf("CloseFile: %v", err)
	}
	// Dirty page was written back.
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if string(buf[:6]) != "swapme" {
		t.Fatalf("content after CloseFile = %q", buf[:6])
	}
	// Closing again fails (deregistered).
	if err := p.CloseFile(f); err == nil {
		t.Fatal("double CloseFile succeeded")
	}
	// The path can be reopened and gets fresh identity.
	f2, err := p.OpenFile(path)
	if err != nil {
		t.Fatalf("reopen after CloseFile: %v", err)
	}
	if f2 == f {
		t.Fatal("reopen returned the closed handle")
	}
	pg2, err := p.Fetch(f2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(pg2.Data()[:6]) != "swapme" {
		t.Fatal("reopened file lost content")
	}
	pg2.Unpin()
	f2.Disk().Close()
}

func TestPoolCloseFileDropsOnlyThatFile(t *testing.T) {
	p := NewPool(8)
	dir := t.TempDir()
	fa, _ := p.OpenFile(filepath.Join(dir, "a.pages"))
	fb, _ := p.OpenFile(filepath.Join(dir, "b.pages"))
	pa, _ := p.NewPage(fa)
	pa.Data()[0] = 'a'
	pa.MarkDirty()
	pa.Unpin()
	pb, _ := p.NewPage(fb)
	pb.Data()[0] = 'b'
	pb.MarkDirty()
	pb.Unpin()
	if err := p.CloseFile(fa); err != nil {
		t.Fatal(err)
	}
	// b's cached page is untouched.
	p.ResetStats()
	got, err := p.Fetch(fb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data()[0] != 'b' {
		t.Fatal("b content lost")
	}
	got.Unpin()
	if p.Stats().Reads() != 0 {
		t.Fatal("b's page was evicted by CloseFile(a)")
	}
	fb.Disk().Close()
}

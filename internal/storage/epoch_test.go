package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// dirtyFile creates a page file with one dirty cached page so reclaiming
// it must drop live pool state, not just unlink a path.
func dirtyFile(t *testing.T, p *Pool, path string) *File {
	t.Helper()
	f, err := p.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := p.NewPage(f)
	if err != nil {
		t.Fatal(err)
	}
	pg.Data()[0] = 0xAB
	pg.MarkDirty()
	pg.Unpin()
	return f
}

func TestEpochTablePinBlocksReclaim(t *testing.T) {
	dir := t.TempDir()
	p := NewPool(16)
	path := filepath.Join(dir, "old.heap")
	dirtyFile(t, p, path)

	et := NewEpochTable()
	epoch, unpin := et.Pin()
	if epoch != 0 {
		t.Fatalf("initial pin epoch = %d, want 0", epoch)
	}
	next := et.Publish([]RetiredFile{{Pool: p, Path: path}}, nil)
	if next != 1 {
		t.Fatalf("publish epoch = %d, want 1", next)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("retired file unlinked while its epoch was pinned: %v", err)
	}
	if s := et.Stats(); s.Retired != 1 || s.Pins != 1 {
		t.Fatalf("stats = %+v, want 1 retired, 1 pin", s)
	}

	unpin()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("retired file still on disk after last pin drained: %v", err)
	}
	if _, ok := p.Registered(path); ok {
		t.Fatal("retired file still registered with the pool")
	}
	if s := et.Stats(); s.Retired != 0 || s.Reclaimed != 1 {
		t.Fatalf("stats = %+v, want 0 retired, 1 reclaimed", s)
	}
	unpin() // idempotent
}

func TestEpochTableLaterPinDoesNotProtectOlderRetire(t *testing.T) {
	dir := t.TempDir()
	p := NewPool(16)
	path := filepath.Join(dir, "old.heap")
	dirtyFile(t, p, path)

	et := NewEpochTable()
	et.Publish([]RetiredFile{{Pool: p, Path: path}}, nil) // epoch 1, nothing pinned
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("unpinned retired file should reclaim at publish: %v", err)
	}

	// A pin taken after the publish must not resurrect protection for
	// files retired at or before its epoch.
	path2 := filepath.Join(dir, "old2.heap")
	dirtyFile(t, p, path2)
	_, unpin := et.Pin() // pins epoch 1
	et.Publish([]RetiredFile{{Pool: p, Path: path2}}, nil)
	if _, err := os.Stat(path2); err != nil {
		t.Fatal("file retired at epoch 2 must survive an epoch-1 pin")
	}
	unpin()
	if _, err := os.Stat(path2); !os.IsNotExist(err) {
		t.Fatal("file not reclaimed after the epoch-1 pin drained")
	}
}

func TestEpochTableReclaimRetriesAfterFailure(t *testing.T) {
	dir := t.TempDir()
	p := NewPool(16)
	path := filepath.Join(dir, "old.heap")
	f := dirtyFile(t, p, path)

	// Hold a pin on one of the file's pages so deregistration fails.
	pg, err := p.Fetch(f, 0)
	if err != nil {
		t.Fatal(err)
	}

	et := NewEpochTable()
	et.Publish([]RetiredFile{{Pool: p, Path: path}}, nil)
	// Deregistration fails on the pinned page, so the entry must stay
	// queued and the file must stay on disk and registered.
	if s := et.Stats(); s.Retired != 1 || s.Reclaimed != 0 {
		t.Fatalf("stats after failed reclaim = %+v, want entry kept", s)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("file removed despite failed deregistration: %v", err)
	}
	if err := et.Reclaim(); err == nil {
		t.Fatal("Reclaim succeeded with a pinned page outstanding")
	}

	// Reclamation discards the file's dirty pages rather than flushing
	// them (the file is being deleted), so a write fault must not block
	// the retry once the page is unpinned.
	boom := errors.New("injected write fault")
	f.Disk().SetFault(func(op string, page uint32) error {
		if op == "write" {
			return boom
		}
		return nil
	})
	pg.Unpin()
	if err := et.Reclaim(); err != nil {
		t.Fatalf("Reclaim after unpinning the page: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("file not unlinked after the pinned page was released")
	}
	if _, ok := p.Registered(path); ok {
		t.Fatal("retired file still registered with the pool")
	}
	if s := et.Stats(); s.Retired != 0 || s.Reclaimed != 1 {
		t.Fatalf("stats = %+v, want 1 reclaimed", s)
	}
}

func TestEpochTableForceDrainIgnoresPins(t *testing.T) {
	dir := t.TempDir()
	p := NewPool(16)
	path := filepath.Join(dir, "old.heap")
	dirtyFile(t, p, path)

	et := NewEpochTable()
	_, unpin := et.Pin()
	defer unpin()
	et.Publish([]RetiredFile{{Pool: p, Path: path}}, nil)
	if err := et.ForceDrain(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("ForceDrain left the retired file on disk")
	}
}

func TestEpochTablePublishInstallRunsUnderLock(t *testing.T) {
	et := NewEpochTable()
	var installed uint64
	et.Publish(nil, func(e uint64) { installed = e })
	if installed != 1 {
		t.Fatalf("install saw epoch %d, want 1", installed)
	}
	if cur := et.Current(); cur != 1 {
		t.Fatalf("Current() = %d, want 1", cur)
	}
}

package storage

import "sync"

// Sequential readahead.
//
// The pool watches demand reads for sequential runs. Classification for
// Stats uses the file's single lastRead cursor (the seed contract), but
// run *detection* uses a small table of stream cursors per file, because
// a parallel scan interleaves several per-worker sequential streams that
// a single cursor would see as random. Each slot stores, packed into one
// int64, the next page the stream expects (biased by +1 so 0 means
// empty) and the run length so far:
//
//	slot = (nextExpected+1)<<streamShift | runLength
//
// Once a stream's run reaches prefetchMinRun, the pool schedules one
// asynchronous window of the next Readahead pages. At most one window
// per file is in flight; within a window up to prefetchFanout goroutines
// read disjoint chunks so the simulated (or real) I/O latencies overlap.
// When a consumer demands a page the window loaded (a prefetch hit) past
// the midpoint of the window, the next window is chained immediately, so
// a steady scan always has readahead in front of it.
//
// Prefetch reads are polite: they never steal frames from other shards,
// skip pages already cached, count as sequential reads (they are part of
// a detected run), and a window that cannot get a frame or hits any
// error just stops — correctness never depends on readahead.

const (
	maxStreams     = 16 // stream cursors per file
	streamShift    = 16
	maxRunLen      = 1<<streamShift - 1
	prefetchMinRun = 2 // demand reads in a row before scheduling readahead
	prefetchFanout = 4 // concurrent page reads per window
)

// noteStream records a read of page against f's stream table and returns
// the length of the sequential run it extends (1 for a fresh stream).
func (f *File) noteStream(page uint32) int {
	next := int64(page) + 1
	for i := range f.streams {
		v := f.streams[i].Load()
		if v == 0 || v>>streamShift != next {
			continue
		}
		run := (v & maxRunLen) + 1
		if run > maxRunLen {
			run = maxRunLen
		}
		// A lost race just means another reader of the same stream
		// advanced it first; either way the run continues.
		f.streams[i].CompareAndSwap(v, (next+1)<<streamShift|run)
		return int(run)
	}
	// No stream expected this page: start one in a round-robin victim
	// slot.
	slot := int(f.streamClock.Add(1)) % maxStreams
	f.streams[slot].Store((next+1)<<streamShift | 1)
	return 1
}

// notePrefetchHit records that a consumer demanded a page readahead had
// loaded: the stream advances, and when the consumer is past the middle
// of the current window the next window is chained.
func (f *File) notePrefetchHit(page uint32) {
	if f.pool.readahead <= 0 {
		return
	}
	f.noteStream(page)
	next := f.prefetchNext.Load()
	if next > 0 && int64(page) >= next-int64(f.pool.readahead)/2-1 {
		f.pool.maybePrefetch(f, next)
	}
}

// maybePrefetch schedules an asynchronous readahead window starting at
// page start, unless one is already in flight for f.
func (p *Pool) maybePrefetch(f *File, start int64) {
	if p.readahead <= 0 || start < 0 || f.closing.Load() {
		return
	}
	if !f.prefetchBusy.CompareAndSwap(false, true) {
		return
	}
	f.prefetchWG.Add(1)
	go p.prefetchWindow(f, start)
}

// prefetchWindow reads pages [start, start+readahead) into the pool
// unpinned, fanning the reads out over a few goroutines so their I/O
// latencies overlap.
func (p *Pool) prefetchWindow(f *File, start int64) {
	defer f.prefetchWG.Done()
	defer f.prefetchBusy.Store(false)
	if f.closing.Load() {
		return
	}
	end := start + int64(p.readahead)
	if n := int64(f.disk.NumPages()); end > n {
		end = n
	}
	if start >= end {
		return
	}
	f.prefetchNext.Store(end)
	span := end - start
	workers := int64(prefetchFanout)
	if workers > span {
		workers = span
	}
	var wg sync.WaitGroup
	from := start
	for w := int64(0); w < workers; w++ {
		to := from + span/workers
		if w < span%workers {
			to++
		}
		wg.Add(1)
		go func(from, to int64) {
			defer wg.Done()
			for pg := from; pg < to; pg++ {
				if f.closing.Load() || !p.prefetchPage(f, uint32(pg)) {
					return
				}
			}
		}(from, to)
		from = to
	}
	wg.Wait()
}

// prefetchPage reads one page into the pool unpinned, marked prefetched.
// It returns false when the rest of the window should be abandoned (an
// I/O error, or no evictable frame in the page's shard — readahead never
// steals frames from other shards).
func (p *Pool) prefetchPage(f *File, page uint32) bool {
	key := PageKey{File: f.id, Page: page}
	s := p.shardOf(key)
	s.mu.Lock()
	if _, ok := s.dir[key]; ok {
		s.mu.Unlock()
		return true
	}
	fr, err := s.victimLocked()
	if err != nil {
		s.mu.Unlock()
		return false
	}
	if err := f.disk.ReadPage(page, fr.buf); err != nil {
		fr.pins.Store(0)
		fr.valid = false
		s.mu.Unlock()
		return false
	}
	f.advanceLastRead(int64(page))
	s.stats.SeqReads++ // readahead continues a detected sequential run
	s.stats.Prefetched++
	f.ioSeqReads.Add(1)
	f.ioPrefetched.Add(1)
	fr.key = key
	fr.disk = f.disk
	fr.valid = true
	fr.dirty.Store(false)
	fr.referenced.Store(true)
	fr.prefetched.Store(true)
	s.dir[key] = fr
	fr.pins.Store(0)
	s.mu.Unlock()
	return true
}

package storage

import (
	"fmt"
	"os"
	"sync"
)

// Fault is an injectable fault hook. When non-nil it is consulted before
// every physical read or write; a non-nil return aborts the operation with
// that error. Used by tests to exercise error paths.
type Fault func(op string, page uint32) error

// DiskManager stores fixed-size pages in a single operating-system file.
// Page numbers are dense, starting at zero. DiskManager is safe for
// concurrent use; reads and writes of already-allocated pages take the
// lock shared (ReadAt/WriteAt are positioned, so operations on distinct
// pages proceed in parallel), while Allocate and Close are exclusive.
type DiskManager struct {
	mu     sync.RWMutex
	f      *os.File
	path   string
	pages  uint32
	closed bool
	fault  Fault
}

// OpenDisk opens (creating if necessary) the page file at path.
func OpenDisk(path string) (*DiskManager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s: size %d is not a multiple of the page size", path, info.Size())
	}
	return &DiskManager{f: f, path: path, pages: uint32(info.Size() / PageSize)}, nil
}

// SetFault installs (or clears, with nil) a fault-injection hook.
func (d *DiskManager) SetFault(fault Fault) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fault = fault
}

// Path returns the file path backing this manager.
func (d *DiskManager) Path() string { return d.path }

// NumPages returns the number of allocated pages.
func (d *DiskManager) NumPages() uint32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.pages
}

// Allocate extends the file by one zeroed page and returns its number.
func (d *DiskManager) Allocate() (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	page := d.pages
	if d.fault != nil {
		if err := d.fault("alloc", page); err != nil {
			return 0, err
		}
	}
	var zero [PageSize]byte
	if _, err := d.f.WriteAt(zero[:], int64(page)*PageSize); err != nil {
		return 0, fmt.Errorf("storage: extend %s: %w", d.path, err)
	}
	d.pages++
	return page, nil
}

// ReadPage reads page into buf, which must be PageSize bytes.
func (d *DiskManager) ReadPage(page uint32, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	if page >= d.pages {
		return fmt.Errorf("%w: page %d of %d in %s", ErrPageOutOfRange, page, d.pages, d.path)
	}
	if d.fault != nil {
		if err := d.fault("read", page); err != nil {
			return err
		}
	}
	if _, err := d.f.ReadAt(buf, int64(page)*PageSize); err != nil {
		return fmt.Errorf("storage: read %s page %d: %w", d.path, page, err)
	}
	return nil
}

// WritePage writes buf (PageSize bytes) to page, which must already be
// allocated.
func (d *DiskManager) WritePage(page uint32, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	if page >= d.pages {
		return fmt.Errorf("%w: page %d of %d in %s", ErrPageOutOfRange, page, d.pages, d.path)
	}
	if d.fault != nil {
		if err := d.fault("write", page); err != nil {
			return err
		}
	}
	if _, err := d.f.WriteAt(buf, int64(page)*PageSize); err != nil {
		return fmt.Errorf("storage: write %s page %d: %w", d.path, page, err)
	}
	return nil
}

// Sync flushes the file to stable storage.
func (d *DiskManager) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.f.Sync()
}

// Close closes the underlying file. Further operations return ErrClosed.
func (d *DiskManager) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}

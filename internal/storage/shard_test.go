package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func newShardedPoolFile(t *testing.T, opts PoolOpts) (*Pool, *File) {
	t.Helper()
	p := NewPoolWith(opts)
	f, err := p.OpenFile(filepath.Join(t.TempDir(), "sharded.pages"))
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	t.Cleanup(func() { f.Disk().Close() })
	return p, f
}

// writePages appends n pages whose first bytes encode their page
// number, so readers can verify they got the right page.
func writePages(t *testing.T, p *Pool, f *File, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		pg, err := p.NewPage(f)
		if err != nil {
			t.Fatalf("NewPage %d: %v", i, err)
		}
		pg.Data()[0] = byte(i)
		pg.Data()[1] = byte(i >> 8)
		pg.MarkDirty()
		pg.Unpin()
	}
}

func checkPageByte(t *testing.T, pg *Page, want int) {
	t.Helper()
	if got := int(pg.Data()[0]) | int(pg.Data()[1])<<8; got != want {
		t.Fatalf("page %s holds %d, want %d", pg.Key(), got, want)
	}
}

func TestShardedPoolBasic(t *testing.T) {
	p, f := newShardedPoolFile(t, PoolOpts{Frames: 16, Shards: 4})
	if p.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", p.NumShards())
	}
	if p.NumFrames() != 16 {
		t.Fatalf("NumFrames = %d, want 16", p.NumFrames())
	}
	writePages(t, p, f, 32)
	for i := 0; i < 32; i++ {
		pg, err := p.Fetch(f, uint32(i))
		if err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
		checkPageByte(t, pg, i)
		pg.Unpin()
	}
}

func TestShardCountRounding(t *testing.T) {
	for _, c := range []struct{ frames, shards, want int }{
		{16, 0, 1},   // default: single global shard
		{16, 1, 1},   // explicit global
		{16, 3, 2},   // rounded down to a power of two
		{16, 8, 8},   // exact
		{4, 64, 4},   // clamped to frames
		{3, 64, 2},   // clamped, then rounded
		{16, 16, 16}, // one frame per shard
	} {
		p := NewPoolWith(PoolOpts{Frames: c.frames, Shards: c.shards})
		if p.NumShards() != c.want {
			t.Fatalf("frames=%d shards=%d: NumShards = %d, want %d",
				c.frames, c.shards, p.NumShards(), c.want)
		}
	}
}

// TestShardedPoolStealsFrames checks the global-eviction contract: a
// fetch only fails with ErrPoolFull when every frame of every shard is
// pinned, even when the target page's own shard has no evictable frame
// (the fetch steals one from another shard).
func TestShardedPoolStealsFrames(t *testing.T) {
	p, f := newShardedPoolFile(t, PoolOpts{Frames: 4, Shards: 4})
	writePages(t, p, f, 32)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Pin three pages — wherever they hash, at most one frame per shard
	// remains evictable, and some shards may have none.
	var pinned []*Page
	for i := 0; i < 3; i++ {
		pg, err := p.Fetch(f, uint32(i))
		if err != nil {
			t.Fatalf("pin %d: %v", i, err)
		}
		pinned = append(pinned, pg)
	}
	// Every other page must still be fetchable through the one free
	// frame, no matter which shard it hashes to.
	for i := 3; i < 32; i++ {
		pg, err := p.Fetch(f, uint32(i))
		if err != nil {
			t.Fatalf("Fetch %d with one free frame: %v", i, err)
		}
		checkPageByte(t, pg, i)
		pg.Unpin()
	}
	// Pin a fourth page: now the pool is truly full.
	pg4, err := p.Fetch(f, 3)
	if err != nil {
		t.Fatalf("pin 4th: %v", err)
	}
	if _, err := p.Fetch(f, 10); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("Fetch on a fully pinned pool: %v, want ErrPoolFull", err)
	}
	pg4.Unpin()
	for _, pg := range pinned {
		pg.Unpin()
	}
	if _, err := p.Fetch(f, 10); err != nil {
		t.Fatalf("Fetch after unpinning: %v", err)
	}
}

// TestPoolStressRace hammers one sharded pool from many goroutines —
// concurrent Fetch/Unpin/MarkDirty/NewPage plus CloseFile of a private
// file — and is meant to run under -race (make check does).
func TestPoolStressRace(t *testing.T) {
	p := NewPoolWith(PoolOpts{Frames: 32, Shards: 8, Readahead: 4})
	dir := t.TempDir()
	shared, err := p.OpenFile(filepath.Join(dir, "shared.pages"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shared.Disk().Close() })
	const sharedPages = 64
	writePages(t, p, shared, sharedPages)

	const goroutines = 8
	const iters = 300
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				switch rng.Intn(10) {
				case 0:
					// Grow, scan and retire a private file: exercises
					// NewPage, MarkDirty write-back and CloseFile
					// against concurrent traffic on the shared file.
					path := filepath.Join(dir, fmt.Sprintf("g%d-i%d.pages", g, i))
					priv, err := p.OpenFile(path)
					if err != nil {
						errCh <- err
						return
					}
					for j := 0; j < 4; j++ {
						pg, err := p.NewPage(priv)
						if err != nil {
							errCh <- fmt.Errorf("private NewPage: %w", err)
							return
						}
						pg.Data()[0] = byte(j)
						pg.MarkDirty()
						pg.Unpin()
					}
					if err := p.CloseFile(priv); err != nil {
						errCh <- fmt.Errorf("CloseFile: %w", err)
						return
					}
				default:
					// Mostly sequential fetches with occasional jumps,
					// so the prefetcher kicks in under contention.
					page := uint32((i + g*7) % sharedPages)
					if rng.Intn(4) == 0 {
						page = uint32(rng.Intn(sharedPages))
					}
					pg, err := p.Fetch(shared, page)
					if err != nil {
						errCh <- fmt.Errorf("Fetch %d: %w", page, err)
						return
					}
					checkPageByte(t, pg, int(page))
					pg.Unpin()
				}
			}
			errCh <- nil
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The pool must still be coherent: flush and re-verify everything.
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll after stress: %v", err)
	}
	for i := 0; i < sharedPages; i++ {
		pg, err := p.Fetch(shared, uint32(i))
		if err != nil {
			t.Fatalf("post-stress Fetch %d: %v", i, err)
		}
		checkPageByte(t, pg, i)
		pg.Unpin()
	}
}

// TestPrefetchHitAccounting drives a sequential scan with readahead on
// and checks the accounting contract: every page is physically read
// exactly once (prefetching must never cause duplicate or dropped
// reads), all reads classify as sequential, and pages the prefetcher
// loaded before the consumer arrived are credited as PrefetchHits.
func TestPrefetchHitAccounting(t *testing.T) {
	p, f := newShardedPoolFile(t, PoolOpts{Frames: 64, Shards: 4, Readahead: 8})
	const pages = 32
	writePages(t, p, f, pages)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()

	// A small delay per fetch gives the asynchronous prefetcher room to
	// run ahead of the consumer, like real per-tuple CPU work would.
	for i := 0; i < pages; i++ {
		pg, err := p.Fetch(f, uint32(i))
		if err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
		checkPageByte(t, pg, i)
		pg.Unpin()
		time.Sleep(200 * time.Microsecond)
	}
	// Quiesce the last window before reading stats.
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Reads() != pages {
		t.Fatalf("physical reads = %d, want exactly %d (no duplicate or dropped reads under prefetch): %s",
			st.Reads(), pages, st)
	}
	if st.RandReads != 0 {
		t.Fatalf("RandReads = %d, want 0 for a pure sequential scan: %s", st.RandReads, st)
	}
	if st.Prefetched == 0 {
		t.Fatalf("Prefetched = 0: the readahead never ran: %s", st)
	}
	if st.PrefetchHits == 0 {
		t.Fatalf("PrefetchHits = 0: the consumer never benefited: %s", st)
	}
	if st.PrefetchHits > st.Prefetched {
		t.Fatalf("PrefetchHits %d > Prefetched %d", st.PrefetchHits, st.Prefetched)
	}
}

// TestPrefetchDisabledIsExact re-runs the same scan with Readahead: 0
// and requires byte-identical seed accounting.
func TestPrefetchDisabledIsExact(t *testing.T) {
	p, f := newShardedPoolFile(t, PoolOpts{Frames: 64, Shards: 4})
	const pages = 32
	writePages(t, p, f, pages)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	for i := 0; i < pages; i++ {
		pg, err := p.Fetch(f, uint32(i))
		if err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
		pg.Unpin()
	}
	st := p.Stats()
	if st.SeqReads != pages || st.RandReads != 0 || st.Prefetched != 0 || st.PrefetchHits != 0 {
		t.Fatalf("stats with readahead off: %s, want seq=%d rand=0 prefetch=0/0", st, pages)
	}
}

// TestEvictionUnderPrefetch runs readahead against a pool far smaller
// than the file: prefetched pages are evicted, stolen and reloaded, and
// none of it may break correctness or pin accounting. The window (16)
// exceeds the whole pool (8 frames), so the prefetcher must give up
// gracefully rather than evict the consumer's pages.
func TestEvictionUnderPrefetch(t *testing.T) {
	p, f := newShardedPoolFile(t, PoolOpts{Frames: 8, Shards: 2, Readahead: 16})
	const pages = 64
	writePages(t, p, f, pages)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	for round := 0; round < 2; round++ {
		for i := 0; i < pages; i++ {
			pg, err := p.Fetch(f, uint32(i))
			if err != nil {
				t.Fatalf("round %d Fetch %d: %v", round, i, err)
			}
			checkPageByte(t, pg, i)
			pg.Unpin()
		}
	}
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll after eviction churn: %v", err)
	}
	st := p.Stats()
	// Thrash may re-read pages the window evicted, but a prefetch hit
	// can never exceed what was prefetched, and the pool must still be
	// fully functional (the fetch loop above verified every byte).
	if st.PrefetchHits > st.Prefetched {
		t.Fatalf("PrefetchHits %d > Prefetched %d: %s", st.PrefetchHits, st.Prefetched, st)
	}
	if st.Reads() < pages {
		t.Fatalf("Reads = %d, want at least %d: %s", st.Reads(), pages, st)
	}
}

// TestCloseFileWaitsForPrefetch closes a file right after triggering a
// readahead window; CloseFile must wait the window out rather than
// racing it (reads on a closed file, lost frames).
func TestCloseFileWaitsForPrefetch(t *testing.T) {
	p := NewPoolWith(PoolOpts{Frames: 64, Shards: 4, Readahead: 16})
	f, err := p.OpenFile(filepath.Join(t.TempDir(), "close.pages"))
	if err != nil {
		t.Fatal(err)
	}
	writePages(t, p, f, 64)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		pg, err := p.Fetch(f, uint32(i))
		if err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
		pg.Unpin()
	}
	if err := p.CloseFile(f); err != nil {
		t.Fatalf("CloseFile with readahead in flight: %v", err)
	}
	if _, err := p.Fetch(f, 0); err == nil {
		t.Fatal("Fetch after CloseFile succeeded, want error")
	}
}

// TestShardedStatsAggregate checks that per-shard counters sum into one
// coherent Stats snapshot and that ResetStats clears all shards.
func TestShardedStatsAggregate(t *testing.T) {
	p, f := newShardedPoolFile(t, PoolOpts{Frames: 32, Shards: 8})
	const pages = 16
	writePages(t, p, f, pages)
	st := p.Stats()
	if st.Allocs != pages || st.Writes != 0 {
		t.Fatalf("after appends: %s, want allocs=%d writes=0", st, pages)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.Writes != pages {
		t.Fatalf("after flush: %s, want writes=%d", st, pages)
	}
	if st.FlushedAll != 1 {
		t.Fatalf("FlushedAll = %d, want 1", st.FlushedAll)
	}
	for i := 0; i < pages; i++ {
		pg, err := p.Fetch(f, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		pg.Unpin()
	}
	if st = p.Stats(); st.Reads() != pages {
		t.Fatalf("after re-read: %s, want %d reads", st, pages)
	}
	p.ResetStats()
	if st = p.Stats(); st != (Stats{}) {
		t.Fatalf("after ResetStats: %s, want zeros", st)
	}
}

// TestUnpinIsLockFreeUnderLockedShards pins a page, then verifies that
// Unpin and MarkDirty complete while every shard mutex is held — the
// atomic-pin protocol the sharded pool's steady state depends on.
func TestUnpinIsLockFreeUnderLockedShards(t *testing.T) {
	p, f := newShardedPoolFile(t, PoolOpts{Frames: 8, Shards: 2})
	writePages(t, p, f, 4)
	pg, err := p.Fetch(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.lockAll()
	done := make(chan struct{})
	go func() {
		pg.MarkDirty()
		pg.Unpin()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		p.unlockAll()
		t.Fatal("Unpin/MarkDirty blocked on a shard lock")
	}
	p.unlockAll()
}

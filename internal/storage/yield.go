package storage

import "runtime"

// Yielder cooperatively yields the processor at a fixed work interval.
// Long-running maintenance loops (view compaction and refresh
// aggregation, replacement-heap writes, bitmap index rebuilds) tick it
// once per row or page so that on saturated or single-CPU hosts
// concurrent snapshot-pinned queries — which wait on the scheduler,
// never on a lock — are not parked behind the maintenance goroutine's
// full forced-preemption slice. Query hot paths do not tick: their work
// units are short enough that forced preemption bounds them already.
type Yielder struct{ n uint32 }

// yieldEvery trades overhead against latency: at typical per-row costs
// a maintenance loop yields every few hundred microseconds, amortizing
// the scheduler call to noise while keeping its uninterrupted slices
// well under the runtime's ~10ms forced preemption.
const yieldEvery = 4096

// Tick counts one unit of work and yields the processor every
// yieldEvery ticks.
func (y *Yielder) Tick() {
	y.n++
	if y.n%yieldEvery == 0 {
		runtime.Gosched()
	}
}

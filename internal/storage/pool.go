package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// File is a page file registered with a Pool. All page access goes through
// Pool.Fetch / Pool.NewPage so that caching and I/O accounting apply.
type File struct {
	id   FileID
	disk *DiskManager
	pool *Pool

	// lastRead is the last physically read page (-1 = none) and drives
	// the seed accounting contract: a read is sequential iff it follows
	// the file's previous physical read. Readahead reads advance it
	// monotonically (CAS-max) so a prefetched run stays sequential.
	lastRead atomic.Int64

	// Prefetch state; see prefetch.go. streams is a small table of
	// per-stream cursors so several interleaved scans of one file are
	// each recognized as sequential runs, which the single lastRead
	// cursor cannot do.
	streams      [maxStreams]atomic.Int64
	streamClock  atomic.Uint32
	prefetchNext atomic.Int64 // first page past the last scheduled window
	prefetchBusy atomic.Bool  // one readahead window in flight per file
	closing      atomic.Bool  // CloseFile in progress: prefetchers stand down
	prefetchWG   sync.WaitGroup

	// Per-file I/O counters, mirroring the read-side fields of Stats.
	// Concurrent executor tasks that touch disjoint file sets use these to
	// attribute I/O without double-counting the way pool-global deltas
	// would. Write-side counters (Writes/Allocs/Evictions) stay pool-only:
	// they are frame-lifecycle events, not demand I/O of a file's reader.
	ioSeqReads     atomic.Int64
	ioRandReads    atomic.Int64
	ioHits         atomic.Int64
	ioPrefetched   atomic.Int64
	ioPrefetchHits atomic.Int64
}

// IOStats returns a snapshot of the read-side I/O counters attributed to
// this file. Safe for concurrent use; callers measure a window of
// activity by subtracting two snapshots.
func (f *File) IOStats() Stats {
	return Stats{
		SeqReads:     f.ioSeqReads.Load(),
		RandReads:    f.ioRandReads.Load(),
		Hits:         f.ioHits.Load(),
		Prefetched:   f.ioPrefetched.Load(),
		PrefetchHits: f.ioPrefetchHits.Load(),
	}
}

// ID returns the pool-local identifier of the file.
func (f *File) ID() FileID { return f.id }

// NumPages returns the number of allocated pages in the file.
func (f *File) NumPages() uint32 { return f.disk.NumPages() }

// Path returns the path of the backing file.
func (f *File) Path() string { return f.disk.Path() }

// Disk exposes the underlying DiskManager (used by tests for fault
// injection).
func (f *File) Disk() *DiskManager { return f.disk }

// noteRead updates f's sequential-read state for a demand (non-prefetch)
// physical read of page. It returns the classification of this read and
// the length of the sequential run the read extends, per the stream
// table (0 when readahead is disabled).
func (f *File) noteRead(page uint32) (seq bool, run int) {
	last := f.lastRead.Swap(int64(page))
	seq = last < 0 || int64(page) == last+1
	if f.pool.readahead <= 0 {
		return seq, 0
	}
	return seq, f.noteStream(page)
}

// advanceLastRead moves the sequential cursor forward to page if it is
// not already past it. Used by prefetch reads, which complete out of
// order: the cursor only ever advances, so the consumer's next demand
// miss after a prefetched run is still classified sequential.
func (f *File) advanceLastRead(page int64) {
	for {
		cur := f.lastRead.Load()
		if cur >= page || f.lastRead.CompareAndSwap(cur, page) {
			return
		}
	}
}

// resetReadState forgets sequential-read and prefetch-window history
// (called on cold-cache flushes).
func (f *File) resetReadState() {
	f.lastRead.Store(-1)
	for i := range f.streams {
		f.streams[i].Store(0)
	}
	f.prefetchNext.Store(0)
}

// Page is a pinned page in the buffer pool. Data must not be retained
// after Unpin.
type Page struct {
	key   PageKey
	frame *frame
	pool  *Pool
}

// Key returns the identity of the pinned page.
func (p *Page) Key() PageKey { return p.key }

// Data returns the page's PageSize-byte buffer.
func (p *Page) Data() []byte { return p.frame.buf }

// MarkDirty records that the page buffer was modified and must be written
// back before its frame is recycled. Lock-free: the dirty bit is atomic
// on the frame.
func (p *Page) MarkDirty() {
	p.frame.dirty.Store(true)
}

// Unpin releases the caller's pin. The page may be evicted afterwards.
// Lock-free: the pin count and second-chance bit are atomics on the
// frame, so steady-state page release never touches a shard lock.
func (p *Page) Unpin() {
	fr := p.frame
	fr.referenced.Store(true)
	for {
		pins := fr.pins.Load()
		if pins <= 0 || fr.pins.CompareAndSwap(pins, pins-1) {
			return
		}
	}
}

// frame is one page-sized buffer slot. The hot per-access state (pins,
// dirty, referenced, prefetched) is atomic so pinned readers never take
// a lock; key/buf/valid/disk are guarded by the owning shard's mutex.
// pins is only ever incremented while holding that mutex, which is what
// makes the victim scan's pins==0 check sound.
type frame struct {
	key        PageKey
	buf        []byte
	disk       *DiskManager // backing file of key, for write-back
	pins       atomic.Int32
	dirty      atomic.Bool
	referenced atomic.Bool // clock hand second-chance bit
	prefetched atomic.Bool // loaded by readahead, not yet demanded
	valid      bool
}

// writeBack flushes the frame's page to its backing file and clears the
// dirty bit, crediting the write to st.
func (fr *frame) writeBack(st *Stats) error {
	if fr.disk == nil {
		return fmt.Errorf("storage: write-back for unregistered %s", fr.key)
	}
	if err := fr.disk.WritePage(fr.key.Page, fr.buf); err != nil {
		return err
	}
	fr.dirty.Store(false)
	st.Writes++
	return nil
}

// poolShard is one lock domain of the pool: a slice of the frames, the
// directory entries for the page keys that hash here, its own clock
// hand, and its own Stats (aggregated on read so counting never shares a
// cache line across shards).
type poolShard struct {
	mu     sync.Mutex
	frames []*frame
	dir    map[PageKey]*frame
	hand   int
	stats  Stats
}

// Pool is a buffer pool of fixed-size frames shared by any number of page
// files, with clock (second-chance) replacement per shard. The frame
// directory is split into power-of-two shards by a hash of the PageKey;
// each shard has its own mutex, so fetches of different pages contend
// only when they hash together. With Shards=1 (the NewPool default) the
// pool behaves exactly like a single global-mutex pool.
//
// It tracks sequential versus random reads per file: a read of page n is
// sequential when the previous physical read of the same file was page
// n-1 (or this is the first read of the file after a reset).
type Pool struct {
	shards    []*poolShard
	shardMask uint32
	nframes   int
	readahead int

	fmu    sync.RWMutex
	files  map[FileID]*File
	byPath map[string]*File
	nextID FileID

	flushedAll atomic.Int64
}

// PoolOpts configures a Pool.
type PoolOpts struct {
	// Frames is the pool capacity in 8 KiB pages. Must be at least 1.
	Frames int
	// Shards is the number of lock shards the frame directory is split
	// into. Rounded down to a power of two and clamped to Frames; 0 or 1
	// means a single global shard (the seed behavior).
	Shards int
	// Readahead is the sequential prefetch window in pages. When > 0 and
	// the pool detects a sequential run on a file, it asynchronously
	// reads the next Readahead pages so scans overlap I/O with CPU.
	// 0 disables prefetching.
	Readahead int
}

// NewPool creates a single-shard pool (global mutex, no readahead) with
// the given number of frames. frames must be at least 1.
func NewPool(frames int) *Pool {
	return NewPoolWith(PoolOpts{Frames: frames})
}

// NewPoolWith creates a pool with explicit sharding and readahead
// options.
func NewPoolWith(opts PoolOpts) *Pool {
	if opts.Frames < 1 {
		panic("storage: pool needs at least one frame")
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > opts.Frames {
		shards = opts.Frames
	}
	for shards&(shards-1) != 0 {
		shards &= shards - 1 // round down to a power of two
	}
	readahead := opts.Readahead
	if readahead < 0 {
		readahead = 0
	}
	p := &Pool{
		shards:    make([]*poolShard, shards),
		shardMask: uint32(shards - 1),
		nframes:   opts.Frames,
		readahead: readahead,
		files:     make(map[FileID]*File),
		byPath:    make(map[string]*File),
	}
	for i := range p.shards {
		p.shards[i] = &poolShard{dir: make(map[PageKey]*frame)}
	}
	for i := 0; i < opts.Frames; i++ {
		s := p.shards[i%len(p.shards)]
		s.frames = append(s.frames, &frame{buf: make([]byte, PageSize)})
	}
	return p
}

// NumFrames returns the pool capacity in pages.
func (p *Pool) NumFrames() int { return p.nframes }

// NumShards returns the number of lock shards.
func (p *Pool) NumShards() int { return len(p.shards) }

// Readahead returns the configured sequential prefetch window in pages
// (0 = disabled).
func (p *Pool) Readahead() int { return p.readahead }

// shardOf maps a page key to its lock shard.
func (p *Pool) shardOf(key PageKey) *poolShard {
	if p.shardMask == 0 {
		return p.shards[0]
	}
	h := (uint64(key.File)<<32 | uint64(key.Page)) * 0x9E3779B97F4A7C15
	return p.shards[uint32(h>>32)&p.shardMask]
}

// lockAll acquires every shard lock in index order (the one sanctioned
// ordering for holding more than one).
func (p *Pool) lockAll() {
	for _, s := range p.shards {
		s.mu.Lock()
	}
}

func (p *Pool) unlockAll() {
	for _, s := range p.shards {
		s.mu.Unlock()
	}
}

// OpenFile opens a page file at path and registers it with the pool.
// Opening a path that is already registered returns the existing File, so
// a page is never cached under two identities.
func (p *Pool) OpenFile(path string) (*File, error) {
	p.fmu.RLock()
	f, ok := p.byPath[path]
	p.fmu.RUnlock()
	if ok {
		return f, nil
	}
	disk, err := OpenDisk(path)
	if err != nil {
		return nil, err
	}
	return p.register(disk), nil
}

func (p *Pool) register(disk *DiskManager) *File {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	if f, ok := p.byPath[disk.Path()]; ok {
		// Lost a race with another opener of the same path.
		disk.Close()
		return f
	}
	id := p.nextID
	p.nextID++
	f := &File{id: id, disk: disk, pool: p}
	f.lastRead.Store(-1)
	p.files[id] = f
	p.byPath[disk.Path()] = f
	return f
}

// Registered returns the File currently registered under path, if any.
// Epoch reclamation uses it to close retired files by path without
// reopening them.
func (p *Pool) Registered(path string) (*File, bool) {
	p.fmu.RLock()
	defer p.fmu.RUnlock()
	f, ok := p.byPath[path]
	return f, ok
}

// CloseFile flushes and drops every cached page of f, deregisters it and
// closes its backing file, so the path can be removed, renamed over, or
// reopened. Fails if any of f's pages is pinned. In-flight readahead on
// f is waited out first; the caller must not race CloseFile against its
// own fetches or appends on the same file.
func (p *Pool) CloseFile(f *File) error {
	return p.closeFile(f, true)
}

// DiscardFile is CloseFile without writeback: dirty pages are dropped on
// the floor. For files about to be unlinked — epoch reclamation of
// replaced heap and index files — flushing under the pool-wide lock
// would make every concurrent fetch wait out disk writes for data that
// is being deleted.
func (p *Pool) DiscardFile(f *File) error {
	return p.closeFile(f, false)
}

func (p *Pool) closeFile(f *File, flush bool) error {
	p.fmu.RLock()
	registered := p.files[f.id] == f
	p.fmu.RUnlock()
	if !registered {
		return fmt.Errorf("storage: file %s is not registered", f.Path())
	}
	f.closing.Store(true)
	f.prefetchWG.Wait()
	p.lockAll()
	for _, s := range p.shards {
		for _, fr := range s.frames {
			if fr.valid && fr.key.File == f.id && fr.pins.Load() > 0 {
				p.unlockAll()
				f.closing.Store(false)
				return fmt.Errorf("storage: CloseFile with pinned page %s", fr.key)
			}
		}
	}
	for _, s := range p.shards {
		for _, fr := range s.frames {
			if !fr.valid || fr.key.File != f.id {
				continue
			}
			if flush && fr.dirty.Load() {
				if err := fr.writeBack(&s.stats); err != nil {
					p.unlockAll()
					f.closing.Store(false)
					return err
				}
			}
			fr.dirty.Store(false)
			delete(s.dir, fr.key)
			fr.valid = false
			fr.referenced.Store(false)
			fr.prefetched.Store(false)
		}
	}
	p.unlockAll()
	p.fmu.Lock()
	delete(p.files, f.id)
	delete(p.byPath, f.disk.Path())
	p.fmu.Unlock()
	return f.disk.Close()
}

// CloseFiles flushes the pool and closes every registered file. The pool
// may be reused afterwards by reopening files.
func (p *Pool) CloseFiles() error {
	if err := p.FlushAll(); err != nil {
		return err
	}
	p.fmu.Lock()
	defer p.fmu.Unlock()
	var firstErr error
	for id, f := range p.files {
		if err := f.disk.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(p.files, id)
	}
	p.byPath = make(map[string]*File)
	return firstErr
}

// Stats returns a copy of the accumulated I/O statistics, aggregated
// over the shards.
func (p *Pool) Stats() Stats {
	var total Stats
	for _, s := range p.shards {
		s.mu.Lock()
		total.Add(s.stats)
		s.mu.Unlock()
	}
	total.FlushedAll += p.flushedAll.Load()
	return total
}

// ResetStats zeroes the I/O counters.
func (p *Pool) ResetStats() {
	for _, s := range p.shards {
		s.mu.Lock()
		s.stats = Stats{}
		s.mu.Unlock()
	}
	p.flushedAll.Store(0)
}

// Fetch pins the given page, reading it from disk if necessary. A miss
// performs the read while holding the page's shard lock, so concurrent
// fetches of the same page queue on the shard and find the directory
// entry when they wake — a page is never read twice concurrently.
func (p *Pool) Fetch(f *File, page uint32) (*Page, error) {
	pg := new(Page)
	if err := p.FetchInto(f, page, pg); err != nil {
		return nil, err
	}
	return pg, nil
}

// FetchInto pins a page like Fetch but fills a caller-owned Page value
// instead of allocating one, so tight fetch loops (the vectorized index
// probe's page-batched reads) stay allocation-free: the caller keeps
// one Page on its stack and reuses it pin after pin.
func (p *Pool) FetchInto(f *File, page uint32, out *Page) error {
	key := PageKey{File: f.id, Page: page}
	s := p.shardOf(key)
	s.mu.Lock()
	if fr, ok := s.dir[key]; ok {
		p.hitLocked(s, fr)
		wasPrefetched := fr.prefetched.Swap(false)
		if wasPrefetched {
			s.stats.PrefetchHits++
		}
		s.mu.Unlock()
		f.ioHits.Add(1)
		if wasPrefetched {
			f.ioPrefetchHits.Add(1)
			f.notePrefetchHit(page)
		}
		*out = Page{key: key, frame: fr, pool: p}
		return nil
	}
	fr, retried, err := p.reserveLocked(s)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if retried {
		if exist, ok := s.dir[key]; ok {
			// Someone loaded the page while we were stealing a frame
			// from another shard; keep the spare as shard capacity.
			fr.pins.Store(0)
			p.hitLocked(s, exist)
			wasPrefetched := exist.prefetched.Swap(false)
			if wasPrefetched {
				s.stats.PrefetchHits++
			}
			s.mu.Unlock()
			f.ioHits.Add(1)
			if wasPrefetched {
				f.ioPrefetchHits.Add(1)
				f.notePrefetchHit(page)
			}
			*out = Page{key: key, frame: exist, pool: p}
			return nil
		}
	}
	if err := f.disk.ReadPage(page, fr.buf); err != nil {
		fr.pins.Store(0)
		fr.valid = false
		s.mu.Unlock()
		return err
	}
	seq, run := f.noteRead(page)
	if seq {
		s.stats.SeqReads++
		f.ioSeqReads.Add(1)
	} else {
		s.stats.RandReads++
		f.ioRandReads.Add(1)
	}
	fr.key = key
	fr.disk = f.disk
	fr.valid = true
	fr.dirty.Store(false)
	fr.referenced.Store(true)
	fr.prefetched.Store(false)
	s.dir[key] = fr
	s.mu.Unlock()
	if run >= prefetchMinRun {
		p.maybePrefetch(f, int64(page)+1)
	}
	*out = Page{key: key, frame: fr, pool: p}
	return nil
}

// hitLocked pins fr as a pool hit under the shard lock.
func (p *Pool) hitLocked(s *poolShard, fr *frame) {
	fr.pins.Add(1)
	fr.referenced.Store(true)
	s.stats.Hits++
}

// NewPage allocates a fresh page in f and returns it pinned and dirty.
func (p *Pool) NewPage(f *File) (*Page, error) {
	page, err := f.disk.Allocate()
	if err != nil {
		return nil, err
	}
	key := PageKey{File: f.id, Page: page}
	s := p.shardOf(key)
	s.mu.Lock()
	s.stats.Allocs++
	fr, _, err := p.reserveLocked(s)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	clear(fr.buf)
	fr.key = key
	fr.disk = f.disk
	fr.valid = true
	fr.dirty.Store(true)
	fr.referenced.Store(true)
	fr.prefetched.Store(false)
	s.dir[key] = fr
	s.mu.Unlock()
	return &Page{key: key, frame: fr, pool: p}, nil
}

// FlushAll writes back every dirty frame and drops all cached pages,
// simulating the paper's cold-cache discipline ("we flushed both the Unix
// file system buffer and Paradise buffer pool before running each test").
// Sequential-read tracking is also reset. It is an error to call FlushAll
// while pages are pinned.
func (p *Pool) FlushAll() error {
	p.fmu.RLock()
	files := make([]*File, 0, len(p.files))
	for _, f := range p.files {
		files = append(files, f)
	}
	p.fmu.RUnlock()
	for _, f := range files {
		f.prefetchWG.Wait()
	}
	p.lockAll()
	defer p.unlockAll()
	for _, s := range p.shards {
		for _, fr := range s.frames {
			if fr.valid && fr.pins.Load() > 0 {
				return fmt.Errorf("storage: FlushAll with pinned page %s", fr.key)
			}
		}
	}
	for _, s := range p.shards {
		for _, fr := range s.frames {
			if !fr.valid {
				continue
			}
			if fr.dirty.Load() {
				if err := fr.writeBack(&s.stats); err != nil {
					return err
				}
			}
			delete(s.dir, fr.key)
			fr.valid = false
			fr.referenced.Store(false)
			fr.prefetched.Store(false)
		}
	}
	for _, f := range files {
		f.resetReadState()
	}
	p.flushedAll.Add(1)
	return nil
}

// reserveLocked acquires a reusable frame for shard s, which must be
// locked. The frame comes back reserved: out of the directory with pins
// already 1, so no concurrent victim scan can hand it out twice. When s
// has no evictable frame the shard lock is dropped and a frame is stolen
// from another shard (migrating it into s), so the pool reports
// ErrPoolFull only when every frame pool-wide is pinned — the same
// semantics as a single global pool. The second result reports whether
// the shard lock was released and reacquired; callers must then recheck
// the directory.
func (p *Pool) reserveLocked(s *poolShard) (*frame, bool, error) {
	fr, err := s.victimLocked()
	if err == nil {
		return fr, false, nil
	}
	if err != ErrPoolFull || len(p.shards) == 1 {
		return nil, false, err
	}
	s.mu.Unlock()
	var stolen *frame
	stealErr := error(ErrPoolFull)
	for _, t := range p.shards {
		if t == s {
			continue
		}
		t.mu.Lock()
		fr, err := t.victimLocked()
		if err == nil {
			for i, g := range t.frames {
				if g == fr {
					t.frames[i] = t.frames[len(t.frames)-1]
					t.frames = t.frames[:len(t.frames)-1]
					break
				}
			}
			t.mu.Unlock()
			stolen, stealErr = fr, nil
			break
		}
		t.mu.Unlock()
		if err != ErrPoolFull {
			stealErr = err
			break
		}
	}
	s.mu.Lock()
	if stolen != nil {
		s.frames = append(s.frames, stolen)
	}
	return stolen, true, stealErr
}

// victimLocked finds a reusable frame in s with the clock algorithm,
// writing back its previous contents if dirty. The caller must hold
// s.mu.
func (s *poolShard) victimLocked() (*frame, error) {
	n := len(s.frames)
	for sweep := 0; sweep < 2*n; sweep++ {
		if s.hand >= n {
			s.hand = 0
		}
		fr := s.frames[s.hand]
		s.hand++
		if fr.pins.Load() > 0 {
			continue
		}
		if fr.valid && fr.referenced.Load() {
			fr.referenced.Store(false)
			continue
		}
		if fr.valid {
			if fr.dirty.Load() {
				if err := fr.writeBack(&s.stats); err != nil {
					return nil, err
				}
			}
			delete(s.dir, fr.key)
			fr.valid = false
			s.stats.Evictions++
		}
		fr.pins.Store(1)
		fr.referenced.Store(false)
		fr.prefetched.Store(false)
		return fr, nil
	}
	return nil, ErrPoolFull
}

package storage

import (
	"fmt"
	"sync"
)

// File is a page file registered with a Pool. All page access goes through
// Pool.Fetch / Pool.NewPage so that caching and I/O accounting apply.
type File struct {
	id   FileID
	disk *DiskManager
	pool *Pool
}

// ID returns the pool-local identifier of the file.
func (f *File) ID() FileID { return f.id }

// NumPages returns the number of allocated pages in the file.
func (f *File) NumPages() uint32 { return f.disk.NumPages() }

// Path returns the path of the backing file.
func (f *File) Path() string { return f.disk.Path() }

// Disk exposes the underlying DiskManager (used by tests for fault
// injection).
func (f *File) Disk() *DiskManager { return f.disk }

// Page is a pinned page in the buffer pool. Data must not be retained
// after Unpin.
type Page struct {
	key   PageKey
	frame *frame
	pool  *Pool
}

// Key returns the identity of the pinned page.
func (p *Page) Key() PageKey { return p.key }

// Data returns the page's PageSize-byte buffer.
func (p *Page) Data() []byte { return p.frame.buf }

// MarkDirty records that the page buffer was modified and must be written
// back before its frame is recycled.
func (p *Page) MarkDirty() {
	p.pool.mu.Lock()
	p.frame.dirty = true
	p.pool.mu.Unlock()
}

// Unpin releases the caller's pin. The page may be evicted afterwards.
func (p *Page) Unpin() {
	p.pool.mu.Lock()
	defer p.pool.mu.Unlock()
	if p.frame.pins > 0 {
		p.frame.pins--
	}
	p.frame.referenced = true
}

type frame struct {
	key        PageKey
	buf        []byte
	pins       int
	dirty      bool
	referenced bool // clock hand second-chance bit
	valid      bool
}

// Pool is a buffer pool of fixed-size frames shared by any number of page
// files, with clock (second-chance) replacement. It tracks sequential
// versus random reads per file: a read of page n is sequential when the
// previous physical read of the same file was page n-1 (or this is the
// first read of the file after a reset).
type Pool struct {
	mu       sync.Mutex
	frames   []frame
	dir      map[PageKey]int // page -> frame index
	files    map[FileID]*DiskManager
	byPath   map[string]*File
	nextID   FileID
	hand     int
	lastRead map[FileID]int64 // last physically read page per file, -1 = none
	stats    Stats
}

// NewPool creates a pool with the given number of frames. frames must be
// at least 1.
func NewPool(frames int) *Pool {
	if frames < 1 {
		panic("storage: pool needs at least one frame")
	}
	p := &Pool{
		frames:   make([]frame, frames),
		dir:      make(map[PageKey]int),
		files:    make(map[FileID]*DiskManager),
		byPath:   make(map[string]*File),
		lastRead: make(map[FileID]int64),
	}
	for i := range p.frames {
		p.frames[i].buf = make([]byte, PageSize)
	}
	return p
}

// NumFrames returns the pool capacity in pages.
func (p *Pool) NumFrames() int { return len(p.frames) }

// OpenFile opens a page file at path and registers it with the pool.
// Opening a path that is already registered returns the existing File, so
// a page is never cached under two identities.
func (p *Pool) OpenFile(path string) (*File, error) {
	p.mu.Lock()
	if f, ok := p.byPath[path]; ok {
		p.mu.Unlock()
		return f, nil
	}
	p.mu.Unlock()
	disk, err := OpenDisk(path)
	if err != nil {
		return nil, err
	}
	return p.register(disk), nil
}

func (p *Pool) register(disk *DiskManager) *File {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.byPath[disk.Path()]; ok {
		// Lost a race with another opener of the same path.
		disk.Close()
		return f
	}
	id := p.nextID
	p.nextID++
	p.files[id] = disk
	p.lastRead[id] = -1
	f := &File{id: id, disk: disk, pool: p}
	p.byPath[disk.Path()] = f
	return f
}

// CloseFile flushes and drops every cached page of f, deregisters it and
// closes its backing file, so the path can be removed, renamed over, or
// reopened. Fails if any of f's pages is pinned.
func (p *Pool) CloseFile(f *File) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.files[f.id]; !ok {
		return fmt.Errorf("storage: file %s is not registered", f.Path())
	}
	for i := range p.frames {
		fr := &p.frames[i]
		if !fr.valid || fr.key.File != f.id {
			continue
		}
		if fr.pins > 0 {
			return fmt.Errorf("storage: CloseFile with pinned page %s", fr.key)
		}
		if fr.dirty {
			if err := p.writeBackLocked(fr); err != nil {
				return err
			}
		}
		delete(p.dir, fr.key)
		fr.valid = false
		fr.dirty = false
		fr.referenced = false
	}
	delete(p.files, f.id)
	delete(p.byPath, f.disk.Path())
	delete(p.lastRead, f.id)
	return f.disk.Close()
}

// CloseFiles flushes the pool and closes every registered file. The pool
// may be reused afterwards by reopening files.
func (p *Pool) CloseFiles() error {
	if err := p.FlushAll(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	for id, disk := range p.files {
		if err := disk.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(p.files, id)
		delete(p.lastRead, id)
	}
	p.byPath = make(map[string]*File)
	return firstErr
}

// Stats returns a copy of the accumulated I/O statistics.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the I/O counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Fetch pins the given page, reading it from disk if necessary.
func (p *Pool) Fetch(f *File, page uint32) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := PageKey{File: f.id, Page: page}
	if idx, ok := p.dir[key]; ok {
		fr := &p.frames[idx]
		fr.pins++
		fr.referenced = true
		p.stats.Hits++
		return &Page{key: key, frame: fr, pool: p}, nil
	}
	idx, err := p.victimLocked()
	if err != nil {
		return nil, err
	}
	fr := &p.frames[idx]
	if err := f.disk.ReadPage(page, fr.buf); err != nil {
		fr.valid = false
		return nil, err
	}
	p.accountReadLocked(f.id, page)
	fr.key = key
	fr.pins = 1
	fr.dirty = false
	fr.referenced = true
	fr.valid = true
	p.dir[key] = idx
	return &Page{key: key, frame: fr, pool: p}, nil
}

// NewPage allocates a fresh page in f and returns it pinned and dirty.
func (p *Pool) NewPage(f *File) (*Page, error) {
	page, err := f.disk.Allocate()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Allocs++
	idx, err := p.victimLocked()
	if err != nil {
		return nil, err
	}
	fr := &p.frames[idx]
	for i := range fr.buf {
		fr.buf[i] = 0
	}
	key := PageKey{File: f.id, Page: page}
	fr.key = key
	fr.pins = 1
	fr.dirty = true
	fr.referenced = true
	fr.valid = true
	p.dir[key] = idx
	return &Page{key: key, frame: fr, pool: p}, nil
}

// FlushAll writes back every dirty frame and drops all cached pages,
// simulating the paper's cold-cache discipline ("we flushed both the Unix
// file system buffer and Paradise buffer pool before running each test").
// Sequential-read tracking is also reset. It is an error to call FlushAll
// while pages are pinned.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		fr := &p.frames[i]
		if !fr.valid {
			continue
		}
		if fr.pins > 0 {
			return fmt.Errorf("storage: FlushAll with pinned page %s", fr.key)
		}
		if fr.dirty {
			if err := p.writeBackLocked(fr); err != nil {
				return err
			}
		}
		delete(p.dir, fr.key)
		fr.valid = false
		fr.dirty = false
		fr.referenced = false
	}
	for id := range p.lastRead {
		p.lastRead[id] = -1
	}
	p.stats.FlushedAll++
	return nil
}

// accountReadLocked classifies a physical read as sequential or random.
func (p *Pool) accountReadLocked(id FileID, page uint32) {
	last := p.lastRead[id]
	if last < 0 || int64(page) == last+1 {
		p.stats.SeqReads++
	} else {
		p.stats.RandReads++
	}
	p.lastRead[id] = int64(page)
}

// victimLocked finds a reusable frame with the clock algorithm, writing
// back its previous contents if dirty.
func (p *Pool) victimLocked() (int, error) {
	n := len(p.frames)
	for sweep := 0; sweep < 2*n; sweep++ {
		idx := p.hand
		p.hand = (p.hand + 1) % n
		fr := &p.frames[idx]
		if fr.pins > 0 {
			continue
		}
		if fr.valid && fr.referenced {
			fr.referenced = false
			continue
		}
		if fr.valid {
			if fr.dirty {
				if err := p.writeBackLocked(fr); err != nil {
					return 0, err
				}
			}
			delete(p.dir, fr.key)
			fr.valid = false
			p.stats.Evictions++
		}
		return idx, nil
	}
	return 0, ErrPoolFull
}

func (p *Pool) writeBackLocked(fr *frame) error {
	disk, ok := p.files[fr.key.File]
	if !ok {
		return fmt.Errorf("storage: write-back for unregistered %s", fr.key)
	}
	if err := disk.WritePage(fr.key.Page, fr.buf); err != nil {
		return err
	}
	fr.dirty = false
	p.stats.Writes++
	return nil
}

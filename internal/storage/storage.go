// Package storage implements the paged storage substrate the rest of the
// system is built on: fixed-size pages stored in ordinary files, a pinned
// buffer pool with clock eviction, and detailed I/O accounting that
// distinguishes sequential from random page reads.
//
// The accounting exists because the paper's experiments were run with cold
// caches on 1998 hardware where I/O dominated; on modern machines the only
// faithful way to preserve the paper's cost structure is to count the I/O
// and CPU work explicitly (see internal/cost, which converts these counts
// into simulated 1998-seconds).
package storage

import (
	"errors"
	"fmt"
)

// PageSize is the size in bytes of every page managed by this package.
const PageSize = 8192

// Common errors returned by the storage layer.
var (
	ErrPageOutOfRange = errors.New("storage: page number out of range")
	ErrPoolFull       = errors.New("storage: buffer pool full (all frames pinned)")
	ErrClosed         = errors.New("storage: file closed")
)

// FileID identifies a file registered with a Pool.
type FileID uint32

// PageKey names one page of one registered file.
type PageKey struct {
	File FileID
	Page uint32
}

func (k PageKey) String() string {
	return fmt.Sprintf("file%d:page%d", k.File, k.Page)
}

// Stats accumulates I/O counts observed by a Pool. A page read is counted
// as sequential when it is the page immediately following the previous
// read of the same file (or the first read of that file); every other
// read is random. Hits are fetches satisfied by the pool without touching
// the file.
type Stats struct {
	SeqReads     int64 // page reads that continued a sequential pass
	RandReads    int64 // page reads that required a seek
	Writes       int64 // page writes
	Hits         int64 // fetches satisfied from the pool
	Allocs       int64 // new pages allocated
	Evictions    int64 // frames recycled to make room
	FlushedAll   int64 // times the pool was emptied (cold-cache resets)
	Prefetched   int64 // pages read ahead of demand by the prefetcher
	PrefetchHits int64 // fetches whose page was already in flight or cached via readahead
}

// Reads returns the total number of physical page reads.
func (s Stats) Reads() int64 { return s.SeqReads + s.RandReads }

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.SeqReads += other.SeqReads
	s.RandReads += other.RandReads
	s.Writes += other.Writes
	s.Hits += other.Hits
	s.Allocs += other.Allocs
	s.Evictions += other.Evictions
	s.FlushedAll += other.FlushedAll
	s.Prefetched += other.Prefetched
	s.PrefetchHits += other.PrefetchHits
}

// Sub returns s minus other, useful for measuring a window of activity.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		SeqReads:     s.SeqReads - other.SeqReads,
		RandReads:    s.RandReads - other.RandReads,
		Writes:       s.Writes - other.Writes,
		Hits:         s.Hits - other.Hits,
		Allocs:       s.Allocs - other.Allocs,
		Evictions:    s.Evictions - other.Evictions,
		FlushedAll:   s.FlushedAll - other.FlushedAll,
		Prefetched:   s.Prefetched - other.Prefetched,
		PrefetchHits: s.PrefetchHits - other.PrefetchHits,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("seq=%d rand=%d writes=%d hits=%d allocs=%d evict=%d prefetch=%d/%d",
		s.SeqReads, s.RandReads, s.Writes, s.Hits, s.Allocs, s.Evictions, s.PrefetchHits, s.Prefetched)
}

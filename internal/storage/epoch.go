package storage

import (
	"os"
	"sort"
	"sync"
)

// Epoch-based reclamation.
//
// The snapshot-isolated catalog (internal/star) never deletes a file a
// reader might still hold: mutations build replacement heap and index
// files off to the side, publish a successor snapshot, and *retire* the
// replaced files here. A retired file stays registered with the buffer
// pool and present on disk until every reader pinned to an epoch that
// could still reference it has drained; only then is it flushed,
// deregistered, and unlinked.
//
// The protocol is a refcounted epoch table:
//
//   - Pin marks the *current* epoch referenced; the returned release
//     function drops the reference. Readers pin before loading the
//     published snapshot pointer, so a file retired by any later publish
//     is always protected by the pin.
//   - Publish advances the epoch under the table lock, installs the
//     successor snapshot (the install callback stores the new pointer),
//     and records the mutation's replaced files with the new epoch as
//     their retire epoch.
//   - A file retired at epoch E is reclaimable once no pin older than E
//     remains: every snapshot that could reference it has been
//     unpinned. Reclamation runs opportunistically after every unpin and
//     publish; ForceDrain (close) reclaims unconditionally.
//
// Reclamation is fault-tolerant: if flushing or unlinking a retired
// file fails (the pool's disk manager supports fault injection), the
// entry stays queued and the next reclamation attempt retries it.

// RetiredFile names one replaced file awaiting reclamation: the path it
// is registered under in pool.
type RetiredFile struct {
	Pool *Pool
	Path string
}

// retiredEntry is a RetiredFile tagged with the epoch whose publish
// retired it.
type retiredEntry struct {
	RetiredFile
	epoch uint64
}

// EpochTable tracks the published epoch, per-epoch reader pins, and
// retired files awaiting reclamation. The zero value is not usable; use
// NewEpochTable.
type EpochTable struct {
	mu        sync.Mutex
	current   uint64
	pins      map[uint64]int
	retired   []retiredEntry
	publishes int64
	reclaimed int64
}

// NewEpochTable returns an epoch table at epoch 0 with nothing pinned
// or retired.
func NewEpochTable() *EpochTable {
	return &EpochTable{pins: map[uint64]int{}}
}

// Pin references the current epoch. The returned release function is
// idempotent and must be called when the reader drains; release
// triggers a reclamation pass.
func (t *EpochTable) Pin() (uint64, func()) {
	t.mu.Lock()
	epoch := t.current
	t.pins[epoch]++
	t.mu.Unlock()
	var once sync.Once
	return epoch, func() {
		once.Do(func() {
			t.mu.Lock()
			t.pins[epoch]--
			if t.pins[epoch] <= 0 {
				delete(t.pins, epoch)
			}
			t.reclaimLocked(false)
			t.mu.Unlock()
		})
	}
}

// Publish advances to the next epoch, runs install with the new epoch
// number while the table lock is held (the callback atomically stores
// the successor snapshot pointer, so a Pin can never observe an epoch
// without its snapshot), queues the mutation's replaced files for
// reclamation, and attempts an immediate reclamation pass. It returns
// the new epoch.
func (t *EpochTable) Publish(retired []RetiredFile, install func(epoch uint64)) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.current++
	t.publishes++
	if install != nil {
		install(t.current)
	}
	for _, r := range retired {
		t.retired = append(t.retired, retiredEntry{RetiredFile: r, epoch: t.current})
	}
	t.reclaimLocked(false)
	return t.current
}

// Current returns the published epoch.
func (t *EpochTable) Current() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.current
}

// Reclaim runs one reclamation pass, unlinking every retired file whose
// retire epoch is no longer protected by a pin. It returns the first
// error encountered; failed entries stay queued for retry.
func (t *EpochTable) Reclaim() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reclaimLocked(false)
}

// ForceDrain reclaims every retired file regardless of pins. Used on
// close, when no reader can be live.
func (t *EpochTable) ForceDrain() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reclaimLocked(true)
}

// minProtected returns the oldest pinned epoch, or the current epoch
// when nothing is pinned. A retired entry with epoch <= minProtected
// predates every live reader's snapshot and is safe to unlink.
func (t *EpochTable) minProtected() uint64 {
	min := t.current
	for e := range t.pins {
		if e < min {
			min = e
		}
	}
	return min
}

func (t *EpochTable) reclaimLocked(force bool) error {
	if len(t.retired) == 0 {
		return nil
	}
	min := t.minProtected()
	var firstErr error
	kept := t.retired[:0]
	for _, r := range t.retired {
		if !force && r.epoch > min {
			kept = append(kept, r)
			continue
		}
		if err := r.unlink(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			kept = append(kept, r)
			continue
		}
		t.reclaimed++
	}
	// Zero the tail so dropped entries don't pin their pools.
	for i := len(kept); i < len(t.retired); i++ {
		t.retired[i] = retiredEntry{}
	}
	t.retired = kept
	return firstErr
}

// unlink deregisters the retired file from its pool — discarding its
// dirty pages rather than flushing them, since the file is being
// deleted — then removes it from disk. Either step failing leaves the
// entry queued.
func (r retiredEntry) unlink() error {
	if r.Pool != nil {
		if f, ok := r.Pool.Registered(r.Path); ok {
			if err := r.Pool.DiscardFile(f); err != nil {
				return err
			}
		}
	}
	if err := os.Remove(r.Path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// EpochStats snapshots the table's counters.
type EpochStats struct {
	Current      uint64   // published epoch
	Publishes    int64    // snapshots published
	PinnedEpochs []uint64 // distinct epochs currently pinned, ascending
	Pins         int      // total outstanding pins
	Retired      int      // files awaiting reclamation
	Reclaimed    int64    // files unlinked so far
}

// Stats reports the table's current state.
func (t *EpochTable) Stats() EpochStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := EpochStats{
		Current:   t.current,
		Publishes: t.publishes,
		Retired:   len(t.retired),
		Reclaimed: t.reclaimed,
	}
	for e, n := range t.pins {
		s.PinnedEpochs = append(s.PinnedEpochs, e)
		s.Pins += n
	}
	sort.Slice(s.PinnedEpochs, func(i, j int) bool { return s.PinnedEpochs[i] < s.PinnedEpochs[j] })
	return s
}

package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func newDisk(t *testing.T) *DiskManager {
	t.Helper()
	d, err := OpenDisk(filepath.Join(t.TempDir(), "t.pages"))
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestDiskAllocateNumbersAreDense(t *testing.T) {
	d := newDisk(t)
	for want := uint32(0); want < 5; want++ {
		got, err := d.Allocate()
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		if got != want {
			t.Fatalf("Allocate = %d, want %d", got, want)
		}
	}
	if d.NumPages() != 5 {
		t.Fatalf("NumPages = %d, want 5", d.NumPages())
	}
}

func TestDiskReadWriteRoundTrip(t *testing.T) {
	d := newDisk(t)
	page, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	out := make([]byte, PageSize)
	for i := range out {
		out[i] = byte(i * 7)
	}
	if err := d.WritePage(page, out); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	in := make([]byte, PageSize)
	if err := d.ReadPage(page, in); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("byte %d = %d, want %d", i, in[i], out[i])
		}
	}
}

func TestDiskNewPageIsZeroed(t *testing.T) {
	d := newDisk(t)
	page, _ := d.Allocate()
	buf := make([]byte, PageSize)
	buf[0] = 0xFF
	if err := d.ReadPage(page, buf); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestDiskOutOfRange(t *testing.T) {
	d := newDisk(t)
	buf := make([]byte, PageSize)
	if err := d.ReadPage(0, buf); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("ReadPage(0) err = %v, want ErrPageOutOfRange", err)
	}
	d.Allocate()
	if err := d.WritePage(9, buf); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("WritePage(9) err = %v, want ErrPageOutOfRange", err)
	}
}

func TestDiskWrongBufferSize(t *testing.T) {
	d := newDisk(t)
	d.Allocate()
	if err := d.ReadPage(0, make([]byte, 10)); err == nil {
		t.Fatal("ReadPage with short buffer succeeded")
	}
	if err := d.WritePage(0, make([]byte, PageSize+1)); err == nil {
		t.Fatal("WritePage with long buffer succeeded")
	}
}

func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.pages")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	page, _ := d.Allocate()
	buf := make([]byte, PageSize)
	copy(buf, "hello")
	if err := d.WritePage(page, buf); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.NumPages() != 1 {
		t.Fatalf("NumPages after reopen = %d, want 1", d2.NumPages())
	}
	got := make([]byte, PageSize)
	if err := d2.ReadPage(0, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if string(got[:5]) != "hello" {
		t.Fatalf("page content = %q, want hello", got[:5])
	}
}

func TestDiskRejectsCorruptSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.pages")
	if err := os.WriteFile(path, make([]byte, PageSize+13), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); err == nil {
		t.Fatal("OpenDisk accepted a file whose size is not page-aligned")
	}
}

func TestDiskClosedErrors(t *testing.T) {
	d := newDisk(t)
	d.Allocate()
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	buf := make([]byte, PageSize)
	if err := d.ReadPage(0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadPage after close = %v, want ErrClosed", err)
	}
	if _, err := d.Allocate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Allocate after close = %v, want ErrClosed", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close = %v, want ErrClosed", err)
	}
}

func TestDiskFaultInjection(t *testing.T) {
	d := newDisk(t)
	d.Allocate()
	boom := errors.New("boom")
	d.SetFault(func(op string, page uint32) error {
		if op == "read" && page == 0 {
			return boom
		}
		return nil
	})
	buf := make([]byte, PageSize)
	if err := d.ReadPage(0, buf); !errors.Is(err, boom) {
		t.Fatalf("ReadPage err = %v, want injected fault", err)
	}
	d.SetFault(nil)
	if err := d.ReadPage(0, buf); err != nil {
		t.Fatalf("ReadPage after clearing fault: %v", err)
	}
}

// Package query models the dimensional queries extracted from an MDX
// expression: a target group-by (one hierarchy level per dimension) plus
// a member-set selection predicate along each dimension.
//
// In the paper's terms (§2), each component query of an MDX expression is
// a star join followed by aggregation at some level in the dimension
// hierarchies, with a selection predicate along each join dimension. The
// predicates of related queries are typically disjoint, which is why
// common-selection multi-query techniques do not apply and base-table
// sharing is the lever instead.
package query

import (
	"fmt"
	"sort"
	"strings"

	"mdxopt/internal/star"
)

// Agg is the aggregate function a query applies to the measure.
type Agg int

// The supported aggregates. Sum is the paper's (and the default); the
// others are this repository's extension. All are decomposable, so they
// evaluate correctly over materialized group-bys that carry the
// multi-aggregate layout (sum, count, min, max per group) and over
// views holding duplicate group rows after a delta refresh.
const (
	Sum Agg = iota
	Count
	Min
	Max
	Avg
)

func (a Agg) String() string {
	switch a {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// ParseAgg resolves an aggregate name (case-insensitive).
func ParseAgg(name string) (Agg, bool) {
	switch strings.ToUpper(name) {
	case "SUM":
		return Sum, true
	case "COUNT":
		return Count, true
	case "MIN":
		return Min, true
	case "MAX":
		return Max, true
	case "AVG", "AVERAGE":
		return Avg, true
	default:
		return Sum, false
	}
}

// Predicate restricts one dimension to a set of members at the query's
// group-by level for that dimension. A nil Members slice means the
// dimension is unrestricted.
type Predicate struct {
	Members []int32
}

// IsRestricted reports whether the predicate restricts the dimension.
func (p Predicate) IsRestricted() bool { return p.Members != nil }

// Query is one dimensional query: aggregate the measure grouped by
// Levels, keeping only tuples whose rolled-up codes fall in each
// dimension's predicate.
type Query struct {
	Name   string // label, e.g. "Q1"
	Schema *star.Schema
	Levels []int       // group-by level per dimension
	Preds  []Predicate // one per dimension, at Levels[i]
	// Agg is the aggregate applied to the measure (default Sum).
	Agg Agg
	// Origin identifies the submission the query arrived with when it is
	// served through the admission scheduler's cross-request batches;
	// 0 means the query was not batched. The ID flows through plan
	// classes and the shared operators so per-submission work can be
	// attributed and per-submission contexts can detach pipelines.
	Origin int
}

// New validates and builds a query. preds may be nil for no restrictions.
func New(name string, schema *star.Schema, levels []int, preds []Predicate) (*Query, error) {
	if err := schema.ValidLevels(levels); err != nil {
		return nil, err
	}
	if preds == nil {
		preds = make([]Predicate, schema.NumDims())
	}
	if len(preds) != schema.NumDims() {
		return nil, fmt.Errorf("query: %d predicates for %d dimensions", len(preds), schema.NumDims())
	}
	for i, p := range preds {
		if p.Members == nil {
			continue
		}
		card := schema.Dims[i].Card(levels[i])
		seen := make(map[int32]bool, len(p.Members))
		for _, m := range p.Members {
			if m < 0 || m >= card {
				return nil, fmt.Errorf("query: dimension %s member %d out of range at level %s",
					schema.Dims[i].Name, m, schema.Dims[i].LevelName(levels[i]))
			}
			if seen[m] {
				return nil, fmt.Errorf("query: dimension %s duplicate member %d", schema.Dims[i].Name, m)
			}
			seen[m] = true
		}
		sorted := make([]int32, len(p.Members))
		copy(sorted, p.Members)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		preds[i] = Predicate{Members: sorted}
	}
	lv := make([]int, len(levels))
	copy(lv, levels)
	return &Query{Name: name, Schema: schema, Levels: lv, Preds: preds}, nil
}

// GroupByName renders the target group-by in the paper's notation.
func (q *Query) GroupByName() string { return q.Schema.GroupByName(q.Levels) }

// QualifiedName is Name prefixed with the submission origin when the
// query arrived through the admission scheduler ("s2.q1"); un-batched
// queries (Origin 0) keep their plain name. Plans and class stats use
// it so queries from different submissions stay distinguishable.
func (q *Query) QualifiedName() string {
	if q.Origin == 0 {
		return q.Name
	}
	return fmt.Sprintf("s%d.%s", q.Origin, q.Name)
}

// DimSelectivity returns the estimated selectivity of dimension i's
// predicate under the uniform assumption: |members| / card(level).
func (q *Query) DimSelectivity(i int) float64 {
	p := q.Preds[i]
	if !p.IsRestricted() {
		return 1
	}
	card := q.Schema.Dims[i].Card(q.Levels[i])
	if card == 0 {
		return 1
	}
	return float64(len(p.Members)) / float64(card)
}

// Selectivity returns the estimated combined selectivity over all
// dimensions.
func (q *Query) Selectivity() float64 {
	s := 1.0
	for i := range q.Preds {
		s *= q.DimSelectivity(i)
	}
	return s
}

// RestrictedDims returns the dimensions with a predicate.
func (q *Query) RestrictedDims() []int {
	var out []int
	for i, p := range q.Preds {
		if p.IsRestricted() {
			out = append(out, i)
		}
	}
	return out
}

// EstGroups estimates the number of result groups.
func (q *Query) EstGroups() float64 {
	g := 1.0
	for i := range q.Preds {
		if q.Levels[i] == q.Schema.Dims[i].AllLevel() {
			continue
		}
		if q.Preds[i].IsRestricted() {
			g *= float64(len(q.Preds[i].Members))
		} else {
			g *= float64(q.Schema.Dims[i].Card(q.Levels[i]))
		}
	}
	return g
}

// TotalLevel is the "GroupbyLevel" the paper sorts on: the sum of the
// group-by levels across dimensions. Smaller totals are finer group-bys
// that need larger source views.
func (q *Query) TotalLevel() int {
	t := 0
	for _, l := range q.Levels {
		t += l
	}
	return t
}

// AnswerableFrom reports whether a view at the given levels can compute
// this query, considering only the group-by lattice.
func (q *Query) AnswerableFrom(viewLevels []int) bool {
	return star.Derives(viewLevels, q.Levels)
}

// SupportedBy reports whether the stored view can compute this query:
// the view's levels must derive the query's, the view must be fresh with
// respect to the snapshot's base table, and for aggregates other than
// Sum the view must either be the base table or carry the
// multi-aggregate layout.
func (q *Query) SupportedBy(snap *star.Snapshot, v *star.View) bool {
	if !star.Derives(v.Levels, q.Levels) || !snap.Fresh(v) {
		return false
	}
	if q.Agg == Sum || v.IsBase() {
		return true
	}
	return v.MultiAgg()
}

// ViewPredicate maps dimension i's predicate down to a view column at
// level viewLevel (viewLevel <= Levels[i]): the set of view-level codes
// whose rollup is in the predicate. Returns nil when the dimension is
// unrestricted.
func (q *Query) ViewPredicate(i, viewLevel int) []int32 {
	p := q.Preds[i]
	if !p.IsRestricted() {
		return nil
	}
	return q.Schema.Dims[i].Descend(p.Members, q.Levels[i], viewLevel)
}

// MemberSet returns dimension i's predicate as a dense membership table
// over codes at the query level, or nil when unrestricted.
func (q *Query) MemberSet(i int) []bool {
	p := q.Preds[i]
	if !p.IsRestricted() {
		return nil
	}
	set := make([]bool, q.Schema.Dims[i].Card(q.Levels[i]))
	for _, m := range p.Members {
		set[m] = true
	}
	return set
}

// String renders the query with member names, e.g.
// "Q5(A'B”C”D; A'∈{AA2}, B”∈{B1})".
func (q *Query) String() string {
	var b strings.Builder
	if q.Name != "" {
		b.WriteString(q.Name)
	} else {
		b.WriteString("Q")
	}
	b.WriteString("(")
	if q.Agg != Sum {
		b.WriteString(q.Agg.String())
		b.WriteString(" ")
	}
	b.WriteString(q.GroupByName())
	for i, p := range q.Preds {
		if !p.IsRestricted() {
			continue
		}
		d := q.Schema.Dims[i]
		b.WriteString("; ")
		b.WriteString(d.LevelName(q.Levels[i]))
		b.WriteString("∈{")
		for j, m := range p.Members {
			if j > 0 {
				b.WriteString(",")
			}
			b.WriteString(d.MemberName(q.Levels[i], m))
		}
		b.WriteString("}")
	}
	b.WriteString(")")
	return b.String()
}

// Signature returns a canonical string identifying the query's semantics
// (levels and predicates), independent of its name. Used to share
// dimension lookup tables between identical sub-tasks.
func (q *Query) Signature() string {
	var b strings.Builder
	if q.Agg != Sum {
		fmt.Fprintf(&b, "agg%d:", int(q.Agg))
	}
	for i, l := range q.Levels {
		fmt.Fprintf(&b, "%d:", l)
		if q.Preds[i].IsRestricted() {
			for _, m := range q.Preds[i].Members {
				fmt.Fprintf(&b, "%d,", m)
			}
		} else {
			b.WriteString("*")
		}
		b.WriteString("|")
	}
	return b.String()
}

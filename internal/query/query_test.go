package query

import (
	"math"
	"strings"
	"testing"

	"mdxopt/internal/star"
)

func testSchema(t *testing.T) *star.Schema {
	t.Helper()
	a, err := star.UniformDimension("A", []int{24, 6, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := star.UniformDimension("B", []int{12, 6, 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := star.UniformDimension("C", []int{8, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := star.NewSchema([]*star.Dimension{a, b, c}, "m")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewQueryValidation(t *testing.T) {
	s := testSchema(t)
	if _, err := New("q", s, []int{0, 0}, nil); err == nil {
		t.Fatal("short level vector accepted")
	}
	if _, err := New("q", s, []int{0, 0, 0}, []Predicate{{}, {}}); err == nil {
		t.Fatal("short predicate vector accepted")
	}
	if _, err := New("q", s, []int{2, 0, 0}, []Predicate{{Members: []int32{5}}, {}, {}}); err == nil {
		t.Fatal("out-of-range member accepted (card 3 at top)")
	}
	if _, err := New("q", s, []int{2, 0, 0}, []Predicate{{Members: []int32{1, 1}}, {}, {}}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	q, err := New("q", s, []int{2, 1, 0}, []Predicate{{Members: []int32{2, 0}}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Members[0] != 0 || q.Preds[0].Members[1] != 2 {
		t.Fatalf("members not sorted: %v", q.Preds[0].Members)
	}
}

func TestSelectivity(t *testing.T) {
	s := testSchema(t)
	q, err := New("q", s, []int{2, 1, 0}, []Predicate{
		{Members: []int32{0}},    // 1 of 3 at A''
		{Members: []int32{1, 2}}, // 2 of 6 at B'
		{},                       // unrestricted C
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := q.DimSelectivity(0); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("A selectivity = %v", got)
	}
	if got := q.DimSelectivity(1); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("B selectivity = %v", got)
	}
	if got := q.DimSelectivity(2); got != 1 {
		t.Fatalf("C selectivity = %v", got)
	}
	if got := q.Selectivity(); math.Abs(got-1.0/9) > 1e-12 {
		t.Fatalf("combined selectivity = %v", got)
	}
	dims := q.RestrictedDims()
	if len(dims) != 2 || dims[0] != 0 || dims[1] != 1 {
		t.Fatalf("RestrictedDims = %v", dims)
	}
}

func TestEstGroups(t *testing.T) {
	s := testSchema(t)
	q, _ := New("q", s, []int{2, 1, 3}, []Predicate{
		{Members: []int32{0}},
		{},
		{},
	})
	// A'' restricted to 1 member, B' full card 6, C aggregated out.
	if got := q.EstGroups(); got != 6 {
		t.Fatalf("EstGroups = %v, want 6", got)
	}
}

func TestAnswerableFrom(t *testing.T) {
	s := testSchema(t)
	q, _ := New("q", s, []int{1, 2, 0}, nil)
	if !q.AnswerableFrom([]int{0, 0, 0}) {
		t.Fatal("base table cannot answer")
	}
	if !q.AnswerableFrom([]int{1, 2, 0}) {
		t.Fatal("exact view cannot answer")
	}
	if q.AnswerableFrom([]int{2, 0, 0}) {
		t.Fatal("coarser view answered finer query")
	}
}

func TestViewPredicateDescends(t *testing.T) {
	s := testSchema(t)
	q, _ := New("q", s, []int{2, 0, 0}, []Predicate{
		{Members: []int32{1}}, // top member A2
		{},
		{},
	})
	// On the base view the predicate becomes the 8 base descendants.
	codes := q.ViewPredicate(0, 0)
	if len(codes) != 8 {
		t.Fatalf("descended predicate has %d codes, want 8", len(codes))
	}
	for _, c := range codes {
		if s.Dims[0].RollUp(c, 0, 2) != 1 {
			t.Fatalf("descended code %d not under A2", c)
		}
	}
	if q.ViewPredicate(1, 0) != nil {
		t.Fatal("unrestricted dim produced a view predicate")
	}
	// At the query's own level the predicate is unchanged.
	same := q.ViewPredicate(0, 2)
	if len(same) != 1 || same[0] != 1 {
		t.Fatalf("same-level predicate = %v", same)
	}
}

func TestMemberSet(t *testing.T) {
	s := testSchema(t)
	q, _ := New("q", s, []int{1, 0, 0}, []Predicate{
		{Members: []int32{0, 3}},
		{},
		{},
	})
	set := q.MemberSet(0)
	if len(set) != 6 {
		t.Fatalf("member set length = %d, want card 6", len(set))
	}
	for c, in := range set {
		want := c == 0 || c == 3
		if in != want {
			t.Fatalf("member %d in set = %v", c, in)
		}
	}
	if q.MemberSet(1) != nil {
		t.Fatal("unrestricted member set not nil")
	}
}

func TestStringAndSignature(t *testing.T) {
	s := testSchema(t)
	q1, _ := New("Q5", s, []int{1, 2, 0}, []Predicate{
		{Members: []int32{1}},
		{},
		{},
	})
	str := q1.String()
	if !strings.Contains(str, "Q5") || !strings.Contains(str, "AA2") {
		t.Fatalf("String = %q", str)
	}
	q2, _ := New("other", s, []int{1, 2, 0}, []Predicate{
		{Members: []int32{1}},
		{},
		{},
	})
	if q1.Signature() != q2.Signature() {
		t.Fatal("same semantics, different signatures")
	}
	q3, _ := New("Q5", s, []int{1, 2, 0}, []Predicate{
		{Members: []int32{2}},
		{},
		{},
	})
	if q1.Signature() == q3.Signature() {
		t.Fatal("different predicates, same signature")
	}
}

func TestTotalLevel(t *testing.T) {
	s := testSchema(t)
	q, _ := New("q", s, []int{2, 1, 0}, nil)
	if q.TotalLevel() != 3 {
		t.Fatalf("TotalLevel = %d", q.TotalLevel())
	}
}

func TestAggHelpers(t *testing.T) {
	for name, want := range map[string]Agg{
		"SUM": Sum, "sum": Sum, "COUNT": Count, "min": Min, "Max": Max,
		"AVG": Avg, "average": Avg,
	} {
		got, ok := ParseAgg(name)
		if !ok || got != want {
			t.Fatalf("ParseAgg(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseAgg("median"); ok {
		t.Fatal("ParseAgg accepted median")
	}
	if Sum.String() != "SUM" || Avg.String() != "AVG" {
		t.Fatal("Agg.String wrong")
	}
	s := testSchema(t)
	q, _ := New("q", s, []int{2, 2, 2}, nil)
	q.Agg = Count
	if !strings.Contains(q.String(), "COUNT") {
		t.Fatalf("String = %q", q.String())
	}
	q2, _ := New("q", s, []int{2, 2, 2}, nil)
	if q.Signature() == q2.Signature() {
		t.Fatal("COUNT and SUM share a signature")
	}
}

// AnswerableFrom considers only the group-by lattice: predicates never
// change answerability (the view predicate is descended at execution
// time, and the result cache's subsumption check handles the rest).
func TestAnswerableFromEdgeCases(t *testing.T) {
	s := testSchema(t)

	// Predicate on a dimension where the view is *coarser* than the
	// query: the view cannot reconstruct the finer groups, predicate or
	// not.
	fine, err := New("q", s, []int{0, 1, 0}, []Predicate{{Members: []int32{3}}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if fine.AnswerableFrom([]int{1, 1, 0}) {
		t.Fatal("view coarser than the predicated dimension answered")
	}
	if !fine.AnswerableFrom([]int{0, 0, 0}) {
		t.Fatal("base table refused a predicated query")
	}

	// Predicate on a rolled-up ancestor level: the query groups at the
	// top of A and restricts there; any view at or below the query's
	// levels answers, and the predicate descends to the view level.
	coarse, err := New("q", s, []int{2, 0, 0}, []Predicate{{Members: []int32{1}}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	for _, vl := range [][]int{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}} {
		if !coarse.AnswerableFrom(vl) {
			t.Fatalf("view %v should answer ancestor-predicated query", vl)
		}
	}
	if coarse.AnswerableFrom([]int{3, 0, 0}) {
		t.Fatal("ALL-level view answered a query grouping at the top level")
	}

	// The all-coarsest view (every dimension aggregated out) answers
	// only the all-coarsest query.
	all := []int{s.Dims[0].AllLevel(), s.Dims[1].AllLevel(), s.Dims[2].AllLevel()}
	grand, err := New("q", s, all, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !grand.AnswerableFrom(all) {
		t.Fatal("all-coarsest view cannot answer the grand total")
	}
	if !grand.AnswerableFrom([]int{2, 1, 0}) {
		t.Fatal("finer view cannot answer the grand total")
	}
	anyGroup, err := New("q", s, []int{2, 2, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if anyGroup.AnswerableFrom(all) {
		t.Fatal("all-coarsest view answered a grouping query")
	}

	// Mismatched dimensionality never answers.
	if grand.AnswerableFrom([]int{0, 0}) {
		t.Fatal("short level vector answered")
	}
}

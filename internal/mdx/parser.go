package mdx

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
}

// Parse parses one MDX expression.
func Parse(src string) (*Expression, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	expr, err := p.expression()
	if err != nil {
		return nil, err
	}
	return expr, nil
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return t, errAt(t.pos, "expected %s, found %s", kind, p.describe(t))
	}
	return p.advance(), nil
}

func (p *parser) describe(t token) string {
	if t.kind == tokIdent || t.kind == tokBracketed {
		return "\"" + t.text + "\""
	}
	return t.kind.String()
}

func (p *parser) expression() (*Expression, error) {
	expr := &Expression{}
	// Standard-MDX compatibility: an optional leading SELECT keyword,
	// FROM as an alias for CONTEXT, WHERE for FILTER, and commas between
	// axis clauses.
	if isKeyword(p.peek(), "SELECT") {
		p.advance()
	}
	isContext := func(t token) bool { return isKeyword(t, "CONTEXT") || isKeyword(t, "FROM") }
	for !isContext(p.peek()) {
		if p.peek().kind == tokEOF {
			return nil, errAt(p.peek().pos, "expected CONTEXT clause")
		}
		axis, err := p.axis()
		if err != nil {
			return nil, err
		}
		for _, a := range expr.Axes {
			if a.Axis == axis.Axis {
				return nil, errAt(p.peek().pos, "axis %s used twice", axisNames[axis.Axis])
			}
		}
		expr.Axes = append(expr.Axes, axis)
		if p.peek().kind == tokComma {
			p.advance()
			if isContext(p.peek()) {
				return nil, errAt(p.peek().pos, "dangling ',' before the cube clause")
			}
		}
	}
	p.advance() // CONTEXT / FROM
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	expr.Context = name.text
	if isKeyword(p.peek(), "AGGREGATE") {
		p.advance()
		fn, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		expr.Aggregate = fn.text
	}
	if isKeyword(p.peek(), "FILTER") || isKeyword(p.peek(), "WHERE") {
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		for {
			m, err := p.member()
			if err != nil {
				return nil, err
			}
			expr.Filter = append(expr.Filter, m)
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	}
	if p.peek().kind == tokSemi {
		p.advance()
	}
	if p.peek().kind != tokEOF {
		return nil, errAt(p.peek().pos, "unexpected %s after expression", p.describe(p.peek()))
	}
	if len(expr.Axes) == 0 {
		return nil, errAt(0, "expression has no axes")
	}
	return expr, nil
}

func (p *parser) axis() (*Axis, error) {
	set, err := p.set()
	if err != nil {
		return nil, err
	}
	onTok := p.peek()
	if !isKeyword(onTok, "on") {
		return nil, errAt(onTok.pos, "expected 'on' after set, found %s", p.describe(onTok))
	}
	p.advance()
	axTok := p.advance()
	ax := axisIndex(axTok)
	if ax < 0 {
		return nil, errAt(axTok.pos, "unknown axis %s", p.describe(axTok))
	}
	return &Axis{Set: set, Axis: ax}, nil
}

// set parses {…}, (…) or NEST(set, set, …).
func (p *parser) set() (*Set, error) {
	t := p.peek()
	if isKeyword(t, "NEST") {
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		nest := &Set{Pos: t.pos}
		for {
			inner, err := p.set()
			if err != nil {
				return nil, err
			}
			nest.Nested = append(nest.Nested, inner)
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if len(nest.Nested) < 2 {
			return nil, errAt(t.pos, "NEST needs at least two sets")
		}
		return nest, nil
	}

	var close tokenKind
	switch t.kind {
	case tokLBrace:
		close = tokRBrace
	case tokLParen:
		close = tokRParen
	default:
		return nil, errAt(t.pos, "expected a set, found %s", p.describe(t))
	}
	p.advance()
	set := &Set{Pos: t.pos}
	for {
		m, err := p.member()
		if err != nil {
			return nil, err
		}
		set.Members = append(set.Members, m)
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(close); err != nil {
		return nil, err
	}
	return set, nil
}

func (p *parser) member() (*MemberExpr, error) {
	t := p.peek()
	if t.kind != tokIdent && t.kind != tokBracketed {
		return nil, errAt(t.pos, "expected a member, found %s", p.describe(t))
	}
	m := &MemberExpr{Pos: t.pos}
	for {
		seg := p.advance()
		m.Segments = append(m.Segments, seg.text)
		if p.peek().kind != tokDot {
			return m, nil
		}
		p.advance()
		nxt := p.peek()
		if nxt.kind != tokIdent && nxt.kind != tokBracketed {
			return nil, errAt(nxt.pos, "expected a name after '.', found %s", p.describe(nxt))
		}
	}
}

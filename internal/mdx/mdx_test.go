package mdx

import (
	"strings"
	"testing"

	"mdxopt/internal/datagen"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/workload"
)

func paperSchema(t *testing.T) *star.Schema {
	t.Helper()
	s, err := datagen.BuildSchema(datagen.PaperSpec(0.01))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll(`{A''.A1.CHILDREN} on COLUMNS CONTEXT ABCD FILTER (D'.DD1);`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokLBrace, tokIdent, tokDot, tokIdent, tokDot, tokIdent, tokRBrace,
		tokIdent, tokIdent, tokIdent, tokIdent, tokIdent, tokLParen, tokIdent, tokDot,
		tokIdent, tokRParen, tokSemi, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].kind, k)
		}
	}
	if toks[1].text != "A''" {
		t.Fatalf("prime identifier lexed as %q", toks[1].text)
	}
}

func TestLexerBracketedAndErrors(t *testing.T) {
	toks, err := lexAll(`[1991 season]`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokBracketed || toks[0].text != "1991 season" {
		t.Fatalf("bracketed = %+v", toks[0])
	}
	if _, err := lexAll(`[unterminated`); err == nil {
		t.Fatal("unterminated bracket accepted")
	}
	if _, err := lexAll(`[]`); err == nil {
		t.Fatal("empty bracket accepted")
	}
	if _, err := lexAll(`a # b`); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestParseFullExpression(t *testing.T) {
	expr, err := Parse(`{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS {C''.C1} on PAGES CONTEXT ABCD FILTER (D'.DD1)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(expr.Axes) != 3 {
		t.Fatalf("axes = %d", len(expr.Axes))
	}
	if expr.Context != "ABCD" {
		t.Fatalf("context = %q", expr.Context)
	}
	if len(expr.Filter) != 1 || expr.Filter[0].String() != "D'.DD1" {
		t.Fatalf("filter = %v", expr.Filter)
	}
	if !strings.Contains(expr.String(), "CONTEXT ABCD") {
		t.Fatalf("String = %q", expr.String())
	}
}

func TestParseNest(t *testing.T) {
	expr, err := Parse(`NEST({Venkatrao, Netz}, (USA_North.CHILDREN, USA_South, Japan)) on COLUMNS
		{Qtr1.CHILDREN, Qtr2} on ROWS CONTEXT SalesCube`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	set := expr.Axes[0].Set
	if set.Nested == nil || len(set.Nested) != 2 {
		t.Fatalf("NEST not parsed: %+v", set)
	}
	if len(set.Nested[0].Members) != 2 || len(set.Nested[1].Members) != 3 {
		t.Fatalf("NEST arms = %d, %d members", len(set.Nested[0].Members), len(set.Nested[1].Members))
	}
	if !strings.HasPrefix(set.String(), "NEST(") {
		t.Fatalf("Set.String = %q", set.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`CONTEXT ABCD`,                      // no axes
		`{A''.A1} on COLUMNS`,               // no CONTEXT
		`{A''.A1} on SIDEWAYS CONTEXT ABCD`, // bad axis
		`{A''.A1} on COLUMNS {B''.B1} on COLUMNS CONTEXT ABCD`, // duplicate axis
		`{A''.A1} on COLUMNS CONTEXT ABCD extra`,               // trailing junk
		`{A''.A1,} on COLUMNS CONTEXT ABCD`,                    // dangling comma
		`{} on COLUMNS CONTEXT ABCD`,                           // empty set
		`NEST({A''.A1}) on COLUMNS CONTEXT ABCD`,               // NEST arity
		`{A''.A1. } on COLUMNS CONTEXT ABCD`,                   // dot then nothing
		`{A''.A1} on COLUMNS CONTEXT ABCD FILTER D'.DD1`,       // filter without parens
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestResolveForms(t *testing.T) {
	s := paperSchema(t)
	cases := []struct {
		src     string
		dim     int
		level   int
		members int
	}{
		{"A''.A1", 0, 2, 1},
		{"A''.A1.CHILDREN", 0, 1, int(s.Dims[0].Card(1)) / 3},
		{"A''.A1.CHILDREN.AA2", 0, 1, 1},
		{"B''.B2.CHILDREN.CHILDREN", 1, 0, int(s.Dims[1].Card(0)) / 3},
		{"AA5", 0, 1, 1},    // bare unique member
		{"D'.DD1", 3, 1, 1}, // level-qualified
		{"A''.MEMBERS", 0, 2, 3},
		{"B'.MEMBERS", 1, 1, int(s.Dims[1].Card(1))},
	}
	for _, c := range cases {
		m, err := Parse(`{` + c.src + `} on COLUMNS CONTEXT X`)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.src, err)
		}
		r, err := resolve(s, m.Axes[0].Set.Members[0])
		if err != nil {
			t.Fatalf("%s: resolve: %v", c.src, err)
		}
		if r.dim != c.dim || r.level != c.level || len(r.members) != c.members {
			t.Fatalf("%s: got dim=%d level=%d members=%d, want %d/%d/%d",
				c.src, r.dim, r.level, len(r.members), c.dim, c.level, c.members)
		}
	}
}

func TestResolveAllAndMeasure(t *testing.T) {
	s := paperSchema(t)
	expr, err := Parse(`{A''.A1} on COLUMNS CONTEXT X FILTER (D.All, dollars)`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := resolve(s, expr.Filter[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.dim != 3 || r.level != s.Dims[3].AllLevel() || r.members != nil {
		t.Fatalf("D.All resolved to %+v", r)
	}
	r, err = resolve(s, expr.Filter[1])
	if err != nil {
		t.Fatal(err)
	}
	if !r.measure {
		t.Fatalf("measure resolved to %+v", r)
	}
}

func TestResolveErrors(t *testing.T) {
	s := paperSchema(t)
	cases := []string{
		"Nothing",                           // unknown name
		"A''.Nope",                          // unknown member at level
		"A''.A1.CHILDREN.AA9",               // child not under A1 (AA9 is under A3)
		"AAA5.CHILDREN",                     // base level has no children
		"A",                                 // dimension without member
		"A''.A1.CHILDREN.CHILDREN.CHILDREN", // below base
	}
	for _, src := range cases {
		expr, err := Parse(`{` + src + `} on COLUMNS CONTEXT X`)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := resolve(s, expr.Axes[0].Set.Members[0]); err == nil {
			t.Errorf("resolve accepted %q", src)
		}
	}
}

func TestTranslatePaperQueriesMatchWorkload(t *testing.T) {
	// The MDX strings in the workload package must translate into
	// exactly the programmatically built Q1..Q9.
	s := paperSchema(t)
	want, err := workload.PaperQueries(s)
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range workload.MDX() {
		qs, err := ParseAndTranslate(s, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(qs) != 1 {
			t.Fatalf("%s translated to %d queries, want 1", name, len(qs))
		}
		if qs[0].Signature() != want[name].Signature() {
			t.Fatalf("%s: MDX translation differs from workload definition:\nmdx:  %s\nwant: %s",
				name, qs[0], want[name])
		}
	}
}

// salesSchema models the [MS] intro example: salesmen, a geography
// hierarchy, a time hierarchy, products, and a Sales measure.
func salesSchema(t *testing.T) *star.Schema {
	t.Helper()
	salesman, err := star.NewDimension("Salesman", []star.LevelSpec{
		{Name: "Rep", Members: []string{"Venkatrao", "Netz", "Alexander"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	geo, err := star.NewDimension("Store", []star.LevelSpec{
		{Name: "State", Members: []string{"WA", "OR", "CA", "TX", "Tokyo"},
			Parent: []int32{0, 0, 1, 1, 2}},
		{Name: "Region", Members: []string{"USA_North", "USA_South", "Japan_Region"},
			Parent: []int32{0, 0, 1}},
		{Name: "Country", Members: []string{"USA", "Japan"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	months := make([]string, 12)
	parents := make([]int32, 12)
	for i := range months {
		months[i] = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun",
			"Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}[i]
		parents[i] = int32(i / 3)
	}
	time, err := star.NewDimension("Time", []star.LevelSpec{
		{Name: "Month", Members: months, Parent: parents},
		{Name: "Quarter", Members: []string{"Qtr1", "Qtr2", "Qtr3", "Qtr4"},
			Parent: []int32{0, 0, 0, 0}},
		{Name: "Year", Members: []string{"1991"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	products, err := star.UniformDimension("Products", []int{6, 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := star.NewSchema([]*star.Dimension{salesman, geo, time, products}, "Sales")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTranslateIntroExampleYieldsSixQueries(t *testing.T) {
	s := salesSchema(t)
	src := `NEST({Venkatrao, Netz}, (USA_North.CHILDREN, USA_South, Japan)) on COLUMNS
		{Qtr1.CHILDREN, Qtr2, Qtr3, Qtr4.CHILDREN} on ROWS
		CONTEXT SalesCube
		FILTER (Sales, [1991], Products.All)`
	qs, err := ParseAndTranslate(s, src)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	// Store at 3 levels x Time at 2 levels = 6 queries, as the paper
	// derives in §2.
	if len(qs) != 6 {
		t.Fatalf("got %d queries, want 6", len(qs))
	}
	storeLevels := map[int]int{}
	timeLevels := map[int]int{}
	for _, q := range qs {
		// Every query groups salesmen at the Rep level with the two
		// named reps.
		if q.Levels[0] != 0 || len(q.Preds[0].Members) != 2 {
			t.Fatalf("%s: salesman grouping wrong", q)
		}
		// Products aggregated out.
		if q.Levels[3] != s.Dims[3].AllLevel() {
			t.Fatalf("%s: products not aggregated out", q)
		}
		storeLevels[q.Levels[1]]++
		timeLevels[q.Levels[2]]++
	}
	if len(storeLevels) != 3 {
		t.Fatalf("store levels = %v, want 3 distinct", storeLevels)
	}
	if len(timeLevels) != 2 {
		t.Fatalf("time levels = %v, want 2 distinct", timeLevels)
	}
	// The month-level time variant covers Qtr1's and Qtr4's months.
	found := false
	for _, q := range qs {
		if q.Levels[2] == 0 {
			if len(q.Preds[2].Members) != 6 {
				t.Fatalf("month predicate = %v, want 6 months", q.Preds[2].Members)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no month-level variant")
	}
}

func TestTranslateFilterIntersectsAxisDim(t *testing.T) {
	s := salesSchema(t)
	// Filter to Qtr1 while grouping months: only Qtr1's months survive.
	qs, err := ParseAndTranslate(s, `{Venkatrao} on COLUMNS
		{Qtr1.CHILDREN, Qtr4.CHILDREN} on ROWS
		CONTEXT SalesCube FILTER (Quarter.Qtr1)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 {
		t.Fatalf("queries = %d", len(qs))
	}
	if len(qs[0].Preds[2].Members) != 3 {
		t.Fatalf("months after filter = %v, want Qtr1's 3", qs[0].Preds[2].Members)
	}
}

func TestTranslateErrors(t *testing.T) {
	s := paperSchema(t)
	cases := []string{
		// measure on an axis
		`{dollars} on COLUMNS CONTEXT ABCD`,
		// ALL on an axis
		`{A.All} on COLUMNS CONTEXT ABCD`,
		// same dimension on two axes
		`{A''.A1} on COLUMNS {A''.A2} on ROWS CONTEXT ABCD`,
		// filter at two levels of one dimension
		`{A''.A1} on COLUMNS CONTEXT ABCD FILTER (D'.DD1, D.DDD1)`,
		// filter finer than the grouping level
		`{A''.A1} on COLUMNS CONTEXT ABCD FILTER (AA2)`,
	}
	for _, src := range cases {
		if _, err := ParseAndTranslate(s, src); err == nil {
			t.Errorf("translate accepted %q", src)
		}
	}
}

func TestTranslateMergesSameLevelSets(t *testing.T) {
	s := paperSchema(t)
	qs, err := ParseAndTranslate(s, `{A''.A1, A''.A2, A''.A1} on COLUMNS CONTEXT ABCD`)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 {
		t.Fatalf("queries = %d", len(qs))
	}
	if got := qs[0].Preds[0].Members; len(got) != 2 {
		t.Fatalf("deduped members = %v", got)
	}
}

func TestAggregateClause(t *testing.T) {
	s := paperSchema(t)
	for name, want := range map[string]query.Agg{
		"COUNT": query.Count, "count": query.Count, "MIN": query.Min,
		"Max": query.Max, "AVG": query.Avg, "SUM": query.Sum,
	} {
		qs, err := ParseAndTranslate(s, `{A''.A1} on COLUMNS CONTEXT ABCD AGGREGATE `+name+` FILTER (D'.DD1)`)
		if err != nil {
			t.Fatalf("AGGREGATE %s: %v", name, err)
		}
		if qs[0].Agg != want {
			t.Fatalf("AGGREGATE %s parsed as %v", name, qs[0].Agg)
		}
	}
	// Default is SUM.
	qs, err := ParseAndTranslate(s, `{A''.A1} on COLUMNS CONTEXT ABCD`)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0].Agg != query.Sum {
		t.Fatalf("default agg = %v", qs[0].Agg)
	}
	// Unknown aggregates are rejected.
	if _, err := ParseAndTranslate(s, `{A''.A1} on COLUMNS CONTEXT ABCD AGGREGATE MEDIAN`); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
	// Round-trips through Expression.String.
	expr, err := Parse(`{A''.A1} on COLUMNS CONTEXT ABCD AGGREGATE AVG`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expr.String(), "AGGREGATE AVG") {
		t.Fatalf("String = %q", expr.String())
	}
}

func TestSelectFromWhereAliases(t *testing.T) {
	s := paperSchema(t)
	canonical, err := ParseAndTranslate(s,
		`{A''.A1} on COLUMNS {B''.B2} on ROWS CONTEXT ABCD FILTER (D'.DD1)`)
	if err != nil {
		t.Fatal(err)
	}
	aliases := []string{
		`SELECT {A''.A1} on COLUMNS, {B''.B2} on ROWS FROM ABCD WHERE (D'.DD1)`,
		`SELECT {A''.A1} on COLUMNS {B''.B2} on ROWS FROM ABCD FILTER (D'.DD1)`,
		`{A''.A1} on COLUMNS, {B''.B2} on ROWS CONTEXT ABCD WHERE (D'.DD1)`,
	}
	for _, src := range aliases {
		qs, err := ParseAndTranslate(s, src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if len(qs) != 1 || qs[0].Signature() != canonical[0].Signature() {
			t.Fatalf("%q translated differently", src)
		}
	}
	// Dangling comma before FROM is rejected.
	if _, err := Parse(`SELECT {A''.A1} on COLUMNS, FROM ABCD`); err == nil {
		t.Fatal("dangling comma accepted")
	}
}

package mdx

import (
	"strings"
	"testing"

	"mdxopt/internal/datagen"
)

// FuzzParseAndTranslate checks the front end never panics and either
// yields valid queries or a structured error, on arbitrary inputs.
func FuzzParseAndTranslate(f *testing.F) {
	seeds := []string{
		`{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS CONTEXT ABCD FILTER (D'.DD1)`,
		`NEST({AA1, AA2}, (A''.A1)) on COLUMNS CONTEXT X`,
		`{A'.MEMBERS} on COLUMNS CONTEXT ABCD;`,
		`{[bracketed name]} on PAGES CONTEXT c FILTER (dollars)`,
		`{A''.A1} on`,
		`}}}{{{`,
		`NEST(NEST({AA1},{BB1}),{CC1}) on ROWS CONTEXT q`,
		`{A''.A1} on COLUMNS {A''.A2} on ROWS CONTEXT dup`,
		"{A''.A1}\ton\nCOLUMNS CONTEXT ws",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema, err := datagen.BuildSchema(datagen.PaperSpec(0.01))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		queries, err := ParseAndTranslate(schema, src)
		if err != nil {
			return // structured rejection is fine
		}
		if len(queries) == 0 {
			t.Fatalf("accepted %q but produced no queries", src)
		}
		for _, q := range queries {
			// Accepted queries must be internally valid: every predicate
			// member within its level's cardinality.
			for i, p := range q.Preds {
				card := q.Schema.Dims[i].Card(q.Levels[i])
				for _, m := range p.Members {
					if m < 0 || m >= card {
						t.Fatalf("accepted %q with out-of-range member %d", src, m)
					}
				}
			}
		}
	})
}

// TestFuzzSeedsDirectly keeps the seed corpus exercised in normal `go
// test` runs (the fuzz engine only replays it with -fuzz).
func TestFuzzSeedsDirectly(t *testing.T) {
	schema, err := datagen.BuildSchema(datagen.PaperSpec(0.01))
	if err != nil {
		t.Fatal(err)
	}
	inputs := []string{
		`{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS CONTEXT ABCD FILTER (D'.DD1)`,
		`}}}{{{`,
		strings.Repeat("{", 10000),
		strings.Repeat("A.", 5000) + "B",
		`{A''.A1} on COLUMNS CONTEXT ABCD FILTER (` + strings.Repeat("D'.DD1,", 200) + `D'.DD1)`,
	}
	for _, src := range inputs {
		_, err := ParseAndTranslate(schema, src) // must not panic
		_ = err
	}
}

package mdx

import (
	"fmt"
	"strings"
)

// MemberExpr is a dotted member path such as A”.A1.CHILDREN.AA2 or
// [1991]. Segments are stored verbatim; CHILDREN is recognized during
// resolution.
type MemberExpr struct {
	Segments []string
	Pos      int
}

func (m *MemberExpr) String() string { return strings.Join(m.Segments, ".") }

// Set is a brace or paren set of items; an item is a member expression
// or a nested set.
type Set struct {
	Members []*MemberExpr
	Nested  []*Set // non-nil only for NEST(...) sets
	Pos     int
}

func (s *Set) String() string {
	if s.Nested != nil {
		parts := make([]string, len(s.Nested))
		for i, n := range s.Nested {
			parts[i] = n.String()
		}
		return "NEST(" + strings.Join(parts, ", ") + ")"
	}
	parts := make([]string, len(s.Members))
	for i, m := range s.Members {
		parts[i] = m.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Axis is one "set on AXIS" clause.
type Axis struct {
	Set  *Set
	Axis int // index into axisNames
}

func (a *Axis) String() string {
	return fmt.Sprintf("%s on %s", a.Set, axisNames[a.Axis])
}

// Expression is a parsed MDX expression.
type Expression struct {
	Axes    []*Axis
	Context string        // cube name following CONTEXT
	Filter  []*MemberExpr // FILTER arguments, possibly empty
	// Aggregate names the aggregate function (this implementation's
	// AGGREGATE clause extension); empty means SUM.
	Aggregate string
}

func (e *Expression) String() string {
	var b strings.Builder
	for i, a := range e.Axes {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(a.String())
	}
	fmt.Fprintf(&b, " CONTEXT %s", e.Context)
	if e.Aggregate != "" {
		fmt.Fprintf(&b, " AGGREGATE %s", e.Aggregate)
	}
	if len(e.Filter) > 0 {
		parts := make([]string, len(e.Filter))
		for i, f := range e.Filter {
			parts[i] = f.String()
		}
		fmt.Fprintf(&b, " FILTER (%s)", strings.Join(parts, ", "))
	}
	return b.String()
}

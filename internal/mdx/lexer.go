package mdx

import (
	"strings"
	"unicode"
)

// lexer turns MDX text into tokens. Identifiers may contain letters,
// digits, underscores and primes ('), so the paper's level names A', A”
// lex as single identifiers.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	switch c := l.src[l.pos]; c {
	case '{':
		l.pos++
		return token{kind: tokLBrace, pos: start}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, pos: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case '.':
		l.pos++
		return token{kind: tokDot, pos: start}, nil
	case ';':
		l.pos++
		return token{kind: tokSemi, pos: start}, nil
	case '[':
		end := strings.IndexByte(l.src[l.pos:], ']')
		if end < 0 {
			return token{}, errAt(start, "unterminated '['")
		}
		text := l.src[l.pos+1 : l.pos+end]
		l.pos += end + 1
		if strings.TrimSpace(text) == "" {
			return token{}, errAt(start, "empty bracketed name")
		}
		return token{kind: tokBracketed, text: strings.TrimSpace(text), pos: start}, nil
	}
	r := rune(l.src[l.pos])
	if !isIdentStart(r) {
		return token{}, errAt(start, "unexpected character %q", l.src[l.pos])
	}
	end := l.pos
	for end < len(l.src) && isIdentRune(rune(l.src[end])) {
		end++
	}
	text := l.src[l.pos:end]
	l.pos = end
	return token{kind: tokIdent, text: text, pos: start}, nil
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

// keyword matching is case-insensitive per MDX convention.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// axisNames are the MDX axis keywords in order.
var axisNames = []string{"COLUMNS", "ROWS", "PAGES", "SECTIONS", "CHAPTERS"}

func axisIndex(t token) int {
	if t.kind != tokIdent {
		return -1
	}
	for i, n := range axisNames {
		if strings.EqualFold(t.text, n) {
			return i
		}
	}
	return -1
}

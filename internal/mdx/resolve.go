package mdx

import (
	"strings"

	"mdxopt/internal/star"
)

// ref is a resolved member expression: a set of members of one dimension
// at one level, or the measure, or a whole dimension at the ALL level.
type ref struct {
	dim     int
	level   int
	members []int32 // nil for ALL-level refs and the measure
	measure bool
}

// resolve maps a member expression onto the schema.
func resolve(schema *star.Schema, m *MemberExpr) (ref, error) {
	segs := m.Segments
	if len(segs) == 1 && segs[0] == schema.Measure {
		return ref{measure: true}, nil
	}

	cur, rest, err := resolveHead(schema, m)
	if err != nil {
		return ref{}, err
	}
	d := schema.Dims[cur.dim]
	for _, seg := range rest {
		switch {
		case strings.EqualFold(seg, "CHILDREN"):
			if cur.level == 0 {
				return ref{}, errAt(m.Pos, "%s: base-level members have no children", m)
			}
			if cur.members == nil {
				return ref{}, errAt(m.Pos, "%s: CHILDREN needs a member set", m)
			}
			var kids []int32
			for _, c := range cur.members {
				kids = append(kids, d.Children(cur.level, c)...)
			}
			cur.level--
			cur.members = kids
		default:
			// Select one named member from the current set (the
			// X.CHILDREN.Name form).
			code, ok := d.MemberCode(cur.level, seg)
			if !ok {
				return ref{}, errAt(m.Pos, "%s: no member %q at level %s of %s",
					m, seg, d.LevelName(cur.level), d.Name)
			}
			found := false
			for _, c := range cur.members {
				if c == code {
					found = true
					break
				}
			}
			if !found {
				return ref{}, errAt(m.Pos, "%s: member %q is not in the preceding set", m, seg)
			}
			cur.members = []int32{code}
		}
	}
	return cur, nil
}

// resolveHead resolves the leading segments into an initial member set
// and returns the remaining segments.
func resolveHead(schema *star.Schema, m *MemberExpr) (ref, []string, error) {
	segs := m.Segments
	head := segs[0]

	// Dim.All first: level-0 names often equal the dimension name, so
	// this form must win over level qualification.
	if di := schema.DimIndex(head); di >= 0 && len(segs) >= 2 && strings.EqualFold(segs[1], "ALL") {
		return ref{dim: di, level: schema.Dims[di].AllLevel()}, segs[2:], nil
	}

	// Level-qualified: Level.Member, or Level.MEMBERS for every member
	// of the level (level names like A'' are unique).
	for di, d := range schema.Dims {
		if l := d.LevelIndex(head); l >= 0 && l < d.NumLevels() {
			if len(segs) < 2 {
				return ref{}, nil, errAt(m.Pos, "%s: level %s needs a member name or MEMBERS", m, head)
			}
			if strings.EqualFold(segs[1], "MEMBERS") {
				all := make([]int32, d.Card(l))
				for i := range all {
					all[i] = int32(i)
				}
				return ref{dim: di, level: l, members: all}, segs[2:], nil
			}
			code, ok := d.MemberCode(l, segs[1])
			if !ok {
				return ref{}, nil, errAt(m.Pos, "%s: no member %q at level %s of %s",
					m, segs[1], head, d.Name)
			}
			return ref{dim: di, level: l, members: []int32{code}}, segs[2:], nil
		}
	}

	// Dimension-qualified: Dim.All or Dim.Member.
	if di := schema.DimIndex(head); di >= 0 {
		d := schema.Dims[di]
		if len(segs) < 2 {
			return ref{}, nil, errAt(m.Pos, "%s: dimension %s needs a member or .All", m, head)
		}
		if strings.EqualFold(segs[1], "ALL") {
			return ref{dim: di, level: d.AllLevel()}, segs[2:], nil
		}
		level, code, err := d.FindMember(segs[1])
		if err != nil {
			return ref{}, nil, errAt(m.Pos, "%s: %v", m, err)
		}
		return ref{dim: di, level: level, members: []int32{code}}, segs[2:], nil
	}

	// Bare member name, searched across all dimensions.
	var found []ref
	for di, d := range schema.Dims {
		if level, code, err := d.FindMember(head); err == nil {
			found = append(found, ref{dim: di, level: level, members: []int32{code}})
		}
	}
	switch len(found) {
	case 0:
		return ref{}, nil, errAt(m.Pos, "%s: unknown name %q", m, head)
	case 1:
		return found[0], segs[1:], nil
	default:
		return ref{}, nil, errAt(m.Pos, "%s: name %q is ambiguous across dimensions", m, head)
	}
}

package mdx

import (
	"fmt"
	"sort"

	"mdxopt/internal/query"
	"mdxopt/internal/star"
)

// levelGroup is one (level, member set) combination of a dimension on an
// axis.
type levelGroup struct {
	level   int
	members []int32
}

// dimGroups collects a dimension's level groups on one axis in
// appearance order.
type dimGroups struct {
	dim    int
	groups []*levelGroup
}

// Translate converts a parsed MDX expression into the set of group-by
// queries it denotes (§2 of the paper): dimensions appearing on an axis
// at k distinct hierarchy levels contribute k query variants, and the
// expression's queries are the cross product of the variants across
// dimensions and axes. FILTER members restrict their dimension and place
// it in each query's group-by at the filter's level, as the paper does
// with FILTER (D.DD1).
//
// Queries are named q1, q2, … in deterministic variant order.
func Translate(schema *star.Schema, expr *Expression) ([]*query.Query, error) {
	agg := query.Sum
	if expr.Aggregate != "" {
		var ok bool
		agg, ok = query.ParseAgg(expr.Aggregate)
		if !ok {
			return nil, fmt.Errorf("mdx: unknown aggregate %q (want SUM, COUNT, MIN, MAX or AVG)", expr.Aggregate)
		}
	}

	// Per-axis grouping.
	var axes [][]*dimGroups
	dimAxis := make(map[int]int) // dim -> axis index it appears on
	for ai, axis := range expr.Axes {
		members := flatten(axis.Set)
		byDim := map[int]*dimGroups{}
		var order []*dimGroups
		for _, m := range members {
			r, err := resolve(schema, m)
			if err != nil {
				return nil, err
			}
			if r.measure {
				return nil, errAt(m.Pos, "%s: the measure cannot appear on an axis", m)
			}
			if r.members == nil {
				return nil, errAt(m.Pos, "%s: ALL-level members cannot appear on an axis", m)
			}
			if prev, ok := dimAxis[r.dim]; ok && prev != ai {
				return nil, errAt(m.Pos, "dimension %s appears on two axes", schema.Dims[r.dim].Name)
			}
			dimAxis[r.dim] = ai
			dg, ok := byDim[r.dim]
			if !ok {
				dg = &dimGroups{dim: r.dim}
				byDim[r.dim] = dg
				order = append(order, dg)
			}
			dg.add(r.level, r.members)
		}
		axes = append(axes, order)
	}

	// FILTER refs: per-dimension predicate at one level.
	filterLevel := map[int]int{}
	filterMembers := map[int][]int32{}
	for _, f := range expr.Filter {
		r, err := resolve(schema, f)
		if err != nil {
			return nil, err
		}
		if r.measure {
			continue // selects the (single) measure
		}
		if r.members == nil {
			// Dim.All: explicitly aggregated out; nothing to record.
			continue
		}
		if lvl, ok := filterLevel[r.dim]; ok && lvl != r.level {
			return nil, errAt(f.Pos, "%s: dimension %s filtered at two levels", f, schema.Dims[r.dim].Name)
		}
		filterLevel[r.dim] = r.level
		filterMembers[r.dim] = mergeMembers(filterMembers[r.dim], r.members)
	}

	// A filter on a dimension that is also on an axis (the [MS] example
	// filters Year 1991 while Time is grouped by quarter/month) narrows
	// each of that dimension's axis groups to the filter's descendants.
	for ai := range axes {
		for _, dg := range axes[ai] {
			lvl, ok := filterLevel[dg.dim]
			if !ok {
				continue
			}
			d := schema.Dims[dg.dim]
			for _, g := range dg.groups {
				if g.level > lvl {
					return nil, fmt.Errorf("mdx: dimension %s grouped at %s but filtered at finer level %s",
						d.Name, d.LevelName(g.level), d.LevelName(lvl))
				}
				allowed := map[int32]bool{}
				for _, c := range d.Descend(filterMembers[dg.dim], lvl, g.level) {
					allowed[c] = true
				}
				var kept []int32
				for _, c := range g.members {
					if allowed[c] {
						kept = append(kept, c)
					}
				}
				if len(kept) == 0 {
					return nil, fmt.Errorf("mdx: filter on %s leaves no members in an axis set", d.Name)
				}
				g.members = kept
			}
			delete(filterLevel, dg.dim)
			delete(filterMembers, dg.dim)
		}
	}

	// Flatten all dim groups across axes (axis order, then appearance
	// order) and cross-product their level groups.
	var dims []*dimGroups
	for _, order := range axes {
		dims = append(dims, order...)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("mdx: expression has no dimension members on its axes")
	}

	var queries []*query.Query
	choice := make([]int, len(dims))
	var emit func(i int) error
	emit = func(i int) error {
		if i == len(dims) {
			levels := make([]int, schema.NumDims())
			preds := make([]query.Predicate, schema.NumDims())
			for d := range levels {
				levels[d] = schema.Dims[d].AllLevel()
			}
			for gi, dg := range dims {
				g := dg.groups[choice[gi]]
				levels[dg.dim] = g.level
				preds[dg.dim] = query.Predicate{Members: append([]int32(nil), g.members...)}
			}
			for d, lvl := range filterLevel {
				levels[d] = lvl
				preds[d] = query.Predicate{Members: append([]int32(nil), filterMembers[d]...)}
			}
			q, err := query.New(fmt.Sprintf("q%d", len(queries)+1), schema, levels, preds)
			if err != nil {
				return err
			}
			q.Agg = agg
			queries = append(queries, q)
			return nil
		}
		for c := range dims[i].groups {
			choice[i] = c
			if err := emit(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(0); err != nil {
		return nil, err
	}
	return queries, nil
}

// ParseAndTranslate parses src and translates it against schema.
func ParseAndTranslate(schema *star.Schema, src string) ([]*query.Query, error) {
	expr, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Translate(schema, expr)
}

// flatten lists a set's member expressions, descending NEST sets.
func flatten(s *Set) []*MemberExpr {
	if s.Nested == nil {
		return s.Members
	}
	var out []*MemberExpr
	for _, n := range s.Nested {
		out = append(out, flatten(n)...)
	}
	return out
}

func (dg *dimGroups) add(level int, members []int32) {
	for _, g := range dg.groups {
		if g.level == level {
			g.members = mergeMembers(g.members, members)
			return
		}
	}
	dg.groups = append(dg.groups, &levelGroup{level: level, members: append([]int32(nil), members...)})
}

// mergeMembers unions two member code sets, keeping sorted order.
func mergeMembers(a, b []int32) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, s := range [][]int32{a, b} {
		for _, c := range s {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Package mdx implements the subset of Microsoft's Multi-Dimensional
// Expressions used by the paper (§2): axis sets with NEST, CONTEXT,
// FILTER, CHILDREN and level-qualified members, and the translation of
// one MDX expression into the several related group-by queries it
// denotes.
//
// The grammar accepted:
//
//	expression := axis+ "CONTEXT" ident filter? ";"?
//	axis       := set "on" AXIS
//	set        := "{" item ("," item)* "}"
//	            | "(" item ("," item)* ")"
//	            | "NEST" "(" set ("," set)* ")"
//	item       := member | set
//	member     := segment ("." segment)*
//	segment    := IDENT | "[" text "]" | "CHILDREN"
//	filter     := "FILTER" "(" member ("," member)* ")"
//	AXIS       := COLUMNS | ROWS | PAGES | SECTIONS | CHAPTERS
//
// Keywords are case-insensitive; member and level names (which may
// contain primes, like A”) are case-sensitive.
package mdx

import "fmt"

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokBracketed // [1991]
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokSemi
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokBracketed:
		return "bracketed name"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokSemi:
		return "';'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string // identifier or bracketed content
	pos  int    // byte offset in the input
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("mdx: syntax error at offset %d: %s", e.Pos, e.Msg)
}

func errAt(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

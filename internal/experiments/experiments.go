// Package experiments reproduces the paper's evaluation (§7): Table 1
// (the test database's materialized group-by sizes), Tests 1–3 (Figures
// 10–12: the three shared operators vs. separate execution) and Tests
// 4–7 (Table 2: global plans produced by TPLO, ETPLG, GG and the
// exhaustive Optimal, executed and timed).
//
// All measurements report both simulated 1998-seconds (from counted
// work; see internal/cost) and wall-clock time on the current machine.
// Every experiment cross-checks its results against the naive oracle
// and fails loudly on a mismatch.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"mdxopt/internal/core"
	"mdxopt/internal/cost"
	"mdxopt/internal/datagen"
	"mdxopt/internal/exec"
	"mdxopt/internal/plan"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/workload"
)

// Runner holds an open database and the paper's query workload.
type Runner struct {
	DB      *star.Database
	Queries map[string]*query.Query
	Env     *exec.Env
	Model   *cost.Model
	Scale   float64
}

// Open builds (if absent) or opens the paper database at dir with the
// given scale and returns a runner.
func Open(dir string, scale float64) (*Runner, error) {
	spec := datagen.PaperSpec(scale)
	var db *star.Database
	if _, err := os.Stat(filepath.Join(dir, "meta.json")); err == nil {
		db, err = star.Open(dir, spec.PoolFrames)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		db, err = datagen.Build(dir, spec)
		if err != nil {
			return nil, err
		}
	}
	qs, err := workload.PaperQueries(db.Schema)
	if err != nil {
		return nil, err
	}
	return &Runner{
		DB:      db,
		Queries: qs,
		Env:     exec.NewEnv(db),
		Model:   cost.Default(),
		Scale:   scale,
	}, nil
}

// Close closes the underlying database.
func (r *Runner) Close() error { return r.DB.Close() }

func (r *Runner) qs(names ...string) []*query.Query {
	out := make([]*query.Query, len(names))
	for i, n := range names {
		out[i] = r.Queries[n]
	}
	return out
}

// Measurement is one timed execution.
type Measurement struct {
	SimSeconds float64
	Wall       time.Duration
	PageReads  int64
}

func (r *Runner) measurement(st exec.Stats) Measurement {
	return Measurement{
		SimSeconds: st.SimulatedSeconds(r.Model),
		Wall:       st.Wall,
		PageReads:  st.IO.Reads(),
	}
}

// ---------------------------------------------------------------------
// Table 1

// ViewSize is one row of the database profile.
type ViewSize struct {
	Name  string
	Rows  int64
	Pages int64
}

// Table1Result profiles the materialized group-bys, the reproduction of
// the paper's Table 1.
type Table1Result struct {
	Scale float64
	Views []ViewSize
}

// Table1 reports the materialized group-by sizes.
func (r *Runner) Table1() *Table1Result {
	out := &Table1Result{Scale: r.Scale}
	for _, v := range r.DB.Views {
		out.Views = append(out.Views, ViewSize{Name: v.Name, Rows: v.Rows(), Pages: v.Pages()})
	}
	return out
}

// paperTable1 holds the paper's (full-scale) tuple counts for context.
var paperTable1 = map[string]int64{
	"ABCD":    2000000,
	"A'B'C'D": 1000000,
}

// Format renders the table.
func (t *Table1Result) Format(w io.Writer) {
	fmt.Fprintf(w, "Table 1: materialized group-by sizes (scale %g)\n", t.Scale)
	fmt.Fprintf(w, "%-14s %10s %8s %10s %14s\n", "group-by", "tuples", "pages", "vs base", "paper (2M run)")
	base := t.Views[0].Rows
	for _, v := range t.Views {
		paper := ""
		if p, ok := paperTable1[v.Name]; ok {
			paper = fmt.Sprintf("%d", p)
		}
		fmt.Fprintf(w, "%-14s %10d %8d %9.2fx %14s\n",
			v.Name, v.Rows, v.Pages, float64(v.Rows)/float64(base), paper)
	}
}

// ---------------------------------------------------------------------
// Tests 1–3 (Figures 10–12)

// SharingStep is one bar pair of Figures 10–12: the first K queries run
// separately (cold cache between queries) vs. with the shared operator.
type SharingStep struct {
	K        int
	Names    []string
	Separate Measurement
	Shared   Measurement
}

// SharedOpResult is one of Tests 1–3.
type SharedOpResult struct {
	Name     string // "Test 1 (Figure 10)" etc.
	Operator string
	Base     string
	Steps    []SharingStep
}

// Speedup returns separate/shared simulated time at the last step.
func (t *SharedOpResult) Speedup() float64 {
	last := t.Steps[len(t.Steps)-1]
	if last.Shared.SimSeconds == 0 {
		return 0
	}
	return last.Separate.SimSeconds / last.Shared.SimSeconds
}

// Format renders the figure as a table.
func (t *SharedOpResult) Format(w io.Writer) {
	fmt.Fprintf(w, "%s: %s on %s\n", t.Name, t.Operator, t.Base)
	fmt.Fprintf(w, "%-3s %-18s %14s %14s %10s %12s %12s\n",
		"k", "queries", "separate(sim s)", "shared(sim s)", "speedup", "sep pages", "shared pages")
	for _, s := range t.Steps {
		fmt.Fprintf(w, "%-3d %-18s %14.3f %14.3f %9.2fx %12d %12d\n",
			s.K, join(s.Names), s.Separate.SimSeconds, s.Shared.SimSeconds,
			s.Separate.SimSeconds/s.Shared.SimSeconds, s.Separate.PageReads, s.Shared.PageReads)
	}
}

func join(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "+"
		}
		out += n
	}
	return out
}

// Test1 (Figure 10): Q1–Q4 forced onto hash star joins over the base
// table ABCD; separate vs. the shared-scan operator, cumulatively.
func (r *Runner) Test1() (*SharedOpResult, error) {
	names := []string{"Q1", "Q2", "Q3", "Q4"}
	base := r.DB.Base()
	out := &SharedOpResult{Name: "Test 1 (Figure 10)", Operator: "shared-scan hash star join", Base: base.Name}

	for k := 1; k <= len(names); k++ {
		group := r.qs(names[:k]...)

		var sep exec.Stats
		var sepResults []*exec.Result
		for _, q := range group {
			if err := r.DB.ColdReset(); err != nil {
				return nil, err
			}
			res, err := exec.HashJoinQuery(r.Env, base, q, &sep)
			if err != nil {
				return nil, err
			}
			sepResults = append(sepResults, res)
		}

		if err := r.DB.ColdReset(); err != nil {
			return nil, err
		}
		var shared exec.Stats
		sharedResults, err := exec.SharedScanHash(r.Env, base, group, &shared)
		if err != nil {
			return nil, err
		}
		if err := r.verify(group, sharedResults, sepResults); err != nil {
			return nil, fmt.Errorf("test1 k=%d: %w", k, err)
		}
		out.Steps = append(out.Steps, SharingStep{
			K: k, Names: names[:k],
			Separate: r.measurement(sep),
			Shared:   r.measurement(shared),
		})
	}
	return out, nil
}

// Test2 (Figure 11): Q5–Q8 forced onto bitmap index star joins over
// A'B'C'D; separate vs. the shared index operator, cumulatively.
func (r *Runner) Test2() (*SharedOpResult, error) {
	names := []string{"Q5", "Q6", "Q7", "Q8"}
	view := r.indexedView()
	out := &SharedOpResult{Name: "Test 2 (Figure 11)", Operator: "shared index star join", Base: view.Name}

	for k := 1; k <= len(names); k++ {
		group := r.qs(names[:k]...)

		var sep exec.Stats
		var sepResults []*exec.Result
		for _, q := range group {
			if err := r.DB.ColdReset(); err != nil {
				return nil, err
			}
			res, err := exec.IndexJoinQuery(r.Env, view, q, &sep)
			if err != nil {
				return nil, err
			}
			sepResults = append(sepResults, res)
		}

		if err := r.DB.ColdReset(); err != nil {
			return nil, err
		}
		var shared exec.Stats
		sharedResults, err := exec.SharedIndex(r.Env, view, group, &shared)
		if err != nil {
			return nil, err
		}
		if err := r.verify(group, sharedResults, sepResults); err != nil {
			return nil, fmt.Errorf("test2 k=%d: %w", k, err)
		}
		out.Steps = append(out.Steps, SharingStep{
			K: k, Names: names[:k],
			Separate: r.measurement(sep),
			Shared:   r.measurement(shared),
		})
	}
	return out, nil
}

// Test3 (Figure 12): Q3 as a hash star join plus Q5, Q6, Q7 as index
// star joins, all over A'B'C'D; separate vs. the mixed shared-scan
// operator, adding one index query at a time.
func (r *Runner) Test3() (*SharedOpResult, error) {
	indexNames := []string{"Q5", "Q6", "Q7"}
	view := r.indexedView()
	out := &SharedOpResult{Name: "Test 3 (Figure 12)", Operator: "shared scan, hash + index star joins", Base: view.Name}

	for k := 0; k <= len(indexNames); k++ {
		hash := r.qs("Q3")
		index := r.qs(indexNames[:k]...)
		group := append(append([]*query.Query(nil), hash...), index...)
		names := append([]string{"Q3"}, indexNames[:k]...)

		var sep exec.Stats
		var sepResults []*exec.Result
		if err := r.DB.ColdReset(); err != nil {
			return nil, err
		}
		res, err := exec.HashJoinQuery(r.Env, view, hash[0], &sep)
		if err != nil {
			return nil, err
		}
		sepResults = append(sepResults, res)
		for _, q := range index {
			if err := r.DB.ColdReset(); err != nil {
				return nil, err
			}
			res, err := exec.IndexJoinQuery(r.Env, view, q, &sep)
			if err != nil {
				return nil, err
			}
			sepResults = append(sepResults, res)
		}

		if err := r.DB.ColdReset(); err != nil {
			return nil, err
		}
		var shared exec.Stats
		hr, ir, err := exec.SharedMixed(r.Env, view, hash, index, &shared)
		if err != nil {
			return nil, err
		}
		sharedResults := append(append([]*exec.Result(nil), hr...), ir...)
		if err := r.verify(group, sharedResults, sepResults); err != nil {
			return nil, fmt.Errorf("test3 k=%d: %w", k, err)
		}
		out.Steps = append(out.Steps, SharingStep{
			K: len(group), Names: names,
			Separate: r.measurement(sep),
			Shared:   r.measurement(shared),
		})
	}
	return out, nil
}

func (r *Runner) indexedView() *star.View {
	return r.DB.ViewByLevels([]int{1, 1, 1, 0})
}

// verify checks shared results both against the separate runs and the
// naive oracle.
func (r *Runner) verify(queries []*query.Query, shared, separate []*exec.Result) error {
	for i, q := range queries {
		if !shared[i].Equal(separate[i]) {
			return fmt.Errorf("%s: shared and separate execution disagree", q.Name)
		}
		want, err := exec.Naive(r.Env, q)
		if err != nil {
			return err
		}
		if !shared[i].Equal(want) {
			return fmt.Errorf("%s: result does not match the oracle", q.Name)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Tests 4–7 (Table 2)

// AlgoRow is one algorithm's line in a Table 2 test.
type AlgoRow struct {
	Algorithm string
	EstCost   float64 // estimated simulated seconds
	Measured  Measurement
	Plan      string
	Classes   int
}

// AlgoResult is one of Tests 4–7.
type AlgoResult struct {
	Name    string
	Queries []string
	Rows    []AlgoRow
}

// Format renders the test as a table.
func (t *AlgoResult) Format(w io.Writer) {
	fmt.Fprintf(w, "%s: queries %s\n", t.Name, join(t.Queries))
	fmt.Fprintf(w, "%-12s %12s %12s %8s  %s\n", "algorithm", "est(sim s)", "run(sim s)", "classes", "plan")
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%-12s %12.3f %12.3f %8d  %s\n",
			row.Algorithm, row.EstCost, row.Measured.SimSeconds, row.Classes, oneLine(row.Plan))
	}
}

func oneLine(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '\n' {
			out = append(out, ' ', '|', ' ')
			continue
		}
		out = append(out, r)
	}
	return string(out)
}

// algoTest runs one Table 2 test: every algorithm under the paper-mode
// estimator, plus GG under the full-model estimator ("GG-full"), all
// executed with cold caches and verified against the oracle.
func (r *Runner) algoTest(name string, queryNames []string) (*AlgoResult, error) {
	queries := r.qs(queryNames...)
	out := &AlgoResult{Name: name, Queries: queryNames}

	want := make([]*exec.Result, len(queries))
	for i, q := range queries {
		res, err := exec.Naive(r.Env, q)
		if err != nil {
			return nil, err
		}
		want[i] = res
	}

	type variant struct {
		label string
		est   *plan.Estimator
		alg   core.Algorithm
	}
	paperEst := plan.NewPaperEstimator(r.DB)
	fullEst := plan.NewEstimator(r.DB)
	variants := []variant{
		{"TPLO", paperEst, core.TPLO},
		{"ETPLG", paperEst, core.ETPLG},
		{"GG", paperEst, core.GG},
		{"Optimal", paperEst, core.Optimal},
		{"GG-full", fullEst, core.GG},
	}
	for _, v := range variants {
		g, err := core.Optimize(v.est, queries, v.alg)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, v.label, err)
		}
		estCost := v.est.GlobalCost(g)
		if err := r.DB.ColdReset(); err != nil {
			return nil, err
		}
		var st exec.Stats
		results, err := core.Execute(r.Env, g, queries, &st)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, v.label, err)
		}
		for i := range queries {
			if !results[i].Equal(want[i]) {
				return nil, fmt.Errorf("%s/%s: wrong result for %s", name, v.label, queries[i].Name)
			}
		}
		out.Rows = append(out.Rows, AlgoRow{
			Algorithm: v.label,
			EstCost:   cost.Micros(estCost),
			Measured:  r.measurement(st),
			Plan:      g.Describe(),
			Classes:   len(g.Classes),
		})
	}
	return out, nil
}

// Test4 runs Table 2's first test: Q1, Q2, Q3.
func (r *Runner) Test4() (*AlgoResult, error) {
	return r.algoTest("Test 4 (Table 2)", []string{"Q1", "Q2", "Q3"})
}

// Test5 runs Table 2's second test: Q2, Q3, Q5.
func (r *Runner) Test5() (*AlgoResult, error) {
	return r.algoTest("Test 5 (Table 2)", []string{"Q2", "Q3", "Q5"})
}

// Test6 runs Table 2's third test: Q6, Q7, Q8 (all very selective).
func (r *Runner) Test6() (*AlgoResult, error) {
	return r.algoTest("Test 6 (Table 2)", []string{"Q6", "Q7", "Q8"})
}

// Test7 runs Table 2's fourth test: Q1, Q7, Q9.
func (r *Runner) Test7() (*AlgoResult, error) {
	return r.algoTest("Test 7 (Table 2)", []string{"Q1", "Q7", "Q9"})
}

// RunAll executes every experiment and writes the report to w.
func (r *Runner) RunAll(w io.Writer) error {
	r.Table1().Format(w)
	fmt.Fprintln(w)
	for _, f := range []func() (*SharedOpResult, error){r.Test1, r.Test2, r.Test3} {
		res, err := f()
		if err != nil {
			return err
		}
		res.Format(w)
		fmt.Fprintln(w)
	}
	for _, f := range []func() (*AlgoResult, error){r.Test4, r.Test5, r.Test6, r.Test7} {
		res, err := f()
		if err != nil {
			return err
		}
		res.Format(w)
		fmt.Fprintln(w)
	}
	study, err := r.OptimizerStudy()
	if err != nil {
		return err
	}
	study.Format(w)
	fmt.Fprintln(w)
	return nil
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"mdxopt/internal/core"
	"mdxopt/internal/cost"
	"mdxopt/internal/plan"
)

// The paper closes (§8) with an open question: "In terms of the number
// of global plans searched, GG dominates ETPLG and ETPLG dominates TPLO.
// However, this comes at a price — the run time of GG is bigger … The
// study of this trade-off may lead to the discovery of new algorithms."
// OptimizerStudy performs that study: for growing query sets it measures
// each algorithm's search effort (cost-model evaluations and wall-clock
// optimization time) against the quality of the plan it finds, including
// this repository's GGI (GG + iterative improvement) answer to the
// question.

// StudyRow is one (query count, algorithm) measurement.
type StudyRow struct {
	Queries   int
	Algorithm string
	CostEvals int64
	Wall      time.Duration
	EstCost   float64 // simulated seconds
	Ratio     float64 // EstCost / best EstCost at this query count
	Classes   int
}

// StudyResult is the full trade-off study.
type StudyResult struct {
	Rows []StudyRow
}

// OptimizerStudy measures search effort vs. plan quality for TPLO,
// ETPLG, GG, GGI and (up to 7 queries) the exhaustive optimum, on
// growing prefixes of the paper's Q1..Q9 workload.
func (r *Runner) OptimizerStudy() (*StudyResult, error) {
	names := []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9"}
	out := &StudyResult{}
	for n := 2; n <= len(names); n++ {
		queries := r.qs(names[:n]...)
		algorithms := []core.Algorithm{core.TPLO, core.ETPLG, core.GG, core.GGI}
		if n <= 7 {
			algorithms = append(algorithms, core.Optimal)
		}
		var rows []StudyRow
		best := -1.0
		for _, alg := range algorithms {
			est := plan.NewPaperEstimator(r.DB)
			start := time.Now()
			g, err := core.Optimize(est, queries, alg)
			if err != nil {
				return nil, fmt.Errorf("study n=%d %s: %w", n, alg, err)
			}
			wall := time.Since(start)
			evals := est.CostEvals
			estCost := cost.Micros(est.GlobalCost(g))
			rows = append(rows, StudyRow{
				Queries:   n,
				Algorithm: string(alg),
				CostEvals: evals,
				Wall:      wall,
				EstCost:   estCost,
				Classes:   len(g.Classes),
			})
			if best < 0 || estCost < best {
				best = estCost
			}
		}
		for i := range rows {
			rows[i].Ratio = rows[i].EstCost / best
		}
		out.Rows = append(out.Rows, rows...)
	}
	return out, nil
}

// Format renders the study as a table.
func (s *StudyResult) Format(w io.Writer) {
	fmt.Fprintln(w, "Optimizer time/space trade-off study (paper §8 future work)")
	fmt.Fprintf(w, "%-3s %-8s %12s %12s %12s %10s %8s\n",
		"n", "algo", "cost evals", "opt time", "est(sim s)", "vs best", "classes")
	prev := 0
	for _, row := range s.Rows {
		if row.Queries != prev {
			fmt.Fprintln(w)
			prev = row.Queries
		}
		fmt.Fprintf(w, "%-3d %-8s %12d %12s %12.3f %9.3fx %8d\n",
			row.Queries, row.Algorithm, row.CostEvals,
			row.Wall.Round(time.Microsecond), row.EstCost, row.Ratio, row.Classes)
	}
}

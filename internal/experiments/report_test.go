package experiments

import (
	"os"
	"testing"
)

// TestPrintReport prints the full experiment report when REPORT=1; used
// for manual inspection, skipped otherwise.
func TestPrintReport(t *testing.T) {
	if os.Getenv("REPORT") == "" {
		t.Skip("set REPORT=1 to print the full report")
	}
	r := testRunner(t)
	if err := r.RunAll(os.Stderr); err != nil {
		t.Fatal(err)
	}
	if err := r.RunAblations(os.Stderr); err != nil {
		t.Fatal(err)
	}
}

package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var sharedRunner *Runner

func TestMain(m *testing.M) {
	code := m.Run()
	if sharedRunner != nil {
		sharedRunner.Close()
		os.RemoveAll(filepath.Dir(sharedRunner.DB.Dir))
	}
	os.Exit(code)
}

func testRunner(t *testing.T) *Runner {
	t.Helper()
	if sharedRunner != nil {
		return sharedRunner
	}
	// Not t.TempDir(): the runner outlives the first test that builds it,
	// and later tests create files (index rebuilds) in the directory.
	dir, err := os.MkdirTemp("", "mdxopt-experiments")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(filepath.Join(dir, "db"), 0.1) // the default experiment scale
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sharedRunner = r
	return r
}

func TestOpenIsIdempotent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	r1, err := Open(dir, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	rows := r1.DB.Base().Rows()
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, 0.002)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	if r2.DB.Base().Rows() != rows {
		t.Fatalf("reopened rows = %d, want %d", r2.DB.Base().Rows(), rows)
	}
}

func TestTable1(t *testing.T) {
	r := testRunner(t)
	tbl := r.Table1()
	if len(tbl.Views) != 9 {
		t.Fatalf("views = %d", len(tbl.Views))
	}
	if tbl.Views[0].Name != "ABCD" {
		t.Fatalf("first view = %s", tbl.Views[0].Name)
	}
	for _, v := range tbl.Views[1:] {
		if v.Rows == 0 || v.Rows > tbl.Views[0].Rows {
			t.Fatalf("view %s has %d rows", v.Name, v.Rows)
		}
	}
	var buf bytes.Buffer
	tbl.Format(&buf)
	if !strings.Contains(buf.String(), "A'B'C'D") {
		t.Fatalf("Format output missing views:\n%s", buf.String())
	}
}

func TestSharedOperatorExperiments(t *testing.T) {
	r := testRunner(t)
	for _, f := range []struct {
		name string
		run  func() (*SharedOpResult, error)
	}{
		{"Test1", r.Test1}, {"Test2", r.Test2}, {"Test3", r.Test3},
	} {
		res, err := f.run()
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if len(res.Steps) < 3 {
			t.Fatalf("%s: only %d steps", f.name, len(res.Steps))
		}
		// The paper's headline: with all queries, sharing beats separate
		// execution in simulated time, and the gap grows with k.
		last := res.Steps[len(res.Steps)-1]
		if last.Shared.SimSeconds >= last.Separate.SimSeconds {
			t.Fatalf("%s: shared %.3f not below separate %.3f",
				f.name, last.Shared.SimSeconds, last.Separate.SimSeconds)
		}
		if res.Speedup() <= 1 {
			t.Fatalf("%s: speedup %.2f", f.name, res.Speedup())
		}
		// Monotone: separate cost grows with every added query.
		for i := 1; i < len(res.Steps); i++ {
			if res.Steps[i].Separate.SimSeconds <= res.Steps[i-1].Separate.SimSeconds {
				t.Fatalf("%s: separate cost not increasing at step %d", f.name, i)
			}
		}
		var buf bytes.Buffer
		res.Format(&buf)
		if !strings.Contains(buf.String(), res.Name) {
			t.Fatalf("%s: Format missing header", f.name)
		}
	}
}

func TestSharedScanMarginalCostSmall(t *testing.T) {
	// Figure 10's second observation: adding a query to the shared scan
	// costs (in simulated I/O) far less than running it alone, because
	// only CPU is added.
	r := testRunner(t)
	res, err := r.Test1()
	if err != nil {
		t.Fatal(err)
	}
	first := res.Steps[0]
	for i := 1; i < len(res.Steps); i++ {
		marginalShared := res.Steps[i].Shared.PageReads - res.Steps[i-1].Shared.PageReads
		if marginalShared > first.Shared.PageReads/5 {
			t.Fatalf("adding query %d to the shared scan cost %d page reads",
				i+1, marginalShared)
		}
	}
}

func TestAlgoExperiments(t *testing.T) {
	r := testRunner(t)
	for _, f := range []struct {
		name string
		run  func() (*AlgoResult, error)
	}{
		{"Test4", r.Test4}, {"Test5", r.Test5}, {"Test6", r.Test6}, {"Test7", r.Test7},
	} {
		res, err := f.run()
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if len(res.Rows) != 5 { // TPLO, ETPLG, GG, Optimal, GG-full
			t.Fatalf("%s: %d rows", f.name, len(res.Rows))
		}
		byAlg := map[string]AlgoRow{}
		for _, row := range res.Rows {
			byAlg[row.Algorithm] = row
		}
		// Paper-mode dominance in estimated cost.
		if byAlg["Optimal"].EstCost > byAlg["TPLO"].EstCost+1e-9 ||
			byAlg["Optimal"].EstCost > byAlg["GG"].EstCost+1e-9 {
			t.Fatalf("%s: Optimal estimate above a heuristic: %+v", f.name, res.Rows)
		}
		if byAlg["GG"].EstCost > byAlg["ETPLG"].EstCost+1e-9 {
			t.Fatalf("%s: GG above ETPLG", f.name)
		}
		var buf bytes.Buffer
		res.Format(&buf)
		if !strings.Contains(buf.String(), "GG-full") {
			t.Fatalf("%s: Format missing GG-full row", f.name)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	r := testRunner(t)
	// Test 4: GG measures strictly better than TPLO (it shares a base).
	t4, err := r.Test4()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]AlgoRow{}
	for _, row := range t4.Rows {
		rows[row.Algorithm] = row
	}
	if rows["GG"].Measured.SimSeconds >= rows["TPLO"].Measured.SimSeconds {
		t.Fatalf("Test4: GG measured %.3f not below TPLO %.3f",
			rows["GG"].Measured.SimSeconds, rows["TPLO"].Measured.SimSeconds)
	}
	if rows["GG"].Classes >= rows["TPLO"].Classes {
		t.Fatalf("Test4: GG %d classes, TPLO %d", rows["GG"].Classes, rows["TPLO"].Classes)
	}

	// Test 6: all paper algorithms produce the same plan.
	t6, err := r.Test6()
	if err != nil {
		t.Fatal(err)
	}
	var plans []string
	for _, row := range t6.Rows {
		if row.Algorithm == "GG-full" {
			continue
		}
		plans = append(plans, row.Plan)
	}
	for _, p := range plans[1:] {
		if p != plans[0] {
			t.Fatalf("Test6: plans differ:\n%s\nvs\n%s", plans[0], p)
		}
	}
}

func TestAblations(t *testing.T) {
	r := testRunner(t)
	ls, err := r.AblationLookupSharing()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Rows) != 2 {
		t.Fatalf("lookup sharing rows = %d", len(ls.Rows))
	}
	if ls.Rows[0].Measured.SimSeconds > ls.Rows[1].Measured.SimSeconds {
		t.Fatalf("lookup sharing (%.3f) slower than no sharing (%.3f)",
			ls.Rows[0].Measured.SimSeconds, ls.Rows[1].Measured.SimSeconds)
	}

	fc, err := r.AblationFilterConversion()
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Rows) != 4 {
		t.Fatalf("filter conversion rows = %d", len(fc.Rows))
	}

	rs, err := r.AblationRandSeqRatio()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 4 {
		t.Fatalf("rand/seq rows = %d", len(rs.Rows))
	}

	od, err := r.AblationGreedyOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(od.Rows) != 4 {
		t.Fatalf("greedy order rows = %d", len(od.Rows))
	}

	ci, err := r.AblationCompressedIndexes()
	if err != nil {
		t.Fatal(err)
	}
	if len(ci.Rows) != 2 {
		t.Fatalf("compressed index rows = %d", len(ci.Rows))
	}
	// Both formats answer the queries; the compressed format must not be
	// dramatically slower and the view must still have its uncompressed
	// indexes afterwards (the ablation restores them).
	view := r.indexedView()
	for _, dim := range []int{0, 1, 2} {
		if !view.HasIndex(dim) {
			t.Fatalf("ablation lost the index on dim %d", dim)
		}
	}

	sk, err := r.AblationStatsUnderSkew()
	if err != nil {
		t.Fatal(err)
	}
	if len(sk.Rows) != 2 {
		t.Fatalf("skew rows = %d", len(sk.Rows))
	}
	// Statistics-based plans must not measure worse than the uniform
	// assumption on skewed data.
	if sk.Rows[0].Measured.SimSeconds > sk.Rows[1].Measured.SimSeconds*1.01 {
		t.Fatalf("stats plan %.3f worse than uniform %.3f",
			sk.Rows[0].Measured.SimSeconds, sk.Rows[1].Measured.SimSeconds)
	}

	var buf bytes.Buffer
	if err := r.RunAblations(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablation:") {
		t.Fatal("ablation report empty")
	}
}

func TestRunAllProducesReport(t *testing.T) {
	r := testRunner(t)
	var buf bytes.Buffer
	if err := r.RunAll(&buf); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	report := buf.String()
	for _, want := range []string{"Table 1", "Test 1 (Figure 10)", "Test 2 (Figure 11)",
		"Test 3 (Figure 12)", "Test 4 (Table 2)", "Test 7 (Table 2)"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestOptimizerStudy(t *testing.T) {
	r := testRunner(t)
	study, err := r.OptimizerStudy()
	if err != nil {
		t.Fatal(err)
	}
	byN := map[int]map[string]StudyRow{}
	for _, row := range study.Rows {
		if byN[row.Queries] == nil {
			byN[row.Queries] = map[string]StudyRow{}
		}
		byN[row.Queries][row.Algorithm] = row
	}
	for n := 2; n <= 9; n++ {
		rows := byN[n]
		if len(rows) == 0 {
			t.Fatalf("no study rows for n=%d", n)
		}
		// The paper's §8 claim: search effort ordering TPLO < ETPLG < GG
		// (and far below exhaustive).
		if rows["GG"].CostEvals < rows["ETPLG"].CostEvals {
			t.Fatalf("n=%d: GG searched fewer plans (%d) than ETPLG (%d)",
				n, rows["GG"].CostEvals, rows["ETPLG"].CostEvals)
		}
		if opt, ok := rows["Optimal"]; ok && n >= 5 {
			if opt.CostEvals <= rows["GGI"].CostEvals {
				t.Fatalf("n=%d: exhaustive searched fewer plans (%d) than GGI (%d)",
					n, opt.CostEvals, rows["GGI"].CostEvals)
			}
			if opt.Ratio != 1 {
				t.Fatalf("n=%d: Optimal ratio %v != 1", n, opt.Ratio)
			}
		}
		// GGI never worse than either greedy start.
		if rows["GGI"].EstCost > rows["GG"].EstCost+1e-9 ||
			rows["GGI"].EstCost > rows["ETPLG"].EstCost+1e-9 {
			t.Fatalf("n=%d: GGI %v above a greedy start", n, rows["GGI"].EstCost)
		}
	}
	var buf bytes.Buffer
	study.Format(&buf)
	if !strings.Contains(buf.String(), "trade-off") {
		t.Fatal("study format empty")
	}
}

func TestAblationPoolSize(t *testing.T) {
	r := testRunner(t)
	ps, err := r.AblationPoolSize()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Rows) != 3 {
		t.Fatalf("pool size rows = %d", len(ps.Rows))
	}
	// Hot-everything pool: separate runs stop re-reading, so their cost
	// drops well below the small-pool configuration.
	small := ps.Rows[0].Measured
	huge := ps.Rows[len(ps.Rows)-1].Measured
	if huge.PageReads >= small.PageReads {
		t.Fatalf("huge pool reads %d not below small pool %d", huge.PageReads, small.PageReads)
	}
}

func TestEstimatesTrackMeasurements(t *testing.T) {
	// The §5.1 cost model's estimates must track the executed plans'
	// counted work: per Table 2 row, |est - run| / run within 50%. The
	// loose cases are probe-regime plans, where Yao's model prices every
	// touched page as a random read while the measured run's ascending
	// fetches partially coalesce into sequential ones.
	r := testRunner(t)
	for _, run := range []func() (*AlgoResult, error){r.Test4, r.Test5, r.Test6, r.Test7} {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			diff := row.EstCost - row.Measured.SimSeconds
			if diff < 0 {
				diff = -diff
			}
			if diff/row.Measured.SimSeconds > 0.5 {
				t.Fatalf("%s %s: estimate %.3f vs measured %.3f (off %.0f%%)",
					res.Name, row.Algorithm, row.EstCost, row.Measured.SimSeconds,
					100*diff/row.Measured.SimSeconds)
			}
		}
	}
}

package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mdxopt/internal/core"
	"mdxopt/internal/cost"
	"mdxopt/internal/datagen"
	"mdxopt/internal/exec"
	"mdxopt/internal/plan"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/workload"
)

// AblationRow is one configuration's measurement in an ablation study.
type AblationRow struct {
	Config   string
	Measured Measurement
	Note     string
}

// AblationResult is one ablation study.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// Format renders the ablation as a table.
func (a *AblationResult) Format(w io.Writer) {
	fmt.Fprintf(w, "Ablation: %s\n", a.Name)
	fmt.Fprintf(w, "%-34s %12s %12s  %s\n", "configuration", "run(sim s)", "pages", "note")
	for _, row := range a.Rows {
		fmt.Fprintf(w, "%-34s %12.3f %12d  %s\n", row.Config, row.Measured.SimSeconds, row.Measured.PageReads, row.Note)
	}
}

// AblationLookupSharing isolates §3.1's second sharing opportunity:
// running Test 1's four-query shared scan with and without dimension
// lookup-table sharing.
func (r *Runner) AblationLookupSharing() (*AblationResult, error) {
	group := r.qs("Q1", "Q2", "Q3", "Q4")
	base := r.DB.Base()
	out := &AblationResult{Name: "dimension lookup sharing in the shared scan (§3.1)"}

	for _, sharing := range []bool{true, false} {
		env := exec.NewEnv(r.DB)
		env.ShareLookups = sharing
		if err := r.DB.ColdReset(); err != nil {
			return nil, err
		}
		var st exec.Stats
		if _, err := exec.SharedScanHash(env, base, group, &st); err != nil {
			return nil, err
		}
		label := "shared lookup tables"
		if !sharing {
			label = "per-query lookup tables"
		}
		out.Rows = append(out.Rows, AblationRow{
			Config:   label,
			Measured: r.measurement(st),
			Note:     fmt.Sprintf("%d lookup rows built", st.HashBuildRows),
		})
	}
	return out, nil
}

// AblationFilterConversion compares the paper's plan space against the
// full model on the hash-heavy Test 4 and Test 7 query sets, executing
// each GG plan.
func (r *Runner) AblationFilterConversion() (*AblationResult, error) {
	out := &AblationResult{Name: "paper plan space vs full model (filter conversion + clustered probes)"}
	sets := []struct {
		name  string
		names []string
	}{
		{"test4", []string{"Q1", "Q2", "Q3"}},
		{"test7", []string{"Q1", "Q7", "Q9"}},
	}
	for _, s := range sets {
		queries := r.qs(s.names...)
		for _, mode := range []struct {
			label string
			est   *plan.Estimator
		}{
			{"paper plan space", plan.NewPaperEstimator(r.DB)},
			{"full model", plan.NewEstimator(r.DB)},
		} {
			g, err := core.Optimize(mode.est, queries, core.GG)
			if err != nil {
				return nil, err
			}
			if err := r.DB.ColdReset(); err != nil {
				return nil, err
			}
			var st exec.Stats
			if _, err := core.Execute(r.Env, g, queries, &st); err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, AblationRow{
				Config:   s.name + ": GG, " + mode.label,
				Measured: r.measurement(st),
				Note:     fmt.Sprintf("%d classes", len(g.Classes)),
			})
		}
	}
	return out, nil
}

// AblationRandSeqRatio sweeps the random/sequential page cost ratio and
// reports which plan GG chooses for Test 5's queries — the knob behind
// the paper's hash/index crossover.
func (r *Runner) AblationRandSeqRatio() (*AblationResult, error) {
	queries := r.qs("Q2", "Q3", "Q5")
	out := &AblationResult{Name: "random/sequential cost ratio sweep (GG plan on Test 5 queries)"}
	for _, ratio := range []float64{1, 4, 10, 40} {
		est := plan.NewPaperEstimator(r.DB)
		model := *cost.Default()
		model.RandPage = model.SeqPage * ratio
		est.Model = &model
		g, err := core.Optimize(est, queries, core.GG)
		if err != nil {
			return nil, err
		}
		if err := r.DB.ColdReset(); err != nil {
			return nil, err
		}
		var st exec.Stats
		if _, err := core.Execute(r.Env, g, queries, &st); err != nil {
			return nil, err
		}
		indexPlans := 0
		for _, c := range g.Classes {
			indexPlans += len(c.IndexPlans())
		}
		out.Rows = append(out.Rows, AblationRow{
			Config:   fmt.Sprintf("rand/seq = %gx", ratio),
			Measured: r.measurement(st),
			Note:     fmt.Sprintf("%d classes, %d index plans", len(g.Classes), indexPlans),
		})
	}
	return out, nil
}

// AblationGreedyOrder compares ETPLG/GG with the paper's finest-first
// query ordering against coarsest-first.
func (r *Runner) AblationGreedyOrder() (*AblationResult, error) {
	queries := r.qs("Q1", "Q2", "Q3", "Q4", "Q9")
	out := &AblationResult{Name: "greedy insertion order (5 hash-heavy queries)"}
	for _, alg := range []core.Algorithm{core.ETPLG, core.GG} {
		for _, coarsest := range []bool{false, true} {
			est := plan.NewPaperEstimator(r.DB)
			g, err := core.OptimizeWith(est, queries, alg, core.Options{CoarsestFirst: coarsest})
			if err != nil {
				return nil, err
			}
			if err := r.DB.ColdReset(); err != nil {
				return nil, err
			}
			var st exec.Stats
			if _, err := core.Execute(r.Env, g, queries, &st); err != nil {
				return nil, err
			}
			order := "finest-first"
			if coarsest {
				order = "coarsest-first"
			}
			out.Rows = append(out.Rows, AblationRow{
				Config:   fmt.Sprintf("%s, %s", alg, order),
				Measured: r.measurement(st),
				Note:     fmt.Sprintf("%d classes", len(g.Classes)),
			})
		}
	}
	return out, nil
}

// AblationCompressedIndexes compares the uncompressed and the
// EWAH-compressed bitmap join index formats on the A'B'C'D view: on-disk
// size, and the cold cost of running Test 2's shared index join with
// each format.
func (r *Runner) AblationCompressedIndexes() (*AblationResult, error) {
	out := &AblationResult{Name: "bitmap join index format (uncompressed vs EWAH)"}
	view := r.indexedView()
	group := r.qs("Q5", "Q6", "Q7", "Q8")

	measure := func() (Measurement, error) {
		if err := r.DB.ColdReset(); err != nil {
			return Measurement{}, err
		}
		var st exec.Stats
		if _, err := exec.SharedIndex(r.Env, view, group, &st); err != nil {
			return Measurement{}, err
		}
		return r.measurement(st), nil
	}

	indexPages := func() uint32 {
		var pages uint32
		for _, ix := range view.Indexes {
			pages += ix.File().NumPages()
		}
		return pages
	}

	// Pass 1: the view's current (uncompressed) indexes.
	m, err := measure()
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, AblationRow{
		Config:   "uncompressed",
		Measured: m,
		Note:     fmt.Sprintf("%d index pages on disk", indexPages()),
	})

	// Pass 2: rebuild the same indexes EWAH-compressed, measure, then
	// restore the original format. Each swap publishes new snapshots, so
	// the runner's open-time Env (whose frozen views still reference the
	// replaced, since-reclaimed index files) must be re-frozen.
	swap := func(compressed bool) error {
		dims := []int{0, 1, 2}
		for _, dim := range dims {
			if err := r.DB.DropIndex(view, dim); err != nil {
				return err
			}
			if err := r.DB.BuildIndexFormat(view, dim, compressed); err != nil {
				return err
			}
		}
		r.Env = exec.NewEnv(r.DB)
		return nil
	}
	if err := swap(true); err != nil {
		return nil, err
	}
	m, err = measure()
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, AblationRow{
		Config:   "EWAH-compressed",
		Measured: m,
		Note:     fmt.Sprintf("%d index pages on disk", indexPages()),
	})
	if err := swap(false); err != nil {
		return nil, err
	}
	return out, nil
}

// AblationStatsUnderSkew builds a Zipf-skewed copy of the database and
// compares GG's plans with statistics-based selectivity estimation on
// and off. Under skew the uniform assumption badly misprices selective
// predicates; measured frequencies keep the estimates honest.
func (r *Runner) AblationStatsUnderSkew() (*AblationResult, error) {
	out := &AblationResult{Name: "selectivity statistics under Zipf skew (GG, hot-member queries)"}
	dir, err := os.MkdirTemp("", "mdxopt-skew")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	spec := datagen.PaperSpec(minFloat(r.Scale, 0.05))
	spec.Zipf = 1.3
	db, err := datagen.Build(filepath.Join(dir, "db"), spec)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	// Q7-shaped queries over the *hot* members (code 0 of each dimension
	// under Zipf). Uniformly they look extremely selective — one member
	// of each mid level — so the optimizer picks bitmap probes; in truth
	// the hot members cover a large slice of the table and the probes
	// touch most pages. Measured frequencies reveal this and flip the
	// plan to a scan.
	hot := func(name string) (*query.Query, error) {
		return query.New(name, db.Schema, []int{1, 1, 1, 1}, []query.Predicate{
			{Members: []int32{0}}, // hottest A' member
			{Members: []int32{0}},
			{Members: []int32{0}},
			{Members: []int32{0}}, // DD1
		})
	}
	h1, err := hot("H1")
	if err != nil {
		return nil, err
	}
	h2, err := query.New("H2", db.Schema, []int{1, 1, 2, 1}, []query.Predicate{
		{Members: []int32{0}},
		{Members: []int32{0}},
		{Members: []int32{0}},
		{Members: []int32{0}},
	})
	if err != nil {
		return nil, err
	}
	queries := []*query.Query{h1, h2}
	env := exec.NewEnv(db)

	for _, useStats := range []bool{true, false} {
		est := plan.NewEstimator(db)
		est.UseStats = useStats
		g, err := core.Optimize(est, queries, core.GG)
		if err != nil {
			return nil, err
		}
		if err := db.ColdReset(); err != nil {
			return nil, err
		}
		var st exec.Stats
		if _, err := core.Execute(env, g, queries, &st); err != nil {
			return nil, err
		}
		label := "measured frequencies"
		if !useStats {
			label = "uniform assumption"
		}
		out.Rows = append(out.Rows, AblationRow{
			Config:   label,
			Measured: r.measurement(st),
			Note:     fmt.Sprintf("%d classes", len(g.Classes)),
		})
	}
	return out, nil
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// AblationPoolSize reruns Test 1's four-query comparison with different
// buffer pool sizes by reopening the database: when the pool holds the
// whole base table, the separate runs stop paying repeated scan I/O and
// the shared operator's advantage shrinks to CPU-only effects.
func (r *Runner) AblationPoolSize() (*AblationResult, error) {
	out := &AblationResult{Name: "buffer pool size (Test 1's 4-query separate vs shared)"}
	basePages := r.DB.Base().Pages()
	group := []string{"Q1", "Q2", "Q3", "Q4"}

	// The sweep reopens the directory with fresh pools; everything the
	// runner's own pool still holds dirty (e.g. index rebuilds from
	// other ablations) must reach disk first.
	if err := r.DB.ColdReset(); err != nil {
		return nil, err
	}

	for _, frames := range []int{256, 2048, int(basePages) + 512} {
		db, err := star.Open(r.DB.Dir, frames)
		if err != nil {
			return nil, err
		}
		qs, err := workload.PaperQueries(db.Schema)
		if err != nil {
			db.Pool.CloseFiles()
			return nil, err
		}
		env := exec.NewEnv(db)
		queries := make([]*query.Query, len(group))
		for i, n := range group {
			queries[i] = qs[n]
		}

		// Separate runs WITHOUT cold resets: a big pool keeps the table
		// hot between queries, which is the effect under study.
		var sep exec.Stats
		for _, q := range queries {
			if _, err := exec.HashJoinQuery(env, db.Base(), q, &sep); err != nil {
				db.Pool.CloseFiles()
				return nil, err
			}
		}
		if err := db.ColdReset(); err != nil {
			db.Pool.CloseFiles()
			return nil, err
		}
		var shared exec.Stats
		if _, err := exec.SharedScanHash(env, db.Base(), queries, &shared); err != nil {
			db.Pool.CloseFiles()
			return nil, err
		}
		label := fmt.Sprintf("%5d frames (base = %d pages)", frames, basePages)
		out.Rows = append(out.Rows, AblationRow{
			Config:   label,
			Measured: Measurement{SimSeconds: sep.SimulatedSeconds(r.Model), PageReads: sep.IO.Reads(), Wall: sep.Wall},
			Note: fmt.Sprintf("separate; shared=%.3f sim-s, speedup %.2fx",
				shared.SimulatedSeconds(r.Model),
				sep.SimulatedSeconds(r.Model)/shared.SimulatedSeconds(r.Model)),
		})
		if err := db.Pool.CloseFiles(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunAblations executes every ablation and writes the report to w.
func (r *Runner) RunAblations(w io.Writer) error {
	for _, f := range []func() (*AblationResult, error){
		r.AblationLookupSharing,
		r.AblationFilterConversion,
		r.AblationRandSeqRatio,
		r.AblationGreedyOrder,
		r.AblationCompressedIndexes,
		r.AblationStatsUnderSkew,
		r.AblationPoolSize,
	} {
		res, err := f()
		if err != nil {
			return err
		}
		res.Format(w)
		fmt.Fprintln(w)
	}
	return nil
}

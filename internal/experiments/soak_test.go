package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFullScaleSoak reproduces the complete evaluation at the paper's
// full 2M-row scale. It takes ~1 minute and is opt-in:
//
//	MDXOPT_SOAK=1 go test ./internal/experiments -run TestFullScaleSoak -v
func TestFullScaleSoak(t *testing.T) {
	if os.Getenv("MDXOPT_SOAK") == "" {
		t.Skip("set MDXOPT_SOAK=1 for the full-scale run")
	}
	dir, err := os.MkdirTemp("", "mdxopt-soak")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	r, err := Open(filepath.Join(dir, "db"), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.RunAll(os.Stderr); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if err := r.RunAblations(os.Stderr); err != nil {
		t.Fatalf("RunAblations: %v", err)
	}
}

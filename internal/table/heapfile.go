package table

import (
	"errors"
	"fmt"
	"math"

	"mdxopt/internal/storage"
)

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

// HeapFile is an append-only table of fixed-width tuples. Page 0 holds
// metadata; data pages follow. Rows are densely numbered from 0 in append
// order, so row r lives at page 1+r/tpp, slot r%tpp.
type HeapFile struct {
	pool   *storage.Pool
	file   *storage.File
	schema Schema
	tpp    int // tuples per data page
	size   int // tuple size in bytes
	count  int64
}

// ErrRowOutOfRange is returned by FetchRow for rows >= Count().
var ErrRowOutOfRange = errors.New("table: row out of range")

// Create makes a new, empty heap file at path registered with pool.
func Create(pool *storage.Pool, path string, schema Schema) (*HeapFile, error) {
	if schema.TupleSize() == 0 || schema.TupleSize() > storage.PageSize {
		return nil, fmt.Errorf("table: unusable tuple size %d", schema.TupleSize())
	}
	file, err := pool.OpenFile(path)
	if err != nil {
		return nil, err
	}
	if file.NumPages() != 0 {
		return nil, fmt.Errorf("table: %s already exists", path)
	}
	h := &HeapFile{
		pool:   pool,
		file:   file,
		schema: schema,
		tpp:    tuplesPerPage(schema.TupleSize()),
		size:   schema.TupleSize(),
	}
	meta, err := pool.NewPage(file)
	if err != nil {
		return nil, err
	}
	writeMeta(meta.Data(), schema, 0)
	meta.MarkDirty()
	meta.Unpin()
	return h, nil
}

// Open opens an existing heap file and validates it against schema.
func Open(pool *storage.Pool, path string, schema Schema) (*HeapFile, error) {
	file, err := pool.OpenFile(path)
	if err != nil {
		return nil, err
	}
	if file.NumPages() == 0 {
		return nil, fmt.Errorf("table: %s is empty (not created)", path)
	}
	meta, err := pool.Fetch(file, 0)
	if err != nil {
		return nil, err
	}
	tupleSize, count, nKeys, nMeasures, err := readMeta(meta.Data())
	meta.Unpin()
	if err != nil {
		return nil, fmt.Errorf("table: %s: %w", path, err)
	}
	if tupleSize != schema.TupleSize() || nKeys != schema.NumKeys() || nMeasures != schema.NumMeasures() {
		return nil, fmt.Errorf("table: %s: stored layout (%d keys, %d measures, %dB) does not match schema %v",
			path, nKeys, nMeasures, tupleSize, schema)
	}
	return &HeapFile{
		pool:   pool,
		file:   file,
		schema: schema,
		tpp:    tuplesPerPage(tupleSize),
		size:   tupleSize,
		count:  count,
	}, nil
}

// Freeze returns a read-only clone of the heap bounded at the current
// row count. The clone shares the underlying file and buffer pool but
// its count never changes, so it never observes rows appended to the
// original afterwards: snapshot readers scan through a frozen clone
// while a live appender extends the heap, and the two touch disjoint
// bytes (appends write only slots at or past the frozen bound, and the
// metadata page is read only at Open). Appending through a frozen clone
// is a caller error.
func (h *HeapFile) Freeze() *HeapFile {
	c := *h
	return &c
}

// Schema returns the table's schema.
func (h *HeapFile) Schema() Schema { return h.schema }

// Count returns the number of rows.
func (h *HeapFile) Count() int64 { return h.count }

// DataPages returns the number of data pages the rows occupy. This is the
// quantity the cost model charges for a full scan.
func (h *HeapFile) DataPages() int64 {
	if h.count == 0 {
		return 0
	}
	return (h.count + int64(h.tpp) - 1) / int64(h.tpp)
}

// TuplesPerPage returns the number of tuples per data page.
func (h *HeapFile) TuplesPerPage() int { return h.tpp }

// File exposes the underlying storage file (for tests).
func (h *HeapFile) File() *storage.File { return h.file }

// Path returns the file path backing the heap.
func (h *HeapFile) Path() string { return h.file.Path() }

// Close persists the row count to the metadata page. The heap remains
// usable; Close may be called repeatedly.
func (h *HeapFile) Close() error {
	meta, err := h.pool.Fetch(h.file, 0)
	if err != nil {
		return err
	}
	writeMeta(meta.Data(), h.schema, h.count)
	meta.MarkDirty()
	meta.Unpin()
	return nil
}

// Appender batches appends into the current tail page. Callers must call
// Close when done; the heap's metadata is updated then.
type Appender struct {
	h    *HeapFile
	page *storage.Page
	slot int
	err  error
}

// NewAppender returns an appender positioned at the end of the heap.
// Appending to a heap with a partially filled tail page continues on that
// page.
func (h *HeapFile) NewAppender() *Appender {
	return &Appender{h: h, slot: int(h.count % int64(h.tpp))}
}

// Append adds one tuple. keys and measures must match the schema.
func (a *Appender) Append(keys []int32, measures []float64) error {
	if a.err != nil {
		return a.err
	}
	h := a.h
	if len(keys) != h.schema.NumKeys() || len(measures) != h.schema.NumMeasures() {
		return errSchemaMismatch
	}
	if a.page == nil {
		if err := a.pin(); err != nil {
			a.err = err
			return err
		}
	}
	encodeTuple(a.page.Data()[a.slot*h.size:], keys, measures)
	a.page.MarkDirty()
	a.slot++
	h.count++
	if a.slot == h.tpp {
		a.page.Unpin()
		a.page = nil
		a.slot = 0
	}
	return nil
}

// pin acquires the tail page, allocating it if the heap ends on a page
// boundary.
func (a *Appender) pin() error {
	h := a.h
	lastDataPage := uint32(h.count / int64(h.tpp)) // 0-based data page index
	needed := lastDataPage + 2                     // +1 metadata page, +1 one-past
	if h.file.NumPages() < needed {
		page, err := h.pool.NewPage(h.file)
		if err != nil {
			return err
		}
		a.page = page
		return nil
	}
	page, err := h.pool.Fetch(h.file, lastDataPage+1)
	if err != nil {
		return err
	}
	a.page = page
	return nil
}

// Close unpins the tail page and persists the row count.
func (a *Appender) Close() error {
	if a.page != nil {
		a.page.Unpin()
		a.page = nil
	}
	if a.err != nil {
		return a.err
	}
	return a.h.Close()
}

// Scan iterates over all rows in order, invoking fn with the row number
// and decoded columns. The key and measure slices are reused between
// calls; fn must copy anything it retains. A non-nil error from fn stops
// the scan and is returned.
func (h *HeapFile) Scan(fn func(row int64, keys []int32, measures []float64) error) error {
	return h.ScanRange(0, h.count, fn)
}

// ScanRange iterates over rows in [from, to), clamped to the table, in
// order. Distinct ranges may be scanned concurrently: the underlying
// buffer pool is safe for concurrent use and each call keeps its own
// decode buffers.
func (h *HeapFile) ScanRange(from, to int64, fn func(row int64, keys []int32, measures []float64) error) error {
	return h.ScanRangeBatches(from, to, func(b *Batch) error {
		for i := 0; i < b.N; i++ {
			keys, measures := b.Row(i)
			if err := fn(b.Start+int64(i), keys, measures); err != nil {
				return err
			}
		}
		return nil
	})
}

// Batch is one data page's worth of decoded tuples, produced by
// ScanRangeBatches. Keys and Measures are flat column-major-per-row
// arrays: row i's keys occupy Keys[i*nk:(i+1)*nk] and its measures
// Measures[i*nm:(i+1)*nm]. The backing arrays are reused from page to
// page; callers must copy anything they retain across calls.
type Batch struct {
	Start    int64     // row number of the batch's first tuple
	N        int       // number of tuples in the batch
	Keys     []int32   // N*nk decoded key columns
	Measures []float64 // N*nm decoded measure columns
	nk, nm   int
}

// Row returns the key and measure slices of tuple i of the batch.
func (b *Batch) Row(i int) ([]int32, []float64) {
	return b.Keys[i*b.nk : (i+1)*b.nk], b.Measures[i*b.nm : (i+1)*b.nm]
}

// NumKeys returns the number of key columns per tuple — the stride of
// the flat Keys array. Vectorized consumers index columns directly
// instead of slicing per row.
func (b *Batch) NumKeys() int { return b.nk }

// NumMeasures returns the number of measure columns per tuple — the
// stride of the flat Measures array.
func (b *Batch) NumMeasures() int { return b.nm }

// Clone returns a deep copy of the batch. ScanRangeBatches reuses the
// backing arrays from page to page; harnesses that capture batches
// across calls (the fold-kernel benchmark) clone them first.
func (b *Batch) Clone() *Batch {
	return &Batch{
		Start:    b.Start,
		N:        b.N,
		Keys:     append([]int32(nil), b.Keys[:b.N*b.nk]...),
		Measures: append([]float64(nil), b.Measures[:b.N*b.nm]...),
		nk:       b.nk,
		nm:       b.nm,
	}
}

// ScanRangeBatches iterates over rows in [from, to), clamped to the
// table, handing fn one whole page of decoded tuples at a time. The page
// is decoded into the batch's reusable buffers and unpinned before fn
// runs, so fn never executes with a pinned page and batches never alias
// pool frames. A non-nil error from fn stops the scan and is returned.
func (h *HeapFile) ScanRangeBatches(from, to int64, fn func(b *Batch) error) error {
	if from < 0 {
		from = 0
	}
	if to > h.count {
		to = h.count
	}
	if from >= to {
		return nil
	}
	nk, nm := h.schema.NumKeys(), h.schema.NumMeasures()
	b := &Batch{
		Keys:     make([]int32, h.tpp*nk),
		Measures: make([]float64, h.tpp*nm),
		nk:       nk,
		nm:       nm,
	}
	row := from
	for row < to {
		pageNo := uint32(row/int64(h.tpp)) + 1
		page, err := h.pool.Fetch(h.file, pageNo)
		if err != nil {
			return err
		}
		slot := int(row % int64(h.tpp))
		end := h.tpp
		if pageEnd := (row/int64(h.tpp) + 1) * int64(h.tpp); pageEnd > to {
			end = slot + int(to-row)
		}
		n := end - slot
		data := page.Data()
		for i := 0; i < n; i++ {
			decodeTuple(data[(slot+i)*h.size:], b.Keys[i*nk:(i+1)*nk], b.Measures[i*nm:(i+1)*nm])
		}
		page.Unpin()
		b.Start = row
		b.N = n
		if err := fn(b); err != nil {
			return err
		}
		row += int64(n)
	}
	return nil
}

// MakeBatch returns a Batch sized for one data page of the heap, for
// use with FetchPage. Callers reuse it across pages so the steady-state
// fetch loop performs no allocation.
func (h *HeapFile) MakeBatch() *Batch {
	nk, nm := h.schema.NumKeys(), h.schema.NumMeasures()
	return &Batch{
		Keys:     make([]int32, h.tpp*nk),
		Measures: make([]float64, h.tpp*nm),
		nk:       nk,
		nm:       nm,
	}
}

// FetchPage decodes the selected slots of one data page into b, pinning
// the page exactly once. page is the 0-based data page index and sel
// holds ascending page-relative slot numbers, so tuple i of the batch
// is row b.Start+int64(sel[i]). b must come from MakeBatch (or be at
// least as large); it is filled densely (b.N = len(sel)) and the page
// is unpinned before returning, so batches never alias pool frames.
func (h *HeapFile) FetchPage(b *Batch, page int64, sel []int32) error {
	first := page * int64(h.tpp)
	if page < 0 || first >= h.count {
		return fmt.Errorf("%w: page %d of %d", ErrRowOutOfRange, page, h.DataPages())
	}
	b.Start = first
	b.N = len(sel)
	if len(sel) == 0 {
		return nil
	}
	if last := first + int64(sel[len(sel)-1]); last >= h.count {
		return fmt.Errorf("%w: %d of %d", ErrRowOutOfRange, last, h.count)
	}
	var p storage.Page // stack-held pin: the probe loop must not allocate
	if err := h.pool.FetchInto(h.file, uint32(page)+1, &p); err != nil {
		return err
	}
	data := p.Data()
	nk, nm := b.nk, b.nm
	for i, s := range sel {
		decodeTuple(data[int(s)*h.size:], b.Keys[i*nk:(i+1)*nk], b.Measures[i*nm:(i+1)*nm])
	}
	p.Unpin()
	return nil
}

// FetchBatches reads the rows produced by next (ascending, -1 when
// exhausted) like FetchRows, but a page at a time: each page's rows are
// collected into a selection vector of page slots, decoded with one pin
// (FetchPage), and handed to fn as a batch — tuple i of the batch is
// row b.Start+int64(sel[i]). The batch and selection vector are reused
// between calls; fn must copy anything it retains.
func (h *HeapFile) FetchBatches(next func() int64, fn func(b *Batch, sel []int32) error) error {
	b := h.MakeBatch()
	sel := make([]int32, 0, h.tpp)
	page := int64(-1)
	flush := func() error {
		if page < 0 || len(sel) == 0 {
			return nil
		}
		if err := h.FetchPage(b, page, sel); err != nil {
			return err
		}
		return fn(b, sel)
	}
	for {
		row := next()
		if row < 0 {
			return flush()
		}
		if row >= h.count {
			return fmt.Errorf("%w: %d of %d", ErrRowOutOfRange, row, h.count)
		}
		if pg := row / int64(h.tpp); pg != page {
			if err := flush(); err != nil {
				return err
			}
			page = pg
			sel = sel[:0]
		}
		sel = append(sel, int32(row%int64(h.tpp)))
	}
}

// FetchRow reads a single row by number. keys and measures must have the
// schema's lengths. Random access goes through the pool, so consecutive
// fetches on the same page cost one physical read.
func (h *HeapFile) FetchRow(row int64, keys []int32, measures []float64) error {
	if row < 0 || row >= h.count {
		return fmt.Errorf("%w: %d of %d", ErrRowOutOfRange, row, h.count)
	}
	pageNo := uint32(row/int64(h.tpp)) + 1
	slot := int(row % int64(h.tpp))
	page, err := h.pool.Fetch(h.file, pageNo)
	if err != nil {
		return err
	}
	decodeTuple(page.Data()[slot*h.size:], keys, measures)
	page.Unpin()
	return nil
}

// FetchRows reads the rows whose numbers are produced by next (which
// returns -1 when exhausted) in ascending order, calling fn for each.
// Ascending order lets consecutive rows on one page share a single fetch.
func (h *HeapFile) FetchRows(next func() int64, fn func(row int64, keys []int32, measures []float64) error) error {
	keys := make([]int32, h.schema.NumKeys())
	measures := make([]float64, h.schema.NumMeasures())
	var page *storage.Page
	var pinned uint32
	defer func() {
		if page != nil {
			page.Unpin()
		}
	}()
	for {
		row := next()
		if row < 0 {
			return nil
		}
		if row >= h.count {
			return fmt.Errorf("%w: %d of %d", ErrRowOutOfRange, row, h.count)
		}
		pageNo := uint32(row/int64(h.tpp)) + 1
		if page == nil || pageNo != pinned {
			if page != nil {
				page.Unpin()
			}
			var err error
			page, err = h.pool.Fetch(h.file, pageNo)
			if err != nil {
				page = nil
				return err
			}
			pinned = pageNo
		}
		slot := int(row % int64(h.tpp))
		decodeTuple(page.Data()[slot*h.size:], keys, measures)
		if err := fn(row, keys, measures); err != nil {
			return err
		}
	}
}

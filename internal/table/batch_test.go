package table

import (
	"errors"
	"fmt"
	"testing"
)

// TestScanRangeBatchesMatchesScanRange checks the batched scan against
// the per-row scan tuple for tuple, across aligned and unaligned
// ranges.
func TestScanRangeBatchesMatchesScanRange(t *testing.T) {
	_, h := newHeap(t, testSchema())
	const rows = 1000 // several pages at 4 keys + 1 measure per tuple
	appendN(t, h, rows)
	tpp := int64(h.TuplesPerPage())

	ranges := [][2]int64{
		{0, rows},                // full table
		{0, tpp},                 // exactly one page
		{tpp, 2 * tpp},           // interior page
		{3, 5},                   // inside one page
		{tpp - 2, tpp + 3},       // straddles a page boundary
		{rows - 1, rows},         // last row
		{rows - 3, rows + 50},    // clamped at the end
		{-5, 2},                  // clamped at the start
		{rows + 1, rows + 10},    // fully out of range
		{2 * tpp, 2*tpp + tpp/2}, // half a page
	}
	for _, r := range ranges {
		type tuple struct {
			row  int64
			keys [4]int32
			m    float64
		}
		var want []tuple
		if err := h.ScanRange(r[0], r[1], func(row int64, keys []int32, measures []float64) error {
			want = append(want, tuple{row, [4]int32{keys[0], keys[1], keys[2], keys[3]}, measures[0]})
			return nil
		}); err != nil {
			t.Fatalf("ScanRange%v: %v", r, err)
		}
		var got []tuple
		if err := h.ScanRangeBatches(r[0], r[1], func(b *Batch) error {
			if b.N <= 0 || b.N > h.TuplesPerPage() {
				t.Fatalf("range %v: batch of %d tuples (tpp %d)", r, b.N, h.TuplesPerPage())
			}
			// A batch never crosses a page boundary.
			if b.Start/tpp != (b.Start+int64(b.N)-1)/tpp {
				t.Fatalf("range %v: batch [%d, %d) spans pages", r, b.Start, b.Start+int64(b.N))
			}
			for i := 0; i < b.N; i++ {
				keys, measures := b.Row(i)
				got = append(got, tuple{b.Start + int64(i), [4]int32{keys[0], keys[1], keys[2], keys[3]}, measures[0]})
			}
			return nil
		}); err != nil {
			t.Fatalf("ScanRangeBatches%v: %v", r, err)
		}
		if len(got) != len(want) {
			t.Fatalf("range %v: %d tuples batched, %d per-row", r, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("range %v tuple %d: batched %+v, per-row %+v", r, i, got[i], want[i])
			}
		}
	}
}

// TestScanRangeBatchesStopsOnError checks that a callback error aborts
// the scan immediately and propagates.
func TestScanRangeBatchesStopsOnError(t *testing.T) {
	_, h := newHeap(t, testSchema())
	appendN(t, h, 1000)
	boom := errors.New("boom")
	calls := 0
	err := h.ScanRangeBatches(0, h.Count(), func(b *Batch) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("callback ran %d times after error, want 2", calls)
	}
}

// TestBatchBuffersAreReused documents the aliasing contract: the batch
// arrays are reused from page to page, so retained slices are
// overwritten.
func TestBatchBuffersAreReused(t *testing.T) {
	_, h := newHeap(t, testSchema())
	appendN(t, h, 3*h.TuplesPerPage())
	var first []int32
	batches := 0
	if err := h.ScanRangeBatches(0, h.Count(), func(b *Batch) error {
		batches++
		if first == nil {
			keys, _ := b.Row(0)
			first = keys // deliberately retained without copying
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if batches != 3 {
		t.Fatalf("got %d batches, want 3", batches)
	}
	// After the scan the retained slice aliases the LAST page's first
	// tuple, not the first page's.
	wantRow := int64(2) * int64(h.TuplesPerPage())
	if first[0] != int32(wantRow) {
		t.Fatalf("retained slice holds key %d, want %d (buffers must be reused)", first[0], wantRow)
	}
}

func TestFetchBatchesMatchesFetchRows(t *testing.T) {
	const n = 2500
	pool, h := newHeap(t, testSchema())
	appendN(t, h, n)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Row sets exercising page boundaries, singletons, dense runs, and
	// cross-page strides.
	tpp := int64(h.TuplesPerPage())
	rowSets := [][]int64{
		{},
		{0},
		{n - 1},
		{0, 1, 2, tpp - 1, tpp, tpp + 1, 2*tpp - 1, 2 * tpp, n - 1},
	}
	var dense, stride []int64
	for r := int64(0); r < n; r++ {
		dense = append(dense, r)
		if r%97 == 0 {
			stride = append(stride, r)
		}
	}
	rowSets = append(rowSets, dense, stride)

	iter := func(rows []int64) func() int64 {
		i := 0
		return func() int64 {
			if i == len(rows) {
				return -1
			}
			r := rows[i]
			i++
			return r
		}
	}

	for si, rows := range rowSets {
		type tuple struct {
			row  int64
			keys []int32
			ms   []float64
		}
		var want []tuple
		err := h.FetchRows(iter(rows), func(row int64, keys []int32, measures []float64) error {
			want = append(want, tuple{row, append([]int32(nil), keys...), append([]float64(nil), measures...)})
			return nil
		})
		if err != nil {
			t.Fatalf("set %d: FetchRows: %v", si, err)
		}

		pool.ResetStats()
		var got []tuple
		pages := 0
		err = h.FetchBatches(iter(rows), func(b *Batch, sel []int32) error {
			pages++
			if b.N != len(sel) {
				return fmt.Errorf("batch N=%d, sel len=%d", b.N, len(sel))
			}
			for i, s := range sel {
				keys, ms := b.Row(i)
				got = append(got, tuple{b.Start + int64(s), append([]int32(nil), keys...), append([]float64(nil), ms...)})
			}
			return nil
		})
		if err != nil {
			t.Fatalf("set %d: FetchBatches: %v", si, err)
		}
		if len(got) != len(want) {
			t.Fatalf("set %d: FetchBatches %d tuples, FetchRows %d", si, len(got), len(want))
		}
		for i := range want {
			if got[i].row != want[i].row {
				t.Fatalf("set %d tuple %d: row %d, want %d", si, i, got[i].row, want[i].row)
			}
			for k := range want[i].keys {
				if got[i].keys[k] != want[i].keys[k] {
					t.Fatalf("set %d row %d: key %d = %d, want %d", si, got[i].row, k, got[i].keys[k], want[i].keys[k])
				}
			}
			for m := range want[i].ms {
				if got[i].ms[m] != want[i].ms[m] {
					t.Fatalf("set %d row %d: measure %d = %v, want %v", si, got[i].row, m, got[i].ms[m], want[i].ms[m])
				}
			}
		}
		// One pin (at most one physical read) per distinct page.
		distinct := make(map[int64]bool)
		for _, r := range rows {
			distinct[r/tpp] = true
		}
		if pages != len(distinct) {
			t.Fatalf("set %d: fn called %d times, want %d pages", si, pages, len(distinct))
		}
	}
}

func TestFetchPageErrors(t *testing.T) {
	_, h := newHeap(t, testSchema())
	appendN(t, h, 100) // less than one full page at 24B tuples
	b := h.MakeBatch()
	if err := h.FetchPage(b, 5, []int32{0}); !errors.Is(err, ErrRowOutOfRange) {
		t.Fatalf("FetchPage past EOF err = %v, want ErrRowOutOfRange", err)
	}
	if err := h.FetchPage(b, -1, []int32{0}); !errors.Is(err, ErrRowOutOfRange) {
		t.Fatalf("FetchPage(-1) err = %v, want ErrRowOutOfRange", err)
	}
	// Selecting a slot past the row count on the last page fails.
	if err := h.FetchPage(b, 0, []int32{100}); !errors.Is(err, ErrRowOutOfRange) {
		t.Fatalf("FetchPage slot past count err = %v, want ErrRowOutOfRange", err)
	}
	// Empty selection succeeds without touching the pool.
	if err := h.FetchPage(b, 0, nil); err != nil {
		t.Fatalf("FetchPage empty sel: %v", err)
	}
	if b.N != 0 {
		t.Fatalf("empty-sel batch N = %d", b.N)
	}
	// FetchBatches propagates out-of-range rows from the iterator.
	rows := []int64{50, 150}
	i := 0
	err := h.FetchBatches(func() int64 {
		if i == len(rows) {
			return -1
		}
		r := rows[i]
		i++
		return r
	}, func(b *Batch, sel []int32) error { return nil })
	if !errors.Is(err, ErrRowOutOfRange) {
		t.Fatalf("FetchBatches out-of-range err = %v, want ErrRowOutOfRange", err)
	}
}

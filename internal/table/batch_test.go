package table

import (
	"errors"
	"testing"
)

// TestScanRangeBatchesMatchesScanRange checks the batched scan against
// the per-row scan tuple for tuple, across aligned and unaligned
// ranges.
func TestScanRangeBatchesMatchesScanRange(t *testing.T) {
	_, h := newHeap(t, testSchema())
	const rows = 1000 // several pages at 4 keys + 1 measure per tuple
	appendN(t, h, rows)
	tpp := int64(h.TuplesPerPage())

	ranges := [][2]int64{
		{0, rows},                // full table
		{0, tpp},                 // exactly one page
		{tpp, 2 * tpp},           // interior page
		{3, 5},                   // inside one page
		{tpp - 2, tpp + 3},       // straddles a page boundary
		{rows - 1, rows},         // last row
		{rows - 3, rows + 50},    // clamped at the end
		{-5, 2},                  // clamped at the start
		{rows + 1, rows + 10},    // fully out of range
		{2 * tpp, 2*tpp + tpp/2}, // half a page
	}
	for _, r := range ranges {
		type tuple struct {
			row  int64
			keys [4]int32
			m    float64
		}
		var want []tuple
		if err := h.ScanRange(r[0], r[1], func(row int64, keys []int32, measures []float64) error {
			want = append(want, tuple{row, [4]int32{keys[0], keys[1], keys[2], keys[3]}, measures[0]})
			return nil
		}); err != nil {
			t.Fatalf("ScanRange%v: %v", r, err)
		}
		var got []tuple
		if err := h.ScanRangeBatches(r[0], r[1], func(b *Batch) error {
			if b.N <= 0 || b.N > h.TuplesPerPage() {
				t.Fatalf("range %v: batch of %d tuples (tpp %d)", r, b.N, h.TuplesPerPage())
			}
			// A batch never crosses a page boundary.
			if b.Start/tpp != (b.Start+int64(b.N)-1)/tpp {
				t.Fatalf("range %v: batch [%d, %d) spans pages", r, b.Start, b.Start+int64(b.N))
			}
			for i := 0; i < b.N; i++ {
				keys, measures := b.Row(i)
				got = append(got, tuple{b.Start + int64(i), [4]int32{keys[0], keys[1], keys[2], keys[3]}, measures[0]})
			}
			return nil
		}); err != nil {
			t.Fatalf("ScanRangeBatches%v: %v", r, err)
		}
		if len(got) != len(want) {
			t.Fatalf("range %v: %d tuples batched, %d per-row", r, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("range %v tuple %d: batched %+v, per-row %+v", r, i, got[i], want[i])
			}
		}
	}
}

// TestScanRangeBatchesStopsOnError checks that a callback error aborts
// the scan immediately and propagates.
func TestScanRangeBatchesStopsOnError(t *testing.T) {
	_, h := newHeap(t, testSchema())
	appendN(t, h, 1000)
	boom := errors.New("boom")
	calls := 0
	err := h.ScanRangeBatches(0, h.Count(), func(b *Batch) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("callback ran %d times after error, want 2", calls)
	}
}

// TestBatchBuffersAreReused documents the aliasing contract: the batch
// arrays are reused from page to page, so retained slices are
// overwritten.
func TestBatchBuffersAreReused(t *testing.T) {
	_, h := newHeap(t, testSchema())
	appendN(t, h, 3*h.TuplesPerPage())
	var first []int32
	batches := 0
	if err := h.ScanRangeBatches(0, h.Count(), func(b *Batch) error {
		batches++
		if first == nil {
			keys, _ := b.Row(0)
			first = keys // deliberately retained without copying
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if batches != 3 {
		t.Fatalf("got %d batches, want 3", batches)
	}
	// After the scan the retained slice aliases the LAST page's first
	// tuple, not the first page's.
	wantRow := int64(2) * int64(h.TuplesPerPage())
	if first[0] != int32(wantRow) {
		t.Fatalf("retained slice holds key %d, want %d (buffers must be reused)", first[0], wantRow)
	}
}

// Package table implements fixed-width tuple storage on top of the paged
// storage layer: schemas, a binary tuple codec, and append-only heap
// files with dense row numbering.
//
// Every table in the system — the base fact table, materialized
// group-bys, and dimension tables — is a heap file whose tuples are a
// run of int32 key columns followed by a run of float64 measure columns.
// Rows are densely numbered from zero, which makes the bitmap join
// indexes (internal/bitmap) a direct positional map onto the file.
package table

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mdxopt/internal/storage"
)

// Schema describes a table: a run of int32 key columns followed by a run
// of float64 measure columns.
type Schema struct {
	KeyNames     []string
	MeasureNames []string
}

// NewSchema builds a schema with the given key and measure column names.
func NewSchema(keys, measures []string) Schema {
	return Schema{KeyNames: keys, MeasureNames: measures}
}

// NumKeys returns the number of int32 key columns.
func (s Schema) NumKeys() int { return len(s.KeyNames) }

// NumMeasures returns the number of float64 measure columns.
func (s Schema) NumMeasures() int { return len(s.MeasureNames) }

// TupleSize returns the encoded size of one tuple in bytes.
func (s Schema) TupleSize() int { return 4*len(s.KeyNames) + 8*len(s.MeasureNames) }

// KeyIndex returns the position of the named key column, or -1.
func (s Schema) KeyIndex(name string) int {
	for i, n := range s.KeyNames {
		if n == name {
			return i
		}
	}
	return -1
}

func (s Schema) String() string {
	return fmt.Sprintf("keys=%v measures=%v", s.KeyNames, s.MeasureNames)
}

// Equal reports whether two schemas have identical columns.
func (s Schema) Equal(o Schema) bool {
	if len(s.KeyNames) != len(o.KeyNames) || len(s.MeasureNames) != len(o.MeasureNames) {
		return false
	}
	for i := range s.KeyNames {
		if s.KeyNames[i] != o.KeyNames[i] {
			return false
		}
	}
	for i := range s.MeasureNames {
		if s.MeasureNames[i] != o.MeasureNames[i] {
			return false
		}
	}
	return true
}

// encodeTuple writes keys and measures into dst using little-endian
// encoding. dst must be at least TupleSize bytes.
func encodeTuple(dst []byte, keys []int32, measures []float64) {
	off := 0
	for _, k := range keys {
		binary.LittleEndian.PutUint32(dst[off:], uint32(k))
		off += 4
	}
	for _, m := range measures {
		binary.LittleEndian.PutUint64(dst[off:], mathFloat64bits(m))
		off += 8
	}
}

// decodeTuple reads a tuple from src into keys and measures, which must
// have the schema's lengths.
func decodeTuple(src []byte, keys []int32, measures []float64) {
	off := 0
	for i := range keys {
		keys[i] = int32(binary.LittleEndian.Uint32(src[off:]))
		off += 4
	}
	for i := range measures {
		measures[i] = mathFloat64frombits(binary.LittleEndian.Uint64(src[off:]))
		off += 8
	}
}

var errSchemaMismatch = errors.New("table: value count does not match schema")

// metadata page layout (page 0):
//
//	[0:4]   magic "MDXT"
//	[4:8]   version (1)
//	[8:12]  tuple size
//	[12:20] row count
//	[20:24] number of key columns
//	[24:28] number of measure columns
const (
	metaMagic   = "MDXT"
	metaVersion = 1
)

func writeMeta(buf []byte, schema Schema, count int64) {
	copy(buf[0:4], metaMagic)
	binary.LittleEndian.PutUint32(buf[4:], metaVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(schema.TupleSize()))
	binary.LittleEndian.PutUint64(buf[12:], uint64(count))
	binary.LittleEndian.PutUint32(buf[20:], uint32(schema.NumKeys()))
	binary.LittleEndian.PutUint32(buf[24:], uint32(schema.NumMeasures()))
}

func readMeta(buf []byte) (tupleSize int, count int64, nKeys, nMeasures int, err error) {
	if string(buf[0:4]) != metaMagic {
		return 0, 0, 0, 0, errors.New("table: bad magic (not a heap file)")
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != metaVersion {
		return 0, 0, 0, 0, fmt.Errorf("table: unsupported version %d", v)
	}
	tupleSize = int(binary.LittleEndian.Uint32(buf[8:]))
	count = int64(binary.LittleEndian.Uint64(buf[12:]))
	nKeys = int(binary.LittleEndian.Uint32(buf[20:]))
	nMeasures = int(binary.LittleEndian.Uint32(buf[24:]))
	return tupleSize, count, nKeys, nMeasures, nil
}

// tuplesPerPage returns how many tuples of the given size fit on one data
// page.
func tuplesPerPage(tupleSize int) int {
	return storage.PageSize / tupleSize
}

package table

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"

	"mdxopt/internal/storage"
)

func testSchema() Schema {
	return NewSchema([]string{"a", "b", "c", "d"}, []string{"m"})
}

func newHeap(t *testing.T, schema Schema) (*storage.Pool, *HeapFile) {
	t.Helper()
	pool := storage.NewPool(16)
	h, err := Create(pool, filepath.Join(t.TempDir(), "t.heap"), schema)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return pool, h
}

func appendN(t *testing.T, h *HeapFile, n int) {
	t.Helper()
	app := h.NewAppender()
	for i := 0; i < n; i++ {
		if err := app.Append([]int32{int32(i), int32(i * 2), int32(i * 3), int32(i % 7)}, []float64{float64(i) / 2}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatalf("Close appender: %v", err)
	}
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.TupleSize() != 4*4+8 {
		t.Fatalf("TupleSize = %d, want 24", s.TupleSize())
	}
	if s.KeyIndex("c") != 2 {
		t.Fatalf("KeyIndex(c) = %d, want 2", s.KeyIndex("c"))
	}
	if s.KeyIndex("zz") != -1 {
		t.Fatal("KeyIndex of missing column should be -1")
	}
	if !s.Equal(testSchema()) {
		t.Fatal("identical schemas not Equal")
	}
	if s.Equal(NewSchema([]string{"a"}, nil)) {
		t.Fatal("different schemas Equal")
	}
}

func TestHeapAppendScanRoundTrip(t *testing.T) {
	const n = 2500 // spans several pages at 24B tuples
	_, h := newHeap(t, testSchema())
	appendN(t, h, n)
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	var seen int64
	err := h.Scan(func(row int64, keys []int32, measures []float64) error {
		if row != seen {
			return fmt.Errorf("row %d out of order (want %d)", row, seen)
		}
		i := int(row)
		if keys[0] != int32(i) || keys[1] != int32(i*2) || keys[2] != int32(i*3) || keys[3] != int32(i%7) {
			return fmt.Errorf("row %d keys = %v", row, keys)
		}
		if measures[0] != float64(i)/2 {
			return fmt.Errorf("row %d measure = %v", row, measures[0])
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("scanned %d rows, want %d", seen, n)
	}
}

func TestHeapFetchRow(t *testing.T) {
	_, h := newHeap(t, testSchema())
	appendN(t, h, 1000)
	keys := make([]int32, 4)
	ms := make([]float64, 1)
	for _, row := range []int64{0, 1, 339, 340, 999} {
		if err := h.FetchRow(row, keys, ms); err != nil {
			t.Fatalf("FetchRow(%d): %v", row, err)
		}
		if keys[0] != int32(row) {
			t.Fatalf("FetchRow(%d) keys[0] = %d", row, keys[0])
		}
	}
	if err := h.FetchRow(1000, keys, ms); !errors.Is(err, ErrRowOutOfRange) {
		t.Fatalf("FetchRow(1000) err = %v, want ErrRowOutOfRange", err)
	}
	if err := h.FetchRow(-1, keys, ms); !errors.Is(err, ErrRowOutOfRange) {
		t.Fatalf("FetchRow(-1) err = %v, want ErrRowOutOfRange", err)
	}
}

func TestHeapFetchRowsSharesPages(t *testing.T) {
	pool, h := newHeap(t, testSchema())
	appendN(t, h, 1000)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	// All rows on the first data page: one physical read total.
	rows := []int64{0, 1, 2, 3, 10}
	i := 0
	next := func() int64 {
		if i == len(rows) {
			return -1
		}
		r := rows[i]
		i++
		return r
	}
	var got []int64
	err := h.FetchRows(next, func(row int64, keys []int32, measures []float64) error {
		got = append(got, row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("fetched %d rows, want %d", len(got), len(rows))
	}
	if reads := pool.Stats().Reads(); reads != 1 {
		t.Fatalf("physical reads = %d, want 1 (page sharing)", reads)
	}
}

func TestHeapPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "persist.heap")
	pool := storage.NewPool(16)
	h, err := Create(pool, path, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	app := h.NewAppender()
	for i := 0; i < 777; i++ {
		app.Append([]int32{int32(i), 0, 0, 0}, []float64{1})
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	h.File().Disk().Close()

	pool2 := storage.NewPool(16)
	h2, err := Open(pool2, path, testSchema())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if h2.Count() != 777 {
		t.Fatalf("Count after reopen = %d, want 777", h2.Count())
	}
	keys := make([]int32, 4)
	ms := make([]float64, 1)
	if err := h2.FetchRow(776, keys, ms); err != nil {
		t.Fatal(err)
	}
	if keys[0] != 776 {
		t.Fatalf("row 776 keys[0] = %d", keys[0])
	}
}

func TestHeapAppendResumesPartialPage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "resume.heap")
	pool := storage.NewPool(16)
	h, err := Create(pool, path, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	app := h.NewAppender()
	app.Append([]int32{1, 2, 3, 4}, []float64{5})
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	// Append again with a fresh appender: must land on the same page.
	app2 := h.NewAppender()
	app2.Append([]int32{6, 7, 8, 9}, []float64{10})
	if err := app2.Close(); err != nil {
		t.Fatal(err)
	}
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.DataPages() != 1 {
		t.Fatalf("DataPages = %d, want 1", h.DataPages())
	}
	keys := make([]int32, 4)
	ms := make([]float64, 1)
	if err := h.FetchRow(1, keys, ms); err != nil {
		t.Fatal(err)
	}
	if keys[0] != 6 || ms[0] != 10 {
		t.Fatalf("row 1 = %v %v", keys, ms)
	}
}

func TestHeapSchemaMismatchOnOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mismatch.heap")
	pool := storage.NewPool(16)
	h, err := Create(pool, path, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	pool.FlushAll()
	h.File().Disk().Close()

	pool2 := storage.NewPool(16)
	if _, err := Open(pool2, path, NewSchema([]string{"x"}, nil)); err == nil {
		t.Fatal("Open with wrong schema succeeded")
	}
}

func TestHeapAppendWrongArity(t *testing.T) {
	_, h := newHeap(t, testSchema())
	app := h.NewAppender()
	defer app.Close()
	if err := app.Append([]int32{1}, []float64{2}); err == nil {
		t.Fatal("Append with wrong arity succeeded")
	}
}

func TestHeapScanStopsOnError(t *testing.T) {
	_, h := newHeap(t, testSchema())
	appendN(t, h, 100)
	boom := errors.New("stop")
	var n int
	err := h.Scan(func(row int64, keys []int32, measures []float64) error {
		n++
		if row == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Scan err = %v, want injected", err)
	}
	if n != 11 {
		t.Fatalf("scanned %d rows before stopping, want 11", n)
	}
}

func TestHeapCreateExistingFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dup.heap")
	pool := storage.NewPool(16)
	if _, err := Create(pool, path, testSchema()); err != nil {
		t.Fatal(err)
	}
	pool.FlushAll()
	if _, err := Create(pool, path, testSchema()); err == nil {
		t.Fatal("Create over existing file succeeded")
	}
}

func TestTupleCodecRoundTripQuick(t *testing.T) {
	buf := make([]byte, 4*4+8*2)
	f := func(a, b, c, d int32, m1, m2 float64) bool {
		keys := []int32{a, b, c, d}
		ms := []float64{m1, m2}
		encodeTuple(buf, keys, ms)
		gotK := make([]int32, 4)
		gotM := make([]float64, 2)
		decodeTuple(buf, gotK, gotM)
		for i := range keys {
			if gotK[i] != keys[i] {
				return false
			}
		}
		for i := range ms {
			// NaN is fine to store; compare bit patterns.
			if mathFloat64bits(gotM[i]) != mathFloat64bits(ms[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeapDataPages(t *testing.T) {
	_, h := newHeap(t, testSchema())
	if h.DataPages() != 0 {
		t.Fatalf("empty heap DataPages = %d", h.DataPages())
	}
	tpp := h.TuplesPerPage()
	appendN(t, h, tpp)
	if h.DataPages() != 1 {
		t.Fatalf("full page DataPages = %d, want 1", h.DataPages())
	}
	app := h.NewAppender()
	app.Append([]int32{0, 0, 0, 0}, []float64{0})
	app.Close()
	if h.DataPages() != 2 {
		t.Fatalf("one tuple over DataPages = %d, want 2", h.DataPages())
	}
}

func TestScanRange(t *testing.T) {
	_, h := newHeap(t, testSchema())
	appendN(t, h, 1000)
	tpp := int64(h.TuplesPerPage())

	cases := []struct{ from, to int64 }{
		{0, 1000}, {0, 1}, {999, 1000}, {100, 100}, {tpp - 1, tpp + 1},
		{tpp, 2 * tpp}, {5, 995}, {-10, 20}, {990, 2000},
	}
	for _, c := range cases {
		wantFrom, wantTo := c.from, c.to
		if wantFrom < 0 {
			wantFrom = 0
		}
		if wantTo > 1000 {
			wantTo = 1000
		}
		var got []int64
		err := h.ScanRange(c.from, c.to, func(row int64, keys []int32, ms []float64) error {
			if keys[0] != int32(row) {
				t.Fatalf("row %d keys[0]=%d", row, keys[0])
			}
			got = append(got, row)
			return nil
		})
		if err != nil {
			t.Fatalf("ScanRange(%d,%d): %v", c.from, c.to, err)
		}
		wantN := wantTo - wantFrom
		if wantN < 0 {
			wantN = 0
		}
		if int64(len(got)) != wantN {
			t.Fatalf("ScanRange(%d,%d) yielded %d rows, want %d", c.from, c.to, len(got), wantN)
		}
		for i, row := range got {
			if row != wantFrom+int64(i) {
				t.Fatalf("ScanRange(%d,%d) row %d = %d", c.from, c.to, i, row)
			}
		}
	}
}

func TestScanRangePartitionsCoverScan(t *testing.T) {
	_, h := newHeap(t, testSchema())
	appendN(t, h, 777)
	var full []int64
	h.Scan(func(row int64, keys []int32, ms []float64) error {
		full = append(full, row)
		return nil
	})
	// Three uneven partitions must cover exactly the full scan.
	var parts []int64
	for _, r := range [][2]int64{{0, 300}, {300, 301}, {301, 777}} {
		h.ScanRange(r[0], r[1], func(row int64, keys []int32, ms []float64) error {
			parts = append(parts, row)
			return nil
		})
	}
	if len(parts) != len(full) {
		t.Fatalf("partitions yielded %d rows, full scan %d", len(parts), len(full))
	}
	for i := range full {
		if parts[i] != full[i] {
			t.Fatalf("row %d: partition %d, full %d", i, parts[i], full[i])
		}
	}
}

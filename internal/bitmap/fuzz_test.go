package bitmap

import (
	"encoding/binary"
	"testing"
)

// FuzzDecompressWords feeds arbitrary byte strings to the decompressor:
// it must either reconstruct cleanly or reject with ErrCorruptStream,
// never panic or overrun.
func FuzzDecompressWords(f *testing.F) {
	good := CompressWords([]uint64{0, 5, allOnes, allOnes, 7, 0, 0, 0})
	seed := make([]byte, len(good)*8)
	for i, w := range good {
		binary.LittleEndian.PutUint64(seed[i*8:], w)
	}
	f.Add(seed, 8)
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 100)

	f.Fuzz(func(t *testing.T, raw []byte, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		stream := make([]uint64, len(raw)/8)
		for i := range stream {
			stream[i] = binary.LittleEndian.Uint64(raw[i*8:])
		}
		dst := make([]uint64, n)
		if err := DecompressWords(stream, dst); err != nil {
			return // rejection is fine
		}
		// Accepted streams must round-trip through re-compression.
		again := CompressWords(dst)
		dst2 := make([]uint64, n)
		if err := DecompressWords(again, dst2); err != nil {
			t.Fatalf("re-compressed stream rejected: %v", err)
		}
		for i := range dst {
			if dst[i] != dst2[i] {
				t.Fatalf("round trip diverged at word %d", i)
			}
		}
	})
}

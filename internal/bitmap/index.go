package bitmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"mdxopt/internal/storage"
	"mdxopt/internal/table"
)

// Index is a persistent bitmap join index over one key column of a heap
// file: for every distinct value of the column it stores a bitset of the
// rows holding that value. Bitmaps are loaded through the buffer pool on
// first use (so index-lookup I/O is accounted) and cached in memory until
// DropCache. Index is safe for concurrent use; cached bitmaps are shared
// and must be treated as immutable by callers.
type Index struct {
	pool     *storage.Pool
	file     *storage.File
	colName  string
	nbits    int64
	values   []int32       // sorted distinct values
	valuePos map[int32]int // value -> position in values
	pagesPer uint32        // pages occupied by one bitmap

	mu    sync.Mutex
	cache map[int32]*Bitset
}

// index file layout:
//
//	page 0: [0:4] magic "MDXI", [4:8] version, [8:16] nbits,
//	        [16:20] value count, [20:22] column-name length, name bytes,
//	        then the sorted values (4 bytes each).
//	page 1+: bitmaps, each aligned to a page boundary, in value order.
const (
	idxMagic   = "MDXI"
	idxVersion = 1
)

// maxValues is the per-index cardinality supported by the single-page
// directory.
func maxValues(nameLen int) int { return (storage.PageSize - 22 - nameLen) / 4 }

// wordsPerBitmap returns the number of 64-bit words in each bitmap.
func wordsPerBitmap(nbits int64) int64 { return (nbits + wordBits - 1) / wordBits }

// pagesPerBitmap returns the number of pages each page-aligned bitmap
// occupies.
func pagesPerBitmap(nbits int64) uint32 {
	bytes := wordsPerBitmap(nbits) * 8
	return uint32((bytes + storage.PageSize - 1) / storage.PageSize)
}

// BuildColumnBitmaps scans key column col of h and returns a bitmap per
// distinct value.
func BuildColumnBitmaps(h *table.HeapFile, col int) (map[int32]*Bitset, error) {
	if col < 0 || col >= h.Schema().NumKeys() {
		return nil, fmt.Errorf("bitmap: column %d out of range for %v", col, h.Schema())
	}
	out := make(map[int32]*Bitset)
	n := h.Count()
	var y storage.Yielder
	err := h.Scan(func(row int64, keys []int32, measures []float64) error {
		y.Tick()
		v := keys[col]
		bs, ok := out[v]
		if !ok {
			bs = New(n)
			out[v] = bs
		}
		bs.Set(row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Create writes a new index file at path containing the given bitmaps,
// all of which must have length nbits.
func Create(pool *storage.Pool, path, colName string, nbits int64, bitmaps map[int32]*Bitset) error {
	if len(colName) > 255 {
		return errors.New("bitmap: column name too long")
	}
	if len(bitmaps) > maxValues(len(colName)) {
		return fmt.Errorf("bitmap: cardinality %d exceeds index directory capacity %d",
			len(bitmaps), maxValues(len(colName)))
	}
	values := make([]int32, 0, len(bitmaps))
	for v, bs := range bitmaps {
		if bs.Len() != nbits {
			return fmt.Errorf("bitmap: bitmap for value %d has length %d, want %d", v, bs.Len(), nbits)
		}
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })

	file, err := pool.OpenFile(path)
	if err != nil {
		return err
	}
	if file.NumPages() != 0 {
		return fmt.Errorf("bitmap: %s already exists", path)
	}
	meta, err := pool.NewPage(file)
	if err != nil {
		return err
	}
	buf := meta.Data()
	copy(buf[0:4], idxMagic)
	binary.LittleEndian.PutUint32(buf[4:], idxVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(nbits))
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(values)))
	binary.LittleEndian.PutUint16(buf[20:], uint16(len(colName)))
	copy(buf[22:], colName)
	off := 22 + len(colName)
	for _, v := range values {
		binary.LittleEndian.PutUint32(buf[off:], uint32(v))
		off += 4
	}
	meta.MarkDirty()
	meta.Unpin()

	perPage := storage.PageSize / 8
	var y storage.Yielder
	for _, v := range values {
		remaining := bitmaps[v].Words()
		pages := int(pagesPerBitmap(nbits))
		for p := 0; p < pages; p++ {
			y.Tick()
			page, err := pool.NewPage(file)
			if err != nil {
				return err
			}
			data := page.Data()
			n := perPage
			if n > len(remaining) {
				n = len(remaining)
			}
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(data[i*8:], remaining[i])
			}
			remaining = remaining[n:]
			page.MarkDirty()
			page.Unpin()
		}
	}
	return nil
}

// BuildAndCreate builds bitmaps for key column col of h and writes them
// to an index file at path.
func BuildAndCreate(pool *storage.Pool, path string, h *table.HeapFile, col int) error {
	bitmaps, err := BuildColumnBitmaps(h, col)
	if err != nil {
		return err
	}
	return Create(pool, path, h.Schema().KeyNames[col], h.Count(), bitmaps)
}

// Open opens an existing index file of either format, dispatching on the
// file's magic number.
func Open(pool *storage.Pool, path string) (JoinIndex, error) {
	file, err := pool.OpenFile(path)
	if err != nil {
		return nil, err
	}
	if file.NumPages() == 0 {
		return nil, fmt.Errorf("bitmap: %s is empty", path)
	}
	meta, err := pool.Fetch(file, 0)
	if err != nil {
		return nil, err
	}
	defer meta.Unpin()
	buf := meta.Data()
	switch string(buf[0:4]) {
	case idxMagic:
		return openUncompressed(pool, file, buf, path)
	case cidxMagic:
		return openCompressed(pool, file, buf, path)
	default:
		return nil, fmt.Errorf("bitmap: %s: bad magic", path)
	}
}

// openUncompressed opens a file already identified as an uncompressed
// index.
func openUncompressed(pool *storage.Pool, file *storage.File, buf []byte, path string) (*Index, error) {
	if v := binary.LittleEndian.Uint32(buf[4:]); v != idxVersion {
		return nil, fmt.Errorf("bitmap: %s: unsupported version %d", path, v)
	}
	nbits := int64(binary.LittleEndian.Uint64(buf[8:]))
	nvals := int(binary.LittleEndian.Uint32(buf[16:]))
	nameLen := int(binary.LittleEndian.Uint16(buf[20:]))
	colName := string(buf[22 : 22+nameLen])
	off := 22 + nameLen
	values := make([]int32, nvals)
	valuePos := make(map[int32]int, nvals)
	for i := 0; i < nvals; i++ {
		values[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
		valuePos[values[i]] = i
		off += 4
	}
	return &Index{
		pool:     pool,
		file:     file,
		colName:  colName,
		nbits:    nbits,
		values:   values,
		valuePos: valuePos,
		pagesPer: pagesPerBitmap(nbits),
		cache:    make(map[int32]*Bitset),
	}, nil
}

// ColName returns the indexed column's name.
func (ix *Index) ColName() string { return ix.colName }

// NBits returns the indexed table's row count.
func (ix *Index) NBits() int64 { return ix.nbits }

// Values returns the sorted distinct values present in the index.
func (ix *Index) Values() []int32 { return ix.values }

// PagesPerBitmap returns the on-disk page count of one value's bitmap;
// the cost model charges this for each index lookup.
func (ix *Index) PagesPerBitmap() int64 { return int64(ix.pagesPer) }

// DropCache forgets all in-memory bitmaps, forcing subsequent lookups to
// re-read pages (used together with Pool.FlushAll for cold-cache runs).
func (ix *Index) DropCache() {
	ix.mu.Lock()
	ix.cache = make(map[int32]*Bitset)
	ix.mu.Unlock()
}

// File exposes the underlying storage file (for tests).
func (ix *Index) File() *storage.File { return ix.file }

// Lookup returns the bitmap for value, or (nil, false, nil) when the
// value does not occur in the indexed column. The returned bitmap is
// shared with the cache and must not be modified.
func (ix *Index) Lookup(value int32) (*Bitset, bool, error) {
	ix.mu.Lock()
	bs, ok := ix.cache[value]
	ix.mu.Unlock()
	if ok {
		return bs, true, nil
	}
	pos, ok := ix.valuePos[value]
	if !ok {
		return nil, false, nil
	}
	bs = New(ix.nbits)
	words := bs.Words()
	perPage := storage.PageSize / 8
	start := 1 + uint32(pos)*ix.pagesPer
	remaining := words
	for p := uint32(0); p < ix.pagesPer; p++ {
		page, err := ix.pool.Fetch(ix.file, start+p)
		if err != nil {
			return nil, false, err
		}
		data := page.Data()
		n := perPage
		if n > len(remaining) {
			n = len(remaining)
		}
		for i := 0; i < n; i++ {
			remaining[i] = binary.LittleEndian.Uint64(data[i*8:])
		}
		remaining = remaining[n:]
		page.Unpin()
	}
	ix.mu.Lock()
	if prior, ok := ix.cache[value]; ok {
		// A concurrent loader won the race; share its copy.
		bs = prior
	} else {
		ix.cache[value] = bs
	}
	ix.mu.Unlock()
	return bs, true, nil
}

// OrOf returns the union of the bitmaps for the given values along with
// the number of bitmap words processed. Values absent from the index are
// skipped (they select no rows).
func (ix *Index) OrOf(values []int32) (*Bitset, int64, error) {
	out := New(ix.nbits)
	var words int64
	for _, v := range values {
		bs, ok, err := ix.Lookup(v)
		if err != nil {
			return nil, words, err
		}
		if !ok {
			continue
		}
		words += out.Or(bs)
	}
	return out, words, nil
}

package bitmap

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"mdxopt/internal/storage"
	"mdxopt/internal/table"
)

// JoinIndex is the interface shared by the uncompressed (Index) and
// EWAH-compressed (CIndex) bitmap join index formats. Open returns
// whichever format the file holds.
type JoinIndex interface {
	// ColName returns the indexed column's name.
	ColName() string
	// NBits returns the indexed table's row count.
	NBits() int64
	// Values returns the sorted distinct indexed values.
	Values() []int32
	// PagesPerBitmap returns the (average, for compressed indexes)
	// on-disk page count of one value's bitmap; the cost model charges
	// this per index lookup.
	PagesPerBitmap() int64
	// DropCache forgets in-memory bitmaps (cold-cache runs).
	DropCache()
	// File exposes the underlying storage file.
	File() *storage.File
	// Lookup returns the bitmap for value; the result is shared with the
	// cache and must not be modified.
	Lookup(value int32) (*Bitset, bool, error)
	// OrOf returns the union of the bitmaps for values plus the number
	// of bitmap words processed.
	OrOf(values []int32) (*Bitset, int64, error)
}

var (
	_ JoinIndex = (*Index)(nil)
	_ JoinIndex = (*CIndex)(nil)
)

// CIndex is a bitmap join index whose per-value bitmaps are stored
// EWAH-compressed. Sparse bitmaps (high-cardinality columns) occupy a
// small fraction of the uncompressed format's pages, at the price of a
// decompression pass per cold lookup.
type CIndex struct {
	pool     *storage.Pool
	file     *storage.File
	colName  string
	nbits    int64
	values   []int32
	offsets  []uint64 // payload word offset per value
	counts   []uint64 // compressed word count per value
	valuePos map[int32]int
	dirPages uint32

	mu    sync.Mutex
	cache map[int32]*Bitset
}

// compressed index file layout (magic "MDXK"):
//
//	page 0: [0:4] magic, [4:8] version, [8:16] nbits, [16:20] value
//	        count, [20:22] column-name length, name, [..] dir page count
//	dir pages: packed {value int32, pad, offsetWords u64, countWords u64}
//	payload pages: concatenated compressed streams, 1024 words per page
const (
	cidxMagic    = "MDXK"
	cidxVersion  = 1
	dirEntrySize = 24
)

func dirEntriesPerPage() int { return storage.PageSize / dirEntrySize }

// CreateCompressed writes a compressed index file at path.
func CreateCompressed(pool *storage.Pool, path, colName string, nbits int64, bitmaps map[int32]*Bitset) error {
	if len(colName) > 255 {
		return fmt.Errorf("bitmap: column name too long")
	}
	values := make([]int32, 0, len(bitmaps))
	for v, bs := range bitmaps {
		if bs.Len() != nbits {
			return fmt.Errorf("bitmap: bitmap for value %d has length %d, want %d", v, bs.Len(), nbits)
		}
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })

	// Compress everything up front to know offsets.
	streams := make([][]uint64, len(values))
	offsets := make([]uint64, len(values))
	var total uint64
	for i, v := range values {
		streams[i] = CompressWords(bitmaps[v].Words())
		offsets[i] = total
		total += uint64(len(streams[i]))
	}

	file, err := pool.OpenFile(path)
	if err != nil {
		return err
	}
	if file.NumPages() != 0 {
		return fmt.Errorf("bitmap: %s already exists", path)
	}
	dirPages := (len(values) + dirEntriesPerPage() - 1) / dirEntriesPerPage()

	meta, err := pool.NewPage(file)
	if err != nil {
		return err
	}
	buf := meta.Data()
	copy(buf[0:4], cidxMagic)
	binary.LittleEndian.PutUint32(buf[4:], cidxVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(nbits))
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(values)))
	binary.LittleEndian.PutUint16(buf[20:], uint16(len(colName)))
	copy(buf[22:], colName)
	binary.LittleEndian.PutUint32(buf[22+len(colName):], uint32(dirPages))
	meta.MarkDirty()
	meta.Unpin()

	// Directory pages.
	for p := 0; p < dirPages; p++ {
		page, err := pool.NewPage(file)
		if err != nil {
			return err
		}
		data := page.Data()
		for slot := 0; slot < dirEntriesPerPage(); slot++ {
			i := p*dirEntriesPerPage() + slot
			if i >= len(values) {
				break
			}
			off := slot * dirEntrySize
			binary.LittleEndian.PutUint32(data[off:], uint32(values[i]))
			binary.LittleEndian.PutUint64(data[off+8:], offsets[i])
			binary.LittleEndian.PutUint64(data[off+16:], uint64(len(streams[i])))
		}
		page.MarkDirty()
		page.Unpin()
	}

	// Payload pages: a contiguous word stream.
	perPage := storage.PageSize / 8
	var page *storage.Page
	slot := perPage // force allocation on first word
	writeWord := func(w uint64) error {
		if slot == perPage {
			if page != nil {
				page.MarkDirty()
				page.Unpin()
			}
			var err error
			page, err = pool.NewPage(file)
			if err != nil {
				return err
			}
			slot = 0
		}
		binary.LittleEndian.PutUint64(page.Data()[slot*8:], w)
		slot++
		return nil
	}
	for _, stream := range streams {
		for _, w := range stream {
			if err := writeWord(w); err != nil {
				return err
			}
		}
	}
	if page != nil {
		page.MarkDirty()
		page.Unpin()
	}
	return nil
}

// BuildAndCreateCompressed builds bitmaps for key column col of h and
// writes a compressed index at path.
func BuildAndCreateCompressed(pool *storage.Pool, path string, h *table.HeapFile, col int) error {
	bitmaps, err := BuildColumnBitmaps(h, col)
	if err != nil {
		return err
	}
	return CreateCompressed(pool, path, h.Schema().KeyNames[col], h.Count(), bitmaps)
}

// openCompressed opens a file already identified as a compressed index.
func openCompressed(pool *storage.Pool, file *storage.File, meta []byte, path string) (*CIndex, error) {
	if v := binary.LittleEndian.Uint32(meta[4:]); v != cidxVersion {
		return nil, fmt.Errorf("bitmap: %s: unsupported compressed version %d", path, v)
	}
	nbits := int64(binary.LittleEndian.Uint64(meta[8:]))
	nvals := int(binary.LittleEndian.Uint32(meta[16:]))
	nameLen := int(binary.LittleEndian.Uint16(meta[20:]))
	colName := string(meta[22 : 22+nameLen])
	dirPages := binary.LittleEndian.Uint32(meta[22+nameLen:])

	ix := &CIndex{
		pool:     pool,
		file:     file,
		colName:  colName,
		nbits:    nbits,
		values:   make([]int32, 0, nvals),
		offsets:  make([]uint64, 0, nvals),
		counts:   make([]uint64, 0, nvals),
		valuePos: make(map[int32]int, nvals),
		dirPages: dirPages,
		cache:    make(map[int32]*Bitset),
	}
	for p := uint32(0); p < dirPages; p++ {
		page, err := pool.Fetch(file, 1+p)
		if err != nil {
			return nil, err
		}
		data := page.Data()
		for slot := 0; slot < dirEntriesPerPage(); slot++ {
			i := int(p)*dirEntriesPerPage() + slot
			if i >= nvals {
				break
			}
			off := slot * dirEntrySize
			v := int32(binary.LittleEndian.Uint32(data[off:]))
			ix.values = append(ix.values, v)
			ix.offsets = append(ix.offsets, binary.LittleEndian.Uint64(data[off+8:]))
			ix.counts = append(ix.counts, binary.LittleEndian.Uint64(data[off+16:]))
			ix.valuePos[v] = i
		}
		page.Unpin()
	}
	return ix, nil
}

// ColName returns the indexed column's name.
func (ix *CIndex) ColName() string { return ix.colName }

// NBits returns the indexed table's row count.
func (ix *CIndex) NBits() int64 { return ix.nbits }

// Values returns the sorted distinct values present in the index.
func (ix *CIndex) Values() []int32 { return ix.values }

// File exposes the underlying storage file.
func (ix *CIndex) File() *storage.File { return ix.file }

// DropCache forgets all in-memory bitmaps.
func (ix *CIndex) DropCache() {
	ix.mu.Lock()
	ix.cache = make(map[int32]*Bitset)
	ix.mu.Unlock()
}

// PagesPerBitmap returns the average on-disk page count of one value's
// compressed bitmap (at least 1).
func (ix *CIndex) PagesPerBitmap() int64 {
	if len(ix.values) == 0 {
		return 1
	}
	var words uint64
	for _, c := range ix.counts {
		words += c
	}
	avgBytes := words * 8 / uint64(len(ix.values))
	pages := int64((avgBytes + storage.PageSize - 1) / storage.PageSize)
	if pages < 1 {
		pages = 1
	}
	return pages
}

// Lookup returns the bitmap for value, decompressing it from the payload
// on a cache miss.
func (ix *CIndex) Lookup(value int32) (*Bitset, bool, error) {
	ix.mu.Lock()
	bs, ok := ix.cache[value]
	ix.mu.Unlock()
	if ok {
		return bs, true, nil
	}
	pos, ok := ix.valuePos[value]
	if !ok {
		return nil, false, nil
	}
	stream := make([]uint64, ix.counts[pos])
	perPage := uint64(storage.PageSize / 8)
	payloadStart := 1 + ix.dirPages
	for i := range stream {
		word := ix.offsets[pos] + uint64(i)
		pageNo := payloadStart + uint32(word/perPage)
		slot := word % perPage
		// Sequential words share a page; the pool caches it between
		// fetches, so this loop costs one physical read per page.
		page, err := ix.pool.Fetch(ix.file, pageNo)
		if err != nil {
			return nil, false, err
		}
		stream[i] = binary.LittleEndian.Uint64(page.Data()[slot*8:])
		page.Unpin()
	}
	bs, err := Decompress(stream, ix.nbits)
	if err != nil {
		return nil, false, fmt.Errorf("bitmap: %s value %d: %w", ix.file.Path(), value, err)
	}
	ix.mu.Lock()
	if prior, ok := ix.cache[value]; ok {
		bs = prior
	} else {
		ix.cache[value] = bs
	}
	ix.mu.Unlock()
	return bs, true, nil
}

// OrOf returns the union of the bitmaps for the given values along with
// the number of bitmap words processed.
func (ix *CIndex) OrOf(values []int32) (*Bitset, int64, error) {
	out := New(ix.nbits)
	var words int64
	for _, v := range values {
		bs, ok, err := ix.Lookup(v)
		if err != nil {
			return nil, words, err
		}
		if !ok {
			continue
		}
		words += out.Or(bs)
	}
	return out, words, nil
}

package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, words []uint64) []uint64 {
	t.Helper()
	stream := CompressWords(words)
	out := make([]uint64, len(words))
	if err := DecompressWords(stream, out); err != nil {
		t.Fatalf("DecompressWords: %v", err)
	}
	for i := range words {
		if out[i] != words[i] {
			t.Fatalf("word %d = %#x, want %#x", i, out[i], words[i])
		}
	}
	return stream
}

func TestCompressRoundTripPatterns(t *testing.T) {
	cases := map[string][]uint64{
		"empty":     {},
		"all zero":  make([]uint64, 100),
		"all ones":  {allOnes, allOnes, allOnes},
		"single":    {0xDEADBEEF},
		"clean mix": {0, 0, allOnes, allOnes, 0},
		"lit only":  {1, 2, 3, 4, 5},
		"alternate": {0, 7, 0, 7, allOnes, 7},
		"long run":  append(make([]uint64, 5000), 0x123456789ABCDEF0),
		"ones tail": {5, allOnes, allOnes},
	}
	for name, words := range cases {
		stream := roundTrip(t, words)
		if name == "all zero" && len(stream) != 1 {
			t.Fatalf("all-zero compressed to %d words, want 1", len(stream))
		}
	}
}

func TestCompressRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		words := make([]uint64, n%512)
		for i := range words {
			switch rng.Intn(4) {
			case 0:
				words[i] = 0
			case 1:
				words[i] = allOnes
			default:
				words[i] = rng.Uint64()
			}
		}
		stream := CompressWords(words)
		out := make([]uint64, len(words))
		if err := DecompressWords(stream, out); err != nil {
			return false
		}
		for i := range words {
			if out[i] != words[i] {
				return false
			}
		}
		// popcount agrees without decompressing.
		var want int64
		b := &Bitset{n: int64(len(words)) * 64, words: words}
		want = b.Count()
		got, err := popcountStream(stream)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressSparseIsSmall(t *testing.T) {
	// A join-index-like bitmap: 1M bits, 1000 scattered set bits.
	b := New(1 << 20)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		b.Set(int64(rng.Intn(1 << 20)))
	}
	comp := Compress(b)
	if int64(len(comp)) >= b.WordCount()/4 {
		t.Fatalf("sparse bitmap compressed to %d of %d words", len(comp), b.WordCount())
	}
	got, err := Decompress(comp, b.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(b) {
		t.Fatal("sparse round trip wrong")
	}
	if CompressedSizeWords(b) != int64(len(comp)) {
		t.Fatal("CompressedSizeWords inconsistent")
	}
}

func TestDecompressRejectsCorruptStreams(t *testing.T) {
	words := []uint64{1, 2, 0, 0, allOnes}
	stream := CompressWords(words)
	out := make([]uint64, len(words))

	// Truncated stream.
	if err := DecompressWords(stream[:len(stream)-1], out); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Wrong destination size.
	if err := DecompressWords(stream, make([]uint64, len(words)-1)); err == nil {
		t.Fatal("short destination accepted")
	}
	if err := DecompressWords(stream, make([]uint64, len(words)+3)); err == nil {
		t.Fatal("long destination accepted")
	}
	// Marker overrunning the destination: run length 100 into 2 words.
	bogus := uint64(100) << runLenShift
	if err := DecompressWords([]uint64{bogus}, make([]uint64, 2)); err == nil {
		t.Fatal("overrunning marker accepted")
	}
}

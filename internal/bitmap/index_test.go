package bitmap

import (
	"path/filepath"
	"testing"

	"mdxopt/internal/storage"
	"mdxopt/internal/table"
)

// buildHeap creates a heap with n rows whose single key column cycles
// through 0..card-1.
func buildHeap(t *testing.T, pool *storage.Pool, n, card int) *table.HeapFile {
	t.Helper()
	h, err := table.Create(pool, filepath.Join(t.TempDir(), "idx.heap"), table.NewSchema([]string{"k"}, []string{"m"}))
	if err != nil {
		t.Fatal(err)
	}
	app := h.NewAppender()
	for i := 0; i < n; i++ {
		if err := app.Append([]int32{int32(i % card)}, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBuildColumnBitmaps(t *testing.T) {
	pool := storage.NewPool(32)
	h := buildHeap(t, pool, 1000, 7)
	bms, err := BuildColumnBitmaps(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bms) != 7 {
		t.Fatalf("distinct values = %d, want 7", len(bms))
	}
	var total int64
	for v, bs := range bms {
		c := bs.Count()
		total += c
		// value v appears at rows v, v+7, v+14, ...
		if !bs.Get(int64(v)) {
			t.Fatalf("value %d missing its first row", v)
		}
	}
	if total != 1000 {
		t.Fatalf("bitmap counts sum to %d, want 1000", total)
	}
}

func TestBuildColumnBitmapsBadColumn(t *testing.T) {
	pool := storage.NewPool(32)
	h := buildHeap(t, pool, 10, 3)
	if _, err := BuildColumnBitmaps(h, 5); err == nil {
		t.Fatal("BuildColumnBitmaps with bad column succeeded")
	}
}

func TestIndexSaveOpenLookup(t *testing.T) {
	pool := storage.NewPool(64)
	h := buildHeap(t, pool, 5000, 13)
	path := filepath.Join(t.TempDir(), "k.idx")
	if err := BuildAndCreate(pool, path, h, 0); err != nil {
		t.Fatalf("BuildAndCreate: %v", err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	ix, err := Open(pool, path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if ix.ColName() != "k" {
		t.Fatalf("ColName = %q, want k", ix.ColName())
	}
	if ix.NBits() != 5000 {
		t.Fatalf("NBits = %d, want 5000", ix.NBits())
	}
	if len(ix.Values()) != 13 {
		t.Fatalf("Values = %d, want 13", len(ix.Values()))
	}

	for v := int32(0); v < 13; v++ {
		bs, ok, err := ix.Lookup(v)
		if err != nil || !ok {
			t.Fatalf("Lookup(%d): ok=%v err=%v", v, ok, err)
		}
		want := int64(5000 / 13)
		if int64(v) < 5000%13 {
			want++
		}
		if bs.Count() != want {
			t.Fatalf("value %d count = %d, want %d", v, bs.Count(), want)
		}
		// spot-check positions
		bs.ForEach(func(i int64) {
			if int32(i%13) != v {
				t.Fatalf("value %d bitmap has wrong row %d", v, i)
			}
		})
	}

	if _, ok, err := ix.Lookup(99); err != nil || ok {
		t.Fatalf("Lookup(absent) = ok=%v err=%v, want ok=false", ok, err)
	}
}

func TestIndexOrOf(t *testing.T) {
	pool := storage.NewPool(64)
	h := buildHeap(t, pool, 1300, 13)
	path := filepath.Join(t.TempDir(), "k.idx")
	if err := BuildAndCreate(pool, path, h, 0); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(pool, path)
	if err != nil {
		t.Fatal(err)
	}
	bs, words, err := ix.OrOf([]int32{1, 3, 5, 99}) // 99 is absent
	if err != nil {
		t.Fatal(err)
	}
	if words <= 0 {
		t.Fatal("OrOf reported no word operations")
	}
	if bs.Count() != 300 { // 100 rows per value
		t.Fatalf("OrOf count = %d, want 300", bs.Count())
	}
	bs.ForEach(func(i int64) {
		m := int32(i % 13)
		if m != 1 && m != 3 && m != 5 {
			t.Fatalf("OrOf selected wrong row %d (value %d)", i, m)
		}
	})
}

func TestIndexLookupCachesAndDropCache(t *testing.T) {
	pool := storage.NewPool(64)
	h := buildHeap(t, pool, 2000, 5)
	path := filepath.Join(t.TempDir(), "k.idx")
	if err := BuildAndCreate(pool, path, h, 0); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(pool, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	if _, _, err := ix.Lookup(2); err != nil {
		t.Fatal(err)
	}
	first := pool.Stats().Reads()
	if first == 0 {
		t.Fatal("cold lookup performed no reads")
	}
	if _, _, err := ix.Lookup(2); err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Reads() != first {
		t.Fatal("cached lookup performed physical reads")
	}
	ix.DropCache()
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Lookup(2); err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Reads() <= first {
		t.Fatal("lookup after DropCache did not re-read")
	}
}

func TestIndexRejectsWrongFile(t *testing.T) {
	pool := storage.NewPool(16)
	h := buildHeap(t, pool, 10, 2)
	// A heap file is not an index file.
	if _, err := Open(pool, h.Path()); err == nil {
		t.Fatal("Open accepted a heap file as an index")
	}
}

func TestIndexBitmapLengthValidation(t *testing.T) {
	pool := storage.NewPool(16)
	bad := map[int32]*Bitset{1: New(10), 2: New(20)}
	err := Create(pool, filepath.Join(t.TempDir(), "bad.idx"), "c", 10, bad)
	if err == nil {
		t.Fatal("Create accepted mismatched bitmap lengths")
	}
}

func TestIndexMultiPageBitmaps(t *testing.T) {
	// Enough rows that one bitmap spans multiple pages:
	// PageSize/8 words per page * 64 bits = 65536 bits per page.
	const n = 70000
	pool := storage.NewPool(128)
	h, err := table.Create(pool, filepath.Join(t.TempDir(), "big.heap"), table.NewSchema([]string{"k"}, nil))
	if err != nil {
		t.Fatal(err)
	}
	app := h.NewAppender()
	for i := 0; i < n; i++ {
		app.Append([]int32{int32(i % 2)}, nil)
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "big.idx")
	if err := BuildAndCreate(pool, path, h, 0); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(pool, path)
	if err != nil {
		t.Fatal(err)
	}
	if ix.PagesPerBitmap() < 2 {
		t.Fatalf("PagesPerBitmap = %d, want >= 2", ix.PagesPerBitmap())
	}
	for v := int32(0); v < 2; v++ {
		bs, ok, err := ix.Lookup(v)
		if err != nil || !ok {
			t.Fatal(err)
		}
		if bs.Count() != n/2 {
			t.Fatalf("value %d count = %d, want %d", v, bs.Count(), n/2)
		}
		if got := bs.NextSet(0); got != int64(v) {
			t.Fatalf("value %d first row = %d", v, got)
		}
	}
}

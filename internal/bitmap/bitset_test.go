package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetSetGetClear(t *testing.T) {
	b := New(130)
	for _, i := range []int64{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 set after Clear")
	}
	if b.Count() != 7 {
		t.Fatalf("Count = %d, want 7", b.Count())
	}
}

func TestBitsetNextSet(t *testing.T) {
	b := New(200)
	b.Set(3)
	b.Set(64)
	b.Set(199)
	cases := []struct{ from, want int64 }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 199}, {199, 199}, {-5, 3},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Fatalf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := b.NextSet(200); got != -1 {
		t.Fatalf("NextSet(200) = %d, want -1", got)
	}
	empty := New(100)
	if got := empty.NextSet(0); got != -1 {
		t.Fatalf("NextSet on empty = %d, want -1", got)
	}
}

func TestBitsetIteratorMatchesForEach(t *testing.T) {
	b := New(500)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 80; i++ {
		b.Set(int64(rng.Intn(500)))
	}
	var fe []int64
	b.ForEach(func(i int64) { fe = append(fe, i) })
	it := b.Iterator()
	var is []int64
	for v := it(); v >= 0; v = it() {
		is = append(is, v)
	}
	if len(fe) != len(is) {
		t.Fatalf("ForEach %d items, Iterator %d", len(fe), len(is))
	}
	for i := range fe {
		if fe[i] != is[i] {
			t.Fatalf("item %d: ForEach=%d Iterator=%d", i, fe[i], is[i])
		}
		if i > 0 && fe[i] <= fe[i-1] {
			t.Fatalf("ForEach not ascending at %d", i)
		}
	}
	if int64(len(fe)) != b.Count() {
		t.Fatalf("iterated %d, Count %d", len(fe), b.Count())
	}
}

func randomBitset(rng *rand.Rand, n int64) *Bitset {
	b := New(n)
	for i := int64(0); i < n; i++ {
		if rng.Intn(2) == 0 {
			b.Set(i)
		}
	}
	return b
}

func TestBitsetAlgebraLaws(t *testing.T) {
	// Property: De Morgan-ish identities over random bitsets.
	rng := rand.New(rand.NewSource(42))
	const n = 300
	for trial := 0; trial < 50; trial++ {
		a := randomBitset(rng, n)
		b := randomBitset(rng, n)

		// Commutativity of Or.
		ab := a.Clone()
		ab.Or(b)
		ba := b.Clone()
		ba.Or(a)
		if !ab.Equal(ba) {
			t.Fatal("Or is not commutative")
		}

		// Commutativity of And.
		x := a.Clone()
		x.And(b)
		y := b.Clone()
		y.And(a)
		if !x.Equal(y) {
			t.Fatal("And is not commutative")
		}

		// a AndNot b == a And (complement restricted): via count identity
		// |a| = |a∩b| + |a\b|.
		anb := a.Clone()
		anb.AndNot(b)
		if x.Count()+anb.Count() != a.Count() {
			t.Fatal("count identity |a| = |a∩b| + |a\\b| violated")
		}

		// Absorption: a ∪ (a ∩ b) == a.
		abs := a.Clone()
		abs.Or(x)
		if !abs.Equal(a) {
			t.Fatal("absorption law violated")
		}

		// Idempotence.
		ii := a.Clone()
		ii.Or(a)
		if !ii.Equal(a) {
			t.Fatal("Or not idempotent")
		}
	}
}

func TestBitsetUnionCountQuick(t *testing.T) {
	// |a ∪ b| + |a ∩ b| = |a| + |b|
	f := func(seedA, seedB int64) bool {
		const n = 257
		a := randomBitset(rand.New(rand.NewSource(seedA)), n)
		b := randomBitset(rand.New(rand.NewSource(seedB)), n)
		u := a.Clone()
		u.Or(b)
		i := a.Clone()
		i.And(b)
		return u.Count()+i.Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetIntoVariantsMatchInPlace(t *testing.T) {
	// OrInto/AndInto/CopyFrom are the destination-argument forms of
	// Or/And/Clone: same bits, same word counts charged.
	rng := rand.New(rand.NewSource(99))
	const n = 300
	for trial := 0; trial < 30; trial++ {
		a := randomBitset(rng, n)
		b := randomBitset(rng, n)

		or := a.Clone()
		wantWords := or.Or(b)
		dst := New(n)
		dst.CopyFrom(a)
		if gotWords := b.OrInto(dst); gotWords != wantWords {
			t.Fatalf("OrInto charged %d words, Or charged %d", gotWords, wantWords)
		}
		if !dst.Equal(or) {
			t.Fatal("CopyFrom+OrInto differs from Clone+Or")
		}

		and := a.Clone()
		and.And(b)
		dst.CopyFrom(a)
		b.AndInto(dst)
		if !dst.Equal(and) {
			t.Fatal("AndInto differs from And")
		}
	}
}

func TestBitsetIteratorEdgeWords(t *testing.T) {
	// Word-boundary bits and a full final partial word: the word-cached
	// iterator must produce exactly the set bits, in order, once.
	b := New(130)
	for _, i := range []int64{0, 63, 64, 127, 128, 129} {
		b.Set(i)
	}
	it := b.Iterator()
	var got []int64
	for v := it(); v >= 0; v = it() {
		got = append(got, v)
	}
	want := []int64{0, 63, 64, 127, 128, 129}
	if len(got) != len(want) {
		t.Fatalf("iterated %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bit %d: got %d, want %d", i, got[i], want[i])
		}
	}
	// Exhausted iterators stay exhausted.
	if it() != -1 || it() != -1 {
		t.Fatal("exhausted iterator produced a bit")
	}
	if it := New(0).Iterator(); it() != -1 {
		t.Fatal("zero-length iterator produced a bit")
	}
}

func TestBitsetLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched lengths did not panic")
		}
	}()
	a := New(10)
	b := New(11)
	a.Or(b)
}

func TestBitsetCloneIsIndependent(t *testing.T) {
	a := New(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Get(6) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Get(5) {
		t.Fatal("Clone lost bit 5")
	}
}

func TestBitsetAnyAndWordCount(t *testing.T) {
	b := New(129)
	if b.Any() {
		t.Fatal("empty bitset Any = true")
	}
	b.Set(128)
	if !b.Any() {
		t.Fatal("Any = false after Set")
	}
	if b.WordCount() != 3 {
		t.Fatalf("WordCount = %d, want 3", b.WordCount())
	}
	if New(0).WordCount() != 0 {
		t.Fatal("zero-length bitset has words")
	}
}

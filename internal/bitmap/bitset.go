// Package bitmap provides word-aligned bitsets and bitmap join indexes
// over heap-file row positions.
//
// The paper's index-based star join ORs per-value bitmaps from a join
// index along each dimension, ANDs the per-dimension results into a query
// result bitmap, and probes the fact table at the set positions (§3.2).
// The shared index star join ORs the *query* result bitmaps so the fact
// table is probed once for the whole query set.
package bitmap

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitset is a fixed-length set of bits indexed from 0. The zero value is
// unusable; use New.
//
// Length-mismatched binary operations panic: bitsets in this system are
// always allocated against the same table's row count, so a mismatch is a
// programming error, not an environmental condition.
type Bitset struct {
	n     int64
	words []uint64
}

// New returns an empty bitset able to hold n bits.
func New(n int64) *Bitset {
	if n < 0 {
		panic("bitmap: negative length")
	}
	return &Bitset{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewFull returns a bitset of n bits with every bit set.
func NewFull(n int64) *Bitset {
	b := New(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if extra := n % wordBits; extra != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << uint(extra)) - 1
	}
	return b
}

// Len returns the bitset's capacity in bits.
func (b *Bitset) Len() int64 { return b.n }

// WordCount returns the number of 64-bit words backing the bitset. The
// cost model charges bitmap operations per word.
func (b *Bitset) WordCount() int64 { return int64(len(b.words)) }

// Words exposes the backing words (for serialization).
func (b *Bitset) Words() []uint64 { return b.words }

// Set sets bit i.
func (b *Bitset) Set(i int64) {
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (b *Bitset) Clear(i int64) {
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set.
func (b *Bitset) Get(i int64) bool {
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (b *Bitset) check(o *Bitset) {
	if b.n != o.n {
		panic(fmt.Sprintf("bitmap: length mismatch %d vs %d", b.n, o.n))
	}
}

// Or sets b to b ∪ o and returns the number of words processed.
func (b *Bitset) Or(o *Bitset) int64 {
	b.check(o)
	for i, w := range o.words {
		b.words[i] |= w
	}
	return int64(len(b.words))
}

// And sets b to b ∩ o and returns the number of words processed.
func (b *Bitset) And(o *Bitset) int64 {
	b.check(o)
	for i, w := range o.words {
		b.words[i] &= w
	}
	return int64(len(b.words))
}

// OrInto sets dst to dst ∪ b and returns the number of words processed
// — the destination-argument variant of Or, so a union accumulated into
// a fresh bitset needs no clone of its first operand.
func (b *Bitset) OrInto(dst *Bitset) int64 {
	b.check(dst)
	for i, w := range b.words {
		dst.words[i] |= w
	}
	return int64(len(b.words))
}

// AndInto sets dst to dst ∩ b and returns the number of words
// processed — the destination-argument variant of And.
func (b *Bitset) AndInto(dst *Bitset) int64 {
	b.check(dst)
	for i, w := range b.words {
		dst.words[i] &= w
	}
	return int64(len(b.words))
}

// CopyFrom overwrites b's bits with o's. Unlike Clone it reuses b's
// backing words; like Clone it is not charged as bitmap work.
func (b *Bitset) CopyFrom(o *Bitset) {
	b.check(o)
	copy(b.words, o.words)
}

// AndNot sets b to b \ o and returns the number of words processed.
func (b *Bitset) AndNot(o *Bitset) int64 {
	b.check(o)
	for i, w := range o.words {
		b.words[i] &^= w
	}
	return int64(len(b.words))
}

// Count returns the number of set bits.
func (b *Bitset) Count() int64 {
	var c int64
	for _, w := range b.words {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a copy of b.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// Equal reports whether b and o have the same length and bits.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after from, or -1.
func (b *Bitset) NextSet(from int64) int64 {
	if from < 0 {
		from = 0
	}
	if from >= b.n {
		return -1
	}
	wi := from / wordBits
	w := b.words[wi] >> (uint(from) % wordBits)
	if w != 0 {
		i := from + int64(bits.TrailingZeros64(w))
		if i < b.n {
			return i
		}
		return -1
	}
	for wi++; wi < int64(len(b.words)); wi++ {
		if b.words[wi] != 0 {
			i := wi*wordBits + int64(bits.TrailingZeros64(b.words[wi]))
			if i < b.n {
				return i
			}
			return -1
		}
	}
	return -1
}

// ForEach calls fn with each set bit index in ascending order.
func (b *Bitset) ForEach(fn func(i int64)) {
	for wi, w := range b.words {
		base := int64(wi) * wordBits
		for w != 0 {
			t := int64(bits.TrailingZeros64(w))
			i := base + t
			if i >= b.n {
				return
			}
			fn(i)
			w &= w - 1
		}
	}
}

// Iterator returns a function producing set-bit indexes in ascending
// order and -1 when exhausted, matching table.HeapFile.FetchRows. The
// iterator caches its current word and strips one trailing set bit per
// call, so a full traversal costs one pass over the words instead of a
// NextSet rescan per produced bit.
func (b *Bitset) Iterator() func() int64 {
	wi := 0
	var w uint64
	if len(b.words) > 0 {
		w = b.words[0]
	}
	return func() int64 {
		for w == 0 {
			wi++
			if wi >= len(b.words) {
				return -1
			}
			w = b.words[wi]
		}
		t := bits.TrailingZeros64(w)
		w &= w - 1
		i := int64(wi)*wordBits + int64(t)
		if i >= b.n {
			wi = len(b.words)
			w = 0
			return -1
		}
		return i
	}
}

func (b *Bitset) String() string {
	return fmt.Sprintf("Bitset{len=%d set=%d}", b.n, b.Count())
}

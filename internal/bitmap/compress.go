package bitmap

import (
	"errors"
	"fmt"
	"math/bits"
)

// EWAH-style word-aligned run-length compression.
//
// A compressed stream is a sequence of records. Each record starts with
// a marker word followed by literal words:
//
//	bit  63     value of the run (all-zero or all-one words)
//	bits 32–62  run length in words (31 bits)
//	bits 0–31   number of literal words following the marker
//
// Sparse bitmaps — the common case for bitmap join indexes, where each
// member selects a small fraction of rows — compress to a small multiple
// of their set-bit count.

const (
	runValueBit = 63
	runLenShift = 32
	runLenMask  = (1 << 31) - 1
	literalMask = (1 << 32) - 1
	maxRunLen   = runLenMask
	maxLiterals = literalMask
	allOnes     = ^uint64(0)
)

// CompressWords encodes words into a compressed stream.
func CompressWords(words []uint64) []uint64 {
	var out []uint64
	pos := 0
	for pos < len(words) {
		// Count the leading clean run.
		runVal := uint64(0)
		runLen := 0
		if words[pos] == 0 || words[pos] == allOnes {
			if words[pos] == allOnes {
				runVal = 1
			}
			probe := words[pos]
			for pos+runLen < len(words) && words[pos+runLen] == probe && runLen < maxRunLen {
				runLen++
			}
		}
		// Count following literals until the next clean word.
		litStart := pos + runLen
		litLen := 0
		for litStart+litLen < len(words) && litLen < maxLiterals {
			w := words[litStart+litLen]
			if w == 0 || w == allOnes {
				break
			}
			litLen++
		}
		marker := runVal<<runValueBit | uint64(runLen)<<runLenShift | uint64(litLen)
		out = append(out, marker)
		out = append(out, words[litStart:litStart+litLen]...)
		pos = litStart + litLen
	}
	return out
}

// ErrCorruptStream reports a malformed compressed stream.
var ErrCorruptStream = errors.New("bitmap: corrupt compressed stream")

// DecompressWords decodes a compressed stream into dst, which must have
// exactly the original word count.
func DecompressWords(stream []uint64, dst []uint64) error {
	di := 0
	si := 0
	for si < len(stream) {
		marker := stream[si]
		si++
		runVal := marker >> runValueBit
		runLen := int(marker >> runLenShift & runLenMask)
		litLen := int(marker & literalMask)
		if di+runLen+litLen > len(dst) || si+litLen > len(stream) {
			return fmt.Errorf("%w: record overruns (run %d, lit %d at word %d of %d)",
				ErrCorruptStream, runLen, litLen, di, len(dst))
		}
		fill := uint64(0)
		if runVal == 1 {
			fill = allOnes
		}
		for i := 0; i < runLen; i++ {
			dst[di] = fill
			di++
		}
		copy(dst[di:], stream[si:si+litLen])
		di += litLen
		si += litLen
	}
	if di != len(dst) {
		return fmt.Errorf("%w: stream ends at word %d of %d", ErrCorruptStream, di, len(dst))
	}
	return nil
}

// Compress returns an EWAH-compressed copy of b's words.
func Compress(b *Bitset) []uint64 {
	return CompressWords(b.words)
}

// Decompress reconstructs a bitset of n bits from a compressed stream.
func Decompress(stream []uint64, n int64) (*Bitset, error) {
	b := New(n)
	if err := DecompressWords(stream, b.words); err != nil {
		return nil, err
	}
	return b, nil
}

// CompressedSizeWords returns the stream length Compress would produce
// without materializing it (used for sizing reports).
func CompressedSizeWords(b *Bitset) int64 {
	return int64(len(CompressWords(b.words)))
}

// popcountStream counts set bits directly on a compressed stream; used
// by tests to validate streams without decompressing.
func popcountStream(stream []uint64) (int64, error) {
	var total int64
	si := 0
	for si < len(stream) {
		marker := stream[si]
		si++
		runVal := marker >> runValueBit
		runLen := int64(marker >> runLenShift & runLenMask)
		litLen := int(marker & literalMask)
		if si+litLen > len(stream) {
			return 0, ErrCorruptStream
		}
		if runVal == 1 {
			total += runLen * 64
		}
		for i := 0; i < litLen; i++ {
			total += int64(bits.OnesCount64(stream[si+i]))
		}
		si += litLen
	}
	return total, nil
}

package bitmap

import (
	"path/filepath"
	"testing"

	"mdxopt/internal/storage"
)

func buildBothIndexes(t *testing.T, n, card int) (JoinIndex, JoinIndex, *storage.Pool) {
	t.Helper()
	pool := storage.NewPool(256)
	h := buildHeap(t, pool, n, card)
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.idx")
	comp := filepath.Join(dir, "comp.idx")
	if err := BuildAndCreate(pool, plain, h, 0); err != nil {
		t.Fatal(err)
	}
	if err := BuildAndCreateCompressed(pool, comp, h, 0); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p, err := Open(pool, plain)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(pool, comp)
	if err != nil {
		t.Fatal(err)
	}
	return p, c, pool
}

func TestCompressedIndexMatchesUncompressed(t *testing.T) {
	plain, comp, _ := buildBothIndexes(t, 9000, 17)
	if _, ok := plain.(*Index); !ok {
		t.Fatalf("plain index dispatched to %T", plain)
	}
	if _, ok := comp.(*CIndex); !ok {
		t.Fatalf("compressed index dispatched to %T", comp)
	}
	if comp.ColName() != plain.ColName() || comp.NBits() != plain.NBits() {
		t.Fatal("metadata differs between formats")
	}
	if len(comp.Values()) != len(plain.Values()) {
		t.Fatal("value sets differ")
	}
	for _, v := range plain.Values() {
		pb, ok, err := plain.Lookup(v)
		if err != nil || !ok {
			t.Fatal(err)
		}
		cb, ok, err := comp.Lookup(v)
		if err != nil || !ok {
			t.Fatal(err)
		}
		if !pb.Equal(cb) {
			t.Fatalf("bitmaps differ for value %d", v)
		}
	}
	// Absent value.
	if _, ok, err := comp.Lookup(999); err != nil || ok {
		t.Fatal("absent value found in compressed index")
	}
	// OrOf agrees.
	pu, _, err := plain.OrOf([]int32{1, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	cu, words, err := comp.OrOf([]int32{1, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if words == 0 || !pu.Equal(cu) {
		t.Fatal("OrOf differs between formats")
	}
}

func TestCompressedIndexIsSmallerForHighCardinality(t *testing.T) {
	// 600 values over 60000 rows: each bitmap is sparse (~0.17% density,
	// one set bit per ~9 words), the regime bitmap join indexes on
	// high-cardinality columns live in.
	plain, comp, _ := buildBothIndexes(t, 60000, 600)
	pi := plain.(*Index)
	ci := comp.(*CIndex)
	pPages := pi.File().NumPages()
	cPages := ci.File().NumPages()
	if cPages*2 >= pPages {
		t.Fatalf("compressed index %d pages, uncompressed %d: expected >2x saving", cPages, pPages)
	}
	if ci.PagesPerBitmap() > pi.PagesPerBitmap() {
		t.Fatal("compressed PagesPerBitmap larger than uncompressed")
	}
}

func TestCompressedIndexColdLookupReadsFewerPages(t *testing.T) {
	plain, comp, pool := buildBothIndexes(t, 240000, 600)
	measure := func(ix JoinIndex) int64 {
		ix.DropCache()
		if err := pool.FlushAll(); err != nil {
			t.Fatal(err)
		}
		pool.ResetStats()
		if _, ok, err := ix.Lookup(7); err != nil || !ok {
			t.Fatal(err)
		}
		return pool.Stats().Reads()
	}
	pr := measure(plain)
	cr := measure(comp)
	if cr >= pr {
		t.Fatalf("compressed cold lookup read %d pages, uncompressed %d", cr, pr)
	}
}

func TestCompressedIndexCacheAndDrop(t *testing.T) {
	_, comp, pool := buildBothIndexes(t, 20000, 10)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	comp.DropCache()
	pool.ResetStats()
	if _, _, err := comp.Lookup(3); err != nil {
		t.Fatal(err)
	}
	cold := pool.Stats().Reads()
	if cold == 0 {
		t.Fatal("cold lookup performed no reads")
	}
	if _, _, err := comp.Lookup(3); err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Reads() != cold {
		t.Fatal("cached lookup hit disk")
	}
}

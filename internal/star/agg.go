package star

import "mdxopt/internal/table"

// Multi-aggregate views.
//
// The paper's materialized group-bys carry one SUM column (20-byte
// tuples, which the experiments preserve). As an extension, a view can
// instead be materialized with the multi-aggregate layout — four measure
// columns (sum, count, min, max) per group — which lets COUNT, MIN, MAX
// and AVG queries (all decomposable) be answered from the view instead
// of the base table. MaterializeMulti opts a view in; the optimizer
// routes non-SUM queries only to the base table or multi-aggregate
// views (query.SupportedBy).

// Positions of the four accumulator components.
const (
	AggSum = iota
	AggCount
	AggMin
	AggMax
)

// MultiAgg reports whether the view stores the four-component aggregate
// layout.
func (v *View) MultiAgg() bool { return v.Heap.Schema().NumMeasures() == 4 }

// MultiViewSchema returns the heap schema of a multi-aggregate view.
func (s *Schema) MultiViewSchema() table.Schema {
	keys := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		keys[i] = d.Name
	}
	m := s.Measure
	return table.NewSchema(keys, []string{m + "_sum", m + "_count", m + "_min", m + "_max"})
}

// TupleAggregates extracts the (sum, count, min, max) accumulator from
// one scanned tuple of v. A base-table or sum-only-view row with measure
// m contributes (m, 1, m, m) — exact for the base table; for a sum-only
// view the count/min/max components are NOT meaningful, which is why
// query.SupportedBy never routes non-SUM queries there.
func TupleAggregates(v *View, measures []float64) [4]float64 {
	if len(measures) == 4 {
		return [4]float64{measures[0], measures[1], measures[2], measures[3]}
	}
	m := measures[0]
	return [4]float64{m, 1, m, m}
}

// MergeAggregates folds src into dst component-wise.
func MergeAggregates(dst *[4]float64, src [4]float64) {
	dst[AggSum] += src[AggSum]
	dst[AggCount] += src[AggCount]
	if src[AggMin] < dst[AggMin] {
		dst[AggMin] = src[AggMin]
	}
	if src[AggMax] > dst[AggMax] {
		dst[AggMax] = src[AggMax]
	}
}

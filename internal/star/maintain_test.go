package star

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// appendFacts adds n more deterministic facts to the base table.
func appendFacts(t *testing.T, db *Database, n, salt int) {
	t.Helper()
	app := db.Base().Heap.NewAppender()
	for i := 0; i < n; i++ {
		keys := []int32{
			int32((i*7 + salt) % 24),
			int32((i*5 + salt) % 12),
			int32((i*3 + salt) % 8),
		}
		if err := app.Append(keys, []float64{float64(i%13 + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
}

// viewAggregate sums a view's groups into a map (merging duplicates).
func viewAggregate(t *testing.T, v *View) map[[3]int32]float64 {
	t.Helper()
	out := map[[3]int32]float64{}
	err := v.Heap.Scan(func(row int64, keys []int32, ms []float64) error {
		out[[3]int32{keys[0], keys[1], keys[2]}] += ms[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// baseOracle aggregates the base table at the view's levels.
func baseOracle(t *testing.T, db *Database, levels []int) map[[3]int32]float64 {
	t.Helper()
	out := map[[3]int32]float64{}
	err := db.Base().Heap.Scan(func(row int64, keys []int32, ms []float64) error {
		var k [3]int32
		for i := 0; i < 3; i++ {
			k[i] = db.Schema.Dims[i].RollUp(keys[i], 0, levels[i])
		}
		out[k] += ms[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func equalAgg(a, b map[[3]int32]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestRefreshFoldsDelta(t *testing.T) {
	db := buildDB(t, 2000)
	levels := []int{1, 1, 0}
	v, err := db.Materialize(levels)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex(v, 0); err != nil {
		t.Fatal(err)
	}
	if !db.Fresh(v) {
		t.Fatal("fresh view reported stale")
	}

	appendFacts(t, db, 500, 3)
	if db.Fresh(v) {
		t.Fatal("stale view reported fresh")
	}
	if sv := db.StaleViews(); len(sv) != 1 || sv[0] != v {
		t.Fatalf("StaleViews = %v", sv)
	}

	rowsBefore := v.Rows()
	if err := db.Refresh(); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if !db.Fresh(v) {
		t.Fatal("view still stale after Refresh")
	}
	if v.Rows() <= rowsBefore {
		t.Fatal("Refresh appended no delta groups")
	}
	if !equalAgg(viewAggregate(t, v), baseOracle(t, db, levels)) {
		t.Fatal("refreshed view aggregate does not match base")
	}

	// The rebuilt index covers the appended rows.
	ix := v.Indexes[0]
	if ix.NBits() != v.Rows() {
		t.Fatalf("index covers %d rows, view has %d", ix.NBits(), v.Rows())
	}
	var viaIndex float64
	for _, code := range ix.Values() {
		bs, ok, err := ix.Lookup(code)
		if err != nil || !ok {
			t.Fatal(err)
		}
		keys := make([]int32, 3)
		ms := make([]float64, 1)
		it := bs.Iterator()
		for row := it(); row >= 0; row = it() {
			if err := v.Heap.FetchRow(row, keys, ms); err != nil {
				t.Fatal(err)
			}
			if keys[0] != code {
				t.Fatalf("index row %d has code %d, want %d", row, keys[0], code)
			}
			viaIndex += ms[0]
		}
	}
	var total float64
	for _, x := range viewAggregate(t, v) {
		total += x
	}
	if viaIndex != total {
		t.Fatalf("index-driven sum %v != view total %v", viaIndex, total)
	}
}

func TestRefreshIsIdempotent(t *testing.T) {
	db := buildDB(t, 500)
	v, err := db.Materialize([]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := v.Rows()
	if err := db.Refresh(); err != nil {
		t.Fatal(err)
	}
	if v.Rows() != rows {
		t.Fatal("Refresh of a fresh view changed it")
	}
}

func TestCompactMergesDuplicates(t *testing.T) {
	db := buildDB(t, 1000)
	levels := []int{2, 2, 1}
	v, err := db.Materialize(levels)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex(v, 1); err != nil {
		t.Fatal(err)
	}
	// Two refresh rounds leave duplicate group rows.
	appendFacts(t, db, 300, 5)
	if err := db.Refresh(); err != nil {
		t.Fatal(err)
	}
	appendFacts(t, db, 300, 11)
	if err := db.Refresh(); err != nil {
		t.Fatal(err)
	}
	oracle := baseOracle(t, db, levels)
	if v.Rows() <= int64(len(oracle)) {
		t.Fatalf("expected duplicate groups before compact: %d rows for %d groups",
			v.Rows(), len(oracle))
	}

	if err := db.Compact(v); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if v.Rows() != int64(len(oracle)) {
		t.Fatalf("compacted rows = %d, want %d", v.Rows(), len(oracle))
	}
	if !equalAgg(viewAggregate(t, v), oracle) {
		t.Fatal("compacted view aggregate wrong")
	}
	if v.Indexes[1].NBits() != v.Rows() {
		t.Fatal("index not rebuilt after compact")
	}
	if err := db.Compact(db.Base()); err == nil {
		t.Fatal("Compact accepted the base table")
	}
}

func TestMaintenanceSurvivesReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	schema := smallSchema(t)
	db, err := Create(dir, schema, 64)
	if err != nil {
		t.Fatal(err)
	}
	appendFacts(t, db, 400, 0)
	v, err := db.Materialize([]int{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	appendFacts(t, db, 100, 9)
	_ = v
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v2 := db2.Views[1]
	if db2.Fresh(v2) {
		t.Fatal("staleness lost across reopen")
	}
	if err := db2.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !equalAgg(viewAggregate(t, v2), baseOracle(t, db2, v2.Levels)) {
		t.Fatal("refresh after reopen wrong")
	}
}

func TestMaterializeSkipsStaleSource(t *testing.T) {
	db := buildDB(t, 800)
	mid, err := db.Materialize([]int{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	appendFacts(t, db, 200, 7) // mid is now stale
	top, err := db.Materialize([]int{2, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	// The new view must have been computed from the base table (the only
	// fresh source), so it includes the late facts.
	if !equalAgg(viewAggregate(t, top), baseOracle(t, db, top.Levels)) {
		t.Fatal("Materialize used a stale source")
	}
	_ = mid
}

func TestOpenPreMaintenanceManifestLoadsFresh(t *testing.T) {
	// Manifests written before view maintenance existed lack the
	// refreshed_rows field; such views must load as fresh, not stale.
	dir := filepath.Join(t.TempDir(), "db")
	schema := smallSchema(t)
	db, err := Create(dir, schema, 64)
	if err != nil {
		t.Fatal(err)
	}
	appendFacts(t, db, 200, 0)
	if _, err := db.Materialize([]int{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Strip the refreshed_rows fields from the manifest, simulating an
	// old database.
	metaPath := filepath.Join(dir, "meta.json")
	blob, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	var meta map[string]any
	if err := json.Unmarshal(blob, &meta); err != nil {
		t.Fatal(err)
	}
	for _, v := range meta["views"].([]any) {
		delete(v.(map[string]any), "refreshed_rows")
	}
	blob, err = json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(metaPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if stale := db2.StaleViews(); len(stale) != 0 {
		t.Fatalf("pre-maintenance views loaded stale: %v", stale)
	}
}

package star

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"mdxopt/internal/table"
)

// Schema is the dimensional schema of a star database: an ordered set of
// dimensions and one measure.
type Schema struct {
	Dims    []*Dimension
	Measure string
}

// NewSchema validates and builds a schema.
func NewSchema(dims []*Dimension, measure string) (*Schema, error) {
	if len(dims) == 0 {
		return nil, errors.New("star: schema needs at least one dimension")
	}
	if measure == "" {
		return nil, errors.New("star: schema needs a measure name")
	}
	seen := map[string]bool{}
	for _, d := range dims {
		if seen[d.Name] {
			return nil, fmt.Errorf("star: duplicate dimension %q", d.Name)
		}
		seen[d.Name] = true
	}
	return &Schema{Dims: dims, Measure: measure}, nil
}

// NumDims returns the number of dimensions.
func (s *Schema) NumDims() int { return len(s.Dims) }

// DimIndex returns the position of the named dimension, or -1.
func (s *Schema) DimIndex(name string) int {
	for i, d := range s.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// ValidLevels reports whether levels is a valid group-by vector: one
// entry per dimension, each within [0, AllLevel].
func (s *Schema) ValidLevels(levels []int) error {
	if len(levels) != len(s.Dims) {
		return fmt.Errorf("star: group-by has %d levels, schema has %d dimensions", len(levels), len(s.Dims))
	}
	for i, l := range levels {
		if l < 0 || l > s.Dims[i].AllLevel() {
			return fmt.Errorf("star: dimension %s level %d out of range [0,%d]",
				s.Dims[i].Name, l, s.Dims[i].AllLevel())
		}
	}
	return nil
}

// GroupByName renders a level vector with the paper's notation, e.g.
// levels (1,2,2,0) over dimensions A,B,C,D is "A'B”C”D". Dimensions
// aggregated out appear as "(A:ALL)".
func (s *Schema) GroupByName(levels []int) string {
	var b strings.Builder
	for i, l := range levels {
		d := s.Dims[i]
		if l == d.AllLevel() {
			fmt.Fprintf(&b, "(%s:ALL)", d.Name)
		} else {
			b.WriteString(d.LevelName(l))
		}
	}
	return b.String()
}

// LevelCards returns the member-code cardinality of each dimension at
// the given group-by levels (1 for the virtual ALL level). The
// execution layer's packed group keys and the planner's memory model
// both size their per-dimension bit fields from these cards.
func (s *Schema) LevelCards(levels []int) []int32 {
	cards := make([]int32, len(s.Dims))
	for i, d := range s.Dims {
		cards[i] = d.Card(levels[i])
	}
	return cards
}

// PackedGroupBits returns the total bits needed to pack a group-by key
// at the given levels into a single machine word: one bit field per
// dimension, sized to hold the level's maximum member code (card-1).
// A dimension with a single member (the ALL level) contributes 0 bits.
// Keys pack into a uint64 when the result is at most 64.
func (s *Schema) PackedGroupBits(levels []int) int {
	total := 0
	for i, d := range s.Dims {
		total += bits.Len32(uint32(d.Card(levels[i])) - 1)
	}
	return total
}

// ViewSchema returns the heap-file schema for a view of this star schema:
// one int32 key column per dimension (named after the dimension) plus the
// measure.
func (s *Schema) ViewSchema() table.Schema {
	keys := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		keys[i] = d.Name
	}
	return table.NewSchema(keys, []string{s.Measure})
}

// DimTableSchema returns the heap-file schema of a dimension table: one
// int32 column per level, base first.
func (s *Schema) DimTableSchema(dim int) table.Schema {
	d := s.Dims[dim]
	keys := make([]string, d.NumLevels())
	for l := range keys {
		keys[l] = d.LevelName(l)
	}
	return table.NewSchema(keys, nil)
}

// RowWidthBytes returns the width of one view tuple; the paper's tuples
// are 20 bytes (four 4-byte dimension codes + one measure).
func (s *Schema) RowWidthBytes() int { return s.ViewSchema().TupleSize() }

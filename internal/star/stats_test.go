package star

import (
	"path/filepath"
	"testing"
)

func TestComputeStatsCountsEveryRow(t *testing.T) {
	db := buildDB(t, 3000)
	st, err := db.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 3000 {
		t.Fatalf("Rows = %d", st.Rows)
	}
	for i, d := range db.Schema.Dims {
		for l := 0; l < d.NumLevels(); l++ {
			var sum int64
			for _, n := range st.Counts[i][l] {
				sum += n
			}
			if sum != 3000 {
				t.Fatalf("dim %d level %d counts sum to %d", i, l, sum)
			}
		}
		// Rollup consistency: level-l counts aggregate level-(l-1).
		for l := 1; l < d.NumLevels(); l++ {
			derived := make([]int64, d.Card(l))
			for c, n := range st.Counts[i][l-1] {
				derived[d.Levels[l-1].Parent[c]] += n
			}
			for c := range derived {
				if derived[c] != st.Counts[i][l][c] {
					t.Fatalf("dim %d level %d code %d: derived %d, stored %d",
						i, l, c, derived[c], st.Counts[i][l][c])
				}
			}
		}
	}
}

func TestStatsFrac(t *testing.T) {
	db := buildDB(t, 1000)
	if err := db.RefreshStats(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats
	d := db.Schema.Dims[0]

	// Full member set at the top level = 1.
	if got := st.Frac(d, 0, 2, []int32{0, 1, 2}); got != 1 {
		t.Fatalf("full-set frac = %v", got)
	}
	// Nil = unrestricted.
	if got := st.Frac(d, 0, 1, nil); got != 1 {
		t.Fatalf("nil frac = %v", got)
	}
	// Single member matches its count.
	want := float64(st.Counts[0][2][1]) / 1000
	if got := st.Frac(d, 0, 2, []int32{1}); got != want {
		t.Fatalf("single frac = %v, want %v", got, want)
	}
	// Nil stats behave as uniform-unknown (fraction 1).
	var none *Stats
	if got := none.Frac(d, 0, 2, []int32{1}); got != 1 {
		t.Fatalf("nil-stats frac = %v", got)
	}
}

func TestStatsPersistAcrossReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	schema := smallSchema(t)
	db, err := Create(dir, schema, 64)
	if err != nil {
		t.Fatal(err)
	}
	appendFacts(t, db, 700, 1)
	if err := db.RefreshStats(); err != nil {
		t.Fatal(err)
	}
	wantFrac := db.Stats.Frac(schema.Dims[1], 1, 1, []int32{2})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Stats == nil {
		t.Fatal("stats lost across reopen")
	}
	if got := db2.Stats.Frac(db2.Schema.Dims[1], 1, 1, []int32{2}); got != wantFrac {
		t.Fatalf("frac after reopen = %v, want %v", got, wantFrac)
	}
	if db2.Stats.Rows != 700 {
		t.Fatalf("stats rows = %d", db2.Stats.Rows)
	}
}

func TestMaterializeMultiLayout(t *testing.T) {
	db := buildDB(t, 3000)
	v, err := db.MaterializeMulti([]int{1, 1, 0})
	if err != nil {
		t.Fatalf("MaterializeMulti: %v", err)
	}
	if !v.MultiAgg() {
		t.Fatal("view not multi-aggregate")
	}
	if v.Heap.Schema().NumMeasures() != 4 {
		t.Fatalf("measures = %d", v.Heap.Schema().NumMeasures())
	}

	// Oracle per group from the base table.
	type st struct{ sum, count, min, max float64 }
	want := map[[3]int32]*st{}
	err = db.Base().Heap.Scan(func(row int64, keys []int32, ms []float64) error {
		k := [3]int32{
			db.Schema.Dims[0].RollUp(keys[0], 0, 1),
			db.Schema.Dims[1].RollUp(keys[1], 0, 1),
			keys[2],
		}
		m := ms[0]
		w, ok := want[k]
		if !ok {
			w = &st{min: m, max: m}
			want[k] = w
		}
		w.sum += m
		w.count++
		if m < w.min {
			w.min = m
		}
		if m > w.max {
			w.max = m
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	err = v.Heap.Scan(func(row int64, keys []int32, ms []float64) error {
		rows++
		k := [3]int32{keys[0], keys[1], keys[2]}
		w := want[k]
		if w == nil {
			t.Fatalf("unexpected group %v", k)
		}
		if ms[AggSum] != w.sum || ms[AggCount] != w.count || ms[AggMin] != w.min || ms[AggMax] != w.max {
			t.Fatalf("group %v = %v, want %+v", k, ms, w)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != len(want) {
		t.Fatalf("rows = %d, want %d", rows, len(want))
	}
}

func TestMultiViewMaintenance(t *testing.T) {
	db := buildDB(t, 1500)
	v, err := db.MaterializeMulti([]int{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	appendFacts(t, db, 400, 13)
	if err := db.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(v); err != nil {
		t.Fatal(err)
	}
	if !v.MultiAgg() {
		t.Fatal("layout lost across refresh/compact")
	}
	// Spot-check: per-group counts sum to total rows.
	var counted float64
	err = v.Heap.Scan(func(row int64, keys []int32, ms []float64) error {
		counted += ms[AggCount]
		// min <= max always
		if ms[AggMin] > ms[AggMax] {
			t.Fatalf("group min %v > max %v", ms[AggMin], ms[AggMax])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if counted != 1900 {
		t.Fatalf("counts sum to %v, want 1900", counted)
	}
}

func TestMaterializeMultiSkipsSumOnlySource(t *testing.T) {
	db := buildDB(t, 800)
	if _, err := db.Materialize([]int{1, 1, 0}); err != nil { // sum-only
		t.Fatal(err)
	}
	// A multi view derivable from the sum-only view must still be
	// computed from the base table (the only full-information source).
	src := db.cheapestSource([]int{2, 2, 0}, true)
	if src != db.Base() {
		t.Fatalf("multi source = %s, want base", src.Name)
	}
	v, err := db.MaterializeMulti([]int{2, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	// And a subsequent multi view CAN derive from the first multi view.
	src2 := db.cheapestSource([]int{2, 2, 1}, true)
	if src2 != v {
		t.Fatalf("second multi source = %s, want %s", src2.Name, v.Name)
	}
}

func TestMultiViewPersistsAcrossReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	schema := smallSchema(t)
	db, err := Create(dir, schema, 64)
	if err != nil {
		t.Fatal(err)
	}
	appendFacts(t, db, 300, 2)
	if _, err := db.MaterializeMulti([]int{1, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v := db2.Views[1]
	if !v.MultiAgg() {
		t.Fatal("multi layout lost across reopen")
	}
	if v.Heap.Schema().NumMeasures() != 4 {
		t.Fatal("measure columns lost")
	}
}

func TestRefreshUpdatesStats(t *testing.T) {
	db := buildDB(t, 500)
	if err := db.Refresh(); err != nil { // no views: stats only
		t.Fatal(err)
	}
	if db.Stats == nil || db.Stats.Rows != 500 {
		t.Fatalf("stats after first refresh = %+v", db.Stats)
	}
	appendFacts(t, db, 250, 4)
	if err := db.Refresh(); err != nil {
		t.Fatal(err)
	}
	if db.Stats.Rows != 750 {
		t.Fatalf("stats rows after load+refresh = %d, want 750", db.Stats.Rows)
	}
}

package star

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// testSchema builds a small 3-dim schema (plus tests use dim D sometimes).
func smallSchema(t *testing.T) *Schema {
	t.Helper()
	a, err := UniformDimension("A", []int{24, 6, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := UniformDimension("B", []int{12, 6, 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := UniformDimension("C", []int{8, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSchema([]*Dimension{a, b, c}, "sales")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// buildDB creates a database with n random facts.
func buildDB(t *testing.T, n int) *Database {
	t.Helper()
	schema := smallSchema(t)
	db, err := Create(filepath.Join(t.TempDir(), "db"), schema, 64)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	app := db.Base().Heap.NewAppender()
	for i := 0; i < n; i++ {
		keys := []int32{
			int32(rng.Intn(24)),
			int32(rng.Intn(12)),
			int32(rng.Intn(8)),
		}
		if err := app.Append(keys, []float64{float64(rng.Intn(100))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSchemaBasics(t *testing.T) {
	s := smallSchema(t)
	if s.NumDims() != 3 {
		t.Fatalf("NumDims = %d", s.NumDims())
	}
	if s.DimIndex("B") != 1 || s.DimIndex("Z") != -1 {
		t.Fatal("DimIndex wrong")
	}
	if err := s.ValidLevels([]int{0, 0, 0}); err != nil {
		t.Fatalf("ValidLevels base: %v", err)
	}
	if err := s.ValidLevels([]int{0, 0}); err == nil {
		t.Fatal("ValidLevels accepted short vector")
	}
	if err := s.ValidLevels([]int{0, 0, 9}); err == nil {
		t.Fatal("ValidLevels accepted out-of-range level")
	}
	if got := s.GroupByName([]int{1, 2, 0}); got != "A'B''C" {
		t.Fatalf("GroupByName = %q", got)
	}
	if got := s.GroupByName([]int{1, 2, 3}); got != "A'B''(C:ALL)" {
		t.Fatalf("GroupByName with ALL = %q", got)
	}
	if s.RowWidthBytes() != 3*4+8 {
		t.Fatalf("RowWidthBytes = %d", s.RowWidthBytes())
	}
}

func TestDerives(t *testing.T) {
	cases := []struct {
		src, dst []int
		want     bool
	}{
		{[]int{0, 0, 0}, []int{2, 2, 2}, true},
		{[]int{1, 1, 0}, []int{1, 2, 0}, true},
		{[]int{1, 1, 1}, []int{0, 2, 2}, false},
		{[]int{0, 0}, []int{0, 0, 0}, false},
		{[]int{2, 2, 2}, []int{2, 2, 2}, true},
	}
	for _, c := range cases {
		if got := Derives(c.src, c.dst); got != c.want {
			t.Errorf("Derives(%v,%v) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestMaterializeCorrectness(t *testing.T) {
	db := buildDB(t, 5000)
	v, err := db.Materialize([]int{1, 2, 0})
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if v.Name != "A'B''C" {
		t.Fatalf("view name = %q", v.Name)
	}

	// Oracle: aggregate the base table directly.
	want := map[[3]int32]float64{}
	err = db.Base().Heap.Scan(func(row int64, keys []int32, ms []float64) error {
		k := [3]int32{
			db.Schema.Dims[0].RollUp(keys[0], 0, 1),
			db.Schema.Dims[1].RollUp(keys[1], 0, 2),
			keys[2],
		}
		want[k] += ms[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[[3]int32]float64{}
	err = v.Heap.Scan(func(row int64, keys []int32, ms []float64) error {
		got[[3]int32{keys[0], keys[1], keys[2]}] = ms[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("view has %d groups, oracle has %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("group %v = %v, want %v", k, got[k], w)
		}
	}
}

func TestMaterializeUsesCheapestSource(t *testing.T) {
	db := buildDB(t, 3000)
	mid, err := db.Materialize([]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Materializing a coarser view must pick the mid view, not base.
	src := db.cheapestSource([]int{2, 2, 2}, false)
	if src != mid {
		t.Fatalf("cheapestSource picked %s, want %s", src.Name, mid.Name)
	}
	top, err := db.Materialize([]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if top.Rows() > mid.Rows() {
		t.Fatalf("coarser view has more rows (%d) than finer (%d)", top.Rows(), mid.Rows())
	}
}

func TestMaterializeDuplicateRejected(t *testing.T) {
	db := buildDB(t, 100)
	if _, err := db.Materialize([]int{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize([]int{1, 1, 1}); err == nil {
		t.Fatal("duplicate Materialize succeeded")
	}
}

func TestDatabaseSaveOpenRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	schema := smallSchema(t)
	db, err := Create(dir, schema, 64)
	if err != nil {
		t.Fatal(err)
	}
	app := db.Base().Heap.NewAppender()
	for i := 0; i < 500; i++ {
		app.Append([]int32{int32(i % 24), int32(i % 12), int32(i % 8)}, []float64{1})
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize([]int{1, 1, 0}); err != nil {
		t.Fatal(err)
	}
	v := db.ViewByLevels([]int{1, 1, 0})
	if err := db.BuildIndex(v, 0); err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := Open(dir, 64)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db2.Close()
	if db2.Base().Rows() != 500 {
		t.Fatalf("base rows = %d", db2.Base().Rows())
	}
	v2 := db2.ViewByName("A'B'C")
	if v2 == nil {
		t.Fatal("materialized view missing after reopen")
	}
	if v2.Rows() != v.Rows() {
		t.Fatalf("view rows = %d, want %d", v2.Rows(), v.Rows())
	}
	if !v2.HasIndex(0) {
		t.Fatal("index missing after reopen")
	}
	bs, ok, err := v2.Indexes[0].Lookup(0)
	if err != nil || !ok {
		t.Fatalf("index lookup after reopen: ok=%v err=%v", ok, err)
	}
	if bs.Count() == 0 {
		t.Fatal("index bitmap empty after reopen")
	}
	// Dimension metadata survived.
	if db2.Schema.Dims[0].MemberName(2, 0) != "A1" {
		t.Fatal("dimension names lost")
	}
	// Dimension tables survived.
	if db2.DimTables[0].Count() != 24 {
		t.Fatalf("dim table rows = %d", db2.DimTables[0].Count())
	}
}

func TestDimensionTablesContents(t *testing.T) {
	db := buildDB(t, 10)
	d := db.Schema.Dims[0]
	var rows int64
	err := db.DimTables[0].Scan(func(row int64, keys []int32, ms []float64) error {
		rows++
		base := keys[0]
		if keys[1] != d.RollUp(base, 0, 1) || keys[2] != d.RollUp(base, 0, 2) {
			t.Fatalf("dim table row %d codes %v inconsistent with hierarchy", row, keys)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 24 {
		t.Fatalf("dim table rows = %d, want 24", rows)
	}
}

func TestBuildIndexValidation(t *testing.T) {
	db := buildDB(t, 50)
	if err := db.BuildIndex(db.Base(), 9); err == nil {
		t.Fatal("BuildIndex accepted bad dimension")
	}
	if err := db.BuildIndex(db.Base(), 1); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex(db.Base(), 1); err == nil {
		t.Fatal("duplicate BuildIndex succeeded")
	}
}

func TestColdResetDropsCaches(t *testing.T) {
	db := buildDB(t, 2000)
	if err := db.BuildIndex(db.Base(), 0); err != nil {
		t.Fatal(err)
	}
	ix := db.Base().Indexes[0]
	if _, _, err := ix.Lookup(3); err != nil {
		t.Fatal(err)
	}
	if err := db.ColdReset(); err != nil {
		t.Fatal(err)
	}
	db.Pool.ResetStats()
	if _, _, err := ix.Lookup(3); err != nil {
		t.Fatal(err)
	}
	if db.Pool.Stats().Reads() == 0 {
		t.Fatal("lookup after ColdReset did not hit disk")
	}
}

func TestCreateExistingDatabaseFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	schema := smallSchema(t)
	db, err := Create(dir, schema, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, schema, 16); err == nil {
		t.Fatal("Create over existing database succeeded")
	}
}

func TestOpenMissingDatabase(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), 16); err == nil {
		t.Fatal("Open of missing database succeeded")
	}
}

func TestOpenRejectsCorruptManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dir, smallSchema(t), 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	metaPath := filepath.Join(dir, "meta.json")
	if err := os.WriteFile(metaPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 16); err == nil {
		t.Fatal("Open accepted a corrupt manifest")
	}
	// Manifest pointing at a missing file.
	if err := os.WriteFile(metaPath, []byte(`{"measure":"m","dims":[{"name":"X","levels":[{"Name":"x","Members":["a"]}]}],"dim_tables":["missing.heap"],"views":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 16); err == nil {
		t.Fatal("Open accepted a manifest with missing files")
	}
}

func TestOpenRejectsTruncatedHeap(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dir, smallSchema(t), 16)
	if err != nil {
		t.Fatal(err)
	}
	appendFacts(t, db, 50, 0)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate the base heap to a non-page-aligned size.
	viewFile := filepath.Join(dir, "view_ABC.heap")
	if err := os.Truncate(viewFile, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 16); err == nil {
		t.Fatal("Open accepted a truncated heap file")
	}
}

package star

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"mdxopt/internal/bitmap"
	"mdxopt/internal/storage"
	"mdxopt/internal/table"
)

// View is a stored group-by: the base fact table (all levels 0) or a
// materialized aggregate of it. Column i holds member codes of dimension
// i at Levels[i].
type View struct {
	Name    string
	Levels  []int
	Heap    *table.HeapFile
	Indexes map[int]bitmap.JoinIndex // dimension position -> bitmap join index

	file       string         // heap file name relative to the database dir
	indexFiles map[int]string // index file names relative to the database dir

	// refreshedRows counts the base-table rows folded into this view
	// (see maintain.go). Unused for the base view itself.
	refreshedRows int64
}

// Rows returns the view's row count.
func (v *View) Rows() int64 { return v.Heap.Count() }

// Pages returns the view's data page count.
func (v *View) Pages() int64 { return v.Heap.DataPages() }

// HasIndex reports whether dimension dim has a bitmap join index on this
// view.
func (v *View) HasIndex(dim int) bool { return v.Indexes[dim] != nil }

func (v *View) String() string {
	return fmt.Sprintf("View(%s, %d rows, %d pages)", v.Name, v.Rows(), v.Pages())
}

// Database is an on-disk star database: dimension tables, the base fact
// table, materialized group-by views, and bitmap join indexes, all served
// through one buffer pool.
type Database struct {
	Dir       string
	Pool      *storage.Pool
	Schema    *Schema
	DimTables []*table.HeapFile
	Views     []*View // Views[0] is the base fact table
	// Stats holds base-table member frequencies (may be nil); see
	// stats.go. RefreshStats computes them, Save persists them.
	Stats *Stats
}

const metaFile = "meta.json"

// metadata serialization types
type dimJSON struct {
	Name   string      `json:"name"`
	Levels []LevelSpec `json:"levels"`
}

type viewJSON struct {
	Name   string `json:"name"`
	Levels []int  `json:"levels"`
	File   string `json:"file"`
	// RefreshedRows is a pointer so manifests written before view
	// maintenance existed (field absent) load as fresh rather than
	// fully stale.
	RefreshedRows *int64            `json:"refreshed_rows,omitempty"`
	MultiAgg      bool              `json:"multi_agg,omitempty"`
	Indexes       map[string]string `json:"indexes,omitempty"` // dim position -> file
}

type metaJSON struct {
	Measure   string     `json:"measure"`
	Dims      []dimJSON  `json:"dims"`
	DimTables []string   `json:"dim_tables"`
	Views     []viewJSON `json:"views"`
	// Base-level member counts per dimension; upper levels are derived
	// on load. Omitted when statistics were never computed.
	StatsBase [][]int64 `json:"stats_base,omitempty"`
	StatsRows int64     `json:"stats_rows,omitempty"`
}

// Create initializes a new database directory with dimension tables and
// an empty base fact table. The caller appends facts via BaseAppender and
// must call Save when done.
func Create(dir string, schema *Schema, poolFrames int) (*Database, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("star: create %s: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, metaFile)); err == nil {
		return nil, fmt.Errorf("star: database already exists in %s", dir)
	}
	db := &Database{
		Dir:    dir,
		Pool:   storage.NewPool(poolFrames),
		Schema: schema,
	}
	// Dimension tables: one row per base member carrying its codes at
	// every level.
	for i, d := range schema.Dims {
		name := "dim_" + d.Name + ".heap"
		h, err := table.Create(db.Pool, filepath.Join(dir, name), schema.DimTableSchema(i))
		if err != nil {
			return nil, err
		}
		app := h.NewAppender()
		keys := make([]int32, d.NumLevels())
		for c := int32(0); c < d.Card(0); c++ {
			for l := 0; l < d.NumLevels(); l++ {
				keys[l] = d.RollUp(c, 0, l)
			}
			if err := app.Append(keys, nil); err != nil {
				return nil, err
			}
		}
		if err := app.Close(); err != nil {
			return nil, err
		}
		db.DimTables = append(db.DimTables, h)
	}
	// Base fact table at all-base levels.
	levels := make([]int, schema.NumDims())
	base, err := db.newView(levels, false)
	if err != nil {
		return nil, err
	}
	db.Views = append(db.Views, base)
	return db, nil
}

// newView creates an empty stored view for the given level vector, with
// the multi-aggregate layout when multi is set.
func (db *Database) newView(levels []int, multi bool) (*View, error) {
	if err := db.Schema.ValidLevels(levels); err != nil {
		return nil, err
	}
	name := db.Schema.GroupByName(levels)
	file := "view_" + sanitizeName(name) + ".heap"
	schema := db.Schema.ViewSchema()
	if multi {
		schema = db.Schema.MultiViewSchema()
	}
	h, err := table.Create(db.Pool, filepath.Join(db.Dir, file), schema)
	if err != nil {
		return nil, err
	}
	lv := make([]int, len(levels))
	copy(lv, levels)
	return &View{
		Name:       name,
		Levels:     lv,
		Heap:       h,
		Indexes:    map[int]bitmap.JoinIndex{},
		file:       file,
		indexFiles: map[int]string{},
	}, nil
}

// sanitizeName makes a group-by name safe as a file name (primes and
// parens removed).
func sanitizeName(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch r {
		case '\'':
			out = append(out, 'p')
		case '(', ')', ':':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// Base returns the base fact table view.
func (db *Database) Base() *View { return db.Views[0] }

// ViewByName returns the named view, or nil.
func (db *Database) ViewByName(name string) *View {
	for _, v := range db.Views {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// ViewByLevels returns the view with exactly the given level vector, or
// nil.
func (db *Database) ViewByLevels(levels []int) *View {
	for _, v := range db.Views {
		if equalLevels(v.Levels, levels) {
			return v
		}
	}
	return nil
}

func equalLevels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Materialize computes and stores the group-by with the given level
// vector by aggregating the finest existing view that can answer it (the
// base table at worst). The view stores the paper's sum-only layout;
// MaterializeMulti stores the multi-aggregate layout instead. Returns
// the new view.
func (db *Database) Materialize(levels []int) (*View, error) {
	return db.materialize(levels, false)
}

// MaterializeMulti is Materialize with the multi-aggregate layout (sum,
// count, min, max per group), which lets COUNT/MIN/MAX/AVG queries be
// answered from the view.
func (db *Database) MaterializeMulti(levels []int) (*View, error) {
	return db.materialize(levels, true)
}

func (db *Database) materialize(levels []int, multi bool) (*View, error) {
	if err := db.Schema.ValidLevels(levels); err != nil {
		return nil, err
	}
	if v := db.ViewByLevels(levels); v != nil {
		return nil, fmt.Errorf("star: view %s already materialized", v.Name)
	}
	src := db.cheapestSource(levels, multi)
	if src == nil {
		return nil, errors.New("star: no source view can answer the requested group-by")
	}
	out, err := db.newView(levels, multi)
	if err != nil {
		return nil, err
	}

	// Hash aggregation: roll each source tuple up to the target levels.
	nd := db.Schema.NumDims()
	agg := make(map[string][4]float64)
	keyBuf := make([]byte, 4*nd)
	rolled := make([]int32, nd)
	err = src.Heap.Scan(func(row int64, keys []int32, measures []float64) error {
		for i := 0; i < nd; i++ {
			rolled[i] = db.Schema.Dims[i].RollUp(keys[i], src.Levels[i], levels[i])
			binary.LittleEndian.PutUint32(keyBuf[i*4:], uint32(rolled[i]))
		}
		mergeInto(agg, string(keyBuf), TupleAggregates(src, measures))
		return nil
	})
	if err != nil {
		return nil, err
	}

	if err := appendGroups(out.Heap, nd, agg, out.MultiAgg(), true); err != nil {
		return nil, err
	}
	out.refreshedRows = db.Base().Rows()
	db.Views = append(db.Views, out)
	return out, nil
}

// mergeInto folds vals into the accumulator map entry for key.
func mergeInto(agg map[string][4]float64, key string, vals [4]float64) {
	if cur, ok := agg[key]; ok {
		MergeAggregates(&cur, vals)
		agg[key] = cur
	} else {
		agg[key] = vals
	}
}

// cheapestSource returns the smallest existing *fresh* view that can
// derive the target levels; when multi is set, only sources carrying
// full aggregate information qualify (the base table or another
// multi-aggregate view).
func (db *Database) cheapestSource(levels []int, multi bool) *View {
	var best *View
	for _, v := range db.Views {
		if !Derives(v.Levels, levels) || !db.Fresh(v) {
			continue
		}
		if multi && v != db.Base() && !v.MultiAgg() {
			continue
		}
		if best == nil || v.Rows() < best.Rows() {
			best = v
		}
	}
	return best
}

// Derives reports whether a view with levels src can answer a group-by
// with levels dst: src must be at the same or a finer level in every
// dimension.
func Derives(src, dst []int) bool {
	if len(src) != len(dst) {
		return false
	}
	for i := range src {
		if src[i] > dst[i] {
			return false
		}
	}
	return true
}

// BuildIndex builds and persists an uncompressed bitmap join index on
// dimension dim of view v.
func (db *Database) BuildIndex(v *View, dim int) error {
	return db.BuildIndexFormat(v, dim, false)
}

// BuildIndexFormat builds and persists a bitmap join index on dimension
// dim of view v, EWAH-compressed when compressed is set. The format is
// recorded in the file itself; Open dispatches transparently.
func (db *Database) BuildIndexFormat(v *View, dim int, compressed bool) error {
	if dim < 0 || dim >= db.Schema.NumDims() {
		return fmt.Errorf("star: dimension %d out of range", dim)
	}
	if v.Indexes[dim] != nil {
		return fmt.Errorf("star: %s already has an index on %s", v.Name, db.Schema.Dims[dim].Name)
	}
	file := "idx_" + sanitizeName(v.Name) + "_" + strconv.Itoa(dim) + ".bmx"
	path := filepath.Join(db.Dir, file)
	build := bitmap.BuildAndCreate
	if compressed {
		build = bitmap.BuildAndCreateCompressed
	}
	if err := build(db.Pool, path, v.Heap, dim); err != nil {
		return err
	}
	ix, err := bitmap.Open(db.Pool, path)
	if err != nil {
		return err
	}
	v.Indexes[dim] = ix
	v.indexFiles[dim] = file
	return nil
}

// Save writes table metadata and the database manifest, then flushes the
// buffer pool so everything is durable.
func (db *Database) Save() error {
	for _, h := range db.DimTables {
		if err := h.Close(); err != nil {
			return err
		}
	}
	meta := metaJSON{Measure: db.Schema.Measure}
	if db.Stats != nil {
		meta.StatsRows = db.Stats.Rows
		for i := range db.Schema.Dims {
			meta.StatsBase = append(meta.StatsBase, db.Stats.Counts[i][0])
		}
	}
	for _, d := range db.Schema.Dims {
		meta.Dims = append(meta.Dims, dimJSON{Name: d.Name, Levels: d.Levels})
	}
	for _, d := range db.Schema.Dims {
		meta.DimTables = append(meta.DimTables, "dim_"+d.Name+".heap")
	}
	for _, v := range db.Views {
		if err := v.Heap.Close(); err != nil {
			return err
		}
		rr := v.refreshedRows
		vj := viewJSON{Name: v.Name, Levels: v.Levels, File: v.file, RefreshedRows: &rr, MultiAgg: v.MultiAgg()}
		if len(v.indexFiles) > 0 {
			vj.Indexes = map[string]string{}
			for dim, f := range v.indexFiles {
				vj.Indexes[strconv.Itoa(dim)] = f
			}
		}
		meta.Views = append(meta.Views, vj)
	}
	blob, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(db.Dir, metaFile), blob, 0o644); err != nil {
		return err
	}
	return db.Pool.FlushAll()
}

// Open loads a database saved by Save, with a single-shard buffer pool
// of poolFrames frames (no readahead).
func Open(dir string, poolFrames int) (*Database, error) {
	return OpenWith(dir, storage.PoolOpts{Frames: poolFrames})
}

// OpenWith loads a database saved by Save with explicit buffer-pool
// options (lock shard count and sequential readahead in addition to
// capacity).
func OpenWith(dir string, pool storage.PoolOpts) (*Database, error) {
	blob, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("star: open database %s: %w", dir, err)
	}
	var meta metaJSON
	if err := json.Unmarshal(blob, &meta); err != nil {
		return nil, fmt.Errorf("star: corrupt manifest in %s: %w", dir, err)
	}
	dims := make([]*Dimension, len(meta.Dims))
	for i, dj := range meta.Dims {
		d, err := NewDimension(dj.Name, dj.Levels)
		if err != nil {
			return nil, fmt.Errorf("star: manifest dimension %s: %w", dj.Name, err)
		}
		dims[i] = d
	}
	schema, err := NewSchema(dims, meta.Measure)
	if err != nil {
		return nil, err
	}
	db := &Database{Dir: dir, Pool: storage.NewPoolWith(pool), Schema: schema}
	for i, file := range meta.DimTables {
		h, err := table.Open(db.Pool, filepath.Join(dir, file), schema.DimTableSchema(i))
		if err != nil {
			return nil, err
		}
		db.DimTables = append(db.DimTables, h)
	}
	for _, vj := range meta.Views {
		viewSchema := schema.ViewSchema()
		if vj.MultiAgg {
			viewSchema = schema.MultiViewSchema()
		}
		h, err := table.Open(db.Pool, filepath.Join(dir, vj.File), viewSchema)
		if err != nil {
			return nil, err
		}
		v := &View{
			Name:       vj.Name,
			Levels:     vj.Levels,
			Heap:       h,
			Indexes:    map[int]bitmap.JoinIndex{},
			file:       vj.File,
			indexFiles: map[int]string{},
		}
		if vj.RefreshedRows != nil {
			v.refreshedRows = *vj.RefreshedRows
		} else if len(db.Views) > 0 {
			// Pre-maintenance manifest: assume the view was current when
			// the database was written.
			v.refreshedRows = db.Views[0].Rows()
		}
		for dimStr, f := range vj.Indexes {
			dim, err := strconv.Atoi(dimStr)
			if err != nil {
				return nil, fmt.Errorf("star: manifest index key %q: %w", dimStr, err)
			}
			ix, err := bitmap.Open(db.Pool, filepath.Join(dir, f))
			if err != nil {
				return nil, err
			}
			v.Indexes[dim] = ix
			v.indexFiles[dim] = f
		}
		db.Views = append(db.Views, v)
	}
	if len(db.Views) == 0 {
		return nil, fmt.Errorf("star: database %s has no views", dir)
	}
	if meta.StatsBase != nil {
		st, err := statsFromBase(schema, meta.StatsBase, meta.StatsRows)
		if err != nil {
			return nil, err
		}
		db.Stats = st
	}
	return db, nil
}

// ColdReset drops all cached pages and in-memory index bitmaps,
// reproducing the paper's cold-cache discipline between measurements.
func (db *Database) ColdReset() error {
	for _, v := range db.Views {
		for _, ix := range v.Indexes {
			ix.DropCache()
		}
	}
	return db.Pool.FlushAll()
}

// Close saves and closes all files. The database is unusable afterwards.
func (db *Database) Close() error {
	if err := db.Save(); err != nil {
		return err
	}
	return db.Pool.CloseFiles()
}

package star

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdxopt/internal/bitmap"
	"mdxopt/internal/storage"
	"mdxopt/internal/table"
)

// View is a stored group-by: the base fact table (all levels 0) or a
// materialized aggregate of it. Column i holds member codes of dimension
// i at Levels[i].
type View struct {
	Name    string
	Levels  []int
	Heap    *table.HeapFile
	Indexes map[int]bitmap.JoinIndex // dimension position -> bitmap join index

	file       string         // heap file name relative to the database dir
	indexFiles map[int]string // index file names relative to the database dir

	// refreshedRows counts the base-table rows folded into this view
	// (see maintain.go). Unused for the base view itself.
	refreshedRows int64
}

// Rows returns the view's row count.
func (v *View) Rows() int64 { return v.Heap.Count() }

// Pages returns the view's data page count.
func (v *View) Pages() int64 { return v.Heap.DataPages() }

// HasIndex reports whether dimension dim has a bitmap join index on this
// view.
func (v *View) HasIndex(dim int) bool { return v.Indexes[dim] != nil }

func (v *View) String() string {
	return fmt.Sprintf("View(%s, %d rows, %d pages)", v.Name, v.Rows(), v.Pages())
}

// Database is an on-disk star database: dimension tables, the base fact
// table, materialized group-by views, and bitmap join indexes, all served
// through one buffer pool.
//
// The exported fields are the *live*, mutable catalog; mutations
// serialize on an internal lock and publish immutable Snapshots of it
// (see snapshot.go). Concurrent readers never touch the live fields:
// they pin a published snapshot instead.
type Database struct {
	Dir       string
	Pool      *storage.Pool
	Schema    *Schema
	DimTables []*table.HeapFile
	Views     []*View // Views[0] is the base fact table
	// Stats holds base-table member frequencies (may be nil); see
	// stats.go. RefreshStats computes them, Save persists them.
	Stats *Stats

	// mutMu serializes mutations against each other. Readers do not
	// take it: they pin published snapshots.
	mutMu sync.Mutex
	// epochs tracks the published epoch, reader pins, and retired files
	// awaiting reclamation.
	epochs *storage.EpochTable
	// published is the latest published snapshot; stored under the
	// epoch table's lock by publishLocked so Pin never observes an
	// epoch without its snapshot.
	published atomic.Pointer[Snapshot]
	// pendingRetire accumulates files replaced by the mutation in
	// progress; they are handed to the epoch table at the next publish.
	pendingRetire []storage.RetiredFile
	// fileSeq numbers replacement files (see nextFileName) so a rebuilt
	// index or compacted heap never reuses a path the pool still serves
	// to older snapshots.
	fileSeq          uint64
	lastPublishNanos atomic.Int64
}

const metaFile = "meta.json"

// snapshotAt freezes the live catalog into an immutable Snapshot at the
// given epoch. Cheap: it clones view structs and map headers, not data.
func (db *Database) snapshotAt(epoch uint64) *Snapshot {
	views := make([]*View, len(db.Views))
	for i, v := range db.Views {
		views[i] = v.freeze()
	}
	dims := make([]*table.HeapFile, len(db.DimTables))
	for i, h := range db.DimTables {
		dims[i] = h.Freeze()
	}
	return &Snapshot{
		Epoch:     epoch,
		Dir:       db.Dir,
		Pool:      db.Pool,
		Schema:    db.Schema,
		DimTables: dims,
		Views:     views,
		Stats:     db.Stats,
	}
}

// publishLocked publishes the live state as the successor snapshot and
// hands the mutation's retired files to the epoch table. Callers hold
// mutMu.
func (db *Database) publishLocked() {
	start := time.Now()
	retire := db.pendingRetire
	db.pendingRetire = nil
	db.epochs.Publish(retire, func(epoch uint64) {
		db.published.Store(db.snapshotAt(epoch))
	})
	db.lastPublishNanos.Store(time.Since(start).Nanoseconds())
}

// retireLocked queues a replaced file for reclamation at the next
// publish. Callers hold mutMu.
func (db *Database) retireLocked(path string) {
	db.pendingRetire = append(db.pendingRetire, storage.RetiredFile{Pool: db.Pool, Path: path})
}

// Publish publishes the current live state as a new snapshot. The
// catalog-mutating methods publish on their own; Publish is for callers
// that extended heaps directly through appenders (fact loaders) and
// want the appended rows visible to new readers.
func (db *Database) Publish() {
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	db.publishLocked()
}

// Snapshot freezes the current live state into a fresh, unpinned
// snapshot, satisfying Catalog. It is meant for single-threaded
// embedders (tests, benchmarks, experiments); the concurrent serving
// path uses Pin, which reference-counts the published snapshot against
// file reclamation.
func (db *Database) Snapshot() *Snapshot {
	return db.snapshotAt(db.epochs.Current())
}

// Pin returns the latest *published* snapshot with its epoch pinned:
// files it references cannot be reclaimed until the release function
// runs. The pin is taken before the snapshot pointer is loaded, so a
// concurrent publish can hand the reader a newer snapshot than the
// pinned epoch — never an older one — and files either snapshot
// references are protected either way.
func (db *Database) Pin() (*Snapshot, func()) {
	_, unpin := db.epochs.Pin()
	return db.published.Load(), unpin
}

// MaintainStats reports the snapshot lifecycle's counters.
type MaintainStats struct {
	Epoch            uint64 // latest published epoch
	Publishes        int64  // snapshots published since open
	LastPublishNanos int64  // wall time of the most recent publish
	PinnedEpochs     int    // distinct epochs currently pinned by readers
	Pins             int    // outstanding reader pins
	RetiredFiles     int    // replaced files awaiting reclamation
	ReclaimedFiles   int64  // replaced files unlinked since open
}

// MaintainStats snapshots the epoch table's counters.
func (db *Database) MaintainStats() MaintainStats {
	s := db.epochs.Stats()
	return MaintainStats{
		Epoch:            s.Current,
		Publishes:        s.Publishes,
		LastPublishNanos: db.lastPublishNanos.Load(),
		PinnedEpochs:     len(s.PinnedEpochs),
		Pins:             s.Pins,
		RetiredFiles:     s.Retired,
		ReclaimedFiles:   s.Reclaimed,
	}
}

// nextFileName generates a fresh versioned file name ("base.gN.ext")
// for a replacement heap or index file. Replacements never reuse a live
// path: the buffer pool registers files by path, and older snapshots
// keep reading the retired file until reclamation.
func (db *Database) nextFileName(base, ext string) string {
	for {
		db.fileSeq++
		name := fmt.Sprintf("%s.g%d%s", base, db.fileSeq, ext)
		path := filepath.Join(db.Dir, name)
		if _, ok := db.Pool.Registered(path); ok {
			continue
		}
		if _, err := os.Stat(path); err == nil {
			continue
		}
		return name
	}
}

// noteFileSeq advances fileSeq past the generation number embedded in a
// manifest file name, so names generated after reopening never collide
// with ones from earlier incarnations.
func (db *Database) noteFileSeq(name string) {
	rest := name
	for {
		i := strings.Index(rest, ".g")
		if i < 0 {
			return
		}
		rest = rest[i+2:]
		j := 0
		for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
			j++
		}
		if j == 0 {
			continue
		}
		if n, err := strconv.ParseUint(rest[:j], 10, 64); err == nil && n > db.fileSeq {
			db.fileSeq = n
		}
	}
}

// metadata serialization types
type dimJSON struct {
	Name   string      `json:"name"`
	Levels []LevelSpec `json:"levels"`
}

type viewJSON struct {
	Name   string `json:"name"`
	Levels []int  `json:"levels"`
	File   string `json:"file"`
	// RefreshedRows is a pointer so manifests written before view
	// maintenance existed (field absent) load as fresh rather than
	// fully stale.
	RefreshedRows *int64            `json:"refreshed_rows,omitempty"`
	MultiAgg      bool              `json:"multi_agg,omitempty"`
	Indexes       map[string]string `json:"indexes,omitempty"` // dim position -> file
}

type metaJSON struct {
	Measure   string     `json:"measure"`
	Dims      []dimJSON  `json:"dims"`
	DimTables []string   `json:"dim_tables"`
	Views     []viewJSON `json:"views"`
	// Base-level member counts per dimension; upper levels are derived
	// on load. Omitted when statistics were never computed.
	StatsBase [][]int64 `json:"stats_base,omitempty"`
	StatsRows int64     `json:"stats_rows,omitempty"`
}

// Create initializes a new database directory with dimension tables and
// an empty base fact table. The caller appends facts via BaseAppender and
// must call Save when done.
func Create(dir string, schema *Schema, poolFrames int) (*Database, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("star: create %s: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, metaFile)); err == nil {
		return nil, fmt.Errorf("star: database already exists in %s", dir)
	}
	db := &Database{
		Dir:    dir,
		Pool:   storage.NewPool(poolFrames),
		Schema: schema,
		epochs: storage.NewEpochTable(),
	}
	// Dimension tables: one row per base member carrying its codes at
	// every level.
	for i, d := range schema.Dims {
		name := "dim_" + d.Name + ".heap"
		h, err := table.Create(db.Pool, filepath.Join(dir, name), schema.DimTableSchema(i))
		if err != nil {
			return nil, err
		}
		app := h.NewAppender()
		keys := make([]int32, d.NumLevels())
		for c := int32(0); c < d.Card(0); c++ {
			for l := 0; l < d.NumLevels(); l++ {
				keys[l] = d.RollUp(c, 0, l)
			}
			if err := app.Append(keys, nil); err != nil {
				return nil, err
			}
		}
		if err := app.Close(); err != nil {
			return nil, err
		}
		db.DimTables = append(db.DimTables, h)
	}
	// Base fact table at all-base levels.
	levels := make([]int, schema.NumDims())
	base, err := db.newView(levels, false)
	if err != nil {
		return nil, err
	}
	db.Views = append(db.Views, base)
	db.publishLocked()
	return db, nil
}

// newView creates an empty stored view for the given level vector, with
// the multi-aggregate layout when multi is set.
func (db *Database) newView(levels []int, multi bool) (*View, error) {
	if err := db.Schema.ValidLevels(levels); err != nil {
		return nil, err
	}
	name := db.Schema.GroupByName(levels)
	file := "view_" + sanitizeName(name) + ".heap"
	schema := db.Schema.ViewSchema()
	if multi {
		schema = db.Schema.MultiViewSchema()
	}
	h, err := table.Create(db.Pool, filepath.Join(db.Dir, file), schema)
	if err != nil {
		return nil, err
	}
	lv := make([]int, len(levels))
	copy(lv, levels)
	return &View{
		Name:       name,
		Levels:     lv,
		Heap:       h,
		Indexes:    map[int]bitmap.JoinIndex{},
		file:       file,
		indexFiles: map[int]string{},
	}, nil
}

// sanitizeName makes a group-by name safe as a file name (primes and
// parens removed).
func sanitizeName(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch r {
		case '\'':
			out = append(out, 'p')
		case '(', ')', ':':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// Base returns the base fact table view.
func (db *Database) Base() *View { return db.Views[0] }

// ViewByName returns the named view, or nil.
func (db *Database) ViewByName(name string) *View {
	for _, v := range db.Views {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// ViewByLevels returns the view with exactly the given level vector, or
// nil.
func (db *Database) ViewByLevels(levels []int) *View {
	for _, v := range db.Views {
		if equalLevels(v.Levels, levels) {
			return v
		}
	}
	return nil
}

func equalLevels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Materialize computes and stores the group-by with the given level
// vector by aggregating the finest existing view that can answer it (the
// base table at worst). The view stores the paper's sum-only layout;
// MaterializeMulti stores the multi-aggregate layout instead. Returns
// the new view.
func (db *Database) Materialize(levels []int) (*View, error) {
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	v, err := db.materialize(levels, false)
	if err != nil {
		return nil, err
	}
	db.publishLocked()
	return v, nil
}

// MaterializeMulti is Materialize with the multi-aggregate layout (sum,
// count, min, max per group), which lets COUNT/MIN/MAX/AVG queries be
// answered from the view.
func (db *Database) MaterializeMulti(levels []int) (*View, error) {
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	v, err := db.materialize(levels, true)
	if err != nil {
		return nil, err
	}
	db.publishLocked()
	return v, nil
}

func (db *Database) materialize(levels []int, multi bool) (*View, error) {
	if err := db.Schema.ValidLevels(levels); err != nil {
		return nil, err
	}
	if v := db.ViewByLevels(levels); v != nil {
		return nil, fmt.Errorf("star: view %s already materialized", v.Name)
	}
	src := db.cheapestSource(levels, multi)
	if src == nil {
		return nil, errors.New("star: no source view can answer the requested group-by")
	}
	out, err := db.newView(levels, multi)
	if err != nil {
		return nil, err
	}

	// Hash aggregation: roll each source tuple up to the target levels.
	nd := db.Schema.NumDims()
	agg := make(map[string][4]float64)
	keyBuf := make([]byte, 4*nd)
	rolled := make([]int32, nd)
	var y storage.Yielder
	err = src.Heap.Scan(func(row int64, keys []int32, measures []float64) error {
		y.Tick()
		for i := 0; i < nd; i++ {
			rolled[i] = db.Schema.Dims[i].RollUp(keys[i], src.Levels[i], levels[i])
			binary.LittleEndian.PutUint32(keyBuf[i*4:], uint32(rolled[i]))
		}
		mergeInto(agg, string(keyBuf), TupleAggregates(src, measures))
		return nil
	})
	if err != nil {
		return nil, err
	}

	if err := appendGroups(out.Heap, nd, agg, out.MultiAgg(), true); err != nil {
		return nil, err
	}
	out.refreshedRows = db.Base().Rows()
	db.Views = append(db.Views, out)
	return out, nil
}

// mergeInto folds vals into the accumulator map entry for key.
func mergeInto(agg map[string][4]float64, key string, vals [4]float64) {
	if cur, ok := agg[key]; ok {
		MergeAggregates(&cur, vals)
		agg[key] = cur
	} else {
		agg[key] = vals
	}
}

// cheapestSource returns the smallest existing *fresh* view that can
// derive the target levels; when multi is set, only sources carrying
// full aggregate information qualify (the base table or another
// multi-aggregate view).
func (db *Database) cheapestSource(levels []int, multi bool) *View {
	var best *View
	for _, v := range db.Views {
		if !Derives(v.Levels, levels) || !db.Fresh(v) {
			continue
		}
		if multi && !v.IsBase() && !v.MultiAgg() {
			continue
		}
		if best == nil || v.Rows() < best.Rows() {
			best = v
		}
	}
	return best
}

// Derives reports whether a view with levels src can answer a group-by
// with levels dst: src must be at the same or a finer level in every
// dimension.
func Derives(src, dst []int) bool {
	if len(src) != len(dst) {
		return false
	}
	for i := range src {
		if src[i] > dst[i] {
			return false
		}
	}
	return true
}

// BuildIndex builds and persists an uncompressed bitmap join index on
// dimension dim of view v.
func (db *Database) BuildIndex(v *View, dim int) error {
	return db.BuildIndexFormat(v, dim, false)
}

// BuildIndexFormat builds and persists a bitmap join index on dimension
// dim of view v, EWAH-compressed when compressed is set. The format is
// recorded in the file itself; Open dispatches transparently.
func (db *Database) BuildIndexFormat(v *View, dim int, compressed bool) error {
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	if err := db.buildIndexLocked(v, dim, compressed); err != nil {
		return err
	}
	db.publishLocked()
	return nil
}

func (db *Database) buildIndexLocked(v *View, dim int, compressed bool) error {
	if dim < 0 || dim >= db.Schema.NumDims() {
		return fmt.Errorf("star: dimension %d out of range", dim)
	}
	if v.Indexes[dim] != nil {
		return fmt.Errorf("star: %s already has an index on %s", v.Name, db.Schema.Dims[dim].Name)
	}
	// The canonical name serves first builds; rebuilds version the name
	// because older snapshots still read the retired file at the old
	// path (the pool registers files by path).
	base := "idx_" + sanitizeName(v.Name) + "_" + strconv.Itoa(dim)
	file := base + ".bmx"
	path := filepath.Join(db.Dir, file)
	_, registered := db.Pool.Registered(path)
	if _, err := os.Stat(path); err == nil || registered {
		file = db.nextFileName(base, ".bmx")
		path = filepath.Join(db.Dir, file)
	}
	build := bitmap.BuildAndCreate
	if compressed {
		build = bitmap.BuildAndCreateCompressed
	}
	if err := build(db.Pool, path, v.Heap, dim); err != nil {
		return err
	}
	ix, err := bitmap.Open(db.Pool, path)
	if err != nil {
		return err
	}
	v.Indexes[dim] = ix
	v.indexFiles[dim] = file
	return nil
}

// Save writes table metadata and the database manifest, then flushes the
// buffer pool so everything is durable. The current live state is
// published first (covering rows appended directly through appenders),
// and retired files no longer pinned by any reader are reclaimed. Save
// must not race in-flight queries: their pinned pages would fail the
// flush.
func (db *Database) Save() error {
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	db.publishLocked()
	for _, h := range db.DimTables {
		if err := h.Close(); err != nil {
			return err
		}
	}
	meta := metaJSON{Measure: db.Schema.Measure}
	if db.Stats != nil {
		meta.StatsRows = db.Stats.Rows
		for i := range db.Schema.Dims {
			meta.StatsBase = append(meta.StatsBase, db.Stats.Counts[i][0])
		}
	}
	for _, d := range db.Schema.Dims {
		meta.Dims = append(meta.Dims, dimJSON{Name: d.Name, Levels: d.Levels})
	}
	for _, d := range db.Schema.Dims {
		meta.DimTables = append(meta.DimTables, "dim_"+d.Name+".heap")
	}
	for _, v := range db.Views {
		if err := v.Heap.Close(); err != nil {
			return err
		}
		rr := v.refreshedRows
		vj := viewJSON{Name: v.Name, Levels: v.Levels, File: v.file, RefreshedRows: &rr, MultiAgg: v.MultiAgg()}
		if len(v.indexFiles) > 0 {
			vj.Indexes = map[string]string{}
			for dim, f := range v.indexFiles {
				vj.Indexes[strconv.Itoa(dim)] = f
			}
		}
		meta.Views = append(meta.Views, vj)
	}
	blob, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(db.Dir, metaFile), blob, 0o644); err != nil {
		return err
	}
	if err := db.epochs.Reclaim(); err != nil {
		return err
	}
	return db.Pool.FlushAll()
}

// Open loads a database saved by Save, with a single-shard buffer pool
// of poolFrames frames (no readahead).
func Open(dir string, poolFrames int) (*Database, error) {
	return OpenWith(dir, storage.PoolOpts{Frames: poolFrames})
}

// OpenWith loads a database saved by Save with explicit buffer-pool
// options (lock shard count and sequential readahead in addition to
// capacity).
func OpenWith(dir string, pool storage.PoolOpts) (*Database, error) {
	blob, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("star: open database %s: %w", dir, err)
	}
	var meta metaJSON
	if err := json.Unmarshal(blob, &meta); err != nil {
		return nil, fmt.Errorf("star: corrupt manifest in %s: %w", dir, err)
	}
	dims := make([]*Dimension, len(meta.Dims))
	for i, dj := range meta.Dims {
		d, err := NewDimension(dj.Name, dj.Levels)
		if err != nil {
			return nil, fmt.Errorf("star: manifest dimension %s: %w", dj.Name, err)
		}
		dims[i] = d
	}
	schema, err := NewSchema(dims, meta.Measure)
	if err != nil {
		return nil, err
	}
	db := &Database{Dir: dir, Pool: storage.NewPoolWith(pool), Schema: schema, epochs: storage.NewEpochTable()}
	for i, file := range meta.DimTables {
		h, err := table.Open(db.Pool, filepath.Join(dir, file), schema.DimTableSchema(i))
		if err != nil {
			return nil, err
		}
		db.DimTables = append(db.DimTables, h)
	}
	for _, vj := range meta.Views {
		viewSchema := schema.ViewSchema()
		if vj.MultiAgg {
			viewSchema = schema.MultiViewSchema()
		}
		h, err := table.Open(db.Pool, filepath.Join(dir, vj.File), viewSchema)
		if err != nil {
			return nil, err
		}
		v := &View{
			Name:       vj.Name,
			Levels:     vj.Levels,
			Heap:       h,
			Indexes:    map[int]bitmap.JoinIndex{},
			file:       vj.File,
			indexFiles: map[int]string{},
		}
		if vj.RefreshedRows != nil {
			v.refreshedRows = *vj.RefreshedRows
		} else if len(db.Views) > 0 {
			// Pre-maintenance manifest: assume the view was current when
			// the database was written.
			v.refreshedRows = db.Views[0].Rows()
		}
		for dimStr, f := range vj.Indexes {
			dim, err := strconv.Atoi(dimStr)
			if err != nil {
				return nil, fmt.Errorf("star: manifest index key %q: %w", dimStr, err)
			}
			ix, err := bitmap.Open(db.Pool, filepath.Join(dir, f))
			if err != nil {
				return nil, err
			}
			v.Indexes[dim] = ix
			v.indexFiles[dim] = f
		}
		db.Views = append(db.Views, v)
	}
	if len(db.Views) == 0 {
		return nil, fmt.Errorf("star: database %s has no views", dir)
	}
	if meta.StatsBase != nil {
		st, err := statsFromBase(schema, meta.StatsBase, meta.StatsRows)
		if err != nil {
			return nil, err
		}
		db.Stats = st
	}
	for _, vj := range meta.Views {
		db.noteFileSeq(vj.File)
		for _, f := range vj.Indexes {
			db.noteFileSeq(f)
		}
	}
	db.publishLocked()
	return db, nil
}

// ColdReset drops all cached pages and in-memory index bitmaps,
// reproducing the paper's cold-cache discipline between measurements.
func (db *Database) ColdReset() error {
	for _, v := range db.Views {
		for _, ix := range v.Indexes {
			ix.DropCache()
		}
	}
	return db.Pool.FlushAll()
}

// Close saves and closes all files, force-draining any files still
// awaiting reclamation (no reader can be live). The database is
// unusable afterwards.
func (db *Database) Close() error {
	if err := db.Save(); err != nil {
		return err
	}
	if err := db.epochs.ForceDrain(); err != nil {
		return err
	}
	return db.Pool.CloseFiles()
}

package star

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"

	"mdxopt/internal/bitmap"
	"mdxopt/internal/storage"
	"mdxopt/internal/table"
)

// View maintenance.
//
// The paper's setting assumes precomputed group-bys kept in step with
// the fact table ("techniques for effectively creating and maintaining
// materialized group-bys"). This file implements the maintenance half:
//
//   - New facts append to the base table; materialized views then lag
//     behind (Database.Fresh reports this) and the optimizer refuses to
//     use stale views until refreshed.
//   - Refresh folds the base-table delta into each view *by appending
//     delta groups*. A refreshed view may contain several rows for one
//     group key; every operator in internal/exec aggregates per tuple,
//     so results remain exact. Bitmap join indexes are rebuilt (their
//     bitmaps are positional and fixed-length).
//   - Compact fully re-aggregates a view, merging duplicate group rows.

// RefreshedRows returns how many base-table rows have been folded into
// the view.
func (v *View) RefreshedRows() int64 { return v.refreshedRows }

// Fresh reports whether the view reflects every row of the base table.
// The base view is always fresh.
func (db *Database) Fresh(v *View) bool {
	if v.IsBase() {
		return true
	}
	return v.refreshedRows == db.Base().Rows()
}

// StaleViews lists materialized views lagging behind the base table.
func (db *Database) StaleViews() []*View {
	var out []*View
	for _, v := range db.Views[1:] {
		if !db.Fresh(v) {
			out = append(out, v)
		}
	}
	return out
}

// Refresh folds base-table rows appended since each view's last refresh
// into that view, rebuilds the affected bitmap join indexes, and
// recomputes the base-table statistics (so selectivity estimates track
// the loaded data). Views that are already fresh are untouched. The
// result is published as one successor snapshot; readers pinned to
// older snapshots keep their pre-refresh views (frozen heaps hide the
// appended delta groups, retired index files outlive the rebuild).
func (db *Database) Refresh() error {
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	baseRows := db.Base().Rows()
	for _, v := range db.Views[1:] {
		if v.refreshedRows == baseRows {
			continue
		}
		if err := db.refreshView(v, baseRows); err != nil {
			return fmt.Errorf("star: refresh %s: %w", v.Name, err)
		}
	}
	if err := db.refreshStatsLocked(); err != nil {
		return err
	}
	db.publishLocked()
	return nil
}

func (db *Database) refreshView(v *View, baseRows int64) error {
	from := v.refreshedRows
	agg, err := db.aggregateBase(v.Levels, from)
	if err != nil {
		return err
	}
	if err := appendGroups(v.Heap, db.Schema.NumDims(), agg, v.MultiAgg(), false); err != nil {
		return err
	}
	v.refreshedRows = baseRows
	return db.rebuildIndexesLocked(v)
}

// aggregateBase aggregates base rows with row number >= from up to the
// given level vector, producing full (sum, count, min, max)
// accumulators.
func (db *Database) aggregateBase(levels []int, from int64) (map[string][4]float64, error) {
	nd := db.Schema.NumDims()
	agg := make(map[string][4]float64)
	keyBuf := make([]byte, 4*nd)
	base := db.Base()
	var y storage.Yielder
	err := base.Heap.Scan(func(row int64, keys []int32, measures []float64) error {
		y.Tick()
		if row < from {
			return nil
		}
		for i := 0; i < nd; i++ {
			code := db.Schema.Dims[i].RollUp(keys[i], 0, levels[i])
			binary.LittleEndian.PutUint32(keyBuf[i*4:], uint32(code))
		}
		mergeInto(agg, string(keyBuf), TupleAggregates(base, measures))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return agg, nil
}

// appendGroups appends the aggregate map's groups to heap. Groups are
// sorted for determinism; when shuffle is set they are then permuted
// with a seeded shuffle, reproducing the unclustered storage order of a
// freshly materialized view (see materialize). Sum-only heaps receive
// the sum component; multi-aggregate heaps receive all four.
func appendGroups(heap *table.HeapFile, nd int, agg map[string][4]float64, multi, shuffle bool) error {
	sorted := make([]string, 0, len(agg))
	for k := range agg {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	if shuffle {
		rng := rand.New(rand.NewSource(int64(len(sorted))*2654435761 + 1998))
		rng.Shuffle(len(sorted), func(i, j int) { sorted[i], sorted[j] = sorted[j], sorted[i] })
	}
	app := heap.NewAppender()
	outKeys := make([]int32, nd)
	var y storage.Yielder
	for _, k := range sorted {
		y.Tick()
		for i := 0; i < nd; i++ {
			outKeys[i] = int32(binary.LittleEndian.Uint32([]byte(k)[i*4:]))
		}
		vals := agg[k]
		var measures []float64
		if multi {
			measures = vals[:]
		} else {
			measures = vals[:1]
		}
		if err := app.Append(outKeys, measures); err != nil {
			return err
		}
	}
	return app.Close()
}

// Compact fully re-aggregates a materialized view, merging the duplicate
// group rows left behind by Refresh, and rebuilds its indexes. The
// replacement heap and index files are built under fresh versioned
// names off to the side; the old files are retired, staying readable
// for snapshots pinned before the compaction published, and are
// unlinked once the last such reader drains.
func (db *Database) Compact(v *View) error {
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	if v.IsBase() {
		return fmt.Errorf("star: cannot compact the base table")
	}
	nd := db.Schema.NumDims()
	agg := make(map[string][4]float64)
	keyBuf := make([]byte, 4*nd)
	var y storage.Yielder
	err := v.Heap.Scan(func(row int64, keys []int32, measures []float64) error {
		y.Tick()
		for i := 0; i < nd; i++ {
			binary.LittleEndian.PutUint32(keyBuf[i*4:], uint32(keys[i]))
		}
		mergeInto(agg, string(keyBuf), TupleAggregates(v, measures))
		return nil
	})
	if err != nil {
		return err
	}

	// Build the replacement heap under a fresh versioned name and swap
	// the view's pointer; renaming over the live path would hijack the
	// pool registration snapshots still read through.
	newFile := db.nextFileName("view_"+sanitizeName(v.Name), ".heap")
	replacement, err := table.Create(db.Pool, filepath.Join(db.Dir, newFile), v.Heap.Schema())
	if err != nil {
		return err
	}
	if err := appendGroups(replacement, nd, agg, v.MultiAgg(), true); err != nil {
		return err
	}
	oldPath := v.Heap.Path()
	v.Heap = replacement
	v.file = newFile
	db.retireLocked(oldPath)
	if err := db.rebuildIndexesLocked(v); err != nil {
		return err
	}
	db.publishLocked()
	return nil
}

// DropIndex removes dimension dim's bitmap join index from v. The index
// file is retired, not deleted: snapshots published before the drop
// keep probing it until they drain.
func (db *Database) DropIndex(v *View, dim int) error {
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	if err := db.dropIndexLocked(v, dim); err != nil {
		return err
	}
	db.publishLocked()
	return nil
}

func (db *Database) dropIndexLocked(v *View, dim int) error {
	ix := v.Indexes[dim]
	if ix == nil {
		return fmt.Errorf("star: %s has no index on dimension %d", v.Name, dim)
	}
	db.retireLocked(filepath.Join(db.Dir, v.indexFiles[dim]))
	delete(v.Indexes, dim)
	delete(v.indexFiles, dim)
	return nil
}

// rebuildIndexesLocked drops and rebuilds every bitmap join index of v,
// preserving each index's storage format. Rebuilt indexes land in fresh
// versioned files; the replaced ones are retired.
func (db *Database) rebuildIndexesLocked(v *View) error {
	dims := make([]int, 0, len(v.Indexes))
	for dim := range v.Indexes {
		dims = append(dims, dim)
	}
	sort.Ints(dims)
	for _, dim := range dims {
		_, compressed := v.Indexes[dim].(*bitmap.CIndex)
		if err := db.dropIndexLocked(v, dim); err != nil {
			return err
		}
		if err := db.buildIndexLocked(v, dim, compressed); err != nil {
			return err
		}
	}
	return nil
}

package star

import (
	"testing"
	"testing/quick"
)

func dimA(t *testing.T) *Dimension {
	t.Helper()
	d, err := UniformDimension("A", []int{24, 6, 3})
	if err != nil {
		t.Fatalf("UniformDimension: %v", err)
	}
	return d
}

func TestUniformDimensionShape(t *testing.T) {
	d := dimA(t)
	if d.NumLevels() != 3 {
		t.Fatalf("NumLevels = %d", d.NumLevels())
	}
	if d.Card(0) != 24 || d.Card(1) != 6 || d.Card(2) != 3 {
		t.Fatalf("cards = %d %d %d", d.Card(0), d.Card(1), d.Card(2))
	}
	if d.Card(d.AllLevel()) != 1 {
		t.Fatalf("ALL card = %d", d.Card(d.AllLevel()))
	}
	if d.LevelName(0) != "A" || d.LevelName(1) != "A'" || d.LevelName(2) != "A''" {
		t.Fatalf("level names = %q %q %q", d.LevelName(0), d.LevelName(1), d.LevelName(2))
	}
	if d.LevelName(d.AllLevel()) != "ALL" {
		t.Fatalf("ALL level name = %q", d.LevelName(d.AllLevel()))
	}
}

func TestUniformDimensionNaming(t *testing.T) {
	d := dimA(t)
	if got := d.MemberName(2, 0); got != "A1" {
		t.Fatalf("top member 0 = %q, want A1", got)
	}
	if got := d.MemberName(1, 4); got != "AA5" {
		t.Fatalf("mid member 4 = %q, want AA5", got)
	}
	if got := d.MemberName(0, 23); got != "AAA24" {
		t.Fatalf("base member 23 = %q, want AAA24", got)
	}
	if c, ok := d.MemberCode(1, "AA5"); !ok || c != 4 {
		t.Fatalf("MemberCode(AA5) = %d %v", c, ok)
	}
	if _, ok := d.MemberCode(1, "nope"); ok {
		t.Fatal("MemberCode found a missing member")
	}
}

func TestRollUpAndChildrenAgree(t *testing.T) {
	d := dimA(t)
	// Every base member must appear among its level-1 parent's children.
	for c := int32(0); c < d.Card(0); c++ {
		p := d.RollUp(c, 0, 1)
		found := false
		for _, ch := range d.Children(1, p) {
			if ch == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("base member %d missing from children of parent %d", c, p)
		}
	}
	// RollUp composes: 0->2 equals 0->1->2.
	for c := int32(0); c < d.Card(0); c++ {
		if d.RollUp(c, 0, 2) != d.RollUp(d.RollUp(c, 0, 1), 1, 2) {
			t.Fatalf("RollUp does not compose for %d", c)
		}
	}
	// ALL level.
	if d.RollUp(17, 0, d.AllLevel()) != 0 {
		t.Fatal("RollUp to ALL != 0")
	}
}

func TestDescendInvertsRollUp(t *testing.T) {
	d := dimA(t)
	// Descendants of a top member, rolled back up, give that member.
	for top := int32(0); top < d.Card(2); top++ {
		desc := d.Descend([]int32{top}, 2, 0)
		if len(desc) != 8 { // 24/3 base members per top member
			t.Fatalf("top %d has %d base descendants, want 8", top, len(desc))
		}
		for _, c := range desc {
			if d.RollUp(c, 0, 2) != top {
				t.Fatalf("descendant %d of %d rolls to %d", c, top, d.RollUp(c, 0, 2))
			}
		}
	}
	// Descend from ALL covers everything at the target level.
	all := d.Descend([]int32{0}, d.AllLevel(), 1)
	if len(all) != 6 {
		t.Fatalf("ALL descends to %d mid members, want 6", len(all))
	}
}

func TestChildrenOfAll(t *testing.T) {
	d := dimA(t)
	ch := d.Children(d.AllLevel(), 0)
	if len(ch) != 3 {
		t.Fatalf("children of ALL = %d, want 3 (top members)", len(ch))
	}
}

func TestFindMember(t *testing.T) {
	d := dimA(t)
	l, c, err := d.FindMember("AA3")
	if err != nil || l != 1 || c != 2 {
		t.Fatalf("FindMember(AA3) = %d %d %v", l, c, err)
	}
	if _, _, err := d.FindMember("XYZ"); err == nil {
		t.Fatal("FindMember found a missing member")
	}
}

func TestFindMemberAmbiguous(t *testing.T) {
	d, err := NewDimension("X", []LevelSpec{
		{Name: "base", Members: []string{"dup", "u"}, Parent: []int32{0, 0}},
		{Name: "top", Members: []string{"dup"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.FindMember("dup"); err == nil {
		t.Fatal("ambiguous member lookup succeeded")
	}
}

func TestNewDimensionValidation(t *testing.T) {
	cases := []struct {
		name   string
		levels []LevelSpec
	}{
		{"no levels", nil},
		{"empty level", []LevelSpec{{Name: "l", Members: nil}}},
		{"top with parents", []LevelSpec{{Name: "l", Members: []string{"a"}, Parent: []int32{0}}}},
		{"parent arity", []LevelSpec{
			{Name: "b", Members: []string{"x", "y"}, Parent: []int32{0}},
			{Name: "t", Members: []string{"p"}},
		}},
		{"parent range", []LevelSpec{
			{Name: "b", Members: []string{"x"}, Parent: []int32{5}},
			{Name: "t", Members: []string{"p"}},
		}},
		{"dup members", []LevelSpec{{Name: "l", Members: []string{"a", "a"}}}},
	}
	for _, c := range cases {
		if _, err := NewDimension("X", c.levels); err == nil {
			t.Errorf("NewDimension accepted invalid spec %q", c.name)
		}
	}
	if _, err := NewDimension("", []LevelSpec{{Name: "l", Members: []string{"a"}}}); err == nil {
		t.Error("NewDimension accepted empty name")
	}
}

func TestUniformDimensionDivisibility(t *testing.T) {
	if _, err := UniformDimension("A", []int{10, 3}); err == nil {
		t.Fatal("UniformDimension accepted non-divisible cards")
	}
}

func TestRollUpMonotoneQuick(t *testing.T) {
	d := dimA(t)
	// Property: members with the same parent at level l also share
	// ancestors at every coarser level.
	f := func(a, b uint8) bool {
		x := int32(a) % d.Card(0)
		y := int32(b) % d.Card(0)
		if d.RollUp(x, 0, 1) == d.RollUp(y, 0, 1) {
			return d.RollUp(x, 0, 2) == d.RollUp(y, 0, 2)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

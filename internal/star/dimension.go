// Package star models the dimensional side of a ROLAP star schema:
// dimensions with named hierarchy levels, rollup between levels,
// materialized group-by views, and a persistent database wrapping heap
// files and bitmap indexes.
//
// Conventions used throughout the system:
//
//   - Members are int32 codes, dense per level, starting at 0. Names are
//     metadata kept on the Dimension.
//   - Level 0 is the base (finest) level; higher levels are coarser. The
//     virtual level NumLevels() ("ALL") aggregates the dimension out
//     entirely and has a single member with code 0.
//   - A group-by is a vector with one level per dimension (see
//     internal/query).
package star

import (
	"errors"
	"fmt"
)

// LevelSpec describes one hierarchy level when constructing a dimension.
type LevelSpec struct {
	Name    string   // level name, e.g. "A'" or "Quarter"
	Members []string // member names, code = index
	// Parent[i] is the code of member i's parent at the next coarser
	// level. Must be nil for the top level.
	Parent []int32
}

// Dimension is a hierarchy of levels, base (index 0) to top.
type Dimension struct {
	Name   string
	Levels []LevelSpec

	nameToCode []map[string]int32 // per level
	children   [][][]int32        // children[l][code] = codes at level l-1
}

// NewDimension validates specs (base first, top last) and builds a
// dimension.
func NewDimension(name string, levels []LevelSpec) (*Dimension, error) {
	if name == "" {
		return nil, errors.New("star: dimension needs a name")
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("star: dimension %s needs at least one level", name)
	}
	d := &Dimension{Name: name, Levels: levels}
	if err := d.init(); err != nil {
		return nil, err
	}
	return d, nil
}

// init validates the level specs and builds lookup structures. It is also
// used after deserialization.
func (d *Dimension) init() error {
	d.nameToCode = make([]map[string]int32, len(d.Levels))
	for l, spec := range d.Levels {
		if spec.Name == "" {
			return fmt.Errorf("star: %s level %d has no name", d.Name, l)
		}
		if len(spec.Members) == 0 {
			return fmt.Errorf("star: %s level %s has no members", d.Name, spec.Name)
		}
		m := make(map[string]int32, len(spec.Members))
		for code, name := range spec.Members {
			if name == "" {
				return fmt.Errorf("star: %s level %s member %d has no name", d.Name, spec.Name, code)
			}
			if _, dup := m[name]; dup {
				return fmt.Errorf("star: %s level %s has duplicate member %q", d.Name, spec.Name, name)
			}
			m[name] = int32(code)
		}
		d.nameToCode[l] = m

		top := l == len(d.Levels)-1
		switch {
		case top && spec.Parent != nil:
			return fmt.Errorf("star: %s top level %s must not have parents", d.Name, spec.Name)
		case !top && len(spec.Parent) != len(spec.Members):
			return fmt.Errorf("star: %s level %s has %d members but %d parent entries",
				d.Name, spec.Name, len(spec.Members), len(spec.Parent))
		}
		if !top {
			parentCard := int32(len(d.Levels[l+1].Members))
			for i, p := range spec.Parent {
				if p < 0 || p >= parentCard {
					return fmt.Errorf("star: %s level %s member %d has out-of-range parent %d",
						d.Name, spec.Name, i, p)
				}
			}
		}
	}
	// Precompute children lists so concurrent readers share immutable
	// structures.
	d.children = make([][][]int32, len(d.Levels))
	for l := 1; l < len(d.Levels); l++ {
		lists := make([][]int32, d.Card(l))
		for c, p := range d.Levels[l-1].Parent {
			lists[p] = append(lists[p], int32(c))
		}
		d.children[l] = lists
	}
	return nil
}

// NumLevels returns the number of real (non-ALL) levels.
func (d *Dimension) NumLevels() int { return len(d.Levels) }

// AllLevel returns the virtual fully-aggregated level index.
func (d *Dimension) AllLevel() int { return len(d.Levels) }

// Card returns the number of members at level l (1 for the ALL level).
func (d *Dimension) Card(l int) int32 {
	if l == d.AllLevel() {
		return 1
	}
	return int32(len(d.Levels[l].Members))
}

// LevelName returns the name of level l ("ALL" for the virtual level).
func (d *Dimension) LevelName(l int) string {
	if l == d.AllLevel() {
		return "ALL"
	}
	return d.Levels[l].Name
}

// LevelIndex returns the index of the named level, or -1.
func (d *Dimension) LevelIndex(name string) int {
	for l, spec := range d.Levels {
		if spec.Name == name {
			return l
		}
	}
	if name == "ALL" {
		return d.AllLevel()
	}
	return -1
}

// MemberName returns the name of code at level l.
func (d *Dimension) MemberName(l int, code int32) string {
	if l == d.AllLevel() {
		return "ALL"
	}
	if code < 0 || int(code) >= len(d.Levels[l].Members) {
		return fmt.Sprintf("%s[%d?]", d.Levels[l].Name, code)
	}
	return d.Levels[l].Members[code]
}

// MemberCode looks up a member by name at level l.
func (d *Dimension) MemberCode(l int, name string) (int32, bool) {
	if l == d.AllLevel() {
		if name == "ALL" {
			return 0, true
		}
		return 0, false
	}
	c, ok := d.nameToCode[l][name]
	return c, ok
}

// FindMember searches all levels for a member name and returns its level
// and code. Ambiguous names (present at several levels) return an error.
func (d *Dimension) FindMember(name string) (level int, code int32, err error) {
	found := -1
	var foundCode int32
	for l := range d.Levels {
		if c, ok := d.nameToCode[l][name]; ok {
			if found >= 0 {
				return 0, 0, fmt.Errorf("star: member %q is ambiguous in dimension %s", name, d.Name)
			}
			found, foundCode = l, c
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("star: no member %q in dimension %s", name, d.Name)
	}
	return found, foundCode, nil
}

// RollUp maps a code at level from to the enclosing code at level to
// (to >= from). Rolling to the ALL level yields 0.
func (d *Dimension) RollUp(code int32, from, to int) int32 {
	if to < from {
		panic(fmt.Sprintf("star: RollUp %s from %d to finer %d", d.Name, from, to))
	}
	if to >= d.AllLevel() {
		return 0
	}
	for l := from; l < to; l++ {
		code = d.Levels[l].Parent[code]
	}
	return code
}

// Children returns the codes at level l-1 whose parent at level l is
// code. Children of the ALL level are all members of the top level.
func (d *Dimension) Children(l int, code int32) []int32 {
	if l == d.AllLevel() {
		top := len(d.Levels) - 1
		out := make([]int32, d.Card(top))
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	if l == 0 {
		return nil
	}
	return d.children[l][code]
}

// Descend maps a member set at level from down to level to (to <= from),
// i.e. all descendants. Used to expand predicates onto a view column at a
// finer level.
func (d *Dimension) Descend(codes []int32, from, to int) []int32 {
	if to > from {
		panic(fmt.Sprintf("star: Descend %s from %d to coarser %d", d.Name, from, to))
	}
	cur := codes
	for l := from; l > to; l-- {
		var next []int32
		for _, c := range cur {
			next = append(next, d.Children(l, c)...)
		}
		cur = next
	}
	return cur
}

func (d *Dimension) String() string {
	return fmt.Sprintf("Dimension(%s, %d levels, base card %d)", d.Name, len(d.Levels), d.Card(0))
}

// UniformDimension builds a dimension whose level l has cards[l] members
// with uniform fanout; cards must be divisible top-down. Member names are
// generated with the paper's convention: the level name repeated-letter
// prefix plus a 1-based number (dimension "A" with three levels yields
// top members A1..A3, middle AA1.., base AAA1..).
func UniformDimension(name string, cards []int) (*Dimension, error) {
	if len(cards) == 0 {
		return nil, errors.New("star: UniformDimension needs at least one level")
	}
	n := len(cards)
	levels := make([]LevelSpec, n)
	for l := 0; l < n; l++ {
		prefix := ""
		for i := 0; i < n-l; i++ {
			prefix += name
		}
		levelName := name
		for i := 0; i < l; i++ {
			levelName += "'"
		}
		members := make([]string, cards[l])
		for c := range members {
			members[c] = fmt.Sprintf("%s%d", prefix, c+1)
		}
		spec := LevelSpec{Name: levelName, Members: members}
		if l < n-1 {
			if cards[l]%cards[l+1] != 0 {
				return nil, fmt.Errorf("star: %s level %d card %d not divisible by parent card %d",
					name, l, cards[l], cards[l+1])
			}
			fanout := cards[l] / cards[l+1]
			spec.Parent = make([]int32, cards[l])
			for c := 0; c < cards[l]; c++ {
				spec.Parent[c] = int32(c / fanout)
			}
		}
		levels[l] = spec
	}
	return NewDimension(name, levels)
}

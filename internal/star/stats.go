package star

import "fmt"

// Stats holds per-dimension member frequencies measured on the base fact
// table: Counts[dim][level][code] is the number of base rows whose
// dimension-dim code rolls up to code at the given level.
//
// The optimizer's selectivity estimates default to the uniform
// assumption (|members| / card); with Stats available it can use the
// real frequencies instead, which matters under skew (see the
// statistics ablation).
type Stats struct {
	Counts [][][]int64
	Rows   int64
}

// ComputeStats scans the base fact table once and builds frequency
// counts for every dimension at every level.
func (db *Database) ComputeStats() (*Stats, error) {
	schema := db.Schema
	st := &Stats{Counts: make([][][]int64, schema.NumDims())}
	for i, d := range schema.Dims {
		st.Counts[i] = make([][]int64, d.NumLevels())
		for l := 0; l < d.NumLevels(); l++ {
			st.Counts[i][l] = make([]int64, d.Card(l))
		}
	}
	err := db.Base().Heap.Scan(func(row int64, keys []int32, measures []float64) error {
		st.Rows++
		for i, d := range schema.Dims {
			code := keys[i]
			for l := 0; l < d.NumLevels(); l++ {
				st.Counts[i][l][code]++
				if l+1 < d.NumLevels() {
					code = d.Levels[l].Parent[code]
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// statsFromBase rebuilds the per-level counts from persisted base-level
// counts (upper levels are derivable through the hierarchy).
func statsFromBase(schema *Schema, base [][]int64, rows int64) (*Stats, error) {
	if len(base) != schema.NumDims() {
		return nil, fmt.Errorf("star: stats cover %d dimensions, schema has %d", len(base), schema.NumDims())
	}
	st := &Stats{Counts: make([][][]int64, schema.NumDims()), Rows: rows}
	for i, d := range schema.Dims {
		if int32(len(base[i])) != d.Card(0) {
			return nil, fmt.Errorf("star: stats for %s cover %d members, level has %d",
				d.Name, len(base[i]), d.Card(0))
		}
		st.Counts[i] = make([][]int64, d.NumLevels())
		st.Counts[i][0] = base[i]
		for l := 1; l < d.NumLevels(); l++ {
			st.Counts[i][l] = make([]int64, d.Card(l))
			for c, n := range st.Counts[i][l-1] {
				st.Counts[i][l][d.Levels[l-1].Parent[c]] += n
			}
		}
	}
	return st, nil
}

// Frac returns the fraction of base rows whose dimension-dim member at
// the given level falls in members. A nil member set is unrestricted
// (fraction 1); the ALL level is always 1.
func (s *Stats) Frac(d *Dimension, dim, level int, members []int32) float64 {
	if s == nil || members == nil || s.Rows == 0 || level >= d.NumLevels() {
		return 1
	}
	var n int64
	for _, m := range members {
		n += s.Counts[dim][level][m]
	}
	return float64(n) / float64(s.Rows)
}

// RefreshStats recomputes and installs base-table statistics on the
// database, publishing a successor snapshot; Save persists them.
func (db *Database) RefreshStats() error {
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	if err := db.refreshStatsLocked(); err != nil {
		return err
	}
	db.publishLocked()
	return nil
}

// refreshStatsLocked recomputes statistics into a fresh Stats value
// (snapshots hold the pointer, so it is never mutated in place).
// Callers hold mutMu.
func (db *Database) refreshStatsLocked() error {
	st, err := db.ComputeStats()
	if err != nil {
		return err
	}
	db.Stats = st
	return nil
}

package star

import (
	"mdxopt/internal/bitmap"
	"mdxopt/internal/storage"
	"mdxopt/internal/table"
)

// Snapshot isolation.
//
// A Snapshot is an immutable copy of the catalog — schema, dimension
// tables, view set, bitmap-index set, statistics — published at a
// numbered epoch. Readers evaluate entire query batches against one
// snapshot and never observe a mutation in progress: Materialize,
// Refresh, Compact, index builds and fact loads all mutate the live
// Database off to the side (new heap and index files are created under
// fresh versioned names, replaced ones are retired to the epoch table,
// never deleted in place) and atomically publish a successor snapshot
// when they are consistent. Results are byte-identical per pinned
// epoch.
//
// Two ways to obtain a snapshot:
//
//   - Database.Pin returns the *published* snapshot with its epoch
//     reference-counted against reclamation — the concurrent serving
//     path. The release function must be called when the batch drains.
//   - Database.Snapshot builds a fresh unpinned snapshot of the live
//     state — for single-threaded embedders, tests and benchmarks that
//     interleave mutations and reads without concurrency. It is also
//     how both *Database and *Snapshot satisfy Catalog, so execution
//     environments and estimators accept either.

// Snapshot is an immutable view of the catalog at one epoch. Its heaps
// are frozen (bounded at the row counts current when the snapshot was
// taken), its view and index sets are copies, and all of it is served
// through the same buffer pool as the live database.
type Snapshot struct {
	// Epoch is the snapshot's position in the publish order. Snapshots
	// built by Database.Snapshot carry the epoch of the latest publish
	// they include.
	Epoch     uint64
	Dir       string
	Pool      *storage.Pool
	Schema    *Schema
	DimTables []*table.HeapFile
	Views     []*View // Views[0] is the base fact table
	Stats     *Stats
}

// Catalog is anything a snapshot can be taken of: the live Database
// (which freezes its current state) or a Snapshot itself (which returns
// itself). Execution environments and plan estimators are built from a
// Catalog, so the ~150 existing call sites work unchanged with either.
type Catalog interface {
	Snapshot() *Snapshot
}

// Snapshot returns the snapshot itself, satisfying Catalog.
func (s *Snapshot) Snapshot() *Snapshot { return s }

// Base returns the base fact table view.
func (s *Snapshot) Base() *View { return s.Views[0] }

// ViewByName returns the named view, or nil.
func (s *Snapshot) ViewByName(name string) *View {
	for _, v := range s.Views {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// ViewByLevels returns the view with exactly the given level vector, or
// nil.
func (s *Snapshot) ViewByLevels(levels []int) *View {
	for _, v := range s.Views {
		if equalLevels(v.Levels, levels) {
			return v
		}
	}
	return nil
}

// Fresh reports whether the view reflects every row of the snapshot's
// base table. The base view is always fresh.
func (s *Snapshot) Fresh(v *View) bool {
	if v.IsBase() {
		return true
	}
	return v.refreshedRows == s.Base().Rows()
}

// ColdReset drops all cached pages and in-memory index bitmaps,
// reproducing the paper's cold-cache discipline between measurements.
func (s *Snapshot) ColdReset() error {
	for _, v := range s.Views {
		for _, ix := range v.Indexes {
			ix.DropCache()
		}
	}
	return s.Pool.FlushAll()
}

// IsBase reports whether the view is the base fact table (every level
// at the base). The check is structural, not pointer identity, so it
// holds across snapshot clones of the same view.
func (v *View) IsBase() bool {
	for _, l := range v.Levels {
		if l != 0 {
			return false
		}
	}
	return true
}

// freeze returns an immutable copy of the view for a snapshot: the heap
// bounded at its current row count, the index and file maps copied.
func (v *View) freeze() *View {
	ix := make(map[int]bitmap.JoinIndex, len(v.Indexes))
	for d, i := range v.Indexes {
		ix[d] = i
	}
	files := make(map[int]string, len(v.indexFiles))
	for d, f := range v.indexFiles {
		files[d] = f
	}
	lv := make([]int, len(v.Levels))
	copy(lv, v.Levels)
	return &View{
		Name:          v.Name,
		Levels:        lv,
		Heap:          v.Heap.Freeze(),
		Indexes:       ix,
		file:          v.file,
		indexFiles:    files,
		refreshedRows: v.refreshedRows,
	}
}

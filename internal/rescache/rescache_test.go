package rescache

import (
	"testing"

	"mdxopt/internal/mem"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
)

func testSchema(t *testing.T) *star.Schema {
	t.Helper()
	a, err := star.UniformDimension("A", []int{24, 6, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := star.UniformDimension("B", []int{12, 6, 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := star.UniformDimension("C", []int{8, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := star.NewSchema([]*star.Dimension{a, b, c}, "m")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustQuery(t *testing.T, s *star.Schema, levels []int, preds []query.Predicate) *query.Query {
	t.Helper()
	q, err := query.New("q", s, levels, preds)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// fill returns rows distinguishable by a seed, sized to the query's
// group space (content is irrelevant to the cache; only len matters).
func fill(n int, seed float64) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Keys: []int32{int32(i), 0, 0}, Value: seed + float64(i)}
	}
	return rows
}

func TestAnswersSubsumption(t *testing.T) {
	s := testSchema(t)
	base := mustQuery(t, s, []int{1, 1, 0}, []query.Predicate{{Members: []int32{0, 1, 2}}, {}, {}})
	c := New(1<<20, nil)
	c.Put(base, 7, fill(10, 1), 100)
	ent := c.Probe(base, 7)
	if ent == nil {
		t.Fatal("identity probe missed")
	}

	// Wrong generation: never answers.
	if c.Probe(base, 8) != nil {
		t.Fatal("stale-generation entry answered")
	}

	// Coarser group-by with a predicate that is a subset after
	// descending: answerable.
	sub := mustQuery(t, s, []int{2, 1, 0}, []query.Predicate{{Members: []int32{0}}, {}, {}})
	// A'' member 0 descends to A' members {0,1} ⊆ {0,1,2}? A' has 6
	// members under 3 tops: top 0 covers A' {0,1}.
	if c.Probe(sub, 7) == nil {
		t.Fatal("subsumed rollup probe missed")
	}

	// Predicate outside the entry's member set: top 2 covers A' {4,5}.
	out := mustQuery(t, s, []int{2, 1, 0}, []query.Predicate{{Members: []int32{2}}, {}, {}})
	if c.Probe(out, 7) != nil {
		t.Fatal("non-subsumed predicate answered")
	}

	// Query unrestricted where the entry is restricted: the entry is
	// missing rows.
	free := mustQuery(t, s, []int{2, 1, 0}, nil)
	if c.Probe(free, 7) != nil {
		t.Fatal("unrestricted query answered from a restricted entry")
	}

	// Finer group-by than the entry: not derivable.
	finer := mustQuery(t, s, []int{0, 1, 0}, []query.Predicate{{Members: []int32{0}}, {}, {}})
	if c.Probe(finer, 7) != nil {
		t.Fatal("finer query answered from a coarser entry")
	}

	// Aggregate mismatch.
	cnt := mustQuery(t, s, []int{1, 1, 0}, []query.Predicate{{Members: []int32{0, 1, 2}}, {}, {}})
	cnt.Agg = query.Count
	if c.Probe(cnt, 7) != nil {
		t.Fatal("COUNT answered from a SUM entry")
	}

	// Entry unrestricted, query restricted: always subsumed.
	c2 := New(1<<20, nil)
	c2.Put(free, 7, fill(10, 2), 100)
	if c2.Probe(sub, 7) == nil {
		t.Fatal("restricted query not answered by unrestricted entry")
	}
}

func TestAvgNeverCached(t *testing.T) {
	s := testSchema(t)
	q := mustQuery(t, s, []int{1, 1, 0}, nil)
	q.Agg = query.Avg
	c := New(1<<20, nil)
	if ev := c.Put(q, 1, fill(4, 0), 10); ev != 0 {
		t.Fatalf("Put(AVG) evicted %d", ev)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatal("AVG result was cached")
	}
}

func TestProbePicksFewestRows(t *testing.T) {
	s := testSchema(t)
	fine := mustQuery(t, s, []int{0, 0, 0}, nil)
	mid := mustQuery(t, s, []int{1, 1, 0}, nil)
	c := New(1<<20, nil)
	c.Put(fine, 1, fill(100, 0), 1000)
	c.Put(mid, 1, fill(12, 0), 100)
	coarse := mustQuery(t, s, []int{2, 2, 0}, nil)
	ent := c.Probe(coarse, 1)
	if ent == nil || len(ent.Rows) != 12 {
		t.Fatalf("probe picked entry with %v rows, want the 12-row one", ent)
	}
}

// predQuery builds a query at fixed levels restricted to one member, so
// entries cannot answer each other's probes (disjoint predicates are
// never subsumed) and eviction is observable per entry.
func predQuery(t *testing.T, s *star.Schema, member int32) *query.Query {
	t.Helper()
	return mustQuery(t, s, []int{1, 1, 0},
		[]query.Predicate{{Members: []int32{member}}, {}, {}})
}

func TestEvictionCostWeightedLRU(t *testing.T) {
	s := testSchema(t)
	nd := len(s.Dims)
	// Budget fits exactly two 10-row entries.
	budget := 2 * EntryBytes(10, nd)
	c := New(budget, nil)

	cheap := predQuery(t, s, 0)
	costly := predQuery(t, s, 1)
	third := predQuery(t, s, 2)

	c.Put(cheap, 1, fill(10, 0), 10)      // low recompute cost
	c.Put(costly, 1, fill(10, 1), 100000) // high recompute cost
	if ev := c.Put(third, 1, fill(10, 2), 50); ev != 1 {
		t.Fatalf("evicted %d entries, want 1", ev)
	}
	// The cheap entry must be the victim: same size, lowest cost/bytes.
	if c.Probe(cheap, 1) != nil {
		t.Fatal("high-value entry evicted before low-value one")
	}
	if c.Probe(costly, 1) == nil {
		t.Fatal("costly entry gone")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Inserts != 3 || st.Bytes > budget {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTouchProtectsRecentEntries(t *testing.T) {
	s := testSchema(t)
	nd := len(s.Dims)
	budget := 2 * EntryBytes(10, nd)
	c := New(budget, nil)
	a := predQuery(t, s, 0)
	b := predQuery(t, s, 1)
	c.Put(a, 1, fill(10, 0), 12)
	c.Put(b, 1, fill(10, 1), 10)
	// Inserting a third entry evicts b (lowest cost) and raises the
	// GreedyDual floor to b's priority, so the newcomer outranks a.
	third := predQuery(t, s, 2)
	c.Put(third, 1, fill(10, 2), 10)
	if c.Probe(b, 1) != nil {
		t.Fatal("expected the lowest-cost entry evicted first")
	}
	// Without a touch, a (the oldest surviving priority) would be the
	// next victim; refreshing it makes the younger entry go instead.
	c.Touch(c.Probe(a, 1))
	fourth := predQuery(t, s, 3)
	c.Put(fourth, 1, fill(10, 3), 10)
	if c.Probe(a, 1) == nil {
		t.Fatal("touched entry was evicted before the untouched one")
	}
	if c.Probe(third, 1) != nil {
		t.Fatal("untouched entry survived over the touched one")
	}
}

func TestOversizeRejected(t *testing.T) {
	s := testSchema(t)
	q := mustQuery(t, s, []int{1, 1, 0}, nil)
	c := New(EntryBytes(5, len(s.Dims)), nil)
	c.Put(q, 1, fill(50, 0), 10)
	st := c.Stats()
	if st.Entries != 0 || st.Rejected != 1 {
		t.Fatalf("oversize result not rejected: %+v", st)
	}
}

func TestBrokerDeniedGrowthEvicts(t *testing.T) {
	s := testSchema(t)
	nd := len(s.Dims)
	entry := EntryBytes(10, nd)
	broker := mem.New(2*entry + 64)
	// Cache's own budget is generous; the broker is the binding bound.
	c := New(1<<20, broker)
	a := mustQuery(t, s, []int{1, 1, 0}, nil)
	b := mustQuery(t, s, []int{1, 0, 0}, nil)
	d := mustQuery(t, s, []int{0, 1, 0}, nil)
	c.Put(a, 1, fill(10, 0), 10)
	c.Put(b, 1, fill(10, 1), 10)
	if ev := c.Put(d, 1, fill(10, 2), 10); ev == 0 {
		t.Fatal("broker-denied growth did not evict")
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	if used := broker.Stats().Used; used != st.Bytes {
		t.Fatalf("broker used %d, cache accounts %d", used, st.Bytes)
	}
}

func TestInvalidateReleasesMemory(t *testing.T) {
	s := testSchema(t)
	broker := mem.New(0)
	c := New(1<<20, broker)
	q := mustQuery(t, s, []int{1, 1, 0}, nil)
	c.Put(q, 1, fill(10, 0), 10)
	if broker.Stats().Used == 0 {
		t.Fatal("cache memory not reserved from broker")
	}
	e0 := c.Epoch()
	c.Invalidate()
	if got := broker.Stats().Used; got != 0 {
		t.Fatalf("broker still holds %d after Invalidate", got)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("cache not empty after Invalidate: %+v", st)
	}
	if c.Epoch() == e0 {
		t.Fatal("Invalidate did not advance the epoch")
	}
	// Idempotent: a second Invalidate of an empty cache keeps the epoch.
	e1 := c.Epoch()
	c.Invalidate()
	if c.Epoch() != e1 {
		t.Fatal("empty Invalidate advanced the epoch")
	}
}

func TestEpochAdvancesOnContentChange(t *testing.T) {
	s := testSchema(t)
	c := New(1<<20, nil)
	q := mustQuery(t, s, []int{1, 1, 0}, nil)
	e0 := c.Epoch()
	c.Put(q, 1, fill(10, 0), 10)
	e1 := c.Epoch()
	if e1 == e0 {
		t.Fatal("insert did not advance the epoch")
	}
	// Duplicate Put at the same generation is a refresh, not a change.
	c.Put(q, 1, fill(10, 0), 10)
	if c.Epoch() != e1 {
		t.Fatal("duplicate Put advanced the epoch")
	}
}

func TestStaleGenerationReplacement(t *testing.T) {
	s := testSchema(t)
	broker := mem.New(0)
	c := New(1<<20, broker)
	q := mustQuery(t, s, []int{1, 1, 0}, nil)
	c.Put(q, 1, fill(10, 0), 10)
	// A newer-generation result for the same semantics replaces the
	// resident entry without leaking its accounted bytes.
	c.Put(q, 2, fill(20, 0), 10)
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if want := EntryBytes(20, len(s.Dims)); st.Bytes != want || broker.Stats().Used != want {
		t.Fatalf("bytes = %d (broker %d), want %d", st.Bytes, broker.Stats().Used, want)
	}
	if c.Probe(q, 1) != nil {
		t.Fatal("old generation still answerable")
	}
	if c.Probe(q, 2) == nil {
		t.Fatal("new generation not answerable")
	}
	// The reverse direction — an older-generation Put over a newer
	// resident — must keep the newer entry.
	c.Put(q, 1, fill(5, 0), 10)
	if ent := c.Probe(q, 2); ent == nil || len(ent.Rows) != 20 {
		t.Fatal("stale Put displaced a fresher entry")
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	s := testSchema(t)
	q := mustQuery(t, s, []int{1, 1, 0}, nil)
	if c.Probe(q, 1) != nil || c.Epoch() != 0 || c.Put(q, 1, fill(1, 0), 1) != 0 {
		t.Fatal("nil cache not inert")
	}
	c.Touch(nil)
	c.RecordHits(1)
	c.RecordMisses(1)
	c.Invalidate()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

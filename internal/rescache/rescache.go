// Package rescache is an in-memory semantic cache of finished
// aggregation results. Where the plan cache memoizes *how* to answer an
// expression, this cache keeps the answers themselves: each entry is one
// query's result rows keyed by the query's semantics (group-by levels,
// predicate signature, aggregate) and the database generation it was
// computed at. A later query — not necessarily the same one — can be
// served by rolling a cached entry up the dimension lattice whenever the
// entry's group-by derives the query's and the entry's predicates
// subsume it, which costs CPU over a few thousand rows instead of page
// I/O over a base view (see exec.RollupCached).
//
// The cache's memory is reserved through the mem.Broker the rest of the
// engine's operator state lives under, bounded additionally by its own
// budget. When either bound denies growth, entries are evicted by
// cost-weighted LRU (GreedyDual-Size: each entry carries a priority
// L + cost/bytes refreshed on use; the minimum is evicted and its
// priority inflates L, so recency, recompute cost and footprint all
// weigh in). The cache never spills — a dropped entry just means the
// query re-executes. Mutations invalidate everything via the same
// generation counter that guards the plan cache.
//
// AVG results are never cached: AVG is not decomposable from final
// values alone (rolling up would need the underlying counts), so only
// SUM/COUNT/MIN/MAX entries — whose finals merge exactly by +/min/max —
// are admitted.
package rescache

import (
	"sort"
	"sync"

	"mdxopt/internal/mem"
	"mdxopt/internal/query"
)

// Row is one cached result group: member codes at the entry's levels
// (one per dimension, aggregated-out dimensions hold code 0) and the
// final aggregate value.
type Row struct {
	Keys  []int32
	Value float64
}

// Entry is one cached result. All fields are immutable after insertion;
// eviction only drops the cache's reference, so an executing rollup (or
// a cached plan) holding the entry keeps reading valid data.
type Entry struct {
	// Name is the entry's group-by in the paper's notation, for plan
	// display ("cache (q1 <= A'B''C''D'' ...)").
	Name   string
	Levels []int
	Preds  []query.Predicate
	Agg    query.Agg
	// Gen is the database generation the result was computed at; the
	// entry answers nothing once the database mutates past it.
	Gen  uint64
	Rows []Row
	// Bytes is the entry's accounted footprint.
	Bytes int64

	key  string  // semantic signature (query.Signature)
	cost float64 // estimated recompute cost, for eviction weighting
	pri  float64 // GreedyDual-Size priority; guarded by the cache mutex
}

// Answers reports whether the entry can compute q at generation gen:
// same aggregate (never AVG), the entry's group-by derives the query's,
// and per dimension the entry's predicate subsumes the query's — the
// entry is unrestricted, or every entry-level code the query selects
// (its predicate descended from the query's level to the entry's) is in
// the entry's member set. A query unrestricted on a dimension the entry
// restricts is not answerable: the entry is missing rows.
func (e *Entry) Answers(q *query.Query, gen uint64) bool {
	if e.Gen != gen || e.Agg != q.Agg || q.Agg == query.Avg {
		return false
	}
	if !q.AnswerableFrom(e.Levels) {
		return false
	}
	for i := range q.Preds {
		ep := e.Preds[i]
		if !ep.IsRestricted() {
			continue
		}
		if !q.Preds[i].IsRestricted() {
			return false
		}
		if !subsetOf(q.ViewPredicate(i, e.Levels[i]), ep.Members) {
			return false
		}
	}
	return true
}

// subsetOf reports whether every code in need is in have. have is
// sorted (query.New canonicalizes predicates); need's order depends on
// the hierarchy tables, so it is sorted defensively.
func subsetOf(need, have []int32) bool {
	if len(need) > len(have) {
		return false
	}
	ns := append([]int32(nil), need...)
	sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
	j := 0
	for _, n := range ns {
		for j < len(have) && have[j] < n {
			j++
		}
		if j == len(have) || have[j] != n {
			return false
		}
	}
	return true
}

// Stats is a snapshot of the cache's accounting.
type Stats struct {
	Budget    int64 // configured byte budget
	Bytes     int64 // bytes currently held
	Entries   int   // entries currently held
	Hits      int64 // queries served by rollup from an entry
	Misses    int64 // queries that executed despite the cache being on
	Evictions int64 // entries evicted for space
	Inserts   int64 // entries admitted
	Rejected  int64 // results not admitted (oversize, or eviction could not make room)
}

// Cache is the semantic result cache. A nil *Cache is valid and
// permanently empty — every method no-ops — so callers can leave it
// unconfigured. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	res     *mem.Reservation
	entries map[string]*Entry
	bytes   int64
	inflate float64 // GreedyDual's L: the last evicted priority
	epoch   uint64

	hits, misses, evictions, inserts, rejected int64
}

// New builds a cache with the given byte budget, reserving its memory
// from broker (which may be nil for an untracked cache).
func New(budget int64, broker *mem.Broker) *Cache {
	return &Cache{
		budget:  budget,
		res:     broker.Reserve("rescache"),
		entries: make(map[string]*Entry),
	}
}

// Epoch identifies the cache's contents: it advances on every insert,
// eviction and invalidation. The plan caches store the epoch their
// plans were built against, so a plan that pre- or post-dates a content
// change is rebuilt rather than reused — otherwise a plan built before
// a result was cached would keep re-scanning forever.
func (c *Cache) Epoch() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Probe returns the entry that answers q at generation gen with the
// fewest rows (the cheapest rollup), or nil. It is read-only: recency
// is bumped by Touch when a plan actually executes the rollup, and the
// hit/miss counters belong to execution, not planning.
func (c *Cache) Probe(q *query.Query, gen uint64) *Entry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *Entry
	for _, e := range c.entries {
		if !e.Answers(q, gen) {
			continue
		}
		if best == nil || len(e.Rows) < len(best.Rows) ||
			(len(e.Rows) == len(best.Rows) && e.key < best.key) {
			best = e
		}
	}
	return best
}

// entryOverhead and rowOverhead approximate an entry's bookkeeping
// beyond the raw key and value bytes (struct, slice headers, map
// bucket share).
const (
	entryOverhead = 160
	rowOverhead   = 32
)

// EntryBytes is the accounted footprint of a result with rows groups
// over nd dimensions.
func EntryBytes(rows, nd int) int64 {
	return entryOverhead + int64(rows)*int64(rowOverhead+4*nd)
}

// Put admits one finished result computed at generation gen. rows must
// be final values at q's levels in result order; costMicros is the
// estimated cost of recomputing the result (its eviction weight). It
// returns how many entries were evicted to make room. Results are
// silently rejected when the cache is nil or unbudgeted, the aggregate
// is AVG, the entry alone exceeds the budget, an equal-semantics entry
// already exists, or eviction cannot free enough admitted-by-the-broker
// space.
func (c *Cache) Put(q *query.Query, gen uint64, rows []Row, costMicros float64) (evicted int64) {
	if c == nil || c.budget <= 0 || q.Agg == query.Avg {
		return 0
	}
	bytes := EntryBytes(len(rows), len(q.Schema.Dims))
	c.mu.Lock()
	defer c.mu.Unlock()
	if bytes > c.budget {
		c.rejected++
		return 0
	}
	key := q.Signature()
	if old, ok := c.entries[key]; ok {
		if old.Gen >= gen {
			// Same semantics at the same (or a newer) generation: the
			// resident entry is at least as fresh, so refresh recency and
			// keep it (at equal generations the rows are identical).
			old.pri = c.inflate + old.cost/float64(old.Bytes)
			return 0
		}
		// The resident entry predates gen (defensive — mutations
		// invalidate wholesale): release it before inserting.
		delete(c.entries, key)
		c.bytes -= old.Bytes
		c.res.Shrink(old.Bytes)
		c.epoch++
	}
	for c.bytes+bytes > c.budget {
		if !c.evictOne() {
			c.rejected++
			return evicted
		}
		evicted++
	}
	for !c.res.TryGrow(bytes) {
		if !c.evictOne() {
			c.rejected++
			return evicted
		}
		evicted++
	}
	e := &Entry{
		Name:   q.GroupByName(),
		Levels: append([]int(nil), q.Levels...),
		Preds:  append([]query.Predicate(nil), q.Preds...),
		Agg:    q.Agg,
		Gen:    gen,
		Rows:   rows,
		Bytes:  bytes,
		key:    key,
		cost:   costMicros,
	}
	e.pri = c.inflate + e.cost/float64(e.Bytes)
	c.entries[key] = e
	c.bytes += bytes
	c.inserts++
	c.epoch++
	return evicted
}

// evictOne removes the minimum-priority entry (cost-weighted LRU) and
// inflates the GreedyDual floor to its priority. Reports false when the
// cache is already empty.
func (c *Cache) evictOne() bool {
	var victim *Entry
	for _, e := range c.entries {
		if victim == nil || e.pri < victim.pri ||
			(e.pri == victim.pri && e.key < victim.key) {
			victim = e
		}
	}
	if victim == nil {
		return false
	}
	delete(c.entries, victim.key)
	c.bytes -= victim.Bytes
	c.res.Shrink(victim.Bytes)
	if victim.pri > c.inflate {
		c.inflate = victim.pri
	}
	c.evictions++
	c.epoch++
	return true
}

// Touch refreshes an entry's eviction priority after a plan executed a
// rollup from it. Touching an already-evicted entry is harmless.
func (c *Cache) Touch(e *Entry) {
	if c == nil || e == nil {
		return
	}
	c.mu.Lock()
	e.pri = c.inflate + e.cost/float64(e.Bytes)
	c.mu.Unlock()
}

// RecordHits counts n queries served from the cache.
func (c *Cache) RecordHits(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.mu.Lock()
	c.hits += n
	c.mu.Unlock()
}

// RecordMisses counts n queries that executed without the cache.
func (c *Cache) RecordMisses(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.mu.Lock()
	c.misses += n
	c.mu.Unlock()
}

// Invalidate drops every entry after a database mutation and returns
// the reserved memory to the broker.
func (c *Cache) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if len(c.entries) > 0 {
		c.entries = make(map[string]*Entry)
		c.res.Shrink(c.bytes)
		c.bytes = 0
		c.epoch++
	}
	c.mu.Unlock()
}

// Stats snapshots the cache's accounting. A nil cache reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Budget:    c.budget,
		Bytes:     c.bytes,
		Entries:   len(c.entries),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Inserts:   c.inserts,
		Rejected:  c.rejected,
	}
}

package dag

import (
	"runtime"
	"sync/atomic"
)

// The unified worker pool.
//
// One Pool governs every goroutine a Run may put to work: graph nodes
// (class passes, cache rollups, lookup builds) and the page-aligned scan
// morsels a running node fans out (exec's morsel-driven shared scans).
// Both draw slots from the same bounded channel, so "4 DAG workers × 4
// scan workers" can no longer oversubscribe to 16 goroutines — intra-
// and inter-class parallelism compose against one width instead of
// multiplying.

// capFactor is the oversubscription allowance folded into WorkerCap.
// The engine's shared passes are dominated by page I/O (and, in the
// benchmarks, injected device latency), so a hardware thread can
// usefully multiplex several workers blocked in reads; a factor of 1
// would serialize the whole engine on single-core machines.
const capFactor = 8

// WorkerCap is the GOMAXPROCS-derived ceiling on effective pool width.
// Requests beyond it are clamped by NewPool, bounding total executor
// goroutines regardless of what the caller's knobs multiply out to.
func WorkerCap() int {
	c := capFactor * runtime.GOMAXPROCS(0)
	if c < 1 {
		c = 1
	}
	return c
}

// Pool is the bounded worker-slot pool one Run schedules on. A nil Pool
// behaves as width 1 (serial). Pools are cheap; create one per Run.
type Pool struct {
	width int
	slots chan struct{}
	// cur/peak track tasks actually running — nodes past their admission
	// gate plus joined morsel workers — not slots held while blocked in
	// admission, so Peak reports realized concurrency.
	cur, peak atomic.Int64
}

// NewPool returns a pool of the requested width clamped to
// [1, WorkerCap()].
func NewPool(width int) *Pool {
	if width < 1 {
		width = 1
	}
	if c := WorkerCap(); width > c {
		width = c
	}
	return &Pool{width: width, slots: make(chan struct{}, width)}
}

// Width is the clamped slot count. Nil-safe: a nil pool has width 1.
func (p *Pool) Width() int {
	if p == nil {
		return 1
	}
	return p.width
}

// Join claims a worker slot for a morsel helper, blocking until a slot
// frees or stop is closed (the scan ran out of morsels or aborted). It
// reports whether the slot was claimed; the caller must Leave after
// true. Helpers never hold a slot while waiting on anything else, so
// Join cannot deadlock against node scheduling.
func (p *Pool) Join(stop <-chan struct{}) bool {
	select {
	case p.slots <- struct{}{}:
	default:
		select {
		case p.slots <- struct{}{}:
		case <-stop:
			return false
		}
	}
	p.enter()
	return true
}

// Leave returns a slot claimed by Join.
func (p *Pool) Leave() {
	p.exit()
	<-p.slots
}

// Peak is the maximum number of tasks — nodes plus morsel helpers —
// observed running at once. Nil-safe.
func (p *Pool) Peak() int {
	if p == nil {
		return 0
	}
	return int(p.peak.Load())
}

// acquire claims a slot for a graph node, abandoning the wait when the
// run is canceled. Unlike Join it does not mark the task running — the
// node still has to pass the admission gate; runParallel calls enter
// afterwards.
func (p *Pool) acquire(cancel <-chan struct{}) bool {
	select {
	case p.slots <- struct{}{}:
		return true
	case <-cancel:
		return false
	}
}

func (p *Pool) release() { <-p.slots }

// enter marks one task running and folds it into the peak.
func (p *Pool) enter() {
	running := p.cur.Add(1)
	for {
		pk := p.peak.Load()
		if running <= pk || p.peak.CompareAndSwap(pk, running) {
			return
		}
	}
}

func (p *Pool) exit() { p.cur.Add(-1) }

// Package dag runs an explicit operator task graph on a bounded worker
// pool. The executor's global plan is naturally a DAG — shared dimension
// lookup builds feed class passes, class passes and cache rollups are
// mutually independent — and this package is the small, generic scheduler
// that exploits it: ready nodes (all dependencies done) start as soon as a
// worker slot is free, an optional admission gate sizes each start against
// the memory budget, and the first error cancels everything else while
// still draining in-flight work before Run returns.
//
// The worker slots live in a Pool (pool.go) shared with the work a node
// itself fans out: a running class pass splits its shared scan into
// page-aligned morsels, and its extra scan workers Join the same pool
// the scheduler starts nodes from. One width therefore bounds every
// executor goroutine, inter-class and intra-class alike.
//
// With width <= 1 the graph runs serially in insertion order, which for
// the graphs the planner builds (dependencies are always inserted before
// their dependents) reproduces the pre-DAG sequential executor exactly.
package dag

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Node is one task in the graph.
type Node struct {
	// Label names the node in errors and debug output.
	Label string
	// Cost is the node's estimated peak memory footprint in bytes,
	// passed to the admission gate before the node starts.
	Cost int64
	// Run does the node's work. It must respect ctx cancellation.
	Run func(ctx context.Context) error

	deps     []*Node
	done     chan struct{}
	sequence int
}

// Graph is a set of nodes with dependencies. Not safe for concurrent
// mutation; build the whole graph, then call Run once.
type Graph struct {
	nodes []*Node
}

// Add inserts a node that starts only after all of deps have finished
// successfully. deps must already be in the graph (the planner inserts
// builds before the classes that consume them), which makes insertion
// order a valid topological order.
func (g *Graph) Add(n *Node, deps ...*Node) *Node {
	n.deps = append(n.deps[:0], deps...)
	n.done = make(chan struct{})
	n.sequence = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return n
}

// Len returns the number of nodes in the graph.
func (g *Graph) Len() int { return len(g.nodes) }

// Options configures one Run.
type Options struct {
	// Workers bounds the number of tasks executing at once. Values <= 1
	// run the graph serially in insertion order. Ignored when Pool is
	// set.
	Workers int
	// Pool, when non-nil, supplies the worker slots instead of a fresh
	// NewPool(Workers). Callers pass the same pool to the work their
	// nodes fan out (shared-scan morsels), so node starts and morsel
	// helpers draw on one width. A pool belongs to a single Run.
	Pool *Pool
	// Gate, when non-nil, is called with the node's Cost before the node
	// starts (after a worker slot is acquired, so a blocked admission
	// never wedges ready work behind it on the same slot... each waiter
	// holds only its own slot). It returns a release func invoked when
	// the node finishes, or an error which aborts the run. Gates must be
	// refusal-free for at least one caller at a time (the memory broker's
	// idle-broker escape hatch) or Run can deadlock.
	Gate func(ctx context.Context, cost int64) (release func(), err error)
}

// Stats reports what one Run did.
type Stats struct {
	// Nodes is the number of graph nodes that were scheduled.
	Nodes int
	// ParallelPeak is the maximum number of nodes observed running
	// simultaneously (1 for a serial run of a non-empty graph).
	ParallelPeak int
	// WorkerPeak is the pool-wide peak: nodes plus the scan-morsel
	// helpers they fanned out, everything that held a worker slot at
	// once. Equals ParallelPeak when no node fanned out.
	WorkerPeak int
}

// Run executes the graph and blocks until every started node has
// finished, even on error — callers may tear down shared state (memory
// reservations, lookup tables) immediately after Run returns. The first
// node error cancels the derived context, unstarted nodes are skipped,
// and that first error is returned.
func (g *Graph) Run(ctx context.Context, opts Options) (Stats, error) {
	st := Stats{Nodes: len(g.nodes)}
	if len(g.nodes) == 0 {
		return st, ctx.Err()
	}
	pool := opts.Pool
	if pool == nil {
		pool = NewPool(opts.Workers)
	}
	if pool.Width() <= 1 {
		return g.runSerial(ctx, opts, st)
	}
	return g.runParallel(ctx, opts, pool, st)
}

// runSerial executes nodes one at a time in insertion order, which is a
// topological order by Add's contract. This is the ExecWorkers=1
// degradation target: identical work, identical order, no goroutines.
func (g *Graph) runSerial(ctx context.Context, opts Options, st Stats) (Stats, error) {
	st.ParallelPeak = 1
	st.WorkerPeak = 1
	for _, n := range g.nodes {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		release := func() {}
		if opts.Gate != nil {
			var err error
			release, err = opts.Gate(ctx, n.Cost)
			if err != nil {
				return st, fmt.Errorf("dag: admit %s: %w", n.Label, err)
			}
		}
		err := n.Run(ctx)
		release()
		if err != nil {
			return st, fmt.Errorf("%s: %w", n.Label, err)
		}
	}
	return st, nil
}

func (g *Graph) runParallel(ctx context.Context, opts Options, pool *Pool, st Stats) (Stats, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		firstErr  atomic.Pointer[error]
		wg        sync.WaitGroup
		cur, peak atomic.Int64
	)
	fail := func(err error) {
		e := err
		if firstErr.CompareAndSwap(nil, &e) {
			cancel()
		}
	}

	for _, n := range g.nodes {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			defer close(n.done)
			for _, d := range n.deps {
				select {
				case <-d.done:
				case <-runCtx.Done():
					return
				}
			}
			if runCtx.Err() != nil {
				return
			}
			if !pool.acquire(runCtx.Done()) {
				return
			}
			defer pool.release()
			release := func() {}
			if opts.Gate != nil {
				var err error
				release, err = opts.Gate(runCtx, n.Cost)
				if err != nil {
					if runCtx.Err() == nil {
						fail(fmt.Errorf("dag: admit %s: %w", n.Label, err))
					}
					return
				}
			}
			if runCtx.Err() != nil {
				release()
				return
			}
			running := cur.Add(1)
			for {
				p := peak.Load()
				if running <= p || peak.CompareAndSwap(p, running) {
					break
				}
			}
			pool.enter()
			err := n.Run(runCtx)
			pool.exit()
			cur.Add(-1)
			release()
			if err != nil {
				fail(fmt.Errorf("%s: %w", n.Label, err))
			}
		}(n)
	}
	wg.Wait()

	st.ParallelPeak = int(peak.Load())
	st.WorkerPeak = pool.Peak()
	if p := firstErr.Load(); p != nil {
		return st, *p
	}
	return st, ctx.Err()
}

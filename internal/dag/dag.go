// Package dag runs an explicit operator task graph on a bounded worker
// pool. The executor's global plan is naturally a DAG — shared dimension
// lookup builds feed class passes, class passes and cache rollups are
// mutually independent — and this package is the small, generic scheduler
// that exploits it: ready nodes (all dependencies done) start as soon as a
// worker slot is free, an optional admission gate sizes each start against
// the memory budget, and the first error cancels everything else while
// still draining in-flight work before Run returns.
//
// With Workers <= 1 the graph runs serially in insertion order, which for
// the graphs the planner builds (dependencies are always inserted before
// their dependents) reproduces the pre-DAG sequential executor exactly.
package dag

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Node is one task in the graph.
type Node struct {
	// Label names the node in errors and debug output.
	Label string
	// Cost is the node's estimated peak memory footprint in bytes,
	// passed to the admission gate before the node starts.
	Cost int64
	// Run does the node's work. It must respect ctx cancellation.
	Run func(ctx context.Context) error

	deps     []*Node
	done     chan struct{}
	sequence int
}

// Graph is a set of nodes with dependencies. Not safe for concurrent
// mutation; build the whole graph, then call Run once.
type Graph struct {
	nodes []*Node
}

// Add inserts a node that starts only after all of deps have finished
// successfully. deps must already be in the graph (the planner inserts
// builds before the classes that consume them), which makes insertion
// order a valid topological order.
func (g *Graph) Add(n *Node, deps ...*Node) *Node {
	n.deps = append(n.deps[:0], deps...)
	n.done = make(chan struct{})
	n.sequence = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return n
}

// Len returns the number of nodes in the graph.
func (g *Graph) Len() int { return len(g.nodes) }

// Options configures one Run.
type Options struct {
	// Workers bounds the number of nodes executing at once. Values <= 1
	// run the graph serially in insertion order.
	Workers int
	// Gate, when non-nil, is called with the node's Cost before the node
	// starts (after a worker slot is acquired, so a blocked admission
	// never wedges ready work behind it on the same slot... each waiter
	// holds only its own slot). It returns a release func invoked when
	// the node finishes, or an error which aborts the run. Gates must be
	// refusal-free for at least one caller at a time (the memory broker's
	// idle-broker escape hatch) or Run can deadlock.
	Gate func(ctx context.Context, cost int64) (release func(), err error)
}

// Stats reports what one Run did.
type Stats struct {
	// Nodes is the number of graph nodes that were scheduled.
	Nodes int
	// ParallelPeak is the maximum number of nodes observed running
	// simultaneously (1 for a serial run of a non-empty graph).
	ParallelPeak int
}

// Run executes the graph and blocks until every started node has
// finished, even on error — callers may tear down shared state (memory
// reservations, lookup tables) immediately after Run returns. The first
// node error cancels the derived context, unstarted nodes are skipped,
// and that first error is returned.
func (g *Graph) Run(ctx context.Context, opts Options) (Stats, error) {
	st := Stats{Nodes: len(g.nodes)}
	if len(g.nodes) == 0 {
		return st, ctx.Err()
	}
	if opts.Workers <= 1 {
		return g.runSerial(ctx, opts, st)
	}
	return g.runParallel(ctx, opts, st)
}

// runSerial executes nodes one at a time in insertion order, which is a
// topological order by Add's contract. This is the ExecWorkers=1
// degradation target: identical work, identical order, no goroutines.
func (g *Graph) runSerial(ctx context.Context, opts Options, st Stats) (Stats, error) {
	st.ParallelPeak = 1
	for _, n := range g.nodes {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		release := func() {}
		if opts.Gate != nil {
			var err error
			release, err = opts.Gate(ctx, n.Cost)
			if err != nil {
				return st, fmt.Errorf("dag: admit %s: %w", n.Label, err)
			}
		}
		err := n.Run(ctx)
		release()
		if err != nil {
			return st, fmt.Errorf("%s: %w", n.Label, err)
		}
	}
	return st, nil
}

func (g *Graph) runParallel(ctx context.Context, opts Options, st Stats) (Stats, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		firstErr  atomic.Pointer[error]
		slots     = make(chan struct{}, opts.Workers)
		wg        sync.WaitGroup
		cur, peak atomic.Int64
	)
	fail := func(err error) {
		e := err
		if firstErr.CompareAndSwap(nil, &e) {
			cancel()
		}
	}

	for _, n := range g.nodes {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			defer close(n.done)
			for _, d := range n.deps {
				select {
				case <-d.done:
				case <-runCtx.Done():
					return
				}
			}
			if runCtx.Err() != nil {
				return
			}
			select {
			case slots <- struct{}{}:
			case <-runCtx.Done():
				return
			}
			defer func() { <-slots }()
			release := func() {}
			if opts.Gate != nil {
				var err error
				release, err = opts.Gate(runCtx, n.Cost)
				if err != nil {
					if runCtx.Err() == nil {
						fail(fmt.Errorf("dag: admit %s: %w", n.Label, err))
					}
					return
				}
			}
			if runCtx.Err() != nil {
				release()
				return
			}
			running := cur.Add(1)
			for {
				p := peak.Load()
				if running <= p || peak.CompareAndSwap(p, running) {
					break
				}
			}
			err := n.Run(runCtx)
			cur.Add(-1)
			release()
			if err != nil {
				fail(fmt.Errorf("%s: %w", n.Label, err))
			}
		}(n)
	}
	wg.Wait()

	st.ParallelPeak = int(peak.Load())
	if p := firstErr.Load(); p != nil {
		return st, *p
	}
	return st, ctx.Err()
}

package dag

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
)

// TestPoolWidthClamp: widths clamp into [1, WorkerCap()], and a nil pool
// reads as serial.
func TestPoolWidthClamp(t *testing.T) {
	cap := WorkerCap()
	if want := capFactor * runtime.GOMAXPROCS(0); cap != want {
		t.Fatalf("WorkerCap() = %d, want %d", cap, want)
	}
	cases := []struct{ req, want int }{
		{0, 1}, {-3, 1}, {1, 1}, {2, 2}, {cap, cap}, {cap + 1, cap}, {1 << 20, cap},
	}
	for _, c := range cases {
		if got := NewPool(c.req).Width(); got != c.want {
			t.Errorf("NewPool(%d).Width() = %d, want %d", c.req, got, c.want)
		}
	}
	var nilPool *Pool
	if got := nilPool.Width(); got != 1 {
		t.Fatalf("nil pool Width() = %d, want 1", got)
	}
	if got := nilPool.Peak(); got != 0 {
		t.Fatalf("nil pool Peak() = %d, want 0", got)
	}
}

// TestPoolJoinLeavePeak: Join grants exactly width slots, a full pool
// refuses a joiner whose stop channel closes, and Peak records the
// high-water mark of joined workers.
func TestPoolJoinLeavePeak(t *testing.T) {
	p := NewPool(2)
	if p.Width() != 2 {
		t.Fatalf("Width() = %d, want 2", p.Width())
	}
	open := make(chan struct{})
	if !p.Join(open) || !p.Join(open) {
		t.Fatal("Join refused with free slots")
	}
	closed := make(chan struct{})
	close(closed)
	if p.Join(closed) {
		t.Fatal("Join granted a slot on a full pool with stop closed")
	}
	if got := p.Peak(); got != 2 {
		t.Fatalf("Peak() = %d, want 2", got)
	}
	p.Leave()
	if !p.Join(open) {
		t.Fatal("Join refused after Leave freed a slot")
	}
	p.Leave()
	p.Leave()
	if got := p.Peak(); got != 2 {
		t.Fatalf("Peak() = %d after drain, want 2 (high-water mark)", got)
	}
}

// TestPoolJoinUnblocksOnStop: a Join blocked on a saturated pool must
// return false (not hang) when its stop channel closes — this is how a
// finished shared scan releases helpers that never got a slot.
func TestPoolJoinUnblocksOnStop(t *testing.T) {
	p := NewPool(1)
	open := make(chan struct{})
	if !p.Join(open) {
		t.Fatal("first Join refused")
	}
	stop := make(chan struct{})
	got := make(chan bool)
	go func() { got <- p.Join(stop) }()
	close(stop)
	if <-got {
		t.Fatal("blocked Join returned true after stop closed")
	}
	p.Leave()
}

// TestGraphWorkerPeakCountsMorselHelpers: a node that fans work out via
// Join must raise Stats.WorkerPeak above ParallelPeak — the pool-wide
// peak counts nodes and their helpers against the same width.
func TestGraphWorkerPeakCountsMorselHelpers(t *testing.T) {
	pool := NewPool(4)
	var g Graph
	g.Add(&Node{Label: "fanout", Run: func(ctx context.Context) error {
		stop := make(chan struct{})
		defer close(stop)
		joined := make(chan struct{}, 3)
		release := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !pool.Join(stop) {
					joined <- struct{}{} // count refusals too, to not wedge the barrier
					return
				}
				defer pool.Leave()
				joined <- struct{}{}
				<-release
			}()
		}
		for i := 0; i < 3; i++ {
			<-joined
		}
		close(release)
		wg.Wait()
		return nil
	}})
	st, err := g.Run(context.Background(), Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if st.ParallelPeak != 1 {
		t.Fatalf("ParallelPeak = %d, want 1 (single node)", st.ParallelPeak)
	}
	if st.WorkerPeak != 4 {
		t.Fatalf("WorkerPeak = %d, want 4 (node + 3 morsel helpers)", st.WorkerPeak)
	}
}

// TestGraphSharedPoolBoundsNodes: with a width-1 shared pool... the run
// degrades to the serial path even if many nodes are ready, and a node
// error still cancels the rest.
func TestGraphSharedPoolBoundsNodes(t *testing.T) {
	pool := NewPool(1)
	boom := errors.New("boom")
	var g Graph
	ran := 0
	g.Add(&Node{Label: "a", Run: func(context.Context) error { ran++; return nil }})
	g.Add(&Node{Label: "b", Run: func(context.Context) error { ran++; return boom }})
	g.Add(&Node{Label: "c", Run: func(context.Context) error { ran++; return nil }})
	st, err := g.Run(context.Background(), Options{Pool: pool})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 2 {
		t.Fatalf("serial run executed %d nodes before the error, want 2", ran)
	}
	if st.WorkerPeak != 1 {
		t.Fatalf("WorkerPeak = %d, want 1", st.WorkerPeak)
	}
}

package dag

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSerialOrder: with Workers<=1 nodes run in insertion order, one at a
// time, which is the pre-DAG sequential executor the system degrades to.
func TestSerialOrder(t *testing.T) {
	for _, workers := range []int{0, 1} {
		var g Graph
		var order []string
		mk := func(label string, deps ...*Node) *Node {
			return g.Add(&Node{Label: label, Run: func(context.Context) error {
				order = append(order, label)
				return nil
			}}, deps...)
		}
		a := mk("a")
		b := mk("b", a)
		mk("c")
		mk("d", b)
		st, err := g.Run(context.Background(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.Nodes != 4 || st.ParallelPeak != 1 {
			t.Fatalf("workers=%d: stats %+v", workers, st)
		}
		if got := fmt.Sprint(order); got != "[a b c d]" {
			t.Fatalf("workers=%d: order %s", workers, got)
		}
	}
}

// TestDependencies: a node never starts before all its dependencies have
// finished, at any worker count.
func TestDependencies(t *testing.T) {
	var g Graph
	const n = 50
	done := make([]atomic.Bool, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		i := i
		var deps []*Node
		if i >= 2 {
			deps = []*Node{nodes[i-1], nodes[i-2]}
		}
		nodes[i] = g.Add(&Node{
			Label: fmt.Sprintf("n%d", i),
			Run: func(context.Context) error {
				for _, d := range deps {
					idx := d.sequence
					if !done[idx].Load() {
						return fmt.Errorf("n%d ran before n%d finished", i, idx)
					}
				}
				done[i].Store(true)
				return nil
			},
		}, deps...)
	}
	if _, err := g.Run(context.Background(), Options{Workers: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelPeak: independent nodes actually overlap. Each node blocks
// until `want` nodes are running at once, so the test fails by timeout if
// the scheduler serializes them.
func TestParallelPeak(t *testing.T) {
	var g Graph
	const want = 4
	var running atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	for i := 0; i < want; i++ {
		g.Add(&Node{Label: fmt.Sprintf("p%d", i), Run: func(ctx context.Context) error {
			if running.Add(1) == want {
				once.Do(func() { close(release) })
			}
			select {
			case <-release:
				return nil
			case <-time.After(10 * time.Second):
				return errors.New("peers never arrived")
			case <-ctx.Done():
				return ctx.Err()
			}
		}})
	}
	st, err := g.Run(context.Background(), Options{Workers: want})
	if err != nil {
		t.Fatal(err)
	}
	if st.ParallelPeak != want {
		t.Fatalf("peak %d, want %d", st.ParallelPeak, want)
	}
}

// TestErrorSkipsDependents: a failing node cancels the run; its
// dependents never execute, independent in-flight nodes drain, and Run
// returns the first error.
func TestErrorSkipsDependents(t *testing.T) {
	var g Graph
	boom := errors.New("boom")
	var ranDependent, drained atomic.Bool
	inFlight := make(chan struct{})
	slow := g.Add(&Node{Label: "slow", Run: func(ctx context.Context) error {
		close(inFlight)
		<-ctx.Done() // run until the failure cancels us
		drained.Store(true)
		return nil
	}})
	bad := g.Add(&Node{Label: "bad", Run: func(context.Context) error {
		<-inFlight // guarantee slow started first
		return boom
	}})
	g.Add(&Node{Label: "child", Run: func(context.Context) error {
		ranDependent.Store(true)
		return nil
	}}, bad)
	_, err := g.Run(context.Background(), Options{Workers: 3})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if ranDependent.Load() {
		t.Fatal("dependent of failed node ran")
	}
	if !drained.Load() {
		t.Fatal("Run returned before in-flight node finished")
	}
	_ = slow
}

// TestGate: every executed node is admitted with its cost and released
// exactly once, serial and parallel alike.
func TestGate(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var g Graph
		costs := []int64{10, 20, 30}
		for i, c := range costs {
			g.Add(&Node{Label: fmt.Sprintf("g%d", i), Cost: c, Run: func(context.Context) error { return nil }})
		}
		var admitted, released atomic.Int64
		gate := func(_ context.Context, cost int64) (func(), error) {
			admitted.Add(cost)
			return func() { released.Add(cost) }, nil
		}
		if _, err := g.Run(context.Background(), Options{Workers: workers, Gate: gate}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if admitted.Load() != 60 || released.Load() != 60 {
			t.Fatalf("workers=%d: admitted=%d released=%d", workers, admitted.Load(), released.Load())
		}
	}
}

// TestGateError: an admission failure aborts the run with the gate's
// error.
func TestGateError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var g Graph
		g.Add(&Node{Label: "n", Run: func(context.Context) error { return nil }})
		refused := errors.New("refused")
		gate := func(context.Context, int64) (func(), error) { return nil, refused }
		if _, err := g.Run(context.Background(), Options{Workers: workers, Gate: gate}); !errors.Is(err, refused) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, refused)
		}
	}
}

// TestCanceledContext: a pre-canceled context runs nothing.
func TestCanceledContext(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var g Graph
		var ran atomic.Bool
		g.Add(&Node{Label: "n", Run: func(context.Context) error { ran.Store(true); return nil }})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := g.Run(ctx, Options{Workers: workers}); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if ran.Load() {
			t.Fatalf("workers=%d: node ran under canceled context", workers)
		}
	}
}

// TestEmptyGraph: running an empty graph is a no-op.
func TestEmptyGraph(t *testing.T) {
	var g Graph
	st, err := g.Run(context.Background(), Options{Workers: 4})
	if err != nil || st.Nodes != 0 || st.ParallelPeak != 0 {
		t.Fatalf("st=%+v err=%v", st, err)
	}
}

package plan

import (
	"mdxopt/internal/query"
)

// Task-graph decomposition.
//
// A global plan is naturally a DAG of tasks: the dimension lookups its
// class passes need can be built once up front and shared across every
// class (extending §3.1's within-pass sharing across passes), the class
// passes themselves are mutually independent, and cache rollups depend
// on nothing. BuildTasks enumerates the hoisted lookup builds; the core
// executor turns them plus the classes and cache plans into dag nodes.
//
// Builds are grouped one task per dimension, not one per lookup: a
// build task then scans only its own dimension's stored table, so
// concurrent build tasks touch disjoint files — which both avoids
// re-reading one table from two tasks and keeps per-task I/O accounting
// exact (see exec.Env.IOFiles).

// LookupSpec identifies one shareable dimension lookup a class pass
// needs: the dimension, the view column's level, and the query-side
// signature (target level + predicate). Query is a representative query
// to build it from; any query with the same signature builds the
// identical lookup.
type LookupSpec struct {
	Dim       int
	ViewLevel int
	Sig       string
	Query     *query.Query
}

// BuildTask is one task-graph build node: the distinct lookups of one
// dimension across the whole plan, deduplicated exactly the way the
// execution layer's lookup cache would share them.
type BuildTask struct {
	Dim   int
	Specs []LookupSpec
}

// BuildTasks enumerates the shared dimension-lookup builds of g,
// deduplicated across classes and grouped per dimension, in dimension
// order. Every class pass consumes lookups of every dimension, so each
// class depends on every returned task. Plans without classes need no
// builds.
func BuildTasks(g *Global) []BuildTask {
	if len(g.Classes) == 0 {
		return nil
	}
	nd := len(g.Classes[0].View.Levels)
	seen := map[memLookupKey]bool{}
	byDim := make([][]LookupSpec, nd)
	for _, c := range g.Classes {
		for _, p := range c.Plans {
			q := p.Query
			for dim := 0; dim < nd; dim++ {
				key := memLookupKey{dim: dim, viewLevel: c.View.Levels[dim], sig: memLookupSig(q, dim)}
				if seen[key] {
					continue
				}
				seen[key] = true
				byDim[dim] = append(byDim[dim], LookupSpec{
					Dim:       dim,
					ViewLevel: key.viewLevel,
					Sig:       key.sig,
					Query:     q,
				})
			}
		}
	}
	out := make([]BuildTask, 0, nd)
	for dim, specs := range byDim {
		if len(specs) > 0 {
			out = append(out, BuildTask{Dim: dim, Specs: specs})
		}
	}
	return out
}

// BuildMemory estimates a build task's footprint: the bytes of every
// lookup it registers, which stay live until the whole plan finishes.
func (e *Estimator) BuildMemory(t BuildTask) int64 {
	var total int64
	for _, s := range t.Specs {
		d := s.Query.Schema.Dims[s.Dim]
		total += int64(d.Card(s.ViewLevel)) * memLookupBytesPerRow
	}
	return total
}

// ClassPassMemory estimates the operator-state footprint of one class's
// shared pass as a task-graph node. With hoisted lookups the pass holds
// no lookup memory of its own (the shared set does, priced by
// BuildMemory); otherwise this is ClassMemory.
func (e *Estimator) ClassPassMemory(c *Class, hoistedLookups bool) int64 {
	total := e.ClassMemory(c)
	if hoistedLookups {
		total -= e.classLookupMemory(c)
	}
	return total
}

// CacheMemory estimates a cache rollup's footprint: its re-aggregation
// table, at most one group per cached row, priced per entry the same
// way as the scan-side tables (packed fold kernel vs byte-key map).
func (e *Estimator) CacheMemory(cp *CachePlan) int64 {
	return int64(len(cp.Entry.Rows)) * aggEntryBytes(cp.Query)
}

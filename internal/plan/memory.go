package plan

import (
	"fmt"

	"mdxopt/internal/query"
	"mdxopt/internal/star"
)

// Memory model.
//
// The scheduler admits a batch only when its estimated operator-state
// footprint fits the memory broker's budget (internal/mem), so the
// estimator mirrors the execution layer's accounting: dimension lookup
// tables, result bitmaps, and aggregation hash tables, with the same
// per-entry constants internal/exec charges its reservations with.
// Estimates intentionally ignore sharing's timing (everything is priced
// as if live simultaneously) — admission wants a peak bound, and the
// operators' spill paths recover from underestimates.

const (
	// memLookupBytesPerRow mirrors exec's lookupBytesPerRow: 4 bytes of
	// rollup target plus 1 byte of predicate pass per view-level code.
	memLookupBytesPerRow = 5
	// memAggEntryOverhead mirrors exec's aggEntryOverhead: hash-table
	// bookkeeping per group on top of the byte key, charged by the
	// legacy map tables (group-by keys wider than 64 bits).
	memAggEntryOverhead = 96
	// memFoldEntryBytes is the per-group estimate for the packed-key
	// open-addressing tables (exec's foldTable): one 32-byte slot,
	// doubled for the ≤3/4 load factor and rehash headroom.
	memFoldEntryBytes = 64
)

// aggEntryBytes prices one aggregation group of q: queries whose
// group-by key packs into a uint64 run on the open-addressing fold
// kernel; wider keys fall back to the byte-key map. The split mirrors
// exec's newQueryPipeline exactly.
func aggEntryBytes(q *query.Query) int64 {
	if q.Schema.PackedGroupBits(q.Levels) <= 64 {
		return memFoldEntryBytes
	}
	return int64(4*len(q.Schema.Dims)) + memAggEntryOverhead
}

// memLookupKey identifies one shareable dimension lookup, mirroring
// exec's lookupKey: queries with the same dimension, view level, target
// level, and predicate share one table when lookup sharing is on.
type memLookupKey struct {
	dim       int
	viewLevel int
	sig       string
}

func memLookupSig(q *query.Query, dim int) string {
	s := fmt.Sprintf("%d:", q.Levels[dim])
	if q.Preds[dim].IsRestricted() {
		for _, m := range q.Preds[dim].Members {
			s += fmt.Sprintf("%d,", m)
		}
	} else {
		s += "*"
	}
	return s
}

// groupEstimate estimates q's result group count on v: the group-by
// space capped by the qualifying rows (a query cannot produce more
// groups than tuples it aggregates).
func (e *Estimator) groupEstimate(q *query.Query, v *star.View) float64 {
	groups := 1.0
	for dim, d := range q.Schema.Dims {
		groups *= float64(d.Card(q.Levels[dim]))
	}
	if rows := e.selRows(q, v); rows < groups {
		groups = rows
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}

// aggMemory estimates q's aggregation-table footprint on v in bytes.
func (e *Estimator) aggMemory(q *query.Query, v *star.View) int64 {
	return int64(e.groupEstimate(q, v) * float64(aggEntryBytes(q)))
}

// bitmapMemory is one result bitmap's footprint over v in bytes.
func bitmapMemory(v *star.View) int64 {
	return (v.Rows() + 63) / 64 * 8
}

// aggTableCopies is how many copies of each member's aggregation table
// a class pass holds at its peak: one for the serial pass, and under a
// Workers-wide pool one per worker plus the primary table they merge
// into (the workers' tables are still resident while the first merges
// absorb them). Both regimes fan out now — scans and the vectorized
// union probe claim morsels from the same pool — so both multiply.
// Lookups and bitmaps are shared read-only across workers and are not
// multiplied.
func (e *Estimator) aggTableCopies(c *Class) int64 {
	if e.Workers <= 1 {
		return 1
	}
	return int64(e.Workers) + 1
}

// memProbeBufBytes mirrors exec's probeBufBytes: one probe worker's
// page batch (4-byte keys + 8-byte measures per tuple) plus its two
// selection vectors and the masked-word scratch.
func memProbeBufBytes(v *star.View) int64 {
	tpp := int64(v.Heap.TuplesPerPage())
	nk := int64(v.Heap.Schema().NumKeys())
	nm := int64(v.Heap.Schema().NumMeasures())
	return tpp*(4*nk+8*nm) + 8*tpp + (tpp/64+2)*8
}

// ClassMemory estimates the operator-state footprint of evaluating
// class c in one shared pass, in bytes: deduplicated dimension lookups
// (assuming lookup sharing), one aggregation table per member — per
// resident copy when the pool fans the scan out (aggTableCopies) — one
// result bitmap per index member, and the union bitmap in the probe
// regime. Methods and Regime must already be assigned (ClassCost does
// this); an unpriced class is estimated as if in the scan regime with
// its current methods.
func (e *Estimator) ClassMemory(c *Class) int64 {
	if len(c.Plans) == 0 {
		return 0
	}
	v := c.View
	copies := e.aggTableCopies(c)
	total := e.classLookupMemory(c)
	bitmaps := 0
	for _, p := range c.Plans {
		total += copies * e.aggMemory(p.Query, v)
		if p.Method == IndexSJ {
			bitmaps++
		}
	}
	total += int64(bitmaps) * bitmapMemory(v)
	if c.Regime == ProbeRegime {
		if len(c.Plans) > 1 {
			total += bitmapMemory(v) // the union bitmap
		}
		// One fetch batch + routing scratch per probe worker (exec's
		// probeWorker buffers, reserved on the bitmaps grant).
		workers := int64(1)
		if e.Workers > 1 {
			workers = int64(e.Workers)
		}
		total += workers * memProbeBufBytes(v)
	}
	return total
}

// classLookupMemory estimates the class's deduplicated dimension-lookup
// footprint (assuming lookup sharing), the component the task-graph
// executor hoists into shared build tasks.
func (e *Estimator) classLookupMemory(c *Class) int64 {
	v := c.View
	var total int64
	lookups := make(map[memLookupKey]struct{})
	for _, p := range c.Plans {
		q := p.Query
		for dim, d := range q.Schema.Dims {
			key := memLookupKey{dim: dim, viewLevel: v.Levels[dim], sig: memLookupSig(q, dim)}
			if _, ok := lookups[key]; ok {
				continue
			}
			lookups[key] = struct{}{}
			total += int64(d.Card(v.Levels[dim])) * memLookupBytesPerRow
		}
	}
	return total
}

// GlobalMemory estimates the operator-state footprint of a global plan:
// the sum of its class footprints plus the rollup re-aggregation tables
// of cache-served queries. Queries the cache serves carry no lookup,
// bitmap or scan-side aggregation state, so a warm cache directly
// shrinks the estimate admission charges for a batch. The task-graph
// executor may run a batch's classes concurrently, so the sum is the
// right peak bound (each class's state is live at once in the worst
// case); the sum slightly overstates lookup memory under hoisting —
// cross-class duplicate lookups are built once — which degrades safely:
// overestimates defer admission, never break execution.
func (e *Estimator) GlobalMemory(g *Global) int64 {
	var total int64
	for _, c := range g.Classes {
		total += e.ClassMemory(c)
	}
	for _, cp := range g.Cached {
		total += e.CacheMemory(cp)
	}
	return total
}

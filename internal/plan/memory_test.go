package plan

import (
	"math"
	"testing"

	"mdxopt/internal/rescache"
)

// Satellite coverage for ClassCost / CostOfAdd edge cases the memory
// model extends: single-query classes, index-only classes, and
// infeasible views.

func TestClassCostSingleQueryMatchesBestMethod(t *testing.T) {
	db, qs := testDB(t)
	// Paper estimator: a one-member class has nothing to share, so its
	// class cost must equal the member's best standalone cost exactly
	// (the full model may additionally apply the filter conversion,
	// which only ever lowers it).
	paper := NewPaperEstimator(db)
	full := NewEstimator(db)
	v := db.ViewByLevels([]int{1, 1, 1, 0})
	for _, name := range []string{"Q1", "Q6"} {
		c := &Class{View: v, Plans: []*Local{{Query: qs[name], View: v}}}
		cc := paper.ClassCost(c)
		_, best, ok := paper.BestMethod(qs[name], v)
		if !ok {
			t.Fatalf("%s infeasible on %s", name, v.Name)
		}
		if math.Abs(cc-best) > 1e-6 {
			t.Fatalf("%s: single-member class cost %v != best standalone %v", name, cc, best)
		}
		fc := &Class{View: v, Plans: []*Local{{Query: qs[name], View: v}}}
		if fcc := full.ClassCost(fc); fcc > cc+1e-6 {
			t.Fatalf("%s: full-model class cost %v above paper %v", name, fcc, cc)
		}
	}
}

func TestClassCostUnindexedViewFallsBackToScan(t *testing.T) {
	db, qs := testDB(t)
	e := NewEstimator(db)
	// A view without bitmap join indexes cannot use the probe regime —
	// even for very selective members the class must price as a scan
	// with hash methods, finitely.
	v := db.ViewByLevels([]int{1, 1, 2, 0})
	for dim := range v.Indexes {
		if v.Indexes[dim] != nil {
			t.Skipf("view %s unexpectedly has an index", v.Name)
		}
	}
	c := &Class{View: v, Plans: []*Local{
		{Query: qs["Q1"], View: v},
		{Query: qs["Q2"], View: v},
	}}
	cc := e.ClassCost(c)
	if math.IsInf(cc, 1) {
		t.Fatal("unindexed class priced infeasible")
	}
	if c.Regime != ScanRegime {
		t.Fatalf("regime = %v, want scan", c.Regime)
	}
	for _, p := range c.Plans {
		if p.Method != HashSJ {
			t.Fatalf("%s assigned %v on an unindexed view", p.Query.Name, p.Method)
		}
	}
}

func TestClassCostInfeasibleViewIsInf(t *testing.T) {
	db, qs := testDB(t)
	e := NewEstimator(db)
	// Q6 needs levels finer than the coarse view provides; a class
	// containing it on that view is unpriceable.
	coarse := db.ViewByLevels([]int{2, 2, 1, 0})
	c := &Class{View: coarse, Plans: []*Local{
		{Query: qs["Q1"], View: coarse},
		{Query: qs["Q6"], View: coarse},
	}}
	if cc := e.ClassCost(c); !math.IsInf(cc, 1) {
		t.Fatalf("infeasible class cost = %v, want +Inf", cc)
	}
	// CostOfAdd of an unanswerable query must also be +Inf, without
	// disturbing the class.
	ok := &Class{View: coarse, Plans: []*Local{{Query: qs["Q1"], View: coarse}}}
	if add := e.CostOfAdd(ok, qs["Q6"]); !math.IsInf(add, 1) {
		t.Fatalf("CostOfAdd(unanswerable) = %v, want +Inf", add)
	}
	if len(ok.Plans) != 1 {
		t.Fatal("CostOfAdd mutated the class")
	}
}

func TestCostOfAddToEmptyClassIsStandalone(t *testing.T) {
	db, qs := testDB(t)
	e := NewPaperEstimator(db)
	v := db.ViewByLevels([]int{1, 1, 2, 0})
	empty := &Class{View: v}
	add := e.CostOfAdd(empty, qs["Q1"])
	_, best, ok := e.BestMethod(qs["Q1"], v)
	if !ok {
		t.Fatal("Q1 infeasible")
	}
	if math.Abs(add-best) > 1e-6 {
		t.Fatalf("add-to-empty %v != best standalone %v", add, best)
	}
}

func TestClassMemoryPositiveAndSharingAware(t *testing.T) {
	db, qs := testDB(t)
	e := NewEstimator(db)
	v := db.ViewByLevels([]int{1, 1, 2, 0})

	single := &Class{View: v, Plans: []*Local{{Query: qs["Q1"], View: v}}}
	e.ClassCost(single)
	m1 := e.ClassMemory(single)
	if m1 <= 0 {
		t.Fatalf("single-member class memory = %d", m1)
	}

	// Two members with identical dimension lookups share them: the
	// class footprint must be below twice the single footprint.
	double := &Class{View: v, Plans: []*Local{
		{Query: qs["Q1"], View: v},
		{Query: qs["Q1"], View: v},
	}}
	e.ClassCost(double)
	m2 := e.ClassMemory(double)
	if m2 >= 2*m1 {
		t.Fatalf("lookup sharing not reflected: two identical members %d >= 2×%d", m2, m1)
	}
	if m2 <= m1 {
		t.Fatalf("second aggregation table not counted: %d <= %d", m2, m1)
	}

	if e.ClassMemory(&Class{View: v}) != 0 {
		t.Fatal("empty class has nonzero memory")
	}
}

func TestClassMemoryCountsBitmaps(t *testing.T) {
	db, qs := testDB(t)
	e := NewEstimator(db)
	indexed := db.ViewByLevels([]int{1, 1, 1, 0})

	probe := &Class{View: indexed, Plans: []*Local{
		{Query: qs["Q6"], View: indexed},
		{Query: qs["Q7"], View: indexed},
	}}
	e.ClassCost(probe)
	if probe.Regime != ProbeRegime {
		t.Skipf("expected probe regime for selective members, got %v", probe.Regime)
	}
	withBitmaps := e.ClassMemory(probe)

	// Force the same members onto hash methods in the scan regime: the
	// footprint must drop by at least the per-member bitmaps plus union.
	scan := &Class{View: indexed, Regime: ScanRegime, Plans: []*Local{
		{Query: qs["Q6"], View: indexed, Method: HashSJ},
		{Query: qs["Q7"], View: indexed, Method: HashSJ},
	}}
	withoutBitmaps := e.ClassMemory(scan)
	wantDrop := 3 * bitmapMemory(indexed) // two member bitmaps + union
	if withBitmaps-withoutBitmaps != wantDrop {
		t.Fatalf("bitmap accounting: with=%d without=%d drop=%d want %d",
			withBitmaps, withoutBitmaps, withBitmaps-withoutBitmaps, wantDrop)
	}
}

func TestGlobalMemorySumsClasses(t *testing.T) {
	db, qs := testDB(t)
	e := NewEstimator(db)
	v1 := db.ViewByLevels([]int{1, 1, 2, 0})
	v2 := db.ViewByLevels([]int{1, 1, 1, 0})
	c1 := &Class{View: v1, Plans: []*Local{{Query: qs["Q1"], View: v1}}}
	c2 := &Class{View: v2, Plans: []*Local{{Query: qs["Q6"], View: v2}}}
	e.ClassCost(c1)
	e.ClassCost(c2)
	g := &Global{Classes: []*Class{c1, c2}}
	if got, want := e.GlobalMemory(g), e.ClassMemory(c1)+e.ClassMemory(c2); got != want {
		t.Fatalf("GlobalMemory = %d, want %d", got, want)
	}
}

func TestGroupEstimateCappedBySelectedRows(t *testing.T) {
	db, qs := testDB(t)
	e := NewEstimator(db)
	v := db.Base()
	for _, q := range qs {
		groups := e.groupEstimate(q, v)
		if groups < 1 {
			t.Fatalf("%s: group estimate %v below 1", q.Name, groups)
		}
		if rows := e.selRows(q, v); groups > rows && groups > 1 {
			t.Fatalf("%s: groups %v exceed qualifying rows %v", q.Name, groups, rows)
		}
	}
}

func TestGlobalMemoryCachedPlansShrinkEstimate(t *testing.T) {
	db, qs := testDB(t)
	e := NewEstimator(db)
	v := db.ViewByLevels([]int{1, 1, 2, 0})
	q := qs["Q1"]
	c := &Class{View: v, Plans: []*Local{{Query: q, View: v}}}
	e.ClassCost(c)
	asClass := e.GlobalMemory(&Global{Classes: []*Class{c}})

	// The same query served from a small cached entry charges only the
	// rollup re-aggregation table — strictly less than the class pass
	// (which adds lookup tables and a scan-sized aggregation estimate).
	ent := &rescache.Entry{
		Name:   q.GroupByName(),
		Levels: append([]int(nil), q.Levels...),
		Rows:   make([]rescache.Row, 8),
	}
	asCache := e.GlobalMemory(&Global{Cached: []*CachePlan{{Query: q, Entry: ent}}})
	if want := int64(8) * aggEntryBytes(q); asCache != want {
		t.Fatalf("cached-plan memory = %d, want %d", asCache, want)
	}
	if asCache >= asClass {
		t.Fatalf("cache-served estimate %d not below class estimate %d", asCache, asClass)
	}

	// Mixed plans sum both parts.
	mixed := e.GlobalMemory(&Global{Classes: []*Class{c}, Cached: []*CachePlan{{Query: q, Entry: ent}}})
	if mixed != asClass+asCache {
		t.Fatalf("mixed estimate %d != %d + %d", mixed, asClass, asCache)
	}
}

package plan

import (
	"math"
	"path/filepath"
	"testing"

	"mdxopt/internal/cost"
	"mdxopt/internal/datagen"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/workload"
)

var sharedDB *star.Database
var sharedQs map[string]*query.Query

func testDB(t *testing.T) (*star.Database, map[string]*query.Query) {
	t.Helper()
	if sharedDB != nil {
		return sharedDB, sharedQs
	}
	spec := datagen.PaperSpec(0.1)
	spec.PoolFrames = 1024
	db, err := datagen.Build(filepath.Join(t.TempDir(), "db"), spec)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := workload.PaperQueries(db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	sharedDB, sharedQs = db, qs
	return db, qs
}

func TestYaoPages(t *testing.T) {
	if got := cost.YaoPages(1000, 100, 0); got != 0 {
		t.Fatalf("YaoPages(k=0) = %v", got)
	}
	if got := cost.YaoPages(1000, 100, 1000); got != 100 {
		t.Fatalf("YaoPages(k=all) = %v", got)
	}
	few := cost.YaoPages(1000, 100, 5)
	if few <= 0 || few > 5 {
		t.Fatalf("YaoPages(k=5) = %v, want in (0,5]", few)
	}
	many := cost.YaoPages(1000, 100, 500)
	if many <= few || many > 100 {
		t.Fatalf("YaoPages not monotone: %v then %v", few, many)
	}
}

func TestFeasibility(t *testing.T) {
	db, qs := testDB(t)
	e := NewEstimator(db)
	indexed := db.ViewByLevels([]int{1, 1, 1, 0})
	coarse := db.ViewByLevels([]int{2, 2, 1, 0})

	if !e.Feasible(qs["Q7"], indexed, HashSJ) || !e.Feasible(qs["Q7"], indexed, IndexSJ) {
		t.Fatal("Q7 must be feasible both ways on A'B'C'D")
	}
	if e.Feasible(qs["Q7"], db.Base(), IndexSJ) {
		t.Fatal("index join feasible on unindexed base")
	}
	if e.Feasible(qs["Q6"], coarse, HashSJ) {
		t.Fatal("coarse view answered fine query")
	}
}

func TestStandaloneCostShape(t *testing.T) {
	// The hash/index dichotomy of the paper holds under the paper-mode
	// estimator (random probe pricing).
	db, qs := testDB(t)
	e := NewPaperEstimator(db)
	indexed := db.ViewByLevels([]int{1, 1, 1, 0})

	// Smaller views are cheaper to scan.
	big := e.StandaloneCost(qs["Q3"], db.Base(), HashSJ)
	small := e.StandaloneCost(qs["Q3"], indexed, HashSJ)
	if small >= big {
		t.Fatalf("hash on smaller view (%v) not cheaper than base (%v)", small, big)
	}

	// Very selective queries prefer the index join on the indexed view.
	m, _, ok := e.BestMethod(qs["Q7"], indexed)
	if !ok || m != IndexSJ {
		t.Fatalf("Q7 best method on indexed view = %v, want IndexSJ", m)
	}
	// Non-selective queries prefer the hash join.
	m, _, ok = e.BestMethod(qs["Q3"], indexed)
	if !ok || m != HashSJ {
		t.Fatalf("Q3 best method on indexed view = %v, want HashSJ", m)
	}

	// Infeasible = +Inf.
	if !math.IsInf(e.StandaloneCost(qs["Q7"], db.Base(), IndexSJ), 1) {
		t.Fatal("infeasible cost not +Inf")
	}
}

func TestBestLocalPicksExactView(t *testing.T) {
	db, qs := testDB(t)
	e := NewPaperEstimator(db)
	// Q1 targets A'B''C''D = levels (1,2,2,1); the smallest deriving
	// view is A'B''C''D itself (1,2,2,0).
	local, _, err := e.BestLocal(qs["Q1"], db.Views)
	if err != nil {
		t.Fatal(err)
	}
	want := db.ViewByLevels([]int{1, 2, 2, 0})
	if local.View != want {
		t.Fatalf("Q1 best view = %s, want %s", local.View.Name, want.Name)
	}
}

func TestClassCostSharing(t *testing.T) {
	db, qs := testDB(t)
	e := NewEstimator(db)
	v := db.ViewByLevels([]int{1, 1, 2, 0})

	solo1 := e.StandaloneCost(qs["Q1"], v, HashSJ)
	solo2 := e.StandaloneCost(qs["Q2"], v, HashSJ)

	c := &Class{View: v, Plans: []*Local{
		{Query: qs["Q1"], View: v},
		{Query: qs["Q2"], View: v},
	}}
	shared := e.ClassCost(c)
	if shared >= solo1+solo2 {
		t.Fatalf("class cost %v not below separate %v", shared, solo1+solo2)
	}
	// The saving is exactly one scan of the shared view (I/O sharing).
	saving := solo1 + solo2 - shared
	scan := e.Model.ScanIO(v.Pages())
	if math.Abs(saving-scan) > 1e-6 {
		t.Fatalf("saving %v != one scan %v", saving, scan)
	}
}

func TestClassCostProbeRegime(t *testing.T) {
	db, qs := testDB(t)
	e := NewEstimator(db)
	v := db.ViewByLevels([]int{1, 1, 1, 0})
	c := &Class{View: v, Plans: []*Local{
		{Query: qs["Q6"], View: v},
		{Query: qs["Q7"], View: v},
	}}
	cc := e.ClassCost(c)
	if math.IsInf(cc, 1) {
		t.Fatal("probe-regime class infeasible")
	}
	// Very selective members must get the index method.
	for _, p := range c.Plans {
		if p.Method != IndexSJ {
			t.Fatalf("%s assigned %v, want IndexSJ", p.Query.Name, p.Method)
		}
	}
	// And the probe regime must beat even a single hash member's
	// standalone cost (the scan regime would pay that per member).
	if solo := e.StandaloneCost(qs["Q6"], v, HashSJ); cc >= solo {
		t.Fatalf("selective class cost %v not below one hash member %v", cc, solo)
	}
}

func TestCostOfAddMarginal(t *testing.T) {
	db, qs := testDB(t)
	e := NewEstimator(db)
	v := db.ViewByLevels([]int{1, 1, 2, 0})
	c := &Class{View: v, Plans: []*Local{{Query: qs["Q1"], View: v}}}

	add := e.CostOfAdd(c, qs["Q2"])
	solo := e.StandaloneCost(qs["Q2"], v, HashSJ)
	if add >= solo {
		t.Fatalf("marginal add cost %v not below standalone %v", add, solo)
	}
	if add <= 0 {
		t.Fatalf("marginal add cost %v not positive", add)
	}
	// Infeasible adds are +Inf.
	if !math.IsInf(e.CostOfAdd(&Class{View: db.ViewByLevels([]int{2, 2, 1, 0})}, qs["Q6"]), 1) {
		t.Fatal("infeasible CostOfAdd not +Inf")
	}
}

func TestFullModelExtendsPaperPlanSpace(t *testing.T) {
	// The full-model estimator may convert a scan-regime class member
	// with usable indexes into a bitmap filter over the shared scan
	// (§3.3 as a first-class plan choice); paper mode keeps such
	// members on the hash join. The conversion lowers the class cost.
	db, qs := testDB(t)
	full := NewEstimator(db)
	paper := NewPaperEstimator(db)
	indexed := db.ViewByLevels([]int{1, 1, 1, 0})

	mkClass := func() *Class {
		return &Class{View: indexed, Plans: []*Local{
			{Query: qs["Q1"], View: indexed},
			{Query: qs["Q3"], View: indexed},
		}}
	}
	cp := mkClass()
	paperCost := paper.ClassCost(cp)
	for _, p := range cp.Plans {
		if p.Method != HashSJ {
			t.Fatalf("paper mode assigned %v to %s, want HashSJ", p.Method, p.Query.Name)
		}
	}
	cf := mkClass()
	fullCost := full.ClassCost(cf)
	converted := 0
	for _, p := range cf.Plans {
		if p.Method == IndexSJ {
			converted++
		}
	}
	if converted == 0 {
		t.Fatal("full model converted no member to a bitmap filter")
	}
	if fullCost >= paperCost {
		t.Fatalf("full-model class %v not below paper-mode %v", fullCost, paperCost)
	}
	// Both estimators agree the very selective Q7 is an index join.
	for _, e := range []*Estimator{full, paper} {
		if m, _, _ := e.BestMethod(qs["Q7"], indexed); m != IndexSJ {
			t.Fatalf("Q7 method = %v, want IndexSJ under both estimators", m)
		}
	}
}

func TestGlobalDescribeAndLookup(t *testing.T) {
	db, qs := testDB(t)
	v := db.Base()
	g := &Global{Classes: []*Class{{View: v, Plans: []*Local{
		{Query: qs["Q1"], View: v, Method: HashSJ},
		{Query: qs["Q2"], View: v, Method: HashSJ},
	}}}}
	if g.NumQueries() != 2 {
		t.Fatalf("NumQueries = %d", g.NumQueries())
	}
	if g.PlanFor(qs["Q1"]) == nil || g.PlanFor(qs["Q7"]) != nil {
		t.Fatal("PlanFor wrong")
	}
	desc := g.Describe()
	if desc == "" {
		t.Fatal("empty Describe")
	}
	c := g.Classes[0]
	if len(c.HashPlans()) != 2 || len(c.IndexPlans()) != 0 {
		t.Fatal("method partition wrong")
	}
	if len(c.Queries()) != 2 {
		t.Fatal("Queries() wrong")
	}
}

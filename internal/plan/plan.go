// Package plan defines the physical plan forms the optimizers produce —
// local plans (query × base view × star-join method), classes of plans
// sharing one base view, and global plans — together with the §5.1 cost
// model that prices them, including the shared-I/O accounting that makes
// base-table sharing attractive.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"mdxopt/internal/query"
	"mdxopt/internal/rescache"
	"mdxopt/internal/star"
)

// Method is a star-join method.
type Method int

const (
	// HashSJ is the pipelined right-deep hash star join (scan the base
	// table, probe dimension hash tables).
	HashSJ Method = iota
	// IndexSJ is the bitmap-join-index star join (build a result bitmap,
	// probe the base table at the set positions).
	IndexSJ
)

func (m Method) String() string {
	switch m {
	case HashSJ:
		return "hash-based SJ"
	case IndexSJ:
		return "index-based SJ"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Local is one query's plan: evaluate Query from View with Method.
type Local struct {
	Query  *query.Query
	View   *star.View
	Method Method
}

func (l *Local) String() string {
	return fmt.Sprintf("(%s => %s [%s])", l.Query.GroupByName(), l.View.Name, l.Method)
}

// Regime is how a class's shared pass over its base view is performed.
type Regime int

const (
	// ScanRegime evaluates the class with one shared sequential scan
	// (§3.1/§3.3): hash members probe per tuple, index members filter
	// the scanned stream with their result bitmaps.
	ScanRegime Regime = iota
	// ProbeRegime evaluates the class with the shared index star join
	// (§3.2): the union result bitmap drives random probes; every
	// member must be an index plan.
	ProbeRegime
)

func (r Regime) String() string {
	if r == ProbeRegime {
		return "probe"
	}
	return "scan"
}

// Class is a set of local plans sharing one base view; the §3 shared
// operators evaluate a class in one pass over the view, in the manner
// selected by Regime.
type Class struct {
	View   *star.View
	Regime Regime
	Plans  []*Local
}

// HashPlans returns the class members using the hash star join.
func (c *Class) HashPlans() []*Local {
	var out []*Local
	for _, p := range c.Plans {
		if p.Method == HashSJ {
			out = append(out, p)
		}
	}
	return out
}

// IndexPlans returns the class members using the index star join.
func (c *Class) IndexPlans() []*Local {
	var out []*Local
	for _, p := range c.Plans {
		if p.Method == IndexSJ {
			out = append(out, p)
		}
	}
	return out
}

// Queries returns the class's queries in plan order.
func (c *Class) Queries() []*query.Query {
	out := make([]*query.Query, len(c.Plans))
	for i, p := range c.Plans {
		out[i] = p.Query
	}
	return out
}

// Origins returns the distinct submission origins of the class's
// queries in first-appearance order. A class spanning more than one
// origin merges work across independently submitted requests — the
// cross-request generalization of the paper's sharing.
func (c *Class) Origins() []int {
	var out []int
	seen := map[int]bool{}
	for _, p := range c.Plans {
		o := p.Query.Origin
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// SharesOrigins reports whether the class merges queries from more than
// one submission.
func (c *Class) SharesOrigins() bool { return len(c.Origins()) > 1 }

func (c *Class) String() string {
	parts := make([]string, len(c.Plans))
	for i, p := range c.Plans {
		parts[i] = p.String()
	}
	return fmt.Sprintf("Class[%s]{%s}", c.View.Name, strings.Join(parts, " "))
}

// CachePlan answers one query by rolling up a semantic result-cache
// entry (exec.RollupCached) instead of joining a stored view — zero
// page I/O, CPU linear in the entry's rows.
type CachePlan struct {
	Query *query.Query
	Entry *rescache.Entry
}

func (p *CachePlan) String() string {
	return fmt.Sprintf("(%s <= cache %s [%d rows])", p.Query.QualifiedName(), p.Entry.Name, len(p.Entry.Rows))
}

// Global is a complete plan for a query set: the classes evaluated by
// shared passes over stored views, plus the queries served from the
// result cache.
type Global struct {
	Classes []*Class
	Cached  []*CachePlan
}

// NumQueries returns the total number of queries planned.
func (g *Global) NumQueries() int {
	n := len(g.Cached)
	for _, c := range g.Classes {
		n += len(c.Plans)
	}
	return n
}

// CachePlanFor returns the cache plan serving the given query, or nil.
func (g *Global) CachePlanFor(q *query.Query) *CachePlan {
	for _, cp := range g.Cached {
		if cp.Query == q {
			return cp
		}
	}
	return nil
}

// PlanFor returns the local plan of the given query, or nil.
func (g *Global) PlanFor(q *query.Query) *Local {
	for _, c := range g.Classes {
		for _, p := range c.Plans {
			if p.Query == q {
				return p
			}
		}
	}
	return nil
}

// Describe renders the plan in the paper's notation, one class per line.
func (g *Global) Describe() string {
	var b strings.Builder
	for _, c := range g.Classes {
		fmt.Fprintf(&b, "class %s [%s]:", c.View.Name, c.Regime)
		// Stable output: queries in (origin, name) order.
		plans := append([]*Local(nil), c.Plans...)
		sort.Slice(plans, func(i, j int) bool {
			return plans[i].Query.QualifiedName() < plans[j].Query.QualifiedName()
		})
		for _, p := range plans {
			fmt.Fprintf(&b, " (%s => %s [%s])", p.Query.QualifiedName(), p.View.Name, p.Method)
		}
		b.WriteString("\n")
	}
	if len(g.Cached) > 0 {
		cached := append([]*CachePlan(nil), g.Cached...)
		sort.Slice(cached, func(i, j int) bool {
			return cached[i].Query.QualifiedName() < cached[j].Query.QualifiedName()
		})
		b.WriteString("cache [rollup]:")
		for _, cp := range cached {
			fmt.Fprintf(&b, " %s", cp)
		}
		b.WriteString("\n")
	}
	return b.String()
}

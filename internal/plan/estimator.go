package plan

import (
	"fmt"
	"math"

	"mdxopt/internal/cost"
	"mdxopt/internal/query"
	"mdxopt/internal/rescache"
	"mdxopt/internal/star"
)

// Estimator prices plans with the §5.1 cost model. All estimates are in
// simulated microseconds (see internal/cost).
type Estimator struct {
	DB    *star.Snapshot
	Model *cost.Model
	// FilterConversion allows scan-regime class members with usable
	// indexes to run as bitmap filters over the shared scan (§3.3's
	// conversion) even when a standalone plan would choose the hash
	// join. On by default; paper mode disables it because the paper
	// applies the conversion only when merging an index *local plan*
	// into a scan, never as a first-class plan choice.
	FilterConversion bool
	// UseStats estimates selectivities from measured base-table member
	// frequencies (star.Database.Stats) instead of the uniform
	// assumption, when statistics are available. On by default; the
	// skew ablation disables it.
	UseStats bool
	// VectorIndex prices the vectorized index-probe data path (exec's
	// route.go): bitmap routing is one word AND per 64 tuples instead of
	// a scalar test per tuple, so the scan-regime filter term and the
	// probe-regime re-test term are charged per bitmap word rather than
	// per tuple. On for the full model; paper mode keeps the per-tuple
	// pricing so Tests 4–7 reproduce the paper's plan choices.
	VectorIndex bool
	// CostEvals counts cost-model evaluations (StandaloneCost and
	// ClassCost calls) — the "number of global plans searched" currency
	// of the paper's §8 time/space trade-off discussion.
	CostEvals int64
	// Workers is the effective worker-pool width execution will run
	// under (core.ExecOptions.Workers after clamping). The memory model
	// multiplies scan-side aggregation-table footprints by the resident
	// per-worker copies (see aggTableCopies), so admission keeps the
	// broker's peak within budget when shared scans fan out into
	// morsels. Zero or one prices the serial pass. Cost estimates are
	// unaffected — the pool changes wall-clock, not work.
	Workers int
	// Cache, when non-nil, is the semantic result cache the optimizers
	// consult before costing star-join plans: a query answerable from a
	// cached entry gains a zero-IO rollup candidate (CacheCandidate)
	// priced against the shared scans, so sharing still wins when it is
	// cheaper for the batch as a whole. Gen is the database generation
	// entries must match.
	Cache *rescache.Cache
	Gen   uint64
}

// NewEstimator returns the full-model estimator with the §3.3 filter
// conversion enabled. Its plan space is a strict superset of the
// paper's and finds plans the paper's optimizer cannot.
func NewEstimator(db star.Catalog) *Estimator {
	return &Estimator{DB: db.Snapshot(), Model: cost.Default(), FilterConversion: true, UseStats: true, VectorIndex: true}
}

// NewPaperEstimator returns an estimator confined to the paper's plan
// space: random-probe pricing and no standalone filter conversion. The
// Table 2 experiments (Tests 4–7) use it to reproduce the paper's
// algorithm comparison; the extension benchmarks compare it against the
// full model.
func NewPaperEstimator(db star.Catalog) *Estimator {
	return &Estimator{DB: db.Snapshot(), Model: cost.Default(), UseStats: true}
}

// Feasible reports whether method m can evaluate q from view v: the view
// must support the query (derive its group-by, be fresh, and carry the
// aggregate information the query needs), and an index star join
// additionally needs a bitmap join index on at least one restricted
// dimension.
func (e *Estimator) Feasible(q *query.Query, v *star.View, m Method) bool {
	if !q.SupportedBy(e.DB, v) {
		return false
	}
	if m == IndexSJ {
		return e.hasUsableIndex(q, v)
	}
	return true
}

func (e *Estimator) hasUsableIndex(q *query.Query, v *star.View) bool {
	for _, dim := range q.RestrictedDims() {
		if v.HasIndex(dim) {
			return true
		}
	}
	return false
}

// dimSel estimates dimension dim's predicate selectivity, from measured
// member frequencies when available and enabled, otherwise uniformly.
func (e *Estimator) dimSel(q *query.Query, dim int) float64 {
	p := q.Preds[dim]
	if !p.IsRestricted() {
		return 1
	}
	if e.UseStats && e.DB.Stats != nil {
		return e.DB.Stats.Frac(e.DB.Schema.Dims[dim], dim, q.Levels[dim], p.Members)
	}
	return q.DimSelectivity(dim)
}

// selRows estimates the number of view rows satisfying all of q's
// predicates.
func (e *Estimator) selRows(q *query.Query, v *star.View) float64 {
	s := 1.0
	for dim := range q.Preds {
		s *= e.dimSel(q, dim)
	}
	return float64(v.Rows()) * s
}

// indexedSelRows estimates the rows selected by the result bitmap alone:
// the product of selectivities over the *indexed* restricted dimensions
// (residual predicates are applied after the fetch).
func (e *Estimator) indexedSelRows(q *query.Query, v *star.View) float64 {
	s := 1.0
	for _, dim := range q.RestrictedDims() {
		if v.HasIndex(dim) {
			s *= e.dimSel(q, dim)
		}
	}
	return float64(v.Rows()) * s
}

// buildCost prices the dimension lookup builds for one query: scanning
// each dimension table and inserting its rows.
func (e *Estimator) buildCost(q *query.Query) float64 {
	m := e.Model
	var c float64
	for dim := range q.Schema.Dims {
		h := e.DB.DimTables[dim]
		c += m.ScanIO(h.DataPages()) + m.BuildCPU*float64(h.Count())
	}
	return c
}

// bitmapCost prices building q's result bitmap on v: reading the
// per-member bitmaps of each indexed restricted dimension and the
// OR/AND word operations.
func (e *Estimator) bitmapCost(q *query.Query, v *star.View) float64 {
	m := e.Model
	words := float64((v.Rows() + 63) / 64)
	var c float64
	indexedDims := 0
	for _, dim := range q.RestrictedDims() {
		ix := v.Indexes[dim]
		if ix == nil {
			continue
		}
		indexedDims++
		nBitmaps := float64(len(q.ViewPredicate(dim, v.Levels[dim])))
		pages := nBitmaps * float64(ix.PagesPerBitmap())
		// One seek per dimension's index, then sequential bitmap pages.
		c += m.RandPage + m.SeqPage*pages + m.BitmapWord*nBitmaps*words
	}
	if indexedDims > 1 {
		c += m.BitmapWord * words * float64(indexedDims-1) // ANDs
	}
	return c
}

// probeIO prices fetching k selected rows from v: views are stored
// unclustered, so the touched pages (Yao's estimate) are random reads.
func (e *Estimator) probeIO(v *star.View, k float64) float64 {
	return e.Model.RandPage * cost.YaoPages(v.Rows(), v.Pages(), int64(k))
}

// StandaloneCost estimates the cost of evaluating q alone from v with m.
// It returns +Inf when infeasible.
func (e *Estimator) StandaloneCost(q *query.Query, v *star.View, m Method) float64 {
	e.CostEvals++
	if !e.Feasible(q, v, m) {
		return math.Inf(1)
	}
	mod := e.Model
	c := e.buildCost(q)
	switch m {
	case HashSJ:
		c += mod.ScanIO(v.Pages())
		c += mod.TupleCPU * float64(v.Rows())
		c += mod.AggCPU * e.selRows(q, v)
	case IndexSJ:
		c += e.bitmapCost(q, v)
		k := e.indexedSelRows(q, v)
		c += e.probeIO(v, k)
		c += mod.FetchCPU * k
		c += mod.AggCPU * e.selRows(q, v)
	}
	return c
}

// BestMethod returns the cheaper feasible method for q on v and its
// standalone cost; ok is false when neither method is feasible.
func (e *Estimator) BestMethod(q *query.Query, v *star.View) (Method, float64, bool) {
	hc := e.StandaloneCost(q, v, HashSJ)
	ic := e.StandaloneCost(q, v, IndexSJ)
	if math.IsInf(hc, 1) && math.IsInf(ic, 1) {
		return HashSJ, hc, false
	}
	if ic < hc {
		return IndexSJ, ic, true
	}
	return HashSJ, hc, true
}

// BestLocal returns the cheapest local plan for q over the given views.
func (e *Estimator) BestLocal(q *query.Query, views []*star.View) (*Local, float64, error) {
	var best *Local
	bestCost := math.Inf(1)
	for _, v := range views {
		m, c, ok := e.BestMethod(q, v)
		if !ok {
			continue
		}
		if c < bestCost {
			best = &Local{Query: q, View: v, Method: m}
			bestCost = c
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("plan: no view can answer %s", q)
	}
	return best, bestCost, nil
}

// ClassCost prices a class under the shared-operator execution model and
// assigns each member plan the method that minimizes the class total.
// The two execution regimes of §3 are compared:
//
//	scan regime (SharedScanHash / SharedMixed): one sequential scan of
//	the base view is shared; hash members pay per-tuple probe CPU, index
//	members pay bitmap construction plus per-tuple filter tests, and
//	their probe I/O is absorbed by the scan (§3.3).
//
//	probe regime (SharedIndex): feasible when every member is
//	index-feasible; the union bitmap is probed once (§3.2).
//
// The returned cost is +Inf when some member cannot run on the class's
// view at all. Methods on the plans are updated in place.
func (e *Estimator) ClassCost(c *Class) float64 {
	e.CostEvals++
	if len(c.Plans) == 0 {
		return 0
	}
	mod := e.Model
	v := c.View
	for _, p := range c.Plans {
		if !p.Query.SupportedBy(e.DB, v) {
			return math.Inf(1)
		}
	}
	words := float64((v.Rows() + 63) / 64)

	// Scan regime: per-plan marginal cost on top of the shared scan.
	scanShared := mod.ScanIO(v.Pages())
	scanTotal := scanShared
	scanMethods := make([]Method, len(c.Plans))
	for i, p := range c.Plans {
		q := p.Query
		hashCPU := e.buildCost(q) + mod.TupleCPU*float64(v.Rows()) + mod.AggCPU*e.selRows(q, v)
		indexCPU := math.Inf(1)
		if e.FilterConversion && e.hasUsableIndex(q, v) {
			k := e.indexedSelRows(q, v)
			// The bitmap-filter test over the scanned stream: per tuple
			// scalar, per 64-tuple word vectorized.
			filter := mod.BitTest * float64(v.Rows())
			if e.VectorIndex {
				filter = mod.BitmapWord * words
			}
			indexCPU = e.buildCost(q) + e.bitmapCost(q, v) +
				filter + mod.FetchCPU*k + mod.AggCPU*e.selRows(q, v)
		}
		if indexCPU < hashCPU {
			scanMethods[i] = IndexSJ
			scanTotal += indexCPU
		} else {
			scanMethods[i] = HashSJ
			scanTotal += hashCPU
		}
	}

	// Probe regime: all members via the shared index join.
	probeTotal := math.Inf(1)
	allIndex := true
	for _, p := range c.Plans {
		if !e.hasUsableIndex(p.Query, v) {
			allIndex = false
			break
		}
	}
	if allIndex {
		// Union selectivity: 1 - prod(1 - sel_i).
		miss := 1.0
		probeTotal = 0
		for _, p := range c.Plans {
			q := p.Query
			k := e.indexedSelRows(q, v)
			sel := k / float64(v.Rows())
			miss *= 1 - sel
			probeTotal += e.buildCost(q) + e.bitmapCost(q, v) +
				mod.FetchCPU*k + mod.AggCPU*e.selRows(q, v)
		}
		unionRows := float64(v.Rows()) * (1 - miss)
		if len(c.Plans) > 1 {
			// OR-ing the per-query bitmaps, then routing each fetched
			// tuple to its queries: a scalar bitmap test per fetched
			// tuple per query, or — vectorized — one word AND per union
			// word per query.
			probeTotal += mod.BitmapWord * words * float64(len(c.Plans)-1)
			if e.VectorIndex {
				probeTotal += mod.BitmapWord * words * float64(len(c.Plans))
			} else {
				probeTotal += mod.BitTest * unionRows * float64(len(c.Plans))
			}
		}
		probeTotal += e.probeIO(v, unionRows)
	}

	if probeTotal < scanTotal {
		c.Regime = ProbeRegime
		for _, p := range c.Plans {
			p.Method = IndexSJ
		}
		return probeTotal
	}
	c.Regime = ScanRegime
	for i, p := range c.Plans {
		p.Method = scanMethods[i]
	}
	return scanTotal
}

// GlobalCost prices a global plan (assigning methods as a side effect).
func (e *Estimator) GlobalCost(g *Global) float64 {
	var total float64
	for _, c := range g.Classes {
		total += e.ClassCost(c)
	}
	for _, cp := range g.Cached {
		total += e.CacheCost(cp.Entry)
	}
	return total
}

// CacheCost prices answering a query by rollup from the cached entry:
// no I/O, one rollup-and-filter step per cached row plus re-aggregation.
// Every row is priced as qualifying — an upper bound that errs toward
// the shared scans, and still orders of magnitude below any page read.
func (e *Estimator) CacheCost(ent *rescache.Entry) float64 {
	e.CostEvals++
	return (e.Model.TupleCPU + e.Model.AggCPU) * float64(len(ent.Rows))
}

// CacheCandidate returns the cheapest cache entry that can answer q at
// the estimator's generation, with its rollup cost; ok is false when
// the cache is off or holds no answering entry.
func (e *Estimator) CacheCandidate(q *query.Query) (ent *rescache.Entry, cost float64, ok bool) {
	if e.Cache == nil {
		return nil, math.Inf(1), false
	}
	ent = e.Cache.Probe(q, e.Gen)
	if ent == nil {
		return nil, math.Inf(1), false
	}
	return ent, e.CacheCost(ent), true
}

// CostOfAdd returns the marginal cost of adding q to class c, keeping
// c's base view: Cost(c ∪ q) - Cost(c). This is the paper's
// CostOfUsing(B) for a shared base table (§5.1): the query's own CPU and
// I/O plus the change in the class's shared I/O.
func (e *Estimator) CostOfAdd(c *Class, q *query.Query) float64 {
	if !q.AnswerableFrom(c.View.Levels) {
		return math.Inf(1)
	}
	before := e.ClassCost(c)
	trial := &Class{View: c.View, Plans: append(append([]*Local(nil), c.Plans...), &Local{Query: q, View: c.View})}
	after := e.ClassCost(trial)
	return after - before
}

// Package mem implements the process-wide memory broker that governs
// the memory occupied by operator state — dimension lookup tables,
// result bitmaps, and aggregation hash tables — across every query the
// engine is running at once.
//
// The paper's shared operators (§3) assume all of that state fits in
// memory; under heavy concurrent traffic it does not. The broker makes
// the footprint explicit: every allocator of operator state registers a
// Reservation and grows it before allocating. Three grant disciplines
// cover the three kinds of state:
//
//   - TryGrow is a *refusable* grant: it fails when the budget is
//     exhausted, and the caller degrades gracefully. The aggregation
//     tables use it — a denied grant triggers a grace-hash partitioned
//     spill to disk (see internal/exec).
//   - MustGrow is an *overdraft* grant for state the plan cannot run
//     without (dimension lookups, result bitmaps, spill page buffers):
//     it always succeeds but is tracked, and the bytes granted past the
//     budget are reported as Overdraft so the planner's admission
//     estimates can be audited.
//   - Admit is an *admission claim* used by the scheduler before a
//     batch executes: when the estimated footprint does not fit, the
//     batch is deferred — blocked, not refused — until running work
//     releases memory. A claim on an idle broker always succeeds, so
//     a batch larger than the whole budget still runs (relying on the
//     operators' spill paths to stay within it).
//
// Brokers nest: Child creates a broker whose reservations are also
// charged to the parent, giving per-request caps under one global
// budget. A Broker with limit 0 tracks usage without enforcing one.
// All methods are safe for concurrent use, and a nil *Reservation is a
// valid no-op reservation (used when governance is disabled).
package mem

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Broker arbitrates a byte budget among reservations and admission
// claims.
type Broker struct {
	parent *Broker
	limit  int64 // 0 = track only, no enforcement

	mu        sync.Mutex
	used      int64 // bytes held by reservations
	peak      int64 // high-water mark of used
	claimed   int64 // bytes held by admission claims
	overdraft int64 // bytes granted past the limit by MustGrow
	denied    int64 // TryGrow calls refused
	admitted  int64 // Admit calls granted
	deferred  int64 // Admit calls that had to wait
	deferNS   int64 // total nanoseconds Admit calls spent waiting
	waitCh    chan struct{}
}

// New returns a broker enforcing limit bytes; limit <= 0 tracks usage
// without enforcing a budget.
func New(limit int64) *Broker {
	if limit < 0 {
		limit = 0
	}
	return &Broker{limit: limit, waitCh: make(chan struct{})}
}

// Child returns a broker whose reservations are charged against both
// its own limit and this broker's budget — a per-request cap under the
// global budget. limit <= 0 means the child only forwards to the
// parent.
func (b *Broker) Child(limit int64) *Broker {
	c := New(limit)
	c.parent = b
	return c
}

// Limit returns the enforced budget (0 = unlimited).
func (b *Broker) Limit() int64 { return b.limit }

// Used returns the bytes currently held by reservations.
func (b *Broker) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Peak returns the high-water mark of Used since construction.
func (b *Broker) Peak() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Stats is a snapshot of a broker's counters.
type Stats struct {
	Limit       int64         // enforced budget (0 = unlimited)
	Used        int64         // bytes currently reserved
	Peak        int64         // high-water mark of Used
	Claimed     int64         // bytes currently held by admission claims
	Overdraft   int64         // bytes granted past the limit (required state)
	Denied      int64         // refusable grants denied (each one triggers a spill)
	Admitted    int64         // admission claims granted
	Deferred    int64         // admission claims that waited for memory
	DeferredFor time.Duration // total time admission claims spent waiting
}

func (s Stats) String() string {
	return fmt.Sprintf("limit=%d used=%d peak=%d claimed=%d overdraft=%d denied=%d admitted=%d deferred=%d",
		s.Limit, s.Used, s.Peak, s.Claimed, s.Overdraft, s.Denied, s.Admitted, s.Deferred)
}

// Stats returns a snapshot of the broker's counters.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		Limit:       b.limit,
		Used:        b.used,
		Peak:        b.peak,
		Claimed:     b.claimed,
		Overdraft:   b.overdraft,
		Denied:      b.denied,
		Admitted:    b.admitted,
		Deferred:    b.deferred,
		DeferredFor: time.Duration(b.deferNS),
	}
}

// grow attempts to add n bytes of reservation. With must set the grant
// always succeeds (overdraft); otherwise it fails when the limit would
// be exceeded. The child's lock is held while the parent is consulted
// (lock order is strictly child → parent, so this cannot deadlock).
func (b *Broker) grow(n int64, must bool) bool {
	if n <= 0 {
		return true
	}
	b.mu.Lock()
	if !must && b.limit > 0 && b.used+n > b.limit {
		b.denied++
		b.mu.Unlock()
		return false
	}
	if b.parent != nil && !b.parent.grow(n, must) {
		b.denied++
		b.mu.Unlock()
		return false
	}
	if b.limit > 0 && b.used+n > b.limit {
		over := b.used + n - b.limit
		if over > n {
			over = n
		}
		b.overdraft += over
	}
	b.used += n
	if b.used > b.peak {
		b.peak = b.used
	}
	b.mu.Unlock()
	return true
}

// shrink returns n bytes and wakes admission waiters.
func (b *Broker) shrink(n int64) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	b.used -= n
	if b.used < 0 { // release bug; clamp rather than corrupt accounting
		b.used = 0
	}
	b.wakeLocked()
	b.mu.Unlock()
	if b.parent != nil {
		b.parent.shrink(n)
	}
}

// wakeLocked signals every Admit waiter to re-check. Callers hold b.mu.
func (b *Broker) wakeLocked() {
	close(b.waitCh)
	b.waitCh = make(chan struct{})
}

// Reserve registers a new, empty reservation. The tag is for debugging
// only. A nil broker returns a nil reservation, whose methods are
// no-ops that always grant.
func (b *Broker) Reserve(tag string) *Reservation {
	if b == nil {
		return nil
	}
	return &Reservation{b: b, tag: tag}
}

// Reservation is one allocator's tracked slice of the budget. It is
// not safe for concurrent use by multiple goroutines (each pipeline or
// pass owns its reservations); the broker underneath is.
type Reservation struct {
	b    *Broker
	tag  string
	held int64
	peak int64
}

// TryGrow requests n more bytes; it reports false — without changing
// the reservation — when the budget is exhausted. The caller is
// expected to degrade (spill) rather than retry.
func (r *Reservation) TryGrow(n int64) bool {
	if r == nil {
		return true
	}
	if !r.b.grow(n, false) {
		return false
	}
	r.add(n)
	return true
}

// MustGrow takes n more bytes unconditionally, overdrafting the budget
// if necessary. Reserved for state the plan cannot run without.
func (r *Reservation) MustGrow(n int64) {
	if r == nil || n <= 0 {
		return
	}
	r.b.grow(n, true)
	r.add(n)
}

func (r *Reservation) add(n int64) {
	r.held += n
	if r.held > r.peak {
		r.peak = r.held
	}
}

// Shrink returns n bytes of the reservation.
func (r *Reservation) Shrink(n int64) {
	if r == nil || n <= 0 {
		return
	}
	if n > r.held {
		n = r.held
	}
	r.held -= n
	r.b.shrink(n)
}

// Release returns everything the reservation holds. The reservation
// stays usable (a released reservation can grow again).
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	r.Shrink(r.held)
}

// Held returns the bytes currently reserved.
func (r *Reservation) Held() int64 {
	if r == nil {
		return 0
	}
	return r.held
}

// Peak returns the reservation's own high-water mark.
func (r *Reservation) Peak() int64 {
	if r == nil {
		return 0
	}
	return r.peak
}

// Admit claims estimate bytes for a unit of work about to execute,
// deferring (blocking) while the claim does not fit alongside current
// usage and other claims. A claim on an otherwise idle broker is always
// granted, even past the limit — execution then relies on the
// operators' spill paths — so admission can only defer work, never
// wedge it permanently. The returned release function must be called
// when the work finishes (it is idempotent). Admit returns ctx's error
// if the context is done first.
//
// Claims gate admission only: they are not counted in Used, and the
// operators' actual reservations enforce the budget during execution.
func (b *Broker) Admit(ctx context.Context, estimate int64) (release func(), err error) {
	if b == nil || estimate < 0 {
		estimate = 0
	}
	noop := func() {}
	if b == nil {
		return noop, nil
	}
	waited := false
	start := time.Now()
	for {
		b.mu.Lock()
		idle := b.used == 0 && b.claimed == 0
		fits := b.limit == 0 || b.used+b.claimed+estimate <= b.limit
		if idle || fits {
			b.claimed += estimate
			b.admitted++
			if waited {
				b.deferred++
				b.deferNS += int64(time.Since(start))
			}
			b.mu.Unlock()
			var once sync.Once
			return func() {
				once.Do(func() {
					b.mu.Lock()
					b.claimed -= estimate
					if b.claimed < 0 {
						b.claimed = 0
					}
					b.wakeLocked()
					b.mu.Unlock()
				})
			}, nil
		}
		ch := b.waitCh
		waited = true
		b.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			b.mu.Lock()
			b.deferred++
			b.deferNS += int64(time.Since(start))
			b.mu.Unlock()
			return noop, ctx.Err()
		}
	}
}

// Package mem implements the process-wide memory broker that governs
// the memory occupied by operator state — dimension lookup tables,
// result bitmaps, and aggregation hash tables — across every query the
// engine is running at once.
//
// The paper's shared operators (§3) assume all of that state fits in
// memory; under heavy concurrent traffic it does not. The broker makes
// the footprint explicit: every allocator of operator state registers a
// Reservation and grows it before allocating. Three grant disciplines
// cover the three kinds of state:
//
//   - TryGrow is a *refusable* grant: it fails when the budget is
//     exhausted, and the caller degrades gracefully. The aggregation
//     tables use it — a denied grant triggers a grace-hash partitioned
//     spill to disk (see internal/exec).
//   - MustGrow is an *overdraft* grant for state the plan cannot run
//     without (dimension lookups, result bitmaps, spill page buffers):
//     it always succeeds but is tracked, and the bytes granted past the
//     budget are reported as Overdraft so the planner's admission
//     estimates can be audited.
//   - Admit is an *admission claim* used by the scheduler before a
//     batch executes: when the estimated footprint does not fit, the
//     batch is deferred — blocked, not refused — until running work
//     releases memory. Deferred claims are granted in strict FIFO
//     order, so a large claim is never starved by a stream of small
//     ones: once it is the oldest waiter every newcomer queues behind
//     it, running work drains, and at the latest the idle broker grants
//     it. A claim on an idle broker always succeeds, even past the
//     limit, so a batch larger than the whole budget still runs
//     (relying on the operators' spill paths to stay within it). A
//     claim decays as the work's real reservations materialize through
//     the claim's linked broker (see Claim.Broker), charging a running
//     batch max(estimate, reserved) rather than their sum.
//
// Brokers nest: Child creates a broker whose reservations are also
// charged to the parent, giving per-request caps under one global
// budget. A Broker with limit 0 tracks usage without enforcing one.
// All methods are safe for concurrent use, and a nil *Reservation is a
// valid no-op reservation (used when governance is disabled).
package mem

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Broker arbitrates a byte budget among reservations and admission
// claims.
type Broker struct {
	parent *Broker
	claim  *Claim // set on a claim-linked broker: grows draw the claim down

	limit int64 // 0 = track only, no enforcement

	mu        sync.Mutex
	used      int64          // bytes held by reservations
	peak      int64          // high-water mark of used
	claimed   int64          // bytes held by admission claims
	overdraft int64          // bytes granted past the limit by MustGrow
	denied    int64          // TryGrow calls refused
	admitted  int64          // Admit calls granted
	deferred  int64          // Admit calls that had to wait
	deferNS   int64          // total nanoseconds Admit calls spent waiting
	waiters   []*admitWaiter // deferred admission claims, oldest first
}

// admitWaiter is one deferred Admit call queued for FIFO grant.
type admitWaiter struct {
	estimate int64
	ch       chan struct{} // closed when the claim is granted
	granted  bool          // guarded by the broker's mu
}

// New returns a broker enforcing limit bytes; limit <= 0 tracks usage
// without enforcing a budget.
func New(limit int64) *Broker {
	if limit < 0 {
		limit = 0
	}
	return &Broker{limit: limit}
}

// Child returns a broker whose reservations are charged against both
// its own limit and this broker's budget — a per-request cap under the
// global budget. limit <= 0 means the child only forwards to the
// parent.
func (b *Broker) Child(limit int64) *Broker {
	c := New(limit)
	c.parent = b
	return c
}

// Limit returns the enforced budget (0 = unlimited).
func (b *Broker) Limit() int64 { return b.limit }

// Used returns the bytes currently held by reservations.
func (b *Broker) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Peak returns the high-water mark of Used since construction.
func (b *Broker) Peak() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Stats is a snapshot of a broker's counters.
type Stats struct {
	Limit       int64         // enforced budget (0 = unlimited)
	Used        int64         // bytes currently reserved
	Peak        int64         // high-water mark of Used
	Claimed     int64         // bytes currently held by admission claims
	Overdraft   int64         // bytes granted past the limit (required state)
	Denied      int64         // refusable grants denied (each one triggers a spill)
	Admitted    int64         // admission claims granted
	Deferred    int64         // admission claims that waited for memory
	DeferredFor time.Duration // total time admission claims spent waiting
	Waiting     int           // admission claims currently queued
}

func (s Stats) String() string {
	return fmt.Sprintf("limit=%d used=%d peak=%d claimed=%d overdraft=%d denied=%d admitted=%d deferred=%d waiting=%d",
		s.Limit, s.Used, s.Peak, s.Claimed, s.Overdraft, s.Denied, s.Admitted, s.Deferred, s.Waiting)
}

// Stats returns a snapshot of the broker's counters.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		Limit:       b.limit,
		Used:        b.used,
		Peak:        b.peak,
		Claimed:     b.claimed,
		Overdraft:   b.overdraft,
		Denied:      b.denied,
		Admitted:    b.admitted,
		Deferred:    b.deferred,
		DeferredFor: time.Duration(b.deferNS),
		Waiting:     len(b.waiters),
	}
}

// grow attempts to add n bytes of reservation. With must set the grant
// always succeeds (overdraft); otherwise it fails when the limit would
// be exceeded. The child's lock is held while the parent is consulted
// (lock order is strictly child → parent, so this cannot deadlock).
func (b *Broker) grow(n int64, must bool) bool {
	if n <= 0 {
		return true
	}
	b.mu.Lock()
	if !must && b.limit > 0 && b.used+n > b.limit {
		b.denied++
		b.mu.Unlock()
		return false
	}
	if b.parent != nil && !b.parent.grow(n, must) {
		b.denied++
		b.mu.Unlock()
		return false
	}
	if b.limit > 0 && b.used+n > b.limit {
		over := b.used + n - b.limit
		if over > n {
			over = n
		}
		b.overdraft += over
	}
	b.used += n
	if b.used > b.peak {
		b.peak = b.used
	}
	b.mu.Unlock()
	if b.claim != nil {
		b.claim.consume(n)
	}
	return true
}

// shrink returns n bytes and wakes admission waiters.
func (b *Broker) shrink(n int64) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	b.used -= n
	if b.used < 0 { // release bug; clamp rather than corrupt accounting
		b.used = 0
	}
	b.wakeAdmitsLocked()
	b.mu.Unlock()
	if b.parent != nil {
		b.parent.shrink(n)
	}
}

// admitsLocked reports whether a claim of estimate bytes can be granted
// now: it fits alongside current usage and claims, or the broker is
// completely idle (the oversize-claim escape hatch). Callers hold b.mu.
func (b *Broker) admitsLocked(estimate int64) bool {
	if b.limit == 0 || b.used+b.claimed+estimate <= b.limit {
		return true
	}
	return b.used == 0 && b.claimed == 0
}

// wakeAdmitsLocked grants queued admission claims in FIFO order until
// the oldest no longer fits. Strict ordering — a later claim never
// overtakes the head — is what makes large claims starvation-free:
// once a claim is the oldest waiter every newcomer queues behind it,
// running work drains, and at the latest the idle broker grants it.
// Callers hold b.mu.
func (b *Broker) wakeAdmitsLocked() {
	for len(b.waiters) > 0 {
		w := b.waiters[0]
		if !b.admitsLocked(w.estimate) {
			return
		}
		b.claimed += w.estimate
		b.admitted++
		w.granted = true
		close(w.ch)
		b.waiters[0] = nil
		b.waiters = b.waiters[1:]
	}
}

// Reserve registers a new, empty reservation. The tag is for debugging
// only. A nil broker returns a nil reservation, whose methods are
// no-ops that always grant.
func (b *Broker) Reserve(tag string) *Reservation {
	if b == nil {
		return nil
	}
	return &Reservation{b: b, tag: tag}
}

// Reservation is one allocator's tracked slice of the budget. It is
// not safe for concurrent use by multiple goroutines (each pipeline or
// pass owns its reservations); the broker underneath is.
type Reservation struct {
	b    *Broker
	tag  string
	held int64
	peak int64
}

// TryGrow requests n more bytes; it reports false — without changing
// the reservation — when the budget is exhausted. The caller is
// expected to degrade (spill) rather than retry.
func (r *Reservation) TryGrow(n int64) bool {
	if r == nil {
		return true
	}
	if !r.b.grow(n, false) {
		return false
	}
	r.add(n)
	return true
}

// MustGrow takes n more bytes unconditionally, overdrafting the budget
// if necessary. Reserved for state the plan cannot run without.
func (r *Reservation) MustGrow(n int64) {
	if r == nil || n <= 0 {
		return
	}
	r.b.grow(n, true)
	r.add(n)
}

func (r *Reservation) add(n int64) {
	r.held += n
	if r.held > r.peak {
		r.peak = r.held
	}
}

// Shrink returns n bytes of the reservation.
func (r *Reservation) Shrink(n int64) {
	if r == nil || n <= 0 {
		return
	}
	if n > r.held {
		n = r.held
	}
	r.held -= n
	r.b.shrink(n)
}

// Release returns everything the reservation holds. The reservation
// stays usable (a released reservation can grow again).
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	r.Shrink(r.held)
}

// Held returns the bytes currently reserved.
func (r *Reservation) Held() int64 {
	if r == nil {
		return 0
	}
	return r.held
}

// Peak returns the reservation's own high-water mark.
func (r *Reservation) Peak() int64 {
	if r == nil {
		return 0
	}
	return r.peak
}

// Admit claims estimate bytes for a unit of work about to execute,
// deferring (blocking) while the claim does not fit alongside current
// usage and other claims. Deferred claims are granted strictly oldest
// first. A claim on an otherwise idle broker is always granted, even
// past the limit — execution then relies on the operators' spill paths
// — so admission can only defer work, never wedge it permanently. The
// returned release function must be called when the work finishes (it
// is idempotent). Admit returns ctx's error if the context is done
// first.
//
// Claims gate admission only: they are not counted in Used, and the
// operators' actual reservations enforce the budget during execution.
// Admit is shorthand for AdmitClaim for callers that only need the
// release; use AdmitClaim to also decay the claim as the work's real
// reservations materialize.
func (b *Broker) Admit(ctx context.Context, estimate int64) (release func(), err error) {
	c, err := b.AdmitClaim(ctx, estimate)
	if err != nil {
		return func() {}, err
	}
	return c.Release, nil
}

// AdmitClaim is Admit returning the claim itself: Release it when the
// work finishes, and run the work under Broker() so the claim decays as
// real reservations materialize instead of double-counting against the
// budget. A nil broker returns a nil claim, whose methods are no-ops.
func (b *Broker) AdmitClaim(ctx context.Context, estimate int64) (*Claim, error) {
	if b == nil {
		return nil, nil
	}
	if estimate < 0 {
		estimate = 0
	}
	b.mu.Lock()
	if len(b.waiters) == 0 && b.admitsLocked(estimate) {
		b.claimed += estimate
		b.admitted++
		b.mu.Unlock()
		return &Claim{b: b, remaining: estimate}, nil
	}
	w := &admitWaiter{estimate: estimate, ch: make(chan struct{})}
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()
	start := time.Now()
	select {
	case <-w.ch:
		b.mu.Lock()
		b.deferred++
		b.deferNS += int64(time.Since(start))
		b.mu.Unlock()
		return &Claim{b: b, remaining: estimate}, nil
	case <-ctx.Done():
		b.mu.Lock()
		b.deferred++
		b.deferNS += int64(time.Since(start))
		if w.granted {
			// Granted between ctx firing and us taking the lock; the
			// caller is abandoning the work, so return the claim.
			b.claimed -= w.estimate
			if b.claimed < 0 {
				b.claimed = 0
			}
			b.wakeAdmitsLocked()
		} else {
			for i, q := range b.waiters {
				if q == w {
					b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
					break
				}
			}
		}
		b.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Claim is a granted admission claim. Its bytes count against the
// broker's budget alongside reservations until they are returned —
// explicitly via Release when the work finishes, or gradually as the
// work's real reservations materialize through the broker obtained
// from Broker(). The drawdown charges a running batch
// max(estimate, reserved) rather than their sum, so concurrent batches
// are not deferred more aggressively than the budget requires.
type Claim struct {
	b         *Broker
	remaining int64 // claimed bytes not yet drawn down; guarded by b.mu
	released  bool  // guarded by b.mu
}

// Broker returns a child broker linked to the claim: every byte
// reserved through it converts one still-claimed byte into a used byte
// until the claim is exhausted. The drawdown is one-way — shrinking a
// reservation does not re-inflate the claim; the freed bytes simply
// become available to admission.
func (c *Claim) Broker() *Broker {
	if c == nil {
		return nil
	}
	ch := c.b.Child(0)
	ch.claim = c
	return ch
}

// consume draws the claim down by up to n materialized bytes.
func (c *Claim) consume(n int64) {
	c.b.mu.Lock()
	if !c.released && c.remaining > 0 {
		if n > c.remaining {
			n = c.remaining
		}
		c.remaining -= n
		c.b.claimed -= n
		if c.b.claimed < 0 {
			c.b.claimed = 0
		}
		c.b.wakeAdmitsLocked()
	}
	c.b.mu.Unlock()
}

// Release returns whatever the claim still holds. It is idempotent and
// nil-safe.
func (c *Claim) Release() {
	if c == nil {
		return
	}
	c.b.mu.Lock()
	if !c.released {
		c.released = true
		c.b.claimed -= c.remaining
		if c.b.claimed < 0 {
			c.b.claimed = 0
		}
		c.remaining = 0
		c.b.wakeAdmitsLocked()
	}
	c.b.mu.Unlock()
}

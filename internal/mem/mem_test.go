package mem

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestTryGrowDeniesPastLimit(t *testing.T) {
	b := New(100)
	r := b.Reserve("t")
	if !r.TryGrow(60) {
		t.Fatal("first grant within budget denied")
	}
	if !r.TryGrow(40) {
		t.Fatal("grant exactly at budget denied")
	}
	if r.TryGrow(1) {
		t.Fatal("grant past budget granted")
	}
	if got := b.Used(); got != 100 {
		t.Fatalf("used = %d, want 100", got)
	}
	st := b.Stats()
	if st.Denied != 1 {
		t.Fatalf("denied = %d, want 1", st.Denied)
	}
	if st.Overdraft != 0 {
		t.Fatalf("overdraft = %d, want 0", st.Overdraft)
	}
	r.Release()
	if got := b.Used(); got != 0 {
		t.Fatalf("used after release = %d, want 0", got)
	}
	if got := b.Peak(); got != 100 {
		t.Fatalf("peak = %d, want 100", got)
	}
}

func TestMustGrowOverdrafts(t *testing.T) {
	b := New(10)
	r := b.Reserve("t")
	r.MustGrow(25)
	if got := b.Used(); got != 25 {
		t.Fatalf("used = %d, want 25", got)
	}
	if got := b.Stats().Overdraft; got != 15 {
		t.Fatalf("overdraft = %d, want 15", got)
	}
	r.Release()
	if got := b.Used(); got != 0 {
		t.Fatalf("used = %d, want 0", got)
	}
}

func TestUnlimitedBrokerTracksOnly(t *testing.T) {
	b := New(0)
	r := b.Reserve("t")
	if !r.TryGrow(1 << 40) {
		t.Fatal("unlimited broker denied a grant")
	}
	if got := b.Used(); got != 1<<40 {
		t.Fatalf("used = %d", got)
	}
	r.Release()
}

func TestNilReservationIsNoop(t *testing.T) {
	var b *Broker
	r := b.Reserve("t")
	if r != nil {
		t.Fatal("nil broker should hand out nil reservations")
	}
	if !r.TryGrow(10) {
		t.Fatal("nil reservation denied")
	}
	r.MustGrow(10)
	r.Shrink(5)
	r.Release()
	if r.Held() != 0 || r.Peak() != 0 {
		t.Fatal("nil reservation tracked something")
	}
}

func TestShrinkClampsToHeld(t *testing.T) {
	b := New(100)
	r := b.Reserve("t")
	r.MustGrow(30)
	r.Shrink(50)
	if r.Held() != 0 {
		t.Fatalf("held = %d, want 0", r.Held())
	}
	if got := b.Used(); got != 0 {
		t.Fatalf("used = %d, want 0", got)
	}
}

func TestChildCapsUnderParent(t *testing.T) {
	parent := New(100)
	child := parent.Child(40)
	r := child.Reserve("t")
	if !r.TryGrow(40) {
		t.Fatal("grant within child cap denied")
	}
	if r.TryGrow(1) {
		t.Fatal("grant past child cap granted")
	}
	if got := parent.Used(); got != 40 {
		t.Fatalf("parent used = %d, want 40", got)
	}
	// Exhaust the parent; a child grant within its own cap must still
	// fail and roll back cleanly.
	other := parent.Reserve("other")
	other.MustGrow(60)
	r.Shrink(40)
	if r.TryGrow(41) {
		t.Fatal("child granted past its cap")
	}
	if !r.TryGrow(40) {
		t.Fatal("refill within both budgets denied")
	}
	other.MustGrow(10) // parent now overdrafted
	r.Release()
	other.Release()
	if parent.Used() != 0 || child.Used() != 0 {
		t.Fatalf("leak: parent=%d child=%d", parent.Used(), child.Used())
	}
}

func TestChildDeniedByParent(t *testing.T) {
	parent := New(50)
	child := parent.Child(0) // no own cap, parent still governs
	r := child.Reserve("t")
	if r.TryGrow(60) {
		t.Fatal("parent budget ignored")
	}
	if child.Used() != 0 || parent.Used() != 0 {
		t.Fatalf("denied grant left residue: parent=%d child=%d", parent.Used(), child.Used())
	}
}

func TestAdmitFitsImmediately(t *testing.T) {
	b := New(100)
	release, err := b.Admit(context.Background(), 80)
	if err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Claimed != 80 || st.Admitted != 1 || st.Deferred != 0 {
		t.Fatalf("stats = %+v", st)
	}
	release()
	release() // idempotent
	if got := b.Stats().Claimed; got != 0 {
		t.Fatalf("claimed = %d, want 0", got)
	}
}

func TestAdmitIdleOversizeGranted(t *testing.T) {
	b := New(100)
	// A claim larger than the whole budget on an idle broker must not
	// wedge: execution spills to stay within budget.
	release, err := b.Admit(context.Background(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
}

func TestAdmitDefersUntilRelease(t *testing.T) {
	b := New(100)
	r := b.Reserve("running")
	r.MustGrow(90)
	admitted := make(chan struct{})
	go func() {
		release, err := b.Admit(context.Background(), 50)
		if err != nil {
			t.Error(err)
		}
		defer release()
		close(admitted)
	}()
	select {
	case <-admitted:
		t.Fatal("admitted while saturated")
	case <-time.After(20 * time.Millisecond):
	}
	r.Release()
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("never admitted after release")
	}
	if got := b.Stats().Deferred; got != 1 {
		t.Fatalf("deferred = %d, want 1", got)
	}
}

func TestAdmitContextCanceled(t *testing.T) {
	b := New(100)
	r := b.Reserve("running")
	r.MustGrow(100)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := b.Admit(ctx, 10); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	r.Release()
}

// TestAdmitFIFONoStarvation: an oversize claim queued behind running
// work must be granted before later small claims that would fit on
// their own — under continuous small-batch traffic a fit-whoever-races
// policy would defer the large claim forever.
func TestAdmitFIFONoStarvation(t *testing.T) {
	b := New(100)
	r := b.Reserve("running")
	r.MustGrow(80)

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	admit := func(name string, estimate int64) {
		defer wg.Done()
		release, err := b.Admit(context.Background(), estimate)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
		release()
	}

	wg.Add(1)
	go admit("big", 150)
	waitFor(t, func() bool { return b.Stats().Waiting == 1 })
	// Small claims that would fit right now (80+10 <= 100) must still
	// queue behind the big one.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go admit("small", 10)
	}
	waitFor(t, func() bool { return b.Stats().Waiting == 5 })

	r.Release() // idle broker: the big claim is granted first
	wg.Wait()
	if len(order) != 5 || order[0] != "big" {
		t.Fatalf("grant order = %v, want big first", order)
	}
	st := b.Stats()
	if st.Claimed != 0 || st.Waiting != 0 {
		t.Fatalf("residue: %+v", st)
	}
	if st.Deferred != 5 {
		t.Fatalf("deferred = %d, want 5", st.Deferred)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClaimDrawdown: reservations made through the claim's linked
// broker convert claimed bytes into used bytes, so a running batch is
// charged max(estimate, reserved) — not their sum — and a second batch
// admits as soon as the combined charge fits.
func TestClaimDrawdown(t *testing.T) {
	b := New(100)
	cl, err := b.AdmitClaim(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	r := cl.Broker().Reserve("op")
	r.MustGrow(40)
	st := b.Stats()
	if st.Used != 40 || st.Claimed != 20 {
		t.Fatalf("after 40 materialized: %+v, want used=40 claimed=20", st)
	}

	// 40+20+40 <= 100: admits immediately. Summing claim and usage
	// (40+60+40 = 140) would have deferred this forever.
	admitted := make(chan func(), 1)
	go func() {
		release, err := b.Admit(context.Background(), 40)
		if err != nil {
			t.Error(err)
		}
		admitted <- release
	}()
	var release2 func()
	select {
	case release2 = <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("drawn-down claim still double-counted: second batch deferred")
	}

	// Growing past the claim's remainder exhausts it; the excess is
	// plain usage.
	r.MustGrow(30)
	st = b.Stats()
	if st.Used != 70 || st.Claimed != 40 {
		t.Fatalf("after claim exhausted: %+v, want used=70 claimed=40", st)
	}
	// Shrinking does not re-inflate the claim.
	r.Shrink(50)
	if st := b.Stats(); st.Used != 20 || st.Claimed != 40 {
		t.Fatalf("after shrink: %+v, want used=20 claimed=40", st)
	}

	cl.Release() // fully drawn down: nothing left to return
	cl.Release() // idempotent
	release2()
	r.Release()
	if st := b.Stats(); st.Used != 0 || st.Claimed != 0 {
		t.Fatalf("residue: %+v", st)
	}
}

// TestNilClaimIsNoop: a nil broker hands out a nil claim whose methods
// are all safe no-ops.
func TestNilClaimIsNoop(t *testing.T) {
	var b *Broker
	cl, err := b.AdmitClaim(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if cl != nil {
		t.Fatal("nil broker should hand out a nil claim")
	}
	if cl.Broker() != nil {
		t.Fatal("nil claim should hand out a nil broker")
	}
	cl.Release()
}

func TestConcurrentReservations(t *testing.T) {
	b := New(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := b.Reserve("w")
			for i := 0; i < 1000; i++ {
				if r.TryGrow(512) {
					r.Shrink(256)
				}
				r.MustGrow(64)
				r.Shrink(200)
			}
			r.Release()
		}()
	}
	wg.Wait()
	if got := b.Used(); got != 0 {
		t.Fatalf("used after all released = %d, want 0", got)
	}
}

func TestConcurrentAdmitAndWork(t *testing.T) {
	b := New(4096)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				release, err := b.Admit(context.Background(), 1024)
				if err != nil {
					t.Error(err)
					return
				}
				r := b.Reserve("w")
				r.MustGrow(512)
				r.Release()
				release()
			}
		}()
	}
	wg.Wait()
	st := b.Stats()
	if st.Used != 0 || st.Claimed != 0 {
		t.Fatalf("residue: %+v", st)
	}
}

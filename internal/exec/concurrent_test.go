package exec

import (
	"errors"
	"sync"
	"testing"

	"mdxopt/internal/query"
)

// TestConcurrentQueries runs different operators concurrently against
// one database (one shared buffer pool, shared bitmap index caches,
// shared dimension metadata) and checks results stay oracle-correct.
// Run with -race to exercise the synchronization.
func TestConcurrentQueries(t *testing.T) {
	db, qs := testDB(t)
	view := db.ViewByLevels([]int{1, 1, 1, 0})

	// Precompute oracles serially.
	env0 := NewEnv(db)
	want := map[string]*Result{}
	for name, q := range qs {
		r, err := Naive(env0, q)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = r
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	check := func(name string, got *Result) {
		if !got.Equal(want[name]) {
			errs <- errors.New(name + ": wrong result under concurrency")
		}
	}
	for worker := 0; worker < 6; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			env := NewEnv(db) // stats are per-env; the pool is shared
			for iter := 0; iter < 4; iter++ {
				var st Stats
				switch worker % 3 {
				case 0:
					r, err := HashJoinQuery(env, db.Base(), qs["Q1"], &st)
					if err != nil {
						errs <- err
						return
					}
					check("Q1", r)
				case 1:
					r, err := IndexJoinQuery(env, view, qs["Q7"], &st)
					if err != nil {
						errs <- err
						return
					}
					check("Q7", r)
				case 2:
					group := []*query.Query{qs["Q5"], qs["Q6"], qs["Q8"]}
					rs, err := SharedIndex(env, view, group, &st)
					if err != nil {
						errs <- err
						return
					}
					for i, q := range group {
						check(q.Name, rs[i])
					}
				}
			}
		}(worker)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

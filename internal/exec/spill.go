package exec

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"mdxopt/internal/mem"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/storage"
)

// Spillable aggregation state.
//
// Every query pipeline aggregates into a hash table whose size is
// proportional to the number of result groups — the one piece of
// operator state that is unbounded by the plan (lookups are bounded by
// dimension cardinality, bitmaps by view rows). aggTable keeps that
// table under a mem.Broker reservation; when a refusable grant is
// denied, it degrades with a grace-hash-style partitioned spill:
//
//  1. the in-memory entries are flushed as partial-accumulator records
//     to fanout partition files (pages of a temp heap file managed by
//     storage.DiskManager), hashed on the group key, and the table's
//     memory is released;
//  2. from then on every qualifying tuple appends one delta record to
//     its partition, buffered one page per partition (write-through —
//     no per-group state is kept in memory);
//  3. at finalization each partition is merged independently: its
//     records are replayed in write order into a fresh table sized to
//     whatever the broker will grant, and keys that do not fit are
//     diverted to an overflow partition processed in a further
//     sub-pass, so even a single partition larger than the budget
//     completes.
//
// Because a key's records land in one partition in scan order (the
// flushed partial first), the merged accumulator performs additions in
// exactly the order the in-memory path would have — results are
// byte-identical to an unbudgeted run.

const (
	// defaultSpillFanout is the partition count of a spill. Merge
	// memory is roughly the final group count divided by the fanout.
	defaultSpillFanout = 16
	// aggEntryOverhead estimates the per-entry bookkeeping of the
	// aggregation map (string header, map bucket share, accumulator) on
	// top of the key bytes. Reservations are charged this estimate per
	// group.
	aggEntryOverhead = 96
	// spillRecTail is the non-key portion of a spill record: the two
	// accumulator components and the set flag.
	spillRecTail = 17
)

// spillSeq disambiguates temp spill files within one process.
var spillSeq atomic.Uint64

// aggPair is one finalized group: the packed key and its accumulator.
type aggPair struct {
	key string
	ac  accum
}

// deltaOf converts one tuple's (sum, count, min, max) vector into a
// single-tuple accumulator for the given aggregate.
func deltaOf(agg query.Agg, vals [4]float64) accum {
	switch agg {
	case query.Count:
		return accum{a: vals[star.AggCount], set: true}
	case query.Min:
		return accum{a: vals[star.AggMin], set: true}
	case query.Max:
		return accum{a: vals[star.AggMax], set: true}
	case query.Avg:
		return accum{a: vals[star.AggSum], b: vals[star.AggCount], set: true}
	default: // query.Sum
		return accum{a: vals[star.AggSum], set: true}
	}
}

// mergeAccum folds delta d into cur under the given aggregate. Folding
// a fresh delta into a zero accumulator yields the delta itself, so one
// code path serves both the scan and the spill-merge sides.
func mergeAccum(agg query.Agg, cur *accum, d accum) {
	if !d.set {
		return
	}
	if !cur.set {
		*cur = d
		return
	}
	switch agg {
	case query.Sum, query.Count:
		cur.a += d.a
	case query.Min:
		if d.a < cur.a {
			cur.a = d.a
		}
	case query.Max:
		if d.a > cur.a {
			cur.a = d.a
		}
	case query.Avg:
		cur.a += d.a
		cur.b += d.b
	}
}

// aggTable is a pipeline's aggregation state: an in-memory map under a
// broker reservation until the budget runs out, partitioned spill files
// afterwards.
type aggTable struct {
	agg    query.Agg
	keyLen int
	res    *mem.Reservation // nil: untracked (no broker)
	dir    string
	fanout int

	m        map[string]*accum
	mapBytes int64
	// floorHeld is the single-partition spill floor pre-reserved at
	// construction (0 when the broker denied it). Reserving the floor
	// while the budget still has room means a spill that starts under
	// saturation spends this instead of overdrafting with MustGrow —
	// concurrent pipelines racing for a freed slab can no longer push
	// the broker's peak past the budget.
	floorHeld int64

	sp *spillFiles // nil until the first denied grant

	spillBytes int64 // record bytes written to spill partitions
	spillParts int64 // partitions created by this table's spills
}

func newAggTable(env *Env, agg query.Agg, keyLen int, tag string) *aggTable {
	t := &aggTable{
		agg:    agg,
		keyLen: keyLen,
		res:    env.Mem.Reserve(tag),
		dir:    env.spillDir(),
		fanout: env.spillFanout(),
		m:      make(map[string]*accum),
	}
	if fl := spillFloorBytes(t.entryBytes()); t.res.TryGrow(fl) {
		t.floorHeld = fl
	}
	return t
}

func (t *aggTable) entryBytes() int64 { return int64(t.keyLen) + aggEntryOverhead }

// add folds one delta for key into the table, spilling when the broker
// refuses to grow the reservation. The matched-key path is a single
// map operation: the m[string(key)] read compiles to the
// allocation-free map fast path and the delta is merged in place
// through the stored pointer, instead of the former read-modify-
// write-back pair whose write converted the key to a fresh string on
// every matched tuple.
func (t *aggTable) add(key []byte, d accum) error {
	if t.sp != nil {
		return t.writeRec(key, d)
	}
	if cur, ok := t.m[string(key)]; ok {
		mergeAccum(t.agg, cur, d)
		return nil
	}
	eb := t.entryBytes()
	if t.res.TryGrow(eb) {
		ac := d
		t.m[string(key)] = &ac
		t.mapBytes += eb
		return nil
	}
	if err := t.startSpill(); err != nil {
		return err
	}
	return t.writeRec(key, d)
}

// startSpill switches the table to write-through mode: current entries
// are flushed as partial-accumulator records and the map's memory is
// returned to the broker.
func (t *aggTable) startSpill() error {
	// Trade the map's reservation for the page buffers: the map dies at
	// the end of this function, so its bytes are released up front and
	// the buffer grant draws on the space it vacates instead of
	// overdrafting past the ceiling the denial just established.
	t.res.Shrink(t.mapBytes)
	t.mapBytes = 0
	sp, err := newSpillFiles(t.dir, t.keyLen, t.fanout, t.entryBytes(), t.res, t.floorHeld)
	if err != nil {
		return err
	}
	t.floorHeld = 0 // ownership moves to sp.bufHeld
	t.sp = sp
	t.spillParts += int64(len(sp.parts))
	for k, ac := range t.m {
		if err := t.writeRec([]byte(k), *ac); err != nil {
			return err
		}
	}
	t.m = nil
	return nil
}

func (t *aggTable) writeRec(key []byte, ac accum) error {
	if err := t.sp.write(t.sp.partition(key), key, ac); err != nil {
		return err
	}
	t.spillBytes += int64(t.sp.recSize)
	return nil
}

// mergeFrom folds another table's state into t (parallel scan workers
// merging into the main pipeline). Spilled source records are replayed
// in write order; t itself may spill while absorbing them.
func (t *aggTable) mergeFrom(o *aggTable) error {
	if o.sp == nil {
		for k, ac := range o.m {
			if err := t.add([]byte(k), *ac); err != nil {
				return err
			}
		}
		return nil
	}
	if err := o.sp.flushBufs(); err != nil {
		return err
	}
	for pi := range o.sp.parts {
		err := o.sp.readPart(pi, o.sp.parts[pi].pages, func(key []byte, ac accum) error {
			return t.add(key, ac)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// pairs returns every group fully merged, sorted by raw key bytes —
// the same order the in-memory path produces. Spilled partitions are
// merged one at a time so the transient merge table stays within the
// broker's budget (overflow sub-passes handle partitions that alone
// exceed it).
func (t *aggTable) pairs() ([]aggPair, error) {
	var out []aggPair
	if t.sp == nil {
		out = make([]aggPair, 0, len(t.m))
		for k, ac := range t.m {
			out = append(out, aggPair{key: k, ac: *ac})
		}
	} else {
		if err := t.sp.flushBufs(); err != nil {
			return nil, err
		}
		t.sp.releaseBufs()
		for pi := range t.sp.parts {
			var err error
			out, err = t.mergePartition(pi, out)
			if err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out, nil
}

// mergePartition replays one partition's records into a merge table,
// diverting keys the broker has no room for into an overflow partition
// that a further sub-pass consumes. Each sub-pass admits at least one
// key (a progress-floor overdraft), so the merge always terminates.
//
// Diversion is sticky within a sub-pass: after the first denial every
// key not already resident in the merge table goes to the overflow
// writer without consulting the broker again. A per-record TryGrow
// could succeed when a concurrent pipeline releases memory mid-merge,
// admitting a later record of an already-diverted key — the key would
// then surface twice, once from the table and once from the overflow
// sub-pass, with its aggregate split between the two.
func (t *aggTable) mergePartition(pi int, out []aggPair) ([]aggPair, error) {
	pages := t.sp.parts[pi].pages
	for len(pages) > 0 {
		m := make(map[string]*accum)
		var mBytes int64
		var overflow *spillWriter
		err := t.sp.readPart(pi, pages, func(key []byte, ac accum) error {
			k := string(key)
			if cur, ok := m[k]; ok {
				mergeAccum(t.agg, cur, ac)
				return nil
			}
			eb := t.entryBytes()
			switch {
			case len(m) == 0:
				// Progress floor: the first key of every sub-pass is
				// covered by the spill grant's merge floor, so the
				// merge always terminates without a fresh grant.
			case overflow != nil || !t.res.TryGrow(eb):
				if overflow == nil {
					overflow = t.sp.newWriter()
				}
				t.spillBytes += int64(t.sp.recSize)
				return overflow.write(key, ac)
			default:
				mBytes += eb
			}
			cur := ac
			m[k] = &cur
			return nil
		})
		if err != nil {
			return nil, err
		}
		for k, ac := range m {
			out = append(out, aggPair{key: k, ac: *ac})
		}
		t.res.Shrink(mBytes)
		pages = nil
		if overflow != nil {
			var ferr error
			pages, ferr = overflow.finish()
			if ferr != nil {
				return nil, ferr
			}
		}
	}
	return out, nil
}

// memStats reports the table's contribution to the pipeline's memory
// counters: reservation high-water mark, spill bytes, partitions.
func (t *aggTable) memStats() (peak, spillBytes, spillParts int64) {
	return t.res.Peak(), t.spillBytes, t.spillParts
}

// close releases the reservation and destroys the temp spill file. It
// is idempotent and nil-safe.
func (t *aggTable) close() {
	if t == nil {
		return
	}
	if t.sp != nil {
		t.sp.destroy()
		t.sp = nil
	}
	t.res.Release()
	t.m = nil
}

// spillFiles is the on-disk half of a spilled aggTable: one temp page
// file holding the pages of fanout partitions plus overflow partitions
// created during merge. Record format: key bytes, accumulator a and b
// (little-endian float64 bits), set flag. Pages carry a record count in
// their first two bytes.
type spillFiles struct {
	dm         *storage.DiskManager
	path       string
	keyLen     int
	recSize    int
	perPage    int
	res        *mem.Reservation
	parts      []spillPart
	bufHeld    int64 // total bytes this spill holds on res
	mergeFloor int64 // portion of bufHeld set aside for the merge phase
}

type spillPart struct {
	buf   []byte
	n     int // records buffered in buf
	pages []uint32
}

// spillFloorBytes is the single-partition required-state floor of a
// spill: one partition page buffer plus the merge floor (read scratch
// page, overflow writer page, and one merge-table starting state of
// floorEntry bytes). Tables pre-reserve it at construction, while the
// budget still has room, so a spill forced under saturation can always
// fall back to it without overdrafting.
func spillFloorBytes(floorEntry int64) int64 {
	return 3*storage.PageSize + floorEntry
}

func newSpillFiles(dir string, keyLen, fanout int, floorEntry int64, res *mem.Reservation, preHeld int64) (*spillFiles, error) {
	path := filepath.Join(dir, fmt.Sprintf("mdx-spill-%d-%d.tmp", os.Getpid(), spillSeq.Add(1)))
	dm, err := storage.OpenDisk(path)
	if err != nil {
		return nil, err
	}
	// The grant covers one page buffer per partition plus a merge
	// floor: the read scratch page, the overflow writer's page, and the
	// merge table's starting state (floorEntry — one map entry for the
	// byte-key tables, one initial slot slab for the packed fold
	// tables). The caller transfers preHeld bytes it already has on res
	// (its pre-reserved spill floor, spillFloorBytes(floorEntry)), so
	// only the excess is requested here. The fanout adapts to what the
	// broker will grant — halving until the buffers fit the remaining
	// budget — flooring at one partition, which the pre-reserved floor
	// covers in full; MustGrow overdraft remains only for tables whose
	// floor reservation was denied at construction.
	mergeFloor := 2*storage.PageSize + floorEntry
	granted := false
	for fanout > 1 {
		if res.TryGrow(int64(fanout)*storage.PageSize + mergeFloor - preHeld) {
			granted = true
			break
		}
		fanout /= 2
	}
	if !granted {
		fanout = 1
		res.MustGrow(storage.PageSize + mergeFloor - preHeld)
	}
	recSize := keyLen + spillRecTail
	sp := &spillFiles{
		dm:         dm,
		path:       path,
		keyLen:     keyLen,
		recSize:    recSize,
		perPage:    (storage.PageSize - 2) / recSize,
		res:        res,
		parts:      make([]spillPart, fanout),
		mergeFloor: mergeFloor,
	}
	sp.bufHeld = int64(fanout)*storage.PageSize + mergeFloor
	for i := range sp.parts {
		sp.parts[i].buf = make([]byte, storage.PageSize)
	}
	return sp, nil
}

// partition hashes a key (FNV-1a) onto a partition index.
func (sp *spillFiles) partition(key []byte) int {
	h := uint32(2166136261)
	for _, b := range key {
		h = (h ^ uint32(b)) * 16777619
	}
	return int(h % uint32(len(sp.parts)))
}

func putRec(buf []byte, off, keyLen int, key []byte, ac accum) {
	copy(buf[off:], key[:keyLen])
	putFloat(buf[off+keyLen:], ac.a)
	putFloat(buf[off+keyLen+8:], ac.b)
	if ac.set {
		buf[off+keyLen+16] = 1
	} else {
		buf[off+keyLen+16] = 0
	}
}

func getRec(buf []byte, off, keyLen int) (key []byte, ac accum) {
	key = buf[off : off+keyLen]
	ac.a = getFloat(buf[off+keyLen:])
	ac.b = getFloat(buf[off+keyLen+8:])
	ac.set = buf[off+keyLen+16] == 1
	return key, ac
}

func (sp *spillFiles) write(pi int, key []byte, ac accum) error {
	p := &sp.parts[pi]
	if p.n == sp.perPage {
		if err := sp.flushPart(p); err != nil {
			return err
		}
	}
	putRec(p.buf, 2+p.n*sp.recSize, sp.keyLen, key, ac)
	p.n++
	return nil
}

func (sp *spillFiles) flushPart(p *spillPart) error {
	if p.n == 0 {
		return nil
	}
	p.buf[0] = byte(p.n)
	p.buf[1] = byte(p.n >> 8)
	pg, err := sp.dm.Allocate()
	if err != nil {
		return err
	}
	if err := sp.dm.WritePage(pg, p.buf); err != nil {
		return err
	}
	p.pages = append(p.pages, pg)
	p.n = 0
	return nil
}

// flushBufs pushes every partially filled partition buffer to disk so
// readers see all records.
func (sp *spillFiles) flushBufs() error {
	for i := range sp.parts {
		if err := sp.flushPart(&sp.parts[i]); err != nil {
			return err
		}
	}
	return nil
}

// releaseBufs returns the partition buffers' reservation once write
// mode is over, retaining the merge floor for the merge phase.
func (sp *spillFiles) releaseBufs() {
	for i := range sp.parts {
		sp.parts[i].buf = nil
	}
	sp.res.Shrink(sp.bufHeld - sp.mergeFloor)
	sp.bufHeld = sp.mergeFloor
}

// readPart replays the given pages of a partition in write order. The
// page-sized scratch is covered by the spill grant's merge floor.
func (sp *spillFiles) readPart(pi int, pages []uint32, fn func(key []byte, ac accum) error) error {
	buf := make([]byte, storage.PageSize)
	for _, pg := range pages {
		if err := sp.dm.ReadPage(pg, buf); err != nil {
			return err
		}
		n := int(buf[0]) | int(buf[1])<<8
		for r := 0; r < n; r++ {
			key, ac := getRec(buf, 2+r*sp.recSize, sp.keyLen)
			if err := fn(key, ac); err != nil {
				return err
			}
		}
	}
	return nil
}

// newWriter starts an overflow partition for a merge sub-pass. Its page
// buffer is covered by the spill grant's merge floor.
func (sp *spillFiles) newWriter() *spillWriter {
	return &spillWriter{sp: sp, part: spillPart{buf: make([]byte, storage.PageSize)}}
}

// spillWriter accumulates overflow records into fresh pages of the same
// temp file.
type spillWriter struct {
	sp   *spillFiles
	part spillPart
}

func (w *spillWriter) write(key []byte, ac accum) error {
	if w.part.n == w.sp.perPage {
		if err := w.sp.flushPart(&w.part); err != nil {
			return err
		}
	}
	putRec(w.part.buf, 2+w.part.n*w.sp.recSize, w.sp.keyLen, key, ac)
	w.part.n++
	return nil
}

// finish flushes the writer and returns its page list.
func (w *spillWriter) finish() ([]uint32, error) {
	if err := w.sp.flushPart(&w.part); err != nil {
		return nil, err
	}
	w.part.buf = nil
	return w.part.pages, nil
}

// destroy closes and removes the temp file, returning everything the
// spill still holds on the reservation.
func (sp *spillFiles) destroy() {
	for i := range sp.parts {
		sp.parts[i].buf = nil
	}
	sp.res.Shrink(sp.bufHeld)
	sp.bufHeld = 0
	sp.dm.Close()
	os.Remove(sp.path)
}

func putFloat(b []byte, f float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(f))
}

func getFloat(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

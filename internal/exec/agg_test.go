package exec

import (
	"testing"

	"mdxopt/internal/query"
)

// aggVariants builds copies of q with every aggregate function.
func aggVariants(q *query.Query) []*query.Query {
	var out []*query.Query
	for _, agg := range []query.Agg{query.Sum, query.Count, query.Min, query.Max, query.Avg} {
		c := *q
		c.Agg = agg
		out = append(out, &c)
	}
	return out
}

// TestAggregatesOnBaseMatchOracle evaluates every aggregate of several
// workload queries on the base table and checks against the oracle.
func TestAggregatesOnBaseMatchOracle(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	for _, name := range []string{"Q1", "Q3", "Q9"} {
		for _, q := range aggVariants(qs[name]) {
			var st Stats
			got, err := HashJoinQuery(env, db.Base(), q, &st)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, q.Agg, err)
			}
			want, err := Naive(env, q)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s/%s: hash join disagrees with oracle", name, q.Agg)
			}
		}
	}
}

// TestAggregatesOnMultiViewMatchOracle materializes a multi-aggregate
// view and evaluates every aggregate of a query from it, via both the
// hash and the bitmap-index paths.
func TestAggregatesOnMultiViewMatchOracle(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)

	// A multi-aggregate view answering Q1/Q5-shaped queries, with an
	// index on dimension A for the bitmap path.
	levels := []int{1, 1, 1, 1}
	mv := db.ViewByLevels(levels)
	if mv == nil {
		var err error
		mv, err = db.MaterializeMulti(levels)
		if err != nil {
			t.Fatalf("MaterializeMulti: %v", err)
		}
		if err := db.BuildIndex(mv, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !mv.MultiAgg() {
		t.Fatal("view lacks the multi-aggregate layout")
	}

	for _, base := range aggVariants(qs["Q5"]) {
		var st Stats
		hr, err := HashJoinQuery(env, mv, base, &st)
		if err != nil {
			t.Fatalf("hash %s: %v", base.Agg, err)
		}
		want, err := Naive(env, base)
		if err != nil {
			t.Fatal(err)
		}
		if !hr.Equal(want) {
			t.Fatalf("hash join %s on multi view disagrees with oracle", base.Agg)
		}
		ir, err := IndexJoinQuery(env, mv, base, &st)
		if err != nil {
			t.Fatalf("index %s: %v", base.Agg, err)
		}
		if !ir.Equal(want) {
			t.Fatalf("index join %s on multi view disagrees with oracle", base.Agg)
		}
	}
}

// TestNonSumRejectedOnSumOnlyView checks the executor refuses to compute
// COUNT from a view that only stores sums.
func TestNonSumRejectedOnSumOnlyView(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	sumView := db.ViewByLevels([]int{1, 1, 1, 0})
	if sumView.MultiAgg() {
		t.Fatal("paper view unexpectedly multi-aggregate")
	}
	q := *qs["Q5"]
	q.Agg = query.Count
	var st Stats
	if _, err := HashJoinQuery(env, sumView, &q, &st); err == nil {
		t.Fatal("COUNT on a sum-only view was accepted")
	}
	// SUM on the same view remains fine.
	q.Agg = query.Sum
	if _, err := HashJoinQuery(env, sumView, &q, &st); err != nil {
		t.Fatal(err)
	}
}

// TestSharedOperatorsMixedAggregates runs a shared scan whose member
// queries use different aggregates.
func TestSharedOperatorsMixedAggregates(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	variants := aggVariants(qs["Q1"])
	var st Stats
	results, err := SharedScanHash(env, db.Base(), variants, &st)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range variants {
		want, err := Naive(env, q)
		if err != nil {
			t.Fatal(err)
		}
		if !results[i].Equal(want) {
			t.Fatalf("shared scan %s disagrees with oracle", q.Agg)
		}
	}
	// Cross-aggregate sanity: avg = sum / count, min <= avg <= max.
	sum, count, min, max, avg := results[0], results[1], results[2], results[3], results[4]
	for i := range sum.Groups {
		s, c, a := sum.Groups[i].Value, count.Groups[i].Value, avg.Groups[i].Value
		if c == 0 || s/c != a {
			t.Fatalf("group %d: avg %v != sum/count %v", i, a, s/c)
		}
		if min.Groups[i].Value > a || a > max.Groups[i].Value {
			t.Fatalf("group %d: avg outside [min,max]", i)
		}
	}
}

// TestParallelSharedScanMatchesSerial checks partitioned scans with
// merged per-worker aggregation tables produce identical results for
// every aggregate, on both the pure-hash and the mixed operators.
func TestParallelSharedScanMatchesSerial(t *testing.T) {
	db, qs := testDB(t)
	group := aggVariants(qs["Q1"])
	group = append(group, qs["Q2"], qs["Q3"])

	serialEnv := NewEnv(db)
	var serialStats Stats
	want, err := SharedScanHash(serialEnv, db.Base(), group, &serialStats)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 3, 7} {
		env := NewEnv(db)
		env.Parallelism = workers
		var st Stats
		got, err := SharedScanHash(env, db.Base(), group, &st)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range group {
			if !got[i].Equal(want[i]) {
				t.Fatalf("workers=%d: result %d differs from serial", workers, i)
			}
		}
		// Work conservation: same tuples scanned and probed in total.
		if st.TuplesScanned != serialStats.TuplesScanned {
			t.Fatalf("workers=%d scanned %d, serial %d", workers, st.TuplesScanned, serialStats.TuplesScanned)
		}
		if st.TupleProbes != serialStats.TupleProbes {
			t.Fatalf("workers=%d probed %d, serial %d", workers, st.TupleProbes, serialStats.TupleProbes)
		}
	}

	// Mixed operator, parallel.
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	hash := []*query.Query{qs["Q3"]}
	index := []*query.Query{qs["Q5"], qs["Q7"]}
	serialH, serialI, err := SharedMixed(serialEnv, view, hash, index, &serialStats)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(db)
	env.Parallelism = 4
	var st Stats
	gh, gi, err := SharedMixed(env, view, hash, index, &st)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serialH {
		if !gh[i].Equal(serialH[i]) {
			t.Fatalf("mixed parallel hash result %d differs", i)
		}
	}
	for i := range serialI {
		if !gi[i].Equal(serialI[i]) {
			t.Fatalf("mixed parallel index result %d differs", i)
		}
	}
}

func TestScanPartitions(t *testing.T) {
	for _, c := range []struct {
		rows int64
		n    int
		tpp  int
	}{{100, 3, 8}, {7, 10, 3}, {0, 2, 5}, {5, 1, 409}, {1000, 4, 13}} {
		parts := scanPartitions(c.rows, c.n, c.tpp)
		var covered int64
		prev := int64(0)
		for _, p := range parts {
			if p[0] != prev {
				t.Fatalf("rows=%d n=%d: gap at %d", c.rows, c.n, p[0])
			}
			if p[1] < p[0] {
				t.Fatalf("rows=%d n=%d: inverted range %v", c.rows, c.n, p)
			}
			covered += p[1] - p[0]
			prev = p[1]
		}
		if covered != c.rows || prev != c.rows {
			t.Fatalf("rows=%d n=%d: covered %d ending at %d", c.rows, c.n, covered, prev)
		}
	}
}

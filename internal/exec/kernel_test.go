package exec

import (
	"encoding/binary"
	"testing"

	"mdxopt/internal/query"
	"mdxopt/internal/table"
)

// captureBatches decodes the whole view into cloned batches so tests
// can re-feed the fold kernel without touching the buffer pool.
func captureBatches(t testing.TB, env *Env) []*table.Batch {
	t.Helper()
	heap := env.DB.Base().Heap
	var batches []*table.Batch
	if err := heap.ScanRangeBatches(0, heap.Count(), func(b *table.Batch) error {
		batches = append(batches, b.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return batches
}

// TestFoldLoopAllocs pins the packed kernel's steady-state allocation
// rate at exactly zero: once the groups are resident and the scratch
// vectors sized, re-feeding the entire base table must not allocate.
func TestFoldLoopAllocs(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	view := db.Base()
	batches := captureBatches(t, env)

	stats := &Stats{}
	cache := newLookupCache(env, stats)
	defer cache.close()
	var pipes []*queryPipeline
	for _, name := range []string{"Q1", "Q2", "Q3", "Q9"} {
		p, err := newQueryPipeline(env, stats, cache, qs[name], view)
		if err != nil {
			t.Fatal(err)
		}
		defer p.close()
		if p.packer == nil {
			t.Fatalf("%s fell back to byte keys on the paper schema", name)
		}
		pipes = append(pipes, p)
	}

	feed := func() {
		var st Stats
		for _, b := range batches {
			for _, p := range pipes {
				p.foldBatch(&st, b)
			}
		}
	}
	feed() // warm-up: populate groups, grow tables, size scratch
	if allocs := testing.AllocsPerRun(5, feed); allocs != 0 {
		t.Fatalf("steady-state fold pass allocates %v objects, want 0", allocs)
	}
	for _, p := range pipes {
		if p.ioErr != nil {
			t.Fatal(p.ioErr)
		}
	}
}

// BenchmarkSharedScanCPU measures the end-to-end shared-scan operator
// (warm pool, so CPU-bound) under both aggregation representations.
func BenchmarkSharedScanCPU(b *testing.B) {
	db, qs := testDB(b)
	queries := []*query.Query{qs["Q1"], qs["Q2"], qs["Q3"], qs["Q4"], qs["Q9"]}
	for _, mode := range []struct {
		name     string
		noPacked bool
	}{{"packed", false}, {"bytes", true}} {
		b.Run(mode.name, func(b *testing.B) {
			env := NewEnv(db)
			env.NoPackedKeys = mode.noPacked
			// Warm the pool so the measured passes are CPU-bound.
			var warm Stats
			if _, err := SharedScanHash(env, db.Base(), queries, &warm); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var tuples int64
			for i := 0; i < b.N; i++ {
				var st Stats
				if _, err := SharedScanHash(env, db.Base(), queries, &st); err != nil {
					b.Fatal(err)
				}
				tuples += st.TupleProbes
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(tuples)/s, "tuples/s")
			}
		})
	}
}

// BenchmarkAggTable isolates the two table representations on a
// synthetic key stream: one find-or-insert per operation against a
// resident working set.
func BenchmarkAggTable(b *testing.B) {
	db, _ := testDB(b)
	env := NewEnv(db)
	kp, ok := newKeyPackerFromCards([]int32{256, 256, 256, 256})
	if !ok {
		b.Fatal("4×8-bit key did not pack")
	}
	const n = 1 << 16
	keys := make([]uint64, n)
	x := uint64(1)
	for i := range keys {
		x = x*6364136223846793005 + 1442695040888963407
		keys[i] = x >> 40 // 24-bit keys: a few thousand distinct groups
	}
	b.Run("packed", func(b *testing.B) {
		t := newFoldTable(env, query.Sum, kp, "bench")
		defer t.close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := t.fold(keys[i%n], accum{a: 1, set: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bytes", func(b *testing.B) {
		t := newAggTable(env, query.Sum, 16, "bench")
		defer t.close()
		var buf [16]byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			binary.LittleEndian.PutUint64(buf[:], keys[i%n])
			if err := t.add(buf[:], accum{a: 1, set: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestFoldKernelBenchRuns smoke-tests the exported harness both ways.
func TestFoldKernelBenchRuns(t *testing.T) {
	db, qs := testDB(t)
	queries := []*query.Query{qs["Q1"], qs["Q2"]}
	for _, noPacked := range []bool{false, true} {
		env := NewEnv(db)
		env.NoPackedKeys = noPacked
		r, err := FoldKernelBench(env, db.Base(), queries, 2)
		if err != nil {
			t.Fatal(err)
		}
		if r.Packed == noPacked {
			t.Fatalf("NoPackedKeys=%v ran packed=%v", noPacked, r.Packed)
		}
		if r.Tuples == 0 || r.Folds == 0 || r.TuplesPerSec <= 0 {
			t.Fatalf("degenerate bench result: %+v", r)
		}
		if !noPacked && r.AllocsPerPass > 8 {
			t.Fatalf("packed kernel allocated %v times per pass", r.AllocsPerPass)
		}
	}
}

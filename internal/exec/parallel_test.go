package exec

import "testing"

// checkPartitions asserts the fundamental partition invariants: the
// ranges are contiguous, non-overlapping, and together cover exactly
// [0, rows).
func checkPartitions(t *testing.T, rows int64, n int) [][2]int64 {
	t.Helper()
	parts := scanPartitions(rows, n)
	want := n
	if want < 1 {
		want = 1
	}
	if len(parts) != want {
		t.Fatalf("scanPartitions(%d, %d): %d parts, want %d", rows, n, len(parts), want)
	}
	var from int64
	for i, p := range parts {
		if p[0] != from {
			t.Fatalf("scanPartitions(%d, %d): part %d starts at %d, want %d (gap or overlap)", rows, n, i, p[0], from)
		}
		if p[1] < p[0] {
			t.Fatalf("scanPartitions(%d, %d): part %d is inverted: [%d, %d)", rows, n, i, p[0], p[1])
		}
		from = p[1]
	}
	if from != rows {
		t.Fatalf("scanPartitions(%d, %d): parts cover [0, %d), want [0, %d)", rows, n, from, rows)
	}
	return parts
}

func TestScanPartitionsEvenSplit(t *testing.T) {
	parts := checkPartitions(t, 100, 4)
	for i, p := range parts {
		if p[1]-p[0] != 25 {
			t.Fatalf("part %d has %d rows, want 25", i, p[1]-p[0])
		}
	}
}

func TestScanPartitionsRemainderGoesLast(t *testing.T) {
	parts := checkPartitions(t, 10, 3)
	// chunk = 3, the last partition absorbs the remainder.
	if got := parts[2][1] - parts[2][0]; got != 4 {
		t.Fatalf("last part has %d rows, want 4", got)
	}
}

func TestScanPartitionsFewerRowsThanWorkers(t *testing.T) {
	// rows < workers: chunk is 0, so leading partitions are empty and
	// the last covers everything — still contiguous and covering.
	parts := checkPartitions(t, 5, 8)
	for i := 0; i < 7; i++ {
		if parts[i][0] != parts[i][1] {
			t.Fatalf("part %d should be empty, got [%d, %d)", i, parts[i][0], parts[i][1])
		}
	}
	if parts[7][0] != 0 || parts[7][1] != 5 {
		t.Fatalf("last part is [%d, %d), want [0, 5)", parts[7][0], parts[7][1])
	}
}

func TestScanPartitionsZeroRows(t *testing.T) {
	parts := checkPartitions(t, 0, 4)
	for i, p := range parts {
		if p[0] != 0 || p[1] != 0 {
			t.Fatalf("part %d of an empty table is [%d, %d), want [0, 0)", i, p[0], p[1])
		}
	}
}

func TestScanPartitionsSingleWorker(t *testing.T) {
	parts := checkPartitions(t, 7, 1)
	if parts[0] != [2]int64{0, 7} {
		t.Fatalf("single worker gets %v, want [0 7]", parts[0])
	}
}

func TestScanPartitionsInvalidWorkerCount(t *testing.T) {
	// n < 1 degrades to one covering partition rather than panicking.
	checkPartitions(t, 42, 0)
	checkPartitions(t, 42, -3)
}

package exec

import "testing"

// checkPartitions asserts the fundamental partition invariants: the
// ranges are contiguous, non-overlapping, together cover exactly
// [0, rows), and — except where clamped by the end of the table — start
// and end on page boundaries, so no two workers ever fetch the same
// page.
func checkPartitions(t *testing.T, rows int64, n, tpp int) [][2]int64 {
	t.Helper()
	parts := scanPartitions(rows, n, tpp)
	want := n
	if want < 1 {
		want = 1
	}
	if len(parts) != want {
		t.Fatalf("scanPartitions(%d, %d, %d): %d parts, want %d", rows, n, tpp, len(parts), want)
	}
	var from int64
	for i, p := range parts {
		if p[0] != from {
			t.Fatalf("scanPartitions(%d, %d, %d): part %d starts at %d, want %d (gap or overlap)", rows, n, tpp, i, p[0], from)
		}
		if p[1] < p[0] {
			t.Fatalf("scanPartitions(%d, %d, %d): part %d is inverted: [%d, %d)", rows, n, tpp, i, p[0], p[1])
		}
		if p[0]%int64(tpp) != 0 && p[0] != rows {
			t.Fatalf("scanPartitions(%d, %d, %d): part %d starts mid-page at row %d", rows, n, tpp, i, p[0])
		}
		if p[1]%int64(tpp) != 0 && p[1] != rows {
			t.Fatalf("scanPartitions(%d, %d, %d): part %d ends mid-page at row %d", rows, n, tpp, i, p[1])
		}
		from = p[1]
	}
	if from != rows {
		t.Fatalf("scanPartitions(%d, %d, %d): parts cover [0, %d), want [0, %d)", rows, n, tpp, from, rows)
	}
	return parts
}

func TestScanPartitionsEvenSplit(t *testing.T) {
	// 100 rows at 5 per page = 20 pages over 4 workers: 5 pages each.
	parts := checkPartitions(t, 100, 4, 5)
	for i, p := range parts {
		if p[1]-p[0] != 25 {
			t.Fatalf("part %d has %d rows, want 25", i, p[1]-p[0])
		}
	}
}

func TestScanPartitionsPageAligned(t *testing.T) {
	// 10 pages of 7 over 3 workers deal out as 4/3/3 pages; the last
	// page is partial (68 rows total).
	parts := checkPartitions(t, 68, 3, 7)
	want := [][2]int64{{0, 28}, {28, 49}, {49, 68}}
	for i, p := range parts {
		if p != want[i] {
			t.Fatalf("part %d is %v, want %v", i, p, want[i])
		}
	}
}

func TestScanPartitionsFewerPagesThanWorkers(t *testing.T) {
	// 5 rows fit on one page: the first worker gets the page, the rest
	// are empty — still contiguous and covering.
	parts := checkPartitions(t, 5, 8, 409)
	if parts[0][0] != 0 || parts[0][1] != 5 {
		t.Fatalf("first part is [%d, %d), want [0, 5)", parts[0][0], parts[0][1])
	}
	for i := 1; i < 8; i++ {
		if parts[i][0] != parts[i][1] {
			t.Fatalf("part %d should be empty, got [%d, %d)", i, parts[i][0], parts[i][1])
		}
	}
}

func TestScanPartitionsNeverSplitPage(t *testing.T) {
	// Exhaustive small sweep: every page is visited by exactly one
	// worker.
	for rows := int64(0); rows <= 40; rows++ {
		for n := 1; n <= 6; n++ {
			for _, tpp := range []int{1, 3, 7} {
				parts := checkPartitions(t, rows, n, tpp)
				owner := make(map[int64]int)
				for w, p := range parts {
					if p[0] == p[1] {
						continue
					}
					for pg := p[0] / int64(tpp); pg*int64(tpp) < p[1]; pg++ {
						if prev, ok := owner[pg]; ok && prev != w {
							t.Fatalf("rows=%d n=%d tpp=%d: page %d split between workers %d and %d",
								rows, n, tpp, pg, prev, w)
						}
						owner[pg] = w
					}
				}
			}
		}
	}
}

func TestScanPartitionsZeroRows(t *testing.T) {
	parts := checkPartitions(t, 0, 4, 10)
	for i, p := range parts {
		if p[0] != 0 || p[1] != 0 {
			t.Fatalf("part %d of an empty table is [%d, %d), want [0, 0)", i, p[0], p[1])
		}
	}
}

func TestScanPartitionsSingleWorker(t *testing.T) {
	parts := checkPartitions(t, 7, 1, 3)
	if parts[0] != [2]int64{0, 7} {
		t.Fatalf("single worker gets %v, want [0 7]", parts[0])
	}
}

func TestScanPartitionsInvalidArgs(t *testing.T) {
	// n < 1 degrades to one covering partition, tpp < 1 to row
	// granularity, rather than panicking.
	checkPartitions(t, 42, 0, 5)
	checkPartitions(t, 42, -3, 5)
	checkPartitions(t, 42, 4, 1)
	parts := scanPartitions(42, 4, 0)
	if got := len(parts); got != 4 {
		t.Fatalf("tpp=0 gave %d parts, want 4", got)
	}
}

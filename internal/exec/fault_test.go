package exec

import (
	"context"
	"errors"
	"testing"

	"mdxopt/internal/query"
	"mdxopt/internal/storage"
)

// TestOperatorsPropagateDiskFaults injects read faults into the base
// table and the index files and checks every operator surfaces the error
// (no panics, no partial results mistaken for success) and that the
// system recovers once the fault clears.
func TestOperatorsPropagateDiskFaults(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	boom := errors.New("injected disk fault")

	faultOn := func(disk *storage.DiskManager) {
		disk.SetFault(func(op string, page uint32) error {
			if op == "read" {
				return boom
			}
			return nil
		})
	}

	// Fault the base table: hash joins fail mid-scan.
	if err := db.ColdReset(); err != nil {
		t.Fatal(err)
	}
	faultOn(db.Base().Heap.File().Disk())
	var st Stats
	if _, err := HashJoinQuery(env, db.Base(), qs["Q1"], &st); !errors.Is(err, boom) {
		t.Fatalf("HashJoinQuery err = %v, want injected fault", err)
	}
	if _, err := SharedScanHash(env, db.Base(), []*query.Query{qs["Q1"], qs["Q2"]}, &st); !errors.Is(err, boom) {
		t.Fatalf("SharedScanHash err = %v, want injected fault", err)
	}
	db.Base().Heap.File().Disk().SetFault(nil)

	// Fault the view's heap: index joins fail at the probe.
	if err := db.ColdReset(); err != nil {
		t.Fatal(err)
	}
	faultOn(view.Heap.File().Disk())
	if _, err := IndexJoinQuery(env, view, qs["Q7"], &st); !errors.Is(err, boom) {
		t.Fatalf("IndexJoinQuery err = %v, want injected fault", err)
	}
	view.Heap.File().Disk().SetFault(nil)

	// Fault an index file: bitmap construction fails.
	if err := db.ColdReset(); err != nil {
		t.Fatal(err)
	}
	faultOn(view.Indexes[0].File().Disk())
	if _, err := SharedIndex(env, view, []*query.Query{qs["Q7"], qs["Q8"]}, &st); !errors.Is(err, boom) {
		t.Fatalf("SharedIndex err = %v, want injected fault", err)
	}
	view.Indexes[0].File().Disk().SetFault(nil)

	// Fault a dimension table: lookup builds fail.
	if err := db.ColdReset(); err != nil {
		t.Fatal(err)
	}
	faultOn(db.DimTables[0].File().Disk())
	if _, _, err := SharedMixed(env, view, []*query.Query{qs["Q3"]}, []*query.Query{qs["Q7"]}, &st); !errors.Is(err, boom) {
		t.Fatalf("SharedMixed err = %v, want injected fault", err)
	}
	db.DimTables[0].File().Disk().SetFault(nil)

	// Recovery: everything works again.
	if err := db.ColdReset(); err != nil {
		t.Fatal(err)
	}
	r, err := HashJoinQuery(env, db.Base(), qs["Q1"], &st)
	if err != nil {
		t.Fatalf("after clearing faults: %v", err)
	}
	checkAgainstOracle(t, env, r)
}

// TestCancellationAbortsScans cancels a context mid-scan and checks the
// operators abort promptly with the context's error.
func TestCancellationAbortsScans(t *testing.T) {
	db, qs := testDB(t)

	// Already-canceled context: the scan aborts at the first check.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env := NewEnv(db)
	env.Ctx = ctx
	var st Stats
	if _, err := HashJoinQuery(env, db.Base(), qs["Q1"], &st); !errors.Is(err, context.Canceled) {
		t.Fatalf("hash join err = %v, want context.Canceled", err)
	}
	if st.TuplesScanned >= db.Base().Rows() {
		t.Fatal("canceled scan processed the whole table")
	}
	if _, _, err := SharedMixed(env, db.ViewByLevels([]int{1, 1, 1, 0}),
		[]*query.Query{qs["Q3"]}, []*query.Query{qs["Q7"]}, &st); !errors.Is(err, context.Canceled) {
		t.Fatalf("mixed err = %v, want context.Canceled", err)
	}
	if _, err := SharedIndex(env, db.ViewByLevels([]int{1, 1, 1, 0}),
		[]*query.Query{qs["Q5"], qs["Q6"]}, &st); !errors.Is(err, context.Canceled) {
		t.Fatalf("shared index err = %v, want context.Canceled", err)
	}

	// Parallel workers abort too.
	env.Parallelism = 3
	if _, err := SharedScanHash(env, db.Base(), []*query.Query{qs["Q1"], qs["Q2"]}, &st); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel err = %v, want context.Canceled", err)
	}

	// A live context leaves everything working.
	env2 := NewEnv(db)
	env2.Ctx = context.Background()
	r, err := HashJoinQuery(env2, db.Base(), qs["Q1"], &st)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, env2, r)
}

package exec

import (
	"os"
	"path/filepath"
	"testing"

	"mdxopt/internal/cost"
	"mdxopt/internal/datagen"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/workload"
)

// testDB builds a small paper-shaped database once per test binary.
var sharedDB *star.Database
var sharedQueries map[string]*query.Query
var sharedDir string

func TestMain(m *testing.M) {
	code := m.Run()
	if sharedDir != "" {
		os.RemoveAll(sharedDir)
	}
	os.Exit(code)
}

func testDB(t testing.TB) (*star.Database, map[string]*query.Query) {
	t.Helper()
	if sharedDB != nil {
		return sharedDB, sharedQueries
	}
	spec := datagen.PaperSpec(0.005) // 10k rows
	spec.PoolFrames = 256
	// Not t.TempDir(): the database outlives the first test that builds
	// it, and later tests create files (view materialization) in it.
	dir, err := os.MkdirTemp("", "mdxopt-exec-test")
	if err != nil {
		t.Fatal(err)
	}
	sharedDir = dir
	db, err := datagen.Build(filepath.Join(dir, "db"), spec)
	if err != nil {
		t.Fatalf("datagen.Build: %v", err)
	}
	qs, err := workload.PaperQueries(db.Schema)
	if err != nil {
		t.Fatalf("PaperQueries: %v", err)
	}
	sharedDB, sharedQueries = db, qs
	return db, qs
}

func oracle(t *testing.T, env *Env, q *query.Query) *Result {
	t.Helper()
	r, err := Naive(env, q)
	if err != nil {
		t.Fatalf("Naive(%s): %v", q.Name, err)
	}
	return r
}

func checkAgainstOracle(t *testing.T, env *Env, got *Result) {
	t.Helper()
	want := oracle(t, env, got.Query)
	if !got.Equal(want) {
		t.Fatalf("%s: result mismatch\n got %d groups total %.4f\nwant %d groups total %.4f",
			got.Query.Name, len(got.Groups), got.Total(), len(want.Groups), want.Total())
	}
	if len(got.Groups) == 0 {
		t.Fatalf("%s: empty result (workload bug: predicate selects nothing)", got.Query.Name)
	}
}

func TestHashJoinMatchesOracleOnBase(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	for _, name := range []string{"Q1", "Q2", "Q3", "Q4", "Q9"} {
		var st Stats
		r, err := HashJoinQuery(env, db.Base(), qs[name], &st)
		if err != nil {
			t.Fatalf("HashJoinQuery(%s): %v", name, err)
		}
		checkAgainstOracle(t, env, r)
		if st.TuplesScanned != db.Base().Rows() {
			t.Fatalf("%s scanned %d tuples, want %d", name, st.TuplesScanned, db.Base().Rows())
		}
	}
}

func TestHashJoinMatchesOracleOnViews(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	// Every query evaluated on every view that can answer it must agree
	// with the oracle.
	for _, q := range qs {
		for _, v := range db.Views {
			if !q.AnswerableFrom(v.Levels) {
				continue
			}
			var st Stats
			r, err := HashJoinQuery(env, v, q, &st)
			if err != nil {
				t.Fatalf("HashJoinQuery(%s on %s): %v", q.Name, v.Name, err)
			}
			checkAgainstOracle(t, env, r)
		}
	}
}

func TestHashJoinRejectsNonDerivingView(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	coarse := db.ViewByLevels([]int{2, 2, 1, 0})
	if coarse == nil {
		t.Fatal("A''B''C'D view missing")
	}
	var st Stats
	// Q6 groups at (1,1,1,1); a view at A''.. cannot answer it.
	if _, err := HashJoinQuery(env, coarse, qs["Q6"], &st); err == nil {
		t.Fatal("hash join accepted a non-deriving view")
	}
}

func TestIndexJoinMatchesOracle(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	indexed := db.ViewByLevels([]int{1, 1, 1, 0})
	for _, name := range []string{"Q5", "Q6", "Q7", "Q8"} {
		var st Stats
		r, err := IndexJoinQuery(env, indexed, qs[name], &st)
		if err != nil {
			t.Fatalf("IndexJoinQuery(%s): %v", name, err)
		}
		checkAgainstOracle(t, env, r)
		if st.TuplesScanned != 0 {
			t.Fatalf("%s index join scanned %d tuples", name, st.TuplesScanned)
		}
		if st.TuplesFetched == 0 || st.BitmapWords == 0 {
			t.Fatalf("%s index join stats missing fetches/bitmap work: %s", name, st)
		}
		// The D predicate is residual (no index on D), so fetched >=
		// aggregated.
		if st.TuplesFetched < st.TuplesAgg {
			t.Fatalf("%s fetched %d < aggregated %d", name, st.TuplesFetched, st.TuplesAgg)
		}
	}
}

func TestIndexJoinRequiresSomeIndex(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	var st Stats
	// The base table has no indexes.
	if _, err := IndexJoinQuery(env, db.Base(), qs["Q7"], &st); err == nil {
		t.Fatal("index join ran without any index")
	}
}

func TestSharedScanHashMatchesSeparate(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	group := []*query.Query{qs["Q1"], qs["Q2"], qs["Q3"], qs["Q4"]}

	var shared Stats
	if err := db.ColdReset(); err != nil {
		t.Fatal(err)
	}
	results, err := SharedScanHash(env, db.Base(), group, &shared)
	if err != nil {
		t.Fatalf("SharedScanHash: %v", err)
	}
	for _, r := range results {
		checkAgainstOracle(t, env, r)
	}

	// Separate runs with cold cache between them.
	var separate Stats
	for _, q := range group {
		if err := db.ColdReset(); err != nil {
			t.Fatal(err)
		}
		if _, err := HashJoinQuery(env, db.Base(), q, &separate); err != nil {
			t.Fatal(err)
		}
	}

	// The shared operator scans the base table once instead of four
	// times.
	if shared.TuplesScanned != db.Base().Rows() {
		t.Fatalf("shared scanned %d, want %d", shared.TuplesScanned, db.Base().Rows())
	}
	if separate.TuplesScanned != 4*db.Base().Rows() {
		t.Fatalf("separate scanned %d, want %d", separate.TuplesScanned, 4*db.Base().Rows())
	}
	if shared.IO.Reads() >= separate.IO.Reads() {
		t.Fatalf("shared I/O %d not below separate %d", shared.IO.Reads(), separate.IO.Reads())
	}
	// Probe work (CPU) is the same per query either way.
	if shared.TupleProbes != separate.TupleProbes {
		t.Fatalf("probe counts differ: shared %d separate %d", shared.TupleProbes, separate.TupleProbes)
	}
}

func TestSharedScanLookupSharing(t *testing.T) {
	db, qs := testDB(t)
	// Q3 and Q4 group identically (A''B''C''D'); their lookup tables for
	// dimensions without predicates... all their dims have preds, but Q3
	// and Q4 share the D lookup (same level, same DD1 predicate).
	group := []*query.Query{qs["Q3"], qs["Q4"]}

	envShared := NewEnv(db)
	var withSharing Stats
	if _, err := SharedScanHash(envShared, db.Base(), group, &withSharing); err != nil {
		t.Fatal(err)
	}

	envNoShare := NewEnv(db)
	envNoShare.ShareLookups = false
	var noSharing Stats
	if _, err := SharedScanHash(envNoShare, db.Base(), group, &noSharing); err != nil {
		t.Fatal(err)
	}
	if withSharing.HashBuildRows >= noSharing.HashBuildRows {
		t.Fatalf("lookup sharing did not reduce build work: %d vs %d",
			withSharing.HashBuildRows, noSharing.HashBuildRows)
	}
}

func TestSharedIndexMatchesSeparate(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	indexed := db.ViewByLevels([]int{1, 1, 1, 0})
	group := []*query.Query{qs["Q5"], qs["Q6"], qs["Q7"], qs["Q8"]}

	if err := db.ColdReset(); err != nil {
		t.Fatal(err)
	}
	var shared Stats
	results, err := SharedIndex(env, indexed, group, &shared)
	if err != nil {
		t.Fatalf("SharedIndex: %v", err)
	}
	for _, r := range results {
		checkAgainstOracle(t, env, r)
	}

	var separate Stats
	var separateFetched int64
	for _, q := range group {
		if err := db.ColdReset(); err != nil {
			t.Fatal(err)
		}
		var st Stats
		if _, err := IndexJoinQuery(env, indexed, q, &st); err != nil {
			t.Fatal(err)
		}
		separate.Add(st)
		separateFetched += st.TuplesFetched
	}

	// The union probe fetches each qualifying tuple once; separate runs
	// re-fetch overlapping tuples.
	if shared.TuplesFetched > separateFetched {
		t.Fatalf("shared fetched %d > separate %d", shared.TuplesFetched, separateFetched)
	}
	if shared.TuplesAgg != separate.TuplesAgg {
		t.Fatalf("aggregated tuples differ: %d vs %d", shared.TuplesAgg, separate.TuplesAgg)
	}
}

func TestSharedMixedMatchesOracle(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	hash := []*query.Query{qs["Q3"]}
	index := []*query.Query{qs["Q5"], qs["Q6"], qs["Q7"]}

	var st Stats
	hr, ir, err := SharedMixed(env, view, hash, index, &st)
	if err != nil {
		t.Fatalf("SharedMixed: %v", err)
	}
	for _, r := range append(hr, ir...) {
		checkAgainstOracle(t, env, r)
	}
	// One scan total; index queries add no I/O beyond their bitmap reads.
	if st.TuplesScanned != view.Rows() {
		t.Fatalf("mixed scanned %d, want %d", st.TuplesScanned, view.Rows())
	}
	if st.BitTests < view.Rows()*int64(len(index)) {
		t.Fatalf("bit tests %d too low", st.BitTests)
	}
}

func TestSharedMixedFilterOnlyScans(t *testing.T) {
	// A mixed operator with no hash members is a shared scan with bitmap
	// filters (the optimizer picks it over SharedIndex when the union
	// bitmap is dense); it must still scan and produce correct results.
	db, qs := testDB(t)
	env := NewEnv(db)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	var st Stats
	hr, ir, err := SharedMixed(env, view, nil, []*query.Query{qs["Q7"]}, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(hr) != 0 || len(ir) != 1 {
		t.Fatalf("filter-only mixed returned %d hash, %d index results", len(hr), len(ir))
	}
	checkAgainstOracle(t, env, ir[0])
	if st.TuplesScanned != view.Rows() {
		t.Fatalf("filter-only mixed scanned %d tuples, want %d", st.TuplesScanned, view.Rows())
	}
	if _, _, err := SharedMixed(env, view, nil, nil, &st); err != nil {
		t.Fatalf("empty mixed errored: %v", err)
	}
}

func TestIndexVsHashAgreeEverywhere(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	for _, q := range qs {
		if !q.AnswerableFrom(view.Levels) {
			continue
		}
		var st Stats
		hr, err := HashJoinQuery(env, view, q, &st)
		if err != nil {
			t.Fatal(err)
		}
		ir, err := IndexJoinQuery(env, view, q, &st)
		if err != nil {
			t.Fatal(err)
		}
		if !hr.Equal(ir) {
			t.Fatalf("%s: hash and index joins disagree", q.Name)
		}
	}
}

func TestStatsSimulatedSecondsPositive(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	var st Stats
	if _, err := HashJoinQuery(env, db.Base(), qs["Q1"], &st); err != nil {
		t.Fatal(err)
	}
	m := cost.Default()
	if st.SimulatedSeconds(m) <= 0 {
		t.Fatal("simulated time not positive")
	}
	var sum Stats
	sum.Add(st)
	sum.Add(st)
	if sum.SimulatedMicros(m) != 2*st.SimulatedMicros(m) {
		t.Fatal("Stats.Add not additive under the model")
	}
}

func TestNaiveWithAllLevel(t *testing.T) {
	db, _ := testDB(t)
	env := NewEnv(db)
	// Group by A'' only; everything else aggregated out.
	all := make([]int, db.Schema.NumDims())
	for i, d := range db.Schema.Dims {
		all[i] = d.AllLevel()
	}
	all[0] = 2
	q, err := query.New("qall", db.Schema, all, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	r, err := HashJoinQuery(env, db.Base(), q, &st)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, env, r)
	if len(r.Groups) != 3 {
		t.Fatalf("A'' groups = %d, want 3", len(r.Groups))
	}
	// Grand total must match the base table's measure sum.
	var total float64
	err = db.Base().Heap.Scan(func(row int64, keys []int32, ms []float64) error {
		total += ms[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff := r.Total() - total; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("grand total %v != %v", r.Total(), total)
	}
}

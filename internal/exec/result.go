package exec

import (
	"fmt"
	"strings"

	"mdxopt/internal/query"
)

// Group is one row of a query result: the group-by member codes (at the
// query's levels) and the aggregated measure.
type Group struct {
	Keys  []int32
	Value float64
}

// Result is the evaluated output of one query, with groups in ascending
// key order.
type Result struct {
	Query  *query.Query
	Groups []Group
	// Own is the query's non-shared work in the pass that produced the
	// result (probes, aggregations, fetch routing); the pass's shared
	// work (the scan itself, page I/O) is not included. See Attribute.
	Own Stats
	// Err is set when the query's per-submission context (Env.QueryCtx)
	// was canceled and its pipelines detached from the shared pass;
	// Groups is then partial and must be discarded.
	Err error
	// Cached reports that the result was served from the semantic
	// result cache by the zero-IO rollup operator (RollupCached) rather
	// than computed from a stored view.
	Cached bool
}

// result converts the pipeline's aggregation table into a sorted Result.
// Spilled tables are merged partition by partition (spill.go); the
// groups come out in the same raw-key order either way.
func (p *queryPipeline) result() (*Result, error) {
	pairs, err := p.pairs()
	if err != nil {
		return nil, err
	}
	q := p.q
	nd := q.Schema.NumDims()
	groups := make([]Group, len(pairs))
	for i, pr := range pairs {
		k := pr.key
		g := Group{Keys: make([]int32, nd), Value: p.finalize(pr.ac)}
		for d := 0; d < nd; d++ {
			g.Keys[d] = int32(uint32(k[d*4]) | uint32(k[d*4+1])<<8 | uint32(k[d*4+2])<<16 | uint32(k[d*4+3])<<24)
		}
		groups[i] = g
	}
	return &Result{Query: q, Groups: groups}, nil
}

// Find returns the value for the given group keys.
func (r *Result) Find(keys []int32) (float64, bool) {
	for _, g := range r.Groups {
		if equalKeys(g.Keys, keys) {
			return g.Value, true
		}
	}
	return 0, false
}

func equalKeys(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Total returns the sum of all group values.
func (r *Result) Total() float64 {
	var t float64
	for _, g := range r.Groups {
		t += g.Value
	}
	return t
}

// Equal reports whether two results have identical groups and values.
func (r *Result) Equal(o *Result) bool {
	if len(r.Groups) != len(o.Groups) {
		return false
	}
	for i := range r.Groups {
		if !equalKeys(r.Groups[i].Keys, o.Groups[i].Keys) || r.Groups[i].Value != o.Groups[i].Value {
			return false
		}
	}
	return true
}

// Format renders the result with member names, one group per line.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d groups\n", r.Query, len(r.Groups))
	for _, g := range r.Groups {
		parts := make([]string, 0, len(g.Keys))
		for d, k := range g.Keys {
			dim := r.Query.Schema.Dims[d]
			lvl := r.Query.Levels[d]
			if lvl == dim.AllLevel() {
				continue
			}
			parts = append(parts, dim.MemberName(lvl, k))
		}
		fmt.Fprintf(&b, "  (%s) = %.2f\n", strings.Join(parts, ", "), g.Value)
	}
	return b.String()
}

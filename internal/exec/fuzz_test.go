package exec

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/bits"
	"testing"
)

// FuzzPackedKeyRoundTrip checks the packed-key codec against arbitrary
// per-dimension cardinalities and codes: construction must succeed
// exactly when the field widths fit 64 bits, and pack → unpack and
// pack → legacyKey must both reproduce the codes.
func FuzzPackedKeyRoundTrip(f *testing.F) {
	// Paper-shaped small cards; max-cardinality codes at 16-bit fields;
	// degenerate ALL-level dims; and a fallback-width key (>64 bits).
	f.Add(uint32(12), uint32(30), uint32(1000), uint32(2), uint32(11), uint32(29), uint32(999), uint32(1))
	f.Add(uint32(65536), uint32(65536), uint32(65536), uint32(65536), uint32(65535), uint32(65535), uint32(65535), uint32(65535))
	f.Add(uint32(1), uint32(1), uint32(1), uint32(1), uint32(0), uint32(0), uint32(0), uint32(0))
	f.Add(uint32(1<<30), uint32(1<<30), uint32(16), uint32(1), uint32(7), uint32(8), uint32(9), uint32(0))
	f.Fuzz(func(t *testing.T, c0, c1, c2, c3, k0, k1, k2, k3 uint32) {
		cards := []int32{
			int32(c0%(1<<30)) + 1,
			int32(c1%(1<<30)) + 1,
			int32(c2%(1<<30)) + 1,
			int32(c3%(1<<30)) + 1,
		}
		total := 0
		for _, c := range cards {
			total += bits.Len32(uint32(c) - 1)
		}
		kp, ok := newKeyPackerFromCards(cards)
		if want := total <= 64; ok != want {
			t.Fatalf("cards %v (%d bits): packer ok=%v, want %v", cards, total, ok, want)
		}
		if !ok {
			return
		}
		codes := []int32{
			int32(k0 % uint32(cards[0])),
			int32(k1 % uint32(cards[1])),
			int32(k2 % uint32(cards[2])),
			int32(k3 % uint32(cards[3])),
		}
		k := kp.pack(codes)
		out := make([]int32, len(codes))
		kp.unpack(k, out)
		for i := range codes {
			if out[i] != codes[i] {
				t.Fatalf("cards %v codes %v: unpack dim %d = %d", cards, codes, i, out[i])
			}
		}
		lk := kp.legacyKey(nil, k)
		if len(lk) != 4*len(codes) {
			t.Fatalf("legacy key length %d, want %d", len(lk), 4*len(codes))
		}
		for i := range codes {
			if got := int32(binary.LittleEndian.Uint32(lk[i*4:])); got != codes[i] {
				t.Fatalf("cards %v codes %v: legacy key dim %d = %d", cards, codes, i, got)
			}
		}
	})
}

// FuzzSpillRecCodec round-trips the spill record codec over arbitrary
// keys and accumulator states (including NaN/Inf components, compared
// by bit pattern).
func FuzzSpillRecCodec(f *testing.F) {
	packed := make([]byte, 8)
	binary.LittleEndian.PutUint64(packed, 0xfeedfacecafebeef)
	f.Add(packed, 1.5, 2.5, true, 0)
	wide := bytes.Repeat([]byte{0xff, 0x00, 0xab, 0x7f}, 5) // 20-byte fallback-width key
	f.Add(wide, math.Inf(1), math.NaN(), false, 3)
	f.Fuzz(func(t *testing.T, key []byte, a, b float64, set bool, pad int) {
		if len(key) == 0 || len(key) > 256 {
			return
		}
		if pad < 0 || pad > 64 {
			pad = 0
		}
		keyLen := len(key)
		buf := make([]byte, pad+keyLen+spillRecTail)
		in := accum{a: a, b: b, set: set}
		putRec(buf, pad, keyLen, key, in)
		gotKey, got := getRec(buf, pad, keyLen)
		if !bytes.Equal(gotKey, key) {
			t.Fatalf("key round-trip: got %x want %x", gotKey, key)
		}
		if math.Float64bits(got.a) != math.Float64bits(in.a) ||
			math.Float64bits(got.b) != math.Float64bits(in.b) ||
			got.set != in.set {
			t.Fatalf("accum round-trip: got %+v want %+v", got, in)
		}
	})
}

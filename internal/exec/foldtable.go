package exec

import (
	"encoding/binary"
	"sort"

	"mdxopt/internal/mem"
	"mdxopt/internal/query"
)

// Open-addressing fold table.
//
// foldTable is the packed-key counterpart of aggTable: the aggregation
// state of one pipeline whose group-by key fits a uint64 (see pack.go).
// Instead of a Go map keyed by the key's byte string it is a flat
// power-of-two slot array probed linearly from hash64(key) — one
// find-or-insert probe per tuple, no per-tuple key encode, no string
// conversion, and no allocation in the steady state (inserts allocate
// only at the amortized rehash points, and rehashing stops once the
// group domain is populated).
//
// The memory and spill disciplines match aggTable exactly:
//
//   - the slot slab is charged to the pipeline's broker reservation;
//     a rehash charges the new slab (TryGrow) before releasing the old
//     one, so the broker's peak covers the transient double residency;
//   - a denied grant triggers the same grace-hash partitioned spill
//     (spillFiles, with 8-byte keys), the probe hash routing each
//     record to its partition so a key's records stay in one partition
//     in arrival order;
//   - finalization decodes packed keys back to the canonical byte-key
//     form (keyPacker.legacyKey) and sorts on it, so results are
//     byte-identical to the byte-key path whichever one ran.
const (
	// foldInitialSlots is the initial slot-array capacity. Its slab
	// (foldInitialSlots*foldSlotBytes) is also the per-entry portion of
	// a packed spill's merge floor: every merge sub-pass gets one
	// starting slab without a fresh grant, so merges always progress.
	foldInitialSlots = 64
	// foldSlotBytes is the charged size of one slot (unsafe.Sizeof is
	// avoided so the plan estimator can mirror the constant verbatim).
	foldSlotBytes = 32
)

// foldSlot is one group's inline state: the packed key and the
// accumulator components, flattened to keep the slot at 32 bytes.
type foldSlot struct {
	key  uint64
	a, b float64
	set  bool
	used bool
}

// foldSlotMerge folds delta d into slot s under agg, mirroring
// mergeAccum on the inline accumulator fields.
func foldSlotMerge(agg query.Agg, s *foldSlot, d accum) {
	if !d.set {
		return
	}
	if !s.set {
		s.a, s.b, s.set = d.a, d.b, true
		return
	}
	switch agg {
	case query.Sum, query.Count:
		s.a += d.a
	case query.Min:
		if d.a < s.a {
			s.a = d.a
		}
	case query.Max:
		if d.a > s.a {
			s.a = d.a
		}
	case query.Avg:
		s.a += d.a
		s.b += d.b
	}
}

// foldTable is a pipeline's packed-key aggregation state: an
// open-addressing table under a broker reservation until the budget
// runs out, partitioned spill files afterwards.
type foldTable struct {
	agg    query.Agg
	kp     *keyPacker
	res    *mem.Reservation // nil: untracked (no broker)
	dir    string
	fanout int

	slots  []foldSlot
	mask   uint64
	n      int   // occupied slots
	growAt int   // rehash threshold (3/4 load)
	held   int64 // slab bytes charged on res
	// floorBytes is slab capacity covered by a spill grant's merge
	// floor instead of fresh grants; non-zero only for the transient
	// tables of merge sub-passes.
	floorBytes int64
	// floorHeld is the single-partition spill floor pre-reserved at
	// construction (0 when the broker denied it); see aggTable.
	floorHeld int64

	sp *spillFiles // nil until the first denied grant
	kb [8]byte     // spill record key scratch

	spillBytes int64
	spillParts int64
}

func newFoldTable(env *Env, agg query.Agg, kp *keyPacker, tag string) *foldTable {
	t := &foldTable{
		agg:    agg,
		kp:     kp,
		res:    env.Mem.Reserve(tag),
		dir:    env.spillDir(),
		fanout: env.spillFanout(),
	}
	if fl := spillFloorBytes(foldInitialSlots * foldSlotBytes); t.res.TryGrow(fl) {
		t.floorHeld = fl
	}
	return t
}

// find returns the slot holding key, or nil.
func (t *foldTable) find(key uint64) *foldSlot {
	if t.slots == nil {
		return nil
	}
	i := hash64(key) & t.mask
	for {
		s := &t.slots[i]
		if !s.used {
			return nil
		}
		if s.key == key {
			return s
		}
		i = (i + 1) & t.mask
	}
}

// insert adds a key known to be absent, reporting false — with the
// table unchanged — when the broker denies the growth it needs.
func (t *foldTable) insert(key uint64, d accum) bool {
	if t.slots == nil || t.n == t.growAt {
		newCap := foldInitialSlots
		if t.slots != nil {
			newCap = len(t.slots) * 2
		}
		if !t.grow(newCap) {
			return false
		}
	}
	i := hash64(key) & t.mask
	for t.slots[i].used {
		i = (i + 1) & t.mask
	}
	s := &t.slots[i]
	s.key, s.a, s.b, s.set, s.used = key, d.a, d.b, d.set, true
	t.n++
	return true
}

// grow rehashes into a slab of newCap slots. The new slab is charged
// before the old one is released: both are resident during the rehash,
// and the broker's peak must cover what the process actually holds.
func (t *foldTable) grow(newCap int) bool {
	charge := int64(newCap)*foldSlotBytes - t.floorBytes
	if charge < 0 {
		charge = 0
	}
	if !t.res.TryGrow(charge) {
		return false
	}
	old := t.slots
	t.slots = make([]foldSlot, newCap)
	t.mask = uint64(newCap - 1)
	t.growAt = newCap * 3 / 4
	for i := range old {
		s := &old[i]
		if !s.used {
			continue
		}
		j := hash64(s.key) & t.mask
		for t.slots[j].used {
			j = (j + 1) & t.mask
		}
		t.slots[j] = *s
	}
	t.res.Shrink(t.held)
	t.held = charge
	return true
}

// fold is the kernel's per-group entry point: find-or-insert the key
// and merge the delta, spilling when the broker refuses table growth.
func (t *foldTable) fold(key uint64, d accum) error {
	if t.sp != nil {
		return t.writeRec(key, d)
	}
	if s := t.find(key); s != nil {
		foldSlotMerge(t.agg, s, d)
		return nil
	}
	if t.insert(key, d) {
		return nil
	}
	if err := t.startSpill(); err != nil {
		return err
	}
	return t.writeRec(key, d)
}

// startSpill switches the table to write-through mode: resident slots
// are flushed as partial-accumulator records and the slab's memory is
// returned to the broker (the same trade ordering as aggTable — the
// slab's bytes vacate the space the spill buffers then draw on).
func (t *foldTable) startSpill() error {
	t.res.Shrink(t.held)
	t.held = 0
	sp, err := newSpillFiles(t.dir, 8, t.fanout, foldInitialSlots*foldSlotBytes, t.res, t.floorHeld)
	if err != nil {
		return err
	}
	t.floorHeld = 0 // ownership moves to sp.bufHeld
	t.sp = sp
	t.spillParts += int64(len(sp.parts))
	for i := range t.slots {
		s := &t.slots[i]
		if !s.used {
			continue
		}
		if err := t.writeRec(s.key, accum{a: s.a, b: s.b, set: s.set}); err != nil {
			return err
		}
	}
	t.slots = nil
	t.n = 0
	return nil
}

// writeRec appends one delta record, routed to its partition by the
// same hash that drives the table's probe sequence — a key's records
// land in one partition in arrival order, which is what makes the
// merged fold identical to the in-memory one.
func (t *foldTable) writeRec(key uint64, ac accum) error {
	binary.LittleEndian.PutUint64(t.kb[:], key)
	pi := int(hash64(key) % uint64(len(t.sp.parts)))
	if err := t.sp.write(pi, t.kb[:], ac); err != nil {
		return err
	}
	t.spillBytes += int64(t.sp.recSize)
	return nil
}

// mergeFrom folds another fold table's state into t (parallel scan
// workers merging into the main pipeline). Spilled source records are
// replayed in write order; t itself may spill while absorbing them.
func (t *foldTable) mergeFrom(o *foldTable) error {
	if o.sp == nil {
		for i := range o.slots {
			s := &o.slots[i]
			if !s.used {
				continue
			}
			if err := t.fold(s.key, accum{a: s.a, b: s.b, set: s.set}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := o.sp.flushBufs(); err != nil {
		return err
	}
	for pi := range o.sp.parts {
		err := o.sp.readPart(pi, o.sp.parts[pi].pages, func(key []byte, ac accum) error {
			return t.fold(binary.LittleEndian.Uint64(key), ac)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// pairs returns every group fully merged as canonical byte-key pairs,
// sorted exactly as the byte-key path sorts them. Spilled partitions
// are merged one at a time (overflow sub-passes handle partitions that
// alone exceed the budget).
func (t *foldTable) pairs() ([]aggPair, error) {
	var out []aggPair
	if t.sp == nil {
		out = make([]aggPair, 0, t.n)
		out = t.appendPairs(out)
	} else {
		if err := t.sp.flushBufs(); err != nil {
			return nil, err
		}
		t.sp.releaseBufs()
		for pi := range t.sp.parts {
			var err error
			out, err = t.mergePartition(pi, out)
			if err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out, nil
}

// appendPairs decodes every resident slot to its canonical byte key
// and appends the pairs to out.
func (t *foldTable) appendPairs(out []aggPair) []aggPair {
	for i := range t.slots {
		s := &t.slots[i]
		if !s.used {
			continue
		}
		out = append(out, aggPair{
			key: string(t.kp.legacyKey(nil, s.key)),
			ac:  accum{a: s.a, b: s.b, set: s.set},
		})
	}
	return out
}

// mergePartition replays one partition's records into a transient fold
// table, diverting keys the broker has no room for into an overflow
// partition consumed by a further sub-pass. The transient table's
// initial slab is covered by the spill grant's merge floor, so every
// sub-pass absorbs at least growAt keys without a fresh grant and the
// merge always terminates.
//
// Diversion is sticky within a sub-pass, exactly as in
// aggTable.mergePartition: after the first denial every key not
// already resident goes to the overflow writer without consulting the
// broker again, so a key can never surface twice with a split
// aggregate when a concurrent pipeline releases memory mid-merge.
func (t *foldTable) mergePartition(pi int, out []aggPair) ([]aggPair, error) {
	pages := t.sp.parts[pi].pages
	for len(pages) > 0 {
		mt := &foldTable{
			agg:        t.agg,
			kp:         t.kp,
			res:        t.res,
			floorBytes: foldInitialSlots * foldSlotBytes,
		}
		var overflow *spillWriter
		err := t.sp.readPart(pi, pages, func(key []byte, ac accum) error {
			k := binary.LittleEndian.Uint64(key)
			if s := mt.find(k); s != nil {
				foldSlotMerge(t.agg, s, ac)
				return nil
			}
			if overflow == nil && mt.insert(k, ac) {
				return nil
			}
			if overflow == nil {
				overflow = t.sp.newWriter()
			}
			t.spillBytes += int64(t.sp.recSize)
			return overflow.write(key, ac)
		})
		if err != nil {
			return nil, err
		}
		out = mt.appendPairs(out)
		t.res.Shrink(mt.held)
		pages = nil
		if overflow != nil {
			var ferr error
			pages, ferr = overflow.finish()
			if ferr != nil {
				return nil, ferr
			}
		}
	}
	return out, nil
}

// memStats reports the table's contribution to the pipeline's memory
// counters: reservation high-water mark, spill bytes, partitions.
func (t *foldTable) memStats() (peak, spillBytes, spillParts int64) {
	return t.res.Peak(), t.spillBytes, t.spillParts
}

// close releases the reservation and destroys the temp spill file. It
// is idempotent and nil-safe.
func (t *foldTable) close() {
	if t == nil {
		return
	}
	if t.sp != nil {
		t.sp.destroy()
		t.sp = nil
	}
	t.res.Release()
	t.slots = nil
	t.held = 0
}

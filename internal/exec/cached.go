package exec

import (
	"fmt"

	"mdxopt/internal/query"
	"mdxopt/internal/rescache"
)

// RollupCached answers q from a semantic result-cache entry: every
// cached row's member codes are rolled up the dimension hierarchies
// from the entry's levels to the query's, filtered by the query's
// predicates, and the final values are re-aggregated. No page is read —
// the operator's cost is CPU linear in the entry's rows (counted in
// Stats.CacheRows) — which is what makes a cache hit worth compiling
// into the plan.
//
// Correctness needs the entry to Answer q (the optimizer guarantees it,
// and it is re-checked here) and the aggregate to be decomposable from
// final values: SUM and COUNT merge by addition, MIN/MAX by min/max.
// AVG is excluded by the cache itself. The aggregation state is an
// ordinary aggTable, so it reserves broker memory and may spill like
// any other pipeline's; the output ordering (raw key bytes) matches the
// scan operators', keeping cache-served results byte-identical to
// uncached execution.
//
// The stats accumulated into stats are entirely the query's own work —
// there is no shared pass to attribute. Per-query cancellation
// (Env.QueryCtx) detaches the rollup like any pipeline: the result
// comes back with Err set instead of failing the caller.
func RollupCached(env *Env, e *rescache.Entry, q *query.Query, stats *Stats) (*Result, error) {
	if !e.Answers(q, e.Gen) {
		return nil, fmt.Errorf("exec: cache entry %s cannot answer %s", e.Name, q)
	}
	nd := q.Schema.NumDims()
	var qctx = func() <-chan struct{} {
		if env.QueryCtx == nil {
			return nil
		}
		ctx := env.QueryCtx(q)
		if ctx == nil {
			return nil
		}
		return ctx.Done()
	}()
	var res *Result
	var own Stats
	err := env.measure(&own, func() error {
		// The rollup folds through the same kernel selection as the
		// scan pipelines: the packed open-addressing table when the
		// query's key fits a word, the byte-key map otherwise.
		var tab *aggTable
		var ftab *foldTable
		kp, packed := newKeyPacker(q.Schema, q.Levels)
		if env.NoPackedKeys {
			packed = false
		}
		if packed {
			ftab = newFoldTable(env, q.Agg, kp, "rollup:"+q.Name)
			defer ftab.close()
		} else {
			tab = newAggTable(env, q.Agg, 4*nd, "rollup:"+q.Name)
			defer tab.close()
		}
		sets := make([][]bool, nd)
		for d := range sets {
			sets[d] = q.MemberSet(d)
		}
		key := make([]byte, 4*nd)
		detached := false
	rows:
		for ri := range e.Rows {
			if ri%checkEvery == 0 {
				if err := env.canceled(); err != nil {
					return err
				}
				if qctx != nil {
					select {
					case <-qctx:
						detached = true
						break rows
					default:
					}
				}
			}
			row := &e.Rows[ri]
			own.CacheRows++
			qualifies := true
			var pk uint64
			for d := 0; d < nd; d++ {
				code := q.Schema.Dims[d].RollUp(row.Keys[d], e.Levels[d], q.Levels[d])
				if sets[d] != nil && !sets[d][code] {
					qualifies = false
					break
				}
				if packed {
					pk |= uint64(uint32(code)) << kp.shifts[d]
				} else {
					key[d*4] = byte(code)
					key[d*4+1] = byte(code >> 8)
					key[d*4+2] = byte(code >> 16)
					key[d*4+3] = byte(code >> 24)
				}
			}
			if !qualifies {
				continue
			}
			own.TuplesAgg++
			if packed {
				own.PackedFolds++
				if err := ftab.fold(pk, accum{a: row.Value, set: true}); err != nil {
					return err
				}
			} else if err := tab.add(key, accum{a: row.Value, set: true}); err != nil {
				return err
			}
		}
		if detached {
			res = &Result{Query: q, Err: env.QueryCtx(q).Err(), Cached: true}
		} else {
			var pairs []aggPair
			var err error
			if packed {
				pairs, err = ftab.pairs()
			} else {
				pairs, err = tab.pairs()
			}
			if err != nil {
				return err
			}
			groups := make([]Group, len(pairs))
			for i, pr := range pairs {
				k := pr.key
				g := Group{Keys: make([]int32, nd), Value: pr.ac.a}
				for d := 0; d < nd; d++ {
					g.Keys[d] = int32(uint32(k[d*4]) | uint32(k[d*4+1])<<8 | uint32(k[d*4+2])<<16 | uint32(k[d*4+3])<<24)
				}
				groups[i] = g
			}
			res = &Result{Query: q, Groups: groups, Cached: true}
		}
		var peak, sb, sp int64
		if packed {
			peak, sb, sp = ftab.memStats()
		} else {
			peak, sb, sp = tab.memStats()
		}
		own.PeakMemory += peak
		own.SpillBytes += sb
		own.SpillPartitions += sp
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Own = own
	stats.Add(own)
	return res, nil
}

package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"mdxopt/internal/bitmap"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/table"
)

// Vectorized index-path tests: the word-at-a-time routing kernel
// (route.go) against naive per-bit oracles, and the vectorized
// SharedIndex/SharedMixed operators against the Env.NoVectorIndex
// scalar ablation — byte-identical results and deterministic counters
// at every worker width.

// naiveExpand collects the set bits of bs within [from, to) as offsets
// relative to from, the per-bit oracle for maskedWords+expandWords.
func naiveExpand(bs *bitmap.Bitset, from, to int64) []int32 {
	var out []int32
	for i := from; i < to; i++ {
		if bs.Get(i) {
			out = append(out, int32(i-from))
		}
	}
	return out
}

// naiveRoute computes the batch slots of union rows in [from, to) that
// a query's bitmap also covers: the slot is the row's rank among the
// union's set bits of the range.
func naiveRoute(union, q *bitmap.Bitset, from, to int64) []int32 {
	var out []int32
	slot := int32(0)
	for i := from; i < to; i++ {
		if !union.Get(i) {
			continue
		}
		if q.Get(i) {
			out = append(out, slot)
		}
		slot++
	}
	return out
}

func eqInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRoutingKernelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	for trial := 0; trial < 200; trial++ {
		n := int64(1 + rng.Intn(700))
		union := bitmap.New(n)
		q := bitmap.New(n)
		density := rng.Float64()
		for i := int64(0); i < n; i++ {
			if rng.Float64() < density {
				union.Set(i)
				if rng.Intn(2) == 0 {
					q.Set(i)
				}
			}
		}
		// Random page-like ranges, including word-straddling and
		// word-aligned boundaries.
		from := int64(rng.Intn(int(n)))
		to := from + 1 + int64(rng.Intn(int(n-from)))
		if trial%5 == 0 {
			from = from / 64 * 64 // aligned start
		}

		var uwords []uint64
		uwords, w0 := maskedWords(uwords, union.Words(), from, to)
		sel := expandWords(nil, uwords, w0, from)
		if want := naiveExpand(union, from, to); !eqInt32(sel, want) {
			t.Fatalf("trial %d: expand [%d,%d) = %v, want %v", trial, from, to, sel, want)
		}
		hits := routeWords(nil, uwords, q.Words(), w0)
		if want := naiveRoute(union, q, from, to); !eqInt32(hits, want) {
			t.Fatalf("trial %d: route [%d,%d) = %v, want %v", trial, from, to, hits, want)
		}
	}
}

func TestRoutingKernelEdgeCases(t *testing.T) {
	n := int64(200)
	empty := bitmap.New(n)
	full := bitmap.NewFull(n)

	// Empty union: no words set, nothing expanded or routed.
	uw, w0 := maskedWords(nil, empty.Words(), 10, 150)
	if sel := expandWords(nil, uw, w0, 10); len(sel) != 0 {
		t.Fatalf("empty union expanded %v", sel)
	}
	if hits := routeWords(nil, uw, full.Words(), w0); len(hits) != 0 {
		t.Fatalf("empty union routed %v", hits)
	}

	// Full union, full query: the dense fast path must produce the
	// identity selection.
	uw, w0 = maskedWords(nil, full.Words(), 63, 129)
	sel := expandWords(nil, uw, w0, 63)
	hits := routeWords(nil, uw, full.Words(), w0)
	if len(sel) != 66 || len(hits) != 66 {
		t.Fatalf("full range [63,129): %d expanded, %d routed, want 66", len(sel), len(hits))
	}
	for i := range sel {
		if sel[i] != int32(i) || hits[i] != int32(i) {
			t.Fatalf("full range slot %d: sel=%d hits=%d", i, sel[i], hits[i])
		}
	}

	// Full union, empty query: everything fetched, nothing routed.
	if hits := routeWords(nil, uw, empty.Words(), w0); len(hits) != 0 {
		t.Fatalf("empty query routed %v", hits)
	}

	// Single-bit range.
	one := bitmap.New(n)
	one.Set(64)
	uw, w0 = maskedWords(nil, one.Words(), 64, 65)
	if sel := expandWords(nil, uw, w0, 64); !eqInt32(sel, []int32{0}) {
		t.Fatalf("single-bit range expanded %v", sel)
	}

	if sel := identitySel(nil, 4); !eqInt32(sel, []int32{0, 1, 2, 3}) {
		t.Fatalf("identitySel = %v", sel)
	}
}

// randIndexQueries synthesizes index-answerable queries on the A'B'C'D
// view: indexed predicates on A/B/C of varying density (sparse unions
// through near-full ones) and, half the time, a residual D filter that
// only the fetch-side pass tests can apply.
func randIndexQueries(t *testing.T, db *star.Database, rng *rand.Rand, n int) []*query.Query {
	t.Helper()
	schema := db.Schema
	levels := []int{1, 1, 1, 0}
	out := make([]*query.Query, n)
	for qi := range out {
		preds := make([]query.Predicate, schema.NumDims())
		// Restrict 1–3 of the indexed dims A, B, C.
		restricted := 1 + rng.Intn(3)
		dims := rng.Perm(3)[:restricted]
		for _, dim := range dims {
			card := int(schema.Dims[dim].Card(levels[dim]))
			k := 1 + rng.Intn(card) // 1 member (sparse) .. full (dense)
			members := rng.Perm(card)[:k]
			ms := make([]int32, k)
			for i, m := range members {
				ms[i] = int32(m)
			}
			preds[dim] = query.Predicate{Members: ms}
		}
		if rng.Intn(2) == 0 { // residual D filter
			card := int(schema.Dims[3].Card(levels[3]))
			k := 1 + rng.Intn(card)
			members := rng.Perm(card)[:k]
			ms := make([]int32, k)
			for i, m := range members {
				ms[i] = int32(m)
			}
			preds[3] = query.Predicate{Members: ms}
		}
		q, err := query.New(fmt.Sprintf("RQ%d", qi), schema, levels, preds)
		if err != nil {
			t.Fatalf("query.New: %v", err)
		}
		out[qi] = q
	}
	return out
}

// TestSharedIndexVectorScalarEquivalence is the randomized equivalence
// suite: vectorized SharedIndex at workers {1,2,4,8} against the
// Env.NoVectorIndex scalar ablation — results byte-identical and every
// deterministic counter equal, across sparse and dense unions, single
// and multi query sets, and residual-dim filters.
func TestSharedIndexVectorScalarEquivalence(t *testing.T) {
	db, qs := testDB(t)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	if view == nil {
		t.Fatal("A'B'C'D view not materialized")
	}
	rng := rand.New(rand.NewSource(98))

	paper := []*query.Query{qs["Q5"], qs["Q6"], qs["Q7"], qs["Q8"]}
	for trial := 0; trial < 8; trial++ {
		var group []*query.Query
		switch trial {
		case 0: // single query (union aliases its bitmap)
			group = paper[:1]
		case 1: // the paper's index set
			group = paper
		default: // random sets, 2–5 queries
			group = randIndexQueries(t, db, rng, 2+rng.Intn(4))
		}

		scalarEnv := NewEnv(db)
		scalarEnv.NoVectorIndex = true
		var scalarSt Stats
		baseline, err := SharedIndex(scalarEnv, view, group, &scalarSt)
		if err != nil {
			t.Fatalf("trial %d scalar: %v", trial, err)
		}

		for _, workers := range []int{1, 2, 4, 8} {
			env := NewEnv(db)
			env.Parallelism = workers
			env.MorselPages = 1 + rng.Intn(3)
			var st Stats
			results, err := SharedIndex(env, view, group, &st)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			checkIdentical(t, results, baseline)
			if scanCounters(st) != scanCounters(scalarSt) {
				t.Fatalf("trial %d workers=%d: counters %v, scalar %v",
					trial, workers, scanCounters(st), scanCounters(scalarSt))
			}
			// Per-query own stats must route identically too.
			for i := range results {
				if g, w := scanCounters(results[i].Own), scanCounters(baseline[i].Own); g != w {
					t.Fatalf("trial %d workers=%d %s: own counters %v, scalar %v",
						trial, workers, group[i].Name, g, w)
				}
			}
		}
	}
}

// TestSharedMixedVectorScalarEquivalence: the mixed scan's vectorized
// bitmap filters against the per-tuple Get loop, at every width.
func TestSharedMixedVectorScalarEquivalence(t *testing.T) {
	db, qs := testDB(t)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	rng := rand.New(rand.NewSource(99))

	for trial := 0; trial < 4; trial++ {
		hash := []*query.Query{qs["Q3"]}
		index := randIndexQueries(t, db, rng, 1+rng.Intn(3))
		if trial == 0 {
			index = []*query.Query{qs["Q7"], qs["Q8"]}
		}

		scalarEnv := NewEnv(db)
		scalarEnv.NoVectorIndex = true
		var scalarSt Stats
		baseHash, baseIndex, err := SharedMixed(scalarEnv, view, hash, index, &scalarSt)
		if err != nil {
			t.Fatalf("trial %d scalar: %v", trial, err)
		}

		for _, workers := range []int{1, 2, 4, 8} {
			env := NewEnv(db)
			env.Parallelism = workers
			env.MorselPages = 1
			var st Stats
			gotHash, gotIndex, err := SharedMixed(env, view, hash, index, &st)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			checkIdentical(t, gotHash, baseHash)
			checkIdentical(t, gotIndex, baseIndex)
			if scanCounters(st) != scanCounters(scalarSt) {
				t.Fatalf("trial %d workers=%d: counters %v, scalar %v",
					trial, workers, scanCounters(st), scanCounters(scalarSt))
			}
		}
	}
}

// TestSharedIndexSpillEquivalence: a tight budget forces the probe
// workers' aggregation tables through the spill path; results must
// match the ungoverned scalar run and the broker must drain.
func TestSharedIndexSpillEquivalence(t *testing.T) {
	db, qs := testDB(t)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	group := []*query.Query{qs["Q5"], qs["Q6"], qs["Q7"], qs["Q8"]}

	scalarEnv := NewEnv(db)
	scalarEnv.NoVectorIndex = true
	var baseSt Stats
	baseline, err := SharedIndex(scalarEnv, view, group, &baseSt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		env, broker := budgetedEnv(t, db, 1<<12)
		env.Parallelism = workers
		env.MorselPages = 1
		var st Stats
		results, err := SharedIndex(env, view, group, &st)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkIdentical(t, results, baseline)
		checkDrained(t, broker)
	}
}

// TestSharedIndexEmptyUnion drives the vectorized probe with an
// all-zero union: no page may be pinned, no counter may move, and —
// matching the scalar path, which never polls an empty union — no
// cancellation checkpoint may fire.
func TestSharedIndexEmptyUnion(t *testing.T) {
	db, qs := testDB(t)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	env := NewEnv(db)
	env.Ctx = canceledCtx() // would abort at the first checkpoint

	var st Stats
	cache := newLookupCache(env, &st)
	defer cache.close()
	p, err := newQueryPipeline(env, &st, cache, qs["Q5"], view)
	if err != nil {
		t.Fatal(err)
	}
	defer p.close()

	empty := bitmap.New(view.Rows())
	ps := &probeShared{
		view:      view,
		union:     empty,
		bitmaps:   []*bitmap.Bitset{empty},
		residuals: [][]int{nil},
		tpp:       int64(view.Heap.TuplesPerPage()),
		rows:      view.Rows(),
	}
	w := newProbeWorker(view, []*queryPipeline{p})
	pages := (ps.rows + ps.tpp - 1) / ps.tpp
	before := db.Pool.Stats()
	if err := ps.probePages(env, w, &st, 0, pages); err != nil {
		t.Fatalf("empty union probe: %v", err)
	}
	if st.TuplesFetched != 0 || st.TuplesAgg != 0 || st.BitTests != 0 {
		t.Fatalf("empty union moved counters: fetched=%d agg=%d tests=%d",
			st.TuplesFetched, st.TuplesAgg, st.BitTests)
	}
	after := db.Pool.Stats()
	if pins := (after.Reads() + after.Hits) - (before.Reads() + before.Hits); pins != 0 {
		t.Fatalf("empty union pinned %d pages", pins)
	}
}

// TestSharedIndexDetachMidProbe cancels one query's context partway
// through a parallel vectorized probe (via a disk-read hook, so the
// cancellation lands with workers in flight): the dead query comes
// back detached, the survivor stays oracle-correct.
func TestSharedIndexDetachMidProbe(t *testing.T) {
	db, qs := testDB(t)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	if err := db.ColdReset(); err != nil {
		t.Fatal(err)
	}
	dead, live := qs["Q5"], qs["Q6"]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	disk := view.Heap.File().Disk()
	var reads atomic.Int64
	disk.SetFault(func(op string, page uint32) error {
		if op == "read" && reads.Add(1) == 4 {
			cancel()
		}
		return nil
	})
	defer disk.SetFault(nil)

	env := NewEnv(db)
	env.Parallelism = 4
	env.MorselPages = 1
	env.QueryCtx = func(q *query.Query) context.Context {
		if q == dead {
			return ctx
		}
		return context.Background()
	}

	var st Stats
	rs, err := SharedIndex(env, view, []*query.Query{dead, live}, &st)
	if err != nil {
		t.Fatalf("SharedIndex: %v", err)
	}
	if !errors.Is(rs[0].Err, context.Canceled) {
		t.Fatalf("dead query's err = %v, want context.Canceled", rs[0].Err)
	}
	if rs[1].Err != nil {
		t.Fatalf("surviving query's result has error: %v", rs[1].Err)
	}
	disk.SetFault(nil)
	env.QueryCtx = nil
	checkAgainstOracle(t, env, rs[1])
}

// TestSharedIndexVectorDiskFault: a read fault during the page-batched
// fetch must surface from the vectorized probe at every width, and the
// broker must drain afterwards.
func TestSharedIndexVectorDiskFault(t *testing.T) {
	db, qs := testDB(t)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	boom := errors.New("injected disk fault")
	group := []*query.Query{qs["Q5"], qs["Q6"]}

	for _, workers := range []int{1, 4} {
		if err := db.ColdReset(); err != nil {
			t.Fatal(err)
		}
		view.Heap.File().Disk().SetFault(func(op string, page uint32) error {
			if op == "read" {
				return boom
			}
			return nil
		})
		env, broker := budgetedEnv(t, db, 1<<30)
		env.Parallelism = workers
		var st Stats
		if _, err := SharedIndex(env, view, group, &st); !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want injected fault", workers, err)
		}
		view.Heap.File().Disk().SetFault(nil)
		checkDrained(t, broker)
	}
	if err := db.ColdReset(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedIndexAllDetachedStopsEarly: with every pipeline detached
// before the probe starts, the vectorized pass stops at its first
// checkpoint instead of fetching the whole union.
func TestSharedIndexAllDetachedStopsEarly(t *testing.T) {
	db, qs := testDB(t)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	env := NewEnv(db)
	env.Parallelism = 4
	env.MorselPages = 1
	env.QueryCtx = func(*query.Query) context.Context { return canceledCtx() }

	var st Stats
	rs, err := SharedIndex(env, view, []*query.Query{qs["Q5"], qs["Q6"]}, &st)
	if err != nil {
		t.Fatalf("SharedIndex: %v", err)
	}
	for i, r := range rs {
		if r.Err == nil {
			t.Fatalf("result %d of an all-canceled pass has no error", i)
		}
	}
	if st.TuplesFetched != 0 {
		t.Fatalf("all pipelines detached but the pass fetched %d tuples", st.TuplesFetched)
	}
}

// TestRouteLoopAllocs pins the vectorized probe's steady-state
// allocation rate at zero, mirroring TestFoldLoopAllocs: once the
// pipelines are warm and the pool holds the union's pages, re-running
// the entire probe must not allocate.
func TestRouteLoopAllocs(t *testing.T) {
	db, qs := testDB(t)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	env := NewEnv(db)

	var st Stats
	cache := newLookupCache(env, &st)
	defer cache.close()
	group := []*query.Query{qs["Q5"], qs["Q6"], qs["Q7"], qs["Q8"]}
	pipelines := make([]*queryPipeline, len(group))
	bitmaps := make([]*bitmap.Bitset, len(group))
	residuals := make([][]int, len(group))
	for i, q := range group {
		p, err := newQueryPipeline(env, &st, cache, q, view)
		if err != nil {
			t.Fatal(err)
		}
		defer p.close()
		pipelines[i] = p
		bs, residual, err := pipelineBitmap(env, view, p, &st)
		if err != nil {
			t.Fatal(err)
		}
		bitmaps[i] = bs
		residuals[i] = residual
	}
	union := bitmap.New(view.Rows())
	union.CopyFrom(bitmaps[0])
	for _, bs := range bitmaps[1:] {
		bs.OrInto(union)
	}
	ps := &probeShared{
		view: view, union: union, bitmaps: bitmaps, residuals: residuals,
		tpp: int64(view.Heap.TuplesPerPage()), rows: view.Rows(),
	}
	w := newProbeWorker(view, pipelines)
	pages := (ps.rows + ps.tpp - 1) / ps.tpp

	probe := func() {
		var pst Stats
		if err := ps.probePages(env, w, &pst, 0, pages); err != nil {
			t.Fatal(err)
		}
	}
	probe() // warm-up: pool pages resident, tables grown, scratch sized
	if allocs := testing.AllocsPerRun(5, probe); allocs != 0 {
		t.Fatalf("steady-state probe pass allocates %v objects, want 0", allocs)
	}
	for _, p := range pipelines {
		if p.ioErr != nil {
			t.Fatal(p.ioErr)
		}
	}
}

// FuzzSelVecExpand fuzzes the word→selection-vector kernels against
// the per-bit oracles: arbitrary union/query words and an arbitrary
// sub-word range must expand and route exactly like bit-at-a-time
// iteration.
func FuzzSelVecExpand(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint16(0), uint16(128))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), uint64(0x5555555555555555), uint16(3), uint16(190))
	f.Add(uint64(1)<<63, uint64(1), uint64(1)<<63, uint64(1)<<63, uint16(63), uint16(65))
	f.Fuzz(func(t *testing.T, u0, u1, u2, q0 uint64, a, b uint16) {
		const n = 192 // three words
		union := bitmap.New(n)
		q := bitmap.New(n)
		fill := func(dst *bitmap.Bitset, w uint64, wi int) {
			for tz := 0; tz < 64; tz++ {
				if w&(1<<uint(tz)) != 0 {
					dst.Set(int64(wi*64 + tz))
				}
			}
		}
		fill(union, u0, 0)
		fill(union, u1, 1)
		fill(union, u2, 2)
		fill(q, q0, 0)
		fill(q, u1&q0, 1) // correlated middle word
		fill(q, ^u2, 2)   // anti-correlated last word

		from := int64(a) % n
		to := from + 1 + int64(b)%(n-from)

		uw, w0 := maskedWords(nil, union.Words(), from, to)
		sel := expandWords(nil, uw, w0, from)
		if want := naiveExpand(union, from, to); !eqInt32(sel, want) {
			t.Fatalf("expand [%d,%d): got %v, want %v", from, to, sel, want)
		}
		hits := routeWords(nil, uw, q.Words(), w0)
		if want := naiveRoute(union, q, from, to); !eqInt32(hits, want) {
			t.Fatalf("route [%d,%d): got %v, want %v", from, to, hits, want)
		}
		// Routed slots must index into the expanded selection.
		for _, h := range hits {
			if int(h) >= len(sel) {
				t.Fatalf("routed slot %d out of batch of %d", h, len(sel))
			}
		}
	})
}

// BenchmarkBitmapRoute isolates the routing kernel: expand one page's
// union words and route them to 4 query bitmaps, against the scalar
// per-bit equivalent.
func BenchmarkBitmapRoute(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(7))
	union := bitmap.New(n)
	queries := make([]*bitmap.Bitset, 4)
	for i := range queries {
		queries[i] = bitmap.New(n)
	}
	for i := int64(0); i < n; i++ {
		if rng.Float64() < 0.5 {
			union.Set(i)
			queries[rng.Intn(4)].Set(i)
		}
	}
	const pageRows = 170 // one 4KiB page of 24-byte tuples
	b.Run("vectorized", func(b *testing.B) {
		uwords := make([]uint64, 0, pageRows/64+2)
		sel := make([]int32, 0, pageRows)
		hits := make([]int32, 0, pageRows)
		b.ReportAllocs()
		var routed int64
		for i := 0; i < b.N; i++ {
			from := int64(i*pageRows) % (n - pageRows)
			var w0 int
			uwords, w0 = maskedWords(uwords, union.Words(), from, from+pageRows)
			sel = expandWords(sel[:0], uwords, w0, from)
			for _, q := range queries {
				hits = routeWords(hits[:0], uwords, q.Words(), w0)
				routed += int64(len(hits))
			}
		}
		reportRouted(b, routed)
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		var routed int64
		for i := 0; i < b.N; i++ {
			from := int64(i*pageRows) % (n - pageRows)
			for r := from; r < from+pageRows; r++ {
				if !union.Get(r) {
					continue
				}
				for _, q := range queries {
					if q.Get(r) {
						routed++
					}
				}
			}
		}
		reportRouted(b, routed)
	})
}

func reportRouted(b *testing.B, routed int64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(routed)/s, "routed/s")
	}
}

// BenchmarkFetchBatches compares the production paged fetch loop —
// word expansion into a selection vector plus one FetchPage into a
// reused batch, exactly the probe worker's data path — against the
// per-row FetchRows callback, on a warm pool over a half-dense row
// set. The paged variant must not allocate.
func BenchmarkFetchBatches(b *testing.B) {
	db, _ := testDB(b)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	heap := view.Heap
	rows := heap.Count()
	sel := bitmap.New(rows)
	rng := rand.New(rand.NewSource(11))
	for i := int64(0); i < rows; i++ {
		if rng.Float64() < 0.5 {
			sel.Set(i)
		}
	}
	tpp := int64(heap.TuplesPerPage())
	pages := heap.DataPages()
	// Warm the pool.
	if err := heap.FetchBatches(sel.Iterator(), func(*table.Batch, []int32) error { return nil }); err != nil {
		b.Fatal(err)
	}
	b.Run("paged", func(b *testing.B) {
		batch := heap.MakeBatch()
		uwords := make([]uint64, 0, tpp/64+2)
		pageSel := make([]int32, 0, tpp)
		b.ReportAllocs()
		var fetched int64
		for i := 0; i < b.N; i++ {
			for pg := int64(0); pg < pages; pg++ {
				from := pg * tpp
				to := from + tpp
				if to > rows {
					to = rows
				}
				var w0 int
				uwords, w0 = maskedWords(uwords, sel.Words(), from, to)
				pageSel = expandWords(pageSel[:0], uwords, w0, from)
				if len(pageSel) == 0 {
					continue
				}
				if err := heap.FetchPage(batch, pg, pageSel); err != nil {
					b.Fatal(err)
				}
				fetched += int64(len(pageSel))
			}
		}
		reportRouted(b, fetched)
	})
	b.Run("per-row", func(b *testing.B) {
		b.ReportAllocs()
		var fetched int64
		for i := 0; i < b.N; i++ {
			err := heap.FetchRows(sel.Iterator(), func(row int64, keys []int32, ms []float64) error {
				fetched++
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		reportRouted(b, fetched)
	})
}

// TestProbeKernelBenchRuns smokes the probe-kernel harness in both
// representations and checks they fetch the same union.
func TestProbeKernelBenchRuns(t *testing.T) {
	db, qs := testDB(t)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	group := []*query.Query{qs["Q5"], qs["Q6"], qs["Q7"], qs["Q8"]}

	var tuples [2]int64
	for i, scalar := range []bool{false, true} {
		env := NewEnv(db)
		env.NoVectorIndex = scalar
		r, err := ProbeKernelBench(env, view, group, 2)
		if err != nil {
			t.Fatal(err)
		}
		if r.Vectorized != !scalar {
			t.Fatalf("scalar=%v ran vectorized=%v", scalar, r.Vectorized)
		}
		if r.Passes != 2 || r.Tuples <= 0 || r.TuplesPerSec <= 0 {
			t.Fatalf("scalar=%v: implausible result %+v", scalar, r)
		}
		if r.Routed < r.Tuples { // every union tuple belongs to >=1 query
			t.Fatalf("scalar=%v: routed %d < fetched %d", scalar, r.Routed, r.Tuples)
		}
		tuples[i] = r.Tuples
	}
	if tuples[0] != tuples[1] {
		t.Fatalf("representations fetched different unions: %d vs %d", tuples[0], tuples[1])
	}
}

package exec

// Per-query stats attribution for shared passes.
//
// A shared operator evaluates several queries — possibly from several
// independent submissions — in one pass over a base view, so the pass's
// Stats mix work that belongs to everyone (the sequential scan, page
// I/O, lookup builds) with work that belongs to exactly one query (its
// probes, aggregations, fetch routing). Each pipeline counts its own
// non-shared work as it goes; Attribute combines both views into one
// Stats per query: non-shared components exactly, shared components as
// an equal (proportional) split of the pass residual.

// statComponents enumerates every additive component of a Stats as
// int64 cells, in a fixed order. Wall (a time.Duration) rides along as
// its underlying int64.
func statComponents(s *Stats) []*int64 {
	return []*int64{
		&s.IO.SeqReads, &s.IO.RandReads, &s.IO.Writes, &s.IO.Hits,
		&s.IO.Allocs, &s.IO.Evictions, &s.IO.FlushedAll,
		&s.TuplesScanned, &s.TupleProbes, &s.TuplesAgg, &s.TuplesFetched,
		&s.HashBuildRows, &s.BitmapWords, &s.BitTests, &s.CacheRows,
		&s.PackedFolds, &s.PeakMemory, &s.SpillBytes, &s.SpillPartitions,
		(*int64)(&s.Wall),
	}
}

// Attribute splits one shared pass's stats across its queries. own[i]
// is query i's non-shared work as counted by its pipeline; pass is the
// whole pass. Each output is own[i] plus an equal share of every
// component's residual pass - Σown (the shared scan, page I/O, lookup
// builds, wall time — and, on the index path, the union bitmap work).
// The attributions sum back to pass exactly: remainders go to the
// earliest queries.
func Attribute(pass Stats, own []Stats) []Stats {
	n := len(own)
	out := make([]Stats, n)
	if n == 0 {
		return out
	}
	copy(out, own)
	passC := statComponents(&pass)
	sums := make([]int64, len(passC))
	for i := range own {
		oc := statComponents(&own[i])
		for c := range sums {
			sums[c] += *oc[c]
		}
	}
	for i := range out {
		oc := statComponents(&out[i])
		for c := range passC {
			residual := *passC[c] - sums[c]
			if residual <= 0 {
				continue
			}
			share := residual / int64(n)
			if int64(i) < residual%int64(n) {
				share++
			}
			*oc[c] += share
		}
	}
	return out
}

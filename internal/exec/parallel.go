package exec

import (
	"sync"

	"mdxopt/internal/query"
	"mdxopt/internal/star"
)

// Parallel shared scans.
//
// Every aggregate this engine supports is decomposable, so a shared scan
// can be partitioned into contiguous row ranges processed by independent
// workers — each with its own aggregation tables but sharing the
// read-only dimension lookups and filter bitmaps — and the per-worker
// tables merged afterwards. This parallelizes exactly the per-tuple CPU
// the paper's Test 1 identifies as the irreducible cost of the shared
// scan. Enable it with Env.Parallelism.

// workers returns the effective worker count.
func (e *Env) workers() int {
	if e.Parallelism < 1 {
		return 1
	}
	return e.Parallelism
}

// merge folds another pipeline's aggregation table and own-work stats
// into p; both must belong to the same query.
func (p *queryPipeline) merge(o *queryPipeline) {
	p.own.Add(o.own)
	for k, oc := range o.agg {
		cur, ok := p.agg[k]
		if !ok {
			p.agg[k] = oc
			continue
		}
		switch p.q.Agg {
		case query.Sum, query.Count:
			cur.a += oc.a
		case query.Min:
			if oc.a < cur.a {
				cur.a = oc.a
			}
		case query.Max:
			if oc.a > cur.a {
				cur.a = oc.a
			}
		case query.Avg:
			cur.a += oc.a
			cur.b += oc.b
		}
		p.agg[k] = cur
	}
}

// scanPartitions returns the row ranges for n workers over rows rows.
func scanPartitions(rows int64, n int) [][2]int64 {
	if n < 1 {
		n = 1
	}
	out := make([][2]int64, 0, n)
	chunk := rows / int64(n)
	var from int64
	for w := 0; w < n; w++ {
		to := from + chunk
		if w == n-1 {
			to = rows
		}
		out = append(out, [2]int64{from, to})
		from = to
	}
	return out
}

// parallelScan runs process over the view's rows with env.workers()
// partitions. mkState builds one worker's private state (pipelines);
// check runs at the worker's cancellation checkpoints (global context
// plus per-pipeline detachment — a worker whose pipelines have all
// detached stops early with errDetached, which is not an error);
// process handles one tuple; afterwards the per-worker stats and states
// are merged via mergeState. Lookups and bitmaps must be built before
// calling (they are shared read-only).
func parallelScan(
	env *Env,
	view *star.View,
	stats *Stats,
	mkState func() (any, error),
	check func(state any) error,
	process func(state any, st *Stats, row int64, keys []int32, vals [4]float64),
	mergeState func(state any),
) error {
	n := env.workers()
	parts := scanPartitions(view.Rows(), n)

	states := make([]any, len(parts))
	for i := range states {
		s, err := mkState()
		if err != nil {
			return err
		}
		states[i] = s
	}

	workerStats := make([]Stats, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &workerStats[w]
			errs[w] = view.Heap.ScanRange(parts[w][0], parts[w][1],
				func(row int64, keys []int32, measures []float64) error {
					if st.TuplesScanned%checkEvery == 0 {
						if err := check(states[w]); err != nil {
							return err
						}
					}
					st.TuplesScanned++
					process(states[w], st, row, keys, star.TupleAggregates(view, measures))
					return nil
				})
		}(w)
	}
	wg.Wait()
	for w := range parts {
		if errs[w] != nil && errs[w] != errDetached {
			return errs[w]
		}
	}
	for w := range parts {
		stats.Add(workerStats[w])
		mergeState(states[w])
	}
	return nil
}

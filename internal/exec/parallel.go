package exec

import (
	"sync"

	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/table"
)

// Parallel shared scans.
//
// Every aggregate this engine supports is decomposable, so a shared scan
// can be partitioned into contiguous row ranges processed by independent
// workers — each with its own aggregation tables but sharing the
// read-only dimension lookups and filter bitmaps — and the per-worker
// tables merged afterwards. This parallelizes exactly the per-tuple CPU
// the paper's Test 1 identifies as the irreducible cost of the shared
// scan. Enable it with Env.Parallelism.

// workers returns the effective worker count.
func (e *Env) workers() int {
	if e.Parallelism < 1 {
		return 1
	}
	return e.Parallelism
}

// merge folds another pipeline's aggregation table and own-work stats
// into p; both must belong to the same query.
func (p *queryPipeline) merge(o *queryPipeline) {
	p.own.Add(o.own)
	for k, oc := range o.agg {
		cur, ok := p.agg[k]
		if !ok {
			p.agg[k] = oc
			continue
		}
		switch p.q.Agg {
		case query.Sum, query.Count:
			cur.a += oc.a
		case query.Min:
			if oc.a < cur.a {
				cur.a = oc.a
			}
		case query.Max:
			if oc.a > cur.a {
				cur.a = oc.a
			}
		case query.Avg:
			cur.a += oc.a
			cur.b += oc.b
		}
		p.agg[k] = cur
	}
}

// scanPartitions returns the row ranges for n workers over rows rows,
// aligned to page boundaries (tpp tuples per page) so that no two
// workers ever share a page: whole pages are dealt out as evenly as
// possible (the first pages%n workers get one extra), which both keeps
// the per-worker work balanced and prevents a boundary page from being
// fetched — and its read double-counted — by two workers.
func scanPartitions(rows int64, n, tpp int) [][2]int64 {
	if n < 1 {
		n = 1
	}
	if tpp < 1 {
		tpp = 1
	}
	pages := (rows + int64(tpp) - 1) / int64(tpp)
	out := make([][2]int64, 0, n)
	var fromPage int64
	for w := 0; w < n; w++ {
		share := pages / int64(n)
		if int64(w) < pages%int64(n) {
			share++
		}
		toPage := fromPage + share
		from := fromPage * int64(tpp)
		to := toPage * int64(tpp)
		if from > rows {
			from = rows
		}
		if to > rows || w == n-1 {
			to = rows
		}
		out = append(out, [2]int64{from, to})
		fromPage = toPage
	}
	return out
}

// parallelScan runs processBatch over the view's rows with
// env.workers() page-aligned partitions. mkState builds one worker's
// private state (pipelines); check runs at the worker's cancellation
// checkpoints — once per page batch — (global context plus per-pipeline
// detachment: a worker whose pipelines have all detached stops early
// with errDetached, which is not an error); processBatch handles one
// decoded page of tuples; afterwards the per-worker stats and states
// are merged via mergeState. Lookups and bitmaps must be built before
// calling (they are shared read-only).
func parallelScan(
	env *Env,
	view *star.View,
	stats *Stats,
	mkState func() (any, error),
	check func(state any) error,
	processBatch func(state any, st *Stats, b *table.Batch),
	mergeState func(state any),
) error {
	n := env.workers()
	parts := scanPartitions(view.Rows(), n, view.Heap.TuplesPerPage())

	states := make([]any, len(parts))
	for i := range states {
		s, err := mkState()
		if err != nil {
			return err
		}
		states[i] = s
	}

	workerStats := make([]Stats, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &workerStats[w]
			errs[w] = view.Heap.ScanRangeBatches(parts[w][0], parts[w][1],
				func(b *table.Batch) error {
					if err := check(states[w]); err != nil {
						return err
					}
					st.TuplesScanned += int64(b.N)
					processBatch(states[w], st, b)
					return nil
				})
		}(w)
	}
	wg.Wait()
	for w := range parts {
		if errs[w] != nil && errs[w] != errDetached {
			return errs[w]
		}
	}
	for w := range parts {
		stats.Add(workerStats[w])
		mergeState(states[w])
	}
	return nil
}

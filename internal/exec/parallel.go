package exec

import (
	"sync"
	"sync/atomic"

	"mdxopt/internal/dag"
	"mdxopt/internal/star"
	"mdxopt/internal/table"
)

// Parallel shared scans.
//
// Every aggregate this engine supports is decomposable, so a shared scan
// can be split across independent workers — each with its own
// aggregation tables but sharing the read-only dimension lookups and
// filter bitmaps — and the per-worker tables merged afterwards in worker
// index order. This parallelizes exactly the per-tuple CPU the paper's
// Test 1 identifies as the irreducible cost of the shared scan.
//
// The default split is morsel-driven: workers claim page-aligned morsels
// from a shared atomic cursor, so a worker that lands on slow pages
// simply claims fewer morsels while its siblings absorb the rest — no
// static pre-split, no straggler. The pass's own goroutine is always
// worker 0; extra workers run only while they hold a slot of the
// run-wide dag.Pool (Env.Pool), the same pool the task-graph scheduler
// starts nodes on, so intra-class fan-out and inter-class node
// concurrency are bounded by one width. Env.StaticPartition reverts to
// the legacy one-range-per-worker pre-split (scanPartitions) for the
// straggler ablation.
//
// Determinism: morsel assignment is racy, but every per-worker table is
// merged into worker 0's primary state in worker index order, table
// finalization sorts on canonical byte keys, and the workload's measures
// sum exactly in float64 — so results and the deterministic work
// counters are byte-identical at every width, morsel or static, to the
// serial pass.

// defaultMorselPages is the pages-per-morsel grain: big enough that the
// shared cursor is touched once per ~dozens of pages, small enough that
// a skewed page-cost tail is spread across all workers.
const defaultMorselPages = 16

// scanWidth is the effective worker fan-out of one shared pass: the
// run-wide pool's width when the pass runs under the task-graph
// executor, Env.Parallelism standalone, clamped to dag.WorkerCap.
func (e *Env) scanWidth() int {
	w := e.Parallelism
	if e.Pool != nil {
		w = e.Pool.Width()
	}
	if w < 1 {
		w = 1
	}
	if c := dag.WorkerCap(); w > c {
		w = c
	}
	return w
}

// morselPages resolves the pages-per-morsel grain.
func (e *Env) morselPages() int64 {
	if e.MorselPages > 0 {
		return int64(e.MorselPages)
	}
	return defaultMorselPages
}

// merge folds another pipeline's aggregation table (in-memory or
// spilled), memory counters, and own-work stats into p; both must
// belong to the same query. The worker's table is closed afterwards —
// its spill file, if any, is destroyed once its records are absorbed.
func (p *queryPipeline) merge(o *queryPipeline) error {
	if o.ioErr != nil {
		return o.ioErr
	}
	p.own.Add(o.own)
	if err := p.mergeTab(o); err != nil {
		return err
	}
	peak, spillBytes, spillParts := o.tabMemStats()
	p.own.PeakMemory += peak
	p.own.SpillBytes += spillBytes
	p.own.SpillPartitions += spillParts
	o.close()
	return nil
}

// scanPartitions returns the row ranges for n workers over rows rows,
// aligned to page boundaries (tpp tuples per page) so that no two
// workers ever share a page: whole pages are dealt out as evenly as
// possible (the first pages%n workers get one extra), which both keeps
// the per-worker work balanced and prevents a boundary page from being
// fetched — and its read double-counted — by two workers. Used only by
// the StaticPartition ablation path; the morsel path needs no
// pre-split.
func scanPartitions(rows int64, n, tpp int) [][2]int64 {
	if n < 1 {
		n = 1
	}
	if tpp < 1 {
		tpp = 1
	}
	pages := (rows + int64(tpp) - 1) / int64(tpp)
	out := make([][2]int64, 0, n)
	var fromPage int64
	for w := 0; w < n; w++ {
		share := pages / int64(n)
		if int64(w) < pages%int64(n) {
			share++
		}
		toPage := fromPage + share
		from := fromPage * int64(tpp)
		to := toPage * int64(tpp)
		if from > rows {
			from = rows
		}
		if to > rows || w == n-1 {
			to = rows
		}
		out = append(out, [2]int64{from, to})
		fromPage = toPage
	}
	return out
}

// parallelScan runs processBatch over the view's rows with
// env.scanWidth() workers. mkState builds one worker's private state
// (pipelines); check runs at the worker's cancellation checkpoints —
// once per page batch — (global context plus per-pipeline detachment: a
// worker whose pipelines have all detached stops early with
// errDetached, which is not an error); processBatch handles one decoded
// page of tuples; afterwards the per-worker stats and states are merged
// in worker index order via mergeState (which may itself fail, e.g.
// draining a worker's spill file). discard must release a state's
// resources — it runs (deferred, idempotently) for every state on every
// path, so memory reservations and spill files never leak on errors.
// Lookups and bitmaps must be built before calling (they are shared
// read-only).
func parallelScan(
	env *Env,
	view *star.View,
	stats *Stats,
	mkState func() (any, error),
	check func(state any) error,
	processBatch func(state any, st *Stats, b *table.Batch),
	mergeState func(state any) error,
	discard func(state any),
) error {
	width := env.scanWidth()

	states := make([]any, width)
	defer func() {
		for _, s := range states {
			if s != nil {
				discard(s)
			}
		}
	}()
	for i := range states {
		s, err := mkState()
		if err != nil {
			return err
		}
		states[i] = s
	}

	workerStats := make([]Stats, width)
	errs := make([]error, width)
	if env.StaticPartition {
		staticScan(env, view, states, workerStats, errs, check, processBatch)
	} else {
		morselScan(env, view, states, workerStats, errs, check, processBatch)
	}
	for w := range errs {
		if errs[w] != nil && errs[w] != errDetached {
			return errs[w]
		}
	}
	for w := range states {
		stats.Add(workerStats[w])
		if err := mergeState(states[w]); err != nil {
			return err
		}
	}
	return nil
}

// morselDrive is the shared morsel-cursor driver: nWorkers workers
// atomically claim the next grain-sized page range of [0, pages) and
// hand it to run until the cursor is exhausted. Worker 0 is the
// calling goroutine (it already occupies a pool slot when running as a
// task-graph node); workers 1..nWorkers-1 participate only once they
// Join the run-wide pool, so a saturated pool degrades the pass toward
// worker 0 alone instead of oversubscribing. The first real worker
// error (errDetached is completion, not failure) parks the cursor so
// every worker stops at its next morsel boundary; per-worker errors
// land in errs. Both the shared scans and the shared index probe drive
// their workers through this.
func morselDrive(env *Env, pages int64, nWorkers int, errs []error, run func(w int, fromPage, toPage int64) error) {
	grain := env.morselPages()

	var cursor atomic.Int64
	var aborted atomic.Bool
	worker := func(w int) error {
		for !aborted.Load() {
			startPage := cursor.Add(grain) - grain
			if startPage >= pages {
				return nil
			}
			endPage := startPage + grain
			if endPage > pages {
				endPage = pages
			}
			if err := run(w, startPage, endPage); err != nil {
				return err
			}
		}
		return nil
	}
	fail := func(w int, err error) {
		errs[w] = err
		if err != nil && err != errDetached {
			aborted.Store(true)
		}
	}

	pool := env.Pool
	if pool == nil {
		pool = dag.NewPool(nWorkers)
	}
	// stop releases helpers still waiting for a slot once the cursor is
	// drained (or worker 0 bailed); helpers that joined late see the
	// exhausted cursor and exit immediately.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 1; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if !pool.Join(stop) {
				return
			}
			defer pool.Leave()
			fail(w, worker(w))
		}(w)
	}
	fail(0, worker(0))
	close(stop)
	wg.Wait()
}

// morselScan drives the states over the view with the shared morsel
// cursor, decoding each claimed page range through ScanRangeBatches.
func morselScan(env *Env, view *star.View, states []any, workerStats []Stats, errs []error,
	check func(state any) error, processBatch func(state any, st *Stats, b *table.Batch)) {

	rows := view.Rows()
	tpp := int64(view.Heap.TuplesPerPage())
	if tpp < 1 {
		tpp = 1
	}
	pages := (rows + tpp - 1) / tpp
	morselDrive(env, pages, len(states), errs, func(w int, fromPage, toPage int64) error {
		st := &workerStats[w]
		from := fromPage * tpp
		to := toPage * tpp
		if to > rows {
			to = rows
		}
		return view.Heap.ScanRangeBatches(from, to, func(b *table.Batch) error {
			if err := check(states[w]); err != nil {
				return err
			}
			st.TuplesScanned += int64(b.N)
			processBatch(states[w], st, b)
			return nil
		})
	})
}

// staticScan is the legacy pre-split: one contiguous page-aligned range
// per worker (scanPartitions), every worker started unconditionally.
// Kept behind Env.StaticPartition as the straggler ablation baseline —
// a slow range parks its worker on the whole range with no stealing.
func staticScan(env *Env, view *star.View, states []any, workerStats []Stats, errs []error,
	check func(state any) error, processBatch func(state any, st *Stats, b *table.Batch)) {

	parts := scanPartitions(view.Rows(), len(states), view.Heap.TuplesPerPage())
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &workerStats[w]
			errs[w] = view.Heap.ScanRangeBatches(parts[w][0], parts[w][1],
				func(b *table.Batch) error {
					if err := check(states[w]); err != nil {
						return err
					}
					st.TuplesScanned += int64(b.N)
					processBatch(states[w], st, b)
					return nil
				})
		}(w)
	}
	wg.Wait()
}

package exec

import (
	"sync"

	"mdxopt/internal/star"
	"mdxopt/internal/table"
)

// Parallel shared scans.
//
// Every aggregate this engine supports is decomposable, so a shared scan
// can be partitioned into contiguous row ranges processed by independent
// workers — each with its own aggregation tables but sharing the
// read-only dimension lookups and filter bitmaps — and the per-worker
// tables merged afterwards. This parallelizes exactly the per-tuple CPU
// the paper's Test 1 identifies as the irreducible cost of the shared
// scan. Enable it with Env.Parallelism.

// workers returns the effective worker count.
func (e *Env) workers() int {
	if e.Parallelism < 1 {
		return 1
	}
	return e.Parallelism
}

// merge folds another pipeline's aggregation table (in-memory or
// spilled), memory counters, and own-work stats into p; both must
// belong to the same query. The worker's table is closed afterwards —
// its spill file, if any, is destroyed once its records are absorbed.
func (p *queryPipeline) merge(o *queryPipeline) error {
	if o.ioErr != nil {
		return o.ioErr
	}
	p.own.Add(o.own)
	if err := p.mergeTab(o); err != nil {
		return err
	}
	peak, spillBytes, spillParts := o.tabMemStats()
	p.own.PeakMemory += peak
	p.own.SpillBytes += spillBytes
	p.own.SpillPartitions += spillParts
	o.close()
	return nil
}

// scanPartitions returns the row ranges for n workers over rows rows,
// aligned to page boundaries (tpp tuples per page) so that no two
// workers ever share a page: whole pages are dealt out as evenly as
// possible (the first pages%n workers get one extra), which both keeps
// the per-worker work balanced and prevents a boundary page from being
// fetched — and its read double-counted — by two workers.
func scanPartitions(rows int64, n, tpp int) [][2]int64 {
	if n < 1 {
		n = 1
	}
	if tpp < 1 {
		tpp = 1
	}
	pages := (rows + int64(tpp) - 1) / int64(tpp)
	out := make([][2]int64, 0, n)
	var fromPage int64
	for w := 0; w < n; w++ {
		share := pages / int64(n)
		if int64(w) < pages%int64(n) {
			share++
		}
		toPage := fromPage + share
		from := fromPage * int64(tpp)
		to := toPage * int64(tpp)
		if from > rows {
			from = rows
		}
		if to > rows || w == n-1 {
			to = rows
		}
		out = append(out, [2]int64{from, to})
		fromPage = toPage
	}
	return out
}

// parallelScan runs processBatch over the view's rows with
// env.workers() page-aligned partitions. mkState builds one worker's
// private state (pipelines); check runs at the worker's cancellation
// checkpoints — once per page batch — (global context plus per-pipeline
// detachment: a worker whose pipelines have all detached stops early
// with errDetached, which is not an error); processBatch handles one
// decoded page of tuples; afterwards the per-worker stats and states
// are merged via mergeState (which may itself fail, e.g. draining a
// worker's spill file). discard must release a state's resources — it
// runs (deferred, idempotently) for every state on every path, so
// memory reservations and spill files never leak on errors. Lookups
// and bitmaps must be built before calling (they are shared
// read-only).
func parallelScan(
	env *Env,
	view *star.View,
	stats *Stats,
	mkState func() (any, error),
	check func(state any) error,
	processBatch func(state any, st *Stats, b *table.Batch),
	mergeState func(state any) error,
	discard func(state any),
) error {
	n := env.workers()
	parts := scanPartitions(view.Rows(), n, view.Heap.TuplesPerPage())

	states := make([]any, len(parts))
	defer func() {
		for _, s := range states {
			if s != nil {
				discard(s)
			}
		}
	}()
	for i := range states {
		s, err := mkState()
		if err != nil {
			return err
		}
		states[i] = s
	}

	workerStats := make([]Stats, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &workerStats[w]
			errs[w] = view.Heap.ScanRangeBatches(parts[w][0], parts[w][1],
				func(b *table.Batch) error {
					if err := check(states[w]); err != nil {
						return err
					}
					st.TuplesScanned += int64(b.N)
					processBatch(states[w], st, b)
					return nil
				})
		}(w)
	}
	wg.Wait()
	for w := range parts {
		if errs[w] != nil && errs[w] != errDetached {
			return errs[w]
		}
	}
	for w := range parts {
		stats.Add(workerStats[w])
		if err := mergeState(states[w]); err != nil {
			return err
		}
	}
	return nil
}

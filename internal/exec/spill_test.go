package exec

import (
	"fmt"
	"sync"
	"testing"

	"mdxopt/internal/mem"
	"mdxopt/internal/query"
)

// Spill correctness: under a memory budget smaller than the working
// set, every shared operator must spill its aggregation state and still
// produce results byte-identical to the unbudgeted run (the datagen
// measures are whole dollars, so float64 sums are exact under any
// association order — Result.Equal compares with ==). After every pass
// the broker's accounting must return to zero.

// budgetedEnv returns an Env governed by a fresh broker with the given
// budget, spilling into a test temp dir with a small fanout (so the
// page-buffer overdraft stays modest).
func budgetedEnv(t *testing.T, db interface{}, budget int64) (*Env, *mem.Broker) {
	t.Helper()
	env := NewEnv(sharedDB)
	broker := mem.New(budget)
	env.Mem = broker
	env.SpillDir = t.TempDir()
	env.SpillFanout = 4
	return env, broker
}

// checkDrained fails the test if the broker still holds memory after a
// pass finished.
func checkDrained(t *testing.T, broker *mem.Broker) {
	t.Helper()
	if used := broker.Used(); used != 0 {
		t.Fatalf("broker holds %d bytes after the pass (stats: %s)", used, broker.Stats())
	}
}

func checkIdentical(t *testing.T, got, want []*Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result count %d != %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: spilled result differs from in-memory result\n got %d groups total %v\nwant %d groups total %v",
				got[i].Query.Name, len(got[i].Groups), got[i].Total(), len(want[i].Groups), want[i].Total())
		}
	}
}

func TestSpillEquivalenceSharedScanHash(t *testing.T) {
	db, qs := testDB(t)
	group := []*query.Query{qs["Q1"], qs["Q2"], qs["Q3"], qs["Q4"], qs["Q9"]}

	var baseline []*Result
	{
		env := NewEnv(db)
		var st Stats
		var err error
		baseline, err = SharedScanHash(env, db.Base(), group, &st)
		if err != nil {
			t.Fatal(err)
		}
		if st.SpillBytes != 0 || st.SpillPartitions != 0 {
			t.Fatalf("ungoverned run spilled: %s", st)
		}
	}

	for _, budget := range []int64{1 << 12, 1 << 16, 1 << 22} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			env, broker := budgetedEnv(t, db, budget)
			var st Stats
			results, err := SharedScanHash(env, db.Base(), group, &st)
			if err != nil {
				t.Fatal(err)
			}
			checkIdentical(t, results, baseline)
			checkDrained(t, broker)
			if budget == 1<<12 && st.SpillBytes == 0 {
				t.Fatalf("4KiB budget did not spill: %s", st)
			}
			if st.PeakMemory == 0 {
				t.Fatalf("no memory tracked: %s", st)
			}
		})
	}
}

func TestSpillEquivalenceSharedIndex(t *testing.T) {
	db, qs := testDB(t)
	indexed := db.ViewByLevels([]int{1, 1, 1, 0})
	group := []*query.Query{qs["Q5"], qs["Q6"], qs["Q7"], qs["Q8"]}

	env0 := NewEnv(db)
	var st0 Stats
	baseline, err := SharedIndex(env0, indexed, group, &st0)
	if err != nil {
		t.Fatal(err)
	}

	env, broker := budgetedEnv(t, db, 1<<12)
	var st Stats
	results, err := SharedIndex(env, indexed, group, &st)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, results, baseline)
	checkDrained(t, broker)
	if st.SpillBytes == 0 {
		t.Fatalf("tiny budget did not spill on the index path: %s", st)
	}
}

func TestSpillEquivalenceSharedMixed(t *testing.T) {
	db, qs := testDB(t)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	hash := []*query.Query{qs["Q3"]}
	index := []*query.Query{qs["Q5"], qs["Q6"], qs["Q7"]}

	env0 := NewEnv(db)
	var st0 Stats
	hr0, ir0, err := SharedMixed(env0, view, hash, index, &st0)
	if err != nil {
		t.Fatal(err)
	}

	// The mixed working set on this small view is only a few KiB, so the
	// budget must be tiny for required state (lookups, bitmaps) to
	// overdraft it and force every aggregation grant to be denied.
	env, broker := budgetedEnv(t, db, 1<<8)
	var st Stats
	hr, ir, err := SharedMixed(env, view, hash, index, &st)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, hr, hr0)
	checkIdentical(t, ir, ir0)
	checkDrained(t, broker)
	if st.SpillBytes == 0 {
		t.Fatalf("tiny budget did not spill on the mixed path: %s", st)
	}
}

func TestSpillEquivalenceParallelWorkers(t *testing.T) {
	db, qs := testDB(t)
	group := []*query.Query{qs["Q1"], qs["Q2"], qs["Q3"], qs["Q4"]}

	// Baseline: parallel but ungoverned (parallel merge order already
	// yields exact sums: whole-dollar measures).
	env0 := NewEnv(db)
	env0.Parallelism = 4
	var st0 Stats
	baseline, err := SharedScanHash(env0, db.Base(), group, &st0)
	if err != nil {
		t.Fatal(err)
	}

	env, broker := budgetedEnv(t, db, 1<<12)
	env.Parallelism = 4
	var st Stats
	results, err := SharedScanHash(env, db.Base(), group, &st)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, results, baseline)
	checkDrained(t, broker)
	if st.SpillBytes == 0 {
		t.Fatalf("tiny budget did not spill with parallel workers: %s", st)
	}
}

// TestAggTableMergeOverflow forces the partition merge itself past the
// budget: a blocker reservation keeps the broker saturated, so each
// merge sub-pass admits only its progress-floor key and diverts the
// rest to an overflow partition. The result must still be exact.
func TestAggTableMergeOverflow(t *testing.T) {
	broker := mem.New(1 << 10)
	env := &Env{Mem: broker, SpillDir: t.TempDir(), SpillFanout: 2}

	blocker := broker.Reserve("blocker")
	blocker.MustGrow(1 << 10) // saturate: every TryGrow from here on is denied

	tab := newAggTable(env, query.Sum, 4, "t")
	defer tab.close()

	const keys = 100
	want := make(map[string]float64)
	var kb [4]byte
	for round := 0; round < 3; round++ {
		for i := 0; i < keys; i++ {
			kb[0], kb[1], kb[2], kb[3] = byte(i), byte(i>>8), 0, 0
			d := accum{a: float64(i*round + 1), set: true}
			if err := tab.add(kb[:], d); err != nil {
				t.Fatal(err)
			}
			want[string(kb[:])] += d.a
		}
	}
	if tab.sp == nil {
		t.Fatal("saturated broker did not force a spill")
	}

	pairs, err := tab.pairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != keys {
		t.Fatalf("got %d groups, want %d", len(pairs), keys)
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].key >= pairs[i].key {
			t.Fatal("pairs not sorted by raw key")
		}
	}
	for _, pr := range pairs {
		if pr.ac.a != want[pr.key] {
			t.Fatalf("key %x: got %v, want %v", pr.key, pr.ac.a, want[pr.key])
		}
	}
	tab.close()
	blocker.Release()
	checkDrained(t, broker)
}

// TestAggTableMergeStickyOverflow verifies that overflow diversion is
// sticky within a merge sub-pass. With per-record TryGrow, a key whose
// first record was diverted could be admitted to the merge table on a
// later record when a concurrent pipeline releases memory mid-merge —
// the key would then surface twice, with its sum split between the two
// copies. Stickiness is observable deterministically through the
// denial counter: each sub-pass consults the broker at most once after
// its progress-floor key, so a merge of N keys incurs at most N
// denials, while per-record retries incur one denial per diverted
// record (hundreds per key here).
func TestAggTableMergeStickyOverflow(t *testing.T) {
	// The budget comfortably holds the spill's merge floor, so denial
	// comes from the blocker, not from the floor's own overdraft.
	const budget = 1 << 16
	broker := mem.New(budget)
	env := &Env{Mem: broker, SpillDir: t.TempDir(), SpillFanout: 2}

	blocker := broker.Reserve("blocker")
	blocker.MustGrow(budget) // saturate through both the adds and the merge

	tab := newAggTable(env, query.Sum, 4, "t")
	defer tab.close()

	const keys = 200
	const rounds = 4 // several records per key, spread through each partition
	want := make(map[string]float64)
	var kb [4]byte
	for round := 0; round < rounds; round++ {
		for i := 0; i < keys; i++ {
			kb[0], kb[1] = byte(i), byte(i>>8)
			d := accum{a: float64(i + round*keys + 1), set: true}
			if err := tab.add(kb[:], d); err != nil {
				t.Fatal(err)
			}
			want[string(kb[:])] += d.a
		}
	}
	if tab.sp == nil {
		t.Fatal("saturated broker did not force a spill")
	}

	deniedBefore := broker.Stats().Denied
	pairs, err := tab.pairs()
	if err != nil {
		t.Fatal(err)
	}
	if denied := broker.Stats().Denied - deniedBefore; denied > keys {
		t.Fatalf("merge denied %d grants for %d keys: diversion retries the broker per record instead of sticking to overflow", denied, keys)
	}
	if len(pairs) != keys {
		t.Fatalf("got %d groups, want %d (duplicates mean a key was split between merge table and overflow)", len(pairs), keys)
	}
	for _, pr := range pairs {
		if pr.ac.a != want[pr.key] {
			t.Fatalf("key %x: got %v, want %v", pr.key, pr.ac.a, want[pr.key])
		}
	}
	tab.close()
	blocker.Release()
	checkDrained(t, broker)
}

// TestAggTableMergeFromSpilled covers the parallel-merge path where the
// source worker table has itself spilled.
func TestAggTableMergeFromSpilled(t *testing.T) {
	broker := mem.New(1 << 20)
	env := &Env{Mem: broker, SpillDir: t.TempDir(), SpillFanout: 2}

	src := newAggTable(env, query.Sum, 4, "src")
	defer src.close()
	blocker := broker.Reserve("blocker")
	blocker.MustGrow(1 << 20)
	var kb [4]byte
	for i := 0; i < 50; i++ {
		kb[0] = byte(i)
		if err := src.add(kb[:], accum{a: float64(i), set: true}); err != nil {
			t.Fatal(err)
		}
	}
	if src.sp == nil {
		t.Fatal("source did not spill")
	}
	blocker.Release()

	dst := newAggTable(env, query.Sum, 4, "dst")
	defer dst.close()
	for i := 0; i < 50; i++ {
		kb[0] = byte(i)
		if err := dst.add(kb[:], accum{a: 100, set: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.mergeFrom(src); err != nil {
		t.Fatal(err)
	}
	src.close()
	pairs, err := dst.pairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 50 {
		t.Fatalf("got %d groups, want 50", len(pairs))
	}
	for _, pr := range pairs {
		i := float64(pr.key[0])
		if pr.ac.a != 100+i {
			t.Fatalf("key %d: got %v, want %v", pr.key[0], pr.ac.a, 100+i)
		}
	}
	dst.close()
	checkDrained(t, broker)
}

// TestConcurrentSpillStress runs several budgeted shared scans at once
// against one broker; run under -race this exercises concurrent
// TryGrow/MustGrow/Shrink and concurrent spill file traffic.
func TestConcurrentSpillStress(t *testing.T) {
	db, qs := testDB(t)
	group := []*query.Query{qs["Q1"], qs["Q2"], qs["Q3"], qs["Q4"]}

	env0 := NewEnv(db)
	var st0 Stats
	baseline, err := SharedScanHash(env0, db.Base(), group, &st0)
	if err != nil {
		t.Fatal(err)
	}

	broker := mem.New(1 << 11) // small enough that every scan spills even unoverlapped
	dir := t.TempDir()
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			env := NewEnv(db)
			env.Mem = broker
			env.SpillDir = dir
			env.SpillFanout = 4
			for round := 0; round < 3; round++ {
				var st Stats
				results, err := SharedScanHash(env, db.Base(), group, &st)
				if err != nil {
					errs[g] = err
					return
				}
				for i := range results {
					if !results[i].Equal(baseline[i]) {
						errs[g] = fmt.Errorf("goroutine %d round %d: %s diverged", g, round, results[i].Query.Name)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	checkDrained(t, broker)
	if broker.Stats().Denied == 0 {
		t.Fatal("stress run never hit the budget")
	}
}

package exec

import (
	"fmt"
	"runtime"
	"time"

	"mdxopt/internal/bitmap"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/table"
)

// Fold-kernel microbenchmark harness.
//
// FoldKernelBench isolates the aggregation fold loop — batch key
// packing, predicate filtering, and table find-or-insert — from scan
// I/O: it decodes the view's pages once into captured batches, builds
// the query pipelines once, then re-feeds the captured batches for a
// number of passes. Pass 0 is warm-up (it populates every group, grows
// the tables to their steady-state capacity, and faults the code
// paths); the remaining passes are measured. Because every group is
// resident after warm-up, the measured passes exercise exactly the
// steady state the kernel is designed for, and their heap allocation
// count is the kernel's steady-state allocation rate.
//
// The same harness drives both representations: the packed
// open-addressing kernel (default) and the byte-key fallback map
// (Env.NoPackedKeys), so mdxbench can report their ratio from identical
// inputs. Callers wanting a pure CPU measurement pass an ungoverned Env
// (nil Mem) so no pass spills.

// KernelBenchResult reports one FoldKernelBench run.
type KernelBenchResult struct {
	Packed        bool    `json:"packed"`          // which representation ran
	Passes        int     `json:"passes"`          // measured passes (excludes warm-up)
	Tuples        int64   `json:"tuples"`          // tuples probed across measured passes
	Folds         int64   `json:"folds"`           // qualifying tuples folded across measured passes
	Nanos         int64   `json:"nanos"`           // wall time of the measured passes
	AllocsPerPass float64 `json:"allocs_per_pass"` // heap mallocs per measured pass
	TuplesPerSec  float64 `json:"tuples_per_sec"`  // probed tuples per second
}

// FoldKernelBench runs the fold kernel of queries against view for
// 1 warm-up plus passes measured passes over pre-decoded batches.
func FoldKernelBench(env *Env, view *star.View, queries []*query.Query, passes int) (*KernelBenchResult, error) {
	if passes < 1 {
		passes = 1
	}
	if err := checkAnswerable(env, view, queries); err != nil {
		return nil, err
	}

	// Decode the whole view once; batches are cloned because the scan
	// reuses its buffers page to page.
	var batches []*table.Batch
	err := view.Heap.ScanRangeBatches(0, view.Heap.Count(), func(b *table.Batch) error {
		batches = append(batches, b.Clone())
		return nil
	})
	if err != nil {
		return nil, err
	}

	stats := &Stats{}
	cache := newLookupCache(env, stats)
	defer cache.close()
	pipelines := make([]*queryPipeline, len(queries))
	for i, q := range queries {
		p, err := newQueryPipeline(env, stats, cache, q, view)
		if err != nil {
			closePipes(pipelines[:i])
			return nil, err
		}
		pipelines[i] = p
	}
	defer closePipes(pipelines)

	feed := func(st *Stats) error {
		for _, b := range batches {
			for _, p := range pipelines {
				p.foldBatch(st, b)
			}
		}
		for _, p := range pipelines {
			if p.ioErr != nil {
				return p.ioErr
			}
		}
		return nil
	}

	// Warm-up: populate every group and reach steady-state capacity.
	if err := feed(&Stats{}); err != nil {
		return nil, err
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var measured Stats
	start := time.Now()
	for i := 0; i < passes; i++ {
		if err := feed(&measured); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	if elapsed <= 0 {
		return nil, fmt.Errorf("exec: fold kernel bench measured no time over %d passes", passes)
	}
	r := &KernelBenchResult{
		Packed:        pipelines[0].packer != nil,
		Passes:        passes,
		Tuples:        measured.TupleProbes,
		Folds:         measured.TuplesAgg,
		Nanos:         int64(elapsed),
		AllocsPerPass: float64(after.Mallocs-before.Mallocs) / float64(passes),
		TuplesPerSec:  float64(measured.TupleProbes) / elapsed.Seconds(),
	}
	return r, nil
}

// Probe-kernel microbenchmark harness.
//
// ProbeKernelBench isolates the shared index probe — union routing,
// page-batched fetch, and per-query bitmap re-test — from pipeline and
// bitmap construction: it builds the query pipelines, result bitmaps
// and union once, runs one warm-up probe pass (faulting every union
// page into the buffer pool and growing the aggregation tables to
// steady state), then re-probes the whole union for a number of
// measured passes. Env.NoVectorIndex selects the representation: the
// word-at-a-time routing kernel (default) or the scalar
// tuple-at-a-time loop it replaced, from identical inputs, so mdxbench
// can report their ratio. Both run serially — the harness measures the
// kernel, not the worker pool.

// ProbeKernelResult reports one ProbeKernelBench run.
type ProbeKernelResult struct {
	Vectorized    bool    `json:"vectorized"`      // which representation ran
	Passes        int     `json:"passes"`          // measured passes (excludes warm-up)
	Tuples        int64   `json:"tuples"`          // union tuples fetched across measured passes
	Routed        int64   `json:"routed"`          // per-query tuples routed (own TuplesFetched)
	Folds         int64   `json:"folds"`           // qualifying tuples folded across measured passes
	Nanos         int64   `json:"nanos"`           // wall time of the measured passes
	AllocsPerPass float64 `json:"allocs_per_pass"` // heap mallocs per measured pass
	TuplesPerSec  float64 `json:"tuples_per_sec"`  // fetched union tuples per second
}

// ProbeKernelBench runs the index-probe kernel of queries against view
// for 1 warm-up plus passes measured passes over a pre-built union.
func ProbeKernelBench(env *Env, view *star.View, queries []*query.Query, passes int) (*ProbeKernelResult, error) {
	if passes < 1 {
		passes = 1
	}
	if err := checkAnswerable(env, view, queries); err != nil {
		return nil, err
	}

	stats := &Stats{}
	cache := newLookupCache(env, stats)
	defer cache.close()
	pipelines := make([]*queryPipeline, len(queries))
	defer closePipes(pipelines)
	bitmaps := make([]*bitmap.Bitset, len(queries))
	residuals := make([][]int, len(queries))
	for i, q := range queries {
		p, err := newQueryPipeline(env, stats, cache, q, view)
		if err != nil {
			return nil, err
		}
		pipelines[i] = p
		bs, residual, err := pipelineBitmap(env, view, p, stats)
		if err != nil {
			return nil, err
		}
		bitmaps[i] = bs
		residuals[i] = residual
	}
	union := bitmaps[0]
	if len(bitmaps) > 1 {
		union = bitmap.New(view.Rows())
		union.CopyFrom(bitmaps[0])
		for _, bs := range bitmaps[1:] {
			bs.OrInto(union)
		}
	}
	ps := &probeShared{
		view:      view,
		union:     union,
		bitmaps:   bitmaps,
		residuals: residuals,
		tpp:       int64(view.Heap.TuplesPerPage()),
		rows:      view.Rows(),
	}
	w := newProbeWorker(view, pipelines)
	pages := (ps.rows + ps.tpp - 1) / ps.tpp

	probe := func(st *Stats) error {
		if env.NoVectorIndex {
			if err := ps.probeScalar(env, pipelines, st); err != nil && err != errDetached {
				return err
			}
		} else if err := ps.probePages(env, w, st, 0, pages); err != nil && err != errDetached {
			return err
		}
		for _, p := range pipelines {
			if p.ioErr != nil {
				return p.ioErr
			}
		}
		return nil
	}

	// Warm-up: union pages resident, every group populated.
	if err := probe(&Stats{}); err != nil {
		return nil, err
	}

	ownBefore := int64(0)
	for _, p := range pipelines {
		ownBefore += p.own.TuplesFetched
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var measured Stats
	start := time.Now()
	for i := 0; i < passes; i++ {
		if err := probe(&measured); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	if elapsed <= 0 {
		return nil, fmt.Errorf("exec: probe kernel bench measured no time over %d passes", passes)
	}
	routed := -ownBefore
	for _, p := range pipelines {
		routed += p.own.TuplesFetched
	}
	return &ProbeKernelResult{
		Vectorized:    !env.NoVectorIndex,
		Passes:        passes,
		Tuples:        measured.TuplesFetched,
		Routed:        routed,
		Folds:         measured.TuplesAgg,
		Nanos:         int64(elapsed),
		AllocsPerPass: float64(after.Mallocs-before.Mallocs) / float64(passes),
		TuplesPerSec:  float64(measured.TuplesFetched) / elapsed.Seconds(),
	}, nil
}

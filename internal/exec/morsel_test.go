package exec

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"mdxopt/internal/dag"
	"mdxopt/internal/query"
)

// Morsel-driven scan equivalence: the shared-scan operators must produce
// byte-identical results and identical deterministic work counters at
// every worker count, whether workers claim morsels dynamically or run
// the legacy static pre-split — the merge order (worker index), the
// canonical result sort, and the exact float64 measure sums make the
// outcome independent of how pages were dealt out.

// scanCounters projects the deterministic counters of a shared pass —
// the fields that may not vary with worker count or morsel grain. I/O
// and wall-clock metrics legitimately change with scheduling.
func scanCounters(s Stats) [8]int64 {
	return [8]int64{
		s.TuplesScanned, s.TupleProbes, s.TuplesAgg, s.TuplesFetched,
		s.HashBuildRows, s.BitmapWords, s.BitTests, s.CacheRows,
	}
}

// TestMorselEquivalenceRandomized fuzzes SharedScanHash across widths:
// random query subsets, random morsel grains (down to one page, the
// maximum-stealing worst case), workers 1/2/4/8 — all must match the
// serial pass exactly.
func TestMorselEquivalenceRandomized(t *testing.T) {
	db, qs := testDB(t)
	all := []*query.Query{qs["Q1"], qs["Q2"], qs["Q3"], qs["Q4"], qs["Q9"]}
	rng := rand.New(rand.NewSource(20260808))

	for trial := 0; trial < 6; trial++ {
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		group := append([]*query.Query(nil), all[:2+rng.Intn(len(all)-1)]...)
		grain := 1 + rng.Intn(3)

		env := NewEnv(db)
		var baseSt Stats
		baseline, err := SharedScanHash(env, db.Base(), group, &baseSt)
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			penv := NewEnv(db)
			penv.Parallelism = workers
			penv.MorselPages = grain
			var st Stats
			results, err := SharedScanHash(penv, db.Base(), group, &st)
			if err != nil {
				t.Fatalf("trial %d workers=%d grain=%d: %v", trial, workers, grain, err)
			}
			checkIdentical(t, results, baseline)
			if scanCounters(st) != scanCounters(baseSt) {
				t.Fatalf("trial %d workers=%d grain=%d: counters %v, serial %v",
					trial, workers, grain, scanCounters(st), scanCounters(baseSt))
			}
		}
	}
}

// TestMorselEquivalenceMixed runs the mixed scan+probe pass at every
// width: only the scan side fans out into morsels, and both result sets
// must stay identical to serial.
func TestMorselEquivalenceMixed(t *testing.T) {
	db, qs := testDB(t)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	if view == nil {
		t.Skip("A'B'C'D view not materialized")
	}
	hash := []*query.Query{qs["Q3"]}
	index := []*query.Query{qs["Q7"], qs["Q8"]}

	env := NewEnv(db)
	var baseSt Stats
	baseHash, baseIndex, err := SharedMixed(env, view, hash, index, &baseSt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		penv := NewEnv(db)
		penv.Parallelism = workers
		penv.MorselPages = 1
		var st Stats
		gotHash, gotIndex, err := SharedMixed(penv, view, hash, index, &st)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkIdentical(t, gotHash, baseHash)
		checkIdentical(t, gotIndex, baseIndex)
		if scanCounters(st) != scanCounters(baseSt) {
			t.Fatalf("workers=%d: counters %v, serial %v",
				workers, scanCounters(st), scanCounters(baseSt))
		}
	}
}

// TestMorselStaticPartitionEquivalence: the StaticPartition ablation
// path (legacy pre-split, no stealing) must also reproduce the serial
// results — it shares the merge machinery with the morsel path.
func TestMorselStaticPartitionEquivalence(t *testing.T) {
	db, qs := testDB(t)
	group := []*query.Query{qs["Q1"], qs["Q2"], qs["Q3"], qs["Q4"], qs["Q9"]}

	env := NewEnv(db)
	var baseSt Stats
	baseline, err := SharedScanHash(env, db.Base(), group, &baseSt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		penv := NewEnv(db)
		penv.Parallelism = workers
		penv.StaticPartition = true
		var st Stats
		results, err := SharedScanHash(penv, db.Base(), group, &st)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkIdentical(t, results, baseline)
		if scanCounters(st) != scanCounters(baseSt) {
			t.Fatalf("workers=%d: counters %v, serial %v",
				workers, scanCounters(st), scanCounters(baseSt))
		}
	}
}

// TestMorselSpillEquivalence: a memory budget far below the working set
// forces every worker's aggregation table through the spill path; the
// merged results must still match the unbudgeted serial run and the
// broker must drain to zero.
func TestMorselSpillEquivalence(t *testing.T) {
	db, qs := testDB(t)
	group := []*query.Query{qs["Q1"], qs["Q2"], qs["Q3"], qs["Q4"], qs["Q9"]}

	env := NewEnv(db)
	var baseSt Stats
	baseline, err := SharedScanHash(env, db.Base(), group, &baseSt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		penv, broker := budgetedEnv(t, db, 1<<12)
		penv.Parallelism = workers
		penv.MorselPages = 1
		var st Stats
		results, err := SharedScanHash(penv, db.Base(), group, &st)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkIdentical(t, results, baseline)
		checkDrained(t, broker)
		if st.SpillBytes == 0 {
			t.Fatalf("workers=%d: 4KiB budget did not spill: %s", workers, st)
		}
	}
}

// TestMorselDetachMidScan cancels one query's per-submission context
// partway through a parallel scan — triggered by a disk-read hook, so
// the cancellation lands mid-morsel with workers in flight. The dead
// query must come back detached, the pass must still scan every row
// exactly once across all workers, and the survivor must stay
// oracle-correct.
func TestMorselDetachMidScan(t *testing.T) {
	db, qs := testDB(t)
	if err := db.ColdReset(); err != nil {
		t.Fatal(err)
	}
	dead, live := qs["Q1"], qs["Q9"]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	disk := db.Base().Heap.File().Disk()
	var reads atomic.Int64
	disk.SetFault(func(op string, page uint32) error {
		if op == "read" && reads.Add(1) == 8 {
			cancel()
		}
		return nil
	})
	defer disk.SetFault(nil)

	env := NewEnv(db)
	env.Parallelism = 4
	env.MorselPages = 1
	env.QueryCtx = func(q *query.Query) context.Context {
		if q == dead {
			return ctx
		}
		return context.Background()
	}

	var st Stats
	rs, err := SharedScanHash(env, db.Base(), []*query.Query{dead, live}, &st)
	if err != nil {
		t.Fatalf("SharedScanHash: %v", err)
	}
	if !errors.Is(rs[0].Err, context.Canceled) {
		t.Fatalf("dead query's err = %v, want context.Canceled", rs[0].Err)
	}
	if rs[1].Err != nil {
		t.Fatalf("surviving query's result has error: %v", rs[1].Err)
	}
	if st.TuplesScanned != db.Base().Rows() {
		t.Fatalf("pass scanned %d of %d rows: detach aborted the shared scan",
			st.TuplesScanned, db.Base().Rows())
	}
	disk.SetFault(nil)
	env.QueryCtx = nil
	checkAgainstOracle(t, env, rs[1])
}

// TestMorselAllDetachedStopsEarly: when every pipeline detaches, the
// morsel workers stop claiming at the next boundary instead of scanning
// the rest of the table for no one.
func TestMorselAllDetachedStopsEarly(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	env.Parallelism = 4
	env.MorselPages = 1
	env.QueryCtx = func(*query.Query) context.Context { return canceledCtx() }

	var st Stats
	rs, err := SharedScanHash(env, db.Base(), []*query.Query{qs["Q1"], qs["Q9"]}, &st)
	if err != nil {
		t.Fatalf("SharedScanHash: %v", err)
	}
	for i, r := range rs {
		if r.Err == nil {
			t.Fatalf("result %d of an all-canceled pass has no error", i)
		}
	}
	if st.TuplesScanned >= db.Base().Rows() {
		t.Fatalf("all pipelines detached but the pass scanned all %d rows", st.TuplesScanned)
	}
}

// TestScanWidthResolution: Env.Parallelism clamps to the pool cap, and a
// run-wide pool overrides it entirely.
func TestScanWidthResolution(t *testing.T) {
	db, _ := testDB(t)
	env := NewEnv(db)
	if got := env.scanWidth(); got != 1 {
		t.Fatalf("default scanWidth = %d, want 1", got)
	}
	env.Parallelism = 1 << 20
	if got, cap := env.scanWidth(), dag.WorkerCap(); got != cap {
		t.Fatalf("scanWidth = %d, want clamp to WorkerCap %d", got, cap)
	}
	env.Pool = dag.NewPool(2)
	if got := env.scanWidth(); got != 2 {
		t.Fatalf("scanWidth = %d with a width-2 pool, want 2 (pool overrides Parallelism)", got)
	}
}

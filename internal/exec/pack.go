package exec

import (
	"encoding/binary"
	"math/bits"

	"mdxopt/internal/star"
)

// Packed group keys.
//
// A query's group-by key is one member code per dimension, each dense
// in [0, card) at the query's level — the catalog knows every level's
// cardinality, so the whole key packs into contiguous bit fields of a
// single uint64 whenever the widths sum to at most 64 (the paper's
// 4-dimension schema needs well under 16 bits per dimension). The
// packed form replaces the 4·nd-byte string key of the legacy
// aggregation map: hashing is one multiply instead of a string hash,
// and equality is one word compare. Queries whose widths exceed 64
// bits fall back to the byte-key path (keyPacker construction fails).
//
// The byte layout of the legacy key — little-endian int32 per
// dimension — remains the canonical result ordering: legacyKey
// reconstructs it exactly, so sorted output is byte-identical whichever
// representation folded the tuples.

// keyPacker packs and unpacks a query's group-by key. Immutable after
// construction; safe to share across worker pipelines.
type keyPacker struct {
	shifts []uint // bit offset of each dimension's field
	masks  []uint64
	bits   int
}

// newKeyPacker builds a packer for a group-by at the given levels, or
// reports false when the key does not fit in 64 bits.
func newKeyPacker(s *star.Schema, levels []int) (*keyPacker, bool) {
	return newKeyPackerFromCards(s.LevelCards(levels))
}

// newKeyPackerFromCards builds a packer from per-dimension code
// cardinalities (field width = bits to hold card-1).
func newKeyPackerFromCards(cards []int32) (*keyPacker, bool) {
	kp := &keyPacker{
		shifts: make([]uint, len(cards)),
		masks:  make([]uint64, len(cards)),
	}
	shift := 0
	for i, card := range cards {
		if card < 1 {
			return nil, false
		}
		w := bits.Len32(uint32(card) - 1)
		kp.shifts[i] = uint(shift)
		kp.masks[i] = 1<<w - 1
		shift += w
	}
	if shift > 64 {
		return nil, false
	}
	kp.bits = shift
	return kp, true
}

// pack encodes one code per dimension into the packed key. Codes must
// be within the cards the packer was built with.
func (kp *keyPacker) pack(codes []int32) uint64 {
	var k uint64
	for i, c := range codes {
		k |= uint64(uint32(c)) & kp.masks[i] << kp.shifts[i]
	}
	return k
}

// unpack decodes the packed key into out, one code per dimension.
func (kp *keyPacker) unpack(k uint64, out []int32) {
	for i := range out {
		out[i] = int32(k >> kp.shifts[i] & kp.masks[i])
	}
}

// legacyKey appends the canonical byte-key form of k — each dimension's
// code as a little-endian int32, the exact layout the byte-key fold
// path builds — and returns the extended slice. Result ordering and the
// Group key decode both go through this form.
func (kp *keyPacker) legacyKey(dst []byte, k uint64) []byte {
	for i := range kp.shifts {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(k>>kp.shifts[i]&kp.masks[i]))
		dst = append(dst, b[:]...)
	}
	return dst
}

// hash64 is a wyhash-style single multiply-fold of the packed key; it
// drives both the fold table's probe sequence and, via the same value,
// the spill partition routing (see writePackedRec).
func hash64(x uint64) uint64 {
	hi, lo := bits.Mul64(x^0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9)
	return hi ^ lo
}

// Package exec implements the query evaluation primitives of the paper:
// pipelined hash star joins, bitmap-index star joins, hash aggregation,
// and — the paper's §3 contribution — the three *shared* operators:
//
//   - SharedScanHash: one scan of a common base table drives many hash
//     star-join + aggregation pipelines, with dimension lookup tables
//     shared between queries that need identical ones (§3.1).
//   - SharedIndex: per-query result bitmaps are OR-ed and the base table
//     is probed once; fetched tuples are routed to each query's
//     aggregation by re-testing its bitmap (§3.2).
//   - SharedMixed: index-join plans are converted from bitmap probing to
//     scan-plus-bitmap-filter so they ride along a hash plan's scan
//     (§3.3).
//
// Every operator accounts its work in a Stats, which the cost model
// converts to simulated 1998-hardware seconds.
package exec

import (
	"context"
	"fmt"
	"time"

	"mdxopt/internal/cost"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/storage"
)

// Stats accumulates the work performed by one or more operators.
type Stats struct {
	IO storage.Stats // physical page I/O observed at the buffer pool

	TuplesScanned int64 // tuples decoded by sequential scans
	TupleProbes   int64 // tuple × query hash star-join probes
	TuplesAgg     int64 // qualifying tuples folded into aggregates
	TuplesFetched int64 // tuple extractions driven by bitmap probes
	HashBuildRows int64 // dimension rows inserted into join lookup tables
	BitmapWords   int64 // 64-bit words of bitmap AND/OR
	BitTests      int64 // per-tuple bitmap membership tests

	Wall time.Duration // measured wall-clock time
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.IO.Add(other.IO)
	s.TuplesScanned += other.TuplesScanned
	s.TupleProbes += other.TupleProbes
	s.TuplesAgg += other.TuplesAgg
	s.TuplesFetched += other.TuplesFetched
	s.HashBuildRows += other.HashBuildRows
	s.BitmapWords += other.BitmapWords
	s.BitTests += other.BitTests
	s.Wall += other.Wall
}

// SimulatedMicros converts the counted work to simulated microseconds on
// the paper's 1998 platform under model m.
func (s Stats) SimulatedMicros(m *cost.Model) float64 {
	return float64(s.IO.SeqReads)*m.SeqPage +
		float64(s.IO.RandReads)*m.RandPage +
		float64(s.TupleProbes)*m.TupleCPU +
		float64(s.TuplesAgg)*m.AggCPU +
		float64(s.TuplesFetched)*m.FetchCPU +
		float64(s.HashBuildRows)*m.BuildCPU +
		float64(s.BitmapWords)*m.BitmapWord +
		float64(s.BitTests)*m.BitTest
}

// SimulatedSeconds is SimulatedMicros scaled to seconds.
func (s Stats) SimulatedSeconds(m *cost.Model) float64 {
	return cost.Micros(s.SimulatedMicros(m))
}

func (s Stats) String() string {
	return fmt.Sprintf("io{%s} scan=%d probe=%d agg=%d fetch=%d build=%d bmwords=%d bittest=%d wall=%s",
		s.IO, s.TuplesScanned, s.TupleProbes, s.TuplesAgg, s.TuplesFetched,
		s.HashBuildRows, s.BitmapWords, s.BitTests, s.Wall)
}

// Env carries what operators need: the database (dimension tables, views,
// indexes, buffer pool) and execution options.
type Env struct {
	DB *star.Database
	// ShareLookups enables sharing identical dimension lookup tables
	// between the queries of one shared-scan operator (§3.1's second
	// sharing opportunity). On by default; the ablation benchmark turns
	// it off.
	ShareLookups bool
	// Parallelism partitions shared scans across this many workers with
	// per-worker aggregation tables merged afterwards (all supported
	// aggregates are decomposable). Values below 2 run serially.
	Parallelism int
	// Ctx, when non-nil, is checked periodically during scans and
	// probes; cancellation aborts the operator with the context's error.
	Ctx context.Context
	// QueryCtx, when non-nil, supplies a per-query context (it may
	// return nil for queries without one). A done per-query context
	// detaches that query's pipelines from a shared pass — the pass
	// continues for the other queries, and only when every pipeline of
	// the pass has detached does the pass itself stop early. Detached
	// queries' results carry the context's error and must be discarded.
	// The admission scheduler uses this so one caller's cancellation
	// never aborts a scan other callers are sharing.
	QueryCtx func(*query.Query) context.Context
}

// NewEnv returns an Env with default options.
func NewEnv(db *star.Database) *Env {
	return &Env{DB: db, ShareLookups: true}
}

// checkEvery is how many tuples an operator processes between
// cancellation checks.
const checkEvery = 4096

// canceled returns the context's error if the Env's context is done.
func (e *Env) canceled() error {
	if e.Ctx == nil {
		return nil
	}
	select {
	case <-e.Ctx.Done():
		return e.Ctx.Err()
	default:
		return nil
	}
}

// measure runs f, recording wall time and the pool I/O delta into stats.
func (e *Env) measure(stats *Stats, f func() error) error {
	before := e.DB.Pool.Stats()
	start := time.Now()
	err := f()
	stats.Wall += time.Since(start)
	stats.IO.Add(e.DB.Pool.Stats().Sub(before))
	return err
}

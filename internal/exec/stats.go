// Package exec implements the query evaluation primitives of the paper:
// pipelined hash star joins, bitmap-index star joins, hash aggregation,
// and — the paper's §3 contribution — the three *shared* operators:
//
//   - SharedScanHash: one scan of a common base table drives many hash
//     star-join + aggregation pipelines, with dimension lookup tables
//     shared between queries that need identical ones (§3.1).
//   - SharedIndex: per-query result bitmaps are OR-ed and the base table
//     is probed once; fetched tuples are routed to each query's
//     aggregation by re-testing its bitmap (§3.2).
//   - SharedMixed: index-join plans are converted from bitmap probing to
//     scan-plus-bitmap-filter so they ride along a hash plan's scan
//     (§3.3).
//
// Every operator accounts its work in a Stats, which the cost model
// converts to simulated 1998-hardware seconds.
package exec

import (
	"context"
	"fmt"
	"os"
	"time"

	"mdxopt/internal/cost"
	"mdxopt/internal/dag"
	"mdxopt/internal/mem"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/storage"
)

// Stats accumulates the work performed by one or more operators. It is
// the single authoritative record of every counter the engine reports;
// each field is documented here and nowhere else.
//
// All fields are additive: Add sums them component-wise, and Attribute
// splits a shared pass's totals across its queries (non-shared work
// exactly, shared work as an equal split of the residual). Every int64
// field must also be listed in statComponents (attribution.go), which
// has a compile-coupled test.
type Stats struct {
	// IO is the physical page I/O observed at the buffer pool: sequential
	// and random reads, writes, hits, allocations, evictions, and full
	// flushes. Spill I/O does NOT appear here — spill files are written
	// through a private DiskManager, bypassing the pool, and are counted
	// in SpillBytes instead.
	IO storage.Stats

	TuplesScanned int64 // tuples decoded by sequential scans
	TupleProbes   int64 // tuple × query hash star-join probes
	TuplesAgg     int64 // qualifying tuples folded into aggregates
	TuplesFetched int64 // tuple extractions driven by bitmap probes
	HashBuildRows int64 // dimension rows inserted into join lookup tables
	BitmapWords   int64 // 64-bit words of bitmap AND/OR
	BitTests      int64 // per-tuple bitmap membership tests
	CacheRows     int64 // cached result rows re-aggregated by the zero-IO rollup operator
	// PackedFolds counts the subset of TuplesAgg folded through the
	// packed-key open-addressing kernel (foldtable.go) rather than the
	// byte-key fallback map. It marks which path did the work and adds
	// no simulated cost of its own — the folds are already priced as
	// TuplesAgg.
	PackedFolds int64

	// PeakMemory is the sum of the high-water marks of every memory
	// reservation the work held (aggregation tables, dimension lookups,
	// bitmaps, spill buffers), in bytes. Because the components peak at
	// different times, this is an upper bound on the true simultaneous
	// footprint; the broker's own Peak (mem.Broker.Stats) is the exact
	// global high-water mark. Sum-of-peaks is used here because it is
	// deterministic and additive, so Attribute can split it per query.
	PeakMemory int64
	// SpillBytes counts aggregation record bytes written to spill
	// partition files, including records rewritten by merge overflow
	// sub-passes. Zero when everything fit in budget.
	SpillBytes int64
	// SpillPartitions counts spill partitions created (fanout per spill
	// event). Zero when everything fit in budget.
	SpillPartitions int64

	Wall time.Duration // measured wall-clock time
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.IO.Add(other.IO)
	s.TuplesScanned += other.TuplesScanned
	s.TupleProbes += other.TupleProbes
	s.TuplesAgg += other.TuplesAgg
	s.TuplesFetched += other.TuplesFetched
	s.HashBuildRows += other.HashBuildRows
	s.BitmapWords += other.BitmapWords
	s.BitTests += other.BitTests
	s.CacheRows += other.CacheRows
	s.PackedFolds += other.PackedFolds
	s.PeakMemory += other.PeakMemory
	s.SpillBytes += other.SpillBytes
	s.SpillPartitions += other.SpillPartitions
	s.Wall += other.Wall
}

// SimulatedMicros converts the counted work to simulated microseconds on
// the paper's 1998 platform under model m.
func (s Stats) SimulatedMicros(m *cost.Model) float64 {
	return float64(s.IO.SeqReads)*m.SeqPage +
		float64(s.IO.RandReads)*m.RandPage +
		float64(s.TupleProbes)*m.TupleCPU +
		float64(s.TuplesAgg)*m.AggCPU +
		float64(s.TuplesFetched)*m.FetchCPU +
		float64(s.HashBuildRows)*m.BuildCPU +
		float64(s.BitmapWords)*m.BitmapWord +
		float64(s.BitTests)*m.BitTest +
		float64(s.CacheRows)*m.TupleCPU
}

// SimulatedSeconds is SimulatedMicros scaled to seconds.
func (s Stats) SimulatedSeconds(m *cost.Model) float64 {
	return cost.Micros(s.SimulatedMicros(m))
}

func (s Stats) String() string {
	return fmt.Sprintf("io{%s} scan=%d probe=%d agg=%d fetch=%d build=%d bmwords=%d bittest=%d cacherows=%d packed=%d peakmem=%d spill=%d/%dp wall=%s",
		s.IO, s.TuplesScanned, s.TupleProbes, s.TuplesAgg, s.TuplesFetched,
		s.HashBuildRows, s.BitmapWords, s.BitTests, s.CacheRows, s.PackedFolds,
		s.PeakMemory, s.SpillBytes, s.SpillPartitions, s.Wall)
}

// Env carries what operators need: a catalog snapshot (dimension
// tables, views, indexes, buffer pool) and execution options. The
// snapshot is immutable, so every pass of one Env evaluates against the
// same catalog state no matter what mutations publish meanwhile.
type Env struct {
	DB *star.Snapshot
	// ShareLookups enables sharing identical dimension lookup tables
	// between the queries of one shared-scan operator (§3.1's second
	// sharing opportunity). On by default; the ablation benchmark turns
	// it off.
	ShareLookups bool
	// Parallelism fans shared scans out across this many workers with
	// per-worker aggregation tables merged afterwards (all supported
	// aggregates are decomposable). Values below 2 run serially. It is
	// the standalone-Env alias of the unified pool width: when Pool is
	// set (the task-graph executor runs the pass), the pool's width
	// governs instead and this field is ignored, so a caller's two knobs
	// compose into one bound rather than multiplying.
	Parallelism int
	// Pool, when non-nil, is the run-wide worker pool the pass's scan
	// morsels draw slots from — the same pool the task-graph scheduler
	// starts nodes on. Extra scan workers beyond the pass's own
	// goroutine run only while they hold a pool slot, so total executor
	// concurrency never exceeds the pool width.
	Pool *dag.Pool
	// StaticPartition reverts shared scans to the legacy static
	// pre-split (one contiguous page range per worker, scanPartitions)
	// instead of morsel-driven work stealing. Results are identical;
	// the switch exists for the pool benchmark's straggler ablation.
	StaticPartition bool
	// MorselPages overrides the pages per scan morsel (default
	// defaultMorselPages). Smaller morsels steal more finely; tests use
	// tiny morsels to force contention on the shared cursor.
	MorselPages int
	// Ctx, when non-nil, is checked periodically during scans and
	// probes; cancellation aborts the operator with the context's error.
	Ctx context.Context
	// QueryCtx, when non-nil, supplies a per-query context (it may
	// return nil for queries without one). A done per-query context
	// detaches that query's pipelines from a shared pass — the pass
	// continues for the other queries, and only when every pipeline of
	// the pass has detached does the pass itself stop early. Detached
	// queries' results carry the context's error and must be discarded.
	// The admission scheduler uses this so one caller's cancellation
	// never aborts a scan other callers are sharing.
	QueryCtx func(*query.Query) context.Context
	// Mem, when non-nil, is the memory broker governing operator state:
	// every aggregation table, dimension lookup, bitmap, and spill buffer
	// holds a reservation against it. Aggregation tables degrade to a
	// partitioned disk spill when the broker refuses to grow them (see
	// spill.go); lookups, bitmaps, and spill buffers are required state
	// and use overdraft grants. A nil Mem runs ungoverned (reservations
	// are no-ops).
	Mem *mem.Broker
	// SpillDir is the directory for aggregation spill temp files; empty
	// means os.TempDir(). Files are removed when the pass finishes.
	SpillDir string
	// SpillFanout overrides the spill partition count (default 16).
	// Merge memory per partition is roughly the final group footprint
	// divided by the fanout.
	SpillFanout int
	// NoVectorIndex reverts the index star-join operators to the scalar
	// tuple-at-a-time probe loop: per-bit union iteration, per-row
	// fetch callbacks, and a scalar bitmap Get per tuple per query,
	// instead of the word-at-a-time routing kernel and page-batched
	// fetch (route.go). Results and every deterministic counter are
	// identical either way; the switch exists for the equivalence suite
	// and the idx benchmark's ablation baseline. The scalar probe always
	// runs serially.
	NoVectorIndex bool
	// NoPackedKeys disables the packed-key open-addressing fold kernel,
	// forcing every pipeline onto the legacy byte-key aggregation map.
	// Results are identical either way; the switch exists for ablation
	// benchmarks and equivalence harnesses.
	NoPackedKeys bool
	// Lookups, when non-nil, is a set of prebuilt dimension lookups
	// shared across passes: the task-graph executor hoists lookup builds
	// out of the class passes and runs each pass with the finished set.
	// Passes fall back to building privately when a lookup is missing.
	// Consulted only when ShareLookups is set.
	Lookups *LookupSet
	// IOFiles, when non-nil, restricts measure's I/O accounting to the
	// listed files' own counters instead of the pool-global delta. The
	// task-graph executor sets it per node: concurrent nodes touch
	// disjoint file sets, so pool-global deltas would double-count each
	// other's reads. A non-nil empty slice measures no I/O at all (cache
	// rollup nodes).
	IOFiles []*storage.File
}

// NewEnv returns an Env with default options, capturing a snapshot of
// db — a fresh freeze of a live *star.Database, or the given
// *star.Snapshot itself (pinned snapshots come from star.Database.Pin).
func NewEnv(db star.Catalog) *Env {
	return &Env{DB: db.Snapshot(), ShareLookups: true}
}

// checkEvery is how many tuples an operator processes between
// cancellation checks.
const checkEvery = 4096

// spillDir resolves the directory for spill temp files.
func (e *Env) spillDir() string {
	if e.SpillDir != "" {
		return e.SpillDir
	}
	return os.TempDir()
}

// spillFanout resolves the spill partition count.
func (e *Env) spillFanout() int {
	if e.SpillFanout > 0 {
		return e.SpillFanout
	}
	return defaultSpillFanout
}

// canceled returns the context's error if the Env's context is done.
func (e *Env) canceled() error {
	if e.Ctx == nil {
		return nil
	}
	select {
	case <-e.Ctx.Done():
		return e.Ctx.Err()
	default:
		return nil
	}
}

// measure runs f, recording wall time and the I/O delta into stats —
// pool-global by default, or the sum of Env.IOFiles' per-file counters
// when that is set (see the field's doc).
func (e *Env) measure(stats *Stats, f func() error) error {
	before := e.ioSnapshot()
	start := time.Now()
	err := f()
	stats.Wall += time.Since(start)
	stats.IO.Add(e.ioSnapshot().Sub(before))
	return err
}

// ioSnapshot reads the I/O counters measure brackets work with.
func (e *Env) ioSnapshot() storage.Stats {
	if e.IOFiles == nil {
		return e.DB.Pool.Stats()
	}
	var total storage.Stats
	for _, f := range e.IOFiles {
		total.Add(f.IOStats())
	}
	return total
}

package exec

import (
	"context"
	"testing"

	"mdxopt/internal/query"
)

// canceledCtx returns an already-canceled context.
func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestDetachLeavesSharersIntact cancels one query's per-submission
// context before a shared scan: its pipelines must detach (Result.Err
// set) while the other query's answer stays oracle-correct and the pass
// completes.
func TestDetachLeavesSharersIntact(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	dead, live := qs["Q1"], qs["Q9"]
	env.QueryCtx = func(q *query.Query) context.Context {
		if q == dead {
			return canceledCtx()
		}
		return context.Background()
	}
	defer func() { env.QueryCtx = nil }()

	var st Stats
	rs, err := SharedScanHash(env, db.Base(), []*query.Query{dead, live}, &st)
	if err != nil {
		t.Fatalf("SharedScanHash: %v", err)
	}
	if rs[0].Err == nil {
		t.Fatal("canceled query's result has no error")
	}
	if rs[1].Err != nil {
		t.Fatalf("surviving query's result has error: %v", rs[1].Err)
	}
	if st.TuplesScanned != db.Base().Rows() {
		t.Fatalf("pass scanned %d of %d rows: detach aborted the shared scan", st.TuplesScanned, db.Base().Rows())
	}
	env.QueryCtx = nil
	checkAgainstOracle(t, env, rs[1])
}

// TestAllDetachedAbortsPass verifies the complementary rule: when every
// pipeline's submission is canceled there is no one left to scan for,
// so the pass stops early instead of reading the whole table.
func TestAllDetachedAbortsPass(t *testing.T) {
	db, qs := testDB(t)
	env := NewEnv(db)
	env.QueryCtx = func(*query.Query) context.Context { return canceledCtx() }
	defer func() { env.QueryCtx = nil }()

	var st Stats
	rs, err := SharedScanHash(env, db.Base(), []*query.Query{qs["Q1"], qs["Q9"]}, &st)
	if err != nil {
		t.Fatalf("SharedScanHash: %v", err)
	}
	for i, r := range rs {
		if r.Err == nil {
			t.Fatalf("result %d of an all-canceled pass has no error", i)
		}
	}
	if st.TuplesScanned >= db.Base().Rows() {
		t.Fatalf("all pipelines detached but the pass scanned all %d rows", st.TuplesScanned)
	}
}

// TestDetachIndexPass exercises detachment on the shared-probe side.
func TestDetachIndexPass(t *testing.T) {
	db, qs := testDB(t)
	view := db.ViewByLevels([]int{1, 1, 1, 0})
	if view == nil {
		t.Skip("A'B'C'D view not materialized")
	}
	env := NewEnv(db)
	dead, live := qs["Q7"], qs["Q8"]
	env.QueryCtx = func(q *query.Query) context.Context {
		if q == dead {
			return canceledCtx()
		}
		return context.Background()
	}
	defer func() { env.QueryCtx = nil }()

	var st Stats
	rs, err := SharedIndex(env, view, []*query.Query{dead, live}, &st)
	if err != nil {
		t.Fatalf("SharedIndex: %v", err)
	}
	if rs[0].Err == nil {
		t.Fatal("canceled query's result has no error")
	}
	if rs[1].Err != nil {
		t.Fatalf("surviving query's result has error: %v", rs[1].Err)
	}
	env.QueryCtx = nil
	checkAgainstOracle(t, env, rs[1])
}

// TestAttributeConservesComponents checks the attribution invariant:
// per-query shares sum back to the pass totals (when pass >= sum of
// own), and each query keeps at least its own exactly-counted work.
func TestAttributeConservesComponents(t *testing.T) {
	var pass Stats
	pass.TuplesScanned = 1000
	pass.TupleProbes = 250
	pass.TuplesAgg = 103

	own := []Stats{{TupleProbes: 100, TuplesAgg: 1}, {TupleProbes: 150, TuplesAgg: 2}, {}}
	out := Attribute(pass, own)
	if len(out) != 3 {
		t.Fatalf("Attribute returned %d stats, want 3", len(out))
	}
	var sumScan, sumProbes, sumAgg int64
	for i, s := range out {
		if s.TupleProbes < own[i].TupleProbes {
			t.Fatalf("query %d lost own probes: %d < %d", i, s.TupleProbes, own[i].TupleProbes)
		}
		sumScan += s.TuplesScanned
		sumProbes += s.TupleProbes
		sumAgg += s.TuplesAgg
	}
	if sumScan != pass.TuplesScanned {
		t.Fatalf("scan shares sum to %d, want %d", sumScan, pass.TuplesScanned)
	}
	if sumProbes != pass.TupleProbes {
		t.Fatalf("probe shares sum to %d, want %d", sumProbes, pass.TupleProbes)
	}
	if sumAgg != pass.TuplesAgg {
		t.Fatalf("agg shares sum to %d, want %d", sumAgg, pass.TuplesAgg)
	}
	// The 1000-row scan splits 334/333/333 — remainder to the earliest.
	if out[0].TuplesScanned != 334 || out[2].TuplesScanned != 333 {
		t.Fatalf("scan split %d/%d/%d, want 334/333/333",
			out[0].TuplesScanned, out[1].TuplesScanned, out[2].TuplesScanned)
	}
}

// TestAttributeClampsNegativeResidual: when the queries' own counts
// exceed the pass total for a component (possible for fetch-side
// counters), attribution must not go negative — own counts are kept.
func TestAttributeClampsNegativeResidual(t *testing.T) {
	var pass Stats
	pass.TuplesFetched = 10
	own := []Stats{{TuplesFetched: 8}, {TuplesFetched: 8}}
	out := Attribute(pass, own)
	for i, s := range out {
		if s.TuplesFetched != 8 {
			t.Fatalf("query %d fetched share %d, want its own 8", i, s.TuplesFetched)
		}
	}
}

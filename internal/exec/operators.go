package exec

import (
	"errors"
	"fmt"

	"mdxopt/internal/bitmap"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/table"
)

// ErrNoIndex is returned when an index star join is requested on a view
// lacking a bitmap join index for a restricted dimension.
var ErrNoIndex = errors.New("exec: view has no bitmap join index for a restricted dimension")

// errDetached stops a shared pass early once every pipeline has
// detached; callers treat it as completion (each result then carries
// its per-query context's error).
var errDetached = errors.New("exec: all pipelines detached")

// checkpoint polls global cancellation, spill I/O failures, and
// per-pipeline detachment for the given pipeline sets. It runs every
// checkEvery tuples, not per tuple. It returns errDetached when no
// pipeline is left attached.
func checkpoint(env *Env, sets ...[]*queryPipeline) error {
	if err := env.canceled(); err != nil {
		return err
	}
	alive, any := false, false
	for _, set := range sets {
		for _, p := range set {
			if p.ioErr != nil {
				return p.ioErr
			}
			any = true
			if !p.detachedNow() {
				alive = true
			}
		}
	}
	if any && !alive {
		return errDetached
	}
	return nil
}

// closePipes releases every pipeline's memory and spill state; used as
// a deferred cleanup so no path leaks reservations or temp files.
func closePipes(pipelines []*queryPipeline) {
	for _, p := range pipelines {
		p.close()
	}
}

// emit converts pipelines into results (merging any spilled state),
// attaching each query's own (non-shared) work and, for detached
// pipelines, the per-query context's error. Each pipeline's memory
// counters — reservation peak, spill volume, partitions — are folded
// into both its own stats and the pass stats.
func emit(stats *Stats, pipelines []*queryPipeline) ([]*Result, error) {
	out := make([]*Result, len(pipelines))
	for i, p := range pipelines {
		if p.ioErr != nil {
			return nil, p.ioErr
		}
		r, err := p.result()
		if err != nil {
			return nil, err
		}
		peak, spillBytes, spillParts := p.tabMemStats()
		p.own.PeakMemory += peak
		p.own.SpillBytes += spillBytes
		p.own.SpillPartitions += spillParts
		stats.PeakMemory += p.own.PeakMemory
		stats.SpillBytes += p.own.SpillBytes
		stats.SpillPartitions += p.own.SpillPartitions
		r.Own = p.own
		if p.qctx != nil {
			r.Err = p.qctx.Err()
		}
		out[i] = r
	}
	return out, nil
}

// bitsetBytes is the memory footprint of one result bitmap over rows.
func bitsetBytes(rows int64) int64 { return (rows + 63) / 64 * 8 }

// checkAnswerable validates that view can compute every query, including
// the aggregate-layout requirement (non-SUM queries need the base table
// or a multi-aggregate view — a sum-only view has no count/min/max
// information).
func checkAnswerable(env *Env, view *star.View, queries []*query.Query) error {
	for _, q := range queries {
		if !q.AnswerableFrom(view.Levels) {
			return fmt.Errorf("exec: view %s cannot answer %s", view.Name, q)
		}
		if q.Agg != query.Sum && view != env.DB.Base() && !view.MultiAgg() {
			return fmt.Errorf("exec: view %s lacks aggregate information for %s", view.Name, q)
		}
	}
	return nil
}

// HashJoinQuery evaluates a single query with a pipelined hash star join
// over view followed by hash aggregation (paper Fig. 1).
func HashJoinQuery(env *Env, view *star.View, q *query.Query, stats *Stats) (*Result, error) {
	rs, err := SharedScanHash(env, view, []*query.Query{q}, stats)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// SharedScanHash evaluates all queries with the shared-scan hash star
// join operator (§3.1, Fig. 2): one sequential scan of view feeds every
// query's join + aggregation pipeline, and identical dimension lookup
// tables are built once when Env.ShareLookups is set.
func SharedScanHash(env *Env, view *star.View, queries []*query.Query, stats *Stats) ([]*Result, error) {
	if err := checkAnswerable(env, view, queries); err != nil {
		return nil, err
	}
	var results []*Result
	err := env.measure(stats, func() error {
		cache := newLookupCache(env, stats)
		defer cache.close()
		pipelines := make([]*queryPipeline, len(queries))
		defer closePipes(pipelines)
		for i, q := range queries {
			p, err := newQueryPipeline(env, stats, cache, q, view)
			if err != nil {
				return err
			}
			pipelines[i] = p
		}
		// scanBatch feeds one decoded page of tuples to a pipeline set,
		// each pipeline consuming the whole batch through its fold
		// kernel (vectorized on the packed path).
		scanBatch := func(set []*queryPipeline, st *Stats, b *table.Batch) {
			for _, p := range set {
				p.foldBatch(st, b)
			}
		}
		if env.scanWidth() > 1 {
			err := parallelScan(env, view, stats,
				func() (any, error) {
					set := make([]*queryPipeline, len(queries))
					for i, q := range queries {
						p, err := newQueryPipeline(env, stats, cache, q, view)
						if err != nil {
							closePipes(set)
							return nil, err
						}
						set[i] = p
					}
					return set, nil
				},
				func(state any) error {
					return checkpoint(env, state.([]*queryPipeline))
				},
				func(state any, st *Stats, b *table.Batch) {
					scanBatch(state.([]*queryPipeline), st, b)
				},
				func(state any) error {
					for i, p := range state.([]*queryPipeline) {
						if err := pipelines[i].merge(p); err != nil {
							return err
						}
					}
					return nil
				},
				func(state any) {
					closePipes(state.([]*queryPipeline))
				})
			if err != nil {
				return err
			}
		} else {
			err := view.Heap.ScanRangeBatches(0, view.Rows(), func(b *table.Batch) error {
				if err := checkpoint(env, pipelines); err != nil {
					return err
				}
				stats.TuplesScanned += int64(b.N)
				scanBatch(pipelines, stats, b)
				return nil
			})
			if err != nil && err != errDetached {
				return err
			}
		}
		stats.PeakMemory += cache.memPeak()
		var err error
		results, err = emit(stats, pipelines)
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// resultBitmap builds the query's result bitmap over view: for each
// restricted dimension *with a bitmap join index* the per-member bitmaps
// are OR-ed, and the per-dimension results are AND-ed (§3.2 steps 1–5).
// Restricted dimensions without an index are returned as residual
// dimensions whose predicate must be applied to each fetched tuple (the
// paper's test queries all carry a D filter while only A, B and C are
// indexed). At least one restricted dimension must be indexed, otherwise
// an index star join is meaningless and ErrNoIndex is returned.
func resultBitmap(env *Env, view *star.View, q *query.Query, stats *Stats) (*bitmap.Bitset, []int, error) {
	var acc *bitmap.Bitset
	var residual []int
	restricted := q.RestrictedDims()
	for _, dim := range restricted {
		ix := view.Indexes[dim]
		if ix == nil {
			residual = append(residual, dim)
			continue
		}
		codes := q.ViewPredicate(dim, view.Levels[dim])
		bs, words, err := ix.OrOf(codes)
		if err != nil {
			return nil, nil, err
		}
		stats.BitmapWords += words
		if acc == nil {
			acc = bs
		} else {
			stats.BitmapWords += acc.And(bs)
		}
	}
	if acc == nil {
		if len(restricted) > 0 {
			return nil, nil, fmt.Errorf("%w: %s has no usable index for %s", ErrNoIndex, view.Name, q)
		}
		acc = bitmap.NewFull(view.Rows())
	}
	return acc, residual, nil
}

// pipelineBitmap builds p's result bitmap, charging the bitmap work to
// the pipeline's own stats as well as the pass stats.
func pipelineBitmap(env *Env, view *star.View, p *queryPipeline, stats *Stats) (*bitmap.Bitset, []int, error) {
	before := stats.BitmapWords
	bs, residual, err := resultBitmap(env, view, p.q, stats)
	if err != nil {
		return nil, nil, err
	}
	p.own.BitmapWords += stats.BitmapWords - before
	return bs, residual, nil
}

// IndexJoinQuery evaluates a single query with a bitmap-index star join
// over view (§3.2's standard join index plan, Fig. 3): build the result
// bitmap, probe the view at the set positions, roll up and aggregate.
func IndexJoinQuery(env *Env, view *star.View, q *query.Query, stats *Stats) (*Result, error) {
	rs, err := SharedIndex(env, view, []*query.Query{q}, stats)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// SharedIndex evaluates all queries with the shared index star join
// operator (§3.2, Fig. 4): the per-query result bitmaps are OR-ed, the
// view is probed once with the union, and each fetched tuple is routed to
// the queries whose bitmaps cover its position.
func SharedIndex(env *Env, view *star.View, queries []*query.Query, stats *Stats) ([]*Result, error) {
	if err := checkAnswerable(env, view, queries); err != nil {
		return nil, err
	}
	var results []*Result
	err := env.measure(stats, func() error {
		cache := newLookupCache(env, stats)
		defer cache.close()
		// Result bitmaps (and the union) are required state: the probe
		// cannot run without them, so their footprint is an overdraft
		// grant held for the duration of the pass.
		bres := env.Mem.Reserve("bitmaps")
		defer bres.Release()
		pipelines := make([]*queryPipeline, len(queries))
		defer closePipes(pipelines)
		bitmaps := make([]*bitmap.Bitset, len(queries))
		residuals := make([][]int, len(queries))
		for i, q := range queries {
			p, err := newQueryPipeline(env, stats, cache, q, view)
			if err != nil {
				return err
			}
			pipelines[i] = p
			bs, residual, err := pipelineBitmap(env, view, p, stats)
			if err != nil {
				return err
			}
			bres.MustGrow(bitsetBytes(view.Rows()))
			bitmaps[i] = bs
			residuals[i] = residual
		}
		union := bitmaps[0].Clone()
		bres.MustGrow(bitsetBytes(view.Rows()))
		for _, bs := range bitmaps[1:] {
			stats.BitmapWords += union.Or(bs)
		}
		err := view.Heap.FetchRows(union.Iterator(), func(row int64, keys []int32, measures []float64) error {
			if stats.TuplesFetched%checkEvery == 0 {
				if err := checkpoint(env, pipelines); err != nil {
					return err
				}
			}
			stats.TuplesFetched++
			vals := star.TupleAggregates(view, measures)
			for i, p := range pipelines {
				if p.detached {
					continue
				}
				if len(pipelines) > 1 {
					stats.BitTests++
					p.own.BitTests++
					if !bitmaps[i].Get(row) {
						continue
					}
				}
				p.own.TuplesFetched++
				if p.foldFiltered(keys, vals, residuals[i]) {
					stats.TuplesAgg++
					p.own.TuplesAgg++
					if p.packer != nil {
						stats.PackedFolds++
						p.own.PackedFolds++
					}
				}
			}
			return nil
		})
		if err != nil && err != errDetached {
			return err
		}
		stats.PeakMemory += cache.memPeak() + bres.Peak()
		results, err = emit(stats, pipelines)
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SharedMixed evaluates hash-join queries and index-join queries over the
// same view with one shared sequential scan (§3.3): the index queries'
// result bitmaps become selection filters applied to the scanned stream,
// saving their base-table probe I/O entirely. hashQueries may be empty,
// in which case the operator is a shared scan with bitmap filters only —
// the optimizer chooses this over SharedIndex when the union bitmap is
// dense enough that random probing would touch most pages anyway.
func SharedMixed(env *Env, view *star.View, hashQueries, indexQueries []*query.Query, stats *Stats) (hashResults, indexResults []*Result, err error) {
	if len(hashQueries)+len(indexQueries) == 0 {
		return nil, nil, nil
	}
	if err := checkAnswerable(env, view, hashQueries); err != nil {
		return nil, nil, err
	}
	if err := checkAnswerable(env, view, indexQueries); err != nil {
		return nil, nil, err
	}
	err = env.measure(stats, func() error {
		cache := newLookupCache(env, stats)
		defer cache.close()
		bres := env.Mem.Reserve("bitmaps")
		defer bres.Release()
		hashPipes := make([]*queryPipeline, len(hashQueries))
		defer closePipes(hashPipes)
		for i, q := range hashQueries {
			p, err := newQueryPipeline(env, stats, cache, q, view)
			if err != nil {
				return err
			}
			hashPipes[i] = p
		}
		indexPipes := make([]*queryPipeline, len(indexQueries))
		defer closePipes(indexPipes)
		bitmaps := make([]*bitmap.Bitset, len(indexQueries))
		residuals := make([][]int, len(indexQueries))
		for i, q := range indexQueries {
			p, err := newQueryPipeline(env, stats, cache, q, view)
			if err != nil {
				return err
			}
			indexPipes[i] = p
			bs, residual, err := pipelineBitmap(env, view, p, stats)
			if err != nil {
				return err
			}
			bres.MustGrow(bitsetBytes(view.Rows()))
			bitmaps[i] = bs
			residuals[i] = residual
		}
		// indexStep routes one scanned tuple to an index pipeline riding
		// the scan as a bitmap filter (§3.3).
		indexStep := func(i int, p *queryPipeline, st *Stats, row int64, keys []int32, vals [4]float64) {
			if p.detached {
				return
			}
			st.BitTests++
			p.own.BitTests++
			if bitmaps[i].Get(row) {
				st.TuplesFetched++
				p.own.TuplesFetched++
				if p.foldFiltered(keys, vals, residuals[i]) {
					st.TuplesAgg++
					p.own.TuplesAgg++
					if p.packer != nil {
						st.PackedFolds++
						p.own.PackedFolds++
					}
				}
			}
		}
		// mixedBatch feeds one decoded page to both pipeline sets: hash
		// pipelines consume the batch through the fold kernel; index
		// pipelines go tuple at a time because their bitmap tests need
		// the absolute row number.
		mixedBatch := func(hash, index []*queryPipeline, st *Stats, b *table.Batch) {
			for _, p := range hash {
				p.foldBatch(st, b)
			}
			if len(index) == 0 {
				return
			}
			for t := 0; t < b.N; t++ {
				keys, measures := b.Row(t)
				vals := star.TupleAggregates(view, measures)
				row := b.Start + int64(t)
				for i, p := range index {
					indexStep(i, p, st, row, keys, vals)
				}
			}
		}
		if env.scanWidth() > 1 {
			type mixedState struct {
				hash, index []*queryPipeline
			}
			err := parallelScan(env, view, stats,
				func() (any, error) {
					ms := &mixedState{
						hash:  make([]*queryPipeline, len(hashQueries)),
						index: make([]*queryPipeline, len(indexQueries)),
					}
					for i, q := range hashQueries {
						p, err := newQueryPipeline(env, stats, cache, q, view)
						if err != nil {
							closePipes(ms.hash)
							return nil, err
						}
						ms.hash[i] = p
					}
					for i, q := range indexQueries {
						p, err := newQueryPipeline(env, stats, cache, q, view)
						if err != nil {
							closePipes(ms.hash)
							closePipes(ms.index)
							return nil, err
						}
						ms.index[i] = p
					}
					return ms, nil
				},
				func(state any) error {
					ms := state.(*mixedState)
					return checkpoint(env, ms.hash, ms.index)
				},
				func(state any, st *Stats, b *table.Batch) {
					ms := state.(*mixedState)
					mixedBatch(ms.hash, ms.index, st, b)
				},
				func(state any) error {
					ms := state.(*mixedState)
					for i, p := range ms.hash {
						if err := hashPipes[i].merge(p); err != nil {
							return err
						}
					}
					for i, p := range ms.index {
						if err := indexPipes[i].merge(p); err != nil {
							return err
						}
					}
					return nil
				},
				func(state any) {
					ms := state.(*mixedState)
					closePipes(ms.hash)
					closePipes(ms.index)
				})
			if err != nil {
				return err
			}
		} else {
			err := view.Heap.ScanRangeBatches(0, view.Rows(), func(b *table.Batch) error {
				if err := checkpoint(env, hashPipes, indexPipes); err != nil {
					return err
				}
				stats.TuplesScanned += int64(b.N)
				mixedBatch(hashPipes, indexPipes, stats, b)
				return nil
			})
			if err != nil && err != errDetached {
				return err
			}
		}
		stats.PeakMemory += cache.memPeak() + bres.Peak()
		var err error
		hashResults, err = emit(stats, hashPipes)
		if err != nil {
			return err
		}
		indexResults, err = emit(stats, indexPipes)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return hashResults, indexResults, nil
}

package exec

import (
	"errors"
	"fmt"

	"mdxopt/internal/bitmap"
	"mdxopt/internal/mem"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/table"
)

// ErrNoIndex is returned when an index star join is requested on a view
// lacking a bitmap join index for a restricted dimension.
var ErrNoIndex = errors.New("exec: view has no bitmap join index for a restricted dimension")

// errDetached stops a shared pass early once every pipeline has
// detached; callers treat it as completion (each result then carries
// its per-query context's error).
var errDetached = errors.New("exec: all pipelines detached")

// checkpoint polls global cancellation, spill I/O failures, and
// per-pipeline detachment for the given pipeline sets. It runs every
// checkEvery tuples, not per tuple. It returns errDetached when no
// pipeline is left attached.
func checkpoint(env *Env, sets ...[]*queryPipeline) error {
	if err := env.canceled(); err != nil {
		return err
	}
	alive, any := false, false
	for _, set := range sets {
		for _, p := range set {
			if p.ioErr != nil {
				return p.ioErr
			}
			any = true
			if !p.detachedNow() {
				alive = true
			}
		}
	}
	if any && !alive {
		return errDetached
	}
	return nil
}

// closePipes releases every pipeline's memory and spill state; used as
// a deferred cleanup so no path leaks reservations or temp files.
func closePipes(pipelines []*queryPipeline) {
	for _, p := range pipelines {
		p.close()
	}
}

// emit converts pipelines into results (merging any spilled state),
// attaching each query's own (non-shared) work and, for detached
// pipelines, the per-query context's error. Each pipeline's memory
// counters — reservation peak, spill volume, partitions — are folded
// into both its own stats and the pass stats.
func emit(stats *Stats, pipelines []*queryPipeline) ([]*Result, error) {
	out := make([]*Result, len(pipelines))
	for i, p := range pipelines {
		if p.ioErr != nil {
			return nil, p.ioErr
		}
		r, err := p.result()
		if err != nil {
			return nil, err
		}
		peak, spillBytes, spillParts := p.tabMemStats()
		p.own.PeakMemory += peak
		p.own.SpillBytes += spillBytes
		p.own.SpillPartitions += spillParts
		stats.PeakMemory += p.own.PeakMemory
		stats.SpillBytes += p.own.SpillBytes
		stats.SpillPartitions += p.own.SpillPartitions
		r.Own = p.own
		if p.qctx != nil {
			r.Err = p.qctx.Err()
		}
		out[i] = r
	}
	return out, nil
}

// bitsetBytes is the memory footprint of one result bitmap over rows.
func bitsetBytes(rows int64) int64 { return (rows + 63) / 64 * 8 }

// checkAnswerable validates that view can compute every query, including
// the aggregate-layout requirement (non-SUM queries need the base table
// or a multi-aggregate view — a sum-only view has no count/min/max
// information).
func checkAnswerable(env *Env, view *star.View, queries []*query.Query) error {
	for _, q := range queries {
		if !q.AnswerableFrom(view.Levels) {
			return fmt.Errorf("exec: view %s cannot answer %s", view.Name, q)
		}
		if q.Agg != query.Sum && !view.IsBase() && !view.MultiAgg() {
			return fmt.Errorf("exec: view %s lacks aggregate information for %s", view.Name, q)
		}
	}
	return nil
}

// HashJoinQuery evaluates a single query with a pipelined hash star join
// over view followed by hash aggregation (paper Fig. 1).
func HashJoinQuery(env *Env, view *star.View, q *query.Query, stats *Stats) (*Result, error) {
	rs, err := SharedScanHash(env, view, []*query.Query{q}, stats)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// SharedScanHash evaluates all queries with the shared-scan hash star
// join operator (§3.1, Fig. 2): one sequential scan of view feeds every
// query's join + aggregation pipeline, and identical dimension lookup
// tables are built once when Env.ShareLookups is set.
func SharedScanHash(env *Env, view *star.View, queries []*query.Query, stats *Stats) ([]*Result, error) {
	if err := checkAnswerable(env, view, queries); err != nil {
		return nil, err
	}
	var results []*Result
	err := env.measure(stats, func() error {
		cache := newLookupCache(env, stats)
		defer cache.close()
		pipelines := make([]*queryPipeline, len(queries))
		defer closePipes(pipelines)
		for i, q := range queries {
			p, err := newQueryPipeline(env, stats, cache, q, view)
			if err != nil {
				return err
			}
			pipelines[i] = p
		}
		// scanBatch feeds one decoded page of tuples to a pipeline set,
		// each pipeline consuming the whole batch through its fold
		// kernel (vectorized on the packed path).
		scanBatch := func(set []*queryPipeline, st *Stats, b *table.Batch) {
			for _, p := range set {
				p.foldBatch(st, b)
			}
		}
		if env.scanWidth() > 1 {
			err := parallelScan(env, view, stats,
				func() (any, error) {
					set := make([]*queryPipeline, len(queries))
					for i, q := range queries {
						p, err := newQueryPipeline(env, stats, cache, q, view)
						if err != nil {
							closePipes(set)
							return nil, err
						}
						set[i] = p
					}
					return set, nil
				},
				func(state any) error {
					return checkpoint(env, state.([]*queryPipeline))
				},
				func(state any, st *Stats, b *table.Batch) {
					scanBatch(state.([]*queryPipeline), st, b)
				},
				func(state any) error {
					for i, p := range state.([]*queryPipeline) {
						if err := pipelines[i].merge(p); err != nil {
							return err
						}
					}
					return nil
				},
				func(state any) {
					closePipes(state.([]*queryPipeline))
				})
			if err != nil {
				return err
			}
		} else {
			err := view.Heap.ScanRangeBatches(0, view.Rows(), func(b *table.Batch) error {
				if err := checkpoint(env, pipelines); err != nil {
					return err
				}
				stats.TuplesScanned += int64(b.N)
				scanBatch(pipelines, stats, b)
				return nil
			})
			if err != nil && err != errDetached {
				return err
			}
		}
		stats.PeakMemory += cache.memPeak()
		var err error
		results, err = emit(stats, pipelines)
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// resultBitmap builds the query's result bitmap over view: for each
// restricted dimension *with a bitmap join index* the per-member bitmaps
// are OR-ed, and the per-dimension results are AND-ed (§3.2 steps 1–5).
// Restricted dimensions without an index are returned as residual
// dimensions whose predicate must be applied to each fetched tuple (the
// paper's test queries all carry a D filter while only A, B and C are
// indexed). At least one restricted dimension must be indexed, otherwise
// an index star join is meaningless and ErrNoIndex is returned.
func resultBitmap(env *Env, view *star.View, q *query.Query, stats *Stats) (*bitmap.Bitset, []int, error) {
	var acc *bitmap.Bitset
	var residual []int
	restricted := q.RestrictedDims()
	for _, dim := range restricted {
		ix := view.Indexes[dim]
		if ix == nil {
			residual = append(residual, dim)
			continue
		}
		codes := q.ViewPredicate(dim, view.Levels[dim])
		bs, words, err := ix.OrOf(codes)
		if err != nil {
			return nil, nil, err
		}
		stats.BitmapWords += words
		if acc == nil {
			acc = bs
		} else {
			stats.BitmapWords += acc.And(bs)
		}
	}
	if acc == nil {
		if len(restricted) > 0 {
			return nil, nil, fmt.Errorf("%w: %s has no usable index for %s", ErrNoIndex, view.Name, q)
		}
		acc = bitmap.NewFull(view.Rows())
	}
	return acc, residual, nil
}

// pipelineBitmap builds p's result bitmap, charging the bitmap work to
// the pipeline's own stats as well as the pass stats.
func pipelineBitmap(env *Env, view *star.View, p *queryPipeline, stats *Stats) (*bitmap.Bitset, []int, error) {
	before := stats.BitmapWords
	bs, residual, err := resultBitmap(env, view, p.q, stats)
	if err != nil {
		return nil, nil, err
	}
	p.own.BitmapWords += stats.BitmapWords - before
	return bs, residual, nil
}

// IndexJoinQuery evaluates a single query with a bitmap-index star join
// over view (§3.2's standard join index plan, Fig. 3): build the result
// bitmap, probe the view at the set positions, roll up and aggregate.
func IndexJoinQuery(env *Env, view *star.View, q *query.Query, stats *Stats) (*Result, error) {
	rs, err := SharedIndex(env, view, []*query.Query{q}, stats)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// SharedIndex evaluates all queries with the shared index star join
// operator (§3.2, Fig. 4): the per-query result bitmaps are OR-ed, the
// view is probed once with the union, and each fetched tuple is routed to
// the queries whose bitmaps cover its position.
//
// The probe is vectorized (route.go): the union drives a page-batched
// fetch, routing is one AND per bitmap word, and with a worker pool the
// pages are claimed morsel-wise from a shared cursor with per-worker
// pipelines merged in worker-index order, exactly like the parallel
// shared scan. Env.NoVectorIndex reverts to the scalar per-tuple loop;
// results and deterministic counters are identical either way.
func SharedIndex(env *Env, view *star.View, queries []*query.Query, stats *Stats) ([]*Result, error) {
	if err := checkAnswerable(env, view, queries); err != nil {
		return nil, err
	}
	var results []*Result
	err := env.measure(stats, func() error {
		cache := newLookupCache(env, stats)
		defer cache.close()
		// Result bitmaps (and the union) are required state: the probe
		// cannot run without them, so their footprint is an overdraft
		// grant held for the duration of the pass. The probe workers'
		// batch and selection-vector buffers ride the same reservation.
		bres := env.Mem.Reserve("bitmaps")
		defer bres.Release()
		pipelines := make([]*queryPipeline, len(queries))
		defer closePipes(pipelines)
		bitmaps := make([]*bitmap.Bitset, len(queries))
		residuals := make([][]int, len(queries))
		for i, q := range queries {
			p, err := newQueryPipeline(env, stats, cache, q, view)
			if err != nil {
				return err
			}
			pipelines[i] = p
			bs, residual, err := pipelineBitmap(env, view, p, stats)
			if err != nil {
				return err
			}
			bres.MustGrow(bitsetBytes(view.Rows()))
			bitmaps[i] = bs
			residuals[i] = residual
		}
		// A single query probes its own bitmap directly; a real union is
		// accumulated into a fresh bitset (no clone of the first operand)
		// with the n-1 ORs charged as bitmap work, same as the estimator
		// prices them.
		union := bitmaps[0]
		if len(bitmaps) > 1 {
			union = bitmap.New(view.Rows())
			bres.MustGrow(bitsetBytes(view.Rows()))
			union.CopyFrom(bitmaps[0])
			for _, bs := range bitmaps[1:] {
				stats.BitmapWords += bs.OrInto(union)
			}
		}
		ps := &probeShared{
			view:      view,
			union:     union,
			bitmaps:   bitmaps,
			residuals: residuals,
			tpp:       int64(view.Heap.TuplesPerPage()),
			rows:      view.Rows(),
		}
		width := env.scanWidth()
		switch {
		case env.NoVectorIndex:
			if err := ps.probeScalar(env, pipelines, stats); err != nil && err != errDetached {
				return err
			}
		case width <= 1:
			bres.MustGrow(probeBufBytes(view))
			w := newProbeWorker(view, pipelines)
			pages := (ps.rows + ps.tpp - 1) / ps.tpp
			if err := ps.probePages(env, w, stats, 0, pages); err != nil && err != errDetached {
				return err
			}
		default:
			if err := parallelProbe(env, cache, view, ps, queries, pipelines, stats, bres, width); err != nil {
				return err
			}
		}
		stats.PeakMemory += cache.memPeak() + bres.Peak()
		var err error
		results, err = emit(stats, pipelines)
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// parallelProbe fans the vectorized union probe out across the worker
// pool: each worker gets its own pipeline set, fetch batch, and routing
// scratch, claims page-aligned morsels from the shared cursor, and is
// merged into the primary pipelines in worker-index order — the same
// shape (and determinism argument) as parallelScan.
func parallelProbe(env *Env, cache *lookupCache, view *star.View, ps *probeShared,
	queries []*query.Query, pipelines []*queryPipeline, stats *Stats, bres *mem.Reservation, width int) error {

	workers := make([]*probeWorker, width)
	defer func() {
		for _, pw := range workers {
			if pw != nil {
				closePipes(pw.pipelines)
			}
		}
	}()
	for wi := range workers {
		set := make([]*queryPipeline, len(queries))
		for i, q := range queries {
			p, err := newQueryPipeline(env, stats, cache, q, view)
			if err != nil {
				closePipes(set)
				return err
			}
			set[i] = p
		}
		bres.MustGrow(probeBufBytes(view))
		workers[wi] = newProbeWorker(view, set)
	}
	workerStats := make([]Stats, width)
	errs := make([]error, width)
	pages := (ps.rows + ps.tpp - 1) / ps.tpp
	morselDrive(env, pages, width, errs, func(wi int, fromPage, toPage int64) error {
		return ps.probePages(env, workers[wi], &workerStats[wi], fromPage, toPage)
	})
	for _, e := range errs {
		if e != nil && e != errDetached {
			return e
		}
	}
	for wi := range workers {
		stats.Add(workerStats[wi])
		for i, p := range workers[wi].pipelines {
			if err := pipelines[i].merge(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// SharedMixed evaluates hash-join queries and index-join queries over the
// same view with one shared sequential scan (§3.3): the index queries'
// result bitmaps become selection filters applied to the scanned stream,
// saving their base-table probe I/O entirely. hashQueries may be empty,
// in which case the operator is a shared scan with bitmap filters only —
// the optimizer chooses this over SharedIndex when the union bitmap is
// dense enough that random probing would touch most pages anyway.
func SharedMixed(env *Env, view *star.View, hashQueries, indexQueries []*query.Query, stats *Stats) (hashResults, indexResults []*Result, err error) {
	if len(hashQueries)+len(indexQueries) == 0 {
		return nil, nil, nil
	}
	if err := checkAnswerable(env, view, hashQueries); err != nil {
		return nil, nil, err
	}
	if err := checkAnswerable(env, view, indexQueries); err != nil {
		return nil, nil, err
	}
	err = env.measure(stats, func() error {
		cache := newLookupCache(env, stats)
		defer cache.close()
		bres := env.Mem.Reserve("bitmaps")
		defer bres.Release()
		hashPipes := make([]*queryPipeline, len(hashQueries))
		defer closePipes(hashPipes)
		for i, q := range hashQueries {
			p, err := newQueryPipeline(env, stats, cache, q, view)
			if err != nil {
				return err
			}
			hashPipes[i] = p
		}
		indexPipes := make([]*queryPipeline, len(indexQueries))
		defer closePipes(indexPipes)
		bitmaps := make([]*bitmap.Bitset, len(indexQueries))
		residuals := make([][]int, len(indexQueries))
		for i, q := range indexQueries {
			p, err := newQueryPipeline(env, stats, cache, q, view)
			if err != nil {
				return err
			}
			indexPipes[i] = p
			bs, residual, err := pipelineBitmap(env, view, p, stats)
			if err != nil {
				return err
			}
			bres.MustGrow(bitsetBytes(view.Rows()))
			bitmaps[i] = bs
			residuals[i] = residual
		}
		// mixedState is one worker's private state: both pipeline sets
		// plus the routing scratch the vectorized index filters use
		// (masked bitmap words and a selection vector, sized to a page).
		type mixedState struct {
			hash, index []*queryPipeline
			uwords      []uint64
			sel         []int32
		}
		newMixedScratch := func(ms *mixedState) {
			if len(indexQueries) == 0 || env.NoVectorIndex {
				return
			}
			tpp := view.Heap.TuplesPerPage()
			ms.uwords = make([]uint64, 0, tpp/wordBits+2)
			ms.sel = make([]int32, 0, tpp)
			bres.MustGrow(int64(4*tpp) + int64(tpp/wordBits+2)*8)
		}
		// mixedBatch feeds one decoded page to both pipeline sets: hash
		// pipelines consume the batch through the fold kernel; index
		// pipelines ride the same batch as bitmap filters (§3.3) — each
		// pipeline's bitmap words over the batch's row range are masked
		// and expanded to a selection vector (one AND-free word walk per
		// query, the bitmap itself is the hit word), and the survivors
		// fold through the selection kernel. Env.NoVectorIndex replays
		// the scalar per-tuple Get loop instead, with the tuple's
		// aggregate components computed lazily on first consumption.
		mixedBatch := func(ms *mixedState, st *Stats, b *table.Batch) {
			for _, p := range ms.hash {
				p.foldBatch(st, b)
			}
			if len(ms.index) == 0 {
				return
			}
			if !env.NoVectorIndex {
				for i, p := range ms.index {
					if p.detached {
						continue
					}
					st.BitTests += int64(b.N)
					p.own.BitTests += int64(b.N)
					var w0 int
					ms.uwords, w0 = maskedWords(ms.uwords, bitmaps[i].Words(), b.Start, b.Start+int64(b.N))
					ms.sel = expandWords(ms.sel[:0], ms.uwords, w0, b.Start)
					hits := int64(len(ms.sel))
					st.TuplesFetched += hits
					p.own.TuplesFetched += hits
					if hits > 0 {
						p.foldBatchSel(st, b, ms.sel, residuals[i])
					}
				}
				return
			}
			for t := 0; t < b.N; t++ {
				keys, measures := b.Row(t)
				row := b.Start + int64(t)
				valsReady := false
				var vals [4]float64
				for i, p := range ms.index {
					if p.detached {
						continue
					}
					st.BitTests++
					p.own.BitTests++
					if !bitmaps[i].Get(row) {
						continue
					}
					if !valsReady {
						vals = star.TupleAggregates(view, measures)
						valsReady = true
					}
					st.TuplesFetched++
					p.own.TuplesFetched++
					if p.foldFiltered(keys, vals, residuals[i]) {
						st.TuplesAgg++
						p.own.TuplesAgg++
						if p.packer != nil {
							st.PackedFolds++
							p.own.PackedFolds++
						}
					}
				}
			}
		}
		if env.scanWidth() > 1 {
			err := parallelScan(env, view, stats,
				func() (any, error) {
					ms := &mixedState{
						hash:  make([]*queryPipeline, len(hashQueries)),
						index: make([]*queryPipeline, len(indexQueries)),
					}
					for i, q := range hashQueries {
						p, err := newQueryPipeline(env, stats, cache, q, view)
						if err != nil {
							closePipes(ms.hash)
							return nil, err
						}
						ms.hash[i] = p
					}
					for i, q := range indexQueries {
						p, err := newQueryPipeline(env, stats, cache, q, view)
						if err != nil {
							closePipes(ms.hash)
							closePipes(ms.index)
							return nil, err
						}
						ms.index[i] = p
					}
					newMixedScratch(ms)
					return ms, nil
				},
				func(state any) error {
					ms := state.(*mixedState)
					return checkpoint(env, ms.hash, ms.index)
				},
				func(state any, st *Stats, b *table.Batch) {
					mixedBatch(state.(*mixedState), st, b)
				},
				func(state any) error {
					ms := state.(*mixedState)
					for i, p := range ms.hash {
						if err := hashPipes[i].merge(p); err != nil {
							return err
						}
					}
					for i, p := range ms.index {
						if err := indexPipes[i].merge(p); err != nil {
							return err
						}
					}
					return nil
				},
				func(state any) {
					ms := state.(*mixedState)
					closePipes(ms.hash)
					closePipes(ms.index)
				})
			if err != nil {
				return err
			}
		} else {
			serial := &mixedState{hash: hashPipes, index: indexPipes}
			newMixedScratch(serial)
			err := view.Heap.ScanRangeBatches(0, view.Rows(), func(b *table.Batch) error {
				if err := checkpoint(env, hashPipes, indexPipes); err != nil {
					return err
				}
				stats.TuplesScanned += int64(b.N)
				mixedBatch(serial, stats, b)
				return nil
			})
			if err != nil && err != errDetached {
				return err
			}
		}
		stats.PeakMemory += cache.memPeak() + bres.Peak()
		var err error
		hashResults, err = emit(stats, hashPipes)
		if err != nil {
			return err
		}
		indexResults, err = emit(stats, indexPipes)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return hashResults, indexResults, nil
}

package exec

import (
	"context"
	"fmt"

	"mdxopt/internal/mem"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/table"
)

// dimLookup is the in-memory join structure the hash star join builds
// from one dimension table: for every code at the view column's level it
// gives the group-by code at the query's level and whether the code
// passes the query's predicate.
//
// It corresponds to the paper's per-dimension join hash table (Fig. 1);
// because our member codes are dense the table is an array, but building
// it still scans the stored dimension table and is charged per row, and
// two queries needing the same table can share one (§3.1).
type dimLookup struct {
	out  []int32 // view-level code -> query-level code
	pass []bool  // nil when the dimension is unrestricted
}

// lookupKey identifies a dimLookup for sharing.
type lookupKey struct {
	dim       int
	viewLevel int
	sig       string // query-side signature: target level + predicate
}

// lookupBytesPerRow is the estimated footprint of one view-level code in
// a dimLookup: 4 bytes of out plus 1 byte of pass. The plan.Estimator
// memory model mirrors this constant.
const lookupBytesPerRow = 5

// lookupCache shares dimension lookups across the queries of one shared
// operator invocation. Lookups are required state — the join cannot run
// without them — so their memory is an overdraft grant on the broker,
// held until the pass closes the cache.
type lookupCache struct {
	env     *Env
	entries map[lookupKey]*dimLookup
	stats   *Stats
	res     *mem.Reservation
}

func newLookupCache(env *Env, stats *Stats) *lookupCache {
	return &lookupCache{
		env:     env,
		entries: map[lookupKey]*dimLookup{},
		stats:   stats,
		res:     env.Mem.Reserve("lookups"),
	}
}

// get returns the lookup for dimension dim of q against a view column at
// viewLevel, building (and, if sharing is enabled, caching) it. Lookups
// prebuilt into a shared set (Env.Lookups) are preferred — the pass then
// holds no memory for them and charges no build work; a set miss falls
// back to the pass-local build below.
func (c *lookupCache) get(q *query.Query, dim, viewLevel int) (*dimLookup, error) {
	key := lookupKey{dim: dim, viewLevel: viewLevel, sig: dimSignature(q, dim)}
	if c.env.ShareLookups {
		if c.env.Lookups != nil {
			if lk := c.env.Lookups.get(key); lk != nil {
				return lk, nil
			}
		}
		if lk, ok := c.entries[key]; ok {
			return lk, nil
		}
	}
	lk, err := buildLookup(c.env, c.stats, q, dim, viewLevel)
	if err != nil {
		return nil, err
	}
	c.res.MustGrow(int64(len(lk.out)) * lookupBytesPerRow)
	if c.env.ShareLookups {
		c.entries[key] = lk
	}
	return lk, nil
}

// memPeak returns the cache reservation's high-water mark.
func (c *lookupCache) memPeak() int64 { return c.res.Peak() }

// close releases the cache's memory reservation. Idempotent.
func (c *lookupCache) close() { c.res.Release() }

// dimSignature identifies the query side of a lookup: target level and
// predicate members.
func dimSignature(q *query.Query, dim int) string {
	s := fmt.Sprintf("%d:", q.Levels[dim])
	if q.Preds[dim].IsRestricted() {
		for _, m := range q.Preds[dim].Members {
			s += fmt.Sprintf("%d,", m)
		}
	} else {
		s += "*"
	}
	return s
}

// buildLookup scans the stored dimension table to build the join lookup,
// mirroring the hash-table build phase of the pipelined star join. The
// scan's page I/O lands in the pool stats; each useful row is charged as
// a hash-build row.
func buildLookup(env *Env, stats *Stats, q *query.Query, dim, viewLevel int) (*dimLookup, error) {
	d := env.DB.Schema.Dims[dim]
	targetLevel := q.Levels[dim]
	if viewLevel > targetLevel {
		return nil, fmt.Errorf("exec: view level %d coarser than query level %d on %s",
			viewLevel, targetLevel, d.Name)
	}
	card := d.Card(viewLevel)
	lk := &dimLookup{out: make([]int32, card)}
	memberSet := q.MemberSet(dim)
	if memberSet != nil {
		lk.pass = make([]bool, card)
	}

	if viewLevel >= d.NumLevels() {
		// View column is at the ALL level: single code 0.
		lk.out[0] = 0
		if lk.pass != nil {
			lk.pass[0] = memberSet[0]
		}
		return lk, nil
	}

	// Scan the dimension table once; dedupe view-level codes so each is
	// inserted once (the "hash table" keyed by the view column).
	seen := make([]bool, card)
	err := env.DB.DimTables[dim].Scan(func(row int64, keys []int32, _ []float64) error {
		code := keys[viewLevel]
		if seen[code] {
			return nil
		}
		seen[code] = true
		var target int32
		if targetLevel >= d.NumLevels() {
			target = 0
		} else {
			target = keys[targetLevel]
		}
		lk.out[code] = target
		if lk.pass != nil {
			lk.pass[code] = memberSet[target]
		}
		stats.HashBuildRows++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return lk, nil
}

// accum is one group's aggregation state. Component a carries the
// running sum/count/min/max per the query's aggregate; Avg additionally
// uses b for the running count.
type accum struct {
	a, b float64
	set  bool
}

// queryPipeline is the per-query tail of a star join: dimension lookups
// plus an aggregation table that spills under memory pressure.
//
// Two aggregation representations exist. When the query's group-by key
// packs into a uint64 (pack.go) and Env.NoPackedKeys is unset, the
// pipeline folds through the open-addressing foldTable — the default,
// allocation-free kernel. Otherwise it falls back to the byte-key
// aggTable. Exactly one of ftab and tab is non-nil.
type queryPipeline struct {
	q       *query.Query
	lookups []*dimLookup // one per dimension, indexed by dim position

	packer *keyPacker // non-nil on the packed kernel path
	ftab   *foldTable // packed open-addressing table (packer != nil)
	// selRows/selKeys are the batch kernel's scratch vectors (one page
	// of row indices and packed keys), reused batch to batch so the
	// steady-state fold loop performs no allocation.
	selRows []int32
	selKeys []uint64

	tab    *aggTable // byte-key fallback table (packer == nil)
	keyBuf []byte
	// qctx is the query's per-submission context (Env.QueryCtx); when
	// it is done the pipeline detaches: the shared pass keeps running
	// for the other queries while this one stops consuming tuples.
	qctx     context.Context
	detached bool
	// ioErr latches the first spill I/O failure; checked at scan
	// checkpoints and at emit, so the pass aborts without a per-tuple
	// error branch.
	ioErr error
	// own is the pipeline's non-shared work — probes, aggregations,
	// fetch routing, per-query bitmap building — counted alongside the
	// pass stats so Attribute can split a shared pass per query.
	own Stats
}

func newQueryPipeline(env *Env, stats *Stats, cache *lookupCache, q *query.Query, view *star.View) (*queryPipeline, error) {
	nd := env.DB.Schema.NumDims()
	p := &queryPipeline{
		q:       q,
		lookups: make([]*dimLookup, nd),
	}
	if kp, ok := newKeyPacker(q.Schema, q.Levels); ok && !env.NoPackedKeys {
		p.packer = kp
		p.ftab = newFoldTable(env, q.Agg, kp, q.Name)
		tpp := view.Heap.TuplesPerPage()
		p.selRows = make([]int32, 0, tpp)
		p.selKeys = make([]uint64, 0, tpp)
	} else {
		p.tab = newAggTable(env, q.Agg, 4*nd, q.Name)
		p.keyBuf = make([]byte, 4*nd)
	}
	if env.QueryCtx != nil {
		p.qctx = env.QueryCtx(q)
	}
	for dim := 0; dim < nd; dim++ {
		lk, err := cache.get(q, dim, view.Levels[dim])
		if err != nil {
			p.close()
			return nil, err
		}
		p.lookups[dim] = lk
	}
	return p, nil
}

// close releases the pipeline's aggregation memory and spill file.
// Idempotent and nil-safe; safe to call before or after result().
func (p *queryPipeline) close() {
	if p == nil {
		return
	}
	p.tab.close()
	p.ftab.close()
}

// pairs finalizes the pipeline's aggregation table — whichever
// representation it runs — into sorted canonical byte-key pairs.
func (p *queryPipeline) pairs() ([]aggPair, error) {
	if p.ftab != nil {
		return p.ftab.pairs()
	}
	return p.tab.pairs()
}

// tabMemStats reports the aggregation table's memory counters.
func (p *queryPipeline) tabMemStats() (peak, spillBytes, spillParts int64) {
	if p.ftab != nil {
		return p.ftab.memStats()
	}
	return p.tab.memStats()
}

// mergeTab folds another pipeline's aggregation table into p's; both
// pipelines run the same representation (they were built from the same
// query and Env).
func (p *queryPipeline) mergeTab(o *queryPipeline) error {
	if p.ftab != nil {
		return p.ftab.mergeFrom(o.ftab)
	}
	return p.tab.mergeFrom(o.tab)
}

// detachedNow polls the pipeline's per-query context, latching
// detachment. Called only at scan checkpoints, not per tuple.
func (p *queryPipeline) detachedNow() bool {
	if p.detached {
		return true
	}
	if p.qctx != nil {
		select {
		case <-p.qctx.Done():
			p.detached = true
		default:
		}
	}
	return p.detached
}

// scanStep pushes one scanned tuple through the pipeline unless it has
// detached, counting the work in both the pass stats and the
// pipeline's own stats.
func (p *queryPipeline) scanStep(st *Stats, keys []int32, vals [4]float64) {
	if p.detached {
		return
	}
	st.TupleProbes++
	p.own.TupleProbes++
	if p.probe(keys, vals) {
		st.TuplesAgg++
		p.own.TuplesAgg++
		if p.packer != nil {
			st.PackedFolds++
			p.own.PackedFolds++
		}
	}
}

// foldBatch pushes one decoded page of tuples through the pipeline —
// the scan operators' per-pipeline entry point. On the packed kernel
// path it runs the vectorized kernel below; on the byte-key fallback
// it replays the tuples through scanStep-equivalent per-tuple work.
//
// The vectorized kernel processes the batch dimension at a time
// instead of tuple at a time, hoisting the per-dimension branches
// (predicate presence, shift amount) out of the inner loops: dimension
// 0 seeds a selection vector of surviving row indices and their
// partial packed keys, each further dimension compacts the selection
// while OR-ing its field into the keys, and a final tight loop folds
// the survivors' measures into the table. All scratch lives in the
// pipeline (selRows/selKeys), so the steady state allocates nothing.
func (p *queryPipeline) foldBatch(st *Stats, b *table.Batch) {
	if p.detached || p.ioErr != nil {
		return
	}
	n := b.N
	st.TupleProbes += int64(n)
	p.own.TupleProbes += int64(n)
	if p.packer == nil {
		p.foldBatchBytes(st, b)
		return
	}
	nk := b.NumKeys()
	keys := b.Keys
	rows := p.selRows[:0]
	pk := p.selKeys[:0]

	lk := p.lookups[0]
	sh := p.packer.shifts[0]
	if lk.pass != nil {
		for t := 0; t < n; t++ {
			code := keys[t*nk]
			if !lk.pass[code] {
				continue
			}
			rows = append(rows, int32(t))
			pk = append(pk, uint64(uint32(lk.out[code]))<<sh)
		}
	} else {
		for t := 0; t < n; t++ {
			rows = append(rows, int32(t))
			pk = append(pk, uint64(uint32(lk.out[keys[t*nk]]))<<sh)
		}
	}
	for dim := 1; dim < len(p.lookups); dim++ {
		lk := p.lookups[dim]
		sh := p.packer.shifts[dim]
		if lk.pass != nil {
			w := 0
			for i, r := range rows {
				code := keys[int(r)*nk+dim]
				if !lk.pass[code] {
					continue
				}
				rows[w] = r
				pk[w] = pk[i] | uint64(uint32(lk.out[code]))<<sh
				w++
			}
			rows, pk = rows[:w], pk[:w]
		} else {
			for i, r := range rows {
				pk[i] |= uint64(uint32(lk.out[keys[int(r)*nk+dim]])) << sh
			}
		}
	}
	p.selRows, p.selKeys = rows[:0], pk[:0]

	survivors := int64(len(rows))
	st.TuplesAgg += survivors
	p.own.TuplesAgg += survivors
	st.PackedFolds += survivors
	p.own.PackedFolds += survivors
	if err := p.foldSelection(rows, pk, b); err != nil {
		p.ioErr = err
	}
}

// foldSelection runs the kernel's final fold loop: one find-or-insert
// per surviving tuple, with the aggregate's delta construction hoisted
// out of the loop (one loop variant per (measure layout, aggregate)
// combination instead of a per-tuple switch).
func (p *queryPipeline) foldSelection(rows []int32, pk []uint64, b *table.Batch) error {
	ft := p.ftab
	ms := b.Measures
	if b.NumMeasures() == 1 {
		switch p.q.Agg {
		case query.Count:
			for i := range rows {
				if err := ft.fold(pk[i], accum{a: 1, set: true}); err != nil {
					return err
				}
			}
		case query.Avg:
			for i, r := range rows {
				if err := ft.fold(pk[i], accum{a: ms[r], b: 1, set: true}); err != nil {
					return err
				}
			}
		default: // Sum, Min, Max: the single measure is the component
			for i, r := range rows {
				if err := ft.fold(pk[i], accum{a: ms[r], set: true}); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Multi-aggregate views carry the four components per tuple; pick
	// the query's column(s) once.
	var ai int
	switch p.q.Agg {
	case query.Count:
		ai = star.AggCount
	case query.Min:
		ai = star.AggMin
	case query.Max:
		ai = star.AggMax
	default:
		ai = star.AggSum
	}
	if p.q.Agg == query.Avg {
		for i, r := range rows {
			if err := ft.fold(pk[i], accum{a: ms[r*4+star.AggSum], b: ms[r*4+star.AggCount], set: true}); err != nil {
				return err
			}
		}
		return nil
	}
	for i, r := range rows {
		if err := ft.fold(pk[i], accum{a: ms[r*4+int32(ai)], set: true}); err != nil {
			return err
		}
	}
	return nil
}

// foldBatchBytes is foldBatch's byte-key fallback: per-tuple probes
// into the legacy aggregation map, identical to the pre-kernel scan
// loop. TupleProbes were already counted by foldBatch.
func (p *queryPipeline) foldBatchBytes(st *Stats, b *table.Batch) {
	nm := b.NumMeasures()
	for t := 0; t < b.N; t++ {
		keys, measures := b.Row(t)
		var vals [4]float64
		if nm == 4 {
			vals = [4]float64{measures[0], measures[1], measures[2], measures[3]}
		} else {
			m := measures[0]
			vals = [4]float64{m, 1, m, m}
		}
		if p.probe(keys, vals) {
			st.TuplesAgg++
			p.own.TuplesAgg++
		}
	}
}

// foldBatchSel is the index path's per-pipeline entry into the fold
// kernel: sel holds the batch slots of tuples whose position the
// query's bitmap already covers, so the indexed predicates are proven
// and only residual (unindexed restricted) dimensions still filter.
// Every survivor folds with its full packed key. It counts TuplesAgg
// (and PackedFolds on the packed path) in both st and the pipeline's
// own stats; TuplesFetched and BitTests are the caller's to count —
// they are properties of the routing, not the fold.
func (p *queryPipeline) foldBatchSel(st *Stats, b *table.Batch, sel []int32, residual []int) {
	if p.detached || p.ioErr != nil || len(sel) == 0 {
		return
	}
	if p.packer == nil {
		p.foldSelBytes(st, b, sel, residual)
		return
	}
	nk := b.NumKeys()
	keys := b.Keys
	rows := append(p.selRows[:0], sel...)
	for _, dim := range residual {
		lk := p.lookups[dim]
		if lk.pass == nil {
			continue
		}
		w := 0
		for _, r := range rows {
			if lk.pass[keys[int(r)*nk+dim]] {
				rows[w] = r
				w++
			}
		}
		rows = rows[:w]
	}
	pk := p.selKeys[:0]
	lk0 := p.lookups[0]
	sh0 := p.packer.shifts[0]
	for _, r := range rows {
		pk = append(pk, uint64(uint32(lk0.out[keys[int(r)*nk]]))<<sh0)
	}
	for dim := 1; dim < len(p.lookups); dim++ {
		lk := p.lookups[dim]
		sh := p.packer.shifts[dim]
		for i, r := range rows {
			pk[i] |= uint64(uint32(lk.out[keys[int(r)*nk+dim]])) << sh
		}
	}
	p.selRows, p.selKeys = rows[:0], pk[:0]

	survivors := int64(len(rows))
	st.TuplesAgg += survivors
	p.own.TuplesAgg += survivors
	st.PackedFolds += survivors
	p.own.PackedFolds += survivors
	if err := p.foldSelection(rows, pk, b); err != nil {
		p.ioErr = err
	}
}

// foldSelBytes is foldBatchSel's byte-key fallback: per-selected-tuple
// residual filtering and fold through the legacy aggregation map,
// identical to the scalar bitmap path's foldFiltered loop.
func (p *queryPipeline) foldSelBytes(st *Stats, b *table.Batch, sel []int32, residual []int) {
	nm := b.NumMeasures()
	for _, r := range sel {
		keys, measures := b.Row(int(r))
		var vals [4]float64
		if nm == 4 {
			vals = [4]float64{measures[0], measures[1], measures[2], measures[3]}
		} else {
			m := measures[0]
			vals = [4]float64{m, 1, m, m}
		}
		if p.foldFiltered(keys, vals, residual) {
			st.TuplesAgg++
			p.own.TuplesAgg++
		}
	}
}

// probe pushes one base-table tuple through the pipeline: predicate
// tests, rollup, and aggregation. vals is the tuple's (sum, count, min,
// max) accumulator (see star.TupleAggregates). Returns whether the
// tuple qualified.
func (p *queryPipeline) probe(keys []int32, vals [4]float64) bool {
	if p.packer != nil {
		var pk uint64
		for dim, lk := range p.lookups {
			code := keys[dim]
			if lk.pass != nil && !lk.pass[code] {
				return false
			}
			pk |= uint64(uint32(lk.out[code])) << p.packer.shifts[dim]
		}
		p.absorbPacked(pk, vals)
		return true
	}
	buf := p.keyBuf
	for dim, lk := range p.lookups {
		code := keys[dim]
		if lk.pass != nil && !lk.pass[code] {
			return false
		}
		g := lk.out[code]
		buf[dim*4] = byte(g)
		buf[dim*4+1] = byte(g >> 8)
		buf[dim*4+2] = byte(g >> 16)
		buf[dim*4+3] = byte(g >> 24)
	}
	p.absorb(vals)
	return true
}

// foldFiltered applies the residual predicates (restricted dimensions not
// covered by the query's result bitmap) and, when they pass, aggregates
// the tuple. Used on the bitmap path.
func (p *queryPipeline) foldFiltered(keys []int32, vals [4]float64, residual []int) bool {
	for _, dim := range residual {
		lk := p.lookups[dim]
		if lk.pass != nil && !lk.pass[keys[dim]] {
			return false
		}
	}
	p.fold(keys, vals)
	return true
}

// fold aggregates a tuple already known to qualify (used on the bitmap
// path, where the predicate was applied by the index).
func (p *queryPipeline) fold(keys []int32, vals [4]float64) {
	if p.packer != nil {
		var pk uint64
		for dim, lk := range p.lookups {
			pk |= uint64(uint32(lk.out[keys[dim]])) << p.packer.shifts[dim]
		}
		p.absorbPacked(pk, vals)
		return
	}
	buf := p.keyBuf
	for dim, lk := range p.lookups {
		g := lk.out[keys[dim]]
		buf[dim*4] = byte(g)
		buf[dim*4+1] = byte(g >> 8)
		buf[dim*4+2] = byte(g >> 16)
		buf[dim*4+3] = byte(g >> 24)
	}
	p.absorb(vals)
}

// absorb folds vals into the group currently addressed by keyBuf,
// according to the query's aggregate. Spill failures are latched into
// ioErr rather than returned — the hot loop stays branch-light and the
// next checkpoint aborts the pass.
func (p *queryPipeline) absorb(vals [4]float64) {
	if p.ioErr != nil {
		return
	}
	if err := p.tab.add(p.keyBuf, deltaOf(p.q.Agg, vals)); err != nil {
		p.ioErr = err
	}
}

// absorbPacked is absorb for the packed kernel: fold vals into the
// group addressed by the packed key.
func (p *queryPipeline) absorbPacked(pk uint64, vals [4]float64) {
	if p.ioErr != nil {
		return
	}
	if err := p.ftab.fold(pk, deltaOf(p.q.Agg, vals)); err != nil {
		p.ioErr = err
	}
}

// finalize converts a group's accumulation state into its result value.
func (p *queryPipeline) finalize(ac accum) float64 {
	if p.q.Agg == query.Avg {
		if ac.b == 0 {
			return 0
		}
		return ac.a / ac.b
	}
	return ac.a
}

package exec

import (
	"context"
	"fmt"

	"mdxopt/internal/mem"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
)

// dimLookup is the in-memory join structure the hash star join builds
// from one dimension table: for every code at the view column's level it
// gives the group-by code at the query's level and whether the code
// passes the query's predicate.
//
// It corresponds to the paper's per-dimension join hash table (Fig. 1);
// because our member codes are dense the table is an array, but building
// it still scans the stored dimension table and is charged per row, and
// two queries needing the same table can share one (§3.1).
type dimLookup struct {
	out  []int32 // view-level code -> query-level code
	pass []bool  // nil when the dimension is unrestricted
}

// lookupKey identifies a dimLookup for sharing.
type lookupKey struct {
	dim       int
	viewLevel int
	sig       string // query-side signature: target level + predicate
}

// lookupBytesPerRow is the estimated footprint of one view-level code in
// a dimLookup: 4 bytes of out plus 1 byte of pass. The plan.Estimator
// memory model mirrors this constant.
const lookupBytesPerRow = 5

// lookupCache shares dimension lookups across the queries of one shared
// operator invocation. Lookups are required state — the join cannot run
// without them — so their memory is an overdraft grant on the broker,
// held until the pass closes the cache.
type lookupCache struct {
	env     *Env
	entries map[lookupKey]*dimLookup
	stats   *Stats
	res     *mem.Reservation
}

func newLookupCache(env *Env, stats *Stats) *lookupCache {
	return &lookupCache{
		env:     env,
		entries: map[lookupKey]*dimLookup{},
		stats:   stats,
		res:     env.Mem.Reserve("lookups"),
	}
}

// get returns the lookup for dimension dim of q against a view column at
// viewLevel, building (and, if sharing is enabled, caching) it. Lookups
// prebuilt into a shared set (Env.Lookups) are preferred — the pass then
// holds no memory for them and charges no build work; a set miss falls
// back to the pass-local build below.
func (c *lookupCache) get(q *query.Query, dim, viewLevel int) (*dimLookup, error) {
	key := lookupKey{dim: dim, viewLevel: viewLevel, sig: dimSignature(q, dim)}
	if c.env.ShareLookups {
		if c.env.Lookups != nil {
			if lk := c.env.Lookups.get(key); lk != nil {
				return lk, nil
			}
		}
		if lk, ok := c.entries[key]; ok {
			return lk, nil
		}
	}
	lk, err := buildLookup(c.env, c.stats, q, dim, viewLevel)
	if err != nil {
		return nil, err
	}
	c.res.MustGrow(int64(len(lk.out)) * lookupBytesPerRow)
	if c.env.ShareLookups {
		c.entries[key] = lk
	}
	return lk, nil
}

// memPeak returns the cache reservation's high-water mark.
func (c *lookupCache) memPeak() int64 { return c.res.Peak() }

// close releases the cache's memory reservation. Idempotent.
func (c *lookupCache) close() { c.res.Release() }

// dimSignature identifies the query side of a lookup: target level and
// predicate members.
func dimSignature(q *query.Query, dim int) string {
	s := fmt.Sprintf("%d:", q.Levels[dim])
	if q.Preds[dim].IsRestricted() {
		for _, m := range q.Preds[dim].Members {
			s += fmt.Sprintf("%d,", m)
		}
	} else {
		s += "*"
	}
	return s
}

// buildLookup scans the stored dimension table to build the join lookup,
// mirroring the hash-table build phase of the pipelined star join. The
// scan's page I/O lands in the pool stats; each useful row is charged as
// a hash-build row.
func buildLookup(env *Env, stats *Stats, q *query.Query, dim, viewLevel int) (*dimLookup, error) {
	d := env.DB.Schema.Dims[dim]
	targetLevel := q.Levels[dim]
	if viewLevel > targetLevel {
		return nil, fmt.Errorf("exec: view level %d coarser than query level %d on %s",
			viewLevel, targetLevel, d.Name)
	}
	card := d.Card(viewLevel)
	lk := &dimLookup{out: make([]int32, card)}
	memberSet := q.MemberSet(dim)
	if memberSet != nil {
		lk.pass = make([]bool, card)
	}

	if viewLevel >= d.NumLevels() {
		// View column is at the ALL level: single code 0.
		lk.out[0] = 0
		if lk.pass != nil {
			lk.pass[0] = memberSet[0]
		}
		return lk, nil
	}

	// Scan the dimension table once; dedupe view-level codes so each is
	// inserted once (the "hash table" keyed by the view column).
	seen := make([]bool, card)
	err := env.DB.DimTables[dim].Scan(func(row int64, keys []int32, _ []float64) error {
		code := keys[viewLevel]
		if seen[code] {
			return nil
		}
		seen[code] = true
		var target int32
		if targetLevel >= d.NumLevels() {
			target = 0
		} else {
			target = keys[targetLevel]
		}
		lk.out[code] = target
		if lk.pass != nil {
			lk.pass[code] = memberSet[target]
		}
		stats.HashBuildRows++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return lk, nil
}

// accum is one group's aggregation state. Component a carries the
// running sum/count/min/max per the query's aggregate; Avg additionally
// uses b for the running count.
type accum struct {
	a, b float64
	set  bool
}

// queryPipeline is the per-query tail of a star join: dimension lookups
// plus an aggregation table that spills under memory pressure.
type queryPipeline struct {
	q       *query.Query
	lookups []*dimLookup // one per dimension, indexed by dim position
	tab     *aggTable
	keyBuf  []byte
	// qctx is the query's per-submission context (Env.QueryCtx); when
	// it is done the pipeline detaches: the shared pass keeps running
	// for the other queries while this one stops consuming tuples.
	qctx     context.Context
	detached bool
	// ioErr latches the first spill I/O failure; checked at scan
	// checkpoints and at emit, so the pass aborts without a per-tuple
	// error branch.
	ioErr error
	// own is the pipeline's non-shared work — probes, aggregations,
	// fetch routing, per-query bitmap building — counted alongside the
	// pass stats so Attribute can split a shared pass per query.
	own Stats
}

func newQueryPipeline(env *Env, stats *Stats, cache *lookupCache, q *query.Query, view *star.View) (*queryPipeline, error) {
	nd := env.DB.Schema.NumDims()
	p := &queryPipeline{
		q:       q,
		lookups: make([]*dimLookup, nd),
		tab:     newAggTable(env, q.Agg, 4*nd, q.Name),
		keyBuf:  make([]byte, 4*nd),
	}
	if env.QueryCtx != nil {
		p.qctx = env.QueryCtx(q)
	}
	for dim := 0; dim < nd; dim++ {
		lk, err := cache.get(q, dim, view.Levels[dim])
		if err != nil {
			p.close()
			return nil, err
		}
		p.lookups[dim] = lk
	}
	return p, nil
}

// close releases the pipeline's aggregation memory and spill file.
// Idempotent and nil-safe; safe to call before or after result().
func (p *queryPipeline) close() {
	if p == nil {
		return
	}
	p.tab.close()
}

// detachedNow polls the pipeline's per-query context, latching
// detachment. Called only at scan checkpoints, not per tuple.
func (p *queryPipeline) detachedNow() bool {
	if p.detached {
		return true
	}
	if p.qctx != nil {
		select {
		case <-p.qctx.Done():
			p.detached = true
		default:
		}
	}
	return p.detached
}

// scanStep pushes one scanned tuple through the pipeline unless it has
// detached, counting the work in both the pass stats and the
// pipeline's own stats.
func (p *queryPipeline) scanStep(st *Stats, keys []int32, vals [4]float64) {
	if p.detached {
		return
	}
	st.TupleProbes++
	p.own.TupleProbes++
	if p.probe(keys, vals) {
		st.TuplesAgg++
		p.own.TuplesAgg++
	}
}

// probe pushes one base-table tuple through the pipeline: predicate
// tests, rollup, and aggregation. vals is the tuple's (sum, count, min,
// max) accumulator (see star.TupleAggregates). Returns whether the
// tuple qualified.
func (p *queryPipeline) probe(keys []int32, vals [4]float64) bool {
	buf := p.keyBuf
	for dim, lk := range p.lookups {
		code := keys[dim]
		if lk.pass != nil && !lk.pass[code] {
			return false
		}
		g := lk.out[code]
		buf[dim*4] = byte(g)
		buf[dim*4+1] = byte(g >> 8)
		buf[dim*4+2] = byte(g >> 16)
		buf[dim*4+3] = byte(g >> 24)
	}
	p.absorb(vals)
	return true
}

// foldFiltered applies the residual predicates (restricted dimensions not
// covered by the query's result bitmap) and, when they pass, aggregates
// the tuple. Used on the bitmap path.
func (p *queryPipeline) foldFiltered(keys []int32, vals [4]float64, residual []int) bool {
	for _, dim := range residual {
		lk := p.lookups[dim]
		if lk.pass != nil && !lk.pass[keys[dim]] {
			return false
		}
	}
	p.fold(keys, vals)
	return true
}

// fold aggregates a tuple already known to qualify (used on the bitmap
// path, where the predicate was applied by the index).
func (p *queryPipeline) fold(keys []int32, vals [4]float64) {
	buf := p.keyBuf
	for dim, lk := range p.lookups {
		g := lk.out[keys[dim]]
		buf[dim*4] = byte(g)
		buf[dim*4+1] = byte(g >> 8)
		buf[dim*4+2] = byte(g >> 16)
		buf[dim*4+3] = byte(g >> 24)
	}
	p.absorb(vals)
}

// absorb folds vals into the group currently addressed by keyBuf,
// according to the query's aggregate. Spill failures are latched into
// ioErr rather than returned — the hot loop stays branch-light and the
// next checkpoint aborts the pass.
func (p *queryPipeline) absorb(vals [4]float64) {
	if p.ioErr != nil {
		return
	}
	if err := p.tab.add(p.keyBuf, deltaOf(p.q.Agg, vals)); err != nil {
		p.ioErr = err
	}
}

// finalize converts a group's accumulation state into its result value.
func (p *queryPipeline) finalize(ac accum) float64 {
	if p.q.Agg == query.Avg {
		if ac.b == 0 {
			return 0
		}
		return ac.a / ac.b
	}
	return ac.a
}

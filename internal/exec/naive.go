package exec

import (
	"encoding/binary"
	"sort"

	"mdxopt/internal/query"
)

// Naive evaluates a query directly against the base fact table with
// straight-line code: roll every tuple up to the query's levels, test the
// predicates, aggregate in a map. It shares no code with the operators in
// this package and serves as the correctness oracle in tests.
func Naive(env *Env, q *query.Query) (*Result, error) {
	base := env.DB.Base()
	nd := q.Schema.NumDims()
	sets := make([][]bool, nd)
	for i := 0; i < nd; i++ {
		sets[i] = q.MemberSet(i)
	}
	type state struct {
		sum, count, min, max float64
		set                  bool
	}
	agg := make(map[string]*state)
	buf := make([]byte, 4*nd)
	err := base.Heap.Scan(func(row int64, keys []int32, measures []float64) error {
		for i := 0; i < nd; i++ {
			g := q.Schema.Dims[i].RollUp(keys[i], 0, q.Levels[i])
			if sets[i] != nil && !sets[i][g] {
				return nil
			}
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(g))
		}
		m := measures[0]
		st, ok := agg[string(buf)]
		if !ok {
			st = &state{min: m, max: m}
			agg[string(buf)] = st
		}
		st.sum += m
		st.count++
		if m < st.min {
			st.min = m
		}
		if m > st.max {
			st.max = m
		}
		st.set = true
		return nil
	})
	if err != nil {
		return nil, err
	}

	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	groups := make([]Group, len(keys))
	for i, k := range keys {
		st := agg[k]
		var value float64
		switch q.Agg {
		case query.Sum:
			value = st.sum
		case query.Count:
			value = st.count
		case query.Min:
			value = st.min
		case query.Max:
			value = st.max
		case query.Avg:
			value = st.sum / st.count
		}
		g := Group{Keys: make([]int32, nd), Value: value}
		for d := 0; d < nd; d++ {
			g.Keys[d] = int32(binary.LittleEndian.Uint32([]byte(k)[d*4:]))
		}
		groups[i] = g
	}
	return &Result{Query: q, Groups: groups}, nil
}

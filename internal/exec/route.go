package exec

import (
	"math/bits"

	"mdxopt/internal/bitmap"
	"mdxopt/internal/star"
	"mdxopt/internal/table"
)

// Vectorized index-probe data path.
//
// The shared index star join's inner loop used to walk the union bitmap
// bit at a time, re-test every query's bitmap with a scalar Get per
// fetched tuple, and fold one tuple at a time. This file rebuilds that
// path around 64-bit words and selection vectors, the same
// block-at-a-time design as the scan-side fold kernel:
//
//   - maskedWords slices the union bitmap's words covering one data
//     page, masking the page-boundary edge words (pages are not
//     word-aligned: tuples-per-page is set by the tuple size).
//   - expandWords turns those words into a selection vector of
//     page-relative slot numbers, one trailing-zeros step per set bit,
//     which drives table.HeapFile.FetchPage — one pin and one dense
//     decode per page instead of a callback per row.
//   - routeWords routes the fetched batch to one query: a single AND
//     of each union word against the query bitmap's word replaces up
//     to 64 scalar Get calls, and each hit bit's position among the
//     union's set bits (a popcount rank) is exactly its slot in the
//     dense batch.
//
// Counter equivalence with the scalar path is by construction: the
// union's per-page popcount is the page's TuplesFetched, each attached
// pipeline is charged that same popcount of BitTests (the scalar loop
// tests every union tuple against every pipeline), and each routed
// selection's length is the pipeline's own TuplesFetched — so
// BitTests, TuplesFetched, TuplesAgg and PackedFolds are byte-identical
// to Env.NoVectorIndex at every worker width.

// maskedWords copies the bitset words covering rows [from, to) into
// dst, masking bits below from in the first word and at/above to in the
// last, and returns the filled slice plus the index of its first word
// in the backing array. from < to required.
func maskedWords(dst []uint64, words []uint64, from, to int64) ([]uint64, int) {
	w0 := int(from / wordBits)
	w1 := int((to - 1) / wordBits)
	dst = dst[:0]
	for wi := w0; wi <= w1; wi++ {
		w := words[wi]
		if wi == w0 {
			w &= ^uint64(0) << (uint(from) % wordBits)
		}
		if wi == w1 {
			if r := uint(to) % wordBits; r != 0 {
				w &= 1<<r - 1
			}
		}
		dst = append(dst, w)
	}
	return dst, w0
}

// wordBits mirrors the bitmap package's word size; the routing kernel
// operates on raw bitset words.
const wordBits = 64

// expandWords appends the set bits of masked words (whose first word
// has index w0 in the backing array) to sel as offsets relative to row
// rel: one trailing-zeros step per set bit, no per-bit closure.
func expandWords(sel []int32, words []uint64, w0 int, rel int64) []int32 {
	base := int64(w0)*wordBits - rel
	for i, w := range words {
		wb := base + int64(i)*wordBits
		for w != 0 {
			t := bits.TrailingZeros64(w)
			sel = append(sel, int32(wb+int64(t)))
			w &= w - 1
		}
	}
	return sel
}

// routeWords routes one page's dense union batch to a single query:
// for each union word the query's hit word is one AND, and each hit
// bit's slot in the batch is its rank among the union word's set bits
// (bits strictly below it) plus the running popcount of the preceding
// words. A word the query covers entirely takes the dense fast path —
// a straight run of slots with no per-bit rank.
func routeWords(sel []int32, uwords []uint64, qwords []uint64, w0 int) []int32 {
	slotBase := int32(0)
	for i, uw := range uwords {
		if uw == 0 {
			continue
		}
		hw := uw & qwords[w0+i]
		pop := int32(bits.OnesCount64(uw))
		if hw == uw {
			for s := int32(0); s < pop; s++ {
				sel = append(sel, slotBase+s)
			}
			slotBase += pop
			continue
		}
		for hw != 0 {
			t := bits.TrailingZeros64(hw)
			rank := int32(bits.OnesCount64(uw & (1<<uint(t) - 1)))
			sel = append(sel, slotBase+rank)
			hw &= hw - 1
		}
		slotBase += pop
	}
	return sel
}

// identitySel appends 0..n-1 to sel: the routing result when a batch
// has a single consumer (no per-query bitmap re-test).
func identitySel(sel []int32, n int) []int32 {
	for i := 0; i < n; i++ {
		sel = append(sel, int32(i))
	}
	return sel
}

// probeShared is the read-only state of one shared index probe: built
// once before the fetch and shared by every worker.
type probeShared struct {
	view      *star.View
	union     *bitmap.Bitset
	bitmaps   []*bitmap.Bitset
	residuals [][]int
	tpp       int64
	rows      int64
}

// probeWorker is one worker's private probe state: its pipeline set,
// the reusable fetch batch, and the routing scratch vectors. All
// buffers are sized to one page, so the steady-state probe loop
// performs no allocation.
type probeWorker struct {
	pipelines []*queryPipeline
	batch     *table.Batch
	uwords    []uint64 // masked union words of the current page
	sel       []int32  // page-relative union slots (drives FetchPage)
	hits      []int32  // per-query routed batch slots
}

// newProbeWorker builds a worker around an existing pipeline set.
func newProbeWorker(view *star.View, pipelines []*queryPipeline) *probeWorker {
	tpp := view.Heap.TuplesPerPage()
	return &probeWorker{
		pipelines: pipelines,
		batch:     view.Heap.MakeBatch(),
		uwords:    make([]uint64, 0, tpp/wordBits+2),
		sel:       make([]int32, 0, tpp),
		hits:      make([]int32, 0, tpp),
	}
}

// probeBufBytes is the broker charge for one probeWorker's buffers:
// the page batch (keys + measures) plus the two selection vectors and
// the masked-word scratch. The plan.Estimator memory model mirrors
// this accounting.
func probeBufBytes(view *star.View) int64 {
	tpp := int64(view.Heap.TuplesPerPage())
	nk := int64(view.Heap.Schema().NumKeys())
	nm := int64(view.Heap.Schema().NumMeasures())
	return tpp*(4*nk+8*nm) + 8*tpp + (tpp/wordBits+2)*8
}

// probePages probes the data pages [fromPage, toPage) of the union:
// per page, mask the union words, expand them to a selection vector,
// fetch the selected rows with one pin, and route the dense batch to
// each attached pipeline with one AND per word. Pages with no union
// bits are skipped without touching the pool (or the checkpoint —
// matching the scalar path, which never polls on an empty union).
func (ps *probeShared) probePages(env *Env, w *probeWorker, st *Stats, fromPage, toPage int64) error {
	uw := ps.union.Words()
	for pg := fromPage; pg < toPage; pg++ {
		from := pg * ps.tpp
		to := from + ps.tpp
		if to > ps.rows {
			to = ps.rows
		}
		if from >= to {
			break
		}
		var w0 int
		w.uwords, w0 = maskedWords(w.uwords, uw, from, to)
		w.sel = expandWords(w.sel[:0], w.uwords, w0, from)
		if len(w.sel) == 0 {
			continue
		}
		if err := checkpoint(env, w.pipelines); err != nil {
			return err
		}
		if err := ps.view.Heap.FetchPage(w.batch, pg, w.sel); err != nil {
			return err
		}
		n := int64(len(w.sel))
		st.TuplesFetched += n
		if len(w.pipelines) == 1 {
			p := w.pipelines[0]
			if !p.detached {
				p.own.TuplesFetched += n
				p.foldBatchSel(st, w.batch, identitySel(w.hits[:0], int(n)), ps.residuals[0])
			}
			continue
		}
		for i, p := range w.pipelines {
			if p.detached {
				continue
			}
			st.BitTests += n
			p.own.BitTests += n
			w.hits = routeWords(w.hits[:0], w.uwords, ps.bitmaps[i].Words(), w0)
			p.own.TuplesFetched += int64(len(w.hits))
			if len(w.hits) > 0 {
				p.foldBatchSel(st, w.batch, w.hits, ps.residuals[i])
			}
		}
	}
	return nil
}

// probeScalar is the tuple-at-a-time ablation (Env.NoVectorIndex): the
// pre-vectorization probe loop, kept for the equivalence suite and the
// idx benchmark's baseline. The only change from the original is that
// the tuple's aggregate components are computed lazily, after the
// detach and bitmap tests, so a tuple no pipeline consumes costs
// nothing (the recompute-per-tuple fix rides both paths).
func (ps *probeShared) probeScalar(env *Env, pipelines []*queryPipeline, stats *Stats) error {
	return ps.view.Heap.FetchRows(ps.union.Iterator(), func(row int64, keys []int32, measures []float64) error {
		if stats.TuplesFetched%checkEvery == 0 {
			if err := checkpoint(env, pipelines); err != nil {
				return err
			}
		}
		stats.TuplesFetched++
		valsReady := false
		var vals [4]float64
		for i, p := range pipelines {
			if p.detached {
				continue
			}
			if len(pipelines) > 1 {
				stats.BitTests++
				p.own.BitTests++
				if !ps.bitmaps[i].Get(row) {
					continue
				}
			}
			if !valsReady {
				vals = star.TupleAggregates(ps.view, measures)
				valsReady = true
			}
			p.own.TuplesFetched++
			if p.foldFiltered(keys, vals, ps.residuals[i]) {
				stats.TuplesAgg++
				p.own.TuplesAgg++
				if p.packer != nil {
					stats.PackedFolds++
					p.own.PackedFolds++
				}
			}
		}
		return nil
	})
}

package exec

import (
	"sync"

	"mdxopt/internal/mem"
	"mdxopt/internal/query"
)

// LookupSet is a collection of dimension lookups built once and shared
// across the class passes of one executed plan. The per-pass lookupCache
// shares identical lookups between the queries of *one* shared operator
// (§3.1); the set extends that sharing across operators: the task-graph
// executor hoists every distinct lookup a plan needs into per-dimension
// build nodes, runs them first, and every class pass then probes the
// finished set through Env.Lookups.
//
// Build calls may run concurrently (one build node per dimension);
// lookups are immutable once registered, so reads after the builds
// finish are lock-cheap but still serialized for the fallback path,
// where a pass builds a lookup the planner missed.
type LookupSet struct {
	mu      sync.Mutex
	entries map[lookupKey]*dimLookup
	res     *mem.Reservation
}

// NewLookupSet returns an empty set whose memory is reserved against b
// (nil b runs ungoverned). Close the set when the plan finishes.
func NewLookupSet(b *mem.Broker) *LookupSet {
	return &LookupSet{
		entries: map[lookupKey]*dimLookup{},
		res:     b.Reserve("shared-lookups"),
	}
}

// LookupBuild names one lookup to construct: the dimension, the view
// column's level, and the query whose target level and predicate define
// the lookup's output side.
type LookupBuild struct {
	Query     *query.Query
	Dim       int
	ViewLevel int
}

// BuildLookups constructs every listed lookup into set, measuring the
// dimension-table scan I/O, hash-build rows, wall time, and reserved
// bytes into stats. Already-present lookups are skipped, so concurrent
// builders and the fallback path compose safely.
func (e *Env) BuildLookups(set *LookupSet, builds []LookupBuild, stats *Stats) error {
	return e.measure(stats, func() error {
		for _, b := range builds {
			if err := e.canceled(); err != nil {
				return err
			}
			grown, err := set.build(e, stats, b.Query, b.Dim, b.ViewLevel)
			if err != nil {
				return err
			}
			stats.PeakMemory += grown
		}
		return nil
	})
}

// build constructs and registers the lookup for dimension dim of q
// against a view column at viewLevel, returning the bytes it reserved
// (0 when an identical lookup was already present). Lookup memory is
// required state, so it is an overdraft grant held until Close.
func (s *LookupSet) build(env *Env, stats *Stats, q *query.Query, dim, viewLevel int) (int64, error) {
	key := lookupKey{dim: dim, viewLevel: viewLevel, sig: dimSignature(q, dim)}
	s.mu.Lock()
	_, ok := s.entries[key]
	s.mu.Unlock()
	if ok {
		return 0, nil
	}
	lk, err := buildLookup(env, stats, q, dim, viewLevel)
	if err != nil {
		return 0, err
	}
	bytes := int64(len(lk.out)) * lookupBytesPerRow
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		// Lost a race with a concurrent builder of the same lookup; the
		// duplicate scan's work is already in stats, but no extra memory
		// is held.
		return 0, nil
	}
	s.entries[key] = lk
	s.res.MustGrow(bytes)
	return bytes, nil
}

// get returns the shared lookup for key, or nil.
func (s *LookupSet) get(key lookupKey) *dimLookup {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[key]
}

// Len returns the number of distinct lookups held.
func (s *LookupSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Held returns the bytes the set currently reserves.
func (s *LookupSet) Held() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res.Held()
}

// Close releases the set's memory reservation. Idempotent; call only
// after every pass using the set has finished.
func (s *LookupSet) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.res.Release()
}

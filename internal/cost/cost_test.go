package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultModelRatios(t *testing.T) {
	m := Default()
	// The ratios the optimization behavior depends on: random I/O an
	// order of magnitude above sequential; per-tuple CPU "not small" but
	// far below per-page I/O.
	if m.RandPage < 4*m.SeqPage {
		t.Fatalf("RandPage %v not well above SeqPage %v", m.RandPage, m.SeqPage)
	}
	if m.TupleCPU <= 0 || m.TupleCPU > m.SeqPage/10 {
		t.Fatalf("TupleCPU %v out of band", m.TupleCPU)
	}
	for name, v := range map[string]float64{
		"SeqPage": m.SeqPage, "RandPage": m.RandPage, "TupleCPU": m.TupleCPU,
		"AggCPU": m.AggCPU, "FetchCPU": m.FetchCPU, "BuildCPU": m.BuildCPU,
		"BitmapWord": m.BitmapWord, "BitTest": m.BitTest,
	} {
		if v <= 0 {
			t.Fatalf("%s = %v, want positive", name, v)
		}
	}
}

func TestYaoPagesBounds(t *testing.T) {
	cases := []struct {
		rows, pages, k int64
	}{
		{1000, 100, 1}, {1000, 100, 50}, {1000, 100, 999},
		{10, 1, 5}, {1 << 20, 4096, 1234},
	}
	for _, c := range cases {
		got := YaoPages(c.rows, c.pages, c.k)
		if got <= 0 || got > float64(c.pages) {
			t.Fatalf("YaoPages(%v) = %v out of (0, pages]", c, got)
		}
		// Never meaningfully more pages than tuples selected (float
		// rounding allowed).
		if got > float64(c.k)*(1+1e-9) {
			t.Fatalf("YaoPages(%v) = %v exceeds k", c, got)
		}
	}
	if YaoPages(100, 10, 0) != 0 {
		t.Fatal("k=0 should touch no pages")
	}
	if YaoPages(100, 10, 200) != 10 {
		t.Fatal("k>rows should touch all pages")
	}
	if YaoPages(0, 10, 5) != 0 || YaoPages(100, 0, 5) != 0 {
		t.Fatal("degenerate table should touch no pages")
	}
}

func TestYaoPagesMonotoneQuick(t *testing.T) {
	f := func(a, b uint16) bool {
		k1, k2 := int64(a%1000), int64(b%1000)
		if k1 > k2 {
			k1, k2 = k2, k1
		}
		return YaoPages(1000, 100, k1) <= YaoPages(1000, 100, k2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScanAndProbeCosts(t *testing.T) {
	m := Default()
	if got := m.ScanIO(100); got != 100*m.SeqPage {
		t.Fatalf("ScanIO = %v", got)
	}
	if got := m.ProbeIO(7.5); got != 7.5*m.RandPage {
		t.Fatalf("ProbeIO = %v", got)
	}
	if Micros(2_000_000) != 2 {
		t.Fatalf("Micros = %v", Micros(2_000_000))
	}
	// Yao approaches the binomial expectation for small k.
	small := YaoPages(1000, 100, 1)
	if math.Abs(small-1) > 0.01 {
		t.Fatalf("YaoPages(k=1) = %v, want ~1", small)
	}
}

// Package cost implements the optimizer's cost model (paper §5.1) and the
// conversion of measured execution counts into simulated 1998-hardware
// seconds.
//
// All costs are expressed in microseconds of simulated time on the
// paper's platform (200 MHz Pentium Pro, a ~8 MB/s IDE-era disk, cold
// caches). The absolute constants only anchor the scale; what the
// optimization algorithms rely on is their *ratios* — a random page read
// costs an order of magnitude more than a sequential one, and per-tuple
// CPU is "not small" (§7.4 Test 1) but far below per-page I/O.
package cost

import "math"

// Model holds the primitive cost constants, in simulated microseconds.
type Model struct {
	// SeqPage is the cost of reading one 8 KiB page during a sequential
	// scan (~1 ms at ~8 MB/s).
	SeqPage float64
	// RandPage is the cost of a random page read (seek + rotation).
	RandPage float64
	// TupleCPU is the CPU cost of pushing one scanned tuple through a
	// hash star join pipeline for one query: predicate rollup, hash
	// probes, and result construction.
	TupleCPU float64
	// AggCPU is the CPU cost of aggregating one qualifying tuple into a
	// group-by hash table.
	AggCPU float64
	// FetchCPU is the CPU cost of extracting one tuple fetched via a
	// bitmap probe and routing it (§3.2's "Filter tuples" step).
	FetchCPU float64
	// BuildCPU is the CPU cost of inserting one dimension-table row into
	// a join hash table.
	BuildCPU float64
	// BitmapWord is the CPU cost of one 64-bit word of bitmap AND/OR.
	BitmapWord float64
	// BitTest is the CPU cost of testing one scanned tuple against a
	// result bitmap (§3.3's scan-with-filter conversion).
	BitTest float64
}

// Default returns the 1998-calibrated model used throughout the
// benchmarks.
func Default() *Model {
	return &Model{
		SeqPage:    1000,  // 1 ms
		RandPage:   10000, // 10 ms
		TupleCPU:   4.5,
		AggCPU:     1.5,
		FetchCPU:   3.0,
		BuildCPU:   2.0,
		BitmapWord: 0.05,
		BitTest:    0.15,
	}
}

// YaoPages estimates how many of the pages pages are touched when k
// tuples are selected uniformly at random from rows tuples (Yao's
// approximation). It is the optimizer's estimate for bitmap-probe I/O.
func YaoPages(rows, pages, k int64) float64 {
	if pages <= 0 || rows <= 0 || k <= 0 {
		return 0
	}
	if k >= rows {
		return float64(pages)
	}
	perPage := float64(rows) / float64(pages)
	// P(page untouched) = ((rows - perPage) / rows)^k approximately.
	p := math.Pow(1-perPage/float64(rows), float64(k))
	return float64(pages) * (1 - p)
}

// ScanIO returns the I/O cost of sequentially scanning pages pages.
func (m *Model) ScanIO(pages int64) float64 { return float64(pages) * m.SeqPage }

// ProbeIO returns the I/O cost of randomly probing the given estimated
// number of pages.
func (m *Model) ProbeIO(pages float64) float64 { return pages * m.RandPage }

// Micros formats a microsecond cost as seconds.
func Micros(us float64) float64 { return us / 1e6 }

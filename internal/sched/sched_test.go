package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mdxopt/internal/core"
	"mdxopt/internal/exec"
	"mdxopt/internal/mem"
	"mdxopt/internal/plan"
	"mdxopt/internal/query"
)

// echoRun finishes every submission with a trivial outcome recording
// the batch size.
func echoRun(batch []*Submission) {
	for _, sub := range batch {
		sub.Finish(&Outcome{BatchSize: len(batch)})
	}
}

func TestWindowCoalescesConcurrentSubmissions(t *testing.T) {
	s := New(Config{Window: 100 * time.Millisecond, Run: echoRun})
	defer s.Stop()

	const n = 5
	var wg sync.WaitGroup
	outs := make([]*Outcome, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = s.Submit(context.Background(), "k", nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if outs[i].BatchSize < 2 {
			t.Fatalf("submission %d ran in a batch of %d; a 100ms window should have merged the burst", i, outs[i].BatchSize)
		}
	}
	m := s.Metrics()
	if m.Submissions != n {
		t.Fatalf("metrics count %d submissions, want %d", m.Submissions, n)
	}
	if m.Coalesced == 0 {
		t.Fatal("metrics report no coalesced submissions")
	}
	if m.Batches >= n {
		t.Fatalf("%d batches for %d concurrent submissions: nothing merged", m.Batches, n)
	}
}

func TestMaxBatchRunsWithoutWaitingOutWindow(t *testing.T) {
	s := New(Config{Window: time.Hour, MaxBatch: 2, Run: echoRun})
	defer s.Stop()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := s.Submit(context.Background(), "k", nil)
			if err != nil {
				t.Error(err)
				return
			}
			if out.BatchSize != 2 {
				t.Errorf("batch size %d, want 2", out.BatchSize)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("a full batch waited out an hour-long window")
	}
}

// TestBackpressure makes the queue bound observable deterministically:
// the batch runner blocks, the queue (capacity 1) fills, and the next
// submission is refused with ErrQueueFull.
func TestBackpressure(t *testing.T) {
	block := make(chan struct{})
	running := make(chan struct{})
	var runningOnce sync.Once
	s := New(Config{
		Window:   time.Millisecond,
		MaxBatch: 1,
		MaxQueue: 1,
		Run: func(batch []*Submission) {
			runningOnce.Do(func() { close(running) })
			<-block
			echoRun(batch)
		},
	})
	defer s.Stop()

	// S1 is admitted and runs (blocking inside Run).
	go s.Submit(context.Background(), "s1", nil)
	<-running
	// S2 fills the queue while the loop is stuck in Run.
	res2 := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), "s2", nil)
		res2 <- err
	}()
	// Wait until S2 occupies the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Submissions < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second submission never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	// S3 must bounce.
	if _, err := s.Submit(context.Background(), "s3", nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue returned %v, want ErrQueueFull", err)
	}
	if got := s.Metrics().Rejected; got != 1 {
		t.Fatalf("metrics count %d rejections, want 1", got)
	}
	close(block)
	if err := <-res2; err != nil {
		t.Fatalf("queued submission failed after unblocking: %v", err)
	}
}

func TestSubmitAfterStop(t *testing.T) {
	s := New(Config{Run: echoRun})
	s.Stop()
	if _, err := s.Submit(context.Background(), "k", nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit after Stop returned %v, want ErrStopped", err)
	}
	// Stop is idempotent.
	s.Stop()
}

func TestCanceledWhileQueuedFailsWithContextError(t *testing.T) {
	s := New(Config{Window: 50 * time.Millisecond, Run: echoRun})
	defer s.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled submission returned %v, want context.Canceled", err)
	}
}

func TestRunnerMustDeliver(t *testing.T) {
	// A Run callback that forgets a submission must not strand its
	// caller: the scheduler backstops with an error.
	s := New(Config{Window: time.Millisecond, Run: func([]*Submission) {}})
	defer s.Stop()
	_, err := s.Submit(context.Background(), "k", nil)
	if err == nil {
		t.Fatal("submission with a no-op runner returned no error")
	}
}

func TestExecPlanFailureFallsBackPerSubmission(t *testing.T) {
	// When planning the merged batch fails, Exec replans each submission
	// alone, so one unplannable request cannot sink its batch mates.
	// With a planFn that always fails, every submission must still get
	// its own error — delivered from a single-submission retry, which we
	// observe via the calls planFn receives.
	planErr := errors.New("unplannable")
	var calls [][]string
	planFn := func(subQ [][]*query.Query, keys []string) ([][]*query.Query, *plan.Global, error) {
		calls = append(calls, append([]string(nil), keys...))
		return nil, nil, planErr
	}
	subs := []*Submission{
		{Key: "a", ctx: context.Background(), res: make(chan *Outcome, 1)},
		{Key: "b", ctx: context.Background(), res: make(chan *Outcome, 1)},
	}
	Exec(nil, planFn, nil, subs, core.ExecOptions{})
	for _, sub := range subs {
		select {
		case out := <-sub.res:
			if !errors.Is(out.Err, planErr) {
				t.Fatalf("submission %s got %v, want the plan error", sub.Key, out.Err)
			}
		default:
			t.Fatalf("submission %s got no outcome", sub.Key)
		}
	}
	// One merged attempt plus one single-submission retry each.
	if len(calls) != 3 || len(calls[0]) != 2 || len(calls[1]) != 1 || len(calls[2]) != 1 {
		t.Fatalf("planFn call shapes %v, want [a b], [a], [b]", calls)
	}
}

// emptyPlanFn plans every batch as an empty global plan (no classes),
// so Exec's execution step is a no-op and the tests below can focus on
// the admission gate without a database.
func emptyPlanFn(subQ [][]*query.Query, keys []string) ([][]*query.Query, *plan.Global, error) {
	return subQ, &plan.Global{}, nil
}

func TestExecAdmissionDefersUntilRelease(t *testing.T) {
	// A saturated memory broker must defer the batch — not error it —
	// and let it run once memory is released.
	broker := mem.New(1 << 10)
	blocker := broker.Reserve("blocker")
	blocker.MustGrow(1 << 10)

	admit := func(ctx context.Context, g *plan.Global) (func(), error) {
		return broker.Admit(ctx, 512)
	}
	sub := &Submission{Key: "a", ctx: context.Background(), res: make(chan *Outcome, 1)}
	done := make(chan struct{})
	go func() {
		Exec(&exec.Env{}, emptyPlanFn, admit, []*Submission{sub}, core.ExecOptions{})
		close(done)
	}()

	select {
	case <-done:
		t.Fatal("batch ran while the broker was saturated")
	case <-time.After(20 * time.Millisecond):
	}
	blocker.Release()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batch did not run after memory was released")
	}
	out := <-sub.res
	if out.Err != nil {
		t.Fatalf("deferred batch errored: %v", out.Err)
	}
	s := broker.Stats()
	if s.Deferred == 0 || s.Admitted == 0 {
		t.Fatalf("broker did not record the deferral: %v", s)
	}
	if s.Claimed != 0 {
		t.Fatalf("admission claim leaked: %d bytes", s.Claimed)
	}
}

func TestExecAdmissionCanceledContextFailsBatch(t *testing.T) {
	// A canceled context bounds the admission wait: the batch fails with
	// the context's error instead of waiting forever.
	broker := mem.New(100)
	blocker := broker.Reserve("blocker")
	defer blocker.Release()
	blocker.MustGrow(100)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	admit := func(ctx context.Context, g *plan.Global) (func(), error) {
		return broker.Admit(ctx, 50)
	}
	sub := &Submission{Key: "a", ctx: context.Background(), res: make(chan *Outcome, 1)}
	Exec(&exec.Env{Ctx: ctx}, emptyPlanFn, admit, []*Submission{sub}, core.ExecOptions{})
	out := <-sub.res
	if !errors.Is(out.Err, context.Canceled) {
		t.Fatalf("canceled admission returned %v, want context.Canceled", out.Err)
	}
}

// Package sched implements the admission scheduler that generalizes
// the paper's multi-query optimization across *independent* concurrent
// requests. The paper optimizes the related queries of one MDX
// expression as a set; this layer extends the same idea to the serving
// path: submissions from concurrent callers are collected into a batch
// (a short batching window, bounded batch size, backpressure when the
// admission queue is full), the whole cross-request query set is
// optimized into one global plan, the merged shared passes execute
// once, and per-submission results, stats and sharing information are
// demultiplexed back to each waiting caller.
//
// The scheduler is engine-agnostic: the embedding facade supplies a
// Run callback that brackets one batch (locking against mutations,
// building an exec.Env) and typically calls Exec, which holds the
// cross-request MQO pipeline — origin assignment, planning via a
// PlanFunc, execution with per-submission contexts (a canceled caller
// detaches without aborting the shared pass for the rest), stats
// attribution, and demultiplexing.
package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"mdxopt/internal/core"
	"mdxopt/internal/exec"
	"mdxopt/internal/plan"
	"mdxopt/internal/query"
)

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity — backpressure; the caller should retry later.
var ErrQueueFull = errors.New("sched: admission queue full")

// ErrStopped is returned for submissions that could not run because the
// scheduler was stopped.
var ErrStopped = errors.New("sched: scheduler stopped")

// PlanFunc optimizes a merged cross-request query set. subQueries holds
// each submission's queries; keys are the submissions' cache keys (the
// MDX sources), letting implementations cache plans by batch
// composition. It returns the per-submission query objects the plan was
// built over — which may be cached replacements for the submitted ones —
// and the global plan covering exactly those queries.
type PlanFunc func(subQueries [][]*query.Query, keys []string) ([][]*query.Query, *plan.Global, error)

// Submission is one caller's request travelling through the scheduler.
type Submission struct {
	// Key identifies the request for plan caching (the MDX source).
	Key string
	// Queries are the request's parsed component queries.
	Queries []*query.Query

	ctx      context.Context
	res      chan *Outcome
	finished bool
}

// Context returns the caller's context (never nil).
func (b *Submission) Context() context.Context { return b.ctx }

// Finish delivers the submission's outcome; only the first call counts.
func (b *Submission) Finish(o *Outcome) {
	if b.finished {
		return
	}
	b.finished = true
	b.res <- o
}

// fail is Finish with just an error.
func (b *Submission) fail(err error) { b.Finish(&Outcome{Err: err}) }

// Outcome is what one submission gets back from its batch.
type Outcome struct {
	// Queries are the query objects the answer is keyed by — the
	// submitted ones, or cached replacements (see PlanFunc). Results
	// and PerQuery are parallel to it.
	Queries []*query.Query
	Results []*exec.Result
	// PerQuery is each query's attributed work: its non-shared work
	// exactly plus an equal share of its class's shared work.
	PerQuery []exec.Stats
	// Classes are the per-class breakdowns of the passes this
	// submission participated in (other submissions' queries may appear
	// in them, origin-qualified).
	Classes []core.ClassStat
	// Plan is the whole batch's global plan in the paper's notation.
	Plan string
	// BatchSize is how many submissions the merged batch held.
	BatchSize int
	// DAGNodes is how many task-graph nodes the batch's plan compiled
	// to. WorkerPeak is the unified pool's concurrency peak — nodes plus
	// scan-morsel workers — and DAGParallelPeak is its pre-pool alias
	// carrying the same value (1 under the serial executor).
	// EffectiveWorkers is the clamped pool width the batch ran at.
	// Whole-batch properties, repeated per submission.
	DAGNodes         int
	WorkerPeak       int
	DAGParallelPeak  int
	EffectiveWorkers int
	// SharedWith counts the other submissions whose queries shared at
	// least one pass (class) with this one's; 0 means every pass was
	// private even if the query was batched.
	SharedWith int
	// SnapshotEpoch is the catalog snapshot epoch the batch executed
	// against: every result in the batch reflects exactly that
	// published catalog state, regardless of mutations in flight.
	SnapshotEpoch uint64
	// Err, when set, voids the rest of the outcome.
	Err error
}

// Metrics counts scheduler activity since construction.
type Metrics struct {
	Batches     int64 // batches executed
	Submissions int64 // submissions admitted
	Coalesced   int64 // submissions that ran in a batch with company
	Rejected    int64 // submissions refused for a full queue
}

// Config parameterizes a Scheduler.
type Config struct {
	// Window is how long the scheduler keeps collecting submissions
	// after the first one arrives before running the batch (default
	// 3ms). Longer windows merge more concurrent work at the price of
	// added latency for the first arrival.
	Window time.Duration
	// MaxBatch caps the submissions merged into one batch; a full batch
	// runs immediately without waiting out the window (default 16).
	MaxBatch int
	// MaxQueue bounds the admission queue; Submit fails with
	// ErrQueueFull beyond it (default 64).
	MaxQueue int
	// Run evaluates one admitted batch and must deliver an outcome to
	// every submission — typically by preparing an execution
	// environment and calling Exec.
	Run func(batch []*Submission)
}

func (c *Config) applyDefaults() {
	if c.Window <= 0 {
		c.Window = 3 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
}

// Scheduler admits concurrent submissions into merged batches.
type Scheduler struct {
	cfg      Config
	queue    chan *Submission
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	batches     atomic.Int64
	submissions atomic.Int64
	coalesced   atomic.Int64
	rejected    atomic.Int64
}

// New starts a scheduler. cfg.Run is required.
func New(cfg Config) *Scheduler {
	if cfg.Run == nil {
		panic("sched: Config.Run is required")
	}
	cfg.applyDefaults()
	s := &Scheduler{
		cfg:   cfg,
		queue: make(chan *Submission, cfg.MaxQueue),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go s.loop()
	return s
}

// Stop shuts the scheduler down and waits for the admission loop to
// exit; queued submissions fail with ErrStopped.
func (s *Scheduler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Metrics returns a snapshot of the scheduler's counters.
func (s *Scheduler) Metrics() Metrics {
	return Metrics{
		Batches:     s.batches.Load(),
		Submissions: s.submissions.Load(),
		Coalesced:   s.coalesced.Load(),
		Rejected:    s.rejected.Load(),
	}
}

// Submit enqueues one request and blocks until its batch delivers an
// outcome, the caller's context is done, or the scheduler stops. A full
// admission queue fails fast with ErrQueueFull (backpressure).
func (s *Scheduler) Submit(ctx context.Context, key string, queries []*query.Query) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-s.stop:
		return nil, ErrStopped
	default:
	}
	sub := &Submission{Key: key, Queries: queries, ctx: ctx, res: make(chan *Outcome, 1)}
	select {
	case s.queue <- sub:
		s.submissions.Add(1)
	default:
		s.rejected.Add(1)
		return nil, ErrQueueFull
	}
	select {
	case out := <-sub.res:
		if out.Err != nil {
			return nil, out.Err
		}
		return out, nil
	case <-ctx.Done():
		// The batch will notice via the per-query context and detach
		// this submission's pipelines without aborting the pass for
		// the other callers.
		return nil, ctx.Err()
	case <-s.done:
		return nil, ErrStopped
	}
}

// loop is the admission loop: wait for a first submission, collect
// company until the window closes or the batch fills, run, repeat.
func (s *Scheduler) loop() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			s.drain()
			return
		default:
		}
		var first *Submission
		select {
		case first = <-s.queue:
		case <-s.stop:
			s.drain()
			return
		}
		batch := []*Submission{first}
		timer := time.NewTimer(s.cfg.Window)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case sub := <-s.queue:
				batch = append(batch, sub)
			case <-timer.C:
				break collect
			case <-s.stop:
				break collect
			}
		}
		timer.Stop()
		s.runBatch(batch)
	}
}

// drain fails everything still queued after a stop.
func (s *Scheduler) drain() {
	for {
		select {
		case sub := <-s.queue:
			sub.fail(ErrStopped)
		default:
			return
		}
	}
}

// runBatch drops submissions that were canceled while queued and hands
// the rest to the configured Run callback.
func (s *Scheduler) runBatch(batch []*Submission) {
	alive := batch[:0]
	for _, sub := range batch {
		select {
		case <-sub.ctx.Done():
			sub.fail(sub.ctx.Err())
		default:
			alive = append(alive, sub)
		}
	}
	if len(alive) == 0 {
		return
	}
	s.batches.Add(1)
	if len(alive) > 1 {
		s.coalesced.Add(int64(len(alive)))
	}
	s.cfg.Run(alive)
	for _, sub := range alive {
		if !sub.finished {
			sub.fail(errors.New("sched: batch runner delivered no outcome"))
		}
	}
}

// AdmitFunc gates an optimized batch's execution on resource
// availability. It is called after planning — when the batch's
// footprint can be estimated from the global plan — and may block
// (deferring the batch) until resources free up; ctx bounds the wait.
// The returned release function is called when the batch finishes. The
// memory-governed facade implements it with plan.Estimator.GlobalMemory
// and mem.Broker.Admit: saturation defers batches, it never errors
// them.
type AdmitFunc func(ctx context.Context, g *plan.Global) (release func(), err error)

// Exec evaluates one admitted batch on env: it assigns submission
// origins, plans the merged cross-request query set with planFn, admits
// the planned batch via admit (nil = always admit), runs the shared
// passes once with per-submission contexts (a canceled caller detaches
// without aborting a pass other callers share), attributes stats, and
// delivers an Outcome to every submission. If planning the merged set
// fails, each submission is re-planned and run on its own so one
// infeasible request cannot sink its batch mates. opts configures the
// task-graph executor (core.Run); the zero value runs serially.
func Exec(env *exec.Env, planFn PlanFunc, admit AdmitFunc, subs []*Submission, opts core.ExecOptions) {
	subQ := make([][]*query.Query, len(subs))
	keys := make([]string, len(subs))
	for i, sub := range subs {
		subQ[i] = sub.Queries
		keys[i] = sub.Key
	}
	perSub, g, err := planFn(subQ, keys)
	if err != nil {
		if len(subs) == 1 {
			subs[0].fail(err)
			return
		}
		for _, sub := range subs {
			Exec(env, planFn, admit, []*Submission{sub}, opts)
		}
		return
	}

	if admit != nil {
		ctx := env.Ctx
		if ctx == nil {
			ctx = context.Background()
		}
		release, err := admit(ctx, g)
		if err != nil {
			for _, sub := range subs {
				sub.fail(err)
			}
			return
		}
		defer release()
	}

	ctxOf := make(map[*query.Query]context.Context)
	var merged []*query.Query
	for si, qs := range perSub {
		for _, q := range qs {
			q.Origin = si + 1
			ctxOf[q] = subs[si].ctx
			merged = append(merged, q)
		}
	}
	env.QueryCtx = func(q *query.Query) context.Context { return ctxOf[q] }
	defer func() { env.QueryCtx = nil }()

	var pass exec.Stats
	ex, err := core.Run(env, g, merged, &pass, opts)
	if err != nil {
		for _, sub := range subs {
			sub.fail(err)
		}
		return
	}
	results, classStats, perQuery := ex.Results, ex.Classes, ex.PerQuery

	planText := g.Describe()
	var epoch uint64
	if env.DB != nil {
		epoch = env.DB.Epoch
	}
	// classStats covers g.Classes followed by one entry per cache-served
	// query; origin-index both so cache rollups demultiplex like classes.
	classOrigins := make([][]int, len(classStats))
	for ci, c := range g.Classes {
		classOrigins[ci] = c.Origins()
	}
	for i, cp := range g.Cached {
		classOrigins[len(g.Classes)+i] = []int{cp.Query.Origin}
	}
	offset := 0
	for si, sub := range subs {
		qs := perSub[si]
		o := &Outcome{
			Queries:          qs,
			Results:          results[offset : offset+len(qs)],
			PerQuery:         perQuery[offset : offset+len(qs)],
			Plan:             planText,
			BatchSize:        len(subs),
			DAGNodes:         ex.DAGNodes,
			WorkerPeak:       ex.WorkerPeak,
			DAGParallelPeak:  ex.DAGParallelPeak,
			EffectiveWorkers: ex.EffectiveWorkers,
			SnapshotEpoch:    epoch,
		}
		offset += len(qs)
		var ferr error
		for _, r := range o.Results {
			if r.Err != nil {
				ferr = r.Err
				break
			}
		}
		if ferr != nil {
			sub.fail(ferr)
			continue
		}
		origin := si + 1
		others := map[int]bool{}
		for ci := range classStats {
			mine := false
			for _, og := range classOrigins[ci] {
				if og == origin {
					mine = true
					break
				}
			}
			if !mine {
				continue
			}
			o.Classes = append(o.Classes, classStats[ci])
			for _, og := range classOrigins[ci] {
				if og != origin {
					others[og] = true
				}
			}
		}
		o.SharedWith = len(others)
		sub.Finish(o)
	}
}

package datagen

import (
	"path/filepath"
	"testing"

	"mdxopt/internal/star"
)

func TestPaperSpecShape(t *testing.T) {
	full := PaperSpec(1.0)
	if full.Rows != 2_000_000 {
		t.Fatalf("full-scale rows = %d", full.Rows)
	}
	if full.Cards[0][0] != 600 || full.Cards[0][1] != 60 || full.Cards[0][2] != 3 {
		t.Fatalf("full-scale A cards = %v", full.Cards[0])
	}
	small := PaperSpec(0.01)
	if small.Rows != 20_000 {
		t.Fatalf("1%% rows = %d", small.Rows)
	}
	if small.Cards[0][1]%3 != 0 {
		t.Fatalf("mid card %d not divisible by 3", small.Cards[0][1])
	}
	if small.Cards[0][0] != 10*small.Cards[0][1] {
		t.Fatalf("base card %d != 10x mid", small.Cards[0][0])
	}
	if len(full.Views) != 8 {
		t.Fatalf("paper spec has %d views, want 8", len(full.Views))
	}
	if full.Cards[3][0]%4 != 0 || full.Cards[3][0] < 8 {
		t.Fatalf("D base card = %d, want a multiple of 4 >= 8", full.Cards[3][0])
	}
	if full.Entities <= 0 || full.Entities >= full.Rows {
		t.Fatalf("entities = %d, want in (0, rows)", full.Entities)
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	spec := PaperSpec(0.001)
	spec.PoolFrames = 64
	db1, err := Build(filepath.Join(t.TempDir(), "a"), spec)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Build(filepath.Join(t.TempDir(), "b"), spec)
	if err != nil {
		t.Fatal(err)
	}
	if db1.Base().Rows() != db2.Base().Rows() {
		t.Fatal("row counts differ")
	}
	var sum1, sum2 float64
	db1.Base().Heap.Scan(func(_ int64, _ []int32, ms []float64) error { sum1 += ms[0]; return nil })
	db2.Base().Heap.Scan(func(_ int64, _ []int32, ms []float64) error { sum2 += ms[0]; return nil })
	if sum1 != sum2 {
		t.Fatalf("measure sums differ: %v vs %v", sum1, sum2)
	}
}

func TestBuildMaterializesAndIndexes(t *testing.T) {
	spec := PaperSpec(0.002)
	spec.PoolFrames = 128
	db, err := Build(filepath.Join(t.TempDir(), "db"), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Views) != 9 { // base + 8
		t.Fatalf("views = %d, want 9", len(db.Views))
	}
	v := db.ViewByLevels([]int{1, 1, 1, 0})
	if v == nil {
		t.Fatal("A'B'C'D missing")
	}
	for _, dim := range []int{0, 1, 2} {
		if !v.HasIndex(dim) {
			t.Fatalf("A'B'C'D missing index on dim %d", dim)
		}
	}
	if v.HasIndex(3) {
		t.Fatal("unexpected index on D")
	}
	// Views must be smaller than (or equal to) the base table and
	// coarser views no bigger than finer ones they derive from.
	for _, view := range db.Views[1:] {
		if view.Rows() > db.Base().Rows() {
			t.Fatalf("%s has %d rows > base %d", view.Name, view.Rows(), db.Base().Rows())
		}
		if view.Rows() == 0 {
			t.Fatalf("%s is empty", view.Name)
		}
		for _, other := range db.Views {
			if star.Derives(other.Levels, view.Levels) && other.Rows() < view.Rows() && !star.Derives(view.Levels, other.Levels) {
				// finer views may be larger; that's expected. Nothing to
				// assert here beyond derivability consistency.
				_ = other
			}
		}
	}
}

func TestBuildViewSumsMatchBase(t *testing.T) {
	spec := PaperSpec(0.001)
	spec.PoolFrames = 64
	db, err := Build(filepath.Join(t.TempDir(), "db"), spec)
	if err != nil {
		t.Fatal(err)
	}
	var baseSum float64
	db.Base().Heap.Scan(func(_ int64, _ []int32, ms []float64) error { baseSum += ms[0]; return nil })
	for _, v := range db.Views[1:] {
		var sum float64
		v.Heap.Scan(func(_ int64, _ []int32, ms []float64) error { sum += ms[0]; return nil })
		if sum != baseSum {
			t.Fatalf("%s measure sum %v != base %v", v.Name, sum, baseSum)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	spec := PaperSpec(0.001)
	spec.Views = nil
	spec.IndexView = nil
	spec.Zipf = 1.5
	spec.PoolFrames = 64
	db, err := Build(filepath.Join(t.TempDir(), "db"), spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int32]int{}
	db.Base().Heap.Scan(func(_ int64, keys []int32, _ []float64) error {
		counts[keys[0]]++
		return nil
	})
	// Under Zipf, code 0 must be far more frequent than the uniform
	// expectation.
	uniform := int(db.Base().Rows()) / int(db.Schema.Dims[0].Card(0))
	if counts[0] < 5*uniform {
		t.Fatalf("zipf skew absent: code0 count %d, uniform %d", counts[0], uniform)
	}
}

func TestBuildSchemaValidation(t *testing.T) {
	spec := PaperSpec(0.001)
	spec.DimNames = []string{"A"}
	if _, err := BuildSchema(spec); err == nil {
		t.Fatal("BuildSchema accepted mismatched dim names")
	}
	bad := PaperSpec(0.001)
	bad.IndexView = []int{2, 2, 2, 2} // not materialized
	if _, err := Build(filepath.Join(t.TempDir(), "db"), bad); err == nil {
		t.Fatal("Build accepted an index on a missing view")
	}
}

func TestBuildErrorPaths(t *testing.T) {
	// Non-divisible hierarchy cards.
	bad := PaperSpec(0.001)
	bad.Cards = [][]int{{10, 3}, {8, 4}, {8, 4}, {8, 4}}
	if _, err := Build(filepath.Join(t.TempDir(), "a"), bad); err == nil {
		t.Fatal("Build accepted non-divisible cards")
	}
	// Materializing the same view twice.
	dup := PaperSpec(0.001)
	dup.Views = [][]int{{1, 1, 1, 0}, {1, 1, 1, 0}}
	if _, err := Build(filepath.Join(t.TempDir(), "b"), dup); err == nil {
		t.Fatal("Build accepted duplicate views")
	}
	// Index dims out of range.
	badIdx := PaperSpec(0.001)
	badIdx.IndexDims = []int{9}
	if _, err := Build(filepath.Join(t.TempDir(), "c"), badIdx); err == nil {
		t.Fatal("Build accepted bad index dim")
	}
	// Existing directory.
	dir := filepath.Join(t.TempDir(), "d")
	spec := PaperSpec(0.001)
	spec.Views = nil
	spec.IndexView = nil
	db, err := Build(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := Build(dir, spec); err == nil {
		t.Fatal("Build overwrote an existing database")
	}
}

func TestCompressedIndexSpec(t *testing.T) {
	spec := PaperSpec(0.002)
	spec.CompressedIndexes = true
	db, err := Build(filepath.Join(t.TempDir(), "db"), spec)
	if err != nil {
		t.Fatal(err)
	}
	v := db.ViewByLevels([]int{1, 1, 1, 0})
	for _, dim := range []int{0, 1, 2} {
		if !v.HasIndex(dim) {
			t.Fatalf("missing index on dim %d", dim)
		}
	}
	// Format survives reopen via the self-describing files.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := star.Open(db.Dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v2 := db2.ViewByLevels([]int{1, 1, 1, 0})
	bs, ok, err := v2.Indexes[0].Lookup(0)
	if err != nil || !ok || bs.Count() == 0 {
		t.Fatalf("compressed index lookup after reopen: ok=%v err=%v", ok, err)
	}
}

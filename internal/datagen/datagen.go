// Package datagen builds the synthetic test database of the paper's §7:
// a four-dimensional star schema with three-level hierarchies on A, B, C
// and D, 20-byte fact tuples, a configurable row count, the paper's set
// of materialized group-bys (Table 1), and bitmap join indexes on the A,
// B and C columns of the A'B'C'D group-by.
//
// The generator is deterministic for a given Spec.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"mdxopt/internal/star"
)

// Spec describes the database to generate.
type Spec struct {
	// Rows is the base fact table size. The paper uses 2,000,000.
	Rows int
	// Entities, when > 0, makes the cube sparse: the generator first
	// samples this many distinct dimension-code combinations (the
	// "entity pool") and then draws the fact rows from the pool. This
	// reproduces the defining property of the paper's Table 1: every
	// materialized group-by stays within a small factor of the base
	// table's size (0.7–2 M), because aggregation only collapses the
	// pool's image, not the full combinatorial space. 0 = dense
	// (independent uniform codes per row).
	Entities int
	// Seed drives the deterministic random generator.
	Seed int64
	// Cards[i] are the per-level cardinalities of dimension i, base
	// level first.
	Cards [][]int
	// DimNames are the dimension names (default A, B, C, D).
	DimNames []string
	// Measure is the measure column name (default "dollars").
	Measure string
	// Views are the level vectors to materialize beyond the base table.
	Views [][]int
	// IndexView / IndexDims place bitmap join indexes on the given
	// dimensions of the view with the given level vector.
	IndexView []int
	IndexDims []int
	// CompressedIndexes stores the bitmap join indexes EWAH-compressed.
	CompressedIndexes bool
	// PoolFrames sizes the buffer pool (default 2048 pages = 16 MiB,
	// matching the paper's configuration).
	PoolFrames int
	// Zipf, when > 0, skews fact codes with a Zipf(s=Zipf) distribution
	// instead of uniform. 0 = uniform (the default).
	Zipf float64
}

// PaperSpec returns the Spec reproducing the paper's test database at
// the given scale. scale = 1.0 is the full 2 M-row database; smaller
// scales shrink the row count, the mid-level cardinalities of A, B, C
// (as cbrt(scale)) and the base cardinality of the date-like D dimension
// (linearly), so that the materialized-view size *ratios* of Table 1 are
// approximately preserved: every view stays within a small factor of the
// base table (paper: 0.7–2 M of a 2 M base).
func PaperSpec(scale float64) Spec {
	if scale <= 0 {
		scale = 1
	}
	rows := int(2_000_000 * scale)
	if rows < 1000 {
		rows = 1000
	}
	f := math.Cbrt(scale)
	mid := int(math.Round(60 * f))
	mid -= mid % 3 // keep divisible by the 3 top-level members
	if mid < 6 {
		mid = 6
	}
	base := 10 * mid
	// D is date-like: a large base cardinality under a 4-member D'
	// level. Sized so the fully top-level view A''B''C''D keeps ~30% of
	// the base table's rows, as in Table 1.
	d0 := rows / 77
	d0 -= d0 % 4
	if d0 < 8 {
		d0 = 8
	}
	abcCards := []int{base, mid, 3}
	dCards := []int{d0, 4, 2}
	return Spec{
		Rows:     rows,
		Entities: rows * 5 / 8, // sparse cube: 1.25 M entities at full scale
		Seed:     1998,
		Cards:    [][]int{abcCards, abcCards, abcCards, dCards},
		DimNames: []string{"A", "B", "C", "D"},
		Measure:  "dollars",
		Views: [][]int{
			{1, 1, 1, 0}, // A'B'C'D
			{1, 1, 2, 0}, // A'B'C''D
			{1, 2, 1, 0}, // A'B''C'D
			{2, 1, 1, 0}, // A''B'C'D
			{1, 2, 2, 0}, // A'B''C''D
			{2, 1, 2, 0}, // A''B'C''D
			{2, 2, 1, 0}, // A''B''C'D
			{2, 2, 2, 0}, // A''B''C''D
		},
		IndexView:  []int{1, 1, 1, 0}, // indexes on A'B'C'D ...
		IndexDims:  []int{0, 1, 2},    // ... columns A', B', C'
		PoolFrames: 2048,
	}
}

// BuildSchema constructs the star schema described by spec.
func BuildSchema(spec Spec) (*star.Schema, error) {
	names := spec.DimNames
	if names == nil {
		names = defaultNames(len(spec.Cards))
	}
	if len(names) != len(spec.Cards) {
		return nil, fmt.Errorf("datagen: %d dim names for %d card vectors", len(names), len(spec.Cards))
	}
	measure := spec.Measure
	if measure == "" {
		measure = "dollars"
	}
	dims := make([]*star.Dimension, len(spec.Cards))
	for i, cards := range spec.Cards {
		d, err := star.UniformDimension(names[i], cards)
		if err != nil {
			return nil, err
		}
		dims[i] = d
	}
	return star.NewSchema(dims, measure)
}

func defaultNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	return names
}

// Build generates the database in dir according to spec and saves it.
func Build(dir string, spec Spec) (*star.Database, error) {
	schema, err := BuildSchema(spec)
	if err != nil {
		return nil, err
	}
	frames := spec.PoolFrames
	if frames <= 0 {
		frames = 2048
	}
	db, err := star.Create(dir, schema, frames)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	draw := make([]func() int32, schema.NumDims())
	for i, d := range schema.Dims {
		card := int64(d.Card(0))
		if spec.Zipf > 1 {
			z := rand.NewZipf(rng, spec.Zipf, 1, uint64(card-1))
			draw[i] = func() int32 { return int32(z.Uint64()) }
		} else {
			draw[i] = func() int32 { return int32(rng.Int63n(card)) }
		}
	}

	// Sparse cube: pre-draw the entity pool and sample rows from it.
	var pool [][]int32
	if spec.Entities > 0 {
		pool = make([][]int32, spec.Entities)
		for e := range pool {
			combo := make([]int32, schema.NumDims())
			for i := range combo {
				combo[i] = draw[i]()
			}
			pool[e] = combo
		}
	}

	app := db.Base().Heap.NewAppender()
	keys := make([]int32, schema.NumDims())
	for r := 0; r < spec.Rows; r++ {
		if pool != nil {
			copy(keys, pool[rng.Intn(len(pool))])
		} else {
			for i := range keys {
				keys[i] = draw[i]()
			}
		}
		// Whole-dollar measures keep float64 sums exact regardless of
		// aggregation order, so every evaluation strategy produces
		// bit-identical results.
		if err := app.Append(keys, []float64{float64(rng.Intn(10000))}); err != nil {
			return nil, err
		}
	}
	if err := app.Close(); err != nil {
		return nil, err
	}

	for _, levels := range spec.Views {
		if _, err := db.Materialize(levels); err != nil {
			return nil, fmt.Errorf("datagen: materialize %v: %w", levels, err)
		}
	}

	if spec.IndexView != nil {
		v := db.ViewByLevels(spec.IndexView)
		if v == nil {
			return nil, fmt.Errorf("datagen: index view %v not materialized", spec.IndexView)
		}
		for _, dim := range spec.IndexDims {
			if err := db.BuildIndexFormat(v, dim, spec.CompressedIndexes); err != nil {
				return nil, err
			}
		}
	}
	if err := db.RefreshStats(); err != nil {
		return nil, err
	}
	if err := db.Save(); err != nil {
		return nil, err
	}
	return db, nil
}

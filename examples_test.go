package mdxopt

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesRun builds and runs every example end to end. Skipped
// under -short (each example builds its own sample database).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build sample databases; skipped with -short")
	}
	examples, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) < 5 {
		t.Fatalf("found only %d examples: %v", len(examples), examples)
	}
	for _, dir := range examples {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			bin := filepath.Join(t.TempDir(), "example")
			build := exec.Command("go", "build", "-o", bin, "./"+dir)
			build.Env = os.Environ()
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			done := make(chan error, 1)
			var out []byte
			go func() {
				var err error
				out, err = cmd.CombinedOutput()
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("run: %v\n%s", err, out)
				}
			case <-time.After(2 * time.Minute):
				cmd.Process.Kill()
				t.Fatal("example timed out")
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}

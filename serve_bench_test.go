package mdxopt

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdxopt/internal/workload"
)

// Serving benchmarks: a multi-client burst of Q1–Q9 requests against a
// pool much smaller than the data, served batched (admission scheduler
// merging concurrent requests into shared passes) versus separate (each
// request planned and executed on its own). Reported metrics: queries/s
// and the total attributed physical page reads per iteration.

const (
	serveClients          = 8
	serveQueriesPerClient = 4
	servePoolFrames       = 64
)

var (
	serveDBOnce sync.Once
	serveDB     *DB
	serveDBDir  string
	serveDBErr  error
)

// serveFixture builds the sample database once per benchmark binary and
// reopens it with a deliberately small buffer pool.
func serveFixture(b *testing.B) *DB {
	b.Helper()
	serveDBOnce.Do(func() {
		dir, err := os.MkdirTemp("", "mdxopt-serve-bench")
		if err != nil {
			serveDBErr = err
			return
		}
		serveDBDir = dir
		dbDir := filepath.Join(dir, "db")
		db, err := CreateSample(dbDir, benchScale())
		if err != nil {
			serveDBErr = err
			return
		}
		if err := db.Close(); err != nil {
			serveDBErr = err
			return
		}
		serveDB, serveDBErr = OpenWith(dbDir, OpenOptions{PoolFrames: servePoolFrames})
	})
	if serveDBErr != nil {
		b.Fatal(serveDBErr)
	}
	return serveDB
}

// serveWorkload deals a deterministic Poisson arrival sequence to the
// clients; the same seed keeps both benchmarks on identical request
// streams.
func serveWorkload() [][]workload.Arrival {
	rng := rand.New(rand.NewSource(7))
	arrivals := workload.Arrivals(rng, serveClients*serveQueriesPerClient, 2000)
	return workload.PerClient(arrivals, serveClients)
}

// serveRun replays the workload with one goroutine per client, pacing
// each request by its arrival offset, and returns the attributed page
// reads across all answers.
func serveRun(b *testing.B, db *DB, opts Options) int64 {
	b.Helper()
	perClient := serveWorkload()
	start := time.Now()
	var pages atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, serveClients)
	for _, reqs := range perClient {
		wg.Add(1)
		go func(reqs []workload.Arrival) {
			defer wg.Done()
			for _, req := range reqs {
				if wait := req.At - time.Since(start); wait > 0 {
					time.Sleep(wait)
				}
				a, err := db.QueryContext(context.Background(), req.Src, opts)
				if err != nil {
					errs <- err
					return
				}
				pages.Add(a.Stats.PageReads)
			}
		}(reqs)
	}
	wg.Wait()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	return pages.Load()
}

func serveBench(b *testing.B, opts Options) {
	db := serveFixture(b)
	if opts.Batching {
		// MaxBatch equal to the client count keeps the closed loop from
		// waiting out the window once every client is in flight: a full
		// batch launches immediately.
		db.EnableBatching(BatchConfig{Window: 5 * time.Millisecond, MaxBatch: serveClients, MaxQueue: 256})
		defer db.DisableBatching()
	}
	queries := int64(serveClients * serveQueriesPerClient)
	var pages int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pages += serveRun(b, db, opts)
	}
	b.StopTimer()
	b.ReportMetric(float64(pages)/float64(b.N), "pages/run")
	b.ReportMetric(float64(queries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkServeBatched(b *testing.B)  { serveBench(b, Options{Batching: true}) }
func BenchmarkServeSeparate(b *testing.B) { serveBench(b, Options{}) }

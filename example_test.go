package mdxopt_test

import (
	"fmt"
	"log"
	"os"

	"mdxopt"
)

// Example builds a small star database, loads facts, precomputes a
// group-by and answers an MDX expression.
func Example() {
	dir, err := os.MkdirTemp("", "mdxopt-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := mdxopt.Create(dir+"/db", mdxopt.SchemaSpec{
		Measure: "revenue",
		Dims: []mdxopt.DimensionSpec{
			{Name: "Product", Levels: []mdxopt.LevelSpec{
				{Name: "SKU", Members: []string{"apple", "banana", "carrot"}, Parent: []int32{0, 0, 1}},
				{Name: "Category", Members: []string{"fruit", "veg"}},
			}},
			{Name: "Region", Levels: []mdxopt.LevelSpec{
				{Name: "City", Members: []string{"madison", "tokyo"}, Parent: []int32{0, 1}},
				{Name: "Country", Members: []string{"us", "jp"}},
			}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	loader := db.Load()
	for _, f := range []struct {
		sku, city string
		rev       float64
	}{
		{"apple", "madison", 10},
		{"banana", "madison", 5},
		{"carrot", "tokyo", 7},
		{"apple", "tokyo", 3},
	} {
		if err := loader.Add([]string{f.sku, f.city}, f.rev); err != nil {
			log.Fatal(err)
		}
	}
	if err := loader.Close(); err != nil {
		log.Fatal(err)
	}
	if err := db.Materialize("Category", "City"); err != nil {
		log.Fatal(err)
	}

	ans, err := db.Query(`{Category.MEMBERS} on COLUMNS {Country.us, Country.jp} on ROWS CONTEXT shop`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range ans.Queries[0].Rows {
		fmt.Printf("%s/%s = %.0f\n", row.Members[0], row.Members[1], row.Value)
	}
	// Output:
	// fruit/us = 15
	// fruit/jp = 3
	// veg/jp = 7
}

// ExampleOpenWith shows memory-governed batched serving: the database
// opens with a memory budget, queries route through the admission
// scheduler, and aggregation state that exceeds the budget spills to
// disk — the results are identical to an unbudgeted run, and the
// broker's accounting returns to zero afterwards.
func ExampleOpenWith() {
	dir, err := os.MkdirTemp("", "mdxopt-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	seed, err := mdxopt.CreateSample(dir+"/db", 0.002)
	if err != nil {
		log.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		log.Fatal(err)
	}

	db, err := mdxopt.OpenWith(dir+"/db", mdxopt.OpenOptions{
		MemoryBudget: 32 << 10, // 32 KiB: below this query's working set
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.EnableBatching(mdxopt.BatchConfig{})
	defer db.DisableBatching()

	// A leaf-level group-by whose hash table outgrows the budget.
	src := `{A.MEMBERS} on COLUMNS {B.MEMBERS} on ROWS CONTEXT ABCD FILTER (D'.DD1)`
	ans, err := db.QueryWith(src, mdxopt.Options{Batching: true})
	if err != nil {
		log.Fatal(err)
	}
	ms := db.MemoryStats()
	fmt.Println("groups:", len(ans.Queries[0].Rows))
	fmt.Println("spilled:", ans.Stats.SpillBytes > 0)
	fmt.Println("peak within budget:", ms.Peak <= ms.Limit)
	fmt.Println("drained:", ms.Used == 0)
	// Output:
	// groups: 456
	// spilled: true
	// peak within budget: true
	// drained: true
}

// ExampleDB_QueryWith shows algorithm selection and plan inspection.
func ExampleDB_QueryWith() {
	dir, err := os.MkdirTemp("", "mdxopt-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := mdxopt.CreateSample(dir+"/db", 0.002)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ans, err := db.QueryWith(
		`{A''.A1, A''.A2} on COLUMNS CONTEXT ABCD AGGREGATE COUNT FILTER (D'.DD1)`,
		mdxopt.Options{Algorithm: mdxopt.GG, ColdCache: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	qr := ans.Queries[0]
	fmt.Println(qr.Aggregate, "groups:", len(qr.Rows))
	// Output:
	// COUNT groups: 2
}

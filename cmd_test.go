package mdxopt

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools drives mdxgen, mdxquery and mdxbench end to end.
// Skipped under -short.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and a database; skipped with -short")
	}
	bin := t.TempDir()
	for _, tool := range []string{"mdxgen", "mdxquery", "mdxbench"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	dbDir := filepath.Join(t.TempDir(), "db")

	// mdxgen builds a database.
	out, err := exec.Command(filepath.Join(bin, "mdxgen"), "-dir", dbDir, "-scale", "0.005").CombinedOutput()
	if err != nil {
		t.Fatalf("mdxgen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "A'B'C'D") {
		t.Fatalf("mdxgen output missing views:\n%s", out)
	}
	// Refusing to overwrite.
	if out, err := exec.Command(filepath.Join(bin, "mdxgen"), "-dir", dbDir).CombinedOutput(); err == nil {
		t.Fatalf("mdxgen overwrote an existing database:\n%s", out)
	}

	// mdxquery runs a one-shot expression.
	out, err = exec.Command(filepath.Join(bin, "mdxquery"), "-dir", dbDir,
		`{A''.A1} on COLUMNS {B''.B2} on ROWS CONTEXT ABCD FILTER (D'.DD1)`).CombinedOutput()
	if err != nil {
		t.Fatalf("mdxquery: %v\n%s", err, out)
	}
	for _, want := range []string{"plan:", "groups", "page reads"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("mdxquery output missing %q:\n%s", want, out)
		}
	}
	// Explain mode.
	out, err = exec.Command(filepath.Join(bin, "mdxquery"), "-dir", dbDir, "-explain",
		`{A''.A1} on COLUMNS CONTEXT ABCD FILTER (D'.DD1)`).CombinedOutput()
	if err != nil {
		t.Fatalf("mdxquery -explain: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "class ") {
		t.Fatalf("explain output missing plan:\n%s", out)
	}
	// Interactive commands via stdin.
	cmd := exec.Command(filepath.Join(bin, "mdxquery"), "-dir", dbDir)
	cmd.Stdin = strings.NewReader("\\views\n\\dims\n\\stale\n\\quit\n")
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mdxquery repl: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "dimensions: A, B, C, D") ||
		!strings.Contains(string(out), "all views fresh") {
		t.Fatalf("repl output unexpected:\n%s", out)
	}

	// mdxbench regenerates one figure against the same database.
	out, err = exec.Command(filepath.Join(bin, "mdxbench"), "-dir", dbDir, "-scale", "0.005",
		"-exp", "test1").CombinedOutput()
	if err != nil {
		t.Fatalf("mdxbench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Test 1 (Figure 10)") {
		t.Fatalf("mdxbench output missing figure:\n%s", out)
	}
}

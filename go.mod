module mdxopt

go 1.22

// Drilldown walks a typical OLAP session — start at the top of the A
// hierarchy, drill into the biggest member twice — and shows how the
// optimizer routes each step to the cheapest precomputed group-by, with
// the plan cache kicking in on repeats.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"mdxopt"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "mdxopt-drilldown")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := mdxopt.CreateSample(dir+"/db", 0.02)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Step 1: totals per top-level A member.
	top, err := db.Query(`{A''.MEMBERS} on COLUMNS CONTEXT ABCD FILTER (D'.DD1)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top level (A''):  plan:", oneLine(top.Plan))
	biggest := argmax(top)
	fmt.Printf("  biggest member: %s\n\n", biggest)

	// Step 2: drill into its children (A' level).
	mid, err := db.Query(`{A''.` + biggest + `.CHILDREN} on COLUMNS CONTEXT ABCD FILTER (D'.DD1)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("children (A'):    plan:", oneLine(mid.Plan))
	biggestMid := argmax(mid)
	fmt.Printf("  biggest child: %s\n\n", biggestMid)

	// Step 3: drill to the base level under that child.
	base, err := db.Query(`{A'.` + biggestMid + `.CHILDREN} on COLUMNS CONTEXT ABCD FILTER (D'.DD1)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("base members (A): plan:", oneLine(base.Plan))
	rows := base.Queries[0].Rows
	sort.Slice(rows, func(i, j int) bool { return rows[i].Value > rows[j].Value })
	for i, row := range rows {
		if i == 5 {
			fmt.Printf("  ... %d more\n", len(rows)-5)
			break
		}
		fmt.Printf("  %-8s = %.0f\n", row.Members[0], row.Value)
	}

	// Re-running a step is free to plan: the plan cache serves it.
	if _, err := db.Query(`{A''.MEMBERS} on COLUMNS CONTEXT ABCD FILTER (D'.DD1)`); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan cache hits this session: %d\n", db.PlanCacheHits())
}

func argmax(ans *mdxopt.Answer) string {
	best, bestV := "", -1.0
	for _, row := range ans.Queries[0].Rows {
		if row.Value > bestV {
			best, bestV = row.Members[0], row.Value
		}
	}
	return best
}

func oneLine(s string) string {
	out := ""
	for _, r := range s {
		if r == '\n' {
			out += " | "
			continue
		}
		out += string(r)
	}
	return out
}

// Salescube reproduces the paper's §2 walkthrough: the OLE DB for OLAP
// example MDX expression that asks for sales by salesman across three
// geography levels and two time levels in a single expression — six
// related group-by queries — and shows how the engine evaluates them as
// one optimized unit.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"mdxopt"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "mdxopt-salescube")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := buildSalesCube(dir + "/db")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The Microsoft example from the paper's §2 (lightly adapted to this
	// schema's member names): one MDX expression, six group-by queries.
	src := `
		NEST({Venkatrao, Netz}, (USA_North.CHILDREN, USA_South, Japan)) on COLUMNS
		{Qtr1.CHILDREN, Qtr2, Qtr3, Qtr4.CHILDREN} on ROWS
		CONTEXT SalesCube
		FILTER (Sales, [1991], Products.All)`

	ans, err := db.QueryWith(src, mdxopt.Options{Algorithm: mdxopt.GG})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("the expression denotes %d related group-by queries:\n", len(ans.Queries))
	for _, qr := range ans.Queries {
		fmt.Printf("  %-3s group by %-40s %3d groups\n", qr.Name, qr.GroupBy, len(qr.Rows))
	}
	fmt.Println("\nglobal plan (queries sharing a base table evaluate in one pass):")
	fmt.Print(ans.Plan)

	// Show one of the six in full: sales per salesman per state for the
	// months of the 1st and 4th quarters.
	fmt.Println("\nsales by salesman, state and month (months of Qtr1 and Qtr4):")
	qr := ans.Queries[0]
	for _, row := range qr.Rows {
		fmt.Printf("  %-10s %-8s %-6s = %.0f\n", row.Members[0], row.Members[1],
			strings.Join(row.Members[2:], "/"), row.Value)
	}
	fmt.Printf("\ntotal work: %d page reads, %d tuples scanned\n",
		ans.Stats.PageReads, ans.Stats.TuplesScanned)
}

// buildSalesCube creates the five-dimensional SalesCube of the paper's
// §2: salesmen, a store geography hierarchy, a time hierarchy, products,
// and a Sales measure; then loads two years of synthetic sales.
func buildSalesCube(dir string) (*mdxopt.DB, error) {
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun",
		"Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	monthParents := make([]int32, 12)
	for i := range monthParents {
		monthParents[i] = int32(i / 3)
	}
	db, err := mdxopt.Create(dir, mdxopt.SchemaSpec{
		Measure: "Sales",
		Dims: []mdxopt.DimensionSpec{
			{Name: "Salesman", Levels: []mdxopt.LevelSpec{
				{Name: "Rep", Members: []string{"Venkatrao", "Netz", "Alexander", "Yoshida"}},
			}},
			{Name: "Store", Levels: []mdxopt.LevelSpec{
				{Name: "State", Members: []string{"WA", "OR", "MN", "CA", "TX", "FL", "Tokyo", "Osaka"},
					Parent: []int32{0, 0, 0, 1, 1, 1, 2, 2}},
				{Name: "Region", Members: []string{"USA_North", "USA_South", "Japan_Region"},
					Parent: []int32{0, 0, 1}},
				{Name: "Country", Members: []string{"USA", "Japan"}},
			}},
			{Name: "Time", Levels: []mdxopt.LevelSpec{
				{Name: "Month", Members: months, Parent: monthParents},
				{Name: "Quarter", Members: []string{"Qtr1", "Qtr2", "Qtr3", "Qtr4"},
					Parent: []int32{0, 0, 0, 0}},
				{Name: "Year", Members: []string{"1991"}},
			}},
			{Name: "Products", Levels: []mdxopt.LevelSpec{
				{Name: "SKU", Members: []string{"widget", "gadget", "sprocket", "gizmo"},
					Parent: []int32{0, 0, 1, 1}},
				{Name: "Line", Members: []string{"hardware", "novelty"}},
			}},
		},
	})
	if err != nil {
		return nil, err
	}

	reps := []string{"Venkatrao", "Netz", "Alexander", "Yoshida"}
	states := []string{"WA", "OR", "MN", "CA", "TX", "FL", "Tokyo", "Osaka"}
	skus := []string{"widget", "gadget", "sprocket", "gizmo"}
	rng := rand.New(rand.NewSource(1991))
	loader := db.Load()
	for i := 0; i < 20000; i++ {
		fact := []string{
			reps[rng.Intn(len(reps))],
			states[rng.Intn(len(states))],
			months[rng.Intn(len(months))],
			skus[rng.Intn(len(skus))],
		}
		if err := loader.Add(fact, float64(rng.Intn(500)+1)); err != nil {
			return nil, err
		}
	}
	if err := loader.Close(); err != nil {
		return nil, err
	}

	// Precompute a group-by the six queries can share.
	if err := db.Materialize("Rep", "State", "Month", "ALL"); err != nil {
		return nil, err
	}
	return db, nil
}

// Optimizer compares the paper's three global optimization algorithms
// (TPLO, ETPLG, GG) and the exhaustive optimum on one multi-query MDX
// expression, in both the paper's plan space and this engine's full
// model.
package main

import (
	"fmt"
	"log"
	"os"

	"mdxopt"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "mdxopt-optimizer")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := mdxopt.CreateSample(dir+"/db", 0.05)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Three related non-selective queries (the paper's Test 4 flavor):
	// each has a different best materialized group-by, but two can share
	// a slightly bigger one — TPLO misses that, GG finds it.
	src := `
		{A''.A1.CHILDREN, A''.A1} on COLUMNS
		{B''.B2.CHILDREN, B''.B2} on ROWS
		CONTEXT ABCD FILTER (D'.DD1)`

	fmt.Println("expression:", src)
	for _, space := range []struct {
		label string
		paper bool
	}{
		{"paper plan space", true},
		{"full model (adds §3.3 filter conversion)", false},
	} {
		fmt.Printf("\n=== %s ===\n", space.label)
		for _, alg := range []mdxopt.Algorithm{mdxopt.TPLO, mdxopt.ETPLG, mdxopt.GG, mdxopt.Optimal} {
			ans, err := db.QueryWith(src, mdxopt.Options{
				Algorithm:      alg,
				PaperPlanSpace: space.paper,
				ColdCache:      true,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %6d page reads  %8.3f sim-s  plan:\n", alg,
				ans.Stats.PageReads, ans.Stats.SimulatedSeconds)
			fmt.Print(indent(ans.Plan))
		}
	}
}

func indent(s string) string {
	out := "    "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "    "
		}
	}
	if len(out) >= 4 && out[len(out)-4:] == "    " {
		out = out[:len(out)-4]
	}
	return out
}

// Maintenance shows the materialized-view lifecycle: load facts,
// precompute group-bys, load more facts (views go stale and the
// optimizer stops using them), refresh (delta-fold + index rebuild),
// and compact.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"mdxopt"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "mdxopt-maintenance")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := mdxopt.CreateSample(dir+"/db", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	src := `{A''.A1, A''.A2, A''.A3} on COLUMNS {B''.B1} on ROWS CONTEXT ABCD FILTER (D'.DD1)`
	show := func(label string) {
		ans, err := db.Query(src)
		if err != nil {
			log.Fatal(err)
		}
		var total float64
		for _, row := range ans.Queries[0].Rows {
			total += row.Value
		}
		fmt.Printf("%-28s facts=%-6d stale=%-2d  total=%.0f  plan: %s",
			label, db.Facts(), len(db.StaleViews()), total, ans.Plan)
	}

	show("initial")

	// Load a new batch of facts. Every materialized group-by is now
	// stale; the optimizer falls back to the base table, results stay
	// exact.
	rng := rand.New(rand.NewSource(7))
	loader := db.Load()
	for i := 0; i < 4000; i++ {
		codes := []int32{
			int32(rng.Intn(90)), int32(rng.Intn(90)),
			int32(rng.Intn(90)), int32(rng.Intn(128)),
		}
		if err := loader.AddCodes(codes, float64(rng.Intn(100))); err != nil {
			log.Fatal(err)
		}
	}
	if err := loader.Close(); err != nil {
		log.Fatal(err)
	}
	show("after loading 4000 facts")

	// Refresh folds the delta into each view (duplicate group rows may
	// appear; operators aggregate, so answers are unchanged) and rebuilds
	// the bitmap indexes.
	if err := db.Refresh(); err != nil {
		log.Fatal(err)
	}
	show("after refresh")

	// Compact merges the duplicate group rows.
	if err := db.Compact("A'", "B'", "C'", "D"); err != nil {
		log.Fatal(err)
	}
	show("after compacting A'B'C'D")
}

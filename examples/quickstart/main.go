// Quickstart: build the paper's sample star database at a small scale,
// ask one MDX question, and print the answer.
package main

import (
	"fmt"
	"log"
	"os"

	"mdxopt"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "mdxopt-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The sample database is the paper's test configuration: dimensions
	// A, B, C with hierarchies A -> A' -> A'' (and likewise B, C), a
	// date-like dimension D, materialized group-bys, and bitmap join
	// indexes on A'B'C'D.
	db, err := mdxopt.CreateSample(dir+"/db", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	fmt.Printf("loaded %d facts across %d stored group-bys\n\n", db.Facts(), len(db.Views()))

	// "Total dollars for each child of A1, for B1 and C1, in DD1."
	ans, err := db.Query(`
		{A''.A1.CHILDREN} on COLUMNS
		{B''.B1} on ROWS
		{C''.C1} on PAGES
		CONTEXT ABCD FILTER (D'.DD1)`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("global plan:")
	fmt.Print(ans.Plan)
	fmt.Println()
	for _, qr := range ans.Queries {
		fmt.Printf("%s — group by %s:\n", qr.Name, qr.GroupBy)
		for _, row := range qr.Rows {
			fmt.Printf("  %v = %.0f\n", row.Members, row.Value)
		}
	}
	fmt.Printf("\n%d page reads, %.3f simulated 1998-seconds\n",
		ans.Stats.PageReads, ans.Stats.SimulatedSeconds)
}

// Sharedscan demonstrates the paper's headline effect: several related
// dimensional queries evaluated as one unit share base-table work that
// separate evaluation repeats. It issues four related queries first one
// at a time and then as a single MDX expression, and compares the work.
package main

import (
	"fmt"
	"log"
	"os"

	"mdxopt"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "mdxopt-sharedscan")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := mdxopt.CreateSample(dir+"/db", 0.02)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Four related questions about the same cube slice. As separate
	// expressions each gets its own plan and its own pass over a stored
	// group-by.
	separate := []string{
		`{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS {C''.C1} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
		`{A''.A1.CHILDREN} on COLUMNS {B''.B2} on ROWS {C''.C1} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
		`{A''.A1} on COLUMNS {B''.B1.CHILDREN} on ROWS {C''.C1} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
		`{A''.A1} on COLUMNS {B''.B1} on ROWS {C''.C1.CHILDREN} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
	}
	// The same four questions as ONE expression: level mixes on each
	// axis denote all four group-bys (2 A-levels x 2 B-levels ... the
	// cross product below yields exactly 4 component queries).
	combined := `
		{A''.A1.CHILDREN, A''.A1} on COLUMNS
		{B''.B1.CHILDREN, B''.B1} on ROWS
		CONTEXT ABCD FILTER (D'.DD1)`

	var sepReads, sepScanned int64
	var sepSim float64
	for i, src := range separate {
		ans, err := db.QueryWith(src, mdxopt.Options{ColdCache: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("separate query %d: %5d page reads, %6d tuples scanned, %.3f sim-s\n",
			i+1, ans.Stats.PageReads, ans.Stats.TuplesScanned, ans.Stats.SimulatedSeconds)
		sepReads += ans.Stats.PageReads
		sepScanned += ans.Stats.TuplesScanned
		sepSim += ans.Stats.SimulatedSeconds
	}

	ans, err := db.QueryWith(combined, mdxopt.Options{ColdCache: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\none expression, %d component queries, plan:\n%s", len(ans.Queries), ans.Plan)
	fmt.Printf("\ncombined:  %5d page reads, %6d tuples scanned, %.3f sim-s\n",
		ans.Stats.PageReads, ans.Stats.TuplesScanned, ans.Stats.SimulatedSeconds)
	fmt.Printf("separate:  %5d page reads, %6d tuples scanned, %.3f sim-s\n",
		sepReads, sepScanned, sepSim)
	if ans.Stats.SimulatedSeconds > 0 {
		fmt.Printf("speedup:   %.2fx simulated, %.2fx page reads\n",
			sepSim/ans.Stats.SimulatedSeconds, float64(sepReads)/float64(ans.Stats.PageReads))
	}
}

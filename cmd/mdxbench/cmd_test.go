package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunCacheSmoke runs the cache experiment end to end at a tiny
// scale: it must build the database, pass its own validation (warm
// passes >= 5x fewer reads than cold on a fitting cache, peak within
// the broker budget) and write a parseable JSON report.
func TestRunCacheSmoke(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cachedb")
	jsonPath := filepath.Join(t.TempDir(), "BENCH_cache.json")
	var out bytes.Buffer
	if err := runCache(&out, dir, 0.02, jsonPath); err != nil {
		t.Fatalf("runCache: %v\noutput:\n%s", err, out.String())
	}
	buf, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep cacheReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if len(rep.Cells) != len(rep.Config.Budgets)*len(rep.Config.WorkingSets) {
		t.Fatalf("report has %d cells, want %d",
			len(rep.Cells), len(rep.Config.Budgets)*len(rep.Config.WorkingSets))
	}
	var hits int64
	for _, c := range rep.Cells {
		hits += c.Hits
	}
	if hits == 0 {
		t.Fatal("no cell recorded a cache hit")
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mdxopt"
	"mdxopt/internal/workload"
)

// The mem experiment measures memory-governed execution: a Poisson
// workload of aggregation-heavy queries replays at increasing
// concurrency under decreasing memory budgets. Every cell reopens the
// database with one budget so the broker's accounting is per-cell, runs
// the replay through the admission scheduler, and records the broker's
// peak, spill volume and admission deferrals. The point of the sweep:
// peak tracked memory stays at or under the budget while throughput
// degrades smoothly (spill + deferred admission) instead of falling
// over.
//
// The paper's Q1–Q9 aggregate to coarse levels, so their hash tables
// are a few KiB — nothing worth governing. This workload mixes in
// leaf-level group-bys (A.MEMBERS × B.MEMBERS …) whose aggregation
// state runs to MiBs, putting the refusable share of memory far above
// the required lookups and making the budget the binding constraint.

type memConfig struct {
	Scale      float64 `json:"scale"`
	Clients    []int   `json:"clients"`
	PerClient  int     `json:"queries_per_client"`
	RatePerSec float64 `json:"arrival_rate_per_sec"`
	PoolFrames int     `json:"pool_frames"`
	WindowMS   float64 `json:"batch_window_ms"`
	Reps       int     `json:"reps"`
}

// memCell is one (budget, concurrency) measurement.
type memCell struct {
	BudgetBytes int64   `json:"budget_bytes"` // 0 = track only
	Clients     int     `json:"clients"`
	WallMS      float64 `json:"wall_ms"` // mean per rep
	QueriesSec  float64 `json:"queries_per_sec"`

	PeakBytes       int64   `json:"peak_bytes"` // broker high-water mark
	SpillBytes      int64   `json:"spill_bytes"`
	SpillPartitions int64   `json:"spill_partitions"`
	Denied          int64   `json:"denied_grants"`
	Deferred        int64   `json:"deferred_batches"`
	DeferredForMS   float64 `json:"deferred_for_ms"`

	// WithinBudget is PeakBytes <= BudgetBytes (vacuously true for the
	// unbudgeted cell); DrainedToZero is the broker's Used after the
	// replays finished.
	WithinBudget  bool `json:"peak_within_budget"`
	DrainedToZero bool `json:"drained_to_zero"`
}

type memReport struct {
	Config        memConfig `json:"config"`
	UnboundedPeak int64     `json:"unbounded_peak_bytes"` // probe at max concurrency
	Cells         []memCell `json:"cells"`
}

// memPool is the experiment's query mix: leaf-level group-bys with
// large aggregation state plus a few of the paper's coarse queries for
// plan variety.
func memPool() map[string]string {
	base := workload.MDX()
	return map[string]string{
		"F1": `{A.MEMBERS} on COLUMNS {B.MEMBERS} on ROWS CONTEXT ABCD FILTER (D'.DD1)`,
		"F2": `{A.MEMBERS} on COLUMNS {B.MEMBERS} on ROWS {C.MEMBERS} on PAGES CONTEXT ABCD FILTER (D'.DD1)`,
		"F3": `{B.MEMBERS} on COLUMNS {C.MEMBERS} on ROWS CONTEXT ABCD FILTER (D'.DD2)`,
		"F4": `{A.MEMBERS} on COLUMNS {C.MEMBERS} on ROWS CONTEXT ABCD`,
		"Q2": base["Q2"],
		"Q6": base["Q6"],
		"Q9": base["Q9"],
	}
}

// memArrivals draws a Poisson arrival sequence over memPool, mirroring
// workload.Arrivals (deterministic for a given rng).
func memArrivals(rng *rand.Rand, n int, ratePerSec float64) []workload.Arrival {
	pool := memPool()
	names := make([]string, 0, len(pool))
	for name := range pool {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]workload.Arrival, n)
	var at time.Duration
	for i := range out {
		if ratePerSec > 0 {
			at += time.Duration(rng.ExpFloat64() / ratePerSec * float64(time.Second))
		}
		name := names[rng.Intn(len(names))]
		out[i] = workload.Arrival{Name: name, Src: pool[name], At: at}
	}
	return out
}

// memReplay pushes the workload through the scheduler at the given
// concurrency and returns wall time plus the spill counters summed over
// the answers.
func memReplay(db *mdxopt.DB, perClient [][]workload.Arrival) (time.Duration, int64, int64, error) {
	start := time.Now()
	var spillBytes, spillParts atomic.Int64
	errs := make(chan error, len(perClient))
	var wg sync.WaitGroup
	for _, reqs := range perClient {
		wg.Add(1)
		go func(reqs []workload.Arrival) {
			defer wg.Done()
			for _, req := range reqs {
				if wait := req.At - time.Since(start); wait > 0 {
					time.Sleep(wait)
				}
				a, err := db.QueryWith(req.Src, mdxopt.Options{Batching: true})
				if err != nil {
					errs <- fmt.Errorf("%s: %w", req.Name, err)
					return
				}
				spillBytes.Add(a.Stats.SpillBytes)
				spillParts.Add(a.Stats.SpillPartitions)
			}
		}(reqs)
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errs:
		return 0, 0, 0, err
	default:
	}
	return wall, spillBytes.Load(), spillParts.Load(), nil
}

// memOpen opens the benchmark database with one budget and batching
// sized for the given concurrency.
func memOpen(dir string, cfg memConfig, budget int64, clients int) (*mdxopt.DB, error) {
	db, err := mdxopt.OpenWith(dir, mdxopt.OpenOptions{
		PoolFrames:   cfg.PoolFrames,
		MemoryBudget: budget,
	})
	if err != nil {
		return nil, err
	}
	db.EnableBatching(mdxopt.BatchConfig{
		Window:   time.Duration(cfg.WindowMS * float64(time.Millisecond)),
		MaxBatch: clients,
		MaxQueue: 4 * clients,
	})
	return db, nil
}

// runMem builds (or reuses) the benchmark database, probes the
// workload's unbudgeted peak, sweeps budget x concurrency, prints the
// grid, and optionally writes the JSON report.
func runMem(w io.Writer, dir string, scale float64, jsonPath string) error {
	cfg := memConfig{
		Scale:      scale,
		Clients:    []int{1, 2, 4, 8},
		PerClient:  4,
		RatePerSec: 2000,
		PoolFrames: 256,
		WindowMS:   5,
		Reps:       3,
	}

	if _, err := os.Stat(dir); os.IsNotExist(err) {
		start := time.Now()
		db, err := mdxopt.CreateSample(dir, scale)
		if err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "built database in %s\n", time.Since(start).Round(time.Millisecond))
	}

	maxClients := cfg.Clients[len(cfg.Clients)-1]
	arrivalsFor := func(clients int) [][]workload.Arrival {
		rng := rand.New(rand.NewSource(11))
		return workload.PerClient(memArrivals(rng, clients*cfg.PerClient, cfg.RatePerSec), clients)
	}

	// Probe: the workload's untracked-budget peak at max concurrency
	// anchors the budget ladder below the working set.
	probe, err := memOpen(dir, cfg, 0, maxClients)
	if err != nil {
		return err
	}
	if _, _, _, err := memReplay(probe, arrivalsFor(maxClients)); err != nil {
		probe.Close()
		return err
	}
	unbounded := probe.MemoryStats().Peak
	if err := probe.Close(); err != nil {
		return err
	}

	// The floor keeps budgets above the required-state footprint
	// (lookups, bitmaps, one spill page), which is granted past the
	// budget and would otherwise put the peak over tiny budgets.
	const minBudget = 16 << 10
	budgets := []int64{0}
	for _, div := range []int64{2, 4, 8} {
		b := unbounded / div
		if b < minBudget {
			b = minBudget
		}
		if budgets[len(budgets)-1] != b {
			budgets = append(budgets, b)
		}
	}

	rep := memReport{Config: cfg, UnboundedPeak: unbounded}
	fmt.Fprintf(w, "mem: scale %g, unbudgeted peak %d KiB, %d-frame pool\n",
		cfg.Scale, unbounded>>10, cfg.PoolFrames)
	fmt.Fprintf(w, "  %10s %8s %10s %10s %10s %10s %8s %8s %6s\n",
		"budget", "clients", "ms/run", "queries/s", "peakKiB", "spillKiB", "denied", "defer", "ok")

	for _, budget := range budgets {
		for _, clients := range cfg.Clients {
			db, err := memOpen(dir, cfg, budget, clients)
			if err != nil {
				return err
			}
			perClient := arrivalsFor(clients)
			// One warm-up rep settles the pool and the plan caches.
			if _, _, _, err := memReplay(db, perClient); err != nil {
				db.Close()
				return err
			}
			var wall time.Duration
			var spillBytes, spillParts int64
			for r := 0; r < cfg.Reps; r++ {
				wl, sb, sp, err := memReplay(db, perClient)
				if err != nil {
					db.Close()
					return err
				}
				wall += wl
				spillBytes += sb
				spillParts += sp
			}
			ms := db.MemoryStats()
			if err := db.Close(); err != nil {
				return err
			}
			mean := wall / time.Duration(cfg.Reps)
			cell := memCell{
				BudgetBytes:     budget,
				Clients:         clients,
				WallMS:          float64(mean.Microseconds()) / 1e3,
				QueriesSec:      float64(clients*cfg.PerClient) / mean.Seconds(),
				PeakBytes:       ms.Peak,
				SpillBytes:      spillBytes,
				SpillPartitions: spillParts,
				Denied:          ms.Denied,
				Deferred:        ms.Deferred,
				DeferredForMS:   float64(ms.DeferredFor.Microseconds()) / 1e3,
				WithinBudget:    budget == 0 || ms.Peak <= budget,
				DrainedToZero:   ms.Used == 0,
			}
			rep.Cells = append(rep.Cells, cell)
			bs := "none"
			if budget > 0 {
				bs = fmt.Sprintf("%dKiB", budget>>10)
			}
			ok := "yes"
			if !cell.WithinBudget || !cell.DrainedToZero {
				ok = "NO"
			}
			fmt.Fprintf(w, "  %10s %8d %10.2f %10.0f %10d %10d %8d %8d %6s\n",
				bs, clients, cell.WallMS, cell.QueriesSec,
				cell.PeakBytes>>10, cell.SpillBytes>>10, cell.Denied, cell.Deferred, ok)
		}
	}

	for _, c := range rep.Cells {
		if !c.WithinBudget {
			return fmt.Errorf("mem: budget %d clients %d: peak %d exceeds budget", c.BudgetBytes, c.Clients, c.PeakBytes)
		}
		if !c.DrainedToZero {
			return fmt.Errorf("mem: budget %d clients %d: broker not drained", c.BudgetBytes, c.Clients)
		}
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"mdxopt/internal/datagen"
	"mdxopt/internal/exec"
	"mdxopt/internal/query"
	"mdxopt/internal/star"
	"mdxopt/internal/storage"
	"mdxopt/internal/workload"
)

// The scan experiment measures the storage hot path this repository
// rebuilt for concurrency: the shared scan (Q1–Q4's hash star-join
// pipelines over the base table) is run across a grid of worker counts
// × buffer-pool sharding × sequential readahead. Because the interesting
// quantity is how well the pool overlaps I/O with per-tuple CPU — not
// how fast the host's page cache is — every physical read of the base
// table carries a fixed simulated latency (the cost model's ballpark for
// a sequential page), injected through the storage layer's fault hook.

// scanConfig parameterizes the scan experiment.
type scanConfig struct {
	Scale      float64  `json:"scale"`
	Seed       int64    `json:"seed"` // datagen is seeded; recorded for reproducibility
	PoolFrames int      `json:"pool_frames"`
	Shards     int      `json:"pool_shards"` // the "sharded" side of the grid
	Readahead  int      `json:"readahead_pages"`
	LatencyUS  int      `json:"simulated_read_latency_us"`
	Reps       int      `json:"reps"`
	Queries    []string `json:"queries"`
	BaseRows   int64    `json:"base_rows"`
	BasePages  int64    `json:"base_pages"`
}

// scanVariant is one cell of the grid.
type scanVariant struct {
	Workers      int     `json:"workers"`
	Shards       int     `json:"shards"`
	Prefetch     bool    `json:"prefetch"`
	WallMS       float64 `json:"wall_ms"` // mean over reps
	RowsPerSec   float64 `json:"rows_per_sec"`
	PageReads    int64   `json:"page_reads"` // per rep
	Prefetched   int64   `json:"prefetched"`
	PrefetchHits int64   `json:"prefetch_hits"`
}

type scanReport struct {
	Config   scanConfig    `json:"config"`
	Variants []scanVariant `json:"variants"`
	// Derived acceptance figures.
	Speedup8Workers        float64 `json:"speedup_8_workers"`         // sharded w=1 / sharded w=8, prefetch off
	ShardedVsGlobal8       float64 `json:"sharded_vs_global_8"`       // global w=8 / sharded w=8, prefetch off
	PrefetchGain1Worker    float64 `json:"prefetch_gain_1_worker"`    // sharded w=1 off / on
	SingleWorkerReadsEqual bool    `json:"single_worker_reads_equal"` // page reads identical across all w=1 cells
	SingleWorkerPageReads  int64   `json:"single_worker_page_reads"`  // the common w=1 count
}

// runScanVariant opens the database with the variant's pool, installs
// the read latency on the base table, and runs the shared scan reps
// times cold, verifying results against want (or filling it on the
// first variant).
func runScanVariant(dir string, cfg scanConfig, workers, shards int, prefetch bool, queries []string, want *[]*exec.Result) (scanVariant, error) {
	v := scanVariant{Workers: workers, Shards: shards, Prefetch: prefetch}
	readahead := 0
	if prefetch {
		readahead = cfg.Readahead
	}
	db, err := star.OpenWith(dir, storage.PoolOpts{
		Frames:    cfg.PoolFrames,
		Shards:    shards,
		Readahead: readahead,
	})
	if err != nil {
		return v, err
	}
	defer db.Close()

	qs, err := workload.PaperQueries(db.Schema)
	if err != nil {
		return v, err
	}
	batch := make([]*query.Query, len(queries))
	for i, name := range queries {
		q, ok := qs[name]
		if !ok {
			return v, fmt.Errorf("unknown query %s", name)
		}
		batch[i] = q
	}

	// Charge every physical read of the base table the simulated
	// latency; dimension tables (a handful of pages, read once into the
	// lookup tables) stay fast so the measurement isolates the scan.
	latency := time.Duration(cfg.LatencyUS) * time.Microsecond
	db.Base().Heap.File().Disk().SetFault(func(op string, page uint32) error {
		if op == "read" {
			time.Sleep(latency)
		}
		return nil
	})
	defer db.Base().Heap.File().Disk().SetFault(nil)

	env := exec.NewEnv(db)
	env.Parallelism = workers

	rows := db.Base().Rows()
	var wall time.Duration
	var reads, prefetched, hits int64
	for rep := -1; rep < cfg.Reps; rep++ { // rep -1 is the warm-up
		if err := db.ColdReset(); err != nil {
			return v, err
		}
		var st exec.Stats
		start := time.Now()
		results, err := exec.SharedScanHash(env, db.Base(), batch, &st)
		if err != nil {
			return v, err
		}
		elapsed := time.Since(start)
		if *want == nil {
			*want = results
		} else {
			for i := range results {
				if !results[i].Equal((*want)[i]) {
					return v, fmt.Errorf("workers=%d shards=%d prefetch=%v: query %s result differs from baseline",
						workers, shards, prefetch, queries[i])
				}
			}
		}
		if rep < 0 {
			continue
		}
		wall += elapsed
		reads += st.IO.Reads()
		prefetched += st.IO.Prefetched
		hits += st.IO.PrefetchHits
	}
	mean := wall / time.Duration(cfg.Reps)
	v.WallMS = float64(mean.Microseconds()) / 1e3
	v.RowsPerSec = float64(rows) / mean.Seconds()
	v.PageReads = reads / int64(cfg.Reps)
	v.Prefetched = prefetched / int64(cfg.Reps)
	v.PrefetchHits = hits / int64(cfg.Reps)
	return v, nil
}

// runScan builds (or reuses) the benchmark database and sweeps the
// worker × sharding × prefetch grid, printing a table and optionally
// writing the JSON report.
func runScan(w io.Writer, dir string, scale float64, jsonPath string) error {
	cfg := scanConfig{
		Scale:      scale,
		Seed:       datagen.PaperSpec(scale).Seed,
		PoolFrames: 256,
		Shards:     16,
		Readahead:  8,
		LatencyUS:  300,
		Reps:       3,
		Queries:    []string{"Q1", "Q2", "Q3", "Q4"},
	}

	if _, err := os.Stat(dir); os.IsNotExist(err) {
		start := time.Now()
		db, err := datagen.Build(dir, datagen.PaperSpec(scale))
		if err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "built database in %s\n", time.Since(start).Round(time.Millisecond))
	}
	{
		db, err := star.Open(dir, 64)
		if err != nil {
			return err
		}
		cfg.BaseRows = db.Base().Rows()
		cfg.BasePages = db.Base().Heap.DataPages()
		if err := db.Close(); err != nil {
			return err
		}
	}

	type cell struct {
		workers, shards int
		prefetch        bool
	}
	var grid []cell
	for _, workers := range []int{1, 4, 8} {
		for _, shards := range []int{1, cfg.Shards} {
			for _, prefetch := range []bool{false, true} {
				grid = append(grid, cell{workers, shards, prefetch})
			}
		}
	}
	sort.SliceStable(grid, func(i, j int) bool { return grid[i].workers < grid[j].workers })

	fmt.Fprintf(w, "scan: %d rows (%d pages), %d-frame pool, %dµs/page simulated read latency, queries %v\n",
		cfg.BaseRows, cfg.BasePages, cfg.PoolFrames, cfg.LatencyUS, cfg.Queries)
	fmt.Fprintf(w, "  %-8s %-7s %-8s %10s %14s %10s %12s\n",
		"workers", "shards", "prefetch", "wall ms", "rows/s", "reads", "pf hit/read")

	var want []*exec.Result
	rep := scanReport{Config: cfg}
	byCell := map[cell]scanVariant{}
	for _, c := range grid {
		v, err := runScanVariant(dir, cfg, c.workers, c.shards, c.prefetch, cfg.Queries, &want)
		if err != nil {
			return err
		}
		rep.Variants = append(rep.Variants, v)
		byCell[c] = v
		fmt.Fprintf(w, "  %-8d %-7d %-8v %10.2f %14.0f %10d %7d/%d\n",
			v.Workers, v.Shards, v.Prefetch, v.WallMS, v.RowsPerSec, v.PageReads, v.PrefetchHits, v.Prefetched)
	}

	sharded1 := byCell[cell{1, cfg.Shards, false}]
	sharded8 := byCell[cell{8, cfg.Shards, false}]
	global8 := byCell[cell{8, 1, false}]
	sharded1pf := byCell[cell{1, cfg.Shards, true}]
	if sharded8.WallMS > 0 {
		rep.Speedup8Workers = sharded1.WallMS / sharded8.WallMS
		rep.ShardedVsGlobal8 = global8.WallMS / sharded8.WallMS
	}
	if sharded1pf.WallMS > 0 {
		rep.PrefetchGain1Worker = sharded1.WallMS / sharded1pf.WallMS
	}
	rep.SingleWorkerReadsEqual = true
	rep.SingleWorkerPageReads = sharded1.PageReads
	for _, v := range rep.Variants {
		if v.Workers == 1 && v.PageReads != rep.SingleWorkerPageReads {
			rep.SingleWorkerReadsEqual = false
		}
	}

	fmt.Fprintf(w, "  8-worker speedup over 1 worker (sharded): %.2fx\n", rep.Speedup8Workers)
	fmt.Fprintf(w, "  sharded vs global pool at 8 workers:      %.2fx\n", rep.ShardedVsGlobal8)
	fmt.Fprintf(w, "  readahead gain at 1 worker:               %.2fx\n", rep.PrefetchGain1Worker)
	fmt.Fprintf(w, "  single-worker page reads equal:           %v (%d)\n",
		rep.SingleWorkerReadsEqual, rep.SingleWorkerPageReads)

	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}
